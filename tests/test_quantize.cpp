// Tests for stochastic integer quantization (paper Eqn. 4/5, Theorem 1).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "quant/quantize.h"

namespace adaqp {
namespace {

std::vector<float> random_vector(std::size_t n, Rng& rng, float lo = -3.0f,
                                 float hi = 3.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

TEST(BitPacking, RoundTripAllWidths) {
  for (int bits : {2, 4, 8}) {
    Rng rng(bits);
    std::vector<std::uint32_t> values(137);
    const std::uint32_t mask = (1u << bits) - 1u;
    for (auto& v : values)
      v = static_cast<std::uint32_t>(rng.uniform_int(mask + 1));
    const auto packed = pack_bits(values, bits);
    EXPECT_EQ(packed.size(), (values.size() * bits + 7) / 8);
    const auto unpacked = unpack_bits(packed, bits, values.size());
    EXPECT_EQ(unpacked, values);
  }
}

TEST(BitPacking, RejectsOutOfRangeValues) {
  const std::vector<std::uint32_t> values = {4};  // needs 3 bits
  EXPECT_THROW(pack_bits(values, 2), std::runtime_error);
}

TEST(BitPacking, RejectsTruncatedStream) {
  const std::vector<std::uint8_t> packed = {0xFF};
  EXPECT_THROW(unpack_bits(packed, 8, 2), std::runtime_error);
}

TEST(BitPacking, EmptyInput) {
  const std::vector<std::uint32_t> empty;
  EXPECT_TRUE(pack_bits(empty, 4).empty());
  EXPECT_TRUE(unpack_bits({}, 4, 0).empty());
}

TEST(WireBytes, MatchesFormula) {
  EXPECT_EQ(quantized_wire_bytes(64, 2), 64u / 4 + 8);
  EXPECT_EQ(quantized_wire_bytes(64, 4), 64u / 2 + 8);
  EXPECT_EQ(quantized_wire_bytes(64, 8), 64u + 8);
  EXPECT_EQ(quantized_wire_bytes(64, 32), 64u * 4 + 8);
  EXPECT_EQ(quantized_wire_bytes(3, 2), 1u + 8);  // rounds up to whole bytes
}

TEST(Quantize, PassthroughAt32Bits) {
  Rng rng(1);
  const auto values = random_vector(50, rng);
  const QuantizedVector qv = quantize(values, 32, rng);
  std::vector<float> out(values.size());
  dequantize(qv, out);
  EXPECT_EQ(out, values);
  EXPECT_EQ(variance_bound(qv), 0.0);
}

TEST(Quantize, ConstantVectorIsExact) {
  Rng rng(2);
  const std::vector<float> values(31, 1.75f);
  for (int bits : {2, 4, 8}) {
    const QuantizedVector qv = quantize(values, bits, rng);
    EXPECT_EQ(qv.scale, 0.0f);
    std::vector<float> out(values.size());
    dequantize(qv, out);
    for (float v : out) EXPECT_FLOAT_EQ(v, 1.75f);
  }
}

TEST(Quantize, EmptyVector) {
  Rng rng(3);
  const std::vector<float> values;
  const QuantizedVector qv = quantize(values, 4, rng);
  EXPECT_EQ(qv.dim, 0u);
  std::vector<float> out;
  EXPECT_NO_THROW(dequantize(qv, out));
}

TEST(Quantize, EndpointsAreRepresentedExactly) {
  // min maps to level 0 and max to the top level, so both are exact.
  Rng rng(4);
  const std::vector<float> values = {-5.0f, 0.1f, 0.2f, 7.0f};
  for (int bits : {2, 4, 8}) {
    const QuantizedVector qv = quantize(values, bits, rng);
    std::vector<float> out(values.size());
    dequantize(qv, out);
    EXPECT_FLOAT_EQ(out[0], -5.0f);
    EXPECT_NEAR(out[3], 7.0f, 1e-5f);
  }
}

TEST(Quantize, ErrorBoundedByScale) {
  Rng rng(5);
  const auto values = random_vector(256, rng);
  for (int bits : {2, 4, 8}) {
    const QuantizedVector qv = quantize(values, bits, rng);
    std::vector<float> out(values.size());
    dequantize(qv, out);
    for (std::size_t i = 0; i < values.size(); ++i)
      EXPECT_LE(std::fabs(out[i] - values[i]), qv.scale + 1e-6f)
          << "bits=" << bits << " i=" << i;
  }
}

TEST(Quantize, InvalidBitWidthThrows) {
  Rng rng(6);
  const std::vector<float> values = {1.0f};
  EXPECT_THROW(quantize(values, 3, rng), std::runtime_error);
  EXPECT_THROW(quantize(values, 16, rng), std::runtime_error);
}

TEST(Quantize, LatticeValuesExactAtMatchingWidth) {
  // Values already on the 4-bit lattice survive 4-bit quantization exactly.
  Rng rng(7);
  std::vector<float> values(16);
  for (int i = 0; i < 16; ++i) values[i] = static_cast<float>(i) / 15.0f;
  const QuantizedVector qv = quantize(values, 4, rng);
  std::vector<float> out(values.size());
  dequantize(qv, out);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(out[i], values[i], 1e-6f);
}

// ---- Theorem 1 properties, parameterized over (bits, dim) ------------------

struct QuantCase {
  int bits;
  std::size_t dim;
};

void PrintTo(const QuantCase& c, std::ostream* os) {
  *os << c.bits << "b/D" << c.dim;
}

class TheoremOneTest : public ::testing::TestWithParam<QuantCase> {};

TEST_P(TheoremOneTest, DequantizedEstimateIsUnbiased) {
  const auto [bits, dim] = GetParam();
  Rng data_rng(100 + bits * 7 + dim);
  const auto values = random_vector(dim, data_rng);
  Rng rng(999);
  const int trials = 3000;
  std::vector<double> mean(dim, 0.0);
  for (int t = 0; t < trials; ++t) {
    const QuantizedVector qv = quantize(values, bits, rng);
    std::vector<float> out(dim);
    dequantize(qv, out);
    for (std::size_t i = 0; i < dim; ++i) mean[i] += out[i];
  }
  // E[h_hat] == h, elementwise within Monte-Carlo noise ~ S/sqrt(trials).
  const QuantizedVector probe = quantize(values, bits, rng);
  const double tolerance = 5.0 * probe.scale / std::sqrt(trials) + 1e-5;
  for (std::size_t i = 0; i < dim; ++i)
    EXPECT_NEAR(mean[i] / trials, values[i], tolerance)
        << "component " << i;
}

TEST_P(TheoremOneTest, VarianceRespectsTheoremBound) {
  const auto [bits, dim] = GetParam();
  Rng data_rng(200 + bits * 3 + dim);
  const auto values = random_vector(dim, data_rng);
  Rng rng(777);
  const int trials = 3000;
  double total_var = 0.0;
  const QuantizedVector probe = quantize(values, bits, rng);
  for (int t = 0; t < trials; ++t) {
    const QuantizedVector qv = quantize(values, bits, rng);
    std::vector<float> out(dim);
    dequantize(qv, out);
    for (std::size_t i = 0; i < dim; ++i) {
      const double e = out[i] - values[i];
      total_var += e * e;
    }
  }
  total_var /= trials;
  // Theorem 1: Var[h_hat] = D * S^2 / 6 under the uniform-fraction
  // assumption; empirical variance must respect it up to MC slack.
  EXPECT_LE(total_var, 1.15 * variance_bound(probe) + 1e-9)
      << "empirical " << total_var << " bound " << variance_bound(probe);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremOneTest,
    ::testing::Values(QuantCase{2, 8}, QuantCase{2, 64}, QuantCase{4, 8},
                      QuantCase{4, 64}, QuantCase{8, 32}, QuantCase{2, 256},
                      QuantCase{8, 256}));

TEST(Quantize, HigherBitsLowerError) {
  Rng rng(8);
  const auto values = random_vector(512, rng);
  double err[9] = {0};
  for (int bits : {2, 4, 8}) {
    const QuantizedVector qv = quantize(values, bits, rng);
    std::vector<float> out(values.size());
    dequantize(qv, out);
    double e = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i)
      e += std::fabs(out[i] - values[i]);
    err[bits] = e;
  }
  EXPECT_LT(err[4], err[2]);
  EXPECT_LT(err[8], err[4]);
}

}  // namespace
}  // namespace adaqp
