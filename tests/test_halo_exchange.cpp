// Tests for the quantized halo exchange and allreduce.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dist/halo_exchange.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "quant/message_codec.h"
#include "quant/quantize.h"

namespace adaqp {
namespace {

struct Fixture {
  Graph graph;
  DistGraph dist;
  ClusterSpec cluster;
  std::vector<Rng> rngs;

  explicit Fixture(int devices, std::uint64_t seed = 11) {
    Rng rng(seed);
    graph = erdos_renyi(160, 800, rng);
    const auto part = FennelPartitioner().partition(graph, devices, rng);
    dist = build_dist_graph(graph, part);
    cluster = ClusterSpec::machines(1, devices);
    for (int d = 0; d < devices; ++d) rngs.emplace_back(seed + 100 + d);
  }

  std::vector<Matrix> random_locals(std::size_t dim, Rng& rng) const {
    Matrix global(graph.num_nodes(), dim);
    global.fill_uniform(rng, -2.0f, 2.0f);
    return scatter_to_devices(global, dist);
  }
};

TEST(HaloForward, FullPrecisionEqualsDirectCopy) {
  Fixture f(4);
  Rng rng(1);
  Matrix global(f.graph.num_nodes(), 9);
  global.fill_uniform(rng, -3.0f, 3.0f);
  auto locals = scatter_to_devices(global, f.dist);
  const auto plan = ExchangePlan::uniform_forward(f.dist, 32);
  exchange_halo_forward(f.dist, locals, plan, f.cluster, f.rngs);
  for (const auto& dev : f.dist.devices) {
    for (std::size_t i = 0; i < dev.num_local(); ++i) {
      const auto got = locals[dev.device].row(i);
      const auto want = global.row(dev.global_of_local[i]);
      for (std::size_t c = 0; c < 9; ++c)
        ASSERT_EQ(got[c], want[c]) << "dev " << dev.device << " row " << i;
    }
  }
}

TEST(HaloForward, QuantizedErrorWithinPerRowScale) {
  Fixture f(3);
  Rng rng(2);
  Matrix global(f.graph.num_nodes(), 16);
  global.fill_uniform(rng, -1.0f, 1.0f);
  auto locals = scatter_to_devices(global, f.dist);
  const auto plan = ExchangePlan::uniform_forward(f.dist, 4);
  exchange_halo_forward(f.dist, locals, plan, f.cluster, f.rngs);
  Rng probe(3);
  for (const auto& dev : f.dist.devices) {
    for (std::size_t i = dev.num_owned; i < dev.num_local(); ++i) {
      const auto want = global.row(dev.global_of_local[i]);
      const auto qv = quantize(want, 4, probe);
      const auto got = locals[dev.device].row(i);
      for (std::size_t c = 0; c < 16; ++c)
        ASSERT_LE(std::fabs(got[c] - want[c]), qv.scale + 1e-6f);
    }
  }
}

TEST(HaloForward, StatsAccountTraffic) {
  Fixture f(4);
  Rng rng(4);
  auto locals = f.random_locals(8, rng);
  const auto plan = ExchangePlan::uniform_forward(f.dist, 8);
  const auto stats =
      exchange_halo_forward(f.dist, locals, plan, f.cluster, f.rngs);
  ASSERT_EQ(stats.pair_bytes.size(), 4u);
  EXPECT_EQ(stats.pair_bytes[0][0], 0u);
  EXPECT_GT(stats.total_bytes(), 0u);
  EXPECT_GT(stats.comm_seconds, 0.0);
  EXPECT_GT(stats.max_quant_seconds(), 0.0);
  EXPECT_GT(stats.max_dequant_seconds(), 0.0);
  // Pair bytes must equal codec prediction.
  for (int d = 0; d < 4; ++d)
    for (int p = 0; p < 4; ++p) {
      if (d == p || f.dist.devices[d].send_local[p].empty()) {
        EXPECT_EQ(stats.pair_bytes[d][p], 0u);
        continue;
      }
      const std::vector<int> bits(f.dist.devices[d].send_local[p].size(), 8);
      EXPECT_EQ(stats.pair_bytes[d][p],
                encoded_wire_bytes(bits.size(), 8, bits));
    }
}

TEST(HaloForward, NoQuantCostAtFullPrecision) {
  Fixture f(3);
  Rng rng(5);
  auto locals = f.random_locals(8, rng);
  const auto plan = ExchangePlan::uniform_forward(f.dist, 32);
  const auto stats =
      exchange_halo_forward(f.dist, locals, plan, f.cluster, f.rngs);
  EXPECT_EQ(stats.max_quant_seconds(), 0.0);
  EXPECT_EQ(stats.max_dequant_seconds(), 0.0);
}

TEST(HaloBackward, AccumulatesIntoOwnersAndClearsHalos) {
  Fixture f(3);
  Rng rng(6);
  const std::size_t dim = 5;
  // Ground truth: per global node, the sum of halo-row values that every
  // device accumulated for it, plus the owner's own row.
  std::vector<Matrix> grads;
  Matrix expected(f.graph.num_nodes(), dim);
  for (const auto& dev : f.dist.devices) {
    Matrix g(dev.num_local(), dim);
    g.fill_uniform(rng, -1.0f, 1.0f);
    grads.push_back(g);
  }
  for (const auto& dev : f.dist.devices)
    for (std::size_t i = 0; i < dev.num_local(); ++i) {
      const auto src = grads[dev.device].row(i);
      // Owned rows contribute once; halo rows are remote contributions.
      if (i < dev.num_owned || true) {
        auto dst = expected.row(dev.global_of_local[i]);
        for (std::size_t c = 0; c < dim; ++c) dst[c] += src[c];
      }
    }

  const auto plan = ExchangePlan::uniform_backward(f.dist, 32);
  exchange_halo_backward(f.dist, grads, plan, f.cluster, f.rngs);

  for (const auto& dev : f.dist.devices) {
    for (std::size_t i = 0; i < dev.num_owned; ++i) {
      const auto got = grads[dev.device].row(i);
      const auto want = expected.row(dev.global_of_local[i]);
      for (std::size_t c = 0; c < dim; ++c)
        ASSERT_NEAR(got[c], want[c], 1e-5f)
            << "dev " << dev.device << " owned row " << i;
    }
    for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h)
      for (float v : grads[dev.device].row(h))
        ASSERT_EQ(v, 0.0f) << "halo row not cleared";
  }
}

TEST(HaloBackward, QuantizedAccumulationStaysUnbiased) {
  // Average of many 2-bit backward exchanges converges to the exact sum.
  Fixture f(2);
  Rng rng(7);
  const std::size_t dim = 4;
  std::vector<Matrix> base;
  for (const auto& dev : f.dist.devices) {
    Matrix g(dev.num_local(), dim);
    g.fill_uniform(rng, -1.0f, 1.0f);
    base.push_back(g);
  }
  // Exact reference via 32-bit exchange.
  auto exact = base;
  const auto plan32 = ExchangePlan::uniform_backward(f.dist, 32);
  exchange_halo_backward(f.dist, exact, plan32, f.cluster, f.rngs);

  const int trials = 400;
  std::vector<Matrix> mean;
  for (const auto& dev : f.dist.devices)
    mean.emplace_back(dev.num_local(), dim);
  const auto plan2 = ExchangePlan::uniform_backward(f.dist, 2);
  for (int t = 0; t < trials; ++t) {
    auto copy = base;
    exchange_halo_backward(f.dist, copy, plan2, f.cluster, f.rngs);
    for (std::size_t d = 0; d < copy.size(); ++d)
      mean[d].add_inplace(copy[d]);
  }
  for (std::size_t d = 0; d < mean.size(); ++d) {
    mean[d].scale_inplace(1.0f / trials);
    const auto& dev = f.dist.devices[d];
    for (std::size_t i = 0; i < dev.num_owned; ++i)
      for (std::size_t c = 0; c < dim; ++c)
        EXPECT_NEAR(mean[d].at(i, c), exact[d].at(i, c), 0.08f);
  }
}

TEST(Allreduce, SumsAndReplicates) {
  ClusterSpec cluster = ClusterSpec::machines(2, 2);
  Rng rng(8);
  std::vector<Matrix> per_device;
  Matrix expected(3, 4);
  for (int d = 0; d < 4; ++d) {
    Matrix m(3, 4);
    m.fill_uniform(rng, -1.0f, 1.0f);
    expected.add_inplace(m);
    per_device.push_back(std::move(m));
  }
  const double secs = allreduce_sum(per_device, cluster);
  EXPECT_GT(secs, 0.0);
  for (const auto& m : per_device) EXPECT_EQ(max_abs_diff(m, expected), 0.0f);
}

TEST(Allreduce, SingleDeviceIsFree) {
  ClusterSpec cluster = ClusterSpec::machines(1, 1);
  std::vector<Matrix> one{Matrix(2, 2)};
  EXPECT_EQ(allreduce_sum(one, cluster), 0.0);
}

TEST(ExchangePlan, UniformShapesMatchMaps) {
  Fixture f(3);
  const auto fwd = ExchangePlan::uniform_forward(f.dist, 4);
  const auto bwd = ExchangePlan::uniform_backward(f.dist, 2);
  for (int d = 0; d < 3; ++d)
    for (int p = 0; p < 3; ++p) {
      EXPECT_EQ(fwd.bits[d][p].size(), f.dist.devices[d].send_local[p].size());
      EXPECT_EQ(bwd.bits[d][p].size(), f.dist.devices[d].recv_local[p].size());
    }
}

TEST(ExchangePlan, InvalidWidthThrows) {
  Fixture f(2);
  EXPECT_THROW(ExchangePlan::uniform_forward(f.dist, 5), std::runtime_error);
}

}  // namespace
}  // namespace adaqp
