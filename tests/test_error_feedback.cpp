// Tests for the error-feedback (compensated) quantization extension.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dist/dist_graph.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "quant/error_feedback.h"
#include "quant/quantize.h"

namespace adaqp {
namespace {

struct Fixture {
  Graph graph;
  DistGraph dist;

  Fixture() {
    Rng rng(5);
    graph = erdos_renyi(80, 400, rng);
    const auto part = FennelPartitioner().partition(graph, 2, rng);
    dist = build_dist_graph(graph, part);
  }
};

TEST(ErrorFeedback, StateShapesFollowSendMaps) {
  Fixture f;
  const auto& dev = f.dist.devices[0];
  ErrorFeedbackState state(dev, 8);
  EXPECT_TRUE(state.initialized());
  for (std::size_t p = 0; p < dev.send_local.size(); ++p)
    EXPECT_EQ(state.residual_for_peer(static_cast<int>(p)).rows(),
              dev.send_local[p].size());
  EXPECT_EQ(state.residual_norm(), 0.0);
}

TEST(ErrorFeedback, FirstRoundMatchesPlainQuantization) {
  // With zero residuals the compensated encoder must equal encode_rows
  // under the same RNG stream.
  Fixture f;
  const auto& dev = f.dist.devices[0];
  const std::size_t dim = 16;
  Rng rng(6);
  Matrix src(dev.num_local(), dim);
  src.fill_uniform(rng, -1.0f, 1.0f);
  const std::vector<int> bits(dev.send_local[1].size(), 4);

  ErrorFeedbackState state(dev, dim);
  Rng rng_a(77), rng_b(77);
  const EncodedBlock compensated =
      encode_rows_compensated(src, dev, 1, bits, state, rng_a);
  const EncodedBlock plain = encode_rows(src, dev.send_local[1], bits, rng_b);
  EXPECT_EQ(compensated.bytes, plain.bytes);
  EXPECT_GT(state.residual_norm(), 0.0);  // residual banked for next round
}

TEST(ErrorFeedback, TimeAveragedSignalConvergesToTruth) {
  // Repeatedly sending the same vector at 2 bits: the running mean of the
  // decoded values must approach the true values much faster with error
  // feedback than the per-round quantization error.
  Fixture f;
  const auto& dev = f.dist.devices[0];
  const std::size_t dim = 8;
  Rng rng(7);
  Matrix src(dev.num_local(), dim);
  src.fill_uniform(rng, -1.0f, 1.0f);
  const auto& sends = dev.send_local[1];
  ASSERT_FALSE(sends.empty());
  const std::vector<int> bits(sends.size(), 2);

  ErrorFeedbackState state(dev, dim);
  Matrix mean(sends.size(), dim);
  const int rounds = 64;
  for (int t = 0; t < rounds; ++t) {
    const EncodedBlock block =
        encode_rows_compensated(src, dev, 1, bits, state, rng);
    Matrix decoded(sends.size(), dim);
    std::vector<NodeId> seq(sends.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
      seq[i] = static_cast<NodeId>(i);
    decode_rows(block, decoded, seq);
    mean.add_inplace(decoded);
  }
  mean.scale_inplace(1.0f / rounds);
  double max_err = 0.0;
  for (std::size_t i = 0; i < sends.size(); ++i)
    for (std::size_t c = 0; c < dim; ++c)
      max_err = std::max(max_err, std::fabs(static_cast<double>(
                                      mean.at(i, c) - src.at(sends[i], c))));
  // Error-feedback drives the time-averaged error to ~scale/rounds, far
  // below a single 2-bit step (range/3 could be ~0.6 here).
  EXPECT_LT(max_err, 0.07);
}

TEST(ErrorFeedback, ResidualStaysBounded) {
  // The residual never exceeds one quantization step per element.
  Fixture f;
  const auto& dev = f.dist.devices[0];
  const std::size_t dim = 8;
  Rng rng(8);
  Matrix src(dev.num_local(), dim);
  src.fill_uniform(rng, -2.0f, 2.0f);
  const auto& sends = dev.send_local[1];
  const std::vector<int> bits(sends.size(), 2);
  ErrorFeedbackState state(dev, dim);
  for (int t = 0; t < 32; ++t)
    encode_rows_compensated(src, dev, 1, bits, state, rng);
  const Matrix& residual = state.residual_for_peer(1);
  // Worst-case step: (range of compensated vector) / 3 levels; compensated
  // values stay within range + step, so 2x the raw step is a safe bound.
  Rng probe(9);
  for (std::size_t i = 0; i < sends.size(); ++i) {
    const auto qv = quantize(src.row(sends[i]), 2, probe);
    for (std::size_t c = 0; c < dim; ++c)
      EXPECT_LE(std::fabs(residual.at(i, c)), 2.5f * qv.scale + 1e-5f);
  }
}

TEST(ErrorFeedback, ResetClearsResiduals) {
  Fixture f;
  const auto& dev = f.dist.devices[0];
  ErrorFeedbackState state(dev, 4);
  Rng rng(10);
  Matrix src(dev.num_local(), 4);
  src.fill_uniform(rng, -1.0f, 1.0f);
  const std::vector<int> bits(dev.send_local[1].size(), 2);
  encode_rows_compensated(src, dev, 1, bits, state, rng);
  EXPECT_GT(state.residual_norm(), 0.0);
  state.reset();
  EXPECT_EQ(state.residual_norm(), 0.0);
}

TEST(ErrorFeedback, MismatchedStateRejected) {
  Fixture f;
  const auto& dev = f.dist.devices[0];
  ErrorFeedbackState state(dev, 4);
  Rng rng(11);
  Matrix src(dev.num_local(), 8);  // dim mismatch
  const std::vector<int> bits(dev.send_local[1].size(), 2);
  EXPECT_THROW(encode_rows_compensated(src, dev, 1, bits, state, rng),
               std::runtime_error);
}

}  // namespace
}  // namespace adaqp
