// Tests for the deterministic PRNG (common/rng.h).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace adaqp {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto x0 = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), x0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // Child and parent should not track each other.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, UniformFloatInUnitInterval) {
  Rng rng(10);
  for (int i = 0; i < 20000; ++i) {
    const float u = rng.uniform_float();
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntOne) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShifted) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PowerLawWithinRange) {
  Rng rng(16);
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.power_law(2.5, 100);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

TEST(Rng, PowerLawIsHeavyTailed) {
  Rng rng(17);
  // A power law with gamma=2.0 over [1,1000] should produce some large
  // values but mostly small ones.
  int small = 0, large = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto k = rng.power_law(2.0, 1000);
    if (k <= 2) ++small;
    if (k >= 100) ++large;
  }
  EXPECT_GT(small, 10000);  // majority near the head
  EXPECT_GT(large, 10);     // tail is populated
}

TEST(Splitmix, Deterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace adaqp
