// Tests for the cluster cost model and ring all2all schedule.
#include <gtest/gtest.h>

#include <set>

#include "comm/cluster.h"

namespace adaqp {
namespace {

TEST(ClusterSpec, PartitionSettingString) {
  EXPECT_EQ(ClusterSpec::machines(2, 4).partition_setting(), "2M-4D");
  EXPECT_EQ(ClusterSpec::machines(6, 4).partition_setting(), "6M-4D");
}

TEST(ClusterSpec, MachineAssignment) {
  const ClusterSpec c = ClusterSpec::machines(2, 4);
  EXPECT_EQ(c.num_devices(), 8);
  EXPECT_EQ(c.machine_of(0), 0);
  EXPECT_EQ(c.machine_of(3), 0);
  EXPECT_EQ(c.machine_of(4), 1);
  EXPECT_EQ(c.machine_of(7), 1);
}

TEST(ClusterSpec, IntraLinkFasterThanInter) {
  const ClusterSpec c = ClusterSpec::machines(2, 2);
  const double intra = c.transfer_seconds(0, 1, 1 << 20);
  const double inter = c.transfer_seconds(0, 2, 1 << 20);
  EXPECT_LT(intra, inter);
}

TEST(ClusterSpec, TransferTimeIsAffine) {
  const ClusterSpec c = ClusterSpec::machines(1, 2);
  const double t1 = c.transfer_seconds(0, 1, 1000);
  const double t2 = c.transfer_seconds(0, 1, 2000);
  const double gamma = c.intra_machine.gamma;
  EXPECT_NEAR(t2 - t1, t1 - gamma, 1e-12);  // slope consistent
}

TEST(ClusterSpec, SelfAndEmptyTransfersAreFree) {
  const ClusterSpec c = ClusterSpec::machines(2, 2);
  EXPECT_EQ(c.transfer_seconds(1, 1, 12345), 0.0);
  EXPECT_EQ(c.transfer_seconds(0, 3, 0), 0.0);
}

TEST(ClusterSpec, ComputeAndQuantScaling) {
  const ClusterSpec c = ClusterSpec::machines(1, 1);
  EXPECT_DOUBLE_EQ(c.compute_seconds(c.device_flops), 1.0);
  EXPECT_DOUBLE_EQ(c.quant_seconds(static_cast<std::size_t>(
                       c.quant_bytes_per_sec)), 1.0);
}

TEST(Ring, ScheduleIsPerfectPairing) {
  // Across all rounds every ordered pair (i, j != i) appears exactly once
  // as (sender, receiver), and send/recv views agree.
  for (int n : {2, 3, 4, 8}) {
    const RingAllToAll ring(n);
    EXPECT_EQ(ring.num_rounds(), n - 1);
    std::set<std::pair<int, int>> seen;
    for (int r = 1; r <= ring.num_rounds(); ++r) {
      for (int i = 0; i < n; ++i) {
        const int dst = ring.send_peer(i, r);
        EXPECT_NE(dst, i);
        EXPECT_EQ(ring.recv_peer(dst, r), i);
        EXPECT_TRUE(seen.emplace(i, dst).second)
            << "pair repeated: " << i << "->" << dst;
      }
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n * (n - 1)));
  }
}

TEST(Ring, StragglerTimingHandComputed) {
  // 2 devices, one round: time = slower of the two transfers.
  const ClusterSpec c = ClusterSpec::machines(1, 2);
  const RingAllToAll ring(2);
  std::vector<std::vector<std::size_t>> bytes = {{0, 1000}, {500, 0}};
  const double expect =
      std::max(c.transfer_seconds(0, 1, 1000), c.transfer_seconds(1, 0, 500));
  std::vector<double> rounds;
  EXPECT_DOUBLE_EQ(ring.total_seconds(c, bytes, &rounds), expect);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_DOUBLE_EQ(rounds[0], expect);
}

TEST(Ring, TotalIsSumOfRoundMaxima) {
  const ClusterSpec c = ClusterSpec::machines(2, 2);
  const RingAllToAll ring(4);
  std::vector<std::vector<std::size_t>> bytes(4, std::vector<std::size_t>(4));
  std::size_t v = 1;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (i != j) bytes[i][j] = 10000 * v++;
  std::vector<double> rounds;
  const double total = ring.total_seconds(c, bytes, &rounds);
  ASSERT_EQ(rounds.size(), 3u);
  double sum = 0.0;
  for (double r : rounds) sum += r;
  EXPECT_DOUBLE_EQ(total, sum);
  // Verify one round by hand: round 1 pairs are i -> (i+1)%4.
  double round1 = 0.0;
  for (int i = 0; i < 4; ++i)
    round1 = std::max(round1,
                      c.transfer_seconds(i, (i + 1) % 4, bytes[i][(i + 1) % 4]));
  EXPECT_DOUBLE_EQ(rounds[0], round1);
}

TEST(Ring, SizeMismatchThrows) {
  const ClusterSpec c = ClusterSpec::machines(1, 2);
  const RingAllToAll ring(2);
  std::vector<std::vector<std::size_t>> bad(3, std::vector<std::size_t>(3, 0));
  EXPECT_THROW(ring.total_seconds(c, bad), std::runtime_error);
}

TEST(Ring, SingleDeviceHasNoRounds) {
  const ClusterSpec c = ClusterSpec::machines(1, 1);
  const RingAllToAll ring(1);
  std::vector<std::vector<std::size_t>> bytes = {{0}};
  EXPECT_EQ(ring.total_seconds(c, bytes), 0.0);
}

}  // namespace
}  // namespace adaqp
