// Tests for the distributed graph view (halo maps, central/marginal split).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dist/dist_graph.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace adaqp {
namespace {

PartitionResult fixed_partition(std::vector<int> part_of, int k) {
  PartitionResult r;
  r.part_of = std::move(part_of);
  r.num_parts = k;
  return r;
}

TEST(DistGraph, PathGraphTwoParts) {
  // 0-1-2-3 split {0,1} | {2,3}: the cut edge is 1-2.
  Graph g = path_graph(4);
  const auto dist = build_dist_graph(g, fixed_partition({0, 0, 1, 1}, 2));
  ASSERT_EQ(dist.num_devices(), 2);

  const DeviceGraph& d0 = dist.devices[0];
  EXPECT_EQ(d0.num_owned, 2u);
  EXPECT_EQ(d0.num_halo, 1u);                      // global node 2
  EXPECT_EQ(d0.global_of_local[2], 2u);
  EXPECT_EQ(d0.central_nodes.size(), 1u);          // node 0
  EXPECT_EQ(d0.marginal_nodes.size(), 1u);         // node 1
  EXPECT_EQ(d0.global_of_local[d0.central_nodes[0]], 0u);
  EXPECT_EQ(d0.global_of_local[d0.marginal_nodes[0]], 1u);
  EXPECT_EQ(d0.send_local[1].size(), 1u);          // sends node 1 to dev 1
  EXPECT_EQ(d0.global_of_local[d0.send_local[1][0]], 1u);
  EXPECT_EQ(d0.recv_local[1].size(), 1u);          // receives node 2

  const DeviceGraph& d1 = dist.devices[1];
  EXPECT_EQ(d1.num_owned, 2u);
  EXPECT_EQ(d1.num_halo, 1u);
  EXPECT_EQ(d1.global_of_local[d1.send_local[0][0]], 2u);
}

TEST(DistGraph, GlobalDegreesPreserved) {
  Rng rng(1);
  Graph g = erdos_renyi(120, 600, rng);
  const auto part = RandomPartitioner().partition(g, 3, rng);
  const auto dist = build_dist_graph(g, part);
  for (const auto& dev : dist.devices)
    for (std::size_t i = 0; i < dev.num_local(); ++i)
      EXPECT_EQ(dev.global_degree[i], g.degree(dev.global_of_local[i]));
}

TEST(DistGraph, LocalCsrMatchesGlobalNeighborhoods) {
  Rng rng(2);
  Graph g = erdos_renyi(100, 400, rng);
  const auto part = FennelPartitioner().partition(g, 4, rng);
  const auto dist = build_dist_graph(g, part);
  for (const auto& dev : dist.devices) {
    for (std::size_t i = 0; i < dev.num_owned; ++i) {
      std::multiset<NodeId> local_globals;
      for (NodeId u : dev.neighbors(static_cast<NodeId>(i)))
        local_globals.insert(dev.global_of_local[u]);
      const auto global_nbrs = g.neighbors(dev.global_of_local[i]);
      std::multiset<NodeId> expected(global_nbrs.begin(), global_nbrs.end());
      EXPECT_EQ(local_globals, expected);
    }
  }
}

TEST(DistGraph, SendRecvAlignment) {
  // For every (sender d, receiver p): sender's send_local[p] and receiver's
  // recv_local[d] must reference the same global nodes in the same order.
  Rng rng(3);
  DcSbmParams params;
  params.num_nodes = 500;
  params.num_blocks = 5;
  params.avg_degree = 8.0;
  DcSbm sbm = dc_sbm(params, rng);
  const auto part = MultilevelPartitioner().partition(sbm.graph, 4, rng);
  const auto dist = build_dist_graph(sbm.graph, part);
  for (int d = 0; d < 4; ++d)
    for (int p = 0; p < 4; ++p) {
      const auto& send = dist.devices[d].send_local[p];
      const auto& recv = dist.devices[p].recv_local[d];
      ASSERT_EQ(send.size(), recv.size());
      for (std::size_t i = 0; i < send.size(); ++i)
        EXPECT_EQ(dist.devices[d].global_of_local[send[i]],
                  dist.devices[p].global_of_local[recv[i]]);
    }
}

TEST(DistGraph, HaloIsExactlyRemoteOneHopNeighborhood) {
  Rng rng(4);
  Graph g = erdos_renyi(150, 700, rng);
  const auto part = RandomPartitioner().partition(g, 3, rng);
  const auto dist = build_dist_graph(g, part);
  for (int d = 0; d < 3; ++d) {
    const auto& dev = dist.devices[d];
    std::set<NodeId> expected;
    for (std::size_t v = 0; v < g.num_nodes(); ++v) {
      if (part.part_of[v] != d) continue;
      for (NodeId u : g.neighbors(static_cast<NodeId>(v)))
        if (part.part_of[u] != d) expected.insert(u);
    }
    std::set<NodeId> actual(dev.global_of_local.begin() + dev.num_owned,
                            dev.global_of_local.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(DistGraph, CentralNodesHaveNoRemoteNeighbors) {
  Rng rng(5);
  Graph g = erdos_renyi(200, 900, rng);
  const auto part = FennelPartitioner().partition(g, 4, rng);
  const auto dist = build_dist_graph(g, part);
  for (const auto& dev : dist.devices) {
    EXPECT_EQ(dev.central_nodes.size() + dev.marginal_nodes.size(),
              dev.num_owned);
    for (NodeId v : dev.central_nodes)
      for (NodeId u : dev.neighbors(v))
        EXPECT_LT(u, dev.num_owned) << "central node with halo neighbor";
    for (NodeId v : dev.marginal_nodes) {
      bool has_remote = false;
      for (NodeId u : dev.neighbors(v))
        if (u >= dev.num_owned) has_remote = true;
      EXPECT_TRUE(has_remote) << "marginal node without halo neighbor";
    }
  }
}

TEST(DistGraph, SinglePartitionHasNoHalo) {
  Graph g = ring_graph(20);
  const auto dist =
      build_dist_graph(g, fixed_partition(std::vector<int>(20, 0), 1));
  EXPECT_EQ(dist.devices[0].num_halo, 0u);
  EXPECT_EQ(dist.devices[0].marginal_nodes.size(), 0u);
  EXPECT_EQ(dist.devices[0].central_nodes.size(), 20u);
  EXPECT_DOUBLE_EQ(dist.remote_neighbor_ratio(), 0.0);
}

TEST(DistGraph, RemoteNeighborRatioHandComputed) {
  // Path 0-1-2-3 split in the middle: each device owns 2 nodes, 1 halo.
  Graph g = path_graph(4);
  const auto dist = build_dist_graph(g, fixed_partition({0, 0, 1, 1}, 2));
  EXPECT_DOUBLE_EQ(dist.remote_neighbor_ratio(), 0.5);
}

TEST(ScatterGather, RoundTripsOwnedRows) {
  Rng rng(6);
  Graph g = erdos_renyi(60, 240, rng);
  const auto part = RandomPartitioner().partition(g, 3, rng);
  const auto dist = build_dist_graph(g, part);
  Matrix global(60, 7);
  global.fill_uniform(rng, -1.0f, 1.0f);
  const auto locals = scatter_to_devices(global, dist);
  for (int d = 0; d < 3; ++d)
    EXPECT_EQ(locals[d].rows(), dist.devices[d].num_local());
  const Matrix back = gather_from_devices(locals, dist, 7);
  EXPECT_EQ(max_abs_diff(global, back), 0.0f);
}

TEST(DistGraph, EdgesOfCountsIncidentEntries) {
  Graph g = star_graph(5);  // hub 0
  const auto dist =
      build_dist_graph(g, fixed_partition({0, 0, 0, 1, 1}, 2));
  const auto& d0 = dist.devices[0];
  std::vector<NodeId> hub = {0};  // local id of hub on device 0
  EXPECT_EQ(d0.edges_of(hub), 4u);
  EXPECT_EQ(d0.total_edges(), 4u + 2u);  // hub row + two leaf rows
}

}  // namespace
}  // namespace adaqp
