// Tests for CSR graph storage, builders and generators.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace adaqp {
namespace {

/// Structural invariants every graph in the library must satisfy:
/// symmetric, sorted adjacency, no self-loops, no duplicates.
void expect_well_formed(const Graph& g) {
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(static_cast<NodeId>(v));
    ASSERT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    ASSERT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    for (NodeId u : nbrs) {
      ASSERT_NE(u, v) << "self loop at " << v;
      ASSERT_LT(u, g.num_nodes());
      ASSERT_TRUE(g.has_edge(u, static_cast<NodeId>(v)))
          << "asymmetric edge " << v << "->" << u;
    }
  }
}

TEST(GraphBuild, SymmetrizesAndDedupes) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}};
  Graph g = build_graph(3, edges);
  expect_well_formed(g);
  EXPECT_EQ(g.num_undirected_edges(), 2u);  // {0,1}, {1,2}; self-loop dropped
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphBuild, OutOfRangeEdgeThrows) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {{0, 5}};
  EXPECT_THROW(build_graph(3, edges), std::runtime_error);
}

TEST(GraphBuild, EmptyGraph) {
  Graph g = build_graph(4, std::vector<std::pair<NodeId, NodeId>>{});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_directed_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(GraphBuild, DegreesAndAverages) {
  Graph g = star_graph(5);
  EXPECT_EQ(g.degree(0), 4u);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 8.0 / 5.0);
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(DeterministicGraphs, Ring) {
  Graph g = ring_graph(6);
  expect_well_formed(g);
  EXPECT_EQ(g.num_undirected_edges(), 6u);
  for (std::size_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(DeterministicGraphs, Complete) {
  Graph g = complete_graph(5);
  expect_well_formed(g);
  EXPECT_EQ(g.num_undirected_edges(), 10u);
  for (std::size_t v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(DeterministicGraphs, Grid) {
  Graph g = grid_graph(3, 4);
  expect_well_formed(g);
  // 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges.
  EXPECT_EQ(g.num_undirected_edges(), 17u);
  EXPECT_EQ(g.num_nodes(), 12u);
}

TEST(DeterministicGraphs, Path) {
  Graph g = path_graph(4);
  expect_well_formed(g);
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  Graph g = grid_graph(2, 3);  // nodes 0..5
  const std::vector<NodeId> keep = {0, 1, 3};
  Graph sub = induced_subgraph(g, keep);
  expect_well_formed(sub);
  EXPECT_EQ(sub.num_nodes(), 3u);
  // 0-1 (horizontal) and 0-3 (vertical) survive; 1-4, 3-4 don't.
  EXPECT_EQ(sub.num_undirected_edges(), 2u);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(0, 2));  // local id of global 3 is 2
}

TEST(InducedSubgraph, DuplicateKeepThrows) {
  Graph g = ring_graph(4);
  const std::vector<NodeId> keep = {0, 0};
  EXPECT_THROW(induced_subgraph(g, keep), std::runtime_error);
}

TEST(EdgeCut, HandComputed) {
  Graph g = path_graph(4);  // 0-1-2-3
  const std::vector<int> part = {0, 0, 1, 1};
  EXPECT_EQ(edge_cut(g, part), 1u);
  const std::vector<int> alt = {0, 1, 0, 1};
  EXPECT_EQ(edge_cut(g, alt), 3u);
}

TEST(ErdosRenyi, HitsTargetEdgeCount) {
  Rng rng(1);
  Graph g = erdos_renyi(200, 800, rng);
  expect_well_formed(g);
  EXPECT_EQ(g.num_undirected_edges(), 800u);
}

TEST(ErdosRenyi, CapsAtCompleteGraph) {
  Rng rng(2);
  Graph g = erdos_renyi(5, 1000, rng);
  EXPECT_EQ(g.num_undirected_edges(), 10u);
}

TEST(Rmat, ProducesSkewedDegrees) {
  Rng rng(3);
  Graph g = rmat(10, 4000, 0.57, 0.19, 0.19, rng);
  expect_well_formed(g);
  EXPECT_GT(g.num_undirected_edges(), 3000u);
  // R-MAT with standard params concentrates degree on low-id quadrants.
  EXPECT_GT(g.max_degree(), 4 * static_cast<std::size_t>(g.average_degree()));
}

TEST(Rmat, InvalidProbabilitiesThrow) {
  Rng rng(4);
  EXPECT_THROW(rmat(8, 100, 0.6, 0.3, 0.3, rng), std::runtime_error);
}

class DcSbmTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DcSbmTest, StructuralInvariants) {
  const std::size_t blocks = GetParam();
  Rng rng(100 + blocks);
  DcSbmParams params;
  params.num_nodes = 600;
  params.num_blocks = blocks;
  params.avg_degree = 10.0;
  params.intra_prob = 0.8;
  DcSbm out = dc_sbm(params, rng);
  expect_well_formed(out.graph);
  EXPECT_EQ(out.block_of.size(), 600u);
  for (int b : out.block_of) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, static_cast<int>(blocks));
  }
  // Edge count near target (rejection sampling may fall slightly short).
  EXPECT_GT(out.graph.num_undirected_edges(), 2500u);
  EXPECT_LE(out.graph.num_undirected_edges(), 3000u);
}

TEST_P(DcSbmTest, Assortativity) {
  const std::size_t blocks = GetParam();
  if (blocks < 2) GTEST_SKIP() << "assortativity needs >= 2 blocks";
  Rng rng(200 + blocks);
  DcSbmParams params;
  params.num_nodes = 800;
  params.num_blocks = blocks;
  params.avg_degree = 12.0;
  params.intra_prob = 0.8;
  DcSbm out = dc_sbm(params, rng);
  std::size_t intra = 0, total = 0;
  for (std::size_t v = 0; v < out.graph.num_nodes(); ++v)
    for (NodeId u : out.graph.neighbors(static_cast<NodeId>(v))) {
      if (v < u) {
        ++total;
        if (out.block_of[v] == out.block_of[u]) ++intra;
      }
    }
  // Under uniform wiring intra fraction would be ~1/blocks; the planted
  // structure should push it well above that.
  const double frac = static_cast<double>(intra) / total;
  EXPECT_GT(frac, 1.5 / static_cast<double>(blocks));
  EXPECT_GT(frac, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Blocks, DcSbmTest, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace adaqp
