// The memory subsystem's invariants (docs/ARCHITECTURE.md, "Memory
// subsystem"): the Arena bump allocator reuses its chunks across reset();
// Workspace pool keys are stable and distinct; and — the tentpole contract —
// after the warmup epoch every DistTrainer method runs a full training
// epoch with ZERO heap allocations, on every method x async mode x thread
// count, with bit-identical numerics between the cold (allocating) and warm
// (pooled) epochs of independent runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/race_checker.h"
#include "core/trainer.h"
#include "memory/alloc_track.h"
#include "memory/workspace.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pipeline/config.h"
#include "runtime/thread_pool.h"
#include "transport/loopback.h"
#include "transport/transport.h"

namespace adaqp {
namespace {

using memory::Arena;
using memory::Scratch;
using memory::Workspace;
using pipeline::AsyncModeGuard;

/// Scoped global-pool override; restores the previous size on exit.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

// ---- Arena ----------------------------------------------------------------

TEST(Arena, SpansAreCacheLineAlignedAndDisjoint) {
  Arena arena(1 << 12);
  float* a = arena.span<float>(100);
  float* b = arena.span<float>(7);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  // Writes must not overlap.
  for (int i = 0; i < 100; ++i) a[i] = 1.0f;
  for (int i = 0; i < 7; ++i) b[i] = 2.0f;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 1.0f);
}

TEST(Arena, GrowsBeyondOneChunk) {
  Arena arena(1 << 10);  // 1 KiB chunks, spans below exceed that
  void* a = arena.allocate(4000);
  void* b = arena.allocate(8000);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(arena.capacity_bytes(), 12000u);
  EXPECT_GE(arena.used_bytes(), 12000u);
}

TEST(Arena, ResetRetainsCapacityAndWarmPassesDoNotAllocate) {
  Arena arena(1 << 12);
  // Warmup pass sizes the arena.
  for (int i = 0; i < 10; ++i) arena.span<double>(512);
  const std::size_t cap = arena.capacity_bytes();
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.capacity_bytes(), cap);
  // Warm pass: identical span sequence, no heap traffic.
  const std::uint64_t before = memory::alloc_count();
  for (int rep = 0; rep < 5; ++rep) {
    arena.reset();
    for (int i = 0; i < 10; ++i) arena.span<double>(512);
  }
  EXPECT_EQ(memory::alloc_count() - before, 0u);
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

// ---- Workspace pool -------------------------------------------------------

TEST(Workspace, KeysReturnStableDistinctBuffers) {
  Workspace ws;
  Matrix& m1 = ws.matrix(Scratch::kGeneric, 1, 2, 3);
  Matrix& m2 = ws.matrix(Scratch::kGeneric, 1, 2, 4);
  EXPECT_NE(&m1, &m2);
  EXPECT_EQ(&m1, &ws.matrix(Scratch::kGeneric, 1, 2, 3));
  // Same (layer, a, b) under a different kind is a different buffer.
  EXPECT_NE(&m1, &ws.matrix(Scratch::kSancusSnapshot, 1, 2, 3));
  // Typed pools are independent key spaces.
  std::vector<float>& f = ws.floats(Scratch::kGeneric, 1, 2, 3);
  EXPECT_EQ(&f, &ws.floats(Scratch::kGeneric, 1, 2, 3));
  EXPECT_EQ(ws.pool_entries(), 4u);
}

TEST(Workspace, WarmLookupsDoNotAllocate) {
  Workspace ws;
  Matrix& m = ws.matrix(Scratch::kGeneric, 0, 0, 0);
  m.reshape_zero(64, 32);  // capacity established
  std::vector<float>& f = ws.floats(Scratch::kGeneric, 0, 0, 0);
  f.assign(256, 0.0f);
  const std::uint64_t before = memory::alloc_count();
  for (int i = 0; i < 100; ++i) {
    ws.matrix(Scratch::kGeneric, 0, 0, 0).reshape_uninit(64, 32);
    ws.floats(Scratch::kGeneric, 0, 0, 0).assign(256, 1.0f);
  }
  EXPECT_EQ(memory::alloc_count() - before, 0u);
}

// ---- Zero-allocation steady state -----------------------------------------

DatasetSpec steady_spec(bool multi_label = false) {
  DatasetSpec spec;
  spec.name = multi_label ? "steady_multi" : "steady_single";
  spec.num_nodes = 600;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.multi_label = multi_label;
  spec.intra_prob = 0.8;
  return spec;
}

/// Run `epochs` steady-configured training epochs and return the per-epoch
/// losses; after the warmup epoch, every epoch must be steady state with a
/// zero allocation report.
std::vector<double> run_steady(const Dataset& ds, Method method, bool async,
                               int threads, int epochs,
                               bool expect_zero = true) {
  AsyncModeGuard async_guard(async);
  ThreadCountGuard thread_guard(threads);
  // The zero-allocation contract only covers loopback delivery; pin it so
  // this suite also passes in CI's ADAQP_TRANSPORT=tcp / ADAQP_FAULT legs.
  transport::ScopedTransport loopback(
      std::make_unique<transport::LoopbackTransport>());
  Rng rng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 3;
  mc.dropout = 0.3f;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = epochs;
  opts.seed = 7;
  opts.reassign_period = 1 << 20;  // refresh only at epoch 0
  opts.eval_every_epoch = false;   // steady-state contract requirement
  opts.verbose = false;
  DistTrainer trainer(ds, dist, cluster, mc, opts);

  // Racecheck mode (e.g. CI's ADAQP_RACECHECK=1 pass) is explicitly
  // excluded from the steady-state contract: the checker's per-launch
  // record capture allocates by design. The runs below still execute —
  // their stage graphs get verified — but the allocation assertions are
  // vacuously skipped and the trainer must report not-steady.
  const bool contract_active = !analysis::racecheck_enabled();

  std::vector<double> losses;
  for (int e = 0; e < epochs; ++e) {
    const EpochRecord rec = trainer.train_epoch();
    losses.push_back(rec.train_loss);
    const EpochAllocReport& report = trainer.last_alloc_report();
    if (e == 0) {
      EXPECT_FALSE(report.steady_state) << "warmup epoch cannot be steady";
      continue;
    }
    if (!contract_active) {
      EXPECT_FALSE(report.steady_state)
          << "racecheck-mode epochs must not claim steady state";
      continue;
    }
    EXPECT_TRUE(report.steady_state)
        << method_name(method) << " epoch " << e
        << " did not qualify as steady state";
    if (expect_zero) {
      EXPECT_EQ(report.total(), 0u)
          << method_name(method) << " async=" << async
          << " threads=" << threads << " epoch " << e
          << " allocated: forward=" << report.forward
          << " backward=" << report.backward
          << " optimizer=" << report.optimizer
          << " refresh=" << report.refresh
          << " evaluation=" << report.evaluation;
    }
  }
  return losses;
}

struct SteadyCase {
  Method method;
  bool async;
  int threads;
};

class SteadyStateTest : public ::testing::TestWithParam<SteadyCase> {};

TEST_P(SteadyStateTest, WarmEpochsAllocateNothing) {
  const SteadyCase c = GetParam();
  Rng rng(11);
  const Dataset ds = make_dataset(steady_spec(), rng);
  run_steady(ds, c.method, c.async, c.threads, 4);
}

std::string steady_case_name(
    const ::testing::TestParamInfo<SteadyCase>& info) {
  std::string name = method_name(info.param.method);
  for (char& ch : name)
    if (ch == '-') ch = '_';
  name += info.param.async ? "_async" : "_sync";
  name += "_t" + std::to_string(info.param.threads);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, SteadyStateTest,
    ::testing::Values(
        SteadyCase{Method::kVanilla, true, 4},
        SteadyCase{Method::kVanilla, false, 1},
        SteadyCase{Method::kAdaQP, true, 1},
        SteadyCase{Method::kAdaQP, true, 4},
        SteadyCase{Method::kAdaQP, true, 8},
        SteadyCase{Method::kAdaQP, false, 4},
        SteadyCase{Method::kAdaQPUniform, true, 4},
        SteadyCase{Method::kAdaQPUniform, false, 1},
        SteadyCase{Method::kPipeGCN, true, 1},
        SteadyCase{Method::kPipeGCN, true, 4},
        SteadyCase{Method::kPipeGCN, false, 1},
        SteadyCase{Method::kSancus, true, 4},
        SteadyCase{Method::kSancus, false, 1}),
    steady_case_name);

TEST(SteadyState, MultiLabelLossPathAllocatesNothing) {
  Rng rng(12);
  const Dataset ds = make_dataset(steady_spec(/*multi_label=*/true), rng);
  run_steady(ds, Method::kAdaQP, /*async=*/true, /*threads=*/4, 4);
}

/// The pooled/persistent buffers must not change numerics: per-epoch losses
/// are bitwise identical across async modes and thread counts under the
/// steady-state configuration (warm epochs included).
TEST(SteadyState, WarmEpochsAreBitIdenticalAcrossSchedules) {
  Rng rng(13);
  const Dataset ds = make_dataset(steady_spec(), rng);
  for (Method method : {Method::kVanilla, Method::kAdaQP,
                        Method::kAdaQPUniform, Method::kPipeGCN,
                        Method::kSancus}) {
    const std::vector<double> ref =
        run_steady(ds, method, /*async=*/true, /*threads=*/4, 5);
    for (const auto& [async, threads] :
         {std::pair<bool, int>{true, 1}, {true, 8}, {false, 1}, {false, 4}}) {
      const std::vector<double> got =
          run_steady(ds, method, async, threads, 5);
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t e = 0; e < ref.size(); ++e)
        EXPECT_EQ(ref[e], got[e])
            << method_name(method) << " async=" << async
            << " threads=" << threads << " diverged at epoch " << e;
    }
  }
}

/// Modes excluded from the contract must be reported as not-steady (and not
/// trip the ADAQP_ALLOC_TRACK assertion): here, evaluation every epoch.
TEST(SteadyState, EvaluationEpochsAreExcludedFromTheContract) {
  Rng rng(14);
  const Dataset ds = make_dataset(steady_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 2;
  TrainOptions opts;
  opts.method = Method::kVanilla;
  opts.epochs = 2;
  opts.eval_every_epoch = true;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  trainer.train_epoch();
  trainer.train_epoch();
  EXPECT_FALSE(trainer.last_alloc_report().steady_state);
}

/// Metrics capture must not weaken the contract: with ADAQP_METRICS active
/// (capture storage dimensioned up front in run(), every later write landing
/// in pre-allocated rows), warm epochs still allocate nothing — and the
/// capture itself records that fact per epoch.
TEST(SteadyState, MetricsCaptureKeepsWarmEpochsAllocationFree) {
  transport::ScopedTransport loopback(
      std::make_unique<transport::LoopbackTransport>());
  Rng rng(15);
  const Dataset ds = make_dataset(steady_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  AsyncModeGuard async_guard(true);
  ThreadCountGuard thread_guard(4);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 3;
  mc.dropout = 0.3f;
  TrainOptions opts;
  opts.method = Method::kAdaQP;
  opts.epochs = 5;
  opts.seed = 7;
  opts.reassign_period = 1 << 20;  // refresh only at epoch 0
  opts.eval_every_epoch = false;   // steady-state contract requirement
  DistTrainer trainer(ds, dist, cluster, mc, opts);

  const std::string path = ::testing::TempDir() + "adaqp_steady_metrics.json";
  {
    obs::MetricsGuard guard(path);
    trainer.run();
  }

  const obs::RunCapture& cap = trainer.run_capture();
  ASSERT_TRUE(cap.enabled());
  ASSERT_EQ(cap.captured_epochs(), opts.epochs);
  const bool contract_active = !analysis::racecheck_enabled();
  for (int e = 1; e < opts.epochs; ++e) {
    const obs::EpochRow& row = cap.row_at(e);
    if (!contract_active) {
      EXPECT_FALSE(row.steady_state);
      continue;
    }
    EXPECT_TRUE(row.steady_state)
        << "epoch " << e << " lost steady state under metrics capture";
    EXPECT_EQ(row.allocs_forward + row.allocs_backward + row.allocs_optimizer +
                  row.allocs_refresh + row.allocs_evaluation,
              0u)
        << "epoch " << e << " allocated while metrics capture was active:"
        << " forward=" << row.allocs_forward
        << " backward=" << row.allocs_backward
        << " optimizer=" << row.allocs_optimizer
        << " refresh=" << row.allocs_refresh
        << " evaluation=" << row.allocs_evaluation;
  }
  // The shutdown export still ran.
  std::ifstream report(path);
  EXPECT_TRUE(report.good());
}

}  // namespace
}  // namespace adaqp
