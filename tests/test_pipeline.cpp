// The pipeline subsystem's invariants: StageGraph executes a DAG correctly
// under both the async scheduler and the serial reference schedule; the
// submit()/wait() halo exchange is bit-identical to the synchronous one at
// any thread count; a full DistTrainer::run() is bit-identical with the
// async pipeline on and off for every method; ADAQP_ASYNC parsing is
// strict; and the trace recorder emits loadable Chrome trace JSON.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/trainer.h"
#include "dist/halo_exchange.h"
#include "graph/generators.h"
#include "pipeline/async_exchange.h"
#include "pipeline/config.h"
#include "pipeline/stage_graph.h"
#include "pipeline/trace.h"
#include "runtime/thread_pool.h"
#include "simd/isa.h"

namespace adaqp {
namespace {

using pipeline::AsyncExchange;
using pipeline::AsyncModeGuard;
using pipeline::StageGraph;

/// Scoped global-pool override; restores the previous size on exit.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

// ---- StageGraph -----------------------------------------------------------

TEST(Event, SetIsStickyAndWaitReturns) {
  pipeline::Event ev;
  EXPECT_FALSE(ev.done());
  ev.set();
  EXPECT_TRUE(ev.done());
  ev.wait();  // must not block
}

/// Diamond + chain: every stage appends its id under a mutex; afterwards
/// each stage must appear exactly once and after all of its dependencies.
void check_topological(bool async, int threads) {
  ThreadCountGuard guard(threads);
  std::mutex mu;
  std::vector<int> order;
  StageGraph g;
  auto stage = [&](int tag) {
    return [&mu, &order, tag] {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(tag);
    };
  };
  const int a = g.add("a", stage(0));
  const int b = g.add("b", stage(1), {a});
  const int c = g.add("c", stage(2), {a});
  const int d = g.add("d", stage(3), {b, c});
  const int e = g.add("e", stage(4), {d});
  (void)e;
  g.run(async);

  ASSERT_EQ(order.size(), 5u);
  std::vector<int> pos(5, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_GE(order[i], 0);
    ASSERT_LT(order[i], 5);
    ASSERT_EQ(pos[order[i]], -1) << "stage ran twice";
    pos[order[i]] = static_cast<int>(i);
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
  EXPECT_LT(pos[3], pos[4]);
  for (int id = 0; id < 5; ++id) EXPECT_TRUE(g.stage_done(id).done());
}

TEST(StageGraph, TopologicalExecutionSerial) {
  check_topological(/*async=*/false, 1);
}
TEST(StageGraph, TopologicalExecutionAsyncOneThread) {
  check_topological(/*async=*/true, 1);
}
TEST(StageGraph, TopologicalExecutionAsyncFourThreads) {
  check_topological(/*async=*/true, 4);
}
TEST(StageGraph, TopologicalExecutionAsyncEightThreads) {
  check_topological(/*async=*/true, 8);
}

TEST(StageGraph, ManyIndependentStagesAllRun) {
  ThreadCountGuard guard(4);
  StageGraph g;
  std::vector<std::atomic<int>> hits(64);
  for (int i = 0; i < 64; ++i)
    g.add("s" + std::to_string(i), [&hits, i] { hits[i]++; });
  g.run(/*async=*/true);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(StageGraph, ExceptionPropagatesAndPoisonsDependents) {
  ThreadCountGuard guard(4);
  StageGraph g;
  std::atomic<bool> dependent_ran{false};
  const int boom =
      g.add("boom", [] { throw std::runtime_error("stage boom"); });
  g.add("after", [&dependent_ran] { dependent_ran = true; }, {boom});
  g.launch();
  EXPECT_THROW(g.wait(), std::runtime_error);
  EXPECT_FALSE(dependent_ran.load());
}

TEST(StageGraph, DependencyMustPointBackwards) {
  StageGraph g;
  g.add("a", [] {});
  EXPECT_THROW(g.add("bad", [] {}, {5}), std::runtime_error);
}

// ---- ADAQP_ASYNC parsing --------------------------------------------------

TEST(AsyncConfig, StrictParsing) {
  pipeline::set_async_override(-1);  // consult the environment
  unsetenv("ADAQP_ASYNC");
  EXPECT_TRUE(pipeline::async_enabled());  // default: async on
  setenv("ADAQP_ASYNC", "0", 1);
  EXPECT_FALSE(pipeline::async_enabled());
  setenv("ADAQP_ASYNC", "1", 1);
  EXPECT_TRUE(pipeline::async_enabled());
  setenv("ADAQP_ASYNC", "2", 1);
  EXPECT_THROW(pipeline::async_enabled(), std::runtime_error);
  setenv("ADAQP_ASYNC", "yes", 1);
  EXPECT_THROW(pipeline::async_enabled(), std::runtime_error);
  unsetenv("ADAQP_ASYNC");
}

TEST(AsyncConfig, OverrideWinsAndGuardRestores) {
  pipeline::set_async_override(-1);
  unsetenv("ADAQP_ASYNC");
  {
    AsyncModeGuard guard(false);
    EXPECT_FALSE(pipeline::async_enabled());
    {
      AsyncModeGuard inner(true);
      EXPECT_TRUE(pipeline::async_enabled());
    }
    EXPECT_FALSE(pipeline::async_enabled());
  }
  EXPECT_TRUE(pipeline::async_enabled());
}

// ---- Async exchange == sync exchange, bit for bit -------------------------

struct ExchangeFixture {
  Graph g;
  DistGraph dist;
  ClusterSpec cluster = ClusterSpec::machines(2, 2);
  Matrix global;

  ExchangeFixture() {
    Rng rng(4242);
    g = erdos_renyi(160, 700, rng);
    const auto part = MultilevelPartitioner().partition(g, 4, rng);
    dist = build_dist_graph(g, part);
    global = Matrix(g.num_nodes(), 9);
    global.fill_uniform(rng, -2.0f, 2.0f);
  }

  std::vector<Rng> fresh_rngs() const {
    std::vector<Rng> rngs;
    for (int d = 0; d < dist.num_devices(); ++d) rngs.emplace_back(900 + d);
    return rngs;
  }
};

class AsyncExchangeBitExact : public ::testing::TestWithParam<int> {};

TEST_P(AsyncExchangeBitExact, ForwardSubmitWaitEqualsSynchronous) {
  const int threads = GetParam();
  ExchangeFixture fx;
  const auto plan = ExchangePlan::uniform_forward(fx.dist, 4);

  // Reference: synchronous exchange on a 1-thread pool.
  std::vector<Matrix> ref = scatter_to_devices(fx.global, fx.dist);
  ExchangeStats ref_stats;
  {
    ThreadCountGuard guard(1);
    auto rngs = fx.fresh_rngs();
    ref_stats = exchange_halo_forward(fx.dist, ref, plan, fx.cluster, rngs);
  }

  // Async submit/wait at the parameterized thread count.
  ThreadCountGuard guard(threads);
  auto rngs = fx.fresh_rngs();
  std::vector<Matrix> locals = scatter_to_devices(fx.global, fx.dist);
  AsyncExchange exchange(fx.dist, fx.cluster);
  exchange.submit_forward(locals, plan, rngs, /*async=*/true);
  const ExchangeStats stats = exchange.wait();

  for (std::size_t d = 0; d < locals.size(); ++d)
    ASSERT_EQ(max_abs_diff(locals[d], ref[d]), 0.0f) << "device " << d;
  EXPECT_EQ(stats.pair_bytes, ref_stats.pair_bytes);
  EXPECT_EQ(stats.comm_seconds, ref_stats.comm_seconds);
  EXPECT_EQ(stats.quant_seconds, ref_stats.quant_seconds);
  EXPECT_EQ(stats.dequant_seconds, ref_stats.dequant_seconds);
}

TEST_P(AsyncExchangeBitExact, BackwardSubmitWaitEqualsSynchronous) {
  const int threads = GetParam();
  ExchangeFixture fx;
  const auto plan = ExchangePlan::uniform_backward(fx.dist, 8);

  std::vector<Matrix> ref = scatter_to_devices(fx.global, fx.dist);
  ExchangeStats ref_stats;
  {
    ThreadCountGuard guard(1);
    auto rngs = fx.fresh_rngs();
    ref_stats = exchange_halo_backward(fx.dist, ref, plan, fx.cluster, rngs);
  }

  ThreadCountGuard guard(threads);
  auto rngs = fx.fresh_rngs();
  std::vector<Matrix> grads = scatter_to_devices(fx.global, fx.dist);
  AsyncExchange exchange(fx.dist, fx.cluster);
  exchange.submit_backward(grads, plan, rngs, /*async=*/true);
  const ExchangeStats stats = exchange.wait();

  for (std::size_t d = 0; d < grads.size(); ++d)
    ASSERT_EQ(max_abs_diff(grads[d], ref[d]), 0.0f) << "device " << d;
  EXPECT_EQ(stats.pair_bytes, ref_stats.pair_bytes);
  EXPECT_EQ(stats.comm_seconds, ref_stats.comm_seconds);
}

TEST_P(AsyncExchangeBitExact, PairHandlesFireBeforeWait) {
  const int threads = GetParam();
  ExchangeFixture fx;
  const auto plan = ExchangePlan::uniform_forward(fx.dist, 2);
  ThreadCountGuard guard(threads);
  auto rngs = fx.fresh_rngs();
  std::vector<Matrix> locals = scatter_to_devices(fx.global, fx.dist);
  AsyncExchange exchange(fx.dist, fx.cluster);
  exchange.submit_forward(locals, plan, rngs, /*async=*/true);
  // Per-pair completion handles are waitable independently of the join.
  int pairs = 0;
  for (int d = 0; d < fx.dist.num_devices(); ++d)
    for (int p = 0; p < fx.dist.num_devices(); ++p)
      if (pipeline::Event* ev = exchange.pair_done(d, p)) {
        ev->wait();
        EXPECT_TRUE(ev->done());
        ++pairs;
      }
  EXPECT_GT(pairs, 0);
  exchange.wait();
}

INSTANTIATE_TEST_SUITE_P(Threads, AsyncExchangeBitExact,
                         ::testing::Values(1, 4, 8));

// ---- Full trainer: async pipeline on == off, bit for bit ------------------

DatasetSpec pipeline_spec() {
  DatasetSpec spec;
  spec.name = "pipeline_tiny";
  spec.num_nodes = 300;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.multi_label = false;
  spec.intra_prob = 0.8;
  return spec;
}

RunResult run_trainer(const Dataset& ds, const DistGraph& dist, Method method,
                      int threads, bool async) {
  ThreadCountGuard guard(threads);
  AsyncModeGuard mode(async);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.spec.num_classes;
  mc.num_layers = 3;
  mc.dropout = 0.5f;  // dropout on: the mask pre-draw must preserve streams
  mc.layer_norm = true;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = 6;
  opts.seed = 99;
  opts.reassign_period = 3;
  opts.eval_every_epoch = true;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  return trainer.run();
}

class PipelineTrainerEquality : public ::testing::TestWithParam<Method> {};

TEST_P(PipelineTrainerEquality, AsyncOnOffAndSingleThreadAllBitIdentical) {
  const Method method = GetParam();
  Rng rng(314);
  const Dataset ds = make_dataset(pipeline_spec(), rng);
  Rng part_rng(27);
  const auto part =
      make_partitioner("multilevel")->partition(ds.graph, 4, part_rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  const RunResult sync1 = run_trainer(ds, dist, method, 1, /*async=*/false);
  const RunResult async1 = run_trainer(ds, dist, method, 1, /*async=*/true);
  const RunResult async8 = run_trainer(ds, dist, method, 8, /*async=*/true);
  const RunResult sync8 = run_trainer(ds, dist, method, 8, /*async=*/false);

  auto expect_equal = [](const RunResult& a, const RunResult& b,
                         const char* what) {
    ASSERT_EQ(a.epochs.size(), b.epochs.size()) << what;
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
      EXPECT_EQ(a.epochs[e].train_loss, b.epochs[e].train_loss)
          << what << " epoch " << e;
      EXPECT_EQ(a.epochs[e].val_acc, b.epochs[e].val_acc)
          << what << " epoch " << e;
      EXPECT_EQ(a.epochs[e].test_acc, b.epochs[e].test_acc)
          << what << " epoch " << e;
      EXPECT_EQ(a.epochs[e].time.total, b.epochs[e].time.total)
          << what << " epoch " << e;
    }
    EXPECT_EQ(a.total_comm_bytes, b.total_comm_bytes) << what;
    EXPECT_EQ(a.final_val_acc, b.final_val_acc) << what;
    EXPECT_EQ(a.final_test_acc, b.final_test_acc) << what;
  };
  expect_equal(sync1, async1, "sync1 vs async1");
  expect_equal(sync1, async8, "sync1 vs async8");
  expect_equal(sync1, sync8, "sync1 vs sync8");
}

INSTANTIATE_TEST_SUITE_P(Methods, PipelineTrainerEquality,
                         ::testing::Values(Method::kVanilla, Method::kAdaQP,
                                           Method::kAdaQPUniform,
                                           Method::kPipeGCN,
                                           Method::kSancus));

// ---- Backward overlap: gradients and Adam state, bit for bit --------------

/// Every float of trainer-held optimizer state after a short run: parameter
/// values, last-epoch gradients, and both Adam moments — the deep
/// comparison behind the full-duplex backward's bit-identity claim.
struct TrainerState {
  std::vector<std::vector<float>> tensors;

  static TrainerState capture(DistTrainer& trainer) {
    TrainerState s;
    for (Param* p : trainer.model().params()) {
      for (const Matrix* m : {&p->value, &p->grad, &p->adam_m, &p->adam_v})
        s.tensors.emplace_back(m->data(), m->data() + m->size());
    }
    return s;
  }
};

TrainerState run_and_capture(const Dataset& ds, const DistGraph& dist,
                             Method method, int threads, bool async,
                             std::optional<simd::Isa> isa = std::nullopt) {
  ThreadCountGuard guard(threads);
  AsyncModeGuard mode(async);
  std::optional<simd::IsaGuard> isa_guard;
  if (isa) isa_guard.emplace(*isa);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.spec.num_classes;
  mc.num_layers = 3;
  mc.dropout = 0.5f;
  mc.layer_norm = true;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = 5;
  opts.seed = 77;
  opts.reassign_period = 2;
  opts.eval_every_epoch = false;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  // Cross-iteration exchanges (PipeGCN) stay in flight between these calls.
  for (int e = 0; e < opts.epochs; ++e) trainer.train_epoch();
  return TrainerState::capture(trainer);
}

class BackwardOverlapStateEquality : public ::testing::TestWithParam<Method> {
};

TEST_P(BackwardOverlapStateEquality, GradientsAndAdamStateBitIdentical) {
  const Method method = GetParam();
  Rng rng(2718);
  const Dataset ds = make_dataset(pipeline_spec(), rng);
  Rng part_rng(31);
  const auto part =
      make_partitioner("multilevel")->partition(ds.graph, 4, part_rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  const TrainerState ref =
      run_and_capture(ds, dist, method, 1, /*async=*/false);
  const TrainerState async1 =
      run_and_capture(ds, dist, method, 1, /*async=*/true);
  const TrainerState async4 =
      run_and_capture(ds, dist, method, 4, /*async=*/true);
  const TrainerState async8 =
      run_and_capture(ds, dist, method, 8, /*async=*/true);
  const TrainerState sync8 =
      run_and_capture(ds, dist, method, 8, /*async=*/false);
  const TrainerState scalar4 = run_and_capture(ds, dist, method, 4,
                                               /*async=*/true,
                                               simd::Isa::kScalar);

  auto expect_equal = [&](const TrainerState& got, const char* what) {
    ASSERT_EQ(got.tensors.size(), ref.tensors.size()) << what;
    for (std::size_t t = 0; t < ref.tensors.size(); ++t) {
      ASSERT_EQ(got.tensors[t].size(), ref.tensors[t].size()) << what;
      for (std::size_t i = 0; i < ref.tensors[t].size(); ++i)
        ASSERT_EQ(got.tensors[t][i], ref.tensors[t][i])
            << what << " tensor " << t << " element " << i;
    }
  };
  expect_equal(async1, "async threads=1");
  expect_equal(async4, "async threads=4");
  expect_equal(async8, "async threads=8");
  expect_equal(sync8, "sync threads=8");
  expect_equal(scalar4, "async threads=4 ADAQP_ISA=scalar");
}

INSTANTIATE_TEST_SUITE_P(Methods, BackwardOverlapStateEquality,
                         ::testing::Values(Method::kVanilla, Method::kAdaQP,
                                           Method::kAdaQPUniform,
                                           Method::kPipeGCN,
                                           Method::kSancus));

// ---- Trace recorder -------------------------------------------------------

TEST(TraceRecorder, RecordsStagesAndWritesChromeJson) {
  ThreadCountGuard guard(4);
  AsyncModeGuard mode(true);
  auto& rec = pipeline::TraceRecorder::instance();
  rec.start();
  {
    Rng rng(11);
    const Dataset ds = make_dataset(pipeline_spec(), rng);
    Rng part_rng(5);
    const auto part =
        make_partitioner("multilevel")->partition(ds.graph, 4, part_rng);
    const DistGraph dist = build_dist_graph(ds.graph, part);
    const ClusterSpec cluster = ClusterSpec::machines(2, 2);
    ModelConfig mc;
    mc.aggregator = Aggregator::kGcn;
    mc.in_dim = ds.spec.feature_dim;
    mc.hidden_dim = 16;
    mc.out_dim = ds.spec.num_classes;
    mc.num_layers = 2;
    TrainOptions opts;
    opts.method = Method::kAdaQP;
    opts.epochs = 2;
    opts.eval_every_epoch = false;
    DistTrainer trainer(ds, dist, cluster, mc, opts);
    trainer.run();
  }
  rec.stop();
  ASSERT_GT(rec.event_count(), 0u);

  const std::string path = ::testing::TempDir() + "adaqp_trace_test.json";
  ASSERT_TRUE(rec.write_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("/central/d0"), std::string::npos);
  EXPECT_NE(json.find("fwd/d"), std::string::npos);
  // Full-duplex backward stages: row-subset adjoints and the fold.
  EXPECT_NE(json.find("L1b/marginal/d0"), std::string::npos);
  EXPECT_NE(json.find("L1b/central/d0"), std::string::npos);
  EXPECT_NE(json.find("L1b/fold"), std::string::npos);
  EXPECT_NE(json.find("bwd-enc/d"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adaqp
