// The transport layer (src/transport/, docs/TRANSPORT.md): frame format
// round-trips and strict corruption rejection, byte-stream reassembly,
// tag-matched delivery under seeded faults, and the headline contract —
// training over the real TCP backend is bit-identical to loopback for every
// method, async mode and thread count (delivered-payload digest plus final
// loss/accuracy bit patterns).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "obs/metrics.h"
#include "pipeline/config.h"
#include "quant/message_codec.h"
#include "runtime/thread_pool.h"
#include "transport/fault.h"
#include "transport/loopback.h"
#include "transport/stream.h"
#include "transport/tcp.h"
#include "transport/transport.h"

namespace adaqp {
namespace {

using pipeline::AsyncModeGuard;
using transport::FaultInjectingTransport;
using transport::FaultSpec;
using transport::FrameHeader;
using transport::FrameKind;
using transport::FrameReader;
using transport::FrameTag;
using transport::LoopbackTransport;
using transport::ScopedTransport;
using transport::TcpOptions;
using transport::TcpTransport;
using transport::TransportError;
using transport::TransportStats;

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

std::uint64_t bits_of(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::vector<std::uint8_t> pattern_payload(std::size_t n, unsigned seed) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::uint8_t>((i * 131 + seed * 7919 + 17) & 0xFF);
  return p;
}

// ---------------------------------------------------------------------------
// Frame format
// ---------------------------------------------------------------------------

TEST(Frame, RoundTripsRaggedPayloadsThroughAnyFragmentation) {
  // Ragged sizes including empty, sub-header, around the header boundary,
  // and bulk — reassembled from chunk sizes that split mid-header and
  // mid-payload.
  const std::size_t sizes[] = {0, 1, 3, 13, 27, 28, 29, 257, 4096};
  const std::size_t chunks[] = {1, 2, 5, 13, 64, 100000};
  for (const std::size_t chunk : chunks) {
    FrameReader reader;
    std::vector<std::uint8_t> wire;
    std::vector<std::vector<std::uint8_t>> sent;
    unsigned seed = 0;
    for (const std::size_t n : sizes) {
      FrameHeader h;
      h.kind = FrameKind::kData;
      h.tag = FrameTag{7, seed + 1, static_cast<std::uint8_t>(seed & 1),
                       static_cast<std::uint8_t>(seed % 4),
                       static_cast<std::uint8_t>((seed + 1) % 4)};
      h.payload_len = static_cast<std::uint32_t>(n);
      sent.push_back(pattern_payload(n, seed));
      std::vector<std::uint8_t> frame;
      transport::write_frame(h, sent.back(), frame);
      wire.insert(wire.end(), frame.begin(), frame.end());
      ++seed;
    }
    for (std::size_t off = 0; off < wire.size(); off += chunk)
      reader.feed({wire.data() + off, std::min(chunk, wire.size() - off)});
    FrameHeader h;
    std::vector<std::uint8_t> payload;
    std::size_t i = 0;
    while (reader.next(h, payload)) {
      ASSERT_LT(i, sent.size());
      EXPECT_EQ(h.tag.channel, 7u);
      EXPECT_EQ(h.tag.round, static_cast<std::uint32_t>(i + 1));
      EXPECT_EQ(payload, sent[i]);
      ++i;
    }
    EXPECT_EQ(i, sent.size()) << "chunk=" << chunk;
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(Frame, RejectsBadMagicVersionKindAndChecksum) {
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.tag = FrameTag{1, 2, 0, 0, 1};
  const std::vector<std::uint8_t> payload = pattern_payload(64, 3);
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> frame;
  transport::write_frame(h, payload, frame);

  {
    std::vector<std::uint8_t> bad = frame;
    bad[0] ^= 0xFF;  // magic
    EXPECT_THROW(
        transport::parse_header({bad.data(), transport::kHeaderBytes}),
        TransportError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    bad[4] ^= 0xFF;  // version
    EXPECT_THROW(
        transport::parse_header({bad.data(), transport::kHeaderBytes}),
        TransportError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    bad[6] = 0x7E;  // kind
    EXPECT_THROW(
        transport::parse_header({bad.data(), transport::kHeaderBytes}),
        TransportError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    bad[transport::kHeaderBytes + 11] ^= 0x01;  // payload bit flip
    FrameReader reader;
    reader.feed(bad);
    FrameHeader out;
    std::vector<std::uint8_t> p;
    EXPECT_THROW(reader.next(out, p), TransportError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    bad[12] ^= 0x01;  // header (round) flip: checksum must catch it too
    FrameReader reader;
    reader.feed(bad);
    FrameHeader out;
    std::vector<std::uint8_t> p;
    EXPECT_THROW(reader.next(out, p), TransportError);
  }
}

TEST(Frame, TruncationIsIncompleteNotCorrupt) {
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.tag = FrameTag{1, 1, 0, 0, 1};
  const std::vector<std::uint8_t> payload = pattern_payload(100, 5);
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> frame;
  transport::write_frame(h, payload, frame);

  FrameReader reader;
  FrameHeader out;
  std::vector<std::uint8_t> p;
  // A prefix — header or payload cut short — yields "need more bytes", and
  // the eventual remainder completes the frame intact.
  reader.feed({frame.data(), transport::kHeaderBytes - 4});
  EXPECT_FALSE(reader.next(out, p));
  reader.feed({frame.data() + transport::kHeaderBytes - 4, 30});
  EXPECT_FALSE(reader.next(out, p));
  reader.feed({frame.data() + transport::kHeaderBytes + 26,
               frame.size() - transport::kHeaderBytes - 26});
  ASSERT_TRUE(reader.next(out, p));
  EXPECT_EQ(p, payload);
}

TEST(Frame, ChecksumCoversHeaderAndPayloadDeterministically) {
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.tag = FrameTag{3, 9, 1, 2, 0};
  const std::vector<std::uint8_t> payload = pattern_payload(33, 11);
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> a, b;
  transport::write_frame(h, payload, a);
  transport::write_frame(h, payload, b);
  EXPECT_EQ(a, b);  // byte-stable serialization
  EXPECT_NO_THROW(transport::verify_frame(
      {a.data(), transport::kHeaderBytes},
      {a.data() + transport::kHeaderBytes, payload.size()}));
}

// ---------------------------------------------------------------------------
// Codec span decode
// ---------------------------------------------------------------------------

TEST(Codec, SpanDecodeMatchesBlockDecodeForAllWidths) {
  Rng rng(99);
  Matrix src(6, 24);
  for (std::size_t r = 0; r < src.rows(); ++r)
    for (std::size_t c = 0; c < src.cols(); ++c)
      src.row(r)[c] = static_cast<float>(rng.normal());
  const std::vector<NodeId> rows = {0, 2, 3, 5};
  const std::vector<int> widths = {2, 4, 8, 32};
  Rng enc_rng(7);
  const EncodedBlock block = encode_rows(src, rows, widths, enc_rng);

  const std::vector<NodeId> dst_rows = {1, 0, 3, 2};
  Matrix via_block(4, 24), via_span(4, 24);
  decode_rows(block, via_block, dst_rows);
  decode_rows(std::span<const std::uint8_t>(block.bytes), via_span, dst_rows);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 24; ++c)
      EXPECT_EQ(via_block.row(r)[c], via_span.row(r)[c]);
}

// ---------------------------------------------------------------------------
// Transport backends, unit level
// ---------------------------------------------------------------------------

TEST(Loopback, DeliversInPlaceAndAccounts) {
  LoopbackTransport lo;
  const std::vector<std::uint8_t> payload = pattern_payload(50, 1);
  const FrameTag tag{4, 1, 0, 0, 2};
  lo.send(tag, payload);
  const auto got = lo.recv(tag, payload);
  EXPECT_EQ(got.data(), payload.data());  // zero-copy
  const TransportStats s = lo.stats();
  EXPECT_EQ(s.frames_delivered, 1u);
  EXPECT_EQ(s.bytes_delivered, payload.size());
  EXPECT_NE(s.digest, 0u);
  EXPECT_TRUE(lo.zero_alloc_delivery());
  EXPECT_EQ(lo.pair_slot(4, 0, 0, 2), nullptr);
}

TEST(Tcp, SelfConnectDeliversFramesInSendOrderPerTag) {
  const std::uint64_t rtt_before =
      obs::instruments().transport_rtt_us.count();
  TcpOptions opts;  // rank 0 of 1, ephemeral port
  TcpTransport tcp(opts);
  EXPECT_GT(tcp.listen_port(), 0);
  EXPECT_FALSE(tcp.local_delivery(FrameTag{0, 1, 0, 0, 1}));

  const FrameTag tag{9, 1, 0, 0, 1};
  std::vector<std::vector<std::uint8_t>> sent;
  for (unsigned i = 0; i < 3; ++i) {
    sent.push_back(pattern_payload(40 + 13 * i, i));
    tcp.send(tag, sent.back());
  }
  for (unsigned i = 0; i < 3; ++i) {
    const auto got = tcp.recv(tag, {});
    ASSERT_EQ(got.size(), sent[i].size());
    EXPECT_EQ(0, std::memcmp(got.data(), sent[i].data(), got.size()))
        << "same-tag frames must arrive FIFO";
  }
  const TransportStats s = tcp.stats();
  EXPECT_EQ(s.frames_delivered, 3u);
  EXPECT_GT(obs::instruments().transport_rtt_us.count(), rtt_before)
      << "dial handshake must record an RTT sample";
  // The receive slot is stable storage the race checker can annotate.
  EXPECT_NE(tcp.pair_slot(9, 0, 0, 1), nullptr);
}

TEST(Tcp, CrossPairReorderCannotMixTags) {
  TcpTransport tcp(TcpOptions{});
  const FrameTag t01{2, 1, 0, 0, 1};
  const FrameTag t10{2, 1, 0, 1, 0};
  const auto p01 = pattern_payload(65, 1);
  const auto p10 = pattern_payload(30, 2);
  tcp.send(t01, p01);
  tcp.send(t10, p10);
  // Ask for them in the opposite order: tag matching, not arrival order,
  // decides what a recv sees.
  const auto got10 = tcp.recv(t10, {});
  EXPECT_EQ(0, std::memcmp(got10.data(), p10.data(), p10.size()));
  const auto got01 = tcp.recv(t01, {});
  EXPECT_EQ(0, std::memcmp(got01.data(), p01.data(), p01.size()));
}

TEST(Tcp, MultiProcessNeedsExplicitBasePort) {
  TcpOptions opts;
  opts.rank = 0;
  opts.nprocs = 2;
  opts.base_port = 0;
  EXPECT_THROW(TcpTransport{opts}, TransportError);
}

TEST(Fault, SeededScheduleDeliversBitIdenticalPayloads) {
  FaultSpec spec;
  spec.seed = 5;
  spec.delay_us = 30;
  spec.reorder = 2;
  spec.split = 7;
  const std::uint64_t splits_before =
      obs::instruments().transport_fault_splits.value();
  FaultInjectingTransport ft(std::make_unique<LoopbackTransport>(), spec);
  EXPECT_STREQ(ft.name(), "fault+loopback");

  std::vector<std::vector<std::uint8_t>> sent;
  for (unsigned r = 1; r <= 5; ++r) {
    const FrameTag tag{11, r, 0, 1, 3};
    sent.push_back(pattern_payload(20 * r + 3, r));
    ft.send(tag, sent.back());
  }
  for (unsigned r = 1; r <= 5; ++r) {
    const FrameTag tag{11, r, 0, 1, 3};
    const auto got = ft.recv(tag, {});
    ASSERT_EQ(got.size(), sent[r - 1].size());
    EXPECT_EQ(0, std::memcmp(got.data(), sent[r - 1].data(), got.size()))
        << "round " << r << " payload corrupted by faults";
  }
  EXPECT_GT(obs::instruments().transport_fault_splits.value(), splits_before)
      << "split knob must actually fragment the stream";
  EXPECT_EQ(ft.stats().frames_delivered, 5u);
}

TEST(Fault, DropSurfacesTypedTimeoutNotHang) {
  FaultSpec spec;
  spec.seed = 1;
  spec.drop_permille = 1000;
  spec.timeout_ms = 100;
  FaultInjectingTransport ft(std::make_unique<LoopbackTransport>(), spec);
  const FrameTag tag{6, 1, 1, 0, 1};
  const auto payload = pattern_payload(32, 1);
  ft.send(tag, payload);
  try {
    ft.recv(tag, payload);
    FAIL() << "dropped frame must not be delivered";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timed out"), std::string::npos) << what;
    EXPECT_NE(what.find("ch6/r1"), std::string::npos)
        << "error must name the missing frame: " << what;
  }
}

// ---------------------------------------------------------------------------
// End-to-end byte identity: loopback == tcp == faulted loopback
// ---------------------------------------------------------------------------

DatasetSpec wire_spec() {
  DatasetSpec spec;
  spec.name = "wire_small";
  spec.num_nodes = 500;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.intra_prob = 0.8;
  return spec;
}

struct WireRun {
  std::uint64_t loss_bits = 0;
  std::uint64_t val_bits = 0;
  std::uint64_t test_bits = 0;
  std::uint64_t comm_bytes = 0;
  TransportStats stats;
};

WireRun run_wire(const Dataset& ds, Method method, bool async, int threads,
                 std::unique_ptr<transport::Transport> tp, int epochs = 6) {
  AsyncModeGuard async_guard(async);
  ThreadCountGuard thread_guard(threads);
  ScopedTransport guard(std::move(tp));
  Rng rng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 2;
  mc.dropout = 0.3f;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = epochs;
  opts.seed = 21;
  opts.reassign_period = 4;
  WireRun out;
  {
    DistTrainer trainer(ds, dist, cluster, mc, opts);
    const RunResult r = trainer.run();
    out.loss_bits = bits_of(r.epochs.back().train_loss);
    out.val_bits = bits_of(r.final_val_acc);
    out.test_bits = bits_of(r.final_test_acc);
    out.comm_bytes = r.total_comm_bytes;
  }
  // Trainer destroyed: every deferred exchange has joined, all frames are
  // accounted. (The guard must outlive the trainer.)
  out.stats = guard.get().stats();
  return out;
}

struct WireCase {
  Method method;
  bool async;
  int threads;
};

std::string wire_case_name(const ::testing::TestParamInfo<WireCase>& info) {
  std::string n = method_name(info.param.method);
  std::erase_if(n, [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); });
  n += info.param.async ? "_async" : "_sync";
  n += "_t" + std::to_string(info.param.threads);
  return n;
}

class WireIdentityTest : public ::testing::TestWithParam<WireCase> {};

TEST_P(WireIdentityTest, TcpIsBitIdenticalToLoopback) {
  const WireCase& c = GetParam();
  Rng rng(33);
  const Dataset ds = make_dataset(wire_spec(), rng);
  const WireRun lo = run_wire(ds, c.method, c.async, c.threads,
                              std::make_unique<LoopbackTransport>());
  const WireRun tcp = run_wire(ds, c.method, c.async, c.threads,
                               std::make_unique<TcpTransport>(TcpOptions{}));
  // The payload multiset that crossed the transport is identical...
  EXPECT_EQ(lo.stats.frames_delivered, tcp.stats.frames_delivered);
  EXPECT_EQ(lo.stats.bytes_delivered, tcp.stats.bytes_delivered);
  EXPECT_EQ(lo.stats.digest, tcp.stats.digest)
      << "delivered payloads diverged between loopback and tcp";
  EXPECT_GT(tcp.stats.frames_delivered, 0u);
  // ...and so is everything trained from it, to the last bit.
  EXPECT_EQ(lo.loss_bits, tcp.loss_bits);
  EXPECT_EQ(lo.val_bits, tcp.val_bits);
  EXPECT_EQ(lo.test_bits, tcp.test_bits);
  EXPECT_EQ(lo.comm_bytes, tcp.comm_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsModesThreads, WireIdentityTest,
    ::testing::Values(
        WireCase{Method::kVanilla, false, 1},
        WireCase{Method::kVanilla, true, 4},
        WireCase{Method::kAdaQP, false, 1},
        WireCase{Method::kAdaQP, false, 4},
        WireCase{Method::kAdaQP, true, 1},
        WireCase{Method::kAdaQP, true, 4},
        WireCase{Method::kAdaQPUniform, false, 1},
        WireCase{Method::kAdaQPUniform, true, 4},
        WireCase{Method::kPipeGCN, false, 1},
        WireCase{Method::kPipeGCN, true, 1},
        WireCase{Method::kPipeGCN, true, 4},
        WireCase{Method::kSancus, false, 1},
        WireCase{Method::kSancus, true, 4}),
    wire_case_name);

// Seeded delay / reorder / short-I/O schedules shuffle arrival, fragment
// streams and stall stages — and must change nothing: tag-matched delivery
// makes the faulted run bit-identical to the fault-free baseline. This is
// also the regression pin for the two latent AsyncExchange assumptions
// (submit-order delivery; decoding the sender's buffer address instead of
// the delivered bytes): under reorder+split the decoded span is a
// reassembled copy delivered out of submit order, so either regression
// breaks these expectations.
class FaultIdentityTest : public ::testing::TestWithParam<WireCase> {};

TEST_P(FaultIdentityTest, FaultedRunMatchesBaselineBitForBit) {
  const WireCase& c = GetParam();
  Rng rng(34);
  const Dataset ds = make_dataset(wire_spec(), rng);
  const WireRun base = run_wire(ds, c.method, c.async, c.threads,
                                std::make_unique<LoopbackTransport>());
  FaultSpec spec;
  spec.seed = 77;
  spec.delay_us = 40;
  spec.reorder = 3;
  spec.split = 11;
  const obs::Instruments& ins = obs::instruments();
  const std::uint64_t reorders_before = ins.transport_fault_reorders.value();
  const std::uint64_t delays_before = ins.transport_fault_delays.value();
  const WireRun faulted =
      run_wire(ds, c.method, c.async, c.threads,
               std::make_unique<FaultInjectingTransport>(
                   std::make_unique<LoopbackTransport>(), spec));
  EXPECT_GT(ins.transport_fault_reorders.value(), reorders_before)
      << "schedule injected no reorders — the test proved nothing";
  EXPECT_GT(ins.transport_fault_delays.value(), delays_before);
  EXPECT_EQ(base.stats.frames_delivered, faulted.stats.frames_delivered);
  EXPECT_EQ(base.stats.digest, faulted.stats.digest);
  EXPECT_EQ(base.loss_bits, faulted.loss_bits);
  EXPECT_EQ(base.val_bits, faulted.val_bits);
  EXPECT_EQ(base.test_bits, faulted.test_bits);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsUnderFaults, FaultIdentityTest,
    ::testing::Values(WireCase{Method::kVanilla, true, 4},
                      WireCase{Method::kAdaQP, false, 1},
                      WireCase{Method::kAdaQP, true, 4},
                      WireCase{Method::kPipeGCN, true, 4},
                      WireCase{Method::kSancus, false, 1}),
    wire_case_name);

TEST(FaultTraining, DropThenTimeoutThrowsTransportErrorNotHang) {
  Rng rng(35);
  const Dataset ds = make_dataset(wire_spec(), rng);
  FaultSpec spec;
  spec.seed = 2;
  spec.drop_permille = 1000;
  spec.timeout_ms = 150;
  EXPECT_THROW(run_wire(ds, Method::kVanilla, /*async=*/false, /*threads=*/1,
                        std::make_unique<FaultInjectingTransport>(
                            std::make_unique<LoopbackTransport>(), spec),
                        /*epochs=*/2),
               TransportError);
}

}  // namespace
}  // namespace adaqp
