// Tests for the bi-objective bit-width assigner (GUROBI substitute).
#include <gtest/gtest.h>

#include <cmath>

#include "assign/bit_assigner.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "quant/quantize.h"

namespace adaqp {
namespace {

MessageGroup group(double beta, std::size_t dims) {
  MessageGroup g;
  g.beta_sum = beta;
  g.dim_sum = dims;
  return g;
}

RoundProblem random_problem(Rng& rng, int pairs, int max_groups) {
  RoundProblem problem;
  for (int p = 0; p < pairs; ++p) {
    RoundProblem::Pair pair;
    pair.src = p;
    pair.dst = (p + 1) % pairs;
    pair.theta = rng.uniform(1e-10, 5e-10);
    pair.gamma = rng.uniform(1e-6, 5e-6);
    const int ngroups = 1 + static_cast<int>(rng.uniform_int(max_groups));
    for (int g = 0; g < ngroups; ++g)
      pair.groups.push_back(
          group(rng.uniform(0.01, 10.0),
                64 * (1 + rng.uniform_int(4))));
    problem.pairs.push_back(std::move(pair));
  }
  return problem;
}

double solution_objective_gap(const RoundProblem& problem, double lambda) {
  const RoundSolution fast = solve_round(problem, lambda);
  const RoundSolution exact = solve_round_bruteforce(problem, lambda);
  EXPECT_LE(exact.objective, fast.objective + 1e-9);
  return fast.objective - exact.objective;
}

class SolverVsBruteForce : public ::testing::TestWithParam<double> {};

TEST_P(SolverVsBruteForce, NearOptimalOnRandomInstances) {
  const double lambda = GetParam();
  Rng rng(static_cast<std::uint64_t>(lambda * 1000) + 5);
  for (int trial = 0; trial < 20; ++trial) {
    const RoundProblem problem = random_problem(rng, 2, 3);
    const double gap = solution_objective_gap(problem, lambda);
    // Greedy MCKP is within one fractional upgrade of optimal; on the
    // normalized objective that is a small constant.
    EXPECT_LE(gap, 0.12) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, SolverVsBruteForce,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(Solver, LambdaOneMinimizesVariance) {
  // Pure variance objective → everything at 8 bits.
  Rng rng(1);
  const RoundProblem problem = random_problem(rng, 3, 3);
  const RoundSolution sol = solve_round(problem, 1.0);
  for (const auto& pair_bits : sol.bits)
    for (int b : pair_bits) EXPECT_EQ(b, 8);
}

TEST(Solver, LambdaZeroHitsTimeFloorOnStragglerPair) {
  // Pure time objective: the straggler pair must be driven to its 2-bit
  // floor (non-straggler pairs may keep higher widths for free).
  RoundProblem problem;
  RoundProblem::Pair heavy;
  heavy.src = 0;
  heavy.dst = 1;
  heavy.theta = 1e-9;
  heavy.gamma = 0.0;
  heavy.groups = {group(1.0, 1000), group(2.0, 1000)};
  problem.pairs.push_back(heavy);
  const RoundSolution sol = solve_round(problem, 0.0);
  for (int b : sol.bits[0]) EXPECT_EQ(b, 2);
  EXPECT_NEAR(sol.z, 1e-9 * 2 * 2000, 1e-12);
}

TEST(Solver, NonStragglerPairsGetFreeUpgrades) {
  // A fast pair shares the round with a slow straggler: the fast pair can
  // afford 8 bits without moving Z.
  RoundProblem problem;
  RoundProblem::Pair slow;
  slow.src = 0;
  slow.dst = 1;
  slow.theta = 1e-8;
  slow.gamma = 0.0;
  slow.groups = {group(1.0, 4096)};
  RoundProblem::Pair fast;
  fast.src = 1;
  fast.dst = 0;
  fast.theta = 1e-11;
  fast.gamma = 0.0;
  fast.groups = {group(1.0, 4096)};
  problem.pairs.push_back(slow);
  problem.pairs.push_back(fast);
  const RoundSolution sol = solve_round(problem, 0.0);
  EXPECT_EQ(sol.bits[0][0], 2);  // straggler squeezed
  EXPECT_EQ(sol.bits[1][0], 8);  // fast pair free to use full width
}

TEST(Solver, HighBetaGroupsGetMoreBits) {
  // Same pair, two groups, vastly different β: under a middling λ the high
  // β group must not receive fewer bits than the low-β one.
  RoundProblem problem;
  RoundProblem::Pair pair;
  pair.src = 0;
  pair.dst = 1;
  pair.theta = 1e-9;
  pair.gamma = 0.0;
  pair.groups = {group(100.0, 256), group(0.001, 256)};
  problem.pairs.push_back(pair);
  const RoundSolution sol = solve_round(problem, 0.5);
  EXPECT_GE(sol.bits[0][0], sol.bits[0][1]);
}

TEST(Solver, EmptyProblem) {
  RoundProblem problem;
  const RoundSolution sol = solve_round(problem, 0.5);
  EXPECT_EQ(sol.objective, 0.0);
  EXPECT_TRUE(sol.bits.empty());
}

TEST(Solver, PairWithNoGroups) {
  RoundProblem problem;
  RoundProblem::Pair pair;
  pair.src = 0;
  pair.dst = 1;
  pair.theta = 1e-9;
  pair.gamma = 1e-6;
  problem.pairs.push_back(pair);
  const RoundSolution sol = solve_round(problem, 0.5);
  ASSERT_EQ(sol.bits.size(), 1u);
  EXPECT_TRUE(sol.bits[0].empty());
}

// ---- β tracing --------------------------------------------------------------

struct BetaFixture {
  Graph graph;
  DistGraph dist;
  std::vector<std::vector<float>> ranges;

  BetaFixture() {
    // Path 0-1-2-3, split {0,1} | {2,3}; cut edge 1-2.
    graph = path_graph(4);
    PartitionResult part;
    part.num_parts = 2;
    part.part_of = {0, 0, 1, 1};
    dist = build_dist_graph(graph, part);
    ranges.resize(2);
    for (int d = 0; d < 2; ++d)
      ranges[d].assign(dist.devices[d].num_local(), 2.0f);
  }
};

TEST(MessageBetas, ForwardHandComputedOnPath) {
  BetaFixture f;
  const auto betas =
      message_betas(f.dist, Aggregator::kGcn, Direction::kForward, f.ranges, 8);
  // Device 0 sends node 1 to device 1. Node 1's remote aggregation target is
  // node 2; α(1→2) = 1/sqrt((d1+1)(d2+1)) = 1/sqrt(3*3) = 1/3.
  ASSERT_EQ(betas[0][1].size(), 1u);
  const double alpha_sq = 1.0 / 9.0;
  const double expected = alpha_sq * 8.0 * 2.0 * 2.0 / 6.0;
  EXPECT_NEAR(betas[0][1][0], expected, 1e-12);
  // Symmetric for device 1 → device 0.
  ASSERT_EQ(betas[1][0].size(), 1u);
  EXPECT_NEAR(betas[1][0][0], expected, 1e-12);
}

TEST(MessageBetas, BackwardMatchesForwardOnSymmetricCut) {
  BetaFixture f;
  const auto fwd =
      message_betas(f.dist, Aggregator::kGcn, Direction::kForward, f.ranges, 8);
  const auto bwd = message_betas(f.dist, Aggregator::kGcn,
                                 Direction::kBackward, f.ranges, 8);
  // On this symmetric cut the gradient message for halo node 2 on device 0
  // carries the same α² sum as the forward message for node 1.
  ASSERT_EQ(bwd[0][1].size(), 1u);
  EXPECT_NEAR(bwd[0][1][0], fwd[0][1][0], 1e-12);
}

TEST(MessageBetas, ZeroRangeMeansZeroBeta) {
  BetaFixture f;
  for (auto& r : f.ranges) std::fill(r.begin(), r.end(), 0.0f);
  const auto betas =
      message_betas(f.dist, Aggregator::kGcn, Direction::kForward, f.ranges, 8);
  EXPECT_EQ(betas[0][1][0], 0.0);
}

TEST(RowRanges, ComputesMaxMinusMin) {
  Matrix m(2, 3, {1.0f, -2.0f, 5.0f, 4.0f, 4.0f, 4.0f});
  const auto ranges = row_ranges_of(m);
  EXPECT_FLOAT_EQ(ranges[0], 7.0f);
  EXPECT_FLOAT_EQ(ranges[1], 0.0f);
}

// ---- End-to-end plan construction -------------------------------------------

struct PlanFixture {
  Graph graph;
  DistGraph dist;
  ClusterSpec cluster;
  std::vector<std::vector<float>> ranges;

  PlanFixture() {
    Rng rng(77);
    graph = erdos_renyi(200, 1200, rng);
    const auto part = FennelPartitioner().partition(graph, 4, rng);
    dist = build_dist_graph(graph, part);
    cluster = ClusterSpec::machines(2, 2);
    ranges.resize(4);
    Rng r2(78);
    for (int d = 0; d < 4; ++d) {
      ranges[d].resize(dist.devices[d].num_local());
      for (auto& x : ranges[d])
        x = static_cast<float>(r2.uniform(0.1, 4.0));
    }
  }
};

TEST(AssignPlan, ShapesAlignWithMapsBothDirections) {
  PlanFixture f;
  AssignerOptions opts;
  opts.group_size = 16;
  for (auto dir : {Direction::kForward, Direction::kBackward}) {
    const auto plan = assign_bit_widths(f.dist, f.cluster, Aggregator::kGcn,
                                        dir, f.ranges, 32, opts);
    for (int d = 0; d < 4; ++d)
      for (int p = 0; p < 4; ++p) {
        const auto expected =
            dir == Direction::kForward
                ? f.dist.devices[d].send_local[p].size()
                : f.dist.devices[d].recv_local[p].size();
        ASSERT_EQ(plan.bits[d][p].size(), expected);
        for (int b : plan.bits[d][p]) EXPECT_TRUE(is_valid_bit_width(b));
      }
  }
}

TEST(AssignPlan, LambdaExtremesBracketAverageBits) {
  PlanFixture f;
  auto avg_bits = [&](double lambda) {
    AssignerOptions opts;
    opts.group_size = 16;
    opts.lambda = lambda;
    const auto plan = assign_bit_widths(f.dist, f.cluster, Aggregator::kGcn,
                                        Direction::kForward, f.ranges, 32,
                                        opts);
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& pd : plan.bits)
      for (const auto& pp : pd)
        for (int b : pp) {
          sum += b;
          ++count;
        }
    return count ? sum / count : 0.0;
  };
  const double lo = avg_bits(0.0), mid = avg_bits(0.5), hi = avg_bits(1.0);
  EXPECT_DOUBLE_EQ(hi, 8.0);
  EXPECT_LE(lo, mid + 1e-12);
  EXPECT_LE(mid, hi);
  EXPECT_LT(lo, 8.0);
}

TEST(AssignPlan, ReportIsPopulated) {
  PlanFixture f;
  AssignerOptions opts;
  opts.group_size = 8;
  AssignReport report;
  assign_bit_widths(f.dist, f.cluster, Aggregator::kGcn, Direction::kForward,
                    f.ranges, 32, opts, &report);
  EXPECT_GT(report.num_groups, 0u);
  EXPECT_GT(report.solve_wall_seconds, 0.0);
  EXPECT_GT(report.sim_gather_scatter_seconds, 0.0);
  EXPECT_GT(report.total_z, 0.0);
}

TEST(AssignPlan, GroupSizeOneMatchesPerMessageAssignment) {
  PlanFixture f;
  AssignerOptions fine;
  fine.group_size = 1;
  AssignReport report_fine;
  assign_bit_widths(f.dist, f.cluster, Aggregator::kGcn, Direction::kForward,
                    f.ranges, 32, fine, &report_fine);
  AssignerOptions coarse;
  coarse.group_size = 100000;
  AssignReport report_coarse;
  assign_bit_widths(f.dist, f.cluster, Aggregator::kGcn, Direction::kForward,
                    f.ranges, 32, coarse, &report_coarse);
  EXPECT_GT(report_fine.num_groups, report_coarse.num_groups);
  // Finer granularity widens the solution space, so the scalarized optimum
  // cannot be (meaningfully) worse than under coarse grouping; the small
  // slack covers the greedy knapsack's integrality gap.
  EXPECT_LE(report_fine.total_objective,
            report_coarse.total_objective + 0.15);
}

TEST(UniformSampling, ProducesOnlyCandidateWidths) {
  PlanFixture f;
  Rng rng(5);
  const auto plan = sample_uniform_plan(f.dist, Direction::kForward, rng);
  int hist[9] = {0};
  for (const auto& pd : plan.bits)
    for (const auto& pp : pd)
      for (int b : pp) {
        ASSERT_TRUE(b == 2 || b == 4 || b == 8);
        hist[b]++;
      }
  // All three widths should appear in a large sample.
  EXPECT_GT(hist[2], 0);
  EXPECT_GT(hist[4], 0);
  EXPECT_GT(hist[8], 0);
}

}  // namespace
}  // namespace adaqp
