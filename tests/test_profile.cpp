// Critical-path profiler (src/obs/profile.h, docs/OBSERVABILITY.md):
// stage-name classification, the critical-path method on synthetic DAGs
// with hand-set timestamps (diamond / chain / fan-out / PipeGCN-deferred
// shapes), the epoch rollup identity (categories + optimizer + scheduling +
// serial == attributed wall), what-if bounds, and the three house
// invariants through DistTrainer: profiling on vs. off is bit-identical for
// every method x async x threads, the profiler's overlap numbers agree
// exactly with EpochRow's (same interval implementation), and warm epochs
// stay zero-alloc with the profiler armed.
#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/race_checker.h"
#include "core/trainer.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/run_report.h"
#include "pipeline/config.h"
#include "pipeline/stage_graph.h"
#include "runtime/thread_pool.h"
#include "transport/loopback.h"
#include "transport/transport.h"

namespace adaqp {
namespace {

using pipeline::AsyncModeGuard;

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

constexpr double kTol = 1e-12;  // synthetic weights are tens of µs

// ---- Stage classification -------------------------------------------------

TEST(ClassifyStage, RecognizesTheRepoNamingScheme) {
  obs::StageClass c = obs::classify_stage("fwd/d0->d1");
  EXPECT_EQ(c.category, obs::kCatWire);
  EXPECT_TRUE(c.fused_forward);
  EXPECT_FALSE(c.fused_backward);
  EXPECT_EQ(c.src, 0);
  EXPECT_EQ(c.dst, 1);

  c = obs::classify_stage("bwd-enc/d2->d0");
  EXPECT_EQ(c.category, obs::kCatWire);
  EXPECT_TRUE(c.fused_backward);
  EXPECT_EQ(c.src, 2);
  EXPECT_EQ(c.dst, 0);

  c = obs::classify_stage("bwd-acc/d3");
  EXPECT_EQ(c.category, obs::kCatDecode);
  EXPECT_FALSE(c.fused_forward);
  EXPECT_EQ(c.src, -1);  // owner-side accumulate has no sender
  EXPECT_EQ(c.dst, 3);

  EXPECT_EQ(obs::classify_stage("bwd-zero/d1").category, obs::kCatOther);
  EXPECT_EQ(obs::classify_stage("L0/central/d2").category, obs::kCatCentral);
  EXPECT_EQ(obs::classify_stage("L2b/central/d0").category,
            obs::kCatCentral);
  EXPECT_EQ(obs::classify_stage("L1/marginal/d0").category,
            obs::kCatMarginal);
  EXPECT_EQ(obs::classify_stage("L2b/fold").category, obs::kCatFold);
  EXPECT_EQ(obs::classify_stage("L0b/trace/d1").category, obs::kCatOther);

  c = obs::classify_stage("not-a-known-stage");
  EXPECT_EQ(c.category, obs::kCatOther);
  EXPECT_EQ(c.src, -1);
  EXPECT_EQ(c.dst, -1);
}

TEST(ClassifyStage, CategoryKeysAreStable) {
  EXPECT_STREQ(obs::profile_category_key(obs::kCatCentral), "central");
  EXPECT_STREQ(obs::profile_category_key(obs::kCatWire), "wire");
  EXPECT_STREQ(obs::profile_category_key(obs::kCatFold), "fold");
  EXPECT_STREQ(obs::profile_category_key(-1), "other");
  EXPECT_STREQ(obs::profile_category_key(obs::kNumProfileCategories),
               "other");
}

// ---- Synthetic DAGs -------------------------------------------------------

/// Diamond: A -> {B, C} -> D. B is the long branch, so the critical path is
/// A-B-D and all slack sits on C.
TEST(ProfileDag, DiamondCriticalPathSlackAndAttribution) {
  obs::ProfileDag dag;
  dag.reserve(8, 8);
  const std::string a = "L0/central/d0";
  const std::string b = "L0/marginal/d0";
  const std::string c = "L0/central/d1";
  const std::string d = "L0/marginal/d1";
  ASSERT_EQ(dag.add_stage(&a, a, 0.0, 10.0), 0);
  ASSERT_EQ(dag.add_stage(&b, b, 10.0, 30.0), 1);
  ASSERT_EQ(dag.add_stage(&c, c, 10.0, 20.0), 2);
  ASSERT_EQ(dag.add_stage(&d, d, 30.0, 40.0), 3);
  dag.add_dep(1, 0);
  dag.add_dep(2, 0);
  dag.add_dep(3, 1);
  dag.add_dep(3, 2);

  obs::SegmentProfile seg;
  dag.compute(seg);
  EXPECT_EQ(seg.stages, 4);
  EXPECT_FALSE(dag.truncated());
  EXPECT_NEAR(seg.makespan_s, 40e-6, kTol);
  EXPECT_NEAR(seg.busy_s, 50e-6, kTol);
  EXPECT_NEAR(seg.cp_s, 40e-6, kTol);  // A(10) + B(20) + D(10)
  EXPECT_EQ(seg.cp_stages, 3);
  ASSERT_NE(seg.cp_names[0], nullptr);
  EXPECT_EQ(*seg.cp_names[0], a);
  EXPECT_EQ(*seg.cp_names[1], b);
  EXPECT_EQ(*seg.cp_names[2], d);
  EXPECT_EQ(seg.cp_names[3], nullptr);
  // Only C is off the path: it may finish as late as 30µs but finishes at 20.
  EXPECT_NEAR(seg.slack_s, 10e-6, kTol);
  // The critical path decomposes into central (A) + marginal (B, D).
  EXPECT_NEAR(seg.category_s[obs::kCatCentral], 10e-6, kTol);
  EXPECT_NEAR(seg.category_s[obs::kCatMarginal], 30e-6, kTol);
  double cat_sum = 0.0;
  for (const double v : seg.category_s) cat_sum += v;
  EXPECT_NEAR(cat_sum, seg.cp_s, kTol);
  // Free central: longest chain becomes B(20) + D(10) = 30µs -> saves 10.
  EXPECT_NEAR(seg.sensitivity_s[obs::kCatCentral], 10e-6, kTol);
  // Free marginal: longest chain becomes A(10) + C(10) = 20µs -> saves 20.
  EXPECT_NEAR(seg.sensitivity_s[obs::kCatMarginal], 20e-6, kTol);
  // No wire anywhere: the zero-wire bound is the critical path itself.
  EXPECT_NEAR(seg.zero_wire_cp_s, seg.cp_s, kTol);
  EXPECT_DOUBLE_EQ(seg.sensitivity_s[obs::kCatWire], 0.0);
  // No exchange stages: no overlap numbers. The compute side counts only
  // central stages (the trainer's overlap set): A [0,10] ∪ C [10,20].
  EXPECT_DOUBLE_EQ(seg.overlap.exchange_busy_s, 0.0);
  EXPECT_DOUBLE_EQ(seg.overlap.compute_busy_s, 20e-6);
}

/// Chain: one fused forward exchange followed by dependent central compute.
/// The fused span splits across encode/wire/decode in the cost model's
/// 1 : 2 : 3 proportion.
TEST(ProfileDag, ChainSplitsFusedExchangeByTheCostModel) {
  obs::ProfileDag dag;
  dag.reserve(4, 4);
  dag.set_exchange_model(/*quant_s=*/1.0, /*comm_s=*/2.0, /*dequant_s=*/3.0);
  const std::string x = "fwd/d0->d1";
  const std::string c = "L0/central/d1";
  ASSERT_EQ(dag.add_stage(&x, x, 0.0, 30.0), 0);
  ASSERT_EQ(dag.add_stage(&c, c, 30.0, 50.0), 1);
  dag.add_dep(1, 0);

  obs::SegmentProfile seg;
  std::array<double, 4> pair_s{};  // 2 devices, row-major
  dag.compute(seg, pair_s.data(), 2);
  EXPECT_NEAR(seg.cp_s, 50e-6, kTol);
  EXPECT_EQ(seg.cp_stages, 2);
  EXPECT_NEAR(seg.category_s[obs::kCatEncode], 5e-6, kTol);
  EXPECT_NEAR(seg.category_s[obs::kCatWire], 10e-6, kTol);
  EXPECT_NEAR(seg.category_s[obs::kCatDecode], 15e-6, kTol);
  EXPECT_NEAR(seg.category_s[obs::kCatCentral], 20e-6, kTol);
  // Zero-wire bound: the chain keeps encode+decode+central = 40µs.
  EXPECT_NEAR(seg.zero_wire_cp_s, 40e-6, kTol);
  EXPECT_NEAR(seg.sensitivity_s[obs::kCatWire], 10e-6, kTol);
  // Serial chain: exchange and compute never overlap.
  EXPECT_DOUBLE_EQ(seg.overlap.exchange_busy_s, 30e-6);
  EXPECT_DOUBLE_EQ(seg.overlap.compute_busy_s, 20e-6);
  EXPECT_DOUBLE_EQ(seg.overlap.overlap_s, 0.0);
  // The measured pair seconds landed on (src=0, dst=1).
  EXPECT_NEAR(pair_s[0 * 2 + 1], 30e-6, kTol);
  EXPECT_DOUBLE_EQ(pair_s[0], 0.0);
  EXPECT_DOUBLE_EQ(pair_s[1 * 2 + 0], 0.0);
}

/// Fan-out: a root feeding three independent children. The critical path is
/// root + the slowest child; the two faster children carry the slack.
TEST(ProfileDag, FanOutPutsSlackOnTheFastBranches) {
  obs::ProfileDag dag;
  dag.reserve(8, 8);
  const std::string root = "L0/central/d0";
  const std::string k1 = "L0/marginal/d0";
  const std::string k2 = "L0/marginal/d1";
  const std::string k3 = "L0/marginal/d2";
  ASSERT_EQ(dag.add_stage(&root, root, 0.0, 10.0), 0);
  dag.add_stage(&k1, k1, 10.0, 40.0);  // 30µs — the slow branch
  dag.add_stage(&k2, k2, 10.0, 25.0);  // 15µs
  dag.add_stage(&k3, k3, 10.0, 20.0);  // 10µs
  dag.add_dep(1, 0);
  dag.add_dep(2, 0);
  dag.add_dep(3, 0);

  obs::SegmentProfile seg;
  dag.compute(seg);
  EXPECT_NEAR(seg.cp_s, 40e-6, kTol);
  EXPECT_EQ(seg.cp_stages, 2);
  EXPECT_EQ(*seg.cp_names[1], k1);
  // k2 may finish 15µs later than it does, k3 20µs later.
  EXPECT_NEAR(seg.slack_s, 35e-6, kTol);
  EXPECT_NEAR(seg.busy_s, 65e-6, kTol);
}

/// PipeGCN shape: a deferred cross-epoch exchange whose wire span started
/// before this segment's compute. Zeroing the wire collapses the path onto
/// the compute chain.
TEST(ProfileDag, DeferredLongWireDominatesUntilZeroed) {
  obs::ProfileDag dag;
  dag.reserve(4, 4);
  dag.set_exchange_model(0.0, 1.0, 0.0);  // pure wire, no codec work
  const std::string wire = "fwd/d0->d1";
  const std::string central = "L0/central/d0";
  const std::string marginal = "L0/marginal/d0";
  ASSERT_EQ(dag.add_stage(&wire, wire, 0.0, 100.0), 0);
  ASSERT_EQ(dag.add_stage(&central, central, 0.0, 30.0), 1);
  ASSERT_EQ(dag.add_stage(&marginal, marginal, 100.0, 120.0), 2);
  dag.add_dep(2, 0);
  dag.add_dep(2, 1);

  obs::SegmentProfile seg;
  dag.compute(seg);
  EXPECT_NEAR(seg.makespan_s, 120e-6, kTol);
  EXPECT_NEAR(seg.cp_s, 120e-6, kTol);  // wire(100) + marginal(20)
  EXPECT_NEAR(seg.category_s[obs::kCatWire], 100e-6, kTol);
  // Wire free: central(30) + marginal(20) is the new longest chain.
  EXPECT_NEAR(seg.zero_wire_cp_s, 50e-6, kTol);
  EXPECT_NEAR(seg.sensitivity_s[obs::kCatWire], 70e-6, kTol);
  // The central compute fully hides under the wire.
  EXPECT_DOUBLE_EQ(seg.overlap.exchange_busy_s, 100e-6);
  EXPECT_DOUBLE_EQ(seg.overlap.compute_busy_s, 30e-6);
  EXPECT_DOUBLE_EQ(seg.overlap.overlap_s, 30e-6);
}

TEST(ProfileDag, TruncatesPastCapacityInsteadOfGrowing) {
  obs::ProfileDag dag;
  dag.reserve(2, 1);
  const std::string n = "L0/central/d0";
  EXPECT_EQ(dag.add_stage(&n, n, 0.0, 1.0), 0);
  EXPECT_EQ(dag.add_stage(&n, n, 1.0, 2.0), 1);
  EXPECT_EQ(dag.add_stage(&n, n, 2.0, 3.0), -1);  // over stage capacity
  EXPECT_TRUE(dag.truncated());
  dag.add_dep(1, 0);  // fills the single edge slot
  dag.add_dep(1, 0);  // over edge capacity: dropped
  EXPECT_EQ(dag.size(), 2);
  obs::SegmentProfile seg;
  dag.compute(seg);
  EXPECT_EQ(seg.stages, 2);
  EXPECT_NEAR(seg.cp_s, 2e-6, kTol);
}

// ---- Epoch rollup ---------------------------------------------------------

/// The rollup identity: stage categories + optimizer + scheduling + serial
/// sum to the attributed wall exactly, and the what-if bounds order.
TEST(ProfileCapture, EpochRollupDecomposesTheAttributedWall) {
  obs::ProfileCapture cap;
  cap.init(/*max_epochs=*/1, /*layers=*/1, /*devices=*/2, /*max_stages=*/8,
           /*max_deps=*/8);
  ASSERT_TRUE(cap.enabled());

  // One forward segment: makespan 100µs, critical path 80µs.
  obs::SegmentProfile* seg = cap.segment(0, 0, /*forward=*/true);
  ASSERT_NE(seg, nullptr);
  obs::ProfileDag& dag = cap.dag();
  dag.clear();
  const std::string a = "L0/central/d0";
  const std::string b = "L0/marginal/d0";
  const std::string c = "L0/marginal/d1";
  dag.add_stage(&a, a, 0.0, 30.0);
  dag.add_stage(&b, b, 30.0, 80.0);   // on the path: 30 + 50 = 80µs
  dag.add_stage(&c, c, 40.0, 100.0);  // parallel branch stretching makespan
  dag.add_dep(1, 0);
  dag.compute(*seg, cap.pair_seconds(0), 2);
  ASSERT_NEAR(seg->makespan_s, 100e-6, kTol);
  ASSERT_NEAR(seg->cp_s, 80e-6, kTol);

  // Phase walls: forward 150µs (50µs of un-profiled serial glue), backward
  // 0, optimizer 10µs.
  cap.set_epoch_phases(0, 150e-6, 0.0, 10e-6);
  const obs::EpochProfile ep = cap.epoch_rollup(0);
  EXPECT_NEAR(ep.attributed_wall_s, 160e-6, kTol);
  EXPECT_NEAR(ep.cp_s, 80e-6, kTol);
  EXPECT_NEAR(ep.optimizer_s, 10e-6, kTol);
  EXPECT_NEAR(ep.scheduling_s, 20e-6, kTol);  // makespan − cp
  EXPECT_NEAR(ep.serial_s, 50e-6, kTol);      // wall − makespan
  double total = ep.optimizer_s + ep.scheduling_s + ep.serial_s;
  for (const double v : ep.category_s) total += v;
  EXPECT_NEAR(total, ep.attributed_wall_s, kTol);
  // Perfect scheduling keeps the path + optimizer + serial glue.
  EXPECT_NEAR(ep.infinite_thread_s, 140e-6, kTol);
  // No wire in the segment: the zero-wire bound equals infinite-thread.
  EXPECT_NEAR(ep.zero_wire_s, ep.infinite_thread_s, kTol);
  EXPECT_LE(ep.zero_wire_s, ep.attributed_wall_s + kTol);
}

TEST(ProfileCapture, DisabledAndOutOfRangeAccessesAreSafe) {
  obs::ProfileCapture cap;
  EXPECT_FALSE(cap.enabled());
  EXPECT_EQ(cap.segment(0, 0, true), nullptr);
  EXPECT_EQ(cap.pair_seconds(0), nullptr);
  cap.init(1, 2, 2, 4, 4);
  EXPECT_EQ(cap.segment(1, 0, true), nullptr);   // epoch out of capacity
  EXPECT_EQ(cap.segment(0, 2, true), nullptr);   // layer out of range
  EXPECT_EQ(cap.segment(-1, 0, true), nullptr);
  EXPECT_DOUBLE_EQ(cap.pair_seconds_at(0, 5, 0), 0.0);
  const obs::EpochProfile ep = cap.epoch_rollup(7);
  EXPECT_DOUBLE_EQ(ep.attributed_wall_s, 0.0);
}

// ---- Through a real StageGraph --------------------------------------------

/// The profiler consumes StageGraph's name/deps accessors and its always-on
/// timestamps; a really-executed graph must produce a consistent profile.
TEST(ProfileDag, RealStageGraphProfileIsConsistent) {
  pipeline::StageGraph graph;
  volatile double sink = 0.0;
  const auto burn = [&sink] {
    double acc = 0.0;
    for (int i = 1; i < 20000; ++i) acc += 1.0 / i;
    sink = acc;
  };
  const int a = graph.add("L0/central/d0", burn);
  const int b = graph.add("L0/marginal/d0", burn, {a});
  const int c = graph.add("L0/marginal/d1", burn, {a});
  graph.run_serial();

  EXPECT_EQ(graph.stage_name(b), "L0/marginal/d0");
  ASSERT_EQ(graph.stage_deps(c).size(), 1u);
  EXPECT_EQ(graph.stage_deps(c)[0], a);

  obs::ProfileDag dag;
  dag.reserve(4, 4);
  for (int id = 0; id < static_cast<int>(graph.size()); ++id) {
    const std::string& name = graph.stage_name(id);
    dag.add_stage(&name, name, graph.stage_begin_us(id),
                  graph.stage_end_us(id));
    for (const int dep : graph.stage_deps(id)) dag.add_dep(id, dep);
  }
  obs::SegmentProfile seg;
  dag.compute(seg);
  EXPECT_EQ(seg.stages, 3);
  EXPECT_GT(seg.cp_s, 0.0);
  EXPECT_GE(seg.busy_s, seg.cp_s - kTol);
  // Serial execution: the makespan covers every stage, so it is at least
  // the longest dependency chain.
  EXPECT_GE(seg.makespan_s, seg.cp_s - kTol);
  EXPECT_EQ(seg.cp_stages, 2);  // root + one child
}

// ---- Trainer integration --------------------------------------------------

DatasetSpec profile_spec() {
  DatasetSpec spec;
  spec.name = "profile_tiny";
  spec.num_nodes = 600;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.multi_label = false;
  spec.intra_prob = 0.8;
  return spec;
}

DistTrainer make_trainer(const Dataset& ds, const DistGraph& dist,
                         Method method, int epochs) {
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 3;
  mc.dropout = 0.3f;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = epochs;
  opts.seed = 7;
  opts.reassign_period = 2;
  opts.eval_every_epoch = false;
  return DistTrainer(ds, dist, cluster, mc, opts);
}

TEST(ProfileTrainer, CapturesSegmentsRollupsAndEmitsTheSchema) {
  Rng rng(31);
  const Dataset ds = make_dataset(profile_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const std::string path = ::testing::TempDir() + "adaqp_profile_report.json";

  AsyncModeGuard async_guard(true);
  ThreadCountGuard thread_guard(4);
  DistTrainer trainer = make_trainer(ds, dist, Method::kAdaQP, 4);
  {
    obs::MetricsGuard metrics(path);
    obs::ProfileGuard profile(true);
    trainer.run();
  }

  const obs::RunCapture& cap = trainer.run_capture();
  ASSERT_TRUE(cap.enabled());
  const obs::ProfileCapture& prof = trainer.run_capture().profile();
  ASSERT_TRUE(prof.enabled());
  ASSERT_EQ(prof.captured_epochs(), 4);
  ASSERT_EQ(prof.layers(), 3);
  ASSERT_EQ(prof.devices(), 4);

  for (int e = 0; e < 4; ++e) {
    const obs::EpochRow& row = cap.row_at(e);
    const obs::EpochProfile ep = prof.epoch_rollup(e);
    // The attributed wall is exactly the trainer's stamped phase walls.
    EXPECT_DOUBLE_EQ(
        ep.attributed_wall_s,
        row.wall.forward_s + row.wall.backward_s + row.wall.optimizer_s);
    // Decomposition identity: every second of the attributed wall lands in
    // exactly one bucket.
    double total = ep.optimizer_s + ep.scheduling_s + ep.serial_s;
    for (const double v : ep.category_s) total += v;
    EXPECT_NEAR(total, ep.attributed_wall_s,
                1e-9 + 1e-6 * ep.attributed_wall_s)
        << "attribution leak in epoch " << e;
    // Bounds: no schedule beats the critical path.
    EXPECT_GT(ep.cp_s, 0.0) << "no critical path captured in epoch " << e;
    EXPECT_GE(ep.busy_s, ep.cp_s * (1.0 - 1e-9));
    EXPECT_LE(ep.infinite_thread_s,
              ep.attributed_wall_s * (1.0 + 1e-6) + 1e-9);
    EXPECT_LE(ep.zero_wire_s, ep.infinite_thread_s * (1.0 + 1e-6) + 1e-9);

    // Segment sanity: AdaQP profiles every layer in both directions.
    for (int l = 0; l < prof.layers(); ++l) {
      const obs::SegmentProfile& fwd = prof.segment_at(e, l, true);
      EXPECT_GT(fwd.stages, 0) << "epoch " << e << " layer " << l;
      EXPECT_LE(fwd.cp_stages, fwd.stages);
      EXPECT_GE(fwd.cp_s, 0.0);
      EXPECT_LE(fwd.zero_wire_cp_s, fwd.cp_s * (1.0 + 1e-9) + 1e-12);
    }

    // Exchange seconds landed on real device pairs.
    double pair_total = 0.0;
    for (int s = 0; s < prof.devices(); ++s)
      for (int d = 0; d < prof.devices(); ++d)
        pair_total += prof.pair_seconds_at(e, s, d);
    EXPECT_GT(pair_total, 0.0) << "no pair exchange seconds in epoch " << e;
  }

  // Report carries the versioned profile section.
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"profile\""), std::string::npos);
  EXPECT_NE(body.find("\"schema\": \"adaqp-profile-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"attribution\""), std::string::npos);
  EXPECT_NE(body.find("\"what_if\""), std::string::npos);
  EXPECT_NE(body.find("\"zero_wire_s\""), std::string::npos);
  EXPECT_NE(body.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(body.find("\"pair_exchange_s\""), std::string::npos);
}

/// House invariant 3: the profiler's overlap numbers come from the same
/// interval implementation, over the same stage sets, as EpochRow's — the
/// two reports agree exactly, not approximately.
TEST(ProfileTrainer, SegmentOverlapAgreesExactlyWithEpochRow) {
  Rng rng(32);
  const Dataset ds = make_dataset(profile_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  AsyncModeGuard async_guard(true);
  ThreadCountGuard thread_guard(4);
  DistTrainer trainer = make_trainer(ds, dist, Method::kAdaQP, 3);
  {
    obs::MetricsGuard metrics(::testing::TempDir() +
                              "adaqp_profile_overlap.json");
    obs::ProfileGuard profile(true);
    trainer.run();
  }

  const obs::RunCapture& cap = trainer.run_capture();
  const obs::ProfileCapture& prof = cap.profile();
  ASSERT_TRUE(prof.enabled());
  for (int e = 0; e < prof.captured_epochs(); ++e) {
    const obs::EpochRow& row = cap.row_at(e);
    // Forward layers run ascending; mirror the row's accumulation order so
    // the floating-point sums match bit for bit.
    obs::OverlapAccum fwd;
    for (int l = 0; l < prof.layers(); ++l) {
      const obs::SegmentProfile& seg = prof.segment_at(e, l, true);
      fwd.exchange_busy_s += seg.overlap.exchange_busy_s;
      fwd.compute_busy_s += seg.overlap.compute_busy_s;
      fwd.overlap_s += seg.overlap.overlap_s;
    }
    EXPECT_DOUBLE_EQ(fwd.exchange_busy_s, row.fwd_overlap.exchange_busy_s)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(fwd.compute_busy_s, row.fwd_overlap.compute_busy_s)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(fwd.overlap_s, row.fwd_overlap.overlap_s)
        << "epoch " << e;
    // Backward layers run descending.
    obs::OverlapAccum bwd;
    for (int l = prof.layers() - 1; l >= 0; --l) {
      const obs::SegmentProfile& seg = prof.segment_at(e, l, false);
      bwd.exchange_busy_s += seg.overlap.exchange_busy_s;
      bwd.compute_busy_s += seg.overlap.compute_busy_s;
      bwd.overlap_s += seg.overlap.overlap_s;
    }
    EXPECT_DOUBLE_EQ(bwd.exchange_busy_s, row.bwd_overlap.exchange_busy_s)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(bwd.compute_busy_s, row.bwd_overlap.compute_busy_s)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(bwd.overlap_s, row.bwd_overlap.overlap_s)
        << "epoch " << e;
  }
}

TEST(ProfileTrainer, ProfileOffOmitsTheSectionButKeepsTheReport) {
  Rng rng(33);
  const Dataset ds = make_dataset(profile_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const std::string path = ::testing::TempDir() + "adaqp_profile_off.json";

  AsyncModeGuard async_guard(true);
  ThreadCountGuard thread_guard(4);
  DistTrainer trainer = make_trainer(ds, dist, Method::kAdaQP, 2);
  {
    obs::MetricsGuard metrics(path);
    obs::ProfileGuard profile(false);
    trainer.run();
  }
  EXPECT_FALSE(trainer.run_capture().profile().enabled());
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"schema\": \"adaqp-metrics-v1\""), std::string::npos);
  EXPECT_EQ(body.find("adaqp-profile-v1"), std::string::npos);
  EXPECT_EQ(body.find("\"what_if\""), std::string::npos);
}

/// House invariant 1: the profiler is write-only from the training path —
/// profiling on vs. off is bit-identical for every method x async x threads.
TEST(ProfileTrainer, ProfileOnRunsAreBitIdenticalToProfileOff) {
  Rng rng(34);
  const Dataset ds = make_dataset(profile_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const std::string path = ::testing::TempDir() + "adaqp_profile_matrix.json";

  const auto losses = [&](Method method, bool async, int threads,
                          bool profiled) {
    AsyncModeGuard async_guard(async);
    ThreadCountGuard thread_guard(threads);
    DistTrainer trainer = make_trainer(ds, dist, method, 3);
    obs::MetricsGuard metrics(path);
    obs::ProfileGuard profile(profiled);
    const RunResult result = trainer.run();
    std::vector<double> out;
    for (const EpochRecord& e : result.epochs) out.push_back(e.train_loss);
    return out;
  };

  for (Method method : {Method::kVanilla, Method::kAdaQP,
                        Method::kAdaQPUniform, Method::kPipeGCN,
                        Method::kSancus}) {
    for (const bool async : {true, false}) {
      for (const int threads : {1, 4}) {
        const std::vector<double> off = losses(method, async, threads, false);
        const std::vector<double> on = losses(method, async, threads, true);
        ASSERT_EQ(off.size(), on.size());
        for (std::size_t e = 0; e < off.size(); ++e)
          EXPECT_EQ(off[e], on[e])
              << method_name(method) << " async=" << async
              << " threads=" << threads
              << ": profiler perturbed epoch " << e;
      }
    }
  }
}

/// House invariant 2: warm epochs stay zero-alloc with the profiler armed
/// (ProfileCapture::init pre-sizes everything at the top of run()).
TEST(ProfileTrainer, SteadyStateStaysAllocationFreeWithProfilerArmed) {
  Rng rng(35);
  const Dataset ds = make_dataset(profile_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  AsyncModeGuard async_guard(true);
  ThreadCountGuard thread_guard(4);
  // The steady-state contract holds over a zero-allocation transport only
  // (wire backends buffer by design) — pin loopback so the assertion below
  // stays meaningful under the CI tcp/fault ctest passes.
  transport::ScopedTransport loopback(
      std::make_unique<transport::LoopbackTransport>());
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 3;
  mc.dropout = 0.3f;
  TrainOptions opts;
  opts.method = Method::kAdaQP;
  opts.epochs = 5;
  opts.seed = 7;
  opts.reassign_period = 1 << 20;  // refresh only at epoch 0
  opts.eval_every_epoch = false;   // steady-state contract requirement
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  {
    obs::MetricsGuard metrics(::testing::TempDir() +
                              "adaqp_profile_steady.json");
    obs::ProfileGuard profile(true);
    trainer.run();
  }

  const obs::RunCapture& cap = trainer.run_capture();
  ASSERT_TRUE(cap.enabled());
  ASSERT_TRUE(cap.profile().enabled());
  ASSERT_EQ(cap.captured_epochs(), opts.epochs);
  const bool contract_active = !analysis::racecheck_enabled();
  for (int e = 1; e < opts.epochs; ++e) {
    const obs::EpochRow& row = cap.row_at(e);
    if (!contract_active) {
      EXPECT_FALSE(row.steady_state);
      continue;
    }
    EXPECT_TRUE(row.steady_state)
        << "epoch " << e << " lost steady state with the profiler armed";
    EXPECT_EQ(row.allocs_forward + row.allocs_backward + row.allocs_optimizer +
                  row.allocs_refresh + row.allocs_evaluation,
              0u)
        << "epoch " << e << " allocated while the profiler was armed:"
        << " forward=" << row.allocs_forward
        << " backward=" << row.allocs_backward
        << " optimizer=" << row.allocs_optimizer
        << " refresh=" << row.allocs_refresh
        << " evaluation=" << row.allocs_evaluation;
    // The profiler really ran on these epochs.
    EXPECT_GT(cap.profile().epoch_rollup(e).cp_s, 0.0);
  }
}

}  // namespace
}  // namespace adaqp
