// The determinism analysis suite: check_stage_dag's happens-before model
// (ordering, transitivity, read/write conflict classification), the strict
// ADAQP_RACECHECK / common/env.h parsers, the StageGraph integration — an
// injected undeclared race must be reported and a declared-and-ordered
// graph must pass — and the headline guarantee: every method's real
// forward/backward schedules are racecheck-clean at 1/4/8 threads with the
// async pipeline on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/race_checker.h"
#include "common/env.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "pipeline/config.h"
#include "pipeline/stage_graph.h"
#include "quant/message_codec.h"
#include "runtime/thread_pool.h"
#include "tensor/matrix.h"

namespace adaqp {
namespace {

using analysis::AccessList;
using analysis::BufferAccess;
using analysis::RacecheckGuard;
using analysis::RaceCheckRegistry;
using analysis::RaceReport;
using analysis::StageAccessRecord;
using pipeline::AsyncModeGuard;
using pipeline::StageGraph;

/// Scoped global-pool override; restores the previous size on exit.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

// ---- check_stage_dag: the happens-before model ----------------------------

float buf_a[64];
float buf_b[64];

StageAccessRecord stage(std::string name, std::vector<int> deps,
                        AccessList acc) {
  return {std::move(name), std::move(deps), std::move(acc)};
}

TEST(RaceChecker, UnorderedWriteWriteConflictIsReported) {
  const RaceReport report = analysis::check_stage_dag(
      {stage("w1", {}, {analysis::write_of(buf_a, sizeof(buf_a), "buf_a")}),
       stage("w2", {}, {analysis::write_of(buf_a, sizeof(buf_a), "buf_a")})},
      "test");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].stage_a_name, "w1");
  EXPECT_EQ(report.findings[0].stage_b_name, "w2");
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.summary().find("unordered conflict"), std::string::npos);
}

TEST(RaceChecker, UnorderedReadWriteConflictIsReported) {
  const RaceReport report = analysis::check_stage_dag(
      {stage("r", {}, {analysis::read_of(buf_a, sizeof(buf_a), "buf_a")}),
       stage("w", {}, {analysis::write_of(buf_a, sizeof(buf_a), "buf_a")})},
      "test");
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(RaceChecker, ReadReadOverlapIsNotAConflict) {
  const RaceReport report = analysis::check_stage_dag(
      {stage("r1", {}, {analysis::read_of(buf_a, sizeof(buf_a), "buf_a")}),
       stage("r2", {}, {analysis::read_of(buf_a, sizeof(buf_a), "buf_a")})},
      "test");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.pairs_checked, 1u);
}

TEST(RaceChecker, DisjointWritesAreNotAConflict) {
  const RaceReport report = analysis::check_stage_dag(
      {stage("w1", {}, {analysis::write_of(buf_a, 32, "buf_a.lo")}),
       stage("w2", {},
             {analysis::write_of(buf_a + 8, 32, "buf_a.hi")})},
      "test");
  EXPECT_TRUE(report.clean());
}

TEST(RaceChecker, DeclaredDependencyOrdersTheConflict) {
  const RaceReport report = analysis::check_stage_dag(
      {stage("w1", {}, {analysis::write_of(buf_a, sizeof(buf_a), "buf_a")}),
       stage("w2", {0}, {analysis::write_of(buf_a, sizeof(buf_a), "buf_a")})},
      "test");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.pairs_checked, 0u);
}

TEST(RaceChecker, TransitiveOrderingIsHonored) {
  // a -> b -> c: a and c conflict but are ordered through b, which itself
  // declares nothing (opaque stages still carry happens-before edges).
  const RaceReport report = analysis::check_stage_dag(
      {stage("a", {}, {analysis::write_of(buf_a, sizeof(buf_a), "buf_a")}),
       stage("b", {0}, {}),
       stage("c", {1}, {analysis::write_of(buf_a, sizeof(buf_a), "buf_a")})},
      "test");
  EXPECT_TRUE(report.clean());
}

TEST(RaceChecker, SiblingsOfACommonParentStillConflict) {
  // a -> b, a -> c: b and c are unordered with respect to each other.
  const RaceReport report = analysis::check_stage_dag(
      {stage("a", {}, {}),
       stage("b", {0}, {analysis::write_of(buf_b, sizeof(buf_b), "buf_b")}),
       stage("c", {0}, {analysis::write_of(buf_b, sizeof(buf_b), "buf_b")})},
      "test");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].stage_a_name, "b");
  EXPECT_EQ(report.findings[0].stage_b_name, "c");
}

TEST(RaceChecker, UnannotatedStagesAreOpaqueAndSkipped) {
  const RaceReport report = analysis::check_stage_dag(
      {stage("w", {}, {analysis::write_of(buf_a, sizeof(buf_a), "buf_a")}),
       stage("opaque", {}, {})},
      "test");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.annotated_stages, 1u);
  EXPECT_EQ(report.num_stages, 2u);
}

TEST(RaceChecker, RowSetCompressesConsecutiveRuns) {
  AccessList acc;
  const std::uint32_t rows[] = {2, 3, 4, 9, 12, 13};
  analysis::append_row_set(acc, buf_a, 16, rows, 6,
                           BufferAccess::Mode::kWrite, "rows");
  ASSERT_EQ(acc.size(), 3u);  // [2,5), [9,10), [12,14)
  const auto base = reinterpret_cast<std::uintptr_t>(buf_a);
  EXPECT_EQ(acc[0].begin, base + 2 * 16);
  EXPECT_EQ(acc[0].end, base + 5 * 16);
  EXPECT_EQ(acc[1].begin, base + 9 * 16);
  EXPECT_EQ(acc[2].end, base + 14 * 16);
}

TEST(RaceChecker, ForwardReferencingDependencyThrows) {
  EXPECT_THROW(analysis::check_stage_dag({stage("bad", {3}, {})}, "test"),
               std::invalid_argument);
}

// ---- ADAQP_RACECHECK configuration ----------------------------------------

TEST(RaceCheckConfig, StrictParsingAndGuard) {
  analysis::set_racecheck_override(-1);
  unsetenv("ADAQP_RACECHECK");
  EXPECT_FALSE(analysis::racecheck_enabled());  // default: off
  setenv("ADAQP_RACECHECK", "1", 1);
  EXPECT_TRUE(analysis::racecheck_enabled());
  setenv("ADAQP_RACECHECK", "on", 1);
  EXPECT_THROW(analysis::racecheck_enabled(), std::runtime_error);
  unsetenv("ADAQP_RACECHECK");
  {
    RacecheckGuard guard(true);
    EXPECT_TRUE(analysis::racecheck_enabled());
    {
      RacecheckGuard inner(false);
      EXPECT_FALSE(analysis::racecheck_enabled());
    }
    EXPECT_TRUE(analysis::racecheck_enabled());
  }
  EXPECT_FALSE(analysis::racecheck_enabled());
}

// ---- Strict env helpers (common/env.h) ------------------------------------

TEST(EnvHelpers, Flag01RejectsEverythingButZeroAndOne) {
  unsetenv("ADAQP_TEST_FLAG");
  EXPECT_TRUE(env::flag01("ADAQP_TEST_FLAG", true));
  EXPECT_FALSE(env::flag01("ADAQP_TEST_FLAG", false));
  setenv("ADAQP_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env::flag01("ADAQP_TEST_FLAG", true));
  setenv("ADAQP_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env::flag01("ADAQP_TEST_FLAG", false));
  for (const char* bad : {"2", "yes", "true", " 1", "1 "}) {
    setenv("ADAQP_TEST_FLAG", bad, 1);
    EXPECT_THROW(env::flag01("ADAQP_TEST_FLAG", false), std::runtime_error)
        << "value \"" << bad << "\"";
  }
  // Empty means unset (the `VAR= cmd` shell convention), not malformed.
  setenv("ADAQP_TEST_FLAG", "", 1);
  EXPECT_TRUE(env::flag01("ADAQP_TEST_FLAG", true));
  unsetenv("ADAQP_TEST_FLAG");
}

TEST(EnvHelpers, IntInRangeStrictParseAndClamp) {
  unsetenv("ADAQP_TEST_INT");
  EXPECT_FALSE(env::int_in_range("ADAQP_TEST_INT", 1, 256).has_value());
  setenv("ADAQP_TEST_INT", "8", 1);
  EXPECT_EQ(env::int_in_range("ADAQP_TEST_INT", 1, 256), 8);
  setenv("ADAQP_TEST_INT", "1000", 1);
  EXPECT_EQ(env::int_in_range("ADAQP_TEST_INT", 1, 256), 256);  // clamped
  setenv("ADAQP_TEST_INT", "0", 1);
  EXPECT_EQ(env::int_in_range("ADAQP_TEST_INT", 1, 256), 1);  // clamped
  for (const char* bad : {"abc", "4x", "4 4", "0x10"}) {
    setenv("ADAQP_TEST_INT", bad, 1);
    EXPECT_THROW(env::int_in_range("ADAQP_TEST_INT", 1, 256),
                 std::runtime_error)
        << "value \"" << bad << "\"";
  }
  // Empty means unset (the `VAR= cmd` shell convention), not malformed.
  setenv("ADAQP_TEST_INT", "", 1);
  EXPECT_FALSE(env::int_in_range("ADAQP_TEST_INT", 1, 256).has_value());
  unsetenv("ADAQP_TEST_INT");
}

TEST(EnvHelpers, ConfiguredThreadsRejectsMalformedValues) {
  // The PR-1 parser silently fell back on garbage; the strict contract in
  // docs/ENVVARS.md now throws (pinned here so it cannot regress).
  setenv("ADAQP_THREADS", "fast", 1);
  EXPECT_THROW(configured_threads(), std::runtime_error);
  setenv("ADAQP_THREADS", "4", 1);
  EXPECT_EQ(configured_threads(), 4);
  unsetenv("ADAQP_THREADS");
  EXPECT_GE(configured_threads(), 1);
}

// ---- StageGraph integration -----------------------------------------------

TEST(RaceCheckStageGraph, InjectedUndeclaredRaceIsDetected) {
  // Two stages write the same buffer with no dependency between them — the
  // canonical undeclared race. The checker must refuse to run the graph
  // (launch-time check: the race never executes) in both modes.
  RaceCheckRegistry::instance().reset();
  RacecheckGuard guard(true);
  for (const bool async : {false, true}) {
    StageGraph g;
    g.set_label(async ? "injected-async" : "injected-serial");
    std::vector<float> shared(32, 0.0f);
    g.add(
        "writer-1", [&shared] { shared[0] = 1.0f; }, {},
        {analysis::write_of(shared.data(), shared.size() * sizeof(float),
                            "shared")});
    g.add(
        "writer-2", [&shared] { shared[1] = 2.0f; }, {},
        {analysis::write_of(shared.data(), shared.size() * sizeof(float),
                            "shared")});
    try {
      g.run(async);
      FAIL() << "undeclared race was not reported (async=" << async << ")";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("writer-1"), std::string::npos) << what;
      EXPECT_NE(what.find("writer-2"), std::string::npos) << what;
      EXPECT_NE(what.find("shared"), std::string::npos) << what;
    }
    // Launch-time enforcement: neither stage ran.
    EXPECT_EQ(shared[0], 0.0f);
    EXPECT_EQ(shared[1], 0.0f);
  }
  EXPECT_EQ(RaceCheckRegistry::instance().total_findings(), 2u);
}

TEST(RaceCheckStageGraph, DeclaredDependencyMakesTheSameGraphClean) {
  RaceCheckRegistry::instance().reset();
  RacecheckGuard guard(true);
  StageGraph g;
  std::vector<float> shared(32, 0.0f);
  const int w1 = g.add(
      "writer-1", [&shared] { shared[0] = 1.0f; }, {},
      {analysis::write_of(shared.data(), shared.size() * sizeof(float),
                          "shared")});
  g.add(
      "writer-2", [&shared] { shared[1] = 2.0f; }, {w1},
      {analysis::write_of(shared.data(), shared.size() * sizeof(float),
                          "shared")});
  g.run(/*async=*/true);
  EXPECT_EQ(shared[0], 1.0f);
  EXPECT_EQ(shared[1], 2.0f);
  EXPECT_EQ(RaceCheckRegistry::instance().total_findings(), 0u);
  EXPECT_EQ(RaceCheckRegistry::instance().graphs_checked(), 1u);
}

TEST(RaceCheckStageGraph, DisabledCheckerDoesNotInterfere) {
  RacecheckGuard guard(false);
  StageGraph g;
  std::vector<float> shared(4, 0.0f);
  // Undeclared conflict, but the checker is off — the graph runs (this is
  // the production default; annotations are inert).
  g.add("w1", [&shared] { shared[0] = 1.0f; }, {},
        {analysis::write_of(shared.data(), 4, "shared")});
  g.add("w2", [&shared] { shared[0] = 2.0f; }, {0},
        {analysis::write_of(shared.data(), 4, "shared")});
  g.run(/*async=*/false);
  EXPECT_EQ(shared[0], 2.0f);
}

TEST(RaceCheckRegistryTest, ViolationReportIsChromeTraceJson) {
  RaceCheckRegistry::instance().reset();
  RacecheckGuard guard(true);
  StageGraph g;
  g.set_label("report-test");
  float shared = 0.0f;
  g.add("rep-w1", [] {}, {},
        {analysis::write_of(&shared, sizeof(shared), "shared-scalar")});
  g.add("rep-w2", [] {}, {},
        {analysis::write_of(&shared, sizeof(shared), "shared-scalar")});
  EXPECT_THROW(g.run(false), std::runtime_error);

  const std::string path = ::testing::TempDir() + "adaqp_racecheck_test.json";
  ASSERT_TRUE(RaceCheckRegistry::instance().write_report_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("rep-w1"), std::string::npos);
  EXPECT_NE(json.find("rep-w2"), std::string::npos);
  EXPECT_NE(json.find("shared-scalar"), std::string::npos);
  EXPECT_NE(json.find("\"racecheckSummary\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- Real schedules: every method, clean at 1/4/8 threads -----------------

DatasetSpec analysis_spec() {
  DatasetSpec spec;
  spec.name = "analysis_tiny";
  spec.num_nodes = 300;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.multi_label = false;
  spec.intra_prob = 0.8;
  return spec;
}

class RealSchedulesRacecheckClean : public ::testing::TestWithParam<Method> {};

TEST_P(RealSchedulesRacecheckClean, AllThreadCountsAsyncOnAndOff) {
  const Method method = GetParam();
  Rng rng(314);
  const Dataset ds = make_dataset(analysis_spec(), rng);
  Rng part_rng(27);
  const auto part =
      make_partitioner("multilevel")->partition(ds.graph, 4, part_rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);

  RacecheckGuard racecheck(true);
  for (const int threads : {1, 4, 8}) {
    for (const bool async : {true, false}) {
      RaceCheckRegistry::instance().reset();
      ThreadCountGuard guard(threads);
      AsyncModeGuard mode(async);
      ModelConfig mc;
      mc.aggregator = Aggregator::kGcn;
      mc.in_dim = ds.spec.feature_dim;
      mc.hidden_dim = 16;
      mc.out_dim = ds.spec.num_classes;
      mc.num_layers = 3;
      mc.dropout = 0.5f;
      mc.layer_norm = true;
      TrainOptions opts;
      opts.method = method;
      opts.epochs = 3;
      opts.seed = 99;
      opts.reassign_period = 2;
      opts.eval_every_epoch = false;
      DistTrainer trainer(ds, dist, cluster, mc, opts);
      trainer.run();
      EXPECT_EQ(RaceCheckRegistry::instance().total_findings(), 0u)
          << method_name(method) << " threads=" << threads
          << " async=" << async;
      // The exchange wrappers and fused layer graphs are annotated in every
      // mode; make sure the checker actually saw them rather than vacuously
      // passing. SANCUS is the one method with no stage graphs at all — its
      // broadcast-skipping exchange is deliberately serial (trainer.cpp).
      if (method != Method::kSancus) {
        EXPECT_GT(RaceCheckRegistry::instance().graphs_checked(), 0u)
            << method_name(method) << " threads=" << threads
            << " async=" << async;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, RealSchedulesRacecheckClean,
                         ::testing::Values(Method::kVanilla, Method::kAdaQP,
                                           Method::kAdaQPUniform,
                                           Method::kPipeGCN,
                                           Method::kSancus));

// Sanitizer regression pins (docs/ANALYSIS.md). These lock in properties
// the sanitizer matrix depends on: they pass today, and exist so the UBSan
// CI job fails loudly if the underlying discipline regresses.

// The wire format itself forces misaligned float access: 12 header bytes
// plus a 1-byte width tag put every per-row (zero-point, scale) pair — and,
// for 32-bit rows, the raw float payload — at offset ≡ 1 (mod 4). The codec
// stays UB-free only because every wire read/write goes through memcpy or
// unaligned vector loads, never an aligned reinterpret_cast. This test
// decodes rows whose payloads sit at those odd offsets and demands a
// bit-exact 32-bit round trip, so swapping in an aligned load breaks the
// UBSan job (alignment check) rather than working by luck on x86.
TEST(SanitizerRegression, CodecFloatFieldsSitAtOddOffsetsAndRoundTrip) {
  Rng rng(0x5eedULL);
  const std::size_t dim = 7;  // odd dim: payload starts vary mod 4 per row
  Matrix src(3, dim);
  for (std::size_t r = 0; r < src.rows(); ++r)
    for (std::size_t c = 0; c < dim; ++c)
      src.row(r)[c] = static_cast<float>(r * 31 + c) * 0.37f - 2.5f;

  const std::vector<NodeId> rows = {0, 1, 2};
  const std::vector<int> bits = {32, 4, 32};
  const EncodedBlock block = encode_rows(src, rows, bits, rng);

  // Pin the layout property this test exists for: the first row's metadata
  // (and, at 32 bits, its payload) really is misaligned on the wire.
  const std::size_t first_meta_at = 12 + 1;
  ASSERT_NE(first_meta_at % alignof(float), 0u);

  Matrix dst(3, dim);
  decode_rows(block, dst, rows);
  for (std::size_t c = 0; c < dim; ++c) {
    EXPECT_EQ(dst.row(0)[c], src.row(0)[c]);  // 32-bit rows are lossless
    EXPECT_EQ(dst.row(2)[c], src.row(2)[c]);
    EXPECT_NEAR(dst.row(1)[c], src.row(1)[c], 1.0f);  // 4-bit: quantized
  }
}

// Low-width packing shifts bit groups within a byte. With a non-multiple
// dim the final byte of each payload is only partially filled; reading or
// writing past it is heap-buffer-overflow under ASan, and shifting by >= 8
// is UB under UBSan. Sweep every width × a ragged dim range so both stay
// exercised in the sanitizer trees.
TEST(SanitizerRegression, RaggedTailPackingStaysInBounds) {
  Rng rng(0x7a11ULL);
  for (const int width : {2, 4, 8}) {
    for (std::size_t dim = 1; dim <= 9; ++dim) {
      Matrix src(1, dim);
      for (std::size_t c = 0; c < dim; ++c)
        src.row(0)[c] = static_cast<float>(c) - 0.5f * static_cast<float>(dim);
      const std::vector<NodeId> rows = {0};
      const std::vector<int> bits = {width};
      const EncodedBlock block = encode_rows(src, rows, bits, rng);
      ASSERT_EQ(block.wire_bytes(),
                encoded_wire_bytes(1, dim, bits));
      Matrix dst(1, dim);
      decode_rows(block, dst, rows);
      const float levels = static_cast<float>((1u << width) - 1);
      const float span = static_cast<float>(dim - 1);
      for (std::size_t c = 0; c < dim; ++c)
        EXPECT_NEAR(dst.row(0)[c], src.row(0)[c],
                    span / std::max(levels, 1.0f) + 1e-6f);
    }
  }
}

// Pins the TSan finding this suite's first run surfaced: Event::set() used
// to notify_all() after releasing its mutex, so a waiter could observe
// done_, return from StageGraph::wait(), and destroy the graph (and the
// condvar) while the signaling pool worker was still inside the broadcast —
// a destroy-while-broadcast race on every graph teardown. set() now
// notifies under the lock, making "wait() returned => set() finished" part
// of Event's contract. This loop hammers the launch/wait/destroy window so
// the TSan CI job catches the race if the notify ever moves back out.
TEST(SanitizerRegression, GraphDestroyImmediatelyAfterWaitIsRaceFree) {
  ThreadCountGuard threads(4);
  for (int iter = 0; iter < 200; ++iter) {
    StageGraph graph;
    int sink = 0;
    const int a = graph.add("a", [&] { sink += 1; });
    graph.add("b", [&] { sink += 2; }, {a});
    graph.launch();
    graph.wait();  // graph destroyed right here, while workers wind down
    ASSERT_EQ(sink, 3);
  }
}

}  // namespace
}  // namespace adaqp
