// Tests for the message wire codec, including failure injection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "quant/message_codec.h"
#include "quant/quantize.h"

namespace adaqp {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  m.fill_uniform(rng, -1.0f, 1.0f);
  return m;
}

TEST(Codec, FullPrecisionRoundTripIsExact) {
  Rng rng(1);
  Matrix src = random_matrix(10, 16, rng);
  const std::vector<NodeId> rows = {1, 3, 7, 9};
  const std::vector<int> bits(rows.size(), 32);
  const EncodedBlock block = encode_rows(src, rows, bits, rng);

  Matrix dst(12, 16);
  const std::vector<NodeId> dst_rows = {0, 2, 4, 6};
  decode_rows(block, dst, dst_rows);
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t c = 0; c < 16; ++c)
      EXPECT_EQ(dst.at(dst_rows[i], c), src.at(rows[i], c));
}

TEST(Codec, MixedBitWidthsDecodeWithinScale) {
  Rng rng(2);
  Matrix src = random_matrix(8, 32, rng);
  const std::vector<NodeId> rows = {0, 1, 2, 3};
  const std::vector<int> bits = {2, 4, 8, 32};
  const EncodedBlock block = encode_rows(src, rows, bits, rng);
  Matrix dst(8, 32);
  decode_rows(block, dst, rows);
  // Each decoded row's max error is bounded by that row's quantization step.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto qv = quantize(src.row(rows[i]), bits[i], rng);
    for (std::size_t c = 0; c < 32; ++c)
      EXPECT_LE(std::fabs(dst.at(rows[i], c) - src.at(rows[i], c)),
                qv.scale + 1e-6f);
  }
}

TEST(Codec, WireBytesMatchPrediction) {
  Rng rng(3);
  Matrix src = random_matrix(6, 24, rng);
  const std::vector<NodeId> rows = {0, 2, 4};
  const std::vector<int> bits = {2, 8, 32};
  const EncodedBlock block = encode_rows(src, rows, bits, rng);
  EXPECT_EQ(block.wire_bytes(), encoded_wire_bytes(3, 24, bits));
}

// The bit-width assigner's time objective prices transfers with
// encoded_wire_bytes() and the simulator charges the bytes encode_rows()
// actually produces; the two must agree exactly for every ragged dim and
// bit-width mix (partial trailing bytes, empty rows, 32-bit passthrough).
TEST(Codec, PredictedBytesExactForRaggedDimsAndAllBitMixes) {
  Rng rng(17);
  const std::vector<std::vector<int>> mixes = {
      {2},          {4},          {8},           {32},
      {2, 4, 8},    {8, 8, 2, 4}, {32, 2, 32, 4}, {4, 2, 2, 8, 32, 2},
  };
  for (std::size_t dim : {1ul, 2ul, 3ul, 5ul, 7ul, 9ul, 13ul, 16ul, 17ul,
                          31ul, 33ul, 64ul, 65ul, 127ul}) {
    Matrix src = random_matrix(8, dim, rng);
    for (const auto& bits : mixes) {
      std::vector<NodeId> rows(bits.size());
      for (std::size_t i = 0; i < rows.size(); ++i)
        rows[i] = static_cast<NodeId>(i);
      const EncodedBlock block = encode_rows(src, rows, bits, rng);
      EXPECT_EQ(block.wire_bytes(),
                encoded_wire_bytes(rows.size(), dim, bits))
          << "dim=" << dim << " mix size=" << bits.size();
    }
  }
}

TEST(Codec, SmallerBitsSmallerBlocks) {
  Rng rng(4);
  Matrix src = random_matrix(16, 64, rng);
  std::vector<NodeId> rows(16);
  for (NodeId i = 0; i < 16; ++i) rows[i] = i;
  std::size_t prev = SIZE_MAX;
  for (int b : {32, 8, 4, 2}) {
    const std::vector<int> bits(rows.size(), b);
    const auto block = encode_rows(src, rows, bits, rng);
    EXPECT_LT(block.wire_bytes(), prev);
    prev = block.wire_bytes();
  }
}

TEST(Codec, EmptyRowSetProducesHeaderOnly) {
  Rng rng(5);
  Matrix src = random_matrix(4, 8, rng);
  const std::vector<NodeId> rows;
  const std::vector<int> bits;
  const EncodedBlock block = encode_rows(src, rows, bits, rng);
  EXPECT_EQ(block.wire_bytes(), 12u);
  Matrix dst(4, 8);
  EXPECT_NO_THROW(decode_rows(block, dst, rows));
}

TEST(Codec, ArityMismatchThrows) {
  Rng rng(6);
  Matrix src = random_matrix(4, 8, rng);
  const std::vector<NodeId> rows = {0, 1};
  const std::vector<int> bits = {8};
  EXPECT_THROW(encode_rows(src, rows, bits, rng), std::runtime_error);
}

TEST(Codec, OutOfRangeSourceRowThrows) {
  Rng rng(7);
  Matrix src = random_matrix(4, 8, rng);
  const std::vector<NodeId> rows = {9};
  const std::vector<int> bits = {8};
  EXPECT_THROW(encode_rows(src, rows, bits, rng), std::runtime_error);
}

// ---- Failure injection ------------------------------------------------------

class CodecCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(8);
    src_ = random_matrix(6, 16, rng);
    rows_ = {0, 1, 2};
    const std::vector<int> bits = {2, 4, 8};
    block_ = encode_rows(src_, rows_, bits, rng);
  }
  Matrix src_;
  std::vector<NodeId> rows_;
  EncodedBlock block_;
};

TEST_F(CodecCorruptionTest, BadMagicRejected) {
  block_.bytes[0] ^= 0xFF;
  Matrix dst(6, 16);
  EXPECT_THROW(decode_rows(block_, dst, rows_), std::runtime_error);
}

TEST_F(CodecCorruptionTest, TruncatedPayloadRejected) {
  block_.bytes.resize(block_.bytes.size() - 3);
  Matrix dst(6, 16);
  EXPECT_THROW(decode_rows(block_, dst, rows_), std::runtime_error);
}

TEST_F(CodecCorruptionTest, TrailingGarbageRejected) {
  block_.bytes.push_back(0xAB);
  Matrix dst(6, 16);
  EXPECT_THROW(decode_rows(block_, dst, rows_), std::runtime_error);
}

TEST_F(CodecCorruptionTest, InvalidBitTagRejected) {
  // The first per-row tag byte sits right after the 12-byte header.
  block_.bytes[12] = 13;  // not a valid width
  Matrix dst(6, 16);
  EXPECT_THROW(decode_rows(block_, dst, rows_), std::runtime_error);
}

TEST_F(CodecCorruptionTest, RowCountMismatchRejected) {
  Matrix dst(6, 16);
  const std::vector<NodeId> wrong_rows = {0, 1};
  EXPECT_THROW(decode_rows(block_, dst, wrong_rows), std::runtime_error);
}

TEST_F(CodecCorruptionTest, DimMismatchRejected) {
  Matrix dst(6, 8);  // wrong width
  EXPECT_THROW(decode_rows(block_, dst, rows_), std::runtime_error);
}

TEST_F(CodecCorruptionTest, DestinationRowOutOfRangeRejected) {
  Matrix dst(2, 16);
  const std::vector<NodeId> bad = {0, 1, 5};
  EXPECT_THROW(decode_rows(block_, dst, bad), std::runtime_error);
}

}  // namespace
}  // namespace adaqp
