// Tests for the synthetic dataset registry.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "data/datasets.h"

namespace adaqp {
namespace {

class BenchmarkDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkDatasetTest, GeneratesConsistentStructure) {
  const Dataset ds = make_dataset(GetParam(), 7);
  EXPECT_EQ(ds.num_nodes(), ds.spec.num_nodes);
  EXPECT_EQ(ds.features.rows(), ds.spec.num_nodes);
  EXPECT_EQ(ds.features.cols(), ds.spec.feature_dim);
  EXPECT_EQ(ds.labels.size(), ds.spec.num_nodes);
  for (auto label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<std::int32_t>(ds.spec.num_classes));
  }
  if (ds.spec.multi_label) {
    EXPECT_EQ(ds.label_matrix.rows(), ds.spec.num_nodes);
    EXPECT_EQ(ds.label_matrix.cols(), ds.spec.num_classes);
    // The primary label must always be on.
    for (std::size_t v = 0; v < ds.num_nodes(); ++v)
      EXPECT_EQ(ds.label_matrix.at(v, ds.labels[v]), 1.0f);
  }
}

TEST_P(BenchmarkDatasetTest, SplitsPartitionTheNodeSet) {
  const Dataset ds = make_dataset(GetParam(), 8);
  std::set<std::uint32_t> all;
  for (auto v : ds.train_nodes) all.insert(v);
  for (auto v : ds.val_nodes) all.insert(v);
  for (auto v : ds.test_nodes) all.insert(v);
  EXPECT_EQ(all.size(),
            ds.train_nodes.size() + ds.val_nodes.size() + ds.test_nodes.size())
      << "splits overlap";
  EXPECT_EQ(all.size(), ds.num_nodes()) << "splits do not cover";
  // Fractions approximately honored.
  EXPECT_NEAR(static_cast<double>(ds.train_nodes.size()) / ds.num_nodes(),
              ds.spec.train_fraction, 0.01);
}

TEST_P(BenchmarkDatasetTest, DeterministicPerSeed) {
  const Dataset a = make_dataset(GetParam(), 99);
  const Dataset b = make_dataset(GetParam(), 99);
  EXPECT_EQ(a.graph.num_directed_edges(), b.graph.num_directed_edges());
  EXPECT_EQ(max_abs_diff(a.features, b.features), 0.0f);
  EXPECT_EQ(a.train_nodes, b.train_nodes);
}

TEST_P(BenchmarkDatasetTest, FeaturesCarryClassSignal) {
  // Same-class feature vectors must be closer (on average) than
  // different-class ones — otherwise no GNN can learn.
  const Dataset ds = make_dataset(GetParam(), 10);
  Rng rng(11);
  double same = 0.0, diff = 0.0;
  int same_n = 0, diff_n = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const auto a = rng.uniform_int(ds.num_nodes());
    const auto b = rng.uniform_int(ds.num_nodes());
    if (a == b) continue;
    double d2 = 0.0;
    for (std::size_t f = 0; f < ds.spec.feature_dim; ++f) {
      const double d = ds.features.at(a, f) - ds.features.at(b, f);
      d2 += d * d;
    }
    if (ds.labels[a] == ds.labels[b]) {
      same += d2;
      ++same_n;
    } else {
      diff += d2;
      ++diff_n;
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_LT(same / same_n, 0.9 * diff / diff_n);
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkDatasetTest,
                         ::testing::Values("reddit_sim", "yelp_sim",
                                           "products_sim", "amazon_sim"));

TEST(DatasetRegistry, DensityOrderingFollowsPaper) {
  // Reddit ≫ Amazon > products > Yelp in average degree (Table 3 scaling).
  const auto reddit = dataset_spec("reddit_sim");
  const auto amazon = dataset_spec("amazon_sim");
  const auto products = dataset_spec("products_sim");
  const auto yelp = dataset_spec("yelp_sim");
  EXPECT_GT(reddit.avg_degree, amazon.avg_degree);
  EXPECT_GT(amazon.avg_degree, products.avg_degree);
  EXPECT_GT(products.avg_degree, yelp.avg_degree);
}

TEST(DatasetRegistry, TaskTypesFollowPaper) {
  EXPECT_FALSE(dataset_spec("reddit_sim").multi_label);
  EXPECT_FALSE(dataset_spec("products_sim").multi_label);
  EXPECT_TRUE(dataset_spec("yelp_sim").multi_label);
  EXPECT_TRUE(dataset_spec("amazon_sim").multi_label);
}

TEST(DatasetRegistry, UnknownNameThrows) {
  EXPECT_THROW(dataset_spec("ogbn-papers100M"), std::runtime_error);
}

TEST(DatasetRegistry, AllBenchmarkSpecsComplete) {
  const auto specs = all_benchmark_specs();
  ASSERT_EQ(specs.size(), 4u);
  for (const auto& spec : specs) {
    EXPECT_GT(spec.num_nodes, 0u);
    EXPECT_GT(spec.num_classes, 1u);
    EXPECT_GT(spec.feature_dim, 0u);
  }
}

}  // namespace
}  // namespace adaqp
