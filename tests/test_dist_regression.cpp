// Regression tests for the dist/ subsystem beyond the seed suite: the
// 1-device degenerate path and exactness of lossless (32-bit) round trips.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dist/dist_graph.h"
#include "dist/halo_exchange.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace adaqp {
namespace {

TEST(DistGraphSingleDevice, DegeneratePathIsTheWholeGraph) {
  Rng rng(41);
  Graph g = erdos_renyi(90, 360, rng);
  PartitionResult part;
  part.num_parts = 1;
  part.part_of.assign(g.num_nodes(), 0);
  const DistGraph dist = build_dist_graph(g, part);

  ASSERT_EQ(dist.num_devices(), 1);
  const DeviceGraph& dev = dist.devices[0];
  EXPECT_EQ(dev.num_owned, g.num_nodes());
  EXPECT_EQ(dev.num_halo, 0u);
  EXPECT_EQ(dev.total_edges(), g.num_directed_edges());
  EXPECT_EQ(dev.central_nodes.size(), g.num_nodes());
  EXPECT_TRUE(dev.marginal_nodes.empty());
  EXPECT_TRUE(dev.send_local[0].empty());
  EXPECT_TRUE(dev.recv_local[0].empty());
  // Local ids must be the identity renumbering.
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(dev.global_of_local[v], v);
    EXPECT_EQ(dev.global_degree[v], g.degree(static_cast<NodeId>(v)));
  }

  // Exchanges on one device are no-ops with zero traffic and zero time.
  Matrix features(g.num_nodes(), 6);
  features.fill_uniform(rng, -1.0f, 1.0f);
  auto locals = scatter_to_devices(features, dist);
  const Matrix before = locals[0];
  ClusterSpec cluster = ClusterSpec::machines(1, 1);
  std::vector<Rng> rngs;
  rngs.emplace_back(7);
  const auto plan = ExchangePlan::uniform_forward(dist, 8);
  const auto stats =
      exchange_halo_forward(dist, locals, plan, cluster, rngs);
  EXPECT_EQ(stats.total_bytes(), 0u);
  EXPECT_EQ(stats.comm_seconds, 0.0);
  EXPECT_EQ(max_abs_diff(locals[0], before), 0.0f);
}

TEST(ExchangePlanRoundTrip, LosslessForwardThenBackwardIsExact) {
  // At 32 bits the codec is passthrough, so a forward exchange followed by a
  // backward exchange must reproduce, on every owner, its own row plus the
  // exact sum of the halo replicas every peer accumulated for it.
  Rng rng(42);
  Graph g = erdos_renyi(140, 640, rng);
  const auto part = MultilevelPartitioner().partition(g, 4, rng);
  const DistGraph dist = build_dist_graph(g, part);
  ClusterSpec cluster = ClusterSpec::machines(2, 2);
  std::vector<Rng> rngs;
  for (int d = 0; d < 4; ++d) rngs.emplace_back(100 + d);

  const std::size_t dim = 11;
  Matrix global(g.num_nodes(), dim);
  global.fill_uniform(rng, -2.0f, 2.0f);
  auto locals = scatter_to_devices(global, dist);
  // Perturb halo rows so the forward exchange has to restore them.
  for (const auto& dev : dist.devices)
    for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h) {
      auto row = locals[dev.device].row(h);
      std::fill(row.begin(), row.end(), -123.0f);
    }
  const auto fwd = ExchangePlan::uniform_forward(dist, 32);
  exchange_halo_forward(dist, locals, fwd, cluster, rngs);
  EXPECT_EQ(max_abs_diff(gather_from_devices(locals, dist, dim), global),
            0.0f);
  for (const auto& dev : dist.devices)
    for (std::size_t i = 0; i < dev.num_local(); ++i) {
      const auto got = locals[dev.device].row(i);
      const auto want = global.row(dev.global_of_local[i]);
      for (std::size_t c = 0; c < dim; ++c) ASSERT_EQ(got[c], want[c]);
    }

  // Backward: every local row contributes to its global node exactly once.
  Matrix expected = global;
  for (const auto& dev : dist.devices)
    for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h) {
      auto dst = expected.row(dev.global_of_local[h]);
      const auto src = locals[dev.device].row(h);
      for (std::size_t c = 0; c < dim; ++c) dst[c] += src[c];
    }
  const auto bwd = ExchangePlan::uniform_backward(dist, 32);
  exchange_halo_backward(dist, locals, bwd, cluster, rngs);
  for (const auto& dev : dist.devices) {
    for (std::size_t i = 0; i < dev.num_owned; ++i) {
      const auto got = locals[dev.device].row(i);
      const auto want = expected.row(dev.global_of_local[i]);
      for (std::size_t c = 0; c < dim; ++c)
        ASSERT_NEAR(got[c], want[c], 1e-5f);
    }
    for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h)
      for (float v : locals[dev.device].row(h)) ASSERT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace adaqp
