// Tests for neighborhood aggregation kernels and their adjoints.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dist/dist_graph.h"
#include "gnn/aggregate.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace adaqp {
namespace {

/// Single-device view of a whole graph (num_owned == n, no halo).
DistGraph whole_graph(const Graph& g) {
  PartitionResult part;
  part.num_parts = 1;
  part.part_of.assign(g.num_nodes(), 0);
  return build_dist_graph(g, part);
}

/// Dense GCN propagation matrix: Â = D̃^{-1/2} (A + I) D̃^{-1/2}.
Matrix dense_gcn_matrix(const Graph& g) {
  const std::size_t n = g.num_nodes();
  Matrix a(n, n);
  for (std::size_t v = 0; v < n; ++v) {
    const double dv = static_cast<double>(g.degree(v)) + 1.0;
    a.at(v, v) = static_cast<float>(1.0 / dv);
    for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
      const double du = static_cast<double>(g.degree(u)) + 1.0;
      a.at(v, u) = static_cast<float>(1.0 / std::sqrt(dv * du));
    }
  }
  return a;
}

/// Dense GIN-style sum matrix: A + I.
Matrix dense_sum_matrix(const Graph& g) {
  const std::size_t n = g.num_nodes();
  Matrix a(n, n);
  for (std::size_t v = 0; v < n; ++v) {
    a.at(v, v) = 1.0f;
    for (NodeId u : g.neighbors(static_cast<NodeId>(v))) a.at(v, u) = 1.0f;
  }
  return a;
}

/// Dense SAGE mean matrix: row v = 1/deg(v) over neighbors.
Matrix dense_mean_matrix(const Graph& g) {
  const std::size_t n = g.num_nodes();
  Matrix a(n, n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t dv = g.degree(v);
    if (dv == 0) continue;
    for (NodeId u : g.neighbors(static_cast<NodeId>(v)))
      a.at(v, u) = 1.0f / static_cast<float>(dv);
  }
  return a;
}

TEST(Coefficients, GcnSymmetricNormalization) {
  EXPECT_DOUBLE_EQ(aggregation_coefficient(Aggregator::kGcn, 3, 1),
                   1.0 / std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(self_coefficient(Aggregator::kGcn, 4), 0.2);
}

TEST(Coefficients, SageMean) {
  EXPECT_DOUBLE_EQ(aggregation_coefficient(Aggregator::kSageMean, 99, 4),
                   0.25);
  EXPECT_DOUBLE_EQ(aggregation_coefficient(Aggregator::kSageMean, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(self_coefficient(Aggregator::kSageMean, 7), 0.0);
}

class AggregatorKindTest : public ::testing::TestWithParam<Aggregator> {};

TEST_P(AggregatorKindTest, MatchesDensePropagationMatrix) {
  const Aggregator agg = GetParam();
  Rng rng(21);
  Graph g = erdos_renyi(40, 120, rng);
  const DistGraph dist = whole_graph(g);
  Matrix x(40, 6);
  x.fill_uniform(rng, -2.0f, 2.0f);

  Matrix got;
  aggregate_forward(dist.devices[0], agg, x, got);

  const Matrix a = agg == Aggregator::kGcn ? dense_gcn_matrix(g)
                   : agg == Aggregator::kSum ? dense_sum_matrix(g)
                                             : dense_mean_matrix(g);
  Matrix want;
  gemm(a, x, want);
  EXPECT_LT(max_abs_diff(got, want), 1e-5f);
}

TEST_P(AggregatorKindTest, AdjointSatisfiesInnerProductIdentity) {
  // <Agg(x), y> == <x, Agg^T(y)> for all x, y.
  const Aggregator agg = GetParam();
  Rng rng(22);
  Graph g = erdos_renyi(30, 90, rng);
  const DistGraph dist = whole_graph(g);
  Matrix x(30, 4), y(30, 4);
  x.fill_uniform(rng, -1.0f, 1.0f);
  y.fill_uniform(rng, -1.0f, 1.0f);

  Matrix ax;
  aggregate_forward(dist.devices[0], agg, x, ax);
  Matrix aty(30, 4);
  aggregate_backward(dist.devices[0], agg, y, aty);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) lhs += ax.data()[i] * y.data()[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x.data()[i] * aty.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST_P(AggregatorKindTest, DistributedEqualsCentralizedAfterHaloFill) {
  const Aggregator agg = GetParam();
  Rng rng(23);
  Graph g = erdos_renyi(60, 240, rng);
  const DistGraph dist = whole_graph(g);
  Matrix x(60, 5);
  x.fill_uniform(rng, -1.0f, 1.0f);
  Matrix central;
  aggregate_forward(dist.devices[0], agg, x, central);

  // Now partition into 3 and aggregate per device with exact halos.
  const auto part = FennelPartitioner().partition(g, 3, rng);
  const DistGraph d3 = build_dist_graph(g, part);
  for (const auto& dev : d3.devices) {
    Matrix local(dev.num_local(), 5);
    for (std::size_t i = 0; i < dev.num_local(); ++i) {
      const auto src = x.row(dev.global_of_local[i]);
      std::copy(src.begin(), src.end(), local.row(i).begin());
    }
    Matrix got;
    aggregate_forward(dev, agg, local, got);
    for (std::size_t i = 0; i < dev.num_owned; ++i) {
      const auto want = central.row(dev.global_of_local[i]);
      const auto have = got.row(i);
      for (std::size_t c = 0; c < 5; ++c)
        ASSERT_NEAR(have[c], want[c], 1e-5f);
    }
  }
}

TEST_P(AggregatorKindTest, RowSubsetMatchesFullRows) {
  const Aggregator agg = GetParam();
  Rng rng(24);
  Graph g = erdos_renyi(50, 150, rng);
  const DistGraph dist = whole_graph(g);
  Matrix x(50, 3);
  x.fill_uniform(rng, -1.0f, 1.0f);
  Matrix full;
  aggregate_forward(dist.devices[0], agg, x, full);
  Matrix partial(50, 3);
  const std::vector<NodeId> rows = {5, 17, 42};
  aggregate_forward(dist.devices[0], agg, x, rows, partial);
  for (NodeId r : rows)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(partial.at(r, c), full.at(r, c));
}

INSTANTIATE_TEST_SUITE_P(Kinds, AggregatorKindTest,
                         ::testing::Values(Aggregator::kGcn,
                                           Aggregator::kSageMean,
                                           Aggregator::kSum));

TEST(AggregateFlops, CountsEdgesAndRows) {
  Graph g = star_graph(5);
  const DistGraph dist = whole_graph(g);
  const auto& dev = dist.devices[0];
  std::vector<NodeId> all = {0, 1, 2, 3, 4};
  // 8 directed edges * 2 * dim + 5 rows * 2 * dim, dim = 3.
  EXPECT_DOUBLE_EQ(aggregate_flops(dev, all, 3), 2.0 * 8 * 3 + 2.0 * 5 * 3);
  EXPECT_DOUBLE_EQ(dense_flops(10, 4, 6), 2.0 * 10 * 4 * 6);
  EXPECT_GT(epilogue_flops(10, 4), 0.0);
}

TEST(AggregateFlops, CentralPlusMarginalEqualsAll) {
  Rng rng(25);
  Graph g = erdos_renyi(80, 320, rng);
  const auto part = FennelPartitioner().partition(g, 3, rng);
  const DistGraph dist = build_dist_graph(g, part);
  for (const auto& dev : dist.devices) {
    std::vector<NodeId> all(dev.num_owned);
    for (std::size_t i = 0; i < all.size(); ++i)
      all[i] = static_cast<NodeId>(i);
    EXPECT_DOUBLE_EQ(aggregate_flops(dev, dev.central_nodes, 4) +
                         aggregate_flops(dev, dev.marginal_nodes, 4),
                     aggregate_flops(dev, all, 4));
  }
}

}  // namespace
}  // namespace adaqp
