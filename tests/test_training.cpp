// End-to-end training behaviour: convergence, method comparisons, timing
// accounting. These are the integration tests over the whole stack.
#include <gtest/gtest.h>

#include "core/trainer.h"

namespace adaqp {
namespace {

DatasetSpec small_spec(bool multi_label = false) {
  DatasetSpec spec;
  spec.name = multi_label ? "small_multi" : "small_single";
  spec.num_nodes = 900;
  spec.avg_degree = 10.0;
  spec.feature_dim = 16;
  spec.num_classes = 6;
  spec.multi_label = multi_label;
  spec.intra_prob = 0.8;
  return spec;
}

RunResult train(const Dataset& ds, Method method, Aggregator agg, int epochs,
                int devices = 4, float dropout = 0.3f,
                std::uint64_t seed = 21) {
  Rng rng(4242);
  const auto part =
      MultilevelPartitioner().partition(ds.graph, devices, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, devices / 2);
  ModelConfig mc;
  mc.aggregator = agg;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 24;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 3;
  mc.dropout = dropout;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = epochs;
  opts.seed = seed;
  opts.reassign_period = 10;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  return trainer.run();
}

class ConvergenceTest : public ::testing::TestWithParam<Aggregator> {};

TEST_P(ConvergenceTest, VanillaLearnsTheSbmTask) {
  Rng rng(1);
  const Dataset ds = make_dataset(small_spec(), rng);
  const RunResult r = train(ds, Method::kVanilla, GetParam(), 40);
  EXPECT_GT(r.final_val_acc, 0.80) << "model failed to learn";
  EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss * 0.5)
      << "loss did not decrease";
}

TEST_P(ConvergenceTest, AdaQPMatchesVanillaAccuracy) {
  // Paper Table 4: AdaQP accuracy within a few tenths of a percent of
  // Vanilla. At our scale we allow a slightly wider band.
  Rng rng(2);
  const Dataset ds = make_dataset(small_spec(), rng);
  const RunResult vanilla = train(ds, Method::kVanilla, GetParam(), 40);
  const RunResult adaqp = train(ds, Method::kAdaQP, GetParam(), 40);
  EXPECT_NEAR(adaqp.final_val_acc, vanilla.final_val_acc, 0.035);
}

TEST_P(ConvergenceTest, AdaQPFasterThanVanilla) {
  Rng rng(3);
  const Dataset ds = make_dataset(small_spec(), rng);
  const RunResult vanilla = train(ds, Method::kVanilla, GetParam(), 15);
  const RunResult adaqp = train(ds, Method::kAdaQP, GetParam(), 15);
  EXPECT_GT(adaqp.throughput, vanilla.throughput * 1.2)
      << "AdaQP should beat Vanilla's simulated throughput";
  EXPECT_LT(adaqp.total_comm_bytes, vanilla.total_comm_bytes / 2)
      << "quantization should at least halve traffic";
}

INSTANTIATE_TEST_SUITE_P(Models, ConvergenceTest,
                         ::testing::Values(Aggregator::kGcn,
                                           Aggregator::kSageMean));

TEST(MultiLabelTraining, LearnsAndReportsMicroF1) {
  Rng rng(4);
  const Dataset ds = make_dataset(small_spec(/*multi_label=*/true), rng);
  const RunResult r = train(ds, Method::kVanilla, Aggregator::kGcn, 40);
  EXPECT_GT(r.final_val_acc, 0.5);  // micro-F1 on the synthetic task
}

TEST(StalenessBaselines, RunAndStayFinite) {
  Rng rng(5);
  const Dataset ds = make_dataset(small_spec(), rng);
  for (Method m : {Method::kPipeGCN, Method::kSancus}) {
    const RunResult r = train(ds, m, Aggregator::kGcn, 25);
    for (const auto& e : r.epochs)
      ASSERT_TRUE(std::isfinite(e.train_loss)) << method_name(m);
    EXPECT_GT(r.final_val_acc, 0.4) << method_name(m);
  }
}

TEST(StalenessBaselines, PipeGcnHidesCommunication) {
  // PipeGCN overlaps communication with computation, so its epoch must be
  // shorter than Vanilla's comm+comp sum.
  Rng rng(6);
  const Dataset ds = make_dataset(small_spec(), rng);
  const RunResult vanilla = train(ds, Method::kVanilla, Aggregator::kGcn, 12);
  const RunResult pipe = train(ds, Method::kPipeGCN, Aggregator::kGcn, 12);
  EXPECT_LT(pipe.avg_epoch_seconds, vanilla.avg_epoch_seconds);
}

TEST(StalenessBaselines, SancusSkipsBroadcasts) {
  // With broadcast skipping, SANCUS must move fewer bytes than Vanilla.
  Rng rng(7);
  const Dataset ds = make_dataset(small_spec(), rng);
  const RunResult vanilla = train(ds, Method::kVanilla, Aggregator::kGcn, 20);
  const RunResult sancus = train(ds, Method::kSancus, Aggregator::kGcn, 20);
  EXPECT_LT(sancus.total_comm_bytes, vanilla.total_comm_bytes);
}

TEST(UniformQuantBaseline, RunsWithRandomWidths) {
  Rng rng(8);
  const Dataset ds = make_dataset(small_spec(), rng);
  const RunResult r = train(ds, Method::kAdaQPUniform, Aggregator::kGcn, 25);
  EXPECT_GT(r.final_val_acc, 0.6);
  EXPECT_EQ(r.assign_seconds, 0.0);  // no solver in the uniform scheme
}

TEST(Timing, BreakdownComponentsArePopulated) {
  Rng rng(9);
  const Dataset ds = make_dataset(small_spec(), rng);
  const RunResult vanilla = train(ds, Method::kVanilla, Aggregator::kGcn, 5);
  EXPECT_GT(vanilla.avg_breakdown.comm, 0.0);
  EXPECT_GT(vanilla.avg_breakdown.comp, 0.0);
  EXPECT_EQ(vanilla.avg_breakdown.quant, 0.0);
  EXPECT_GE(vanilla.avg_breakdown.total,
            vanilla.avg_breakdown.comm);  // no overlap in Vanilla

  const RunResult adaqp = train(ds, Method::kAdaQP, Aggregator::kGcn, 5);
  EXPECT_GT(adaqp.avg_breakdown.quant, 0.0);
  EXPECT_GT(adaqp.assign_seconds, 0.0);
  EXPECT_DOUBLE_EQ(adaqp.wall_clock_seconds,
                   adaqp.train_seconds + adaqp.assign_seconds);
}

TEST(Timing, CommCostFractionInPaperRegime) {
  // Table 1's premise: communication dominates vanilla full-graph training.
  Rng rng(10);
  const Dataset ds = make_dataset(small_spec(), rng);
  const RunResult r = train(ds, Method::kVanilla, Aggregator::kGcn, 5);
  const double frac = r.avg_breakdown.comm / r.avg_epoch_seconds;
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 0.95);
}

TEST(Trainer, PairBytesMatrixExposed) {
  Rng rng(11);
  const Dataset ds = make_dataset(small_spec(), rng);
  Rng prng(12);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  TrainOptions opts;
  opts.method = Method::kVanilla;
  opts.epochs = 1;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  trainer.train_epoch();
  const auto& bytes = trainer.last_layer1_pair_bytes();
  ASSERT_EQ(bytes.size(), 4u);
  std::size_t total = 0;
  for (const auto& row : bytes)
    for (std::size_t b : row) total += b;
  EXPECT_GT(total, 0u);
}

TEST(Trainer, MethodNames) {
  EXPECT_EQ(method_name(Method::kVanilla), "Vanilla");
  EXPECT_EQ(method_name(Method::kAdaQP), "AdaQP");
  EXPECT_EQ(method_name(Method::kAdaQPUniform), "AdaQP-Uniform");
  EXPECT_EQ(method_name(Method::kPipeGCN), "PipeGCN-like");
  EXPECT_EQ(method_name(Method::kSancus), "SANCUS-like");
}

TEST(Trainer, SingleDeviceDegenerateCase) {
  Rng rng(13);
  DatasetSpec spec = small_spec();
  spec.num_nodes = 250;
  const Dataset ds = make_dataset(spec, rng);
  PartitionResult part;
  part.num_parts = 1;
  part.part_of.assign(ds.num_nodes(), 0);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(1, 1);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  TrainOptions opts;
  opts.method = Method::kAdaQP;  // no peers: must degrade gracefully
  opts.epochs = 3;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  const RunResult r = trainer.run();
  EXPECT_EQ(r.total_comm_bytes, 0u);
  for (const auto& e : r.epochs) EXPECT_TRUE(std::isfinite(e.train_loss));
}

}  // namespace
}  // namespace adaqp
