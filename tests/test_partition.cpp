// Tests for graph partitioners (METIS substitute + baselines).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "runtime/thread_pool.h"

namespace adaqp {
namespace {

struct Case {
  std::string partitioner;
  int parts;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << c.partitioner << "/k" << c.parts;
}

class PartitionerTest : public ::testing::TestWithParam<Case> {};

TEST_P(PartitionerTest, ValidOnSbm) {
  const auto [name, k] = GetParam();
  Rng rng(13);
  DcSbmParams params;
  params.num_nodes = 1200;
  params.num_blocks = 8;
  params.avg_degree = 10.0;
  DcSbm sbm = dc_sbm(params, rng);
  const auto part = make_partitioner(name)->partition(sbm.graph, k, rng);
  validate_partition(sbm.graph, part);
  EXPECT_EQ(part.num_parts, k);
  // All parts non-empty and reasonably balanced.
  for (auto size : part.part_sizes()) EXPECT_GT(size, 0u);
  EXPECT_LE(part.balance_factor(), 1.35);
}

TEST_P(PartitionerTest, ValidOnGrid) {
  const auto [name, k] = GetParam();
  Rng rng(14);
  Graph g = grid_graph(20, 25);
  const auto part = make_partitioner(name)->partition(g, k, rng);
  validate_partition(g, part);
  EXPECT_LE(part.balance_factor(), 1.35);
}

TEST_P(PartitionerTest, SinglePartTrivial) {
  const auto [name, k] = GetParam();
  (void)k;
  Rng rng(15);
  Graph g = ring_graph(50);
  const auto part = make_partitioner(name)->partition(g, 1, rng);
  validate_partition(g, part);
  EXPECT_EQ(edge_cut(g, part.part_of), 0u);
}

TEST_P(PartitionerTest, HandlesIsolatedNodes) {
  // Star plus isolated singletons: the regression scenario where seed
  // selection used to strand partitions on zero-degree nodes.
  const auto [name, k] = GetParam();
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < 60; ++v) edges.emplace_back(0, v);
  Graph g = build_graph(100, edges);  // nodes 60..99 isolated
  Rng rng(16);
  const auto part = make_partitioner(name)->partition(g, k, rng);
  validate_partition(g, part);
  EXPECT_LE(part.balance_factor(), 1.5);
}

TEST_P(PartitionerTest, HandlesDisconnectedComponents) {
  const auto [name, k] = GetParam();
  std::vector<std::pair<NodeId, NodeId>> edges;
  // Four disjoint cliques of 25.
  for (int comp = 0; comp < 4; ++comp)
    for (NodeId u = 0; u < 25; ++u)
      for (NodeId v = u + 1; v < 25; ++v)
        edges.emplace_back(comp * 25 + u, comp * 25 + v);
  Graph g = build_graph(100, edges);
  Rng rng(17);
  const auto part = make_partitioner(name)->partition(g, k, rng);
  validate_partition(g, part);
  EXPECT_LE(part.balance_factor(), 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    All, PartitionerTest,
    ::testing::Values(Case{"random", 2}, Case{"random", 4},
                      Case{"range", 2}, Case{"range", 4},
                      Case{"fennel", 2}, Case{"fennel", 4}, Case{"fennel", 8},
                      Case{"ldg", 2}, Case{"ldg", 4}, Case{"ldg", 8},
                      Case{"multilevel", 2}, Case{"multilevel", 4},
                      Case{"multilevel", 8}));

// The coarsening sweep (coarse-graph construction + projection) runs on the
// runtime pool; the decomposition is per-coarse-node with fixed
// accumulation order, so any thread count must reproduce the serial
// assignment exactly — node for node, not just cut-for-cut.
TEST(Multilevel, CoarseningBitIdenticalAcrossThreadCounts) {
  DcSbmParams params;
  params.num_nodes = 3000;
  params.num_blocks = 6;
  params.avg_degree = 14.0;
  Rng data_rng(47);
  DcSbm sbm = dc_sbm(params, data_rng);
  const int prev = num_threads();
  set_num_threads(1);
  Rng rng1(123);
  const auto serial = MultilevelPartitioner().partition(sbm.graph, 4, rng1);
  for (int threads : {2, 4, 8}) {
    set_num_threads(threads);
    Rng rngN(123);
    const auto parallel =
        MultilevelPartitioner().partition(sbm.graph, 4, rngN);
    EXPECT_EQ(parallel.part_of, serial.part_of) << threads << " threads";
  }
  set_num_threads(prev);
}

TEST(Multilevel, BeatsRandomCutOnCommunityGraph) {
  Rng rng(31);
  DcSbmParams params;
  params.num_nodes = 2000;
  params.num_blocks = 4;
  params.avg_degree = 12.0;
  params.intra_prob = 0.85;
  DcSbm sbm = dc_sbm(params, rng);
  const auto ml = MultilevelPartitioner().partition(sbm.graph, 4, rng);
  const auto rnd = RandomPartitioner().partition(sbm.graph, 4, rng);
  const auto cut_ml = edge_cut(sbm.graph, ml.part_of);
  const auto cut_rnd = edge_cut(sbm.graph, rnd.part_of);
  EXPECT_LT(cut_ml, cut_rnd / 2)
      << "multilevel should halve the random cut on assortative graphs";
}

TEST(Multilevel, NearPerfectOnDisjointCliques) {
  // Four cliques, k=4: the optimal cut is 0 and multilevel should find a
  // low-cut partition (coarsening collapses each clique).
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int comp = 0; comp < 4; ++comp)
    for (NodeId u = 0; u < 40; ++u)
      for (NodeId v = u + 1; v < 40; ++v)
        edges.emplace_back(comp * 40 + u, comp * 40 + v);
  Graph g = build_graph(160, edges);
  Rng rng(32);
  const auto part = MultilevelPartitioner().partition(g, 4, rng);
  EXPECT_EQ(edge_cut(g, part.part_of), 0u);
  EXPECT_LE(part.balance_factor(), 1.05);
}

TEST(Fennel, BeatsRandomCut) {
  Rng rng(33);
  DcSbmParams params;
  params.num_nodes = 1500;
  params.num_blocks = 4;
  params.avg_degree = 10.0;
  params.intra_prob = 0.85;
  DcSbm sbm = dc_sbm(params, rng);
  const auto fe = FennelPartitioner().partition(sbm.graph, 4, rng);
  const auto rnd = RandomPartitioner().partition(sbm.graph, 4, rng);
  EXPECT_LT(edge_cut(sbm.graph, fe.part_of),
            edge_cut(sbm.graph, rnd.part_of));
}

TEST(RangePartitioner, ContiguousAndExactlyBalanced) {
  Rng rng(34);
  Graph g = ring_graph(100);
  const auto part = RangePartitioner().partition(g, 4, rng);
  EXPECT_DOUBLE_EQ(part.balance_factor(), 1.0);
  for (std::size_t v = 1; v < 100; ++v)
    EXPECT_LE(part.part_of[v - 1], part.part_of[v]);
}

TEST(RandomPartitioner, DealsRoundRobin) {
  Rng rng(35);
  Graph g = ring_graph(97);  // not divisible by 4
  const auto part = RandomPartitioner().partition(g, 4, rng);
  const auto sizes = part.part_sizes();
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*hi - *lo, 1u);
}

TEST(PartitionerFactory, UnknownNameThrows) {
  EXPECT_THROW(make_partitioner("metis"), std::runtime_error);
}

TEST(PartitionResult, BalanceFactorComputation) {
  PartitionResult r;
  r.num_parts = 2;
  r.part_of = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(r.balance_factor(), 1.5);  // 3 / (4/2)
}

}  // namespace
}  // namespace adaqp
