// Tests for the dense matrix type and GEMM/elementwise kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace adaqp {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  m.fill_uniform(rng, -2.0f, 2.0f);
  return m;
}

/// Naive triple-loop reference GEMM.
Matrix naive_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < a.cols(); ++p)
        acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  return t;
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, ConstructFromDataValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), std::runtime_error);
}

#ifndef NDEBUG
TEST(Matrix, AtBoundsCheckedInDebugBuilds) {
  Matrix m(2, 3);
  EXPECT_THROW(m.at(2, 0), std::runtime_error);
  EXPECT_THROW(m.at(0, 3), std::runtime_error);
  const Matrix& cm = m;
  EXPECT_THROW(cm.at(5, 5), std::runtime_error);
  EXPECT_NO_THROW(m.at(1, 2));
}
#endif

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(2, 3);
  m.row(1)[2] = 5.0f;
  EXPECT_EQ(m.at(1, 2), 5.0f);
}

TEST(Matrix, AddAndAxpyAndScale) {
  Rng rng(1);
  Matrix a = random_matrix(4, 5, rng);
  Matrix b = random_matrix(4, 5, rng);
  Matrix sum = a;
  sum.add_inplace(b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(sum.data()[i], a.data()[i] + b.data()[i]);
  Matrix ax = a;
  ax.axpy_inplace(2.5f, b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(ax.data()[i], a.data()[i] + 2.5f * b.data()[i]);
  Matrix sc = a;
  sc.scale_inplace(-3.0f);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(sc.data()[i], -3.0f * a.data()[i]);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_THROW(a.add_inplace(b), std::runtime_error);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(1, 2, {3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, GlorotInitWithinLimit) {
  Rng rng(2);
  Matrix m(64, 32);
  m.fill_glorot(rng);
  const float limit = std::sqrt(6.0f / (64 + 32)) + 1e-6f;
  EXPECT_LE(m.max_abs(), limit);
  EXPECT_GT(m.max_abs(), 0.0f);
}

struct GemmShape {
  std::size_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 131 + k * 17 + n);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c;
  gemm(a, b, c);
  EXPECT_LT(max_abs_diff(c, naive_gemm(a, b)), 1e-4f);
}

TEST_P(GemmTest, TnMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 91 + n * 3);
  Matrix at = random_matrix(k, m, rng);  // A^T stored
  Matrix b = random_matrix(k, n, rng);
  Matrix c;
  gemm_tn(at, b, c);
  EXPECT_LT(max_abs_diff(c, naive_gemm(transpose(at), b)), 1e-4f);
}

TEST_P(GemmTest, NtMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 31 + k + n * 77);
  Matrix a = random_matrix(m, k, rng);
  Matrix bt = random_matrix(n, k, rng);  // B^T stored
  Matrix c;
  gemm_nt(a, bt, c);
  EXPECT_LT(max_abs_diff(c, naive_gemm(a, transpose(bt))), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmTest,
                         ::testing::Values(GemmShape{1, 1, 1},
                                           GemmShape{3, 4, 5},
                                           GemmShape{16, 8, 4},
                                           GemmShape{7, 33, 2},
                                           GemmShape{20, 20, 20},
                                           GemmShape{1, 64, 1},
                                           GemmShape{64, 1, 64}));

TEST(Gemm, InnerDimMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c;
  EXPECT_THROW(gemm(a, b, c), std::runtime_error);
}

TEST(Relu, ForwardAndBackward) {
  Matrix in(1, 4, {-1.0f, 0.0f, 2.0f, -0.5f});
  Matrix out;
  relu_forward(in, out);
  EXPECT_EQ(out.at(0, 0), 0.0f);
  EXPECT_EQ(out.at(0, 1), 0.0f);
  EXPECT_EQ(out.at(0, 2), 2.0f);
  EXPECT_EQ(out.at(0, 3), 0.0f);

  Matrix gout(1, 4, {1.0f, 1.0f, 1.0f, 1.0f});
  Matrix gin;
  relu_backward(in, gout, gin);
  EXPECT_EQ(gin.at(0, 0), 0.0f);
  EXPECT_EQ(gin.at(0, 1), 0.0f);  // derivative 0 at the kink
  EXPECT_EQ(gin.at(0, 2), 1.0f);
  EXPECT_EQ(gin.at(0, 3), 0.0f);
}

TEST(Dropout, ZeroProbabilityIsIdentity) {
  Rng rng(3);
  Matrix in = random_matrix(5, 6, rng);
  Matrix out, mask;
  dropout_forward(in, 0.0f, rng, out, mask);
  EXPECT_EQ(max_abs_diff(in, out), 0.0f);
  for (std::size_t i = 0; i < mask.size(); ++i)
    EXPECT_EQ(mask.data()[i], 1.0f);
}

TEST(Dropout, MaskIsConsistentWithOutput) {
  Rng rng(4);
  Matrix in = random_matrix(20, 20, rng);
  Matrix out, mask;
  dropout_forward(in, 0.5f, rng, out, mask);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_FLOAT_EQ(out.data()[i], in.data()[i] * mask.data()[i]);
}

TEST(Dropout, SurvivorScaleKeepsExpectation) {
  Rng rng(5);
  Matrix in(100, 100);
  in.fill(1.0f);
  Matrix out, mask;
  dropout_forward(in, 0.3f, rng, out, mask);
  EXPECT_NEAR(out.sum() / in.size(), 1.0, 0.05);
}

TEST(Dropout, BackwardAppliesMask) {
  Rng rng(6);
  Matrix in = random_matrix(8, 8, rng);
  Matrix out, mask, gout = random_matrix(8, 8, rng), gin;
  dropout_forward(in, 0.4f, rng, out, mask);
  dropout_backward(gout, mask, gin);
  for (std::size_t i = 0; i < gin.size(); ++i)
    EXPECT_FLOAT_EQ(gin.data()[i], gout.data()[i] * mask.data()[i]);
}

TEST(Dropout, InvalidProbabilityThrows) {
  Rng rng(7);
  Matrix in(2, 2), out, mask;
  EXPECT_THROW(dropout_forward(in, 1.0f, rng, out, mask), std::runtime_error);
  EXPECT_THROW(dropout_forward(in, -0.1f, rng, out, mask), std::runtime_error);
}

}  // namespace
}  // namespace adaqp
