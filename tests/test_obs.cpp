// Observability subsystem (src/obs/, docs/OBSERVABILITY.md): instrument
// semantics, interval arithmetic, JSON escaping (shared with the trace
// writer — regression for quote/backslash/control-character names), report
// writers for every ADAQP_METRICS_FORMAT, and the two contracts the
// subsystem must never break: metrics-enabled runs are bit-identical to
// metrics-off runs (every method x async mode x thread count), and capture
// adds no steady-state heap allocations (gated in test_memory.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/trainer.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/stopwatch.h"
#include "pipeline/config.h"
#include "pipeline/trace.h"
#include "runtime/thread_pool.h"

namespace adaqp {
namespace {

using pipeline::AsyncModeGuard;

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- Instruments ----------------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);

  obs::Gauge g;
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(Metrics, HistogramBucketsAndSum) {
  const double bounds[] = {10.0, 100.0, 1000.0};
  obs::Histogram h{std::span<const double>(bounds)};
  h.record(5.0);     // bucket 0 (<= 10)
  h.record(10.0);    // bucket 0 (inclusive upper bound)
  h.record(50.0);    // bucket 1
  h.record(5000.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
}

TEST(Metrics, RegistryIsIdempotentAndTypeChecked) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("test_obs.some_counter");
  obs::Counter& b = reg.counter("test_obs.some_counter");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.gauge("test_obs.some_counter"), std::runtime_error);

  a.add(2);
  bool found = false;
  for (const auto& [name, value] : reg.snapshot().counters)
    if (name == "test_obs.some_counter") {
      found = true;
      EXPECT_GE(value, 2u);
    }
  EXPECT_TRUE(found);
}

TEST(Metrics, WidthIndexMapsWireWidths) {
  EXPECT_EQ(obs::width_index(2), 0);
  EXPECT_EQ(obs::width_index(4), 1);
  EXPECT_EQ(obs::width_index(8), 2);
  EXPECT_EQ(obs::width_index(32), 3);
  EXPECT_EQ(obs::width_index(16), 3);  // anything else counts as b32 slot
}

TEST(Metrics, InstrumentsRegisterOnce) {
  const obs::Instruments& a = obs::instruments();
  const obs::Instruments& b = obs::instruments();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&a.trainer_epochs,
            &obs::Registry::instance().counter("trainer.epochs"));
}

// ---- Interval arithmetic --------------------------------------------------

TEST(Intervals, UnionMergesOverlapsAndTouches) {
  std::vector<obs::Interval> iv{{0, 100}, {50, 150}, {400, 500}};
  EXPECT_DOUBLE_EQ(obs::interval_union_seconds(iv), 250e-6);
  std::vector<obs::Interval> empty;
  EXPECT_DOUBLE_EQ(obs::interval_union_seconds(empty), 0.0);
}

TEST(Intervals, IntersectionSweepsBothSets) {
  std::vector<obs::Interval> a{{0, 100}, {200, 300}};
  std::vector<obs::Interval> b{{50, 250}};
  EXPECT_DOUBLE_EQ(obs::interval_intersection_seconds(a, b), 100e-6);
  std::vector<obs::Interval> c{{1000, 2000}};
  std::vector<obs::Interval> d{{0, 999}};
  EXPECT_DOUBLE_EQ(obs::interval_intersection_seconds(c, d), 0.0);
}

TEST(Intervals, OverlapAccumEfficiencyIsBoundedByTheSmallerSide) {
  std::vector<obs::Interval> ex{{0, 100}};
  std::vector<obs::Interval> comp{{0, 400}};
  obs::OverlapAccum acc;
  obs::accumulate_overlap(ex, comp, acc);
  EXPECT_DOUBLE_EQ(acc.exchange_busy_s, 100e-6);
  EXPECT_DOUBLE_EQ(acc.compute_busy_s, 400e-6);
  EXPECT_DOUBLE_EQ(acc.overlap_s, 100e-6);
  EXPECT_DOUBLE_EQ(acc.efficiency(), 1.0);  // fully hidden exchange

  obs::OverlapAccum zero;
  EXPECT_DOUBLE_EQ(zero.efficiency(), 0.0);  // no denominator, no NaN
}

// ---- JSON escaping (shared by run report and trace writer) ----------------

TEST(JsonEscape, QuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(obs::json_escaped("plain"), "plain");
  EXPECT_EQ(obs::json_escaped("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escaped("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::json_escaped(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::json_escaped("\b\f\r"), "\\b\\f\\r");
  // Bytes >= 0x20 pass through untouched (UTF-8 stays valid).
  EXPECT_EQ(obs::json_escaped("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(Trace, WriteJsonEscapesHostileStageNames) {
  pipeline::TraceRecorder& rec = pipeline::TraceRecorder::instance();
  rec.start();
  const std::string evil = "quote\" back\\slash \x01 new\nline";
  rec.record(evil, "cat\"egory", 1.0, 2.0);
  rec.stop();
  const std::string path = ::testing::TempDir() + "adaqp_trace_escape.json";
  ASSERT_TRUE(rec.write_json(path));
  const std::string body = slurp(path);
  EXPECT_NE(body.find("quote\\\" back\\\\slash \\u0001 new\\nline"),
            std::string::npos);
  EXPECT_NE(body.find("cat\\\"egory"), std::string::npos);
  // The raw control byte must not leak into the JSON.
  EXPECT_EQ(body.find('\x01'), std::string::npos);
}

TEST(Trace, RepeatedNamesAreInternedNotCopied) {
  pipeline::TraceRecorder& rec = pipeline::TraceRecorder::instance();
  rec.start();
  rec.record("stage/a", "pipeline", 0.0, 1.0);
  rec.record("stage/a", "pipeline", 2.0, 1.0);
  rec.record("stage/b", "pipeline", 4.0, 1.0);
  rec.stop();
  const std::vector<pipeline::TraceEvent> evs = rec.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].name, evs[1].name);      // same interned pointer
  EXPECT_EQ(evs[0].category, evs[2].category);
  EXPECT_NE(evs[0].name, evs[2].name);
  EXPECT_EQ(*evs[2].name, "stage/b");
}

// ---- Report writers -------------------------------------------------------

obs::ReportMeta sample_meta() {
  obs::ReportMeta meta;
  meta.method = "AdaQP";
  meta.model = "gcn-16";
  meta.dataset = "unit\"test";  // exercises meta escaping
  meta.partition = "2M-2D";
  meta.devices = 2;
  meta.layers = 3;
  meta.threads = 4;
  meta.async = true;
  meta.epochs_requested = 2;
  meta.sim_train_seconds = 1.5;
  meta.assign_seconds = 0.25;
  meta.total_comm_bytes = 12345;
  return meta;
}

obs::RunCapture sample_capture() {
  obs::RunCapture cap;
  cap.init(/*max_epochs=*/2, /*devices=*/2);
  for (int e = 0; e < 2; ++e) {
    obs::EpochRow* row = cap.row(e);
    row->epoch = e;
    row->train_loss = 0.5 - 0.1 * e;
    row->messages = 2;
    row->wire_bytes[3] = 640;
    std::array<std::uint64_t, obs::kNumWidths> widths{};
    widths[3] = 320;
    cap.add_pair(e, 0, 1, widths, 332);
    cap.add_pair(e, 1, 0, widths, 332);
  }
  return cap;
}

TEST(RunReport, JsonCarriesSchemaEpochsAndPairs) {
  const std::string path = ::testing::TempDir() + "adaqp_report_unit.json";
  obs::ReportConfig cfg;
  cfg.enabled = true;
  cfg.path = path;
  cfg.format = obs::ReportFormat::kJson;
  ASSERT_TRUE(obs::write_report(sample_capture(), sample_meta(), cfg));
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"schema\": \"adaqp-metrics-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"dataset\": \"unit\\\"test\""), std::string::npos);
  EXPECT_NE(body.find("\"wire_bytes\""), std::string::npos);
  EXPECT_NE(body.find("\"b32\": 640"), std::string::npos);
  EXPECT_NE(body.find("\"pairs\""), std::string::npos);
  EXPECT_NE(body.find("\"overlap\""), std::string::npos);
  EXPECT_NE(body.find("\"histograms\""), std::string::npos);
}

TEST(RunReport, CsvAndPromFormatsWrite) {
  obs::ReportConfig cfg;
  cfg.enabled = true;
  cfg.path = ::testing::TempDir() + "adaqp_report_unit.csv";
  cfg.format = obs::ReportFormat::kCsv;
  ASSERT_TRUE(obs::write_report(sample_capture(), sample_meta(), cfg));
  const std::string csv = slurp(cfg.path);
  EXPECT_EQ(csv.rfind("# adaqp-metrics-v1 csv", 0), 0u);
  EXPECT_NE(csv.find("epoch,train_loss"), std::string::npos);
  EXPECT_NE(csv.find("wire_bytes_b32"), std::string::npos);

  cfg.path = ::testing::TempDir() + "adaqp_report_unit.prom";
  cfg.format = obs::ReportFormat::kProm;
  ASSERT_TRUE(obs::write_report(sample_capture(), sample_meta(), cfg));
  const std::string prom = slurp(cfg.path);
  EXPECT_EQ(prom.rfind("# adaqp-metrics-v1 prom", 0), 0u);
  EXPECT_NE(prom.find("adaqp_trainer_epochs_total"), std::string::npos);
  EXPECT_NE(prom.find("adaqp_exchange_submit_to_join_us_bucket"),
            std::string::npos);
}

TEST(RunReport, CaptureDropsOutOfCapacityEpochsSafely) {
  obs::RunCapture cap;
  EXPECT_EQ(cap.row(0), nullptr);  // disabled until init
  cap.init(1, 2);
  EXPECT_NE(cap.row(0), nullptr);
  EXPECT_EQ(cap.row(1), nullptr);  // beyond capacity: dropped, not grown
  EXPECT_EQ(cap.row(-1), nullptr);
  EXPECT_EQ(cap.captured_epochs(), 1);
}

TEST(RunReport, GuardOverridesAndRestores) {
  const std::string path = ::testing::TempDir() + "adaqp_guard.json";
  {
    obs::MetricsGuard guard(path, obs::ReportFormat::kCsv);
    const obs::ReportConfig cfg = obs::report_config();
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.path, path);
    EXPECT_EQ(cfg.format, obs::ReportFormat::kCsv);
    {
      obs::MetricsGuard off;  // default-constructed: force-disable
      EXPECT_FALSE(obs::report_config().enabled);
    }
    EXPECT_TRUE(obs::report_config().enabled);  // inner guard restored
  }
}

// ---- Trainer integration --------------------------------------------------

DatasetSpec obs_spec() {
  DatasetSpec spec;
  spec.name = "obs_tiny";
  spec.num_nodes = 600;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.multi_label = false;
  spec.intra_prob = 0.8;
  return spec;
}

struct ObsRun {
  std::vector<double> losses;
  RunResult result;
};

ObsRun run_once(const Dataset& ds, const DistGraph& dist, Method method,
                bool async, int threads, int epochs) {
  AsyncModeGuard async_guard(async);
  ThreadCountGuard thread_guard(threads);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 3;
  mc.dropout = 0.3f;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = epochs;
  opts.seed = 7;
  opts.reassign_period = 2;
  opts.eval_every_epoch = false;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  ObsRun out;
  out.result = trainer.run();
  for (const EpochRecord& e : out.result.epochs)
    out.losses.push_back(e.train_loss);
  return out;
}

/// The headline determinism contract: recording metrics must not perturb a
/// single bit of the numerics, for every method x async mode x thread count.
TEST(ObsTrainer, MetricsOnRunsAreBitIdenticalToMetricsOff) {
  Rng rng(21);
  const Dataset ds = make_dataset(obs_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const std::string path = ::testing::TempDir() + "adaqp_obs_matrix.json";

  for (Method method : {Method::kVanilla, Method::kAdaQP,
                        Method::kAdaQPUniform, Method::kPipeGCN,
                        Method::kSancus}) {
    for (const bool async : {true, false}) {
      for (const int threads : {1, 4}) {
        std::vector<double> off;
        {
          obs::MetricsGuard disable;  // insulate from ambient ADAQP_METRICS
          off = run_once(ds, dist, method, async, threads, 3).losses;
        }
        std::vector<double> on;
        {
          obs::MetricsGuard enable(path);
          on = run_once(ds, dist, method, async, threads, 3).losses;
        }
        ASSERT_EQ(off.size(), on.size());
        for (std::size_t e = 0; e < off.size(); ++e)
          EXPECT_EQ(off[e], on[e])
              << method_name(method) << " async=" << async
              << " threads=" << threads
              << ": metrics capture perturbed epoch " << e;
      }
    }
  }
}

TEST(ObsTrainer, RunWritesSchemaValidReportWithTrafficAndOverlap) {
  Rng rng(22);
  const Dataset ds = make_dataset(obs_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const std::string path = ::testing::TempDir() + "adaqp_obs_report.json";

  AsyncModeGuard async_guard(true);
  ThreadCountGuard thread_guard(4);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 3;
  TrainOptions opts;
  opts.method = Method::kAdaQP;
  opts.epochs = 4;
  opts.seed = 7;
  opts.reassign_period = 2;
  opts.eval_every_epoch = true;
  DistTrainer trainer(ds, dist, cluster, mc, opts);

  const std::uint64_t msgs_before =
      obs::instruments().exchange_messages.value();
  RunResult result;
  {
    obs::MetricsGuard guard(path);
    result = trainer.run();
  }

  // Capture rows: every epoch recorded, traffic quantized after epoch 0.
  const obs::RunCapture& cap = trainer.run_capture();
  ASSERT_TRUE(cap.enabled());
  ASSERT_EQ(cap.captured_epochs(), 4);
  for (int e = 0; e < 4; ++e) {
    const obs::EpochRow& row = cap.row_at(e);
    EXPECT_EQ(row.epoch, e);
    EXPECT_EQ(row.train_loss, result.epochs[e].train_loss);
    EXPECT_GT(row.messages, 0u);
    EXPECT_GE(row.wall.total(), 0.0);
    std::uint64_t row_bytes = 0;
    for (int w = 0; w < obs::kNumWidths; ++w) row_bytes += row.wire_bytes[w];
    EXPECT_GT(row_bytes, 0u);
    // Per-pair ledgers sum to the row's by-width totals.
    std::uint64_t pair_bytes = 0;
    std::uint64_t pair_msgs = 0;
    for (int s = 0; s < cap.devices(); ++s)
      for (int d = 0; d < cap.devices(); ++d) {
        pair_msgs += cap.pair_messages(e, s, d);
        for (int w = 0; w < obs::kNumWidths; ++w)
          pair_bytes += cap.pair_width_bytes(e, s, d, w);
      }
    EXPECT_EQ(pair_bytes, row_bytes);
    EXPECT_EQ(pair_msgs, row.messages);
    // Epoch 0 runs the uniform 32-bit warmup; later epochs are quantized.
    if (e == 0) {
      EXPECT_EQ(row.wire_bytes[0] + row.wire_bytes[1] + row.wire_bytes[2], 0u);
    } else {
      EXPECT_GT(row.wire_bytes[0] + row.wire_bytes[1] + row.wire_bytes[2], 0u)
          << "no sub-32-bit traffic in quantized epoch " << e;
    }
    // Overlap accumulators are populated (busy time measured) and sane.
    EXPECT_GT(row.fwd_overlap.compute_busy_s, 0.0);
    EXPECT_GE(row.fwd_overlap.efficiency(), 0.0);
    EXPECT_LE(row.fwd_overlap.efficiency(), 1.0);
    EXPECT_GT(row.bwd_overlap.compute_busy_s, 0.0);
    EXPECT_LE(row.bwd_overlap.efficiency(), 1.0);
  }

  // Global instruments observed the run.
  EXPECT_GT(obs::instruments().exchange_messages.value(), msgs_before);

  // Written report is schema-shaped (tools/metrics_schema_check validates
  // the full grammar in CI; spot-check the load-bearing fields here).
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"schema\": \"adaqp-metrics-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"epochs_captured\": 4"), std::string::npos);
  EXPECT_NE(body.find("\"by_width\""), std::string::npos);
  EXPECT_NE(body.find("\"efficiency\""), std::string::npos);
  EXPECT_NE(body.find("\"steady_state\""), std::string::npos);
}

TEST(ObsTrainer, WallAndModelTimingsAreReportedSideBySide) {
  Rng rng(23);
  const Dataset ds = make_dataset(obs_spec(), rng);
  Rng prng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, prng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 2;
  TrainOptions opts;
  opts.method = Method::kVanilla;
  opts.epochs = 1;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  const EpochRecord rec = trainer.train_epoch();
  const obs::PhaseWall& wall = trainer.last_wall_report();
  // Measured phases always stamp, metrics enabled or not, and both time
  // axes exist for the same epoch.
  EXPECT_GT(wall.forward_s, 0.0);
  EXPECT_GT(wall.backward_s, 0.0);
  EXPECT_GT(wall.evaluation_s, 0.0);  // eval_every_epoch defaults true
  EXPECT_GT(wall.total(), 0.0);
  EXPECT_GT(rec.time.total, 0.0);  // model seconds, same phases
}

}  // namespace
}  // namespace adaqp
