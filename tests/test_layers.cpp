// Analytic-vs-numerical gradient checks for every layer component and the
// full model. These validate the hand-derived backward passes that replace
// PyTorch autograd (DESIGN.md §2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dist/dist_graph.h"
#include "gnn/layers.h"
#include "gnn/model.h"
#include "graph/generators.h"

namespace adaqp {
namespace {

DistGraph whole_graph(const Graph& g) {
  PartitionResult part;
  part.num_parts = 1;
  part.part_of.assign(g.num_nodes(), 0);
  return build_dist_graph(g, part);
}

/// <forward(x; params), R> as a scalar probe function.
double probe(const GnnLayer& layer, const DeviceGraph& dev, const Matrix& x,
             const Matrix& r, Rng& rng) {
  Matrix out(dev.num_local(), layer.config().out_dim);
  LayerCache cache;
  const_cast<GnnLayer&>(layer).forward(dev, x, out, cache, rng,
                                       /*training=*/false);
  double acc = 0.0;
  for (std::size_t i = 0; i < dev.num_owned; ++i)
    for (std::size_t c = 0; c < layer.config().out_dim; ++c)
      acc += static_cast<double>(out.at(i, c)) * r.at(i, c);
  return acc;
}

struct LayerCase {
  Aggregator agg;
  bool is_output;
  bool layer_norm;
};

void PrintTo(const LayerCase& c, std::ostream* os) {
  *os << (c.agg == Aggregator::kGcn ? "gcn" : "sage")
      << (c.is_output ? "/out" : "/hidden") << (c.layer_norm ? "/ln" : "");
}

class LayerGradCheck : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerGradCheck, WeightAndInputGradientsMatchNumerics) {
  const auto param = GetParam();
  Rng rng(31);
  Graph g = erdos_renyi(14, 40, rng);
  const DistGraph dist = whole_graph(g);
  const DeviceGraph& dev = dist.devices[0];

  LayerConfig lc;
  lc.aggregator = param.agg;
  lc.in_dim = 5;
  lc.out_dim = 4;
  lc.is_output = param.is_output;
  lc.layer_norm = param.layer_norm;
  lc.dropout = 0.0f;
  GnnLayer layer(lc);
  layer.init_weights(rng);

  Matrix x(dev.num_local(), 5);
  x.fill_uniform(rng, -1.0f, 1.0f);
  Matrix r(dev.num_owned, 4);
  r.fill_uniform(rng, -1.0f, 1.0f);

  // Analytic gradients.
  Matrix out(dev.num_local(), 4);
  LayerCache cache;
  layer.forward(dev, x, out, cache, rng, false);
  Matrix grad_out(dev.num_local(), 4);
  for (std::size_t i = 0; i < dev.num_owned; ++i)
    for (std::size_t c = 0; c < 4; ++c) grad_out.at(i, c) = r.at(i, c);
  layer.zero_grad();
  Matrix grad_x;
  layer.backward(dev, grad_out, cache, grad_x);

  const float eps = 5e-3f;
  int checked = 0;
  // Weight gradients: probe a spread of entries of every parameter.
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->size(); i += std::max<std::size_t>(
             p->size() / 5, 1)) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double fp = probe(layer, dev, x, r, rng);
      p->value.data()[i] = orig - eps;
      const double fm = probe(layer, dev, x, r, rng);
      p->value.data()[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      const double analytic = p->grad.data()[i];
      EXPECT_NEAR(analytic, numeric,
                  4e-2 * std::max(1.0, std::fabs(numeric)))
          << "param entry " << i;
      ++checked;
    }
  }
  EXPECT_GE(checked, 5);

  // Input gradients, including halo rows (none here, single device) —
  // probe a spread of x entries.
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(
           x.size() / 8, 1)) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double fp = probe(layer, dev, x, r, rng);
    x.data()[i] = orig - eps;
    const double fm = probe(layer, dev, x, r, rng);
    x.data()[i] = orig;
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(grad_x.data()[i], numeric,
                4e-2 * std::max(1.0, std::fabs(numeric)))
        << "input entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LayerGradCheck,
    ::testing::Values(LayerCase{Aggregator::kGcn, true, false},
                      LayerCase{Aggregator::kGcn, false, false},
                      LayerCase{Aggregator::kGcn, false, true},
                      LayerCase{Aggregator::kSageMean, true, false},
                      LayerCase{Aggregator::kSageMean, false, true},
                      LayerCase{Aggregator::kSum, false, true},
                      LayerCase{Aggregator::kSum, true, false}));

/// Fixture for the row-subset backward decomposition: a 2-device partition
/// (so marginal rows and halo gradient rows exist) plus one forward pass
/// that fills the cache backward reads.
struct BackwardRowsFixture {
  DistGraph dist;
  GnnLayer layer;
  Matrix x;
  Matrix out;
  Matrix grad_out;
  LayerCache cache;

  explicit BackwardRowsFixture(Aggregator agg, bool is_output)
      : layer([&] {
          LayerConfig lc;
          lc.aggregator = agg;
          lc.in_dim = 6;
          lc.out_dim = 5;
          lc.is_output = is_output;
          lc.layer_norm = !is_output;
          lc.dropout = 0.4f;
          return lc;
        }()) {
    Rng rng(1234);
    // A 10x10 grid split into halves: device 0 owns rows 0-4 of the grid,
    // so its grid rows 0-3 are central, grid row 4 is marginal, and grid
    // row 5 is its halo — all three row classes are non-empty.
    Graph g = grid_graph(10, 10);
    PartitionResult part;
    part.num_parts = 2;
    part.part_of.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      part.part_of[v] = v < 50 ? 0 : 1;
    dist = build_dist_graph(g, part);
    layer.init_weights(rng);
    const DeviceGraph& dev = dist.devices[0];
    EXPECT_GT(dev.central_nodes.size(), 0u);
    EXPECT_GT(dev.marginal_nodes.size(), 0u);
    EXPECT_GT(dev.num_halo, 0u);
    x = Matrix(dev.num_local(), 6);
    x.fill_uniform(rng, -1.0f, 1.0f);
    out = Matrix(dev.num_local(), 5);
    layer.forward(dev, x, out, cache, rng, /*training=*/true);
    grad_out = Matrix(dev.num_local(), 5);
    grad_out.fill_uniform(rng, -1.0f, 1.0f);
  }
};

class BackwardRows : public ::testing::TestWithParam<LayerCase> {};

TEST_P(BackwardRows, FullOwnedListReproducesBackwardBitwise) {
  const auto param = GetParam();
  BackwardRowsFixture fx(param.agg, param.is_output);
  const DeviceGraph& dev = fx.dist.devices[0];

  Matrix ref_grad_x;
  LayerGrads ref_sink;
  fx.layer.backward(dev, fx.grad_out, fx.cache, ref_grad_x, ref_sink);

  Matrix grad_x(dev.num_local(), 6);
  LayerGrads sink;
  fx.layer.backward_rows(dev, fx.grad_out, fx.cache, grad_x, sink,
                         dev.owned_span());

  EXPECT_EQ(max_abs_diff(grad_x, ref_grad_x), 0.0f);
  EXPECT_EQ(max_abs_diff(sink.weight, ref_sink.weight), 0.0f);
  if (!ref_sink.weight_self.empty())
    EXPECT_EQ(max_abs_diff(sink.weight_self, ref_sink.weight_self), 0.0f);
  if (!ref_sink.gamma.empty()) {
    EXPECT_EQ(max_abs_diff(sink.gamma, ref_sink.gamma), 0.0f);
    EXPECT_EQ(max_abs_diff(sink.beta, ref_sink.beta), 0.0f);
  }
}

TEST_P(BackwardRows, MarginalPlusCentralSubsetsCoverFullBackward) {
  const auto param = GetParam();
  BackwardRowsFixture fx(param.agg, param.is_output);
  const DeviceGraph& dev = fx.dist.devices[0];

  Matrix ref_grad_x;
  LayerGrads ref_sink;
  fx.layer.backward(dev, fx.grad_out, fx.cache, ref_grad_x, ref_sink);

  // The trainer's decomposition: marginal-subset adjoint first (the sole
  // producer of halo gradient rows), then the central subset, per-subset
  // sinks folded afterwards.
  Matrix grad_x(dev.num_local(), 6);
  LayerGrads marginal_sink, central_sink;
  fx.layer.backward_rows(dev, fx.grad_out, fx.cache, grad_x, marginal_sink,
                         dev.marginal_span());
  // Halo gradient rows are complete (and bit-identical to the full
  // backward) before the central subset runs — the property that lets the
  // halo-gradient exchange overlap central-row backward.
  for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h)
    for (std::size_t c = 0; c < 6; ++c)
      EXPECT_EQ(grad_x.at(h, c), ref_grad_x.at(h, c)) << "halo row " << h;
  fx.layer.backward_rows(dev, fx.grad_out, fx.cache, grad_x, central_sink,
                         dev.central_span());

  // Owned rows and parameter partials differ from the full backward only by
  // float summation order.
  for (std::size_t i = 0; i < grad_x.size(); ++i)
    EXPECT_NEAR(grad_x.data()[i], ref_grad_x.data()[i],
                1e-4f * std::max(1.0f, std::fabs(ref_grad_x.data()[i])));
  Matrix folded = marginal_sink.weight;
  folded.add_inplace(central_sink.weight);
  for (std::size_t i = 0; i < folded.size(); ++i)
    EXPECT_NEAR(folded.data()[i], ref_sink.weight.data()[i],
                1e-4f * std::max(1.0f, std::fabs(ref_sink.weight.data()[i])));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BackwardRows,
    ::testing::Values(LayerCase{Aggregator::kGcn, false, true},
                      LayerCase{Aggregator::kGcn, true, false},
                      LayerCase{Aggregator::kSageMean, false, true},
                      LayerCase{Aggregator::kSum, false, true}));

TEST(LayerNorm, ForwardNormalizesRows) {
  Rng rng(41);
  LayerNorm ln(6);
  Matrix in(3, 6);
  in.fill_uniform(rng, -5.0f, 5.0f);
  Matrix out;
  LayerNorm::Cache cache;
  ln.forward(in, out, cache);
  for (std::size_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (float v : out.row(r)) mean += v;
    mean /= 6.0;
    for (float v : out.row(r)) var += (v - mean) * (v - mean);
    var /= 6.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, AffineParamsApplied) {
  LayerNorm ln(2);
  ln.gamma.value.at(0, 0) = 2.0f;
  ln.beta.value.at(0, 1) = 1.0f;
  Matrix in(1, 2, {-1.0f, 1.0f});
  Matrix out;
  LayerNorm::Cache cache;
  ln.forward(in, out, cache);
  // Normalized row is (-1, 1) (up to epsilon); gamma/beta apply per column.
  EXPECT_NEAR(out.at(0, 0), -2.0f, 1e-3f);
  EXPECT_NEAR(out.at(0, 1), 2.0f, 1e-3f);
}

TEST(LayerNorm, GradientMatchesNumerics) {
  Rng rng(42);
  LayerNorm ln(5);
  ln.gamma.value.fill_uniform(rng, 0.5f, 1.5f);
  ln.beta.value.fill_uniform(rng, -0.5f, 0.5f);
  Matrix in(4, 5);
  in.fill_uniform(rng, -2.0f, 2.0f);
  Matrix r(4, 5);
  r.fill_uniform(rng, -1.0f, 1.0f);

  auto scalar = [&](const Matrix& input) {
    Matrix out;
    LayerNorm::Cache cache;
    ln.forward(input, out, cache);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      acc += static_cast<double>(out.data()[i]) * r.data()[i];
    return acc;
  };

  Matrix out;
  LayerNorm::Cache cache;
  ln.forward(in, out, cache);
  ln.gamma.zero_grad();
  ln.beta.zero_grad();
  Matrix grad_in;
  ln.backward(r, cache, grad_in);

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < in.size(); i += 3) {
    const float orig = in.data()[i];
    in.data()[i] = orig + eps;
    const double fp = scalar(in);
    in.data()[i] = orig - eps;
    const double fm = scalar(in);
    in.data()[i] = orig;
    EXPECT_NEAR(grad_in.data()[i], (fp - fm) / (2.0 * eps), 2e-2);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    const float orig = ln.gamma.value.data()[i];
    ln.gamma.value.data()[i] = orig + eps;
    const double fp = scalar(in);
    ln.gamma.value.data()[i] = orig - eps;
    const double fm = scalar(in);
    ln.gamma.value.data()[i] = orig;
    EXPECT_NEAR(ln.gamma.grad.data()[i], (fp - fm) / (2.0 * eps), 2e-2);
  }
}

TEST(Model, LayerDimensionChain) {
  Rng rng(43);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = 10;
  mc.hidden_dim = 8;
  mc.out_dim = 3;
  mc.num_layers = 3;
  GnnModel model(mc, rng);
  EXPECT_EQ(model.layer_in_dim(0), 10u);
  EXPECT_EQ(model.layer_out_dim(0), 8u);
  EXPECT_EQ(model.layer_in_dim(1), 8u);
  EXPECT_EQ(model.layer_out_dim(2), 3u);
  EXPECT_TRUE(model.layer(2).config().is_output);
  EXPECT_FALSE(model.layer(0).config().is_output);
}

TEST(Model, FlattenUnflattenGradsRoundTrip) {
  Rng rng(44);
  ModelConfig mc;
  mc.aggregator = Aggregator::kSageMean;
  mc.in_dim = 6;
  mc.hidden_dim = 4;
  mc.out_dim = 2;
  mc.num_layers = 2;
  GnnModel model(mc, rng);
  for (Param* p : model.params()) p->grad.fill_uniform(rng, -1.0f, 1.0f);
  const Matrix flat = model.flatten_grads();
  Matrix doubled = flat;
  doubled.scale_inplace(2.0f);
  model.unflatten_grads(doubled);
  const Matrix back = model.flatten_grads();
  EXPECT_EQ(max_abs_diff(back, doubled), 0.0f);
  EXPECT_EQ(flat.size() * sizeof(float), model.grad_bytes());
}

TEST(Model, SageHasSelfWeights) {
  Rng rng(45);
  ModelConfig gcn_cfg;
  gcn_cfg.aggregator = Aggregator::kGcn;
  gcn_cfg.in_dim = 4;
  gcn_cfg.hidden_dim = 4;
  gcn_cfg.out_dim = 2;
  gcn_cfg.num_layers = 2;
  gcn_cfg.layer_norm = false;
  GnnModel gcn(gcn_cfg, rng);
  ModelConfig sage_cfg = gcn_cfg;
  sage_cfg.aggregator = Aggregator::kSageMean;
  GnnModel sage(sage_cfg, rng);
  EXPECT_GT(sage.params().size(), gcn.params().size());
}

}  // namespace
}  // namespace adaqp
