// Tests for graph file I/O (edge lists and METIS format).
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace adaqp {
namespace {

bool graphs_equal(const Graph& a, const Graph& b) {
  return a.offsets() == b.offsets() && a.neighbor_array() == b.neighbor_array();
}

TEST(EdgeListIo, RoundTrip) {
  Rng rng(1);
  Graph g = erdos_renyi(80, 300, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  Graph back = read_edge_list(ss, 80);
  EXPECT_TRUE(graphs_equal(g, back));
}

TEST(EdgeListIo, ReadsCommentsAndInfersNodeCount) {
  std::stringstream ss("# comment\n% also comment\n0 1\n1 2\n\n2 3\n");
  Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(EdgeListIo, MalformedLineThrows) {
  std::stringstream ss("0 1\nnot numbers\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeListIo, FileRoundTrip) {
  Rng rng(2);
  Graph g = erdos_renyi(40, 120, rng);
  const std::string path = "/tmp/adaqp_io_test_edges.txt";
  write_edge_list_file(g, path);
  Graph back = read_edge_list_file(path, 40);
  EXPECT_TRUE(graphs_equal(g, back));
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path.txt"),
               std::runtime_error);
}

TEST(MetisIo, RoundTrip) {
  Rng rng(3);
  Graph g = erdos_renyi(60, 200, rng);
  std::stringstream ss;
  write_metis(g, ss);
  Graph back = read_metis(ss);
  EXPECT_TRUE(graphs_equal(g, back));
}

TEST(MetisIo, HandWrittenExample) {
  // The triangle + pendant graph from the METIS manual style:
  // 4 nodes, 4 edges: 1-2, 1-3, 2-3, 3-4 (1-based in the file).
  std::stringstream ss("4 4\n2 3\n1 3\n1 2 4\n3\n");
  Graph g = read_metis(ss);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_undirected_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(MetisIo, IsolatedNodesPreserved) {
  std::stringstream ss("3 1\n2\n1\n\n");
  Graph g = read_metis(ss);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(MetisIo, WeightedFormatRejected) {
  std::stringstream ss("2 1 1\n2 5\n1 5\n");
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(MetisIo, EdgeCountMismatchRejected) {
  std::stringstream ss("3 5\n2\n1 3\n2\n");
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(MetisIo, NeighborOutOfRangeRejected) {
  std::stringstream ss("2 1\n9\n1\n");
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(MetisIo, TruncatedFileRejected) {
  std::stringstream ss("4 3\n2\n1\n");
  EXPECT_THROW(read_metis(ss), std::runtime_error);
}

}  // namespace
}  // namespace adaqp
