// Tests for task losses, their gradients, and metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gnn/loss.h"

namespace adaqp {
namespace {

TEST(SoftmaxCrossEntropy, MatchesHandComputedValue) {
  // Single row, logits (0, ln 3): p = (0.25, 0.75).
  Matrix logits(1, 2, {0.0f, std::log(3.0f)});
  Matrix grad(1, 2);
  const std::vector<std::uint32_t> rows = {0};
  const std::vector<std::int32_t> labels = {1};
  const double loss = softmax_cross_entropy(logits, rows, labels, 1.0, grad);
  EXPECT_NEAR(loss, -std::log(0.75), 1e-6);
  EXPECT_NEAR(grad.at(0, 0), 0.25f, 1e-6f);
  EXPECT_NEAR(grad.at(0, 1), -0.25f, 1e-6f);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifferences) {
  Rng rng(1);
  Matrix logits(4, 5);
  logits.fill_uniform(rng, -2.0f, 2.0f);
  const std::vector<std::uint32_t> rows = {0, 2, 3};
  const std::vector<std::int32_t> labels = {1, 4, 0};
  Matrix grad(4, 5);
  softmax_cross_entropy(logits, rows, labels, 3.0, grad);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 5; ++c) {
      Matrix lp = logits, lm = logits;
      lp.at(r, c) += eps;
      lm.at(r, c) -= eps;
      Matrix dummy(4, 5);
      const double fp = softmax_cross_entropy(lp, rows, labels, 3.0, dummy) / 3.0;
      dummy.set_zero();
      const double fm = softmax_cross_entropy(lm, rows, labels, 3.0, dummy) / 3.0;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(grad.at(r, c), numeric, 2e-3)
          << "logit (" << r << "," << c << ")";
    }
}

TEST(SoftmaxCrossEntropy, UntouchedRowsGetNoGradient) {
  Matrix logits(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix grad(3, 2);
  const std::vector<std::uint32_t> rows = {1};
  const std::vector<std::int32_t> labels = {0};
  softmax_cross_entropy(logits, rows, labels, 1.0, grad);
  EXPECT_EQ(grad.at(0, 0), 0.0f);
  EXPECT_EQ(grad.at(2, 1), 0.0f);
  EXPECT_NE(grad.at(1, 0), 0.0f);
}

TEST(SoftmaxCrossEntropy, NumericallyStableForLargeLogits) {
  Matrix logits(1, 3, {1000.0f, 999.0f, -1000.0f});
  Matrix grad(1, 3);
  const std::vector<std::uint32_t> rows = {0};
  const std::vector<std::int32_t> labels = {0};
  const double loss = softmax_cross_entropy(logits, rows, labels, 1.0, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, 1.0);
}

TEST(SoftmaxCrossEntropy, BadLabelThrows) {
  Matrix logits(1, 3);
  Matrix grad(1, 3);
  const std::vector<std::uint32_t> rows = {0};
  const std::vector<std::int32_t> labels = {3};
  EXPECT_THROW(softmax_cross_entropy(logits, rows, labels, 1.0, grad),
               std::runtime_error);
}

TEST(BceWithLogits, MatchesHandComputedValue) {
  // z = 0 → softplus = ln 2, sigmoid = 0.5.
  Matrix logits(1, 2, {0.0f, 0.0f});
  Matrix targets(1, 2, {1.0f, 0.0f});
  Matrix grad(1, 2);
  const std::vector<std::uint32_t> rows = {0};
  const double loss = bce_with_logits(logits, rows, targets, 1.0, grad);
  EXPECT_NEAR(loss, 2.0 * std::log(2.0), 1e-6);
  EXPECT_NEAR(grad.at(0, 0), -0.5f, 1e-6f);
  EXPECT_NEAR(grad.at(0, 1), 0.5f, 1e-6f);
}

TEST(BceWithLogits, GradientMatchesFiniteDifferences) {
  Rng rng(2);
  Matrix logits(3, 4);
  logits.fill_uniform(rng, -2.0f, 2.0f);
  Matrix targets(2, 4);
  for (std::size_t i = 0; i < targets.size(); ++i)
    targets.data()[i] = rng.bernoulli(0.4) ? 1.0f : 0.0f;
  const std::vector<std::uint32_t> rows = {0, 2};
  Matrix grad(3, 4);
  bce_with_logits(logits, rows, targets, 2.0, grad);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t c = 0; c < 4; ++c) {
      Matrix lp = logits, lm = logits;
      lp.at(rows[i], c) += eps;
      lm.at(rows[i], c) -= eps;
      Matrix dummy(3, 4);
      const double fp = bce_with_logits(lp, rows, targets, 2.0, dummy) / 2.0;
      dummy.set_zero();
      const double fm = bce_with_logits(lm, rows, targets, 2.0, dummy) / 2.0;
      EXPECT_NEAR(grad.at(rows[i], c), (fp - fm) / (2.0 * eps), 2e-3);
    }
}

TEST(BceWithLogits, StableForExtremeLogits) {
  Matrix logits(1, 2, {50.0f, -50.0f});
  Matrix targets(1, 2, {1.0f, 0.0f});
  Matrix grad(1, 2);
  const std::vector<std::uint32_t> rows = {0};
  const double loss = bce_with_logits(logits, rows, targets, 1.0, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(Accuracy, CountsArgmaxHits) {
  Matrix logits(3, 3, {5, 1, 1,   // argmax 0
                       0, 9, 2,   // argmax 1
                       1, 2, 3}); // argmax 2
  const std::vector<std::uint32_t> rows = {0, 1, 2};
  const std::vector<std::int32_t> labels = {0, 1, 0};
  EXPECT_DOUBLE_EQ(accuracy(logits, rows, labels), 2.0 / 3.0);
}

TEST(Accuracy, EmptyRowsIsZero) {
  Matrix logits(1, 2);
  EXPECT_DOUBLE_EQ(accuracy(logits, {}, {}), 0.0);
}

TEST(MicroF1, HandComputed) {
  // Row 0: predict {0}, truth {0,1} → tp=1, fn=1.
  // Row 1: predict {1}, truth {}    → fp=1.
  Matrix logits(2, 2, {2.0f, -1.0f, -3.0f, 4.0f});
  Matrix targets(2, 2, {1.0f, 1.0f, 0.0f, 0.0f});
  const std::vector<std::uint32_t> rows = {0, 1};
  // F1 = 2*1 / (2*1 + 1 + 1) = 0.5
  EXPECT_DOUBLE_EQ(micro_f1(logits, rows, targets), 0.5);
}

TEST(MicroF1, PerfectPrediction) {
  Matrix logits(1, 3, {5.0f, -5.0f, 5.0f});
  Matrix targets(1, 3, {1.0f, 0.0f, 1.0f});
  const std::vector<std::uint32_t> rows = {0};
  EXPECT_DOUBLE_EQ(micro_f1(logits, rows, targets), 1.0);
}

TEST(MicroF1, NoPositivesAnywhere) {
  Matrix logits(1, 2, {-1.0f, -1.0f});
  Matrix targets(1, 2);
  const std::vector<std::uint32_t> rows = {0};
  EXPECT_DOUBLE_EQ(micro_f1(logits, rows, targets), 0.0);
}

}  // namespace
}  // namespace adaqp
