// The runtime's load-bearing invariant: multi-threaded execution is
// bit-identical to ADAQP_THREADS=1. Covers the pool primitives themselves,
// the parallel GEMM/aggregation/halo-exchange kernels (including ragged,
// non-multiple-of-block shapes), and a full DistTrainer::run().
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/trainer.h"
#include "dist/halo_exchange.h"
#include "graph/generators.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace adaqp {
namespace {

/// Scoped global-pool override; restores the previous size on exit.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

TEST(ThreadPool, ConfiguredThreadsIsPositive) {
  EXPECT_GE(configured_threads(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard(8);
  std::vector<int> hits(10001, 0);
  parallel_for(hits.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEachCoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard(8);
  std::vector<int> hits(37, 0);
  parallel_for_each(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadCountGuard guard(4);
  std::vector<long> sums(8, 0);
  parallel_for_each(sums.size(), [&](std::size_t t) {
    // Nested region: must collapse to inline execution on the worker.
    parallel_for(100, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) sums[t] += static_cast<long>(i);
    });
  });
  for (long s : sums) EXPECT_EQ(s, 4950);
}

TEST(ThreadPool, TaskExceptionsPropagateToCaller) {
  ThreadCountGuard guard(4);
  EXPECT_THROW(parallel_for(64, 1,
                            [&](std::size_t, std::size_t) {
                              throw std::runtime_error("task boom");
                            }),
               std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::vector<int> hits(16, 0);
  parallel_for_each(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TaskGroup, RunsEveryTaskAndClears) {
  ThreadCountGuard guard(4);
  std::vector<int> done(5, 0);
  TaskGroup group;
  for (std::size_t i = 0; i < done.size(); ++i)
    group.add([&done, i] { done[i] = static_cast<int>(i) + 1; });
  EXPECT_EQ(group.size(), 5u);
  group.run_and_clear();
  EXPECT_TRUE(group.empty());
  for (std::size_t i = 0; i < done.size(); ++i)
    EXPECT_EQ(done[i], static_cast<int>(i) + 1);
}

// ---- Kernel determinism across thread counts ------------------------------

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  m.fill_uniform(rng, -2.0f, 2.0f);
  return m;
}

struct RaggedShape {
  std::size_t m, k, n;
};

class GemmDeterminism : public ::testing::TestWithParam<RaggedShape> {};

TEST_P(GemmDeterminism, AllVariantsBitExactAcrossThreadCounts) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 11 * m + k);
  const Matrix b = random_matrix(k, n, 13 * k + n);
  const Matrix at = random_matrix(k, m, 17 * m + n);
  const Matrix bt = random_matrix(n, k, 19 * k + m);

  Matrix c1, c8, tn1, tn8, nt1, nt8;
  {
    ThreadCountGuard guard(1);
    gemm(a, b, c1);
    gemm_tn(at, b, tn1);
    gemm_nt(a, bt, nt1);
  }
  {
    ThreadCountGuard guard(8);
    gemm(a, b, c8);
    gemm_tn(at, b, tn8);
    gemm_nt(a, bt, nt8);
  }
  EXPECT_EQ(max_abs_diff(c1, c8), 0.0f);
  EXPECT_EQ(max_abs_diff(tn1, tn8), 0.0f);
  EXPECT_EQ(max_abs_diff(nt1, nt8), 0.0f);
}

// Ragged shapes straddle the kernels' block sizes (8/128/512) on purpose.
INSTANTIATE_TEST_SUITE_P(RaggedShapes, GemmDeterminism,
                         ::testing::Values(RaggedShape{1, 1, 1},
                                           RaggedShape{7, 13, 3},
                                           RaggedShape{129, 67, 33},
                                           RaggedShape{130, 257, 9},
                                           RaggedShape{33, 130, 515},
                                           RaggedShape{1000, 3, 17}));

TEST(AggregateDeterminism, ForwardAndAdjointBitExactAcrossThreadCounts) {
  Rng rng(77);
  Graph g = erdos_renyi(220, 1500, rng);
  const auto part = MultilevelPartitioner().partition(g, 3, rng);
  const DistGraph dist = build_dist_graph(g, part);

  for (const Aggregator agg :
       {Aggregator::kGcn, Aggregator::kSageMean, Aggregator::kSum}) {
    for (const auto& dev : dist.devices) {
      const Matrix x = random_matrix(dev.num_local(), 9, 1000 + dev.device);
      const Matrix gout =
          random_matrix(dev.num_owned, 9, 2000 + dev.device);
      Matrix fwd1, fwd8;
      Matrix adj1(dev.num_local(), 9), adj8(dev.num_local(), 9);
      {
        ThreadCountGuard guard(1);
        aggregate_forward(dev, agg, x, fwd1);
        aggregate_backward(dev, agg, gout, adj1);
      }
      {
        ThreadCountGuard guard(8);
        aggregate_forward(dev, agg, x, fwd8);
        aggregate_backward(dev, agg, gout, adj8);
      }
      ASSERT_EQ(max_abs_diff(fwd1, fwd8), 0.0f);
      ASSERT_EQ(max_abs_diff(adj1, adj8), 0.0f);
    }
  }
}

TEST(AggregateDeterminism, GatherAdjointMatchesSerialScatter) {
  // The transpose-CSR gather form must reproduce the scatter kernel exactly
  // (same per-destination accumulation order), not just approximately.
  Rng rng(78);
  Graph g = erdos_renyi(150, 900, rng);
  const auto part = MultilevelPartitioner().partition(g, 2, rng);
  const DistGraph dist = build_dist_graph(g, part);
  ThreadCountGuard guard(8);
  for (const auto& dev : dist.devices) {
    const Matrix gout = random_matrix(dev.num_owned, 7, 30 + dev.device);
    Matrix gather(dev.num_local(), 7), scatter(dev.num_local(), 7);
    aggregate_backward(dev, Aggregator::kGcn, gout, gather);
    std::vector<NodeId> all(dev.num_owned);
    for (std::size_t i = 0; i < all.size(); ++i)
      all[i] = static_cast<NodeId>(i);
    aggregate_backward(dev, Aggregator::kGcn, gout, all, scatter);
    ASSERT_EQ(max_abs_diff(gather, scatter), 0.0f);
  }
}

TEST(HaloExchangeDeterminism, QuantizedForwardBackwardBitExact) {
  Rng rng(79);
  Graph g = erdos_renyi(160, 800, rng);
  const auto part = MultilevelPartitioner().partition(g, 4, rng);
  const DistGraph dist = build_dist_graph(g, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  const std::size_t dim = 10;
  const Matrix global = random_matrix(g.num_nodes(), dim, 4242);
  // 4-bit plan: stochastic rounding makes the per-device Rng order load-
  // bearing, which is exactly what this test pins down.
  const auto fwd_plan = ExchangePlan::uniform_forward(dist, 4);
  const auto bwd_plan = ExchangePlan::uniform_backward(dist, 4);

  auto run_once = [&](int threads, std::vector<Matrix>& out,
                      ExchangeStats& fwd_stats, ExchangeStats& bwd_stats) {
    ThreadCountGuard guard(threads);
    std::vector<Rng> rngs;
    for (int d = 0; d < dist.num_devices(); ++d) rngs.emplace_back(500 + d);
    out = scatter_to_devices(global, dist);
    fwd_stats = exchange_halo_forward(dist, out, fwd_plan, cluster, rngs);
    bwd_stats = exchange_halo_backward(dist, out, bwd_plan, cluster, rngs);
  };

  std::vector<Matrix> locals1, locals8;
  ExchangeStats f1, f8, b1, b8;
  run_once(1, locals1, f1, b1);
  run_once(8, locals8, f8, b8);

  ASSERT_EQ(locals1.size(), locals8.size());
  for (std::size_t d = 0; d < locals1.size(); ++d)
    ASSERT_EQ(max_abs_diff(locals1[d], locals8[d]), 0.0f) << "device " << d;
  EXPECT_EQ(f1.pair_bytes, f8.pair_bytes);
  EXPECT_EQ(b1.pair_bytes, b8.pair_bytes);
  EXPECT_EQ(f1.comm_seconds, f8.comm_seconds);
  EXPECT_EQ(b1.comm_seconds, b8.comm_seconds);
}

// ---- End-to-end determinism -----------------------------------------------

DatasetSpec runtime_spec() {
  DatasetSpec spec;
  spec.name = "runtime_tiny";
  spec.num_nodes = 300;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.multi_label = false;
  spec.intra_prob = 0.8;
  return spec;
}

RunResult run_trainer(const Dataset& ds, const DistGraph& dist,
                      Method method, int threads) {
  ThreadCountGuard guard(threads);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.spec.num_classes;
  mc.num_layers = 3;
  mc.dropout = 0.5f;  // dropout on: per-device Rng streams must hold up
  mc.layer_norm = true;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = 6;
  opts.seed = 99;
  opts.reassign_period = 3;
  opts.eval_every_epoch = true;
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  return trainer.run();
}

class TrainerDeterminism : public ::testing::TestWithParam<Method> {};

TEST_P(TrainerDeterminism, FullRunBitIdenticalAcrossThreadCounts) {
  const Method method = GetParam();
  Rng rng(314);
  const Dataset ds = make_dataset(runtime_spec(), rng);
  Rng part_rng(27);
  const auto part =
      make_partitioner("multilevel")->partition(ds.graph, 4, part_rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  const RunResult serial = run_trainer(ds, dist, method, 1);
  const RunResult parallel = run_trainer(ds, dist, method, 8);

  ASSERT_EQ(serial.epochs.size(), parallel.epochs.size());
  for (std::size_t e = 0; e < serial.epochs.size(); ++e) {
    EXPECT_EQ(serial.epochs[e].train_loss, parallel.epochs[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(serial.epochs[e].val_acc, parallel.epochs[e].val_acc)
        << "epoch " << e;
    EXPECT_EQ(serial.epochs[e].test_acc, parallel.epochs[e].test_acc)
        << "epoch " << e;
  }
  EXPECT_EQ(serial.total_comm_bytes, parallel.total_comm_bytes);
  EXPECT_EQ(serial.final_val_acc, parallel.final_val_acc);
  EXPECT_EQ(serial.final_test_acc, parallel.final_test_acc);
}

INSTANTIATE_TEST_SUITE_P(Methods, TrainerDeterminism,
                         ::testing::Values(Method::kVanilla, Method::kAdaQP,
                                           Method::kAdaQPUniform,
                                           Method::kPipeGCN,
                                           Method::kSancus));

}  // namespace
}  // namespace adaqp
