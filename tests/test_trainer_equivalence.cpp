// The numerical-equivalence invariant (DESIGN.md §4): distributed training
// with full-precision (32-bit passthrough) messages must match single-device
// full-graph training up to float summation-order noise, for any device
// count and partitioner. This makes quantization the *only* stochasticity in
// AdaQP runs, matching the setting of the paper's Theorem 2.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"

namespace adaqp {
namespace {

DatasetSpec tiny_spec(bool multi_label) {
  DatasetSpec spec;
  spec.name = multi_label ? "tiny_multi" : "tiny_single";
  spec.num_nodes = 300;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.multi_label = multi_label;
  spec.intra_prob = 0.8;
  return spec;
}

ModelConfig tiny_model(const DatasetSpec& spec, Aggregator agg) {
  ModelConfig mc;
  mc.aggregator = agg;
  mc.in_dim = spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = spec.num_classes;
  mc.num_layers = 3;
  mc.dropout = 0.0f;  // determinism: quantization must be the only noise
  mc.layer_norm = true;
  return mc;
}

std::vector<double> loss_curve(const Dataset& ds, int devices,
                               const std::string& partitioner, Aggregator agg,
                               Method method, int epochs,
                               double* final_val = nullptr) {
  Rng rng(555);
  const auto part =
      make_partitioner(partitioner)->partition(ds.graph, devices, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(1, devices);
  TrainOptions opts;
  opts.method = method;
  opts.epochs = epochs;
  opts.seed = 321;  // same seed -> same weight init in every configuration
  opts.eval_every_epoch = final_val != nullptr;
  DistTrainer trainer(ds, dist, cluster, tiny_model(ds.spec, agg), opts);
  const RunResult result = trainer.run();
  std::vector<double> losses;
  for (const auto& e : result.epochs) losses.push_back(e.train_loss);
  if (final_val) *final_val = result.final_val_acc;
  return losses;
}

struct EquivCase {
  int devices;
  std::string partitioner;
  Aggregator agg;
  bool multi_label;
};

void PrintTo(const EquivCase& c, std::ostream* os) {
  *os << c.devices << "dev/" << c.partitioner << "/"
      << (c.agg == Aggregator::kGcn ? "gcn" : "sage")
      << (c.multi_label ? "/multi" : "/single");
}

class DistributedEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(DistributedEquivalence, VanillaMatchesCentralized) {
  const auto param = GetParam();
  Rng rng(777);
  const Dataset ds = make_dataset(tiny_spec(param.multi_label), rng);

  double val_central = 0.0, val_dist = 0.0;
  const auto central = loss_curve(ds, 1, "range", param.agg, Method::kVanilla,
                                  8, &val_central);
  const auto dist = loss_curve(ds, param.devices, param.partitioner, param.agg,
                               Method::kVanilla, 8, &val_dist);
  ASSERT_EQ(central.size(), dist.size());
  for (std::size_t e = 0; e < central.size(); ++e)
    EXPECT_NEAR(dist[e], central[e],
                5e-3 * std::max(1.0, std::fabs(central[e])))
        << "epoch " << e;
  EXPECT_NEAR(val_dist, val_central, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedEquivalence,
    ::testing::Values(EquivCase{2, "multilevel", Aggregator::kGcn, false},
                      EquivCase{4, "multilevel", Aggregator::kGcn, false},
                      EquivCase{3, "fennel", Aggregator::kGcn, false},
                      EquivCase{4, "random", Aggregator::kGcn, false},
                      EquivCase{4, "multilevel", Aggregator::kSageMean, false},
                      EquivCase{2, "fennel", Aggregator::kSageMean, true},
                      EquivCase{4, "multilevel", Aggregator::kGcn, true}));

TEST(DistributedEquivalence, DeviceCountDoesNotChangeLoss) {
  // 2-device and 4-device distributed runs must agree with each other too.
  Rng rng(888);
  const Dataset ds = make_dataset(tiny_spec(false), rng);
  const auto two =
      loss_curve(ds, 2, "multilevel", Aggregator::kGcn, Method::kVanilla, 6);
  const auto four =
      loss_curve(ds, 4, "multilevel", Aggregator::kGcn, Method::kVanilla, 6);
  for (std::size_t e = 0; e < two.size(); ++e)
    EXPECT_NEAR(two[e], four[e], 5e-3 * std::max(1.0, std::fabs(two[e])));
}

TEST(QuantizedTraining, TracksExactLossClosely) {
  // AdaQP's quantized loss curve must stay near the exact curve — Theorem 2
  // in action at the scale of a small graph.
  Rng rng(999);
  const Dataset ds = make_dataset(tiny_spec(false), rng);
  const auto exact =
      loss_curve(ds, 4, "multilevel", Aggregator::kGcn, Method::kVanilla, 15);
  const auto quant =
      loss_curve(ds, 4, "multilevel", Aggregator::kGcn, Method::kAdaQP, 15);
  // Same initial loss (quantization kicks in after the first traced epoch).
  EXPECT_NEAR(quant[0], exact[0], 5e-3 * std::fabs(exact[0]));
  // Final losses in the same neighborhood.
  EXPECT_NEAR(quant.back(), exact.back(),
              0.25 * std::max(0.1, std::fabs(exact.back())));
}

}  // namespace
}  // namespace adaqp
