// The src/simd/ contract: ADAQP_ISA is a pure performance knob.
//  - Dispatch: strict ADAQP_ISA parsing (reject garbage, reject ISAs the
//    host can't run), override/guard mechanics, scalar always available.
//  - Codec byte-identity: encoded wire streams are byte-identical across
//    every host-supported ISA for ragged dims and all bit-width mixes, and
//    decode produces bit-identical floats.
//  - Round-trip property tests at every dispatched ISA; corrupt/truncated
//    streams still throw under the vector unpack path.
//  - GEMM kernels bit-identical across ISAs on ragged shapes.
//  - Full training runs (all five methods) bit-identical across ISAs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "dist/dist_graph.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "quant/message_codec.h"
#include "quant/quantize.h"
#include "runtime/thread_pool.h"
#include "simd/isa.h"
#include "simd/kernels.h"
#include "tensor/matrix.h"

namespace adaqp {
namespace {

using simd::Isa;
using simd::IsaGuard;

std::vector<Isa> vector_isas() {
  std::vector<Isa> out;
  for (Isa isa : simd::supported_isas())
    if (isa != Isa::kScalar) out.push_back(isa);
  return out;
}

// ---- Dispatch & strict parsing --------------------------------------------

TEST(SimdDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd::isa_supported(Isa::kScalar));
  const auto all = simd::supported_isas();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front(), Isa::kScalar);
  EXPECT_TRUE(simd::isa_supported(simd::detected_isa()));
}

TEST(SimdDispatch, ParseAcceptsCanonicalNamesOnly) {
  EXPECT_EQ(simd::parse_isa("scalar"), Isa::kScalar);
  EXPECT_EQ(simd::parse_isa("sse42"), Isa::kSse42);
  EXPECT_EQ(simd::parse_isa("avx2"), Isa::kAvx2);
  EXPECT_EQ(simd::parse_isa("avx512"), Isa::kAvx512);
  EXPECT_EQ(simd::parse_isa("neon"), Isa::kNeon);
  EXPECT_EQ(simd::parse_isa("native"), simd::detected_isa());
  for (const char* bad : {"", "AVX2", "avx-512", "sse4.2", "best", "1", "0"})
    EXPECT_THROW(simd::parse_isa(bad), std::runtime_error) << bad;
}

TEST(SimdDispatch, MalformedEnvValueRejected) {
  // active_isa() consults ADAQP_ISA only when no override is installed.
  ASSERT_EQ(setenv("ADAQP_ISA", "turbo9000", 1), 0);
  EXPECT_THROW(simd::active_isa(), std::runtime_error);
  ASSERT_EQ(setenv("ADAQP_ISA", "scalar", 1), 0);
  EXPECT_EQ(simd::active_isa(), Isa::kScalar);
  ASSERT_EQ(unsetenv("ADAQP_ISA"), 0);
  EXPECT_EQ(simd::active_isa(), simd::detected_isa());
}

TEST(SimdDispatch, UnsupportedIsaRequestRejected) {
#if defined(__x86_64__) || defined(__i386__)
  const Isa foreign = Isa::kNeon;  // never executable on x86
#else
  const Isa foreign = Isa::kAvx2;
#endif
  ASSERT_FALSE(simd::isa_supported(foreign));
  EXPECT_THROW(simd::set_isa_override(foreign), std::runtime_error);
  ASSERT_EQ(setenv("ADAQP_ISA", isa_name(foreign), 1), 0);
  EXPECT_THROW(simd::active_isa(), std::runtime_error);
  ASSERT_EQ(unsetenv("ADAQP_ISA"), 0);
}

TEST(SimdDispatch, GuardInstallsAndRestores) {
  const Isa before = simd::active_isa();
  {
    IsaGuard guard(Isa::kScalar);
    EXPECT_EQ(simd::active_isa(), Isa::kScalar);
    {
      IsaGuard inner(simd::detected_isa());
      EXPECT_EQ(simd::active_isa(), simd::detected_isa());
    }
    EXPECT_EQ(simd::active_isa(), Isa::kScalar);
  }
  EXPECT_EQ(simd::active_isa(), before);
}

// ---- Bit packing across ISAs ----------------------------------------------

TEST(SimdPack, PackUnpackMatchesScalarAtEverySizeAndWidth) {
  Rng rng(41);
  for (int bits : {2, 4, 8}) {
    for (std::size_t n : {0ul, 1ul, 3ul, 7ul, 15ul, 16ul, 17ul, 31ul, 33ul,
                          64ul, 100ul, 257ul}) {
      std::vector<std::uint32_t> values(n);
      for (auto& v : values)
        v = static_cast<std::uint32_t>(rng.uniform_int(1u << bits));
      std::vector<std::uint8_t> ref;
      std::vector<std::uint32_t> ref_unpacked;
      {
        IsaGuard guard(Isa::kScalar);
        ref = pack_bits(values, bits);
        ref_unpacked = unpack_bits(ref, bits, n);
      }
      ASSERT_EQ(ref_unpacked, values) << "scalar round trip b=" << bits;
      for (Isa isa : vector_isas()) {
        IsaGuard guard(isa);
        EXPECT_EQ(pack_bits(values, bits), ref)
            << isa_name(isa) << " pack b=" << bits << " n=" << n;
        EXPECT_EQ(unpack_bits(ref, bits, n), values)
            << isa_name(isa) << " unpack b=" << bits << " n=" << n;
      }
    }
  }
}

TEST(SimdPack, OutOfRangeValueStillThrowsOnVectorPath) {
  for (Isa isa : simd::supported_isas()) {
    IsaGuard guard(isa);
    const std::vector<std::uint32_t> bad = {1, 2, 4};  // 4 overflows 2 bits
    EXPECT_THROW(pack_bits(bad, 2), std::runtime_error) << isa_name(isa);
  }
}

// ---- Quantize / dequantize across ISAs ------------------------------------

TEST(SimdQuantize, PayloadAndMetadataByteIdenticalAcrossIsas) {
  for (int bits : {2, 4, 8}) {
    for (std::size_t n : {1ul, 5ul, 16ul, 23ul, 64ul, 129ul, 1000ul}) {
      Rng data_rng(7 * n + static_cast<std::size_t>(bits));
      std::vector<float> values(n);
      for (auto& v : values)
        v = static_cast<float>(data_rng.uniform(-3.0, 3.0));
      QuantizedVector ref;
      {
        IsaGuard guard(Isa::kScalar);
        Rng rng(1234);
        ref = quantize(values, bits, rng);
      }
      for (Isa isa : vector_isas()) {
        IsaGuard guard(isa);
        Rng rng(1234);  // same stream: draws are ISA-independent
        const QuantizedVector qv = quantize(values, bits, rng);
        // Bit-level equality, including the metadata that goes on the wire.
        EXPECT_EQ(qv.payload, ref.payload)
            << isa_name(isa) << " b=" << bits << " n=" << n;
        EXPECT_EQ(qv.zero_point, ref.zero_point) << isa_name(isa);
        EXPECT_EQ(qv.scale, ref.scale) << isa_name(isa);
      }
    }
  }
}

TEST(SimdQuantize, DequantizeBitIdenticalAcrossIsas) {
  Rng data_rng(99);
  std::vector<float> values(517);
  for (auto& v : values) v = static_cast<float>(data_rng.uniform(-1.0, 1.0));
  for (int bits : {2, 4, 8}) {
    Rng rng(55);
    const QuantizedVector qv = quantize(values, bits, rng);
    std::vector<float> ref(values.size());
    {
      IsaGuard guard(Isa::kScalar);
      dequantize(qv, ref);
    }
    for (Isa isa : vector_isas()) {
      IsaGuard guard(isa);
      std::vector<float> out(values.size());
      dequantize(qv, out);
      EXPECT_EQ(out, ref) << isa_name(isa) << " b=" << bits;
    }
  }
}

TEST(SimdQuantize, RoundTripPropertyAtEveryIsa) {
  for (Isa isa : simd::supported_isas()) {
    IsaGuard guard(isa);
    Rng rng(17);
    for (int bits : {2, 4, 8}) {
      std::vector<float> values(201);
      for (auto& v : values) v = static_cast<float>(rng.uniform(-2.0, 2.0));
      const QuantizedVector qv = quantize(values, bits, rng);
      std::vector<float> out(values.size());
      dequantize(qv, out);
      // |x̂ - x| <= S: stochastic rounding moves at most one level.
      for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_LE(std::abs(out[i] - values[i]), qv.scale + 1e-6f)
            << isa_name(isa) << " b=" << bits << " i=" << i;
    }
    // Constant vectors quantize to scale 0 and decode exactly.
    const std::vector<float> flat(37, 1.5f);
    Rng flat_rng(3);
    const QuantizedVector qv = quantize(flat, 4, flat_rng);
    EXPECT_EQ(qv.scale, 0.0f);
    std::vector<float> out(flat.size());
    dequantize(qv, out);
    for (float v : out) EXPECT_EQ(v, 1.5f) << isa_name(isa);
  }
}

// ---- Codec across ISAs -----------------------------------------------------

/// Ragged shapes x bit mixes, encoded at each ISA with identical RNG state:
/// the wire stream must be byte-identical to the scalar encoding, and the
/// decode bit-identical.
TEST(SimdCodec, WireStreamByteIdenticalAcrossIsas) {
  for (std::size_t dim : {1ul, 7ul, 16ul, 33ul, 64ul, 111ul}) {
    Rng mrng(dim);
    Matrix src(9, dim);
    src.fill_uniform(mrng, -2.0f, 2.0f);
    const std::vector<NodeId> rows = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<int> bits = {2, 4, 8, 32, 2, 8, 4, 32, 2};
    EncodedBlock ref;
    Matrix ref_dst(9, dim);
    {
      IsaGuard guard(Isa::kScalar);
      Rng rng(2024);
      ref = encode_rows(src, rows, bits, rng);
      decode_rows(ref, ref_dst, rows);
    }
    EXPECT_EQ(ref.wire_bytes(), encoded_wire_bytes(rows.size(), dim, bits));
    for (Isa isa : vector_isas()) {
      IsaGuard guard(isa);
      Rng rng(2024);
      const EncodedBlock block = encode_rows(src, rows, bits, rng);
      EXPECT_EQ(block.bytes, ref.bytes) << isa_name(isa) << " dim=" << dim;
      Matrix dst(9, dim);
      decode_rows(block, dst, rows);
      EXPECT_EQ(max_abs_diff(dst, ref_dst), 0.0f)
          << isa_name(isa) << " dim=" << dim;
    }
  }
}

/// Corrupt / truncated streams must throw under the vector unpack path too
/// (the decode validation lives in front of the kernels).
TEST(SimdCodec, CorruptStreamsRejectedUnderVectorDecode) {
  for (Isa isa : vector_isas()) {
    IsaGuard guard(isa);
    Rng rng(8);
    Matrix src(6, 40);
    src.fill_uniform(rng, -1.0f, 1.0f);
    const std::vector<NodeId> rows = {0, 1, 2};
    const std::vector<int> bits = {2, 4, 8};
    const EncodedBlock good = encode_rows(src, rows, bits, rng);
    Matrix dst(6, 40);

    EncodedBlock bad_magic = good;
    bad_magic.bytes[0] ^= 0xFF;
    EXPECT_THROW(decode_rows(bad_magic, dst, rows), std::runtime_error);

    EncodedBlock truncated = good;
    truncated.bytes.resize(truncated.bytes.size() - 3);
    EXPECT_THROW(decode_rows(truncated, dst, rows), std::runtime_error);

    EncodedBlock trailing = good;
    trailing.bytes.push_back(0xCD);
    EXPECT_THROW(decode_rows(trailing, dst, rows), std::runtime_error);

    EncodedBlock bad_tag = good;
    bad_tag.bytes[12] = 3;  // not a valid bit-width
    EXPECT_THROW(decode_rows(bad_tag, dst, rows), std::runtime_error);
  }
}

// ---- GEMM across ISAs ------------------------------------------------------

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  m.fill_uniform(rng, -1.0f, 1.0f);
  return m;
}

TEST(SimdGemm, AllVariantsBitIdenticalAcrossIsas) {
  Rng rng(5);
  // Ragged shapes straddle every vector width and tail case.
  const struct { std::size_t m, k, n; } shapes[] = {
      {1, 1, 1}, {3, 5, 7}, {17, 9, 33}, {32, 64, 16}, {50, 23, 130}};
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    const Matrix at = random_matrix(s.k, s.m, rng);
    const Matrix bt = random_matrix(s.n, s.k, rng);
    std::vector<std::uint32_t> subset;
    for (std::size_t i = 0; i < s.m; i += 2)
      subset.push_back(static_cast<std::uint32_t>(i));

    Matrix ref_nn, ref_tn, ref_nt, ref_rows(s.m, s.n);
    {
      IsaGuard guard(Isa::kScalar);
      gemm(a, b, ref_nn);
      gemm_tn(at, b, ref_tn);
      gemm_nt(a, bt, ref_nt);
      gemm_rows(a, b, ref_rows, subset);
    }
    for (Isa isa : vector_isas()) {
      IsaGuard guard(isa);
      Matrix c_nn, c_tn, c_nt, c_rows(s.m, s.n);
      gemm(a, b, c_nn);
      gemm_tn(at, b, c_tn);
      gemm_nt(a, bt, c_nt);
      gemm_rows(a, b, c_rows, subset);
      EXPECT_EQ(max_abs_diff(c_nn, ref_nn), 0.0f)
          << isa_name(isa) << " nn " << s.m << "x" << s.k << "x" << s.n;
      EXPECT_EQ(max_abs_diff(c_tn, ref_tn), 0.0f) << isa_name(isa) << " tn";
      EXPECT_EQ(max_abs_diff(c_nt, ref_nt), 0.0f) << isa_name(isa) << " nt";
      EXPECT_EQ(max_abs_diff(c_rows, ref_rows), 0.0f)
          << isa_name(isa) << " rows";
    }
  }
}

TEST(SimdGemm, AxpyKernelHandlesRaggedTails) {
  for (Isa isa : simd::supported_isas()) {
    IsaGuard guard(isa);
    const auto axpy = simd::kernels().axpy;
    for (std::size_t n : {0ul, 1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 9ul, 15ul,
                          16ul, 17ul, 31ul, 100ul}) {
      Rng rng(n + 1);
      std::vector<float> b(n), c(n), ref(n);
      for (std::size_t i = 0; i < n; ++i) {
        b[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
        ref[i] = c[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
      const float a = 0.37f;
      if (n > 0) axpy(a, b.data(), c.data(), n);
      for (std::size_t i = 0; i < n; ++i) ref[i] += a * b[i];
      EXPECT_EQ(c, ref) << isa_name(isa) << " n=" << n;
    }
  }
}

// ---- Aggregation & error-feedback kernels ---------------------------------

/// The new kernel-matrix entries (scale_row, ef_fold, ef_residual,
/// gather_axpy) must be bit-identical to the scalar reference on every
/// host-supported ISA at ragged sizes straddling all vector widths.
TEST(SimdAggregate, NewKernelsBitIdenticalAcrossIsasOnRaggedTails) {
  const std::size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33,
                               63, 64, 65, 100, 130};
  for (Isa isa : simd::supported_isas()) {
    IsaGuard guard(isa);
    const auto& kt = simd::kernels();
    for (std::size_t n : sizes) {
      Rng rng(n + 99);
      std::vector<float> a(n), b(n), dst(n), ref(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
        b[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
      }
      const float s = 0.731f;
      if (n > 0) {
        kt.scale_row(s, a.data(), dst.data(), n);
        for (std::size_t i = 0; i < n; ++i) ref[i] = s * a[i];
        EXPECT_EQ(dst, ref) << isa_name(isa) << " scale_row n=" << n;

        kt.ef_fold(a.data(), b.data(), dst.data(), n);
        for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] + b[i];
        EXPECT_EQ(dst, ref) << isa_name(isa) << " ef_fold n=" << n;

        // In-place fold (dst aliases a), the trainer's residual-add form.
        std::vector<float> inplace = a;
        kt.ef_fold(inplace.data(), b.data(), inplace.data(), n);
        EXPECT_EQ(inplace, ref) << isa_name(isa) << " ef_fold alias n=" << n;

        kt.ef_residual(a.data(), b.data(), dst.data(), n);
        for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] - b[i];
        EXPECT_EQ(dst, ref) << isa_name(isa) << " ef_residual n=" << n;
      }
    }
  }
}

TEST(SimdAggregate, GatherAxpyMatchesScalarKLoopAtEveryIsa) {
  // A small row pool gathered in a fixed k-ascending order: every dst
  // element must see the identical unfused multiply-add chain on every ISA.
  const std::size_t kRows = 13, kStride = 37;
  Rng rng(7);
  std::vector<float> base(kRows * kStride);
  for (float& v : base) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::size_t n : {1ul, 3ul, 8ul, 16ul, 17ul, 37ul}) {
    for (std::size_t count : {0ul, 1ul, 2ul, 5ul, 13ul}) {
      std::vector<std::uint32_t> idx(count);
      std::vector<float> coeffs(count);
      for (std::size_t k = 0; k < count; ++k) {
        idx[k] = static_cast<std::uint32_t>((k * 5 + 3) % kRows);
        coeffs[k] = static_cast<float>(rng.uniform(0.1, 1.5));
      }
      std::vector<float> ref(n, 0.25f);
      {
        IsaGuard guard(Isa::kScalar);
        simd::kernels().gather_axpy(base.data(), kStride, idx.data(),
                                    coeffs.data(), count, ref.data(), n);
      }
      for (Isa isa : vector_isas()) {
        IsaGuard guard(isa);
        std::vector<float> dst(n, 0.25f);
        simd::kernels().gather_axpy(base.data(), kStride, idx.data(),
                                    coeffs.data(), count, dst.data(), n);
        EXPECT_EQ(dst, ref)
            << isa_name(isa) << " n=" << n << " count=" << count;
      }
    }
  }
}

// ---- Full training runs across ISAs ---------------------------------------

/// Scoped global-pool override; restores the previous size on exit.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

class SimdTrainerEquality : public ::testing::TestWithParam<Method> {};

TEST_P(SimdTrainerEquality, FullRunBitIdenticalAcrossIsasAndThreads) {
  const Method method = GetParam();
  DatasetSpec spec;
  spec.name = "simd_tiny";
  spec.num_nodes = 220;
  spec.avg_degree = 7.0;
  spec.feature_dim = 11;
  spec.num_classes = 4;
  spec.intra_prob = 0.8;
  Rng rng(271);
  const Dataset ds = make_dataset(spec, rng);
  Rng part_rng(31);
  const auto part =
      make_partitioner("multilevel")->partition(ds.graph, 4, part_rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  auto run = [&](Isa isa, int threads) {
    IsaGuard isa_guard(isa);
    ThreadCountGuard thread_guard(threads);
    const ClusterSpec cluster = ClusterSpec::machines(2, 2);
    ModelConfig mc;
    mc.aggregator = Aggregator::kGcn;
    mc.in_dim = ds.spec.feature_dim;
    mc.hidden_dim = 12;
    mc.out_dim = ds.spec.num_classes;
    mc.num_layers = 2;
    mc.dropout = 0.4f;
    TrainOptions opts;
    opts.method = method;
    opts.epochs = 4;
    opts.seed = 7;
    opts.reassign_period = 2;
    opts.eval_every_epoch = true;
    DistTrainer trainer(ds, dist, cluster, mc, opts);
    return trainer.run();
  };

  const RunResult ref = run(Isa::kScalar, 1);
  ASSERT_EQ(ref.epochs.size(), 4u);
  std::vector<std::pair<Isa, int>> configs;
  for (Isa isa : vector_isas()) configs.emplace_back(isa, 1);
  configs.emplace_back(simd::detected_isa(), 4);  // ISA x threads cross-check
  for (const auto& [isa, threads] : configs) {
    const RunResult got = run(isa, threads);
    ASSERT_EQ(got.epochs.size(), ref.epochs.size());
    for (std::size_t e = 0; e < ref.epochs.size(); ++e) {
      EXPECT_EQ(got.epochs[e].train_loss, ref.epochs[e].train_loss)
          << isa_name(isa) << " t=" << threads << " epoch " << e;
      EXPECT_EQ(got.epochs[e].val_acc, ref.epochs[e].val_acc)
          << isa_name(isa) << " t=" << threads << " epoch " << e;
    }
    EXPECT_EQ(got.total_comm_bytes, ref.total_comm_bytes)
        << isa_name(isa) << " t=" << threads;
    EXPECT_EQ(got.final_test_acc, ref.final_test_acc)
        << isa_name(isa) << " t=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, SimdTrainerEquality,
                         ::testing::Values(Method::kVanilla, Method::kAdaQP,
                                           Method::kAdaQPUniform,
                                           Method::kPipeGCN,
                                           Method::kSancus));

}  // namespace
}  // namespace adaqp
