#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md): configure, build, and run the full test suite.
#
#   scripts/check.sh             tier-1: configure + build + full ctest
#   scripts/check.sh --analysis  determinism analysis pass (docs/ANALYSIS.md):
#                                project lint + the full suite with the
#                                stage-graph race checker enabled
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"
case "$mode" in
  "") ;;
  --analysis) ;;
  *) echo "usage: $0 [--analysis]" >&2; exit 2 ;;
esac

if [[ "$mode" == "--analysis" ]]; then
  scripts/lint.sh
fi

cmake -B build -S . && cmake --build build -j

cd build
if [[ "$mode" == "--analysis" ]]; then
  ADAQP_RACECHECK=1 ctest --output-on-failure -j
  echo "analysis: lint clean, racecheck-enabled suite green"
else
  ctest --output-on-failure -j
fi
