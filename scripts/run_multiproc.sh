#!/usr/bin/env bash
# Multi-process TCP smoke (docs/TRANSPORT.md): launch N ranks of
# examples/multiproc_training over the real TCP backend and assert that
# every rank's stdout is byte-identical to a single-process loopback
# baseline — final loss/accuracy bit patterns and the transport delivery
# digest included.
#
# Usage: run_multiproc.sh <multiproc_training-binary> <nprocs> <base_port>
# Exit codes: 0 pass, 77 skipped (ADAQP_MULTIPROC=0 or missing binary),
# 1 divergence or rank failure.
set -u

BIN="${1:?usage: run_multiproc.sh <binary> <nprocs> <base_port>}"
NPROCS="${2:?nprocs}"
BASE_PORT="${3:?base_port}"

# Sanitizer/constrained legs opt out with ADAQP_MULTIPROC=0; ctest maps 77
# to "skipped" via SKIP_RETURN_CODE.
if [ "${ADAQP_MULTIPROC:-1}" = "0" ]; then
  echo "[multiproc] skipped (ADAQP_MULTIPROC=0)"
  exit 77
fi
if [ ! -x "$BIN" ]; then
  echo "[multiproc] skipped (binary not found: $BIN)"
  exit 77
fi

TMPDIR_RUN="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_RUN"' EXIT

echo "[multiproc] baseline: single-process loopback"
if ! ADAQP_TRANSPORT=loopback "$BIN" >"$TMPDIR_RUN/baseline.out" \
    2>"$TMPDIR_RUN/baseline.err"; then
  echo "[multiproc] FAIL: loopback baseline crashed"
  cat "$TMPDIR_RUN/baseline.err"
  exit 1
fi

echo "[multiproc] launching $NPROCS tcp ranks on ports $BASE_PORT..$((BASE_PORT + NPROCS - 1))"
PIDS=()
for ((r = 0; r < NPROCS; r++)); do
  ADAQP_TRANSPORT=tcp \
  ADAQP_TP_RANK="$r" \
  ADAQP_TP_NPROCS="$NPROCS" \
  ADAQP_TP_BASE_PORT="$BASE_PORT" \
  "$BIN" >"$TMPDIR_RUN/rank$r.out" 2>"$TMPDIR_RUN/rank$r.err" &
  PIDS+=($!)
done

STATUS=0
for ((r = 0; r < NPROCS; r++)); do
  if ! wait "${PIDS[$r]}"; then
    echo "[multiproc] FAIL: rank $r exited non-zero"
    sed "s/^/[rank$r] /" "$TMPDIR_RUN/rank$r.err"
    STATUS=1
  fi
done
[ "$STATUS" -ne 0 ] && exit 1

for ((r = 0; r < NPROCS; r++)); do
  if ! diff -u "$TMPDIR_RUN/baseline.out" "$TMPDIR_RUN/rank$r.out" \
      >"$TMPDIR_RUN/rank$r.diff"; then
    echo "[multiproc] FAIL: rank $r diverged from loopback baseline"
    cat "$TMPDIR_RUN/rank$r.diff"
    STATUS=1
  fi
done
[ "$STATUS" -ne 0 ] && exit 1

echo "[multiproc] PASS: $NPROCS tcp ranks bit-identical to loopback baseline"
sed 's/^/[result] /' "$TMPDIR_RUN/baseline.out"
exit 0
