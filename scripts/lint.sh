#!/usr/bin/env bash
# Build and run the project lint (tools/lint/lint.cpp) against the repo.
# Dependency-free: needs only a C++20 compiler. Exits non-zero on any
# violation; see docs/ANALYSIS.md for the rule list and suppression syntax.
set -euo pipefail
cd "$(dirname "$0")/.."

CXX="${CXX:-c++}"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

"$CXX" -std=c++20 -O1 -Wall -Wextra tools/lint/lint.cpp -o "$out/adaqp_lint"
"$out/adaqp_lint" "$PWD"
