#!/usr/bin/env bash
# Perf trajectory tracker: runs bench_table4_main and bench_table7_scalability
# and emits machine-readable BENCH_runtime.json — per-run wall seconds and
# thread count plus the per-method throughput (epochs/s) rows parsed from the
# benches' CSV output. bench_table7_scalability is swept over THREAD_COUNTS
# so the multi-thread speedup of the runtime is recorded from this PR on.
#
# Env knobs:
#   BUILD_DIR          build directory (default: build)
#   OUT                output JSON path (default: BENCH_runtime.json)
#   THREAD_COUNTS      sweep for table7 (default: "1 4 8")
#   BENCH_TABLE4_FULL  set to 1 for the full table4 sweep (default: --quick)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_runtime.json}
THREAD_COUNTS=${THREAD_COUNTS:-"1 4 8"}
TABLE4_ARGS=()
[[ "${BENCH_TABLE4_FULL:-0}" == "1" ]] || TABLE4_ARGS+=("--quick")

if [[ ! -x "$BUILD_DIR/bench_table4_main" ||
      ! -x "$BUILD_DIR/bench_table7_scalability" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j \
    --target bench_table4_main bench_table7_scalability >/dev/null
fi

mkdir -p bench/out

# Seconds (fractional) since epoch.
now() { date +%s.%N; }

# csv_rows <csv> <dataset_col> <method_col> <throughput_col>
# Emits comma-joined JSON objects {"dataset","method","epochs_per_s"}.
csv_rows() {
  awk -F',' -v dc="$2" -v mc="$3" -v tc="$4" 'NR > 1 && NF >= tc {
    printf "%s{\"dataset\":\"%s\",\"method\":\"%s\",\"epochs_per_s\":%s}",
           sep, $dc, $mc, $tc; sep=","
  }' "$1"
}

entries=""
append_entry() { entries="${entries:+$entries,}$1"; }

# run_bench <name> <threads> <csv> <dataset_col> <method_col> <tp_col> [args...]
# Appends a JSON entry and leaves the wall seconds in $wall.
run_bench() {
  local name=$1 threads=$2 csv=$3 dc=$4 mc=$5 tc=$6
  shift 6
  echo "[bench.sh] $name (ADAQP_THREADS=$threads) ..." >&2
  local t0 t1
  t0=$(now)
  ADAQP_THREADS=$threads "./$BUILD_DIR/$name" "$@" >/dev/null 2>&1
  t1=$(now)
  wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
  append_entry "{\"bench\":\"$name\",\"threads\":$threads,\"wall_seconds\":$wall,\"results\":[$(csv_rows "bench/out/$csv" "$dc" "$mc" "$tc")]}"
}

declare -A table7_wall
for t in $THREAD_COUNTS; do
  run_bench bench_table7_scalability "$t" table7_scalability.csv 1 2 3
  table7_wall[$t]=$wall
done

run_bench bench_table4_main "$(nproc)" table4_main.csv 1 4 6 \
  "${TABLE4_ARGS[@]}"

speedups=""
base=${table7_wall[1]:-}
if [[ -n "$base" ]]; then
  for t in $THREAD_COUNTS; do
    [[ "$t" == "1" ]] && continue
    s=$(awk -v a="$base" -v b="${table7_wall[$t]}" \
        'BEGIN { printf "%.2f", a / b }')
    speedups="${speedups:+$speedups,}\"x$t\":$s"
    echo "[bench.sh] table7 speedup at $t threads: ${s}x" >&2
  done
fi

cat > "$OUT" <<EOF
{
  "schema": "adaqp-bench-v1",
  "generated_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host_hardware_threads": $(nproc),
  "table7_wall_speedup_vs_1_thread": {${speedups}},
  "entries": [${entries}]
}
EOF
echo "[bench.sh] wrote $OUT" >&2
