#!/usr/bin/env bash
# Perf trajectory tracker: runs bench_table4_main, bench_table7_scalability
# and bench_pipeline_overlap, and *appends* one run record to the
# machine-readable BENCH_runtime.json (schema adaqp-bench-v2: {"runs": [...]},
# so the perf trajectory across commits/hosts accumulates instead of being
# overwritten). Every run records the host's hardware thread count — the
# ROADMAP "re-record on multi-core" check is now just reading the file.
# bench_table7_scalability is swept over THREAD_COUNTS so the multi-thread
# speedup of the runtime is recorded; bench_pipeline_overlap records the
# async pipeline's measured exchange||central overlap efficiency. The run
# record also carries the zero-allocation steady-state gate result
# (bench_alloc_steady_state — the script aborts on a regression) and the
# aggregation/error-feedback kernel speedups vs scalar per SIMD ISA
# (bench_aggregate_kernels).
#
# Env knobs:
#   BUILD_DIR          build directory (default: build)
#   OUT                output JSON path (default: BENCH_runtime.json)
#   THREAD_COUNTS      sweep for table7 (default: "1 4 8")
#   BENCH_TABLE4_FULL  set to 1 for the full table4 sweep (default: --quick)
#   BENCH_OVERLAP_FULL set to 1 for the full overlap bench (default: --quick)
#   PROFILE_GATE       profile_report regression gate: hard (default, abort
#                      the run past thresholds) | warn (report only)
#   PROFILE_MAX_WALL_REGRESS_PCT   gate threshold, wall growth % (default 50)
#   PROFILE_MAX_SHARE_REGRESS_PP   gate threshold, category-share growth in
#                                  percentage points (default 15)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_runtime.json}
THREAD_COUNTS=${THREAD_COUNTS:-"1 4 8"}
TABLE4_ARGS=()
[[ "${BENCH_TABLE4_FULL:-0}" == "1" ]] || TABLE4_ARGS+=("--quick")
OVERLAP_ARGS=()
[[ "${BENCH_OVERLAP_FULL:-0}" == "1" ]] || OVERLAP_ARGS+=("--quick")

if [[ ! -x "$BUILD_DIR/bench_table4_main" ||
      ! -x "$BUILD_DIR/bench_table7_scalability" ||
      ! -x "$BUILD_DIR/bench_pipeline_overlap" ||
      ! -x "$BUILD_DIR/bench_alloc_steady_state" ||
      ! -x "$BUILD_DIR/bench_aggregate_kernels" ||
      ! -x "$BUILD_DIR/metrics_schema_check" ||
      ! -x "$BUILD_DIR/profile_report" ||
      ! -x "$BUILD_DIR/isa_info" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j \
    --target bench_table4_main bench_table7_scalability \
             bench_pipeline_overlap bench_alloc_steady_state \
             bench_aggregate_kernels metrics_schema_check profile_report \
             isa_info >/dev/null
fi

# SIMD ISA the kernel registry dispatches to for this run (honors ADAQP_ISA).
SIMD_ISA=$("./$BUILD_DIR/isa_info" 2>/dev/null || echo unknown)

# Host hardware threads, stamped next to every wall/overlap/speedup entry so
# a reader (or tools/profile_report) can tell real concurrency from
# time-slicing. low_par <requested> prints the machine-readable flag.
HOST_THREADS=$(nproc)
low_par() { [[ "$HOST_THREADS" -lt "$1" ]] && echo true || echo false; }

mkdir -p bench/out

# Seconds (fractional) since epoch.
now() { date +%s.%N; }

# csv_rows <csv> <dataset_col> <method_col> <throughput_col>
# Emits comma-joined JSON objects {"dataset","method","epochs_per_s"}.
csv_rows() {
  awk -F',' -v dc="$2" -v mc="$3" -v tc="$4" 'NR > 1 && NF >= tc {
    printf "%s{\"dataset\":\"%s\",\"method\":\"%s\",\"epochs_per_s\":%s}",
           sep, $dc, $mc, $tc; sep=","
  }' "$1"
}

# metric_value <csv> <metric-name>  — pull one Metric,Value row.
metric_value() {
  awk -F',' -v m="$2" 'NR > 1 && $1 == m { print $2; exit }' "$1"
}

entries=""
append_entry() { entries="${entries:+$entries,}$1"; }

# run_bench <name> <threads> <csv> <dataset_col> <method_col> <tp_col> [args...]
# Appends a JSON entry and leaves the wall seconds in $wall.
run_bench() {
  local name=$1 threads=$2 csv=$3 dc=$4 mc=$5 tc=$6
  shift 6
  echo "[bench.sh] $name (ADAQP_THREADS=$threads) ..." >&2
  local t0 t1
  t0=$(now)
  ADAQP_THREADS=$threads "./$BUILD_DIR/$name" "$@" >/dev/null 2>&1
  t1=$(now)
  wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
  append_entry "{\"bench\":\"$name\",\"threads\":$threads,\"host_hardware_threads\":$HOST_THREADS,\"low_parallelism_host\":$(low_par "$threads"),\"wall_seconds\":$wall,\"results\":[$(csv_rows "bench/out/$csv" "$dc" "$mc" "$tc")]}"
}

declare -A table7_wall
for t in $THREAD_COUNTS; do
  run_bench bench_table7_scalability "$t" table7_scalability.csv 1 2 3
  table7_wall[$t]=$wall
done

run_bench bench_table4_main "$(nproc)" table4_main.csv 1 4 6 \
  "${TABLE4_ARGS[@]}"

# Async pipeline overlap: measured exchange||central concurrency. The run
# also exercises the ADAQP_METRICS exporter end to end: the bench's last
# training run writes an adaqp-metrics-v1 report, the schema checker gates
# it (non-zero exit aborts the script), and a condensed summary is folded
# into the run record below.
METRICS_REPORT=bench/out/metrics_report.json
echo "[bench.sh] bench_pipeline_overlap (ADAQP_THREADS=$(nproc)) ..." >&2
t0=$(now)
ADAQP_THREADS=$(nproc) ADAQP_METRICS="$METRICS_REPORT" \
  "./$BUILD_DIR/bench_pipeline_overlap" "${OVERLAP_ARGS[@]}" >/dev/null 2>&1
t1=$(now)
overlap_wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
ocsv=bench/out/pipeline_overlap.csv
append_entry "{\"bench\":\"bench_pipeline_overlap\",\"threads\":$(nproc),\"host_hardware_threads\":$HOST_THREADS,\"low_parallelism_host\":$(low_par "$(nproc)"),\"wall_seconds\":$overlap_wall,\"overlap_efficiency\":$(metric_value "$ocsv" "measured overlap efficiency"),\"sync_over_async_speedup\":$(metric_value "$ocsv" "wall speedup sync/async")}"

echo "[bench.sh] metrics_schema_check $METRICS_REPORT ..." >&2
"./$BUILD_DIR/metrics_schema_check" "$METRICS_REPORT" >&2
metrics_summary="{}"
if command -v python3 >/dev/null 2>&1; then
  metrics_summary=$(REPORT_PATH="$METRICS_REPORT" python3 - <<'PY'
import json, os
with open(os.environ["REPORT_PATH"]) as f:
    doc = json.load(f)
epochs = doc.get("epochs", [])
wire = {k: 0 for k in ("b2", "b4", "b8", "b32")}
messages = 0
fwd_eff, bwd_eff = [], []
for e in epochs:
    ex = e.get("exchange", {})
    messages += ex.get("messages", 0)
    for k, v in ex.get("wire_bytes", {}).items():
        wire[k] = wire.get(k, 0) + v
    ov = e.get("overlap", {})
    fwd_eff.append(ov.get("forward", {}).get("efficiency", 0.0))
    bwd_eff.append(ov.get("backward", {}).get("efficiency", 0.0))
mean = lambda xs: round(sum(xs) / len(xs), 4) if xs else 0.0
summary = {
    "schema": doc.get("schema"),
    "method": doc.get("method"),
    "dataset": doc.get("dataset"),
    "epochs_captured": doc.get("epochs_captured"),
    "hardware_threads": doc.get("hardware_threads"),
    "low_parallelism_host": doc.get("low_parallelism_host"),
    "messages": messages,
    "wire_bytes": wire,
    "mean_fwd_overlap_efficiency": mean(fwd_eff),
    "mean_bwd_overlap_efficiency": mean(bwd_eff),
}
# Condensed adaqp-profile-v1 summary: warm-epoch means (matching what
# tools/profile_report computes), so the BENCH_runtime.json history doubles
# as the regression-gate baseline.
prof_epochs = doc.get("profile", {}).get("epochs", [])
warm = [e for e in prof_epochs if e.get("epoch", 0) > 0] or prof_epochs
if warm:
    n = len(warm)
    pmean = lambda key: round(sum(e.get(key, 0.0) for e in warm) / n, 9)
    attribution = {}
    for e in warm:
        for k, v in e.get("attribution", {}).items():
            attribution[k] = attribution.get(k, 0.0) + v
    summary["profile"] = {
        "epochs": n,
        "mean_attributed_wall_s": pmean("attributed_wall_s"),
        "mean_critical_path_s": pmean("critical_path_s"),
        "mean_zero_wire_s": round(
            sum(e.get("what_if", {}).get("zero_wire_s", 0.0)
                for e in warm) / n, 9),
        "mean_infinite_thread_s": round(
            sum(e.get("what_if", {}).get("infinite_thread_s", 0.0)
                for e in warm) / n, 9),
        "attribution_s": {k: round(v / n, 9) for k, v in attribution.items()},
    }
print(json.dumps(summary))
PY
)
fi
append_entry "{\"bench\":\"metrics_report\",\"report\":\"$METRICS_REPORT\",\"schema_valid\":true,\"summary\":$metrics_summary}"

# Perf-regression gate (docs/OBSERVABILITY.md): compare this run's profile
# against the newest profiled run already in $OUT. Runs before the new
# record is appended, so the baseline is genuinely the previous trajectory
# point. PROFILE_GATE=warn downgrades a breach to a report (CI does this on
# 1-core runners, where attribution shares are dominated by time-slicing).
if [[ -f "$OUT" ]]; then
  echo "[bench.sh] profile_report gate ($METRICS_REPORT vs $OUT) ..." >&2
  gate_args=(--max-wall-regress-pct "${PROFILE_MAX_WALL_REGRESS_PCT:-50}"
             --max-share-regress-pp "${PROFILE_MAX_SHARE_REGRESS_PP:-15}")
  [[ "${PROFILE_GATE:-hard}" == "warn" ]] && gate_args+=(--warn-only)
  "./$BUILD_DIR/profile_report" "$METRICS_REPORT" "$OUT" "${gate_args[@]}" >&2
else
  echo "[bench.sh] profile_report (no $OUT history yet — summary only) ..." >&2
  "./$BUILD_DIR/profile_report" "$METRICS_REPORT" >&2
fi

# Zero-allocation steady state (docs/ARCHITECTURE.md, "Memory subsystem"):
# every method x async mode x thread count must finish its warm epochs with
# zero heap allocations. The bench exits 1 on a regression, which aborts
# this script (set -e) — a run record is only appended for a clean gate.
echo "[bench.sh] bench_alloc_steady_state (threads: $THREAD_COUNTS) ..." >&2
t0=$(now)
"./$BUILD_DIR/bench_alloc_steady_state" --threads "$THREAD_COUNTS" >/dev/null
t1=$(now)
alloc_wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
acsv=bench/out/alloc_steady_state.csv
alloc_cases=$(awk -F',' 'NR > 1 { n++ } END { print n + 0 }' "$acsv")
alloc_warm=$(awk -F',' 'NR > 1 { s += $5 } END { print s + 0 }' "$acsv")
append_entry "{\"bench\":\"bench_alloc_steady_state\",\"wall_seconds\":$alloc_wall,\"cases\":$alloc_cases,\"warm_allocs_total\":$alloc_warm,\"steady_state_zero_alloc\":true}"

# Kernel matrix: aggregation / error-feedback kernel throughput per ISA at
# cache-resident sizes, recorded as speedup vs the scalar reference (the
# >=2x-on-AVX2 target of the kernel-matrix roadmap item).
echo "[bench.sh] bench_aggregate_kernels (ISA sweep) ..." >&2
"./$BUILD_DIR/bench_aggregate_kernels" --benchmark_filter='n1024|dim256' \
  --benchmark_min_time=0.5 \
  --benchmark_out=bench/out/aggregate_kernels.json \
  --benchmark_out_format=json >/dev/null 2>&1
kernel_speedups="{}"
if command -v python3 >/dev/null 2>&1; then
  kernel_speedups=$(python3 - <<'PY'
import collections, json
with open("bench/out/aggregate_kernels.json") as f:
    doc = json.load(f)
times = {}  # (kernel, case, isa) -> cpu_time
for b in doc.get("benchmarks", []):
    # BM_ScaleRow/avx2/n1024 or BM_GatherAxpy/avx2/deg32/dim256
    kernel, isa, *case = b["name"].split("/")
    times[(kernel[3:], "_".join(case), isa)] = b["cpu_time"]
out = collections.defaultdict(dict)
for (kernel, case, isa), t in sorted(times.items()):
    ref = times.get((kernel, case, "scalar"))
    if isa != "scalar" and ref:
        out[isa][f"{kernel}_{case}"] = round(ref / t, 2)
print(json.dumps(out))
PY
)
fi
append_entry "{\"bench\":\"bench_aggregate_kernels\",\"speedup_vs_scalar\":$kernel_speedups}"

speedups=""
base=${table7_wall[1]:-}
if [[ -n "$base" ]]; then
  for t in $THREAD_COUNTS; do
    [[ "$t" == "1" ]] && continue
    s=$(awk -v a="$base" -v b="${table7_wall[$t]}" \
        'BEGIN { printf "%.2f", a / b }')
    speedups="${speedups:+$speedups,}\"x$t\":$s"
    echo "[bench.sh] table7 speedup at $t threads: ${s}x" >&2
  done
fi

# One run record; appended to OUT (never overwriting earlier runs).
run_record=$(cat <<EOF
{
 "generated_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
 "host_hardware_threads": $(nproc),
 "simd_isa": "$SIMD_ISA",
 "git_rev": "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)",
 "table7_wall_speedup_vs_1_thread": {${speedups}},
 "entries": [${entries}]
}
EOF
)

if command -v python3 >/dev/null 2>&1; then
  RUN_RECORD="$run_record" OUT_PATH="$OUT" python3 - <<'PY'
import json, os

run = json.loads(os.environ["RUN_RECORD"])
out = os.environ["OUT_PATH"]
doc = None
if os.path.exists(out):
    try:
        with open(out) as f:
            doc = json.load(f)
    except Exception:
        doc = None
if not isinstance(doc, dict) or doc.get("schema") != "adaqp-bench-v2":
    runs = []
    if isinstance(doc, dict) and doc.get("schema") == "adaqp-bench-v1":
        runs.append(doc)  # migrate the old single-run format as run #0
    doc = {"schema": "adaqp-bench-v2", "runs": runs}
doc["runs"].append(run)
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"[bench.sh] appended run #{len(doc['runs']) - 1} to {out}")
PY
else
  # No python3: still emit valid v2 JSON, but only this run survives.
  printf '{"schema":"adaqp-bench-v2","runs":[%s]}\n' "$run_record" > "$OUT"
  echo "[bench.sh] python3 missing — wrote $OUT with this run only" >&2
fi
