#!/usr/bin/env bash
# Docs link checker: fails when a *relative* markdown link in README.md or
# docs/ points at a path that does not exist in the working tree. External
# (http/https/mailto) links and pure #anchors are skipped; anchors on
# relative links are stripped before the existence check. Run from anywhere;
# CI runs it as the `docs` job.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
checked=0
while IFS= read -r -d '' f; do
  dir=$(dirname "$f")
  # Markdown inline links: capture the (target) part of [text](target).
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    checked=$((checked + 1))
    if [[ ! -e "$dir/$path" ]]; then
      echo "BROKEN LINK: $f -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done < <(find docs README.md -name '*.md' -print0)

if [[ "$fail" -ne 0 ]]; then
  echo "docs link check FAILED" >&2
  exit 1
fi
echo "docs link check OK ($checked relative links verified)"
