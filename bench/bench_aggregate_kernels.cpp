// Microbenchmarks of the aggregation / error-feedback kernel-matrix entries
// (google-benchmark): scale_row (aggregation self-term), gather_axpy (the
// CSR-band neighbor gather behind aggregate_forward and its adjoint), and
// the ef_fold / ef_residual pair the error-feedback state machine runs per
// boundary message. Swept over every SIMD ISA the host supports, selected
// per benchmark with an IsaGuard exactly as ADAQP_ISA would. Tracks the
// kernel-matrix speedup target: >= 2x scalar throughput on AVX2-capable
// hardware (recorded into BENCH_runtime.json by scripts/bench.sh).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "simd/isa.h"
#include "simd/kernels.h"

namespace {

using namespace adaqp;
using simd::Isa;
using simd::IsaGuard;

std::vector<float> make_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

void BM_ScaleRow(benchmark::State& state, Isa isa, std::size_t n) {
  IsaGuard guard(isa);
  const auto kernel = simd::kernels().scale_row;
  const auto src = make_values(n, 21);
  std::vector<float> dst(n);
  for (auto _ : state) {
    kernel(0.731f, src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          sizeof(float));
}

void BM_EfFold(benchmark::State& state, Isa isa, std::size_t n) {
  IsaGuard guard(isa);
  const auto kernel = simd::kernels().ef_fold;
  const auto a = make_values(n, 22);
  const auto b = make_values(n, 23);
  std::vector<float> dst(n);
  for (auto _ : state) {
    kernel(a.data(), b.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          sizeof(float));
}

void BM_EfResidual(benchmark::State& state, Isa isa, std::size_t n) {
  IsaGuard guard(isa);
  const auto kernel = simd::kernels().ef_residual;
  const auto a = make_values(n, 24);
  const auto b = make_values(n, 25);
  std::vector<float> dst(n);
  for (auto _ : state) {
    kernel(a.data(), b.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          sizeof(float));
}

void BM_GatherAxpy(benchmark::State& state, Isa isa, std::size_t degree,
                   std::size_t dim) {
  IsaGuard guard(isa);
  const auto kernel = simd::kernels().gather_axpy;
  // A realistic aggregation band: `degree` neighbor rows gathered from a
  // feature pool into one output row of `dim` channels.
  const std::size_t pool = 512;
  const auto base = make_values(pool * dim, 26);
  Rng rng(27);
  std::vector<std::uint32_t> idx(degree);
  std::vector<float> coeffs(degree);
  for (std::size_t k = 0; k < degree; ++k) {
    idx[k] = static_cast<std::uint32_t>(rng.uniform_int(pool));
    coeffs[k] = static_cast<float>(rng.uniform(0.1, 1.0));
  }
  std::vector<float> dst(dim, 0.0f);
  for (auto _ : state) {
    kernel(base.data(), dim, idx.data(), coeffs.data(), degree, dst.data(),
           dim);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          degree * dim * sizeof(float));
}

}  // namespace

// Registered (not macro-declared) so every case can sweep the host's
// supported ISA list discovered at runtime. Benchmark names carry the ISA
// so `--benchmark_filter=avx2` or `=scalar` isolates one variant.
int main(int argc, char** argv) {
  for (Isa isa : adaqp::simd::supported_isas()) {
    const std::string tag = adaqp::simd::isa_name(isa);
    for (std::size_t n : {64ul, 1024ul, 16384ul}) {
      const std::string sz = "/n" + std::to_string(n);
      benchmark::RegisterBenchmark(("BM_ScaleRow/" + tag + sz).c_str(),
                                   BM_ScaleRow, isa, n);
      benchmark::RegisterBenchmark(("BM_EfFold/" + tag + sz).c_str(),
                                   BM_EfFold, isa, n);
      benchmark::RegisterBenchmark(("BM_EfResidual/" + tag + sz).c_str(),
                                   BM_EfResidual, isa, n);
    }
    for (std::size_t degree : {8ul, 32ul})
      for (std::size_t dim : {64ul, 256ul})
        benchmark::RegisterBenchmark(
            ("BM_GatherAxpy/" + tag + "/deg" + std::to_string(degree) +
             "/dim" + std::to_string(dim))
                .c_str(),
            BM_GatherAxpy, isa, degree, dim);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
