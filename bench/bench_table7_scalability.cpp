// Reproduces paper Table 7: scalability to a 6-machine x 4-device cluster
// (24 devices), GraphSAGE on the products/amazon analogues. Paper shape:
// AdaQP keeps a substantial throughput advantage (1.79x / 2.34x) at scale.
#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

int main() {
  Table table({"Dataset", "Method", "Throughput (epoch/s)", "Speedup"});
  for (const char* name : {"products_sim", "amazon_sim"}) {
    const Dataset ds = make_dataset(name, 42);
    const RunResult vanilla = run_method(ds, "6M-4D", Aggregator::kSageMean,
                                         Method::kVanilla, 7,
                                         /*eval_every_epoch=*/false,
                                         /*epochs=*/15);
    const RunResult adaqp = run_method(ds, "6M-4D", Aggregator::kSageMean,
                                       Method::kAdaQP, 7,
                                       /*eval_every_epoch=*/false,
                                       /*epochs=*/15);
    table.add_row({name, vanilla.method, Table::fmt(vanilla.throughput, 2),
                   "1.00x"});
    table.add_row({name, adaqp.method, Table::fmt(adaqp.throughput, 2),
                   Table::fmt(adaqp.throughput / vanilla.throughput, 2) + "x"});
    std::fprintf(stderr, "[table7] %s done\n", name);
  }
  emit(table, "Table 7: training throughput on the 6M-4D partition",
       "table7_scalability.csv");
  std::printf("\nPaper reference: AdaQP 1.79x (ogbn-products) and 2.34x\n"
              "(AmazonProducts) over Vanilla at 24 devices.\n");
  return 0;
}
