// Reproduces paper Table 1: communication cost (fraction of epoch time spent
// communicating) and remote-neighbor ratio in Vanilla distributed full-graph
// training, per dataset and partition setting.
//
// Paper shape to match: communication dominates (66-79%) and grows with the
// number of partitions, as does the remote-neighbor ratio.
#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

int main() {
  struct Row {
    const char* dataset;
    const char* setting;
  };
  const Row rows[] = {
      {"reddit_sim", "2M-1D"},   {"reddit_sim", "2M-2D"},
      {"products_sim", "2M-2D"}, {"products_sim", "2M-4D"},
      {"amazon_sim", "2M-2D"},   {"amazon_sim", "2M-4D"},
  };

  Table table({"Dataset", "Partition Setting", "Communication Cost",
               "Remote Neighbor Ratio"});
  for (const auto& row : rows) {
    const Dataset ds = make_dataset(row.dataset, 42);
    const ClusterSpec cluster = cluster_for(row.setting);
    Rng rng(7919 + 17);
    const auto part =
        make_partitioner("multilevel")
            ->partition(ds.graph, cluster.num_devices(), rng);
    const DistGraph dist = build_dist_graph(ds.graph, part);

    TrainOptions opts;
    opts.method = Method::kVanilla;
    opts.epochs = 8;
    opts.eval_every_epoch = false;
    ModelConfig mc;
    mc.aggregator = Aggregator::kGcn;
    mc.in_dim = ds.spec.feature_dim;
    mc.hidden_dim = 64;
    mc.out_dim = ds.num_classes();
    DistTrainer trainer(ds, dist, cluster, mc, opts);
    const RunResult r = trainer.run();

    table.add_row({row.dataset, row.setting,
                   Table::pct(r.avg_breakdown.comm / r.avg_epoch_seconds),
                   Table::pct(dist.remote_neighbor_ratio())});
  }
  emit(table, "Table 1: communication overhead in Vanilla",
       "table1_comm_cost.csv");
  std::printf("\nPaper reference: comm cost 66.78%%-78.22%%, rising with the\n"
              "partition count; remote-neighbor ratio rises alongside.\n");
  return 0;
}
