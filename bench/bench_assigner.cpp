// Microbenchmarks of the bi-objective bit-width solver (GUROBI substitute):
// solve time versus round size, supporting the paper's claim that the
// assignment overhead is a small share of wall-clock time (§5.4), plus the
// end-to-end plan construction over a realistic distributed graph.
#include <benchmark/benchmark.h>

#include "assign/bit_assigner.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace {

using namespace adaqp;

RoundProblem make_problem(int pairs, int groups_per_pair) {
  Rng rng(99);
  RoundProblem problem;
  for (int p = 0; p < pairs; ++p) {
    RoundProblem::Pair pair;
    pair.src = p;
    pair.dst = (p + 1) % pairs;
    pair.theta = rng.uniform(5e-11, 5e-10);
    pair.gamma = rng.uniform(1e-6, 1e-5);
    for (int g = 0; g < groups_per_pair; ++g) {
      MessageGroup group;
      group.beta_sum = rng.uniform(0.001, 10.0);
      group.dim_sum = 64 * (1 + rng.uniform_int(16));
      pair.groups.push_back(group);
    }
    problem.pairs.push_back(std::move(pair));
  }
  return problem;
}

void BM_SolveRound(benchmark::State& state) {
  const auto problem = make_problem(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto sol = solve_round(problem, 0.5);
    benchmark::DoNotOptimize(sol.bits.data());
  }
}
BENCHMARK(BM_SolveRound)
    ->Args({4, 8})->Args({4, 64})->Args({8, 64})->Args({24, 64})
    ->Args({24, 256});

void BM_AssignFullPlan(benchmark::State& state) {
  Rng rng(7);
  DcSbmParams params;
  params.num_nodes = 2000;
  params.num_blocks = 8;
  params.avg_degree = 12.0;
  params.intra_prob = 0.8;
  DcSbm sbm = dc_sbm(params, rng);
  const int devices = static_cast<int>(state.range(0));
  const auto part = MultilevelPartitioner().partition(sbm.graph, devices, rng);
  const DistGraph dist = build_dist_graph(sbm.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, devices / 2);
  std::vector<std::vector<float>> ranges(devices);
  for (int d = 0; d < devices; ++d)
    ranges[d].assign(dist.devices[d].num_local(), 1.5f);
  AssignerOptions opts;
  opts.group_size = 64;
  for (auto _ : state) {
    auto plan = assign_bit_widths(dist, cluster, Aggregator::kGcn,
                                  Direction::kForward, ranges, 64, opts);
    benchmark::DoNotOptimize(plan.bits.data());
  }
}
BENCHMARK(BM_AssignFullPlan)->Arg(4)->Arg(8);

void BM_MessageBetas(benchmark::State& state) {
  Rng rng(8);
  DcSbm sbm = dc_sbm({.num_nodes = 2000,
                      .num_blocks = 8,
                      .avg_degree = 12.0,
                      .intra_prob = 0.8,
                      .degree_exponent = 2.5,
                      .max_degree_cap = 0},
                     rng);
  const auto part = MultilevelPartitioner().partition(sbm.graph, 4, rng);
  const DistGraph dist = build_dist_graph(sbm.graph, part);
  std::vector<std::vector<float>> ranges(4);
  for (int d = 0; d < 4; ++d)
    ranges[d].assign(dist.devices[d].num_local(), 1.0f);
  for (auto _ : state) {
    auto betas = message_betas(dist, Aggregator::kGcn, Direction::kForward,
                               ranges, 64);
    benchmark::DoNotOptimize(betas.data());
  }
}
BENCHMARK(BM_MessageBetas);

}  // namespace

BENCHMARK_MAIN();
