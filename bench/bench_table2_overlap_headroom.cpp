// Reproduces paper Table 2: per-device central-graph computation time vs
// communication time of 2-bit-quantized marginal messages (ogbn-products
// analogue, 8 partitions). The paper's claim: even at the lowest bit-width,
// communication time still exceeds central computation time, so the central
// graph's compute can always hide inside the communication window.
//
// Part 2 extends the static headroom table with the *realized* overlap of
// the full-duplex backward pass: it runs AdaQP under the trace recorder and
// measures, from actual stage timestamps, how much of the halo-gradient
// exchange (bwd-enc / bwd-acc / bwd-zero stages) executed concurrently with
// the central-row backward adjoints (L*b/central stages). On a
// 1-hardware-thread host the scheduler degrades to inline execution and the
// measured overlap is ~0 by construction; run with ADAQP_THREADS > 1 on a
// multi-core host for the real number. The Chrome trace is written to
// bench/out/backward_overlap_trace.json (or argv[1]) for inspection.
//
// Usage: bench_table2_overlap_headroom [--quick] [trace.json path]
//   --quick skips the part-1 products_sim headroom sweep and shrinks the
//   part-2 traced run — the configuration CI uses, so its exit status
//   reflects only the backward-overlap measurement it is there to record.
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/timing.h"
#include "pipeline/trace.h"
#include "quant/message_codec.h"
#include "runtime/thread_pool.h"

using namespace adaqp;
using namespace adaqp::bench;

namespace {

/// Part 2: runs a traced AdaQP training, prints/CSVs the backward
/// exchange-vs-central busy times and their realized overlap, and writes
/// the Chrome trace to trace_path.
void measure_backward_overlap(bool quick, const std::string& trace_path) {
  DatasetSpec spec;
  spec.name = quick ? "bwd_overlap_quick" : "bwd_overlap_medium";
  spec.num_nodes = quick ? 800 : 4000;
  spec.avg_degree = 12.0;
  spec.feature_dim = 64;
  spec.num_classes = 7;
  spec.intra_prob = 0.7;
  Rng rng(4321);
  const Dataset ds = make_dataset(spec, rng);

  auto& rec = pipeline::TraceRecorder::instance();
  rec.start();
  run_method(ds, "2M-2D", Aggregator::kGcn, Method::kAdaQP, /*seed=*/1,
             /*eval_every_epoch=*/false, quick ? 3 : 6);
  rec.stop();
  if (!rec.write_json(trace_path))
    std::printf("WARNING: could not write %s\n", trace_path.c_str());

  // Classify spans: the backward wire stages vs the backward row-subset
  // adjoints (stage prefixes L<l>b/ come from DistTrainer's full-duplex
  // backward graph).
  std::vector<std::pair<double, double>> bwd_exchange_iv, bwd_central_iv,
      bwd_marginal_iv;
  for (const auto& e : rec.events()) {
    const auto iv = std::make_pair(e.ts_us, e.ts_us + e.dur_us);
    if (e.name->rfind("bwd-", 0) == 0)
      bwd_exchange_iv.push_back(iv);
    else if (e.name->find("b/central/") != std::string::npos)
      bwd_central_iv.push_back(iv);
    else if (e.name->find("b/marginal/") != std::string::npos)
      bwd_marginal_iv.push_back(iv);
  }
  const double exchange_busy = interval_union_seconds(bwd_exchange_iv);
  const double central_busy = interval_union_seconds(bwd_central_iv);
  const double marginal_busy = interval_union_seconds(bwd_marginal_iv);
  const double overlap =
      interval_intersection_seconds(bwd_exchange_iv, bwd_central_iv);
  const double denom = std::min(exchange_busy, central_busy);
  const double efficiency = denom > 0.0 ? overlap / denom : 0.0;

  Table table({"Metric", "Value"});
  table.add_row({"hardware threads (pool)", std::to_string(num_threads())});
  table.add_row({"bwd exchange stage busy (s)", Table::fmt(exchange_busy, 4)});
  table.add_row({"bwd central stage busy (s)", Table::fmt(central_busy, 4)});
  table.add_row({"bwd marginal stage busy (s)", Table::fmt(marginal_busy, 4)});
  table.add_row({"realized bwd overlap (s)", Table::fmt(overlap, 6)});
  table.add_row({"realized bwd overlap efficiency", Table::fmt(efficiency, 6)});
  emit(table,
       "Table 2 (part 2): realized backward exchange||central-adjoint "
       "concurrency",
       "table2_backward_overlap.csv");
  std::printf("(trace: %s — open in chrome://tracing; ~0 on 1-core hosts by "
              "construction)\n",
              trace_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_path = "bench/out/backward_overlap_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0)
      quick = true;
    else
      trace_path = argv[i];
  }

  if (quick) {
    measure_backward_overlap(true, trace_path);
    return 0;
  }

  const Dataset ds = make_dataset("products_sim", 42);
  const ClusterSpec cluster = cluster_for("2M-4D");  // 8 devices
  Rng rng(7919 + 17);
  const auto part = make_partitioner("multilevel")->partition(ds.graph, 8, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  const std::size_t hidden = 64;

  // 2-bit wire volume per device pair for one hidden-layer exchange.
  std::vector<std::vector<std::size_t>> bytes(8, std::vector<std::size_t>(8));
  for (int d = 0; d < 8; ++d)
    for (int p = 0; p < 8; ++p) {
      if (d == p || dist.devices[d].send_local[p].empty()) continue;
      const std::vector<int> bits(dist.devices[d].send_local[p].size(), 2);
      bytes[d][p] = encoded_wire_bytes(bits.size(), hidden, bits);
    }
  const RingAllToAll ring(8);
  std::vector<double> round_times;
  ring.total_seconds(cluster, bytes, &round_times);

  Table table({"Device", "Comm. (ms, 2-bit)", "Comp. (ms, central)"});
  bool comm_always_covers = true;
  for (int d = 0; d < 8; ++d) {
    // Per-device comm time: its transfers across the ring rounds, counting
    // the straggler synchronization it must sit through.
    double comm = 0.0;
    for (double t : round_times) comm += t;
    const double comp = layer_forward_seconds(
        cluster, dist.devices[d], dist.devices[d].central_nodes, hidden,
        hidden);
    if (comp > comm) comm_always_covers = false;
    table.add_row({"Device" + std::to_string(d), Table::fmt(comm * 1e3, 3),
                   Table::fmt(comp * 1e3, 3)});
  }
  emit(table,
       "Table 2: central computation vs 2-bit marginal communication "
       "(products_sim, 8 partitions)",
       "table2_overlap_headroom.csv");
  std::printf("\ncommunication covers central computation on every device: %s\n"
              "Paper reference: comm 0.08-0.13s vs comp 0.04-0.06s (always "
              "covered).\n",
              comm_always_covers ? "YES" : "NO");

  measure_backward_overlap(quick, trace_path);
  return comm_always_covers ? 0 : 1;
}
