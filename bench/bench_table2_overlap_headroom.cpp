// Reproduces paper Table 2: per-device central-graph computation time vs
// communication time of 2-bit-quantized marginal messages (ogbn-products
// analogue, 8 partitions). The paper's claim: even at the lowest bit-width,
// communication time still exceeds central computation time, so the central
// graph's compute can always hide inside the communication window.
#include "bench_common.h"
#include "core/timing.h"
#include "quant/message_codec.h"

using namespace adaqp;
using namespace adaqp::bench;

int main() {
  const Dataset ds = make_dataset("products_sim", 42);
  const ClusterSpec cluster = cluster_for("2M-4D");  // 8 devices
  Rng rng(7919 + 17);
  const auto part = make_partitioner("multilevel")->partition(ds.graph, 8, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  const std::size_t hidden = 64;

  // 2-bit wire volume per device pair for one hidden-layer exchange.
  std::vector<std::vector<std::size_t>> bytes(8, std::vector<std::size_t>(8));
  for (int d = 0; d < 8; ++d)
    for (int p = 0; p < 8; ++p) {
      if (d == p || dist.devices[d].send_local[p].empty()) continue;
      const std::vector<int> bits(dist.devices[d].send_local[p].size(), 2);
      bytes[d][p] = encoded_wire_bytes(bits.size(), hidden, bits);
    }
  const RingAllToAll ring(8);
  std::vector<double> round_times;
  ring.total_seconds(cluster, bytes, &round_times);

  Table table({"Device", "Comm. (ms, 2-bit)", "Comp. (ms, central)"});
  bool comm_always_covers = true;
  for (int d = 0; d < 8; ++d) {
    // Per-device comm time: its transfers across the ring rounds, counting
    // the straggler synchronization it must sit through.
    double comm = 0.0;
    for (double t : round_times) comm += t;
    const double comp = layer_forward_seconds(
        cluster, dist.devices[d], dist.devices[d].central_nodes, hidden,
        hidden);
    if (comp > comm) comm_always_covers = false;
    table.add_row({"Device" + std::to_string(d), Table::fmt(comm * 1e3, 3),
                   Table::fmt(comp * 1e3, 3)});
  }
  emit(table,
       "Table 2: central computation vs 2-bit marginal communication "
       "(products_sim, 8 partitions)",
       "table2_overlap_headroom.csv");
  std::printf("\ncommunication covers central computation on every device: %s\n"
              "Paper reference: comm 0.08-0.13s vs comp 0.04-0.06s (always "
              "covered).\n",
              comm_always_covers ? "YES" : "NO");
  return comm_always_covers ? 0 : 1;
}
