// Reproduces paper Table 6: uniform random bit-width sampling vs the
// adaptive bi-objective assignment, on the ogbn-products analogue.
// Paper shape: adaptive achieves higher accuracy at comparable (or better)
// throughput; uniform sampling is not robust because it can hand low widths
// to high-β messages.
#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

int main() {
  const Dataset ds = make_dataset("products_sim", 42);
  Table table({"Partitions", "Model", "Method", "Accuracy (%)",
               "Throughput (epoch/s)"});
  for (const std::string setting : {"2M-2D", "2M-4D"}) {
    for (Aggregator agg : {Aggregator::kGcn, Aggregator::kSageMean}) {
      for (Method m : {Method::kAdaQPUniform, Method::kAdaQP}) {
        // Average over three seeds as the paper does (mean reported).
        double acc = 0.0, tp = 0.0;
        for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
          const RunResult r = run_method(ds, setting, agg, m, seed);
          acc += r.final_val_acc;
          tp += r.throughput;
        }
        acc /= 3.0;
        tp /= 3.0;
        table.add_row({setting, agg == Aggregator::kGcn ? "GCN" : "GraphSAGE",
                       m == Method::kAdaQP ? "Adaptive" : "Uniform",
                       Table::fmt(acc * 100.0, 2), Table::fmt(tp, 2)});
        std::fprintf(stderr, "[table6] %s %s %s done\n", setting.c_str(),
                     agg == Aggregator::kGcn ? "GCN" : "SAGE",
                     m == Method::kAdaQP ? "adaptive" : "uniform");
      }
    }
  }
  emit(table, "Table 6: uniform bit-width sampling vs adaptive assignment",
       "table6_uniform_vs_adaptive.csv");
  std::printf("\nPaper reference: adaptive wins accuracy in nearly all\n"
              "settings (e.g. 75.32%% vs 75.03%%) at similar throughput.\n");
  return 0;
}
