// Reproduces paper Fig. 2: data sizes transferred across each device pair in
// the GCN's first layer, training on the AmazonProducts analogue with 4
// partitions. The paper's point: pairwise volumes are highly skewed, which
// motivates the per-pair minimax term of the bit-width assigner.
#include <algorithm>

#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

int main() {
  const Dataset ds = make_dataset("amazon_sim", 42);
  const ClusterSpec cluster = cluster_for("2M-2D");
  Rng rng(7919 + 17);
  const auto part = make_partitioner("multilevel")->partition(ds.graph, 4, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);

  TrainOptions opts;
  opts.method = Method::kVanilla;
  opts.epochs = 1;
  opts.eval_every_epoch = false;
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 64;
  mc.out_dim = ds.num_classes();
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  trainer.train_epoch();

  const auto& bytes = trainer.last_layer1_pair_bytes();
  Table table({"Device Pair", "Data Size (KB)", "Bar"});
  double max_kb = 0.0;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      max_kb = std::max(max_kb, bytes[i][j] / 1e3);
  double min_kb = max_kb;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      const double kb = bytes[i][j] / 1e3;
      min_kb = std::min(min_kb, kb);
      const int bar = max_kb > 0 ? static_cast<int>(40.0 * kb / max_kb) : 0;
      table.add_row({std::to_string(i) + "_" + std::to_string(j),
                     Table::fmt(kb, 1), std::string(bar, '#')});
    }
  emit(table, "Fig. 2: per-pair transfer volume, GCN layer 1 (amazon_sim, 4 "
              "partitions)",
       "fig2_pair_volumes.csv");
  std::printf("\nSkew (max/min pair volume): %.2fx — the paper's Fig. 2 shows\n"
              "a comparable imbalance, motivating per-pair bit-width budgets.\n",
              min_kb > 0 ? max_kb / min_kb : 0.0);
  return 0;
}
