// Reproduces paper Table 4 (accuracy + training throughput of Vanilla,
// PipeGCN, SANCUS and AdaQP across datasets, partition settings and models)
// and the matching appendix Table 9 (wall-clock time of the same runs).
//
// Paper shape to match:
//   * AdaQP throughput 2.19-3.01x Vanilla with accuracy within ±0.3%,
//   * staleness baselines (PipeGCN/SANCUS) lose accuracy,
//   * SANCUS is often slower than Vanilla (sequential broadcasts).
// PipeGCN only supports GraphSAGE and SANCUS only GCN, as in the paper.
#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

int main(int argc, char** argv) {
  // --quick trims to one dataset for smoke runs.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  const std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"products_sim"}
            : std::vector<std::string>{"reddit_sim", "yelp_sim",
                                       "products_sim", "amazon_sim"};
  Table table({"Dataset", "Partitions", "Model", "Method", "Accuracy(%)",
               "Throughput (epoch/s)", "Speedup"});
  Table wallclock({"Dataset", "Partitions", "Model", "Method",
                   "Wall-clock Time (s)"});

  for (const auto& name : datasets) {
    const Dataset ds = make_dataset(name, 42);
    const std::vector<std::string> pset =
        (name == "reddit_sim" || name == "yelp_sim")
            ? std::vector<std::string>{"2M-1D", "2M-2D"}
            : std::vector<std::string>{"2M-2D", "2M-4D"};
    for (const auto& setting : pset) {
      for (Aggregator agg : {Aggregator::kGcn, Aggregator::kSageMean}) {
        // The paper's baseline coverage: PipeGCN ships GraphSAGE only,
        // SANCUS ships GCN only.
        std::vector<Method> methods = {Method::kVanilla};
        if (agg == Aggregator::kGcn) methods.push_back(Method::kSancus);
        else methods.push_back(Method::kPipeGCN);
        methods.push_back(Method::kAdaQP);

        double vanilla_tp = 0.0;
        for (Method m : methods) {
          const RunResult r = run_method(ds, setting, agg, m, /*seed=*/7);
          if (m == Method::kVanilla) vanilla_tp = r.throughput;
          const std::string speedup =
              m == Method::kVanilla
                  ? "1.00x"
                  : Table::fmt(r.throughput / vanilla_tp, 2) + "x";
          table.add_row({name, setting, r.model, r.method,
                         Table::fmt(r.final_val_acc * 100.0, 2),
                         Table::fmt(r.throughput, 2), speedup});
          wallclock.add_row({name, setting, r.model, r.method,
                             Table::fmt(r.wall_clock_seconds, 2)});
          std::fprintf(stderr, "[table4] %s %s %s %s done\n", name.c_str(),
                       setting.c_str(), r.model.c_str(), r.method.c_str());
        }
      }
    }
  }
  emit(table, "Table 4: accuracy and training throughput", "table4_main.csv");
  emit(wallclock, "Table 9: wall-clock training time (same runs)",
       "table9_wallclock.csv");
  std::printf("\nPaper reference: AdaQP 2.19-3.01x Vanilla with accuracy\n"
              "within -0.30%%..+0.19%%; staleness baselines lose accuracy;\n"
              "SANCUS often slower than Vanilla.\n");
  return 0;
}
