// Measured pipeline overlap vs the cost model's max(comm, central) claim.
//
// The paper's §4.1 parallelization argument — marginal-row communication
// hides central-subgraph computation — is applied to *simulated* time by the
// trainer's EpochBreakdown. This bench validates it on the *real* execution
// path: it runs AdaQP with the async stage scheduler under the trace
// recorder and reports, from actual stage timestamps, how much
// encode/wire/decode wall time ran concurrently with central compute
// (overlap efficiency), alongside the sync-vs-async wall-clock comparison
// and the modeled breakdown. On a 1-hardware-thread host the scheduler
// degrades to inline execution and measured overlap is ~0 by construction;
// run on a multi-core host for the real number. Writes the Chrome trace to
// bench/out/pipeline_trace.json (or argv[2]) so the overlap is inspectable
// in chrome://tracing.
//
// Usage: bench_pipeline_overlap [--quick] [trace.json path]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pipeline/config.h"
#include "pipeline/trace.h"
#include "runtime/thread_pool.h"

using namespace adaqp;
using namespace adaqp::bench;

namespace {

double wall_run(const Dataset& ds, const std::string& setting, int epochs,
                bool async, RunResult* out) {
  pipeline::AsyncModeGuard mode(async);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r = run_method(ds, setting, Aggregator::kGcn, Method::kAdaQP,
                           /*seed=*/1, /*eval_every_epoch=*/false, epochs);
  const auto t1 = std::chrono::steady_clock::now();
  if (out) *out = std::move(r);
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_path = "bench/out/pipeline_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0)
      quick = true;
    else
      trace_path = argv[i];
  }

  DatasetSpec spec;
  spec.name = quick ? "overlap_quick" : "overlap_medium";
  spec.num_nodes = quick ? 800 : 4000;
  spec.avg_degree = 12.0;
  spec.feature_dim = 64;
  spec.num_classes = 7;
  spec.intra_prob = 0.7;
  Rng rng(1234);
  const Dataset ds = make_dataset(spec, rng);
  const std::string setting = "2M-2D";
  const int epochs = quick ? 3 : 6;

  // Warm-up + sync reference wall time (phased execution, same numerics).
  RunResult sync_result;
  const double sync_wall = wall_run(ds, setting, epochs, false, &sync_result);

  // Traced async run.
  auto& rec = pipeline::TraceRecorder::instance();
  rec.start();
  RunResult async_result;
  const double async_wall = wall_run(ds, setting, epochs, true, &async_result);
  rec.stop();
  if (!rec.write_json(trace_path))
    std::printf("WARNING: could not write %s\n", trace_path.c_str());

  // Classify stage spans: exchange work (forward pairs + backward
  // encode/accumulate) vs *forward* central/marginal compute. The backward
  // row-subset adjoints ("L<l>b/central/..." etc.) are deliberately
  // excluded so this metric stays comparable across BENCH_runtime.json
  // history; bench_table2_overlap_headroom part 2 measures the backward
  // overlap separately.
  std::vector<std::pair<double, double>> exchange_iv, central_iv, marginal_iv;
  for (const auto& e : rec.events()) {
    const auto iv = std::make_pair(e.ts_us, e.ts_us + e.dur_us);
    const bool backward = e.name->find("b/") != std::string::npos;
    if (e.name->rfind("fwd/", 0) == 0 || e.name->rfind("bwd-", 0) == 0)
      exchange_iv.push_back(iv);
    else if (!backward && e.name->find("/central/") != std::string::npos)
      central_iv.push_back(iv);
    else if (!backward && e.name->find("/marginal/") != std::string::npos)
      marginal_iv.push_back(iv);
  }
  const double exchange_busy = interval_union_seconds(exchange_iv);
  const double central_busy = interval_union_seconds(central_iv);
  const double marginal_busy = interval_union_seconds(marginal_iv);
  const double overlap =
      interval_intersection_seconds(exchange_iv, central_iv);
  const double denom = std::min(exchange_busy, central_busy);
  const double efficiency = denom > 0.0 ? overlap / denom : 0.0;

  // Modeled per-epoch prediction for context: comm and the central compute
  // it claims to hide (max-composed in the trainer's breakdown).
  const EpochBreakdown& model = async_result.avg_breakdown;

  Table table({"Metric", "Value"});
  table.add_row({"hardware threads (pool)", std::to_string(num_threads())});
  table.add_row({"epochs", std::to_string(epochs)});
  table.add_row({"wall seconds (ADAQP_ASYNC=0)", Table::fmt(sync_wall, 3)});
  table.add_row({"wall seconds (ADAQP_ASYNC=1)", Table::fmt(async_wall, 3)});
  table.add_row({"wall speedup sync/async", Table::fmt(sync_wall / async_wall, 3)});
  table.add_row({"exchange stage busy (s)", Table::fmt(exchange_busy, 4)});
  table.add_row({"central stage busy (s)", Table::fmt(central_busy, 4)});
  table.add_row({"marginal stage busy (s)", Table::fmt(marginal_busy, 4)});
  table.add_row({"measured overlap (s)", Table::fmt(overlap, 6)});
  table.add_row({"measured overlap efficiency", Table::fmt(efficiency, 6)});
  table.add_row({"modeled comm (s/epoch)", Table::fmt(model.comm, 6)});
  table.add_row({"modeled marginal comp (s/epoch)", Table::fmt(model.comp, 6)});
  table.add_row({"modeled quant kernels (s/epoch)", Table::fmt(model.quant, 6)});
  table.add_row({"modeled epoch total (s)", Table::fmt(model.total, 6)});
  emit(table,
       "Pipeline overlap: measured exchange||central concurrency vs the "
       "modeled max(comm, central) composition",
       "pipeline_overlap.csv");
  std::printf("(trace: %s — open in chrome://tracing)\n", trace_path.c_str());

  // Sanity: both modes must agree bitwise on training results.
  bool equal = sync_result.epochs.size() == async_result.epochs.size();
  for (std::size_t e = 0; equal && e < sync_result.epochs.size(); ++e)
    equal = sync_result.epochs[e].train_loss ==
            async_result.epochs[e].train_loss;
  std::printf("sync/async loss curves bit-identical: %s\n",
              equal ? "yes" : "NO (BUG)");
  return equal ? 0 : 1;
}
