// Reproduces paper Fig. 9 / Fig. 12: epoch-to-validation-accuracy curves for
// Vanilla, PipeGCN, SANCUS and AdaQP. The paper's shape: AdaQP's curve
// coincides with Vanilla's (same O(1/T) convergence), while the staleness
// baselines converge more slowly.
//
// Emits one CSV series per (dataset, model) and prints a compact summary:
// epochs needed to reach a target accuracy per method.
#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

namespace {

int epochs_to_reach(const RunResult& r, double target) {
  for (const auto& e : r.epochs)
    if (e.val_acc >= target) return e.epoch + 1;
  return -1;  // never reached
}

}  // namespace

int main() {
  struct Config {
    const char* dataset;
    const char* setting;
    Aggregator agg;
  };
  const Config configs[] = {
      {"reddit_sim", "2M-2D", Aggregator::kGcn},
      {"reddit_sim", "2M-2D", Aggregator::kSageMean},
      {"products_sim", "2M-4D", Aggregator::kGcn},
      {"products_sim", "2M-4D", Aggregator::kSageMean},
  };

  Table summary({"Dataset", "Model", "Method", "Final Val Acc(%)",
                 "Epochs to 90% of Vanilla final"});
  for (const auto& cfg : configs) {
    const Dataset ds = make_dataset(cfg.dataset, 42);
    std::vector<Method> methods = {Method::kVanilla, Method::kAdaQP};
    methods.push_back(cfg.agg == Aggregator::kGcn ? Method::kSancus
                                                  : Method::kPipeGCN);

    std::vector<RunResult> runs;
    for (Method m : methods)
      runs.push_back(run_method(ds, cfg.setting, cfg.agg, m, /*seed=*/7,
                                /*eval_every_epoch=*/true));

    // CSV: epoch, then one accuracy column per method.
    Table curve_header_builder({"epoch"});
    std::vector<std::string> header = {"epoch"};
    for (const auto& r : runs) header.push_back(r.method);
    Table curves(header);
    for (std::size_t e = 0; e < runs[0].epochs.size(); ++e) {
      std::vector<std::string> row = {std::to_string(e)};
      for (const auto& r : runs)
        row.push_back(Table::fmt(r.epochs[e].val_acc * 100.0, 3));
      curves.add_row(row);
    }
    const std::string csv = std::string("fig9_curve_") + cfg.dataset + "_" +
                            (cfg.agg == Aggregator::kGcn ? "gcn" : "sage") +
                            ".csv";
    curves.write_csv("bench/out/" + csv);
    std::printf("wrote bench/out/%s\n", csv.c_str());

    const double target = 0.9 * runs[0].final_val_acc;
    for (const auto& r : runs) {
      const int reach = epochs_to_reach(r, target);
      summary.add_row({cfg.dataset, r.model, r.method,
                       Table::fmt(r.final_val_acc * 100.0, 2),
                       reach < 0 ? "never" : std::to_string(reach)});
    }
  }
  emit(summary, "Fig. 9 summary: convergence speed per method",
       "fig9_summary.csv");
  std::printf("\nPaper reference: AdaQP's curve coincides with Vanilla's;\n"
              "PipeGCN/SANCUS need more epochs for the same accuracy.\n");
  return 0;
}
