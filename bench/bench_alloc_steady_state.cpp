// Zero-allocation steady-state gate (docs/ARCHITECTURE.md, "Memory
// subsystem"): runs every trainer method under the steady-state
// configuration across async on/off and a thread sweep, and reports the
// per-phase heap-allocation counts of the warm epochs measured by the
// always-on counters behind ADAQP_ALLOC_TRACK. Any warm epoch with a
// nonzero count is a regression: the process exits 1, which is the CI
// alloc-regression gate. Writes bench/out/alloc_steady_state.csv.
//
// Usage: bench_alloc_steady_state [--threads "1 4 8"]
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "memory/alloc_track.h"
#include "pipeline/config.h"
#include "runtime/thread_pool.h"
#include "transport/loopback.h"
#include "transport/transport.h"

using namespace adaqp;

namespace {

struct CaseResult {
  Method method;
  bool async;
  int threads;
  int warm_epochs = 0;
  std::uint64_t warm_allocs = 0;  ///< summed over all warm epochs
  std::uint64_t warmup_allocs = 0;
};

/// Scoped global-pool override. Declared before the trainer so the pool
/// outlives any still-queued deferred exchange stages (set_num_threads must
/// not run while pipeline work is in flight).
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(prev_); }

 private:
  int prev_;
};

CaseResult run_case(const Dataset& ds, Method method, bool async,
                    int threads) {
  pipeline::AsyncModeGuard mode(async);
  ThreadCountGuard thread_guard(threads);
  // The contract covers loopback delivery only (see
  // memory::steady_state_definition()); pin it regardless of the
  // environment's ADAQP_TRANSPORT.
  transport::ScopedTransport loopback(
      std::make_unique<transport::LoopbackTransport>());

  Rng rng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 32;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 3;
  mc.dropout = 0.3f;
  TrainOptions opts;
  opts.method = method;
  opts.epochs = 5;
  opts.seed = 7;
  opts.reassign_period = 1 << 20;  // refresh only at epoch 0
  opts.eval_every_epoch = false;   // steady-state contract requirement
  DistTrainer trainer(ds, dist, cluster, mc, opts);

  CaseResult r{method, async, threads};
  for (int e = 0; e < opts.epochs; ++e) {
    trainer.train_epoch();
    const EpochAllocReport& report = trainer.last_alloc_report();
    if (report.steady_state) {
      ++r.warm_epochs;
      r.warm_allocs += report.total();
    } else {
      r.warmup_allocs += report.total();
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> thread_counts = {1, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      std::istringstream in(argv[++i]);
      for (int t; in >> t;) thread_counts.push_back(t);
    }
  }

  DatasetSpec spec;
  spec.name = "alloc_gate";
  spec.num_nodes = 1200;
  spec.avg_degree = 10.0;
  spec.feature_dim = 16;
  spec.num_classes = 6;
  spec.intra_prob = 0.8;
  Rng rng(11);
  const Dataset ds = make_dataset(spec, rng);

  const Method methods[] = {Method::kVanilla, Method::kAdaQP,
                            Method::kAdaQPUniform, Method::kPipeGCN,
                            Method::kSancus};

  std::printf("%-14s %-6s %-8s %-12s %-12s %-14s\n", "method", "async",
              "threads", "warm_epochs", "warm_allocs", "warmup_allocs");
  std::FILE* csv = nullptr;
  if (std::FILE* f = std::fopen("bench/out/alloc_steady_state.csv", "w")) {
    csv = f;
    std::fprintf(csv,
                 "method,async,threads,warm_epochs,warm_allocs,"
                 "warmup_allocs\n");
  }

  bool failed = false;
  for (Method method : methods) {
    for (bool async : {false, true}) {
      for (int threads : thread_counts) {
        const CaseResult r = run_case(ds, method, async, threads);
        const std::string name = method_name(method);
        std::printf("%-14s %-6d %-8d %-12d %-12llu %-14llu%s\n",
                    name.c_str(), async ? 1 : 0, threads, r.warm_epochs,
                    static_cast<unsigned long long>(r.warm_allocs),
                    static_cast<unsigned long long>(r.warmup_allocs),
                    r.warm_allocs != 0 ? "  <-- REGRESSION" : "");
        if (csv)
          std::fprintf(csv, "%s,%d,%d,%d,%llu,%llu\n", name.c_str(),
                       async ? 1 : 0, threads, r.warm_epochs,
                       static_cast<unsigned long long>(r.warm_allocs),
                       static_cast<unsigned long long>(r.warmup_allocs));
        if (r.warm_allocs != 0 || r.warm_epochs == 0) failed = true;
      }
    }
  }
  if (csv) std::fclose(csv);

  if (failed) {
    std::fprintf(stderr,
                 "\nFAIL: a steady-state epoch allocated (contract: %s)\n",
                 memory::steady_state_definition());
    return 1;
  }
  std::printf("\nOK: all steady-state epochs performed zero heap "
              "allocations\n");
  return 0;
}
