// Reproduces paper Table 5: end-to-end wall-clock training time (training +
// bit-width assignment overhead for AdaQP) on the AmazonProducts analogue.
// Paper shape: AdaQP achieves the shortest wall-clock time; SANCUS can be
// slower than Vanilla.
#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

int main() {
  const Dataset ds = make_dataset("amazon_sim", 42);
  Table table({"Dataset", "Partitions", "Model", "Method",
               "Wall-clock Time (s)"});
  for (const std::string setting : {"2M-2D", "2M-4D"}) {
    for (Aggregator agg : {Aggregator::kGcn, Aggregator::kSageMean}) {
      std::vector<Method> methods = {Method::kVanilla};
      methods.push_back(agg == Aggregator::kGcn ? Method::kSancus
                                                : Method::kPipeGCN);
      methods.push_back(Method::kAdaQP);
      for (Method m : methods) {
        const RunResult r = run_method(ds, setting, agg, m, /*seed=*/7);
        table.add_row({"amazon_sim", setting, r.model, r.method,
                       Table::fmt(r.wall_clock_seconds, 3)});
        std::fprintf(stderr, "[table5] %s %s %s done\n", setting.c_str(),
                     r.model.c_str(), r.method.c_str());
      }
    }
  }
  emit(table, "Table 5: wall-clock training time on amazon_sim",
       "table5_wallclock.csv");
  std::printf("\nPaper reference (AmazonProducts): AdaQP 1053.51s vs Vanilla\n"
              "2874.77s vs SANCUS 3782.44s (2M-2D GCN) — AdaQP shortest,\n"
              "SANCUS slower than Vanilla.\n");
  return 0;
}
