// Microbenchmarks of the quantization substrate (google-benchmark): the
// CUDA-kernel analogues of paper §3.2 — quantize, de-quantize, bit packing
// and the message codec — swept over every SIMD ISA the host supports
// (scalar reference vs the src/simd/ vector kernels, selected per benchmark
// with an IsaGuard exactly as ADAQP_ISA would). Supports the claim that
// q/dq overhead is small relative to the communication it saves (§5.4) and
// tracks the vector kernels' speedup target: >= 2x encode+decode throughput
// on AVX2-capable hardware at b in {2,4,8} vs ADAQP_ISA=scalar.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "quant/message_codec.h"
#include "quant/quantize.h"
#include "simd/isa.h"
#include "tensor/matrix.h"

namespace {

using namespace adaqp;
using simd::Isa;
using simd::IsaGuard;

std::vector<float> make_values(std::size_t n) {
  Rng rng(7);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

void BM_Quantize(benchmark::State& state, Isa isa, int bits, std::size_t n) {
  IsaGuard guard(isa);
  const auto values = make_values(n);
  Rng rng(11);
  for (auto _ : state) {
    auto qv = quantize(values, bits, rng);
    benchmark::DoNotOptimize(qv.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          values.size() * sizeof(float));
}

void BM_Dequantize(benchmark::State& state, Isa isa, int bits,
                   std::size_t n) {
  IsaGuard guard(isa);
  const auto values = make_values(n);
  Rng rng(12);
  const auto qv = quantize(values, bits, rng);
  std::vector<float> out(values.size());
  for (auto _ : state) {
    dequantize(qv, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          values.size() * sizeof(float));
}

void BM_PackBits(benchmark::State& state, Isa isa, int bits) {
  IsaGuard guard(isa);
  Rng rng(13);
  std::vector<std::uint32_t> values(4096);
  for (auto& v : values)
    v = static_cast<std::uint32_t>(rng.uniform_int(1u << bits));
  for (auto _ : state) {
    auto packed = pack_bits(values, bits);
    benchmark::DoNotOptimize(packed.data());
  }
}

void BM_CodecEncode(benchmark::State& state, Isa isa, int bits) {
  IsaGuard guard(isa);
  const std::size_t rows = 256, dim = 64;
  Rng rng(14);
  Matrix src(rows, dim);
  src.fill_uniform(rng, -1.0f, 1.0f);
  std::vector<NodeId> idx(rows);
  for (NodeId i = 0; i < rows; ++i) idx[i] = i;
  const std::vector<int> widths(rows, bits);
  for (auto _ : state) {
    auto block = encode_rows(src, idx, widths, rng);
    benchmark::DoNotOptimize(block.bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows * dim * sizeof(float));
}

void BM_CodecRoundTrip(benchmark::State& state, Isa isa, int bits) {
  IsaGuard guard(isa);
  const std::size_t rows = 256, dim = 64;
  Rng rng(15);
  Matrix src(rows, dim), dst(rows, dim);
  src.fill_uniform(rng, -1.0f, 1.0f);
  std::vector<NodeId> idx(rows);
  for (NodeId i = 0; i < rows; ++i) idx[i] = i;
  const std::vector<int> widths(rows, bits);
  for (auto _ : state) {
    auto block = encode_rows(src, idx, widths, rng);
    decode_rows(block, dst, idx);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows * dim * sizeof(float) * 2);
}

}  // namespace

// Registered (not macro-declared) so every case can sweep the host's
// supported ISA list discovered at runtime. Benchmark names carry the ISA
// so `--benchmark_filter=avx2` or `=scalar` isolates one variant.
int main(int argc, char** argv) {
  for (Isa isa : adaqp::simd::supported_isas()) {
    const std::string tag = adaqp::simd::isa_name(isa);
    for (int bits : {2, 4, 8}) {
      const std::string b = "/b" + std::to_string(bits);
      for (std::size_t n : {64ul, 1024ul})
        benchmark::RegisterBenchmark(
            ("BM_Quantize/" + tag + b + "/n" + std::to_string(n)).c_str(),
            BM_Quantize, isa, bits, n);
      benchmark::RegisterBenchmark(
          ("BM_Dequantize/" + tag + b + "/n1024").c_str(), BM_Dequantize,
          isa, bits, 1024ul);
      benchmark::RegisterBenchmark(("BM_PackBits/" + tag + b).c_str(),
                                   BM_PackBits, isa, bits);
      benchmark::RegisterBenchmark(("BM_CodecEncode/" + tag + b).c_str(),
                                   BM_CodecEncode, isa, bits);
      benchmark::RegisterBenchmark(("BM_CodecRoundTrip/" + tag + b).c_str(),
                                   BM_CodecRoundTrip, isa, bits);
    }
    // 32-bit passthrough: ISA-independent memcpy, one registration each.
    benchmark::RegisterBenchmark(("BM_CodecEncode/" + tag + "/b32").c_str(),
                                 BM_CodecEncode, isa, 32);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
