// Microbenchmarks of the quantization substrate (google-benchmark): the
// CUDA-kernel analogues of paper §3.2 — quantize, de-quantize, bit packing
// and the message codec. Supports the claim that q/dq overhead is small
// relative to the communication it saves (paper §5.4).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "quant/message_codec.h"
#include "quant/quantize.h"
#include "tensor/matrix.h"

namespace {

using namespace adaqp;

std::vector<float> make_values(std::size_t n) {
  Rng rng(7);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

void BM_Quantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto values = make_values(static_cast<std::size_t>(state.range(1)));
  Rng rng(11);
  for (auto _ : state) {
    auto qv = quantize(values, bits, rng);
    benchmark::DoNotOptimize(qv.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          values.size() * sizeof(float));
}
BENCHMARK(BM_Quantize)
    ->Args({2, 64})->Args({4, 64})->Args({8, 64})
    ->Args({2, 1024})->Args({8, 1024});

void BM_Dequantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto values = make_values(static_cast<std::size_t>(state.range(1)));
  Rng rng(12);
  const auto qv = quantize(values, bits, rng);
  std::vector<float> out(values.size());
  for (auto _ : state) {
    dequantize(qv, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          values.size() * sizeof(float));
}
BENCHMARK(BM_Dequantize)
    ->Args({2, 64})->Args({4, 64})->Args({8, 64})
    ->Args({2, 1024})->Args({8, 1024});

void BM_PackBits(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(13);
  std::vector<std::uint32_t> values(4096);
  for (auto& v : values)
    v = static_cast<std::uint32_t>(rng.uniform_int(1u << bits));
  for (auto _ : state) {
    auto packed = pack_bits(values, bits);
    benchmark::DoNotOptimize(packed.data());
  }
}
BENCHMARK(BM_PackBits)->Arg(2)->Arg(4)->Arg(8);

void BM_CodecEncode(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const std::size_t rows = 256, dim = 64;
  Rng rng(14);
  Matrix src(rows, dim);
  src.fill_uniform(rng, -1.0f, 1.0f);
  std::vector<NodeId> idx(rows);
  for (NodeId i = 0; i < rows; ++i) idx[i] = i;
  const std::vector<int> widths(rows, bits);
  for (auto _ : state) {
    auto block = encode_rows(src, idx, widths, rng);
    benchmark::DoNotOptimize(block.bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows * dim * sizeof(float));
}
BENCHMARK(BM_CodecEncode)->Arg(2)->Arg(4)->Arg(8)->Arg(32);

void BM_CodecRoundTrip(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const std::size_t rows = 256, dim = 64;
  Rng rng(15);
  Matrix src(rows, dim), dst(rows, dim);
  src.fill_uniform(rng, -1.0f, 1.0f);
  std::vector<NodeId> idx(rows);
  for (NodeId i = 0; i < rows; ++i) idx[i] = i;
  const std::vector<int> widths(rows, bits);
  for (auto _ : state) {
    auto block = encode_rows(src, idx, widths, rng);
    decode_rows(block, dst, idx);
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_CodecRoundTrip)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
