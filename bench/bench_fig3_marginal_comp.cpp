// Reproduces paper Fig. 3: computation time of all nodes vs marginal nodes
// only, per device (ogbn-products analogue, 8 partitions). With central-graph
// computation hidden inside communication, the remaining (marginal) compute
// is 23-55% smaller than the full compute in the paper.
#include "bench_common.h"
#include "core/timing.h"

using namespace adaqp;
using namespace adaqp::bench;

int main() {
  const Dataset ds = make_dataset("products_sim", 42);
  const ClusterSpec cluster = cluster_for("2M-4D");
  Rng rng(7919 + 17);
  const auto part = make_partitioner("multilevel")->partition(ds.graph, 8, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const std::size_t hidden = 64;

  Table table({"Device", "All Nodes (ms)", "Marginal Only (ms)",
               "Marginal / All", "Reduction"});
  for (int d = 0; d < 8; ++d) {
    const auto& dev = dist.devices[d];
    std::vector<NodeId> all(dev.num_owned);
    for (std::size_t i = 0; i < all.size(); ++i)
      all[i] = static_cast<NodeId>(i);
    const double t_all =
        layer_forward_seconds(cluster, dev, all, hidden, hidden);
    const double t_marginal = layer_forward_seconds(
        cluster, dev, dev.marginal_nodes, hidden, hidden);
    table.add_row({"device" + std::to_string(d), Table::fmt(t_all * 1e3, 3),
                   Table::fmt(t_marginal * 1e3, 3),
                   Table::pct(t_marginal / t_all),
                   Table::pct(1.0 - t_marginal / t_all)});
  }
  emit(table,
       "Fig. 3: computation time, all nodes vs marginal nodes "
       "(products_sim, 8 partitions)",
       "fig3_marginal_comp.csv");
  std::printf("\nPaper reference: hiding central computation cuts per-device\n"
              "model computation time by 23.20%%-55.44%%.\n");
  return 0;
}
