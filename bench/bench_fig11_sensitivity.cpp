// Reproduces paper Fig. 11: sensitivity of AdaQP to (a) message group size,
// (b) λ (variance-vs-time weight), (c) bit-width re-assignment period —
// accuracy and assignment overhead, GCN on the ogbn-products analogue with
// 2M-4D partitioning (the paper's most accuracy-sensitive setting).
//
// Paper shape: smallest group size gives the best accuracy but the largest
// overhead; λ ∈ {0,1} (single-objective endpoints) is never the best
// accuracy; a moderate re-assignment period wins.
#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

namespace {

RunResult run_with(const Dataset& ds, std::size_t group_size, double lambda,
                   int period) {
  TrainOptions opts;
  opts.method = Method::kAdaQP;
  opts.epochs = epochs_for(ds.spec.name);
  opts.seed = 7;
  opts.assigner.group_size = group_size;
  opts.assigner.lambda = lambda;
  opts.reassign_period = period;
  opts.eval_every_epoch = false;
  const ClusterSpec cluster = cluster_for("2M-4D");
  Rng rng(opts.seed * 7919 + 17);
  const auto part = make_partitioner("multilevel")
                        ->partition(ds.graph, cluster.num_devices(), rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 64;
  mc.out_dim = ds.num_classes();
  DistTrainer trainer(ds, dist, cluster, mc, opts);
  RunResult r = trainer.run();
  const auto [val, test] = trainer.evaluate();
  r.final_val_acc = val;
  r.final_test_acc = test;
  return r;
}

}  // namespace

int main() {
  const Dataset ds = make_dataset("products_sim", 42);

  // (a) group size (paper sweeps 50..10000 at full scale; ours is ~1/40).
  Table by_group({"Group Size", "Accuracy (%)", "Assign Overhead (s)"});
  for (std::size_t g : {2u, 16u, 64u, 256u, 1024u}) {
    const RunResult r = run_with(ds, g, 0.5, 25);
    by_group.add_row({std::to_string(g), Table::fmt(r.final_val_acc * 100, 2),
                      Table::fmt(r.assign_seconds, 4)});
    std::fprintf(stderr, "[fig11] group=%zu done\n", g);
  }
  emit(by_group, "Fig. 11a: sensitivity to message group size",
       "fig11a_group_size.csv");

  // (b) lambda.
  Table by_lambda({"Lambda", "Accuracy (%)", "Throughput (epoch/s)"});
  for (double lam : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const RunResult r = run_with(ds, 64, lam, 25);
    by_lambda.add_row({Table::fmt(lam, 2), Table::fmt(r.final_val_acc * 100, 2),
                       Table::fmt(r.throughput, 2)});
    std::fprintf(stderr, "[fig11] lambda=%.2f done\n", lam);
  }
  emit(by_lambda, "Fig. 11b: sensitivity to lambda", "fig11b_lambda.csv");

  // (c) re-assignment period.
  Table by_period({"Period", "Accuracy (%)", "Assign Overhead (s)"});
  for (int period : {5, 10, 25, 50}) {
    const RunResult r = run_with(ds, 64, 0.5, period);
    by_period.add_row({std::to_string(period),
                       Table::fmt(r.final_val_acc * 100, 2),
                       Table::fmt(r.assign_seconds, 4)});
    std::fprintf(stderr, "[fig11] period=%d done\n", period);
  }
  emit(by_period, "Fig. 11c: sensitivity to re-assignment period",
       "fig11c_period.csv");

  std::printf("\nPaper reference: smallest group size → best accuracy but\n"
              "highest overhead; λ endpoints (0, 1) not optimal; moderate\n"
              "period best.\n");
  return 0;
}
