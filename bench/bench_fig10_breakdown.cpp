// Reproduces paper Fig. 10: (a) per-epoch time broken into communication,
// computation and quantization; (b) wall-clock time split into actual
// training and bit-width assignment — Vanilla vs AdaQP on every dataset.
//
// Paper shape: AdaQP cuts communication time by ~78-81% and computation by
// ~13-39% (central compute hidden), at a quantization overhead of ~5-14% of
// epoch time; assignment is ~5% of wall-clock.
#include "bench_common.h"

using namespace adaqp;
using namespace adaqp::bench;

int main() {
  struct Cfg {
    const char* dataset;
    const char* setting;
  };
  const Cfg cfgs[] = {
      {"reddit_sim", "2M-1D"},   {"reddit_sim", "2M-2D"},
      {"yelp_sim", "2M-1D"},     {"yelp_sim", "2M-2D"},
      {"products_sim", "2M-2D"}, {"products_sim", "2M-4D"},
      {"amazon_sim", "2M-2D"},   {"amazon_sim", "2M-4D"},
  };
  Table epoch_table({"Dataset", "Partitions", "Method", "Comm. (ms)",
                     "Comp. (ms)", "Quant. (ms)", "Epoch (ms)"});
  Table wall_table({"Dataset", "Partitions", "Method", "Train (s)",
                    "Assign (s)", "Assign share"});
  Table reduction({"Dataset", "Partitions", "Comm. reduction",
                   "Comp. reduction", "Quant. share of epoch"});

  for (const auto& cfg : cfgs) {
    const Dataset ds = make_dataset(cfg.dataset, 42);
    const RunResult vanilla =
        run_method(ds, cfg.setting, Aggregator::kGcn, Method::kVanilla, 7);
    const RunResult adaqp =
        run_method(ds, cfg.setting, Aggregator::kGcn, Method::kAdaQP, 7);
    for (const RunResult* r : {&vanilla, &adaqp}) {
      epoch_table.add_row({cfg.dataset, cfg.setting, r->method,
                           Table::fmt(r->avg_breakdown.comm * 1e3, 3),
                           Table::fmt(r->avg_breakdown.comp * 1e3, 3),
                           Table::fmt(r->avg_breakdown.quant * 1e3, 3),
                           Table::fmt(r->avg_breakdown.total * 1e3, 3)});
      wall_table.add_row(
          {cfg.dataset, cfg.setting, r->method,
           Table::fmt(r->train_seconds, 3), Table::fmt(r->assign_seconds, 3),
           Table::pct(r->assign_seconds /
                      std::max(r->wall_clock_seconds, 1e-12))});
    }
    reduction.add_row(
        {cfg.dataset, cfg.setting,
         Table::pct(1.0 - adaqp.avg_breakdown.comm / vanilla.avg_breakdown.comm),
         Table::pct(1.0 - adaqp.avg_breakdown.comp / vanilla.avg_breakdown.comp),
         Table::pct(adaqp.avg_breakdown.quant / adaqp.avg_breakdown.total)});
    std::fprintf(stderr, "[fig10] %s %s done\n", cfg.dataset, cfg.setting);
  }
  emit(epoch_table, "Fig. 10a: per-epoch time breakdown",
       "fig10a_epoch_breakdown.csv");
  emit(wall_table, "Fig. 10b: wall-clock breakdown (train vs assignment)",
       "fig10b_wallclock_breakdown.csv");
  emit(reduction, "Fig. 10 summary: AdaQP reductions vs Vanilla",
       "fig10_reductions.csv");
  std::printf("\nPaper reference: comm. reduction 78.29-80.94%%, comp.\n"
              "reduction 13.16-39.11%%, quantization 5.53-13.88%% of epoch,\n"
              "assignment ~5.43%% of wall-clock.\n");
  return 0;
}
