// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper (see the
// per-experiment index in DESIGN.md §5): it prints the same rows/series the
// paper reports and writes a CSV under bench/out/ for plotting.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "core/trainer.h"

namespace adaqp::bench {

/// Cluster for a paper partition-setting string: "2M-1D", "2M-2D", ...
inline ClusterSpec cluster_for(const std::string& setting) {
  const int machines = std::stoi(setting.substr(0, setting.find('M')));
  const auto d_pos = setting.find('-') + 1;
  const int devices =
      std::stoi(setting.substr(d_pos, setting.find('D') - d_pos));
  return ClusterSpec::machines(machines, devices);
}

/// Per-dataset epoch budget (scaled-down analogue of paper Appendix B).
inline int epochs_for(const std::string& dataset) {
  if (dataset == "reddit_sim") return 60;
  if (dataset == "yelp_sim") return 80;
  if (dataset == "products_sim") return 60;
  if (dataset == "amazon_sim") return 80;
  return 60;
}

/// One full training run; per-epoch evaluation only when curves are needed.
/// When `eval_every_epoch` is false a single evaluation runs after the last
/// epoch so accuracy columns are still filled.
inline RunResult run_method(const Dataset& dataset, const std::string& setting,
                            Aggregator agg, Method method,
                            std::uint64_t seed = 1,
                            bool eval_every_epoch = false, int epochs = -1) {
  TrainOptions opts;
  opts.method = method;
  opts.epochs = epochs > 0 ? epochs : epochs_for(dataset.spec.name);
  opts.seed = seed;
  opts.reassign_period = 25;
  opts.eval_every_epoch = eval_every_epoch;
  const ClusterSpec cluster = cluster_for(setting);

  Rng rng(opts.seed * 7919 + 17);
  const auto part = make_partitioner("multilevel")
                        ->partition(dataset.graph, cluster.num_devices(), rng);
  const DistGraph dist = build_dist_graph(dataset.graph, part);
  ModelConfig mc;
  mc.aggregator = agg;
  mc.in_dim = dataset.spec.feature_dim;
  mc.hidden_dim = 64;
  mc.out_dim = dataset.num_classes();
  mc.num_layers = 3;
  mc.dropout = 0.5f;
  DistTrainer trainer(dataset, dist, cluster, mc, opts);
  RunResult result = trainer.run();
  if (!eval_every_epoch) {
    const auto [val, test] = trainer.evaluate();
    result.final_val_acc = val;
    result.final_test_acc = test;
    for (const auto& e : result.epochs)
      result.best_val_acc = std::max(result.best_val_acc, e.val_acc);
    result.best_val_acc = std::max(result.best_val_acc, val);
  }
  return result;
}

inline void emit(const Table& table, const std::string& title,
                 const std::string& csv_name) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.to_string().c_str());
  table.write_csv("bench/out/" + csv_name);
  std::printf("(csv: bench/out/%s)\n", csv_name.c_str());
}

// ---- Trace-interval arithmetic (overlap benches) ---------------------------
//
// The overlap benches classify recorded pipeline stage spans into interval
// sets (exchange vs compute) and measure realized concurrency as the
// intersection of their busy times. Intervals are (begin, end) pairs in
// microseconds, as recorded by pipeline::TraceRecorder.
//
// The arithmetic lives in obs/stopwatch.h — the same routines the trainer
// uses for the metrics report's realized-overlap figures — so bench numbers
// and ADAQP_METRICS numbers can never drift apart. These wrappers keep the
// benches' copy-friendly signatures (the obs versions mutate in place).

/// Seconds covered by the union of [begin, end) microsecond intervals.
inline double interval_union_seconds(
    std::vector<std::pair<double, double>> iv) {
  return obs::interval_union_seconds(iv);
}

/// Seconds where both interval sets are simultaneously active.
inline double interval_intersection_seconds(
    const std::vector<std::pair<double, double>>& a,
    const std::vector<std::pair<double, double>>& b) {
  std::vector<obs::Interval> ca(a);
  std::vector<obs::Interval> cb(b);
  return obs::interval_intersection_seconds(ca, cb);
}

}  // namespace adaqp::bench
