// Validates an ADAQP_METRICS JSON run report against the adaqp-metrics-v1
// schema (src/obs/run_report.h), including the optional adaqp-profile-v1
// critical-path section (src/obs/profile.h). Self-contained: the shared
// minimal JSON parser (tools/json_mini.h) plus structural assertions — no
// library dependency, so the checker cannot inherit a serializer bug from
// the code it validates.
//
//   ./metrics_schema_check <report.json>
//
// Exit 0 with a one-line summary when the report is schema-valid; exit 1
// with the first violation otherwise. Unknown schema versions — of the
// report or of the profile section — are violations, not warnings.
// scripts/bench.sh and CI run this on every report they produce.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "json_mini.h"

namespace {

using jsonmini::Parser;
using jsonmini::Value;

// ---------------------------------------------------------------------------
// Schema assertions
// ---------------------------------------------------------------------------

[[noreturn]] void violation(const std::string& what) {
  throw std::runtime_error("schema violation: " + what);
}

const Value& field(const Value& obj, const std::string& key,
                   const std::string& where) {
  if (obj.type != Value::kObject) violation(where + " is not an object");
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) violation(where + " is missing \"" + key + "\"");
  return *it->second;
}

double num_field(const Value& obj, const std::string& key,
                 const std::string& where) {
  const Value& v = field(obj, key, where);
  // Serializer writes null for non-finite doubles; accept it as a number
  // slot (the value is unusable but the shape is valid).
  if (v.type == Value::kNull) return 0.0;
  if (v.type != Value::kNumber)
    violation(where + "." + key + " is not a number");
  return v.number;
}

void require_keys(const Value& obj, std::initializer_list<const char*> keys,
                  const std::string& where) {
  for (const char* k : keys) (void)field(obj, k, where);
}

const char* const kWidthKeys[] = {"b2", "b4", "b8", "b32"};

// Stage categories of the profile attribution, matching
// obs::profile_category_key order; "_s" suffixed in the report.
const char* const kCategoryKeys[] = {"central_s", "marginal_s", "encode_s",
                                     "wire_s",    "decode_s",   "fold_s",
                                     "other_s"};

void check_width_object(const Value& v, const std::string& where) {
  if (v.type != Value::kObject) violation(where + " is not an object");
  for (const char* k : kWidthKeys) num_field(v, k, where);
  if (v.object.size() != 4) violation(where + " must have exactly 4 widths");
}

void check_overlap(const Value& v, const std::string& where) {
  require_keys(v, {"exchange_busy_s", "compute_busy_s", "overlap_s"}, where);
  num_field(v, "exchange_busy_s", where);
  num_field(v, "compute_busy_s", where);
  num_field(v, "overlap_s", where);
  const double eff = num_field(v, "efficiency", where);
  if (eff < 0.0 || eff > 1.0 + 1e-9)
    violation(where + ".efficiency out of [0, 1]: " + std::to_string(eff));
}

void check_epoch(const Value& e, int index) {
  const std::string where = "epochs[" + std::to_string(index) + "]";
  num_field(e, "epoch", where);
  num_field(e, "train_loss", where);

  const Value& sim = field(e, "sim", where);
  for (const char* k : {"comm_s", "comp_s", "quant_s", "total_s"})
    num_field(sim, k, where + ".sim");

  const Value& wall = field(e, "wall", where);
  for (const char* k : {"forward_s", "backward_s", "optimizer_s", "refresh_s",
                        "evaluation_s", "total_s"})
    if (num_field(wall, k, where + ".wall") < 0.0)
      violation(where + ".wall." + k + " is negative");

  const Value& allocs = field(e, "allocs", where);
  for (const char* k :
       {"forward", "backward", "optimizer", "refresh", "evaluation"})
    num_field(allocs, k, where + ".allocs");
  if (field(allocs, "steady_state", where + ".allocs").type != Value::kBool)
    violation(where + ".allocs.steady_state is not a bool");

  const Value& exchange = field(e, "exchange", where);
  num_field(exchange, "messages", where + ".exchange");
  check_width_object(field(exchange, "wire_bytes", where + ".exchange"),
                     where + ".exchange.wire_bytes");

  const Value& overlap = field(e, "overlap", where);
  check_overlap(field(overlap, "forward", where + ".overlap"),
                where + ".overlap.forward");
  check_overlap(field(overlap, "backward", where + ".overlap"),
                where + ".overlap.backward");

  const Value& pairs = field(e, "pairs", where);
  if (pairs.type != Value::kArray) violation(where + ".pairs is not an array");
  for (std::size_t p = 0; p < pairs.array.size(); ++p) {
    const Value& pair = *pairs.array[p];
    const std::string pw = where + ".pairs[" + std::to_string(p) + "]";
    num_field(pair, "src", pw);
    num_field(pair, "dst", pw);
    num_field(pair, "messages", pw);
    num_field(pair, "bytes", pw);
    check_width_object(field(pair, "by_width", pw), pw + ".by_width");
  }
}

// ---------------------------------------------------------------------------
// adaqp-profile-v1 section
// ---------------------------------------------------------------------------

void check_category_object(const Value& v, const std::string& where) {
  if (v.type != Value::kObject) violation(where + " is not an object");
  for (const char* k : kCategoryKeys)
    if (num_field(v, k, where) < 0.0)
      violation(where + "." + k + " is negative");
}

void check_profile_epoch(const Value& e, int index) {
  const std::string where = "profile.epochs[" + std::to_string(index) + "]";
  num_field(e, "epoch", where);
  const double wall = num_field(e, "attributed_wall_s", where);
  const double cp = num_field(e, "critical_path_s", where);
  const double busy = num_field(e, "busy_s", where);
  num_field(e, "slack_s", where);
  if (cp < 0.0) violation(where + ".critical_path_s is negative");
  // The critical path is the longest chain through the stages, so it can
  // never exceed running every stage serially (+ slop for rounding).
  if (cp > busy * (1.0 + 1e-6) + 1e-9)
    violation(where + ".critical_path_s exceeds busy_s");

  // The attribution must decompose the attributed wall: stage categories
  // plus optimizer, scheduling and serial glue, within float tolerance.
  const Value& attr = field(e, "attribution", where);
  double total = 0.0;
  for (const char* k : kCategoryKeys)
    total += num_field(attr, k, where + ".attribution");
  for (const char* k : {"optimizer_s", "scheduling_s", "serial_s"}) {
    const double v = num_field(attr, k, where + ".attribution");
    if (v < 0.0) violation(where + ".attribution." + k + " is negative");
    total += v;
  }
  const double tol = 1e-6 + 0.01 * wall;
  if (wall > 0.0 && (total < wall - tol || total > wall + tol))
    violation(where + ".attribution does not sum to attributed_wall_s (" +
              std::to_string(total) + " vs " + std::to_string(wall) + ")");

  const Value& what_if = field(e, "what_if", where);
  const double zero_wire = num_field(what_if, "zero_wire_s", where);
  const double inf_thread = num_field(what_if, "infinite_thread_s", where);
  if (zero_wire < 0.0 || inf_thread < 0.0)
    violation(where + ".what_if bounds are negative");
  // Both are lower bounds on the attributed wall (modulo clock jitter, so
  // the attribution tolerance applies).
  if (wall > 0.0 && inf_thread > wall + tol)
    violation(where + ".what_if.infinite_thread_s exceeds attributed wall");
  if (zero_wire > inf_thread * (1.0 + 1e-6) + 1e-9)
    violation(where + ".what_if.zero_wire_s exceeds infinite_thread_s");
  check_category_object(field(what_if, "sensitivity", where + ".what_if"),
                        where + ".what_if.sensitivity");

  const Value& segments = field(e, "segments", where);
  if (segments.type != Value::kArray)
    violation(where + ".segments is not an array");
  for (std::size_t s = 0; s < segments.array.size(); ++s) {
    const Value& seg = *segments.array[s];
    const std::string sw = where + ".segments[" + std::to_string(s) + "]";
    num_field(seg, "layer", sw);
    const Value& dir = field(seg, "direction", sw);
    if (dir.type != Value::kString ||
        (dir.str != "forward" && dir.str != "backward"))
      violation(sw + ".direction is not \"forward\"/\"backward\"");
    const double stages = num_field(seg, "stages", sw);
    const double cp_stages = num_field(seg, "critical_path_stages", sw);
    if (cp_stages > stages)
      violation(sw + ".critical_path_stages exceeds stages");
    const double seg_cp = num_field(seg, "critical_path_s", sw);
    const double seg_busy = num_field(seg, "busy_s", sw);
    num_field(seg, "makespan_s", sw);
    num_field(seg, "slack_s", sw);
    const double seg_zero_wire = num_field(seg, "zero_wire_critical_path_s", sw);
    if (seg_cp > seg_busy * (1.0 + 1e-6) + 1e-9)
      violation(sw + ".critical_path_s exceeds busy_s");
    if (seg_zero_wire > seg_cp * (1.0 + 1e-6) + 1e-9)
      violation(sw + ".zero_wire_critical_path_s exceeds critical_path_s");
    check_overlap(field(seg, "overlap", sw), sw + ".overlap");
    // Σ categories over the segment's critical path == its length.
    const Value& cats = field(seg, "categories", sw);
    check_category_object(cats, sw + ".categories");
    double cat_total = 0.0;
    for (const char* k : kCategoryKeys)
      cat_total += num_field(cats, k, sw + ".categories");
    const double seg_tol = 1e-9 + 1e-6 * seg_cp;
    if (cat_total < seg_cp - seg_tol || cat_total > seg_cp + seg_tol)
      violation(sw + ".categories do not sum to critical_path_s");
    check_category_object(field(seg, "sensitivity", sw), sw + ".sensitivity");
    const Value& path = field(seg, "critical_path", sw);
    if (path.type != Value::kArray)
      violation(sw + ".critical_path is not an array");
    for (const auto& name : path.array)
      if (name->type != Value::kString)
        violation(sw + ".critical_path entries must be strings");
  }

  const Value& pairs = field(e, "pair_exchange_s", where);
  if (pairs.type != Value::kArray)
    violation(where + ".pair_exchange_s is not an array");
  for (std::size_t p = 0; p < pairs.array.size(); ++p) {
    const Value& pair = *pairs.array[p];
    const std::string pw =
        where + ".pair_exchange_s[" + std::to_string(p) + "]";
    num_field(pair, "src", pw);
    num_field(pair, "dst", pw);
    if (num_field(pair, "seconds", pw) < 0.0)
      violation(pw + ".seconds is negative");
  }
}

int check_profile(const Value& profile) {
  const Value& schema = field(profile, "schema", "profile");
  if (schema.type != Value::kString || schema.str != "adaqp-profile-v1")
    violation("profile.schema is not \"adaqp-profile-v1\"");
  if (field(profile, "enabled", "profile").type != Value::kBool)
    violation("profile.enabled is not a bool");
  const Value& epochs = field(profile, "epochs", "profile");
  if (epochs.type != Value::kArray)
    violation("profile.epochs is not an array");
  for (std::size_t i = 0; i < epochs.array.size(); ++i)
    check_profile_epoch(*epochs.array[i], static_cast<int>(i));
  return static_cast<int>(epochs.array.size());
}

struct Summary {
  int epochs = 0;
  double wire_bytes = 0.0;
  double messages = 0.0;
  int profile_epochs = -1;  ///< -1 = no profile section
};

Summary check_report(const Value& root) {
  if (root.type != Value::kObject) violation("top level is not an object");
  const Value& schema = field(root, "schema", "report");
  if (schema.type != Value::kString || schema.str != "adaqp-metrics-v1")
    violation("schema is not \"adaqp-metrics-v1\"");
  for (const char* k : {"method", "model", "dataset", "partition"})
    if (field(root, k, "report").type != Value::kString)
      violation(std::string("report.") + k + " is not a string");
  for (const char* k : {"devices", "layers", "threads", "hardware_threads",
                        "epochs_requested", "epochs_captured",
                        "sim_train_seconds", "assign_seconds",
                        "total_comm_bytes"})
    num_field(root, k, "report");
  for (const char* k : {"async", "low_parallelism_host"})
    if (field(root, k, "report").type != Value::kBool)
      violation(std::string("report.") + k + " is not a bool");
  // The warning flag must be consistent with the recorded host parallelism.
  const double hw = num_field(root, "hardware_threads", "report");
  const double threads = num_field(root, "threads", "report");
  const bool low = field(root, "low_parallelism_host", "report").boolean;
  if (low != (hw > 0 && hw < threads))
    violation("low_parallelism_host inconsistent with hardware_threads");

  const Value& epochs = field(root, "epochs", "report");
  if (epochs.type != Value::kArray) violation("report.epochs is not an array");
  if (epochs.array.empty()) violation("report.epochs is empty");
  if (static_cast<int>(epochs.array.size()) !=
      static_cast<int>(num_field(root, "epochs_captured", "report")))
    violation("epochs_captured does not match epochs array length");

  Summary sum;
  for (std::size_t i = 0; i < epochs.array.size(); ++i) {
    check_epoch(*epochs.array[i], static_cast<int>(i));
    const Value& ex = field(*epochs.array[i], "exchange", "epoch");
    sum.messages += num_field(ex, "messages", "epoch.exchange");
    const Value& wb = field(ex, "wire_bytes", "epoch.exchange");
    for (const char* k : kWidthKeys)
      sum.wire_bytes += num_field(wb, k, "epoch.exchange.wire_bytes");
  }
  sum.epochs = static_cast<int>(epochs.array.size());

  // Profile section is optional (ADAQP_PROFILE=0 omits it) but strictly
  // versioned when present.
  if (const auto it = root.object.find("profile"); it != root.object.end())
    sum.profile_epochs = check_profile(*it->second);

  for (const char* k : {"counters", "gauges", "histograms"})
    if (field(root, k, "report").type != Value::kObject)
      violation(std::string("report.") + k + " is not an object");
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <report.json>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_schema_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  try {
    Parser parser(text);
    const Summary sum = check_report(*parser.parse());
    if (sum.profile_epochs >= 0)
      std::printf(
          "metrics_schema_check: OK %s (%d epochs, %.0f messages, %.0f wire "
          "bytes, profile: %d epochs)\n",
          argv[1], sum.epochs, sum.messages, sum.wire_bytes,
          sum.profile_epochs);
    else
      std::printf(
          "metrics_schema_check: OK %s (%d epochs, %.0f messages, %.0f wire "
          "bytes, no profile section)\n",
          argv[1], sum.epochs, sum.messages, sum.wire_bytes);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics_schema_check: %s: %s\n", argv[1], e.what());
    return 1;
  }
}
