// Validates an ADAQP_METRICS JSON run report against the adaqp-metrics-v1
// schema (src/obs/run_report.h). Self-contained: a minimal recursive-descent
// JSON parser plus structural assertions — no library dependency, so the
// checker cannot inherit a serializer bug from the code it validates.
//
//   ./metrics_schema_check <report.json>
//
// Exit 0 with a one-line summary when the report is schema-valid; exit 1
// with the first violation otherwise. scripts/bench.sh and CI run this on
// every report they produce.
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject } type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("parse error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  ValuePtr value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", Value::kBool, true);
      case 'f': return literal("false", Value::kBool, false);
      case 'n': return literal("null", Value::kNull, false);
      default: return number();
    }
  }

  ValuePtr literal(const char* word, Value::Type type, bool b) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
    auto v = std::make_shared<Value>();
    v->type = type;
    v->boolean = b;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // Reports only ever escape ASCII control chars; keep it simple.
          out += static_cast<char>(code & 0x7f);
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  ValuePtr string_value() {
    auto v = std::make_shared<Value>();
    v->type = Value::kString;
    v->str = parse_string();
    return v;
  }

  ValuePtr number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    auto v = std::make_shared<Value>();
    v->type = Value::kNumber;
    try {
      v->number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      fail("bad number");
    }
    return v;
  }

  ValuePtr array() {
    expect('[');
    auto v = std::make_shared<Value>();
    v->type = Value::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v->array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    return v;
  }

  ValuePtr object() {
    expect('{');
    auto v = std::make_shared<Value>();
    v->type = Value::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v->object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema assertions
// ---------------------------------------------------------------------------

[[noreturn]] void violation(const std::string& what) {
  throw std::runtime_error("schema violation: " + what);
}

const Value& field(const Value& obj, const std::string& key,
                   const std::string& where) {
  if (obj.type != Value::kObject) violation(where + " is not an object");
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) violation(where + " is missing \"" + key + "\"");
  return *it->second;
}

double num_field(const Value& obj, const std::string& key,
                 const std::string& where) {
  const Value& v = field(obj, key, where);
  // Serializer writes null for non-finite doubles; accept it as a number
  // slot (the value is unusable but the shape is valid).
  if (v.type == Value::kNull) return 0.0;
  if (v.type != Value::kNumber)
    violation(where + "." + key + " is not a number");
  return v.number;
}

void require_keys(const Value& obj, std::initializer_list<const char*> keys,
                  const std::string& where) {
  for (const char* k : keys) (void)field(obj, k, where);
}

const char* const kWidthKeys[] = {"b2", "b4", "b8", "b32"};

void check_width_object(const Value& v, const std::string& where) {
  if (v.type != Value::kObject) violation(where + " is not an object");
  for (const char* k : kWidthKeys) num_field(v, k, where);
  if (v.object.size() != 4) violation(where + " must have exactly 4 widths");
}

void check_overlap(const Value& v, const std::string& where) {
  require_keys(v, {"exchange_busy_s", "compute_busy_s", "overlap_s"}, where);
  num_field(v, "exchange_busy_s", where);
  num_field(v, "compute_busy_s", where);
  num_field(v, "overlap_s", where);
  const double eff = num_field(v, "efficiency", where);
  if (eff < 0.0 || eff > 1.0 + 1e-9)
    violation(where + ".efficiency out of [0, 1]: " + std::to_string(eff));
}

void check_epoch(const Value& e, int index) {
  const std::string where = "epochs[" + std::to_string(index) + "]";
  num_field(e, "epoch", where);
  num_field(e, "train_loss", where);

  const Value& sim = field(e, "sim", where);
  for (const char* k : {"comm_s", "comp_s", "quant_s", "total_s"})
    num_field(sim, k, where + ".sim");

  const Value& wall = field(e, "wall", where);
  for (const char* k : {"forward_s", "backward_s", "optimizer_s", "refresh_s",
                        "evaluation_s", "total_s"})
    if (num_field(wall, k, where + ".wall") < 0.0)
      violation(where + ".wall." + k + " is negative");

  const Value& allocs = field(e, "allocs", where);
  for (const char* k :
       {"forward", "backward", "optimizer", "refresh", "evaluation"})
    num_field(allocs, k, where + ".allocs");
  if (field(allocs, "steady_state", where + ".allocs").type != Value::kBool)
    violation(where + ".allocs.steady_state is not a bool");

  const Value& exchange = field(e, "exchange", where);
  num_field(exchange, "messages", where + ".exchange");
  check_width_object(field(exchange, "wire_bytes", where + ".exchange"),
                     where + ".exchange.wire_bytes");

  const Value& overlap = field(e, "overlap", where);
  check_overlap(field(overlap, "forward", where + ".overlap"),
                where + ".overlap.forward");
  check_overlap(field(overlap, "backward", where + ".overlap"),
                where + ".overlap.backward");

  const Value& pairs = field(e, "pairs", where);
  if (pairs.type != Value::kArray) violation(where + ".pairs is not an array");
  for (std::size_t p = 0; p < pairs.array.size(); ++p) {
    const Value& pair = *pairs.array[p];
    const std::string pw = where + ".pairs[" + std::to_string(p) + "]";
    num_field(pair, "src", pw);
    num_field(pair, "dst", pw);
    num_field(pair, "messages", pw);
    num_field(pair, "bytes", pw);
    check_width_object(field(pair, "by_width", pw), pw + ".by_width");
  }
}

struct Summary {
  int epochs = 0;
  double wire_bytes = 0.0;
  double messages = 0.0;
};

Summary check_report(const Value& root) {
  if (root.type != Value::kObject) violation("top level is not an object");
  const Value& schema = field(root, "schema", "report");
  if (schema.type != Value::kString || schema.str != "adaqp-metrics-v1")
    violation("schema is not \"adaqp-metrics-v1\"");
  for (const char* k : {"method", "model", "dataset", "partition"})
    if (field(root, k, "report").type != Value::kString)
      violation(std::string("report.") + k + " is not a string");
  for (const char* k : {"devices", "layers", "threads", "epochs_requested",
                        "epochs_captured", "sim_train_seconds",
                        "assign_seconds", "total_comm_bytes"})
    num_field(root, k, "report");
  if (field(root, "async", "report").type != Value::kBool)
    violation("report.async is not a bool");

  const Value& epochs = field(root, "epochs", "report");
  if (epochs.type != Value::kArray) violation("report.epochs is not an array");
  if (epochs.array.empty()) violation("report.epochs is empty");
  if (static_cast<int>(epochs.array.size()) !=
      static_cast<int>(num_field(root, "epochs_captured", "report")))
    violation("epochs_captured does not match epochs array length");

  Summary sum;
  for (std::size_t i = 0; i < epochs.array.size(); ++i) {
    check_epoch(*epochs.array[i], static_cast<int>(i));
    const Value& ex = field(*epochs.array[i], "exchange", "epoch");
    sum.messages += num_field(ex, "messages", "epoch.exchange");
    const Value& wb = field(ex, "wire_bytes", "epoch.exchange");
    for (const char* k : kWidthKeys)
      sum.wire_bytes += num_field(wb, k, "epoch.exchange.wire_bytes");
  }
  sum.epochs = static_cast<int>(epochs.array.size());

  for (const char* k : {"counters", "gauges", "histograms"})
    if (field(root, k, "report").type != Value::kObject)
      violation(std::string("report.") + k + " is not an object");
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <report.json>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_schema_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  try {
    Parser parser(text);
    const Summary sum = check_report(*parser.parse());
    std::printf(
        "metrics_schema_check: OK %s (%d epochs, %.0f messages, %.0f wire "
        "bytes)\n",
        argv[1], sum.epochs, sum.messages, sum.wire_bytes);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics_schema_check: %s: %s\n", argv[1], e.what());
    return 1;
  }
}
