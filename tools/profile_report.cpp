// Perf-regression gate over adaqp-profile-v1 critical-path profiles
// (docs/OBSERVABILITY.md, "Regression gate").
//
//   ./profile_report <current.json> [baseline.json]
//       [--max-wall-regress-pct P]   (default 50)
//       [--max-share-regress-pp P]   (default 15)
//       [--warn-only]
//
// <current.json> is an ADAQP_METRICS run report carrying a profile section.
// [baseline.json] is either another metrics report or a BENCH_runtime.json
// history (schema adaqp-bench-v2) — in the latter case the newest run whose
// metrics_report entry carries a profile summary becomes the baseline, so
// scripts/bench.sh and CI gate every run against the recorded trajectory
// with no extra bookkeeping.
//
// Prints a top-down attribution of the current profile (epoch-mean over warm
// epochs) with the critical path of its dominant segment, then — when a
// baseline resolves — the comparison: attributed-wall growth in percent and
// per-category share growth in percentage points. Exit 0 within thresholds
// (or nothing to gate), 1 on a regression (suppressed by --warn-only), 2 on
// usage/parse errors.
//
// Dependency-free on purpose (tools/json_mini.h, like metrics_schema_check):
// the gate must not link the library it judges.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "json_mini.h"

namespace {

using jsonmini::Parser;
using jsonmini::Value;
using jsonmini::ValuePtr;

// Attribution keys of the profile section: stage categories first (the
// obs::profile_category_key order), then the non-stage components.
const char* const kAttributionKeys[] = {
    "central_s", "marginal_s", "encode_s",    "wire_s",       "decode_s",
    "fold_s",    "other_s",    "optimizer_s", "scheduling_s", "serial_s"};

/// Epoch-mean profile summary — the unit of comparison. Either computed
/// from a metrics report's profile.epochs or read back from a bench
/// history's profile summary object.
struct ProfileSummary {
  double attributed_wall_s = 0.0;
  std::map<std::string, double> attribution_s;
  double zero_wire_s = 0.0;
  double infinite_thread_s = 0.0;
  double critical_path_s = 0.0;
  int epochs = 0;
  std::string label;  ///< where this summary came from (for messages)
};

double num_or(const Value& obj, const char* key, double fallback) {
  if (obj.type != Value::kObject) return fallback;
  const auto it = obj.object.find(key);
  if (it == obj.object.end() || it->second->type != Value::kNumber)
    return fallback;
  return it->second->number;
}

const Value* member(const Value& obj, const char* key) {
  if (obj.type != Value::kObject) return nullptr;
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : it->second.get();
}

ValuePtr parse_file(const std::string& path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  try {
    Parser parser(text);
    return parser.parse();
  } catch (const std::exception& e) {
    error = path + ": " + e.what();
    return nullptr;
  }
}

/// Mean profile over warm epochs (epoch > 0) of a metrics report; falls
/// back to all epochs when the profile only captured one. Returns
/// epochs == 0 when the report has no usable profile section.
ProfileSummary summarize_metrics_report(const Value& root,
                                        const std::string& label) {
  ProfileSummary sum;
  sum.label = label;
  const Value* profile = member(root, "profile");
  const Value* epochs = profile ? member(*profile, "epochs") : nullptr;
  if (epochs == nullptr || epochs->type != Value::kArray ||
      epochs->array.empty())
    return sum;
  const bool skip_warmup = epochs->array.size() > 1;
  for (const ValuePtr& ep : epochs->array) {
    if (skip_warmup && num_or(*ep, "epoch", 0.0) < 0.5) continue;
    sum.attributed_wall_s += num_or(*ep, "attributed_wall_s", 0.0);
    sum.critical_path_s += num_or(*ep, "critical_path_s", 0.0);
    if (const Value* attr = member(*ep, "attribution"))
      for (const char* k : kAttributionKeys)
        sum.attribution_s[k] += num_or(*attr, k, 0.0);
    if (const Value* what_if = member(*ep, "what_if")) {
      sum.zero_wire_s += num_or(*what_if, "zero_wire_s", 0.0);
      sum.infinite_thread_s += num_or(*what_if, "infinite_thread_s", 0.0);
    }
    ++sum.epochs;
  }
  if (sum.epochs > 1) {
    const double n = sum.epochs;
    sum.attributed_wall_s /= n;
    sum.critical_path_s /= n;
    sum.zero_wire_s /= n;
    sum.infinite_thread_s /= n;
    for (auto& [k, v] : sum.attribution_s) v /= n;
  }
  return sum;
}

/// Read a pre-computed profile summary (the scripts/bench.sh
/// metrics_summary "profile" object) back into a ProfileSummary.
ProfileSummary summary_from_bench(const Value& profile,
                                  const std::string& label) {
  ProfileSummary sum;
  sum.label = label;
  sum.attributed_wall_s = num_or(profile, "mean_attributed_wall_s", 0.0);
  sum.critical_path_s = num_or(profile, "mean_critical_path_s", 0.0);
  sum.zero_wire_s = num_or(profile, "mean_zero_wire_s", 0.0);
  sum.infinite_thread_s = num_or(profile, "mean_infinite_thread_s", 0.0);
  if (const Value* attr = member(profile, "attribution_s"))
    for (const char* k : kAttributionKeys)
      sum.attribution_s[k] = num_or(*attr, k, 0.0);
  sum.epochs = static_cast<int>(num_or(profile, "epochs", 0.0));
  if (sum.epochs == 0 && sum.attributed_wall_s > 0.0) sum.epochs = 1;
  return sum;
}

/// Baseline resolution: a metrics report is summarized directly; a bench
/// history (adaqp-bench-v2) is scanned newest-first for a metrics_report
/// entry whose summary carries a profile block.
ProfileSummary resolve_baseline(const Value& root, const std::string& path) {
  const Value* schema = member(root, "schema");
  if (schema != nullptr && schema->type == Value::kString &&
      schema->str == "adaqp-metrics-v1")
    return summarize_metrics_report(root, path);
  const Value* runs = member(root, "runs");
  if (runs == nullptr || runs->type != Value::kArray) return ProfileSummary{};
  for (std::size_t i = runs->array.size(); i-- > 0;) {
    const Value* entries = member(*runs->array[i], "entries");
    if (entries == nullptr || entries->type != Value::kArray) continue;
    for (const ValuePtr& entry : entries->array) {
      const Value* bench = member(*entry, "bench");
      if (bench == nullptr || bench->type != Value::kString ||
          bench->str != "metrics_report")
        continue;
      const Value* summary = member(*entry, "summary");
      if (summary == nullptr) continue;
      const Value* profile = member(*summary, "profile");
      if (profile == nullptr) continue;
      ProfileSummary sum = summary_from_bench(
          *profile, path + " (run " + std::to_string(i) + ")");
      if (sum.epochs > 0) return sum;
    }
  }
  return ProfileSummary{};
}

void print_summary(const ProfileSummary& sum, const Value& root) {
  std::printf("profile_report: %s\n", sum.label.c_str());
  const Value* method = member(root, "method");
  const double threads = num_or(root, "threads", 0.0);
  const double hw = num_or(root, "hardware_threads", 0.0);
  std::printf("  method=%s threads=%.0f hardware_threads=%.0f%s\n",
              method != nullptr && method->type == Value::kString
                  ? method->str.c_str()
                  : "?",
              threads, hw,
              (hw > 0 && hw < threads)
                  ? "  [LOW-PARALLELISM HOST: overlap figures reflect "
                    "time-slicing]"
                  : "");
  std::printf("  epoch-mean attributed wall: %.6f s over %d epoch(s)\n",
              sum.attributed_wall_s, sum.epochs);
  std::printf("  top-down attribution:\n");
  // Largest-first so the answer to "where does the epoch go?" is line one.
  std::vector<std::pair<double, std::string>> ranked;
  ranked.reserve(sum.attribution_s.size());
  for (const auto& [k, v] : sum.attribution_s) ranked.emplace_back(v, k);
  std::sort(ranked.rbegin(), ranked.rend());
  for (const auto& [v, k] : ranked) {
    if (v <= 0.0) continue;
    std::printf(
        "    %-14s %.6f s  (%5.1f%%)\n", k.c_str(), v,
        sum.attributed_wall_s > 0.0 ? 100.0 * v / sum.attributed_wall_s : 0.0);
  }
  std::printf(
      "  critical path: %.6f s  what-if zero-wire: %.6f s  "
      "what-if infinite-threads: %.6f s\n",
      sum.critical_path_s, sum.zero_wire_s, sum.infinite_thread_s);
  if (sum.attributed_wall_s > 0.0) {
    std::printf(
        "    -> zero wire cost shrinks the epoch by %.1f%%, perfect "
        "scheduling by %.1f%%\n",
        100.0 * (1.0 - sum.zero_wire_s / sum.attributed_wall_s),
        100.0 * (1.0 - sum.infinite_thread_s / sum.attributed_wall_s));
  }

  // Critical path of the dominant segment of the last profiled epoch: the
  // stage chain a perf PR has to shorten first.
  const Value* profile = member(root, "profile");
  const Value* epochs = profile ? member(*profile, "epochs") : nullptr;
  if (epochs == nullptr || epochs->type != Value::kArray ||
      epochs->array.empty())
    return;
  const Value* segments = member(*epochs->array.back(), "segments");
  if (segments == nullptr || segments->type != Value::kArray) return;
  const Value* dominant = nullptr;
  double dominant_cp = -1.0;
  for (const ValuePtr& seg : segments->array) {
    const double cp = num_or(*seg, "critical_path_s", 0.0);
    if (cp > dominant_cp) {
      dominant_cp = cp;
      dominant = seg.get();
    }
  }
  if (dominant == nullptr) return;
  const Value* dir = member(*dominant, "direction");
  std::printf("  dominant segment: layer %.0f %s, critical path %.6f s:\n",
              num_or(*dominant, "layer", -1.0),
              dir != nullptr && dir->type == Value::kString ? dir->str.c_str()
                                                           : "?",
              dominant_cp);
  if (const Value* path = member(*dominant, "critical_path");
      path != nullptr && path->type == Value::kArray) {
    std::printf("    ");
    for (std::size_t i = 0; i < path->array.size(); ++i) {
      if (path->array[i]->type != Value::kString) continue;
      std::printf("%s%s", i == 0 ? "" : " -> ", path->array[i]->str.c_str());
    }
    std::printf("\n");
  }
}

int compare(const ProfileSummary& cur, const ProfileSummary& base,
            double max_wall_pct, double max_share_pp, bool warn_only) {
  std::printf("profile_report: baseline %s (%d epoch(s), wall %.6f s)\n",
              base.label.c_str(), base.epochs, base.attributed_wall_s);
  int regressions = 0;
  if (base.attributed_wall_s > 0.0) {
    const double pct = 100.0 *
                       (cur.attributed_wall_s - base.attributed_wall_s) /
                       base.attributed_wall_s;
    const bool bad = pct > max_wall_pct;
    std::printf("  attributed wall: %+.1f%% (threshold +%.1f%%)%s\n", pct,
                max_wall_pct, bad ? "  REGRESSION" : "");
    regressions += bad ? 1 : 0;
  }
  for (const char* k : kAttributionKeys) {
    const auto cur_it = cur.attribution_s.find(k);
    const auto base_it = base.attribution_s.find(k);
    const double cur_share =
        cur.attributed_wall_s > 0.0 && cur_it != cur.attribution_s.end()
            ? 100.0 * cur_it->second / cur.attributed_wall_s
            : 0.0;
    const double base_share =
        base.attributed_wall_s > 0.0 && base_it != base.attribution_s.end()
            ? 100.0 * base_it->second / base.attributed_wall_s
            : 0.0;
    const double pp = cur_share - base_share;
    if (cur_share < 0.05 && base_share < 0.05) continue;
    const bool bad = pp > max_share_pp;
    std::printf(
        "  %-14s share %5.1f%% -> %5.1f%% (%+.1f pp, threshold +%.1f pp)%s\n",
        k, base_share, cur_share, pp, max_share_pp, bad ? "  REGRESSION" : "");
    regressions += bad ? 1 : 0;
  }
  if (regressions == 0) {
    std::printf("profile_report: PASS (no regression past thresholds)\n");
    return 0;
  }
  std::printf("profile_report: %d regression(s) past thresholds%s\n",
              regressions, warn_only ? " [warn-only]" : "");
  return warn_only ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path;
  std::string baseline_path;
  double max_wall_pct = 50.0;
  double max_share_pp = 15.0;
  bool warn_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "profile_report: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--max-wall-regress-pct") {
      max_wall_pct = std::atof(next());
    } else if (arg == "--max-share-regress-pp") {
      max_share_pp = std::atof(next());
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "profile_report: unknown flag %s\n", arg.c_str());
      return 2;
    } else if (current_path.empty()) {
      current_path = arg;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else {
      std::fprintf(stderr, "profile_report: too many positional args\n");
      return 2;
    }
  }
  if (current_path.empty()) {
    std::fprintf(stderr,
                 "usage: profile_report <current.json> [baseline.json]\n"
                 "  [--max-wall-regress-pct P] [--max-share-regress-pp P]\n"
                 "  [--warn-only]\n");
    return 2;
  }

  std::string error;
  const ValuePtr current = parse_file(current_path, error);
  if (current == nullptr) {
    std::fprintf(stderr, "profile_report: %s\n", error.c_str());
    return 2;
  }
  const ProfileSummary cur = summarize_metrics_report(*current, current_path);
  if (cur.epochs == 0) {
    std::printf(
        "profile_report: %s has no profile section (ADAQP_PROFILE=0 or "
        "pre-profile report) — nothing to gate\n",
        current_path.c_str());
    return 0;
  }
  print_summary(cur, *current);

  if (baseline_path.empty()) return 0;
  const ValuePtr baseline = parse_file(baseline_path, error);
  if (baseline == nullptr) {
    std::fprintf(stderr, "profile_report: %s\n", error.c_str());
    return 2;
  }
  const ProfileSummary base = resolve_baseline(*baseline, baseline_path);
  if (base.epochs == 0) {
    std::printf(
        "profile_report: no profiled baseline in %s — nothing to gate\n",
        baseline_path.c_str());
    return 0;
  }
  return compare(cur, base, max_wall_pct, max_share_pp, warn_only);
}
