// Prints the SIMD ISA the kernel registry dispatches to on this host, plus
// the detected best and the full supported list with --verbose. Honors
// ADAQP_ISA (and exits non-zero with its strict-parse message on a bad
// value), so `ADAQP_ISA=... ./isa_info` answers "what would the library
// actually run?". scripts/bench.sh records the plain output in every
// BENCH_runtime.json run record.
#include <cstring>
#include <exception>
#include <iostream>

#include "simd/isa.h"

int main(int argc, char** argv) {
  using adaqp::simd::Isa;
  try {
    if (argc > 1 && std::strcmp(argv[1], "--verbose") == 0) {
      std::cout << "active:    " << isa_name(adaqp::simd::active_isa()) << "\n"
                << "detected:  " << isa_name(adaqp::simd::detected_isa())
                << "\n"
                << "supported:";
      for (Isa isa : adaqp::simd::supported_isas())
        std::cout << " " << isa_name(isa);
      std::cout << "\n";
    } else {
      std::cout << isa_name(adaqp::simd::active_isa()) << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
