// Project lint — determinism-oriented static checks over src/ and the build
// files (docs/ANALYSIS.md documents each rule). Dependency-free C++ so CI
// can compile and run it with nothing but the toolchain:
//
//   g++ -std=c++20 -O1 tools/lint/lint.cpp -o lint && ./lint <repo-root>
//
// Rules (suppress a single line with `// lint:allow(<rule>)`):
//
//   no-thread-outside-runtime  Thread creation (std::thread ctor,
//                              std::jthread, std::async) is confined to
//                              src/runtime/ — everything else must go
//                              through the deterministic pool. Qualified
//                              uses (std::thread::id,
//                              ::hardware_concurrency) are fine anywhere.
//   no-rand-time-outside-rng   rand()/srand()/drand48/std::random_device
//                              and wall-clock time() are banned outside
//                              src/common/rng.h: all randomness flows
//                              through the seeded Rng streams, and nothing
//                              numeric may depend on the clock.
//   env-via-helpers            getenv/setenv/putenv appear only in
//                              src/common/env.cpp — every configuration
//                              read goes through the strict adaqp::env
//                              helpers (common/env.h).
//   include-hygiene            Headers carry #pragma once; no "../" paths
//                              in includes (all project includes are rooted
//                              at src/).
//   ffp-contract-off           Every src/simd/kernels_*.cpp TU is listed in
//                              a set_source_files_properties() block that
//                              applies ${ADAQP_KERNEL_FLAGS}, and that
//                              variable pins -ffp-contract=off — the
//                              unfused multiply-add rule of the determinism
//                              contract (docs/ARCHITECTURE.md).
//   hot-path-alloc             Files annotated `// lint:hot-path-file`
//                              participate in the zero-allocation
//                              steady-state contract (docs/ARCHITECTURE.md,
//                              "Memory subsystem"): raw new-expressions,
//                              make_unique/make_shared, and std::vector
//                              growth calls (push_back / emplace_back /
//                              resize / reserve / assign) must each carry a
//                              lint:allow(hot-path-alloc) stating why the
//                              allocation is warmup- or build-time only.
//                              New steady-state allocations are caught
//                              dynamically by bench_alloc_steady_state;
//                              this rule makes the reviewer-visible intent
//                              explicit at the line that allocates.
//   sockets-in-transport       Raw socket headers (<sys/socket.h>,
//                              <netinet/...>, <arpa/inet.h>, <poll.h>) and
//                              socket syscalls (socket/connect/bind/listen/
//                              accept4/setsockopt/getsockname/poll) are
//                              confined to src/transport/ — the rest of the
//                              tree stays wire-agnostic behind the
//                              Transport interface (docs/TRANSPORT.md).
//
// Exit status: 0 clean, 1 violations, 2 usage/IO error.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void report(const fs::path& path, std::size_t line, const std::string& rule,
            const std::string& message) {
  g_violations.push_back({path.generic_string(), line, rule, message});
}

bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when `token` occurs in `line` preceded by a non-identifier
/// character (or line start), at any position.
bool has_token(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !is_ident(line[pos - 1])) return true;
    pos += token.size();
  }
  return false;
}

/// Like has_token, but rejects matches immediately followed by "::" — used
/// to allow std::thread::id / ::hardware_concurrency while flagging the
/// constructor.
bool has_token_not_qualified(const std::string& line,
                             const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool boundary_before = pos == 0 || !is_ident(line[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool qualified = line.compare(after, 2, "::") == 0;
    if (boundary_before && !qualified) return true;
    pos = after;
  }
  return false;
}

/// True when `code` contains a new-expression: the keyword `new` with
/// identifier boundaries on both sides (so `renew` / `new_value` never
/// match). Comments and literals are already stripped by the caller.
bool has_new_expr(const std::string& code) {
  std::size_t pos = 0;
  while ((pos = code.find("new", pos)) != std::string::npos) {
    const bool boundary_before = pos == 0 || !is_ident(code[pos - 1]);
    const std::size_t after = pos + 3;
    const bool boundary_after =
        after >= code.size() || !is_ident(code[after]);
    if (boundary_before && boundary_after) return true;
    pos = after;
  }
  return false;
}

bool allows(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("lint:allow(" + rule + ")") != std::string::npos;
}

/// Strip comments and string/char literal contents from one line so token
/// scans never fire on prose or message text. `in_block` tracks a /* ... */
/// spanning lines. Literal delimiters are kept; contents are blanked.
std::string strip_code_line(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          out += quote;
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

void lint_source_file(const fs::path& root, const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    report(path, 0, "io", "cannot open file");
    return;
  }
  const std::string rel = fs::relative(path, root).generic_string();
  const bool in_runtime = rel.rfind("src/runtime/", 0) == 0;
  const bool is_rng = rel == "src/common/rng.h" || rel == "src/common/rng.cpp";
  const bool is_env_impl = rel == "src/common/env.cpp";
  const bool in_transport = rel.rfind("src/transport/", 0) == 0;
  const bool is_header = path.extension() == ".h";

  std::vector<std::string> lines;
  for (std::string raw; std::getline(in, raw);) lines.push_back(raw);

  // The hot-path-alloc rule applies to the whole file once the marker
  // appears anywhere in it (by convention, in the header comment).
  bool hot_path_file = false;
  for (const std::string& l : lines)
    if (l.find("lint:hot-path-file") != std::string::npos) {
      hot_path_file = true;
      break;
    }

  bool saw_pragma_once = false;
  bool in_block = false;
  std::size_t lineno = 0;
  for (const std::string& raw : lines) {
    ++lineno;
    const std::string code = strip_code_line(raw, in_block);

    if (is_header && code.find("#pragma once") != std::string::npos)
      saw_pragma_once = true;
    if (code.find("#include \"../") != std::string::npos &&
        !allows(raw, "include-hygiene"))
      report(path, lineno, "include-hygiene",
             "include paths must be rooted at src/, not relative (\"../\")");

    if (!in_runtime && !allows(raw, "no-thread-outside-runtime")) {
      if (has_token_not_qualified(code, "std::thread") ||
          has_token(code, "std::jthread") || has_token(code, "std::async"))
        report(path, lineno, "no-thread-outside-runtime",
               "thread creation outside src/runtime/ — use the "
               "deterministic pool (runtime/parallel_for.h)");
    }

    if (!is_rng && !allows(raw, "no-rand-time-outside-rng")) {
      if (has_token(code, "rand(") || has_token(code, "srand(") ||
          has_token(code, "drand48") || has_token(code, "random_device") ||
          has_token(code, "time("))
        report(path, lineno, "no-rand-time-outside-rng",
               "nondeterministic randomness/clock seeding outside "
               "src/common/rng.h — draw from a seeded Rng stream");
    }

    if (hot_path_file && !allows(raw, "hot-path-alloc")) {
      if (has_new_expr(code) || has_token(code, "make_unique") ||
          has_token(code, "make_shared") || has_token(code, "push_back") ||
          has_token(code, "emplace_back") || has_token(code, "resize") ||
          has_token(code, "reserve") || has_token(code, "assign"))
        report(path, lineno, "hot-path-alloc",
               "allocation/growth in a hot-path file — pool it (memory/"
               "workspace.h) or annotate warmup-only lines with "
               "lint:allow(hot-path-alloc)");
    }

    if (!in_transport && !allows(raw, "sockets-in-transport")) {
      const bool socket_include =
          code.find("<sys/socket.h>") != std::string::npos ||
          code.find("<netinet/") != std::string::npos ||
          code.find("<arpa/inet.h>") != std::string::npos ||
          code.find("<poll.h>") != std::string::npos;
      if (socket_include || has_token(code, "socket(") ||
          has_token(code, "accept4(") || has_token(code, "setsockopt") ||
          has_token(code, "getsockname") || has_token(code, "poll("))
        report(path, lineno, "sockets-in-transport",
               "raw socket usage outside src/transport/ — go through the "
               "Transport interface (transport/transport.h)");
    }

    if (!is_env_impl && !allows(raw, "env-via-helpers")) {
      if (has_token(code, "getenv") || has_token(code, "setenv") ||
          has_token(code, "putenv"))
        report(path, lineno, "env-via-helpers",
               "environment access outside src/common/env.cpp — use the "
               "strict helpers in common/env.h");
    }
  }

  if (is_header && !saw_pragma_once)
    report(path, 1, "include-hygiene", "header is missing #pragma once");
}

/// ffp-contract-off: parse CMakeLists.txt for the kernel-flag variable and
/// the set_source_files_properties() coverage of every kernel TU on disk.
void lint_kernel_flags(const fs::path& root) {
  const fs::path cmake_path = root / "CMakeLists.txt";
  std::ifstream in(cmake_path);
  if (!in) {
    report(cmake_path, 0, "ffp-contract-off", "cannot open CMakeLists.txt");
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::size_t flags_pos = text.find("set(ADAQP_KERNEL_FLAGS");
  if (flags_pos == std::string::npos ||
      text.find("-ffp-contract=off", flags_pos) == std::string::npos) {
    report(cmake_path, 1, "ffp-contract-off",
           "ADAQP_KERNEL_FLAGS must be defined and pin -ffp-contract=off");
    return;
  }

  // Collect the argument text of every set_source_files_properties(...)
  // call that applies ${ADAQP_KERNEL_FLAGS}.
  std::string covered;
  std::size_t pos = 0;
  while ((pos = text.find("set_source_files_properties", pos)) !=
         std::string::npos) {
    const std::size_t open = text.find('(', pos);
    if (open == std::string::npos) break;
    int depth = 1;
    std::size_t end = open + 1;
    while (end < text.size() && depth > 0) {
      if (text[end] == '(') ++depth;
      if (text[end] == ')') --depth;
      ++end;
    }
    const std::string call = text.substr(open, end - open);
    if (call.find("ADAQP_KERNEL_FLAGS") != std::string::npos) covered += call;
    pos = end;
  }

  for (const auto& entry : fs::directory_iterator(root / "src" / "simd")) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("kernels_", 0) != 0 ||
        entry.path().extension() != ".cpp")
      continue;
    if (covered.find(name) == std::string::npos)
      report(cmake_path, 1, "ffp-contract-off",
             "src/simd/" + name +
                 " is not covered by a set_source_files_properties() block "
                 "applying ${ADAQP_KERNEL_FLAGS}");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  if (!fs::exists(root / "src")) {
    std::cerr << "lint: " << root.generic_string()
              << " does not look like the repo root (no src/)\n";
    return 2;
  }

  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cpp" && ext != ".h") continue;
    lint_source_file(root, entry.path());
  }
  lint_kernel_flags(root);

  for (const Violation& v : g_violations)
    std::cerr << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  if (g_violations.empty()) {
    std::cout << "lint: clean\n";
    return 0;
  }
  std::cerr << "lint: " << g_violations.size() << " violation(s)\n";
  return 1;
}
