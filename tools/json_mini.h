// Minimal JSON value + recursive-descent parser shared by the dependency-
// free report tools (metrics_schema_check, profile_report). Deliberately
// self-contained — no adaqp library dependency, so the tools cannot inherit
// a serializer bug from the code whose output they validate.
//
// Supports the full JSON grammar the report writers emit: objects, arrays,
// strings with ASCII escapes, numbers, true/false/null. parse() throws
// std::runtime_error with a byte position on malformed input.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsonmini {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject } type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("parse error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  ValuePtr value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", Value::kBool, true);
      case 'f': return literal("false", Value::kBool, false);
      case 'n': return literal("null", Value::kNull, false);
      default: return number();
    }
  }

  ValuePtr literal(const char* word, Value::Type type, bool b) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
    auto v = std::make_shared<Value>();
    v->type = type;
    v->boolean = b;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // Reports only ever escape ASCII control chars; keep it simple.
          out += static_cast<char>(code & 0x7f);
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  ValuePtr string_value() {
    auto v = std::make_shared<Value>();
    v->type = Value::kString;
    v->str = parse_string();
    return v;
  }

  ValuePtr number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    auto v = std::make_shared<Value>();
    v->type = Value::kNumber;
    try {
      v->number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      fail("bad number");
    }
    return v;
  }

  ValuePtr array() {
    expect('[');
    auto v = std::make_shared<Value>();
    v->type = Value::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v->array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    return v;
  }

  ValuePtr object() {
    expect('{');
    auto v = std::make_shared<Value>();
    v->type = Value::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v->object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace jsonmini
