// Quantized boundary exchange over the simulated cluster.
//
// The forward exchange ships every device's boundary (send-map) rows to the
// peers that mirror them as halo; the backward exchange ships halo-row
// gradient contributions back to their owners, accumulates them there, and
// zeroes the halo rows (they were consumed). Both directions push every
// message through the real wire codec (quant/message_codec) at the
// per-message bit-widths of an ExchangePlan, so numerics are bit-exact with
// what a physical cluster would compute, while *time* is accounted by the
// ClusterSpec cost model under the paper's ring all2all schedule (Fig. 8).
//
// These synchronous entry points are thin submit-then-wait wrappers over
// pipeline::AsyncExchange — there is exactly one exchange implementation in
// the library. Callers that want the exchange in flight while they compute
// use the split form directly: the trainer overlaps each AdaQP layer's
// backward exchange with the central-row adjoint (gated per stage via
// pipeline::BackwardStageDeps), and keeps PipeGCN's deferred exchanges in
// flight across whole iteration boundaries. See
// src/pipeline/async_exchange.h and docs/ARCHITECTURE.md.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "comm/cluster.h"
#include "dist/dist_graph.h"
#include "obs/metrics.h"

namespace adaqp {

class Rng;

/// Per-message bit-width choices for one exchange of one layer/direction.
/// Forward plans align bits[d][p] with devices[d].send_local[p]; backward
/// plans align bits[d][p] with devices[d].recv_local[p] (the halo rows d
/// sends back to owner p). Entries are in {2, 4, 8, 32}.
struct ExchangePlan {
  std::vector<std::vector<std::vector<int>>> bits;

  /// Every forward message at one width. Throws std::runtime_error unless
  /// `bit_width` is in {2, 4, 8, 32}.
  static ExchangePlan uniform_forward(const DistGraph& dist, int bit_width);
  /// Every backward message at one width.
  static ExchangePlan uniform_backward(const DistGraph& dist, int bit_width);
};

/// Traffic and time accounting of one exchange.
struct ExchangeStats {
  /// Wire bytes device d sent to device p (codec output size).
  std::vector<std::vector<std::size_t>> pair_bytes;
  /// pair_bytes split by bit-width tag (index = obs::width_index(bits):
  /// 2, 4, 8, 32). Counts per-row tag + metadata + payload bytes; the
  /// 12-byte block header appears only in the pair_bytes total.
  std::vector<std::vector<std::array<std::uint64_t, obs::kNumWidths>>>
      pair_width_bytes;
  /// Non-empty pair blocks moved by this exchange.
  std::uint64_t messages = 0;
  /// Straggler-synchronized ring-all2all time for pair_bytes.
  double comm_seconds = 0.0;
  /// Per-device quantize / de-quantize kernel time (zero for 32-bit
  /// passthrough messages).
  std::vector<double> quant_seconds;
  std::vector<double> dequant_seconds;

  std::size_t total_bytes() const;
  double max_quant_seconds() const;
  double max_dequant_seconds() const;
};

/// Forward halo exchange: for every pair (d, p), encode the send-map rows of
/// locals[d] at plan.bits[d][p] and decode them into the aligned halo rows
/// of locals[p]. Owned rows are never written.
///
/// Both exchanges advance each rngs[d] by exactly one draw per call, from
/// which private per-pair stochastic-rounding streams are derived — the
/// mechanism that lets pipeline::AsyncExchange run messages concurrently
/// with compute while staying bit-identical to this synchronous form (both
/// are the same per-pair stages; see src/pipeline/async_exchange.h).
ExchangeStats exchange_halo_forward(const DistGraph& dist,
                                    std::vector<Matrix>& locals,
                                    const ExchangePlan& plan,
                                    const ClusterSpec& cluster,
                                    std::vector<Rng>& rngs);

/// Backward halo exchange: for every pair (d, p), encode the halo rows
/// grads[d][recv_local[p]] at plan.bits[d][p] and *accumulate* them into the
/// owner's rows grads[p][send_local[d]]; afterwards every halo row is zeroed
/// (its contribution has been shipped).
ExchangeStats exchange_halo_backward(const DistGraph& dist,
                                     std::vector<Matrix>& grads,
                                     const ExchangePlan& plan,
                                     const ClusterSpec& cluster,
                                     std::vector<Rng>& rngs);

/// Ring allreduce over same-shaped per-device matrices: every matrix is
/// replaced by the elementwise sum. Returns the simulated time (0 for a
/// single device); numerics are exact (no quantization on model gradients).
double allreduce_sum(std::vector<Matrix>& per_device,
                     const ClusterSpec& cluster);

}  // namespace adaqp
