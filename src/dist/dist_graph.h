// Distributed graph views — the library's substitute for DGL's partitioned
// graph store plus the halo bookkeeping DistDGL/AdaQP keep per worker.
//
// build_dist_graph() turns one global Graph plus a partition assignment into
// per-device views. Each DeviceGraph renumbers its nodes locally: the owned
// nodes come first (ascending global id), followed by the halo — the remote
// one-hop neighborhood, also ascending by global id. The local CSR spans
// owned + halo rows; halo rows carry no edges (their neighborhoods live on
// their owner), so every aggregation kernel reads exactly the rows a real
// distributed worker would hold after a boundary exchange.
//
// The owned set is further split into *central* nodes (no remote neighbor —
// computable before any communication finishes) and *marginal* nodes (at
// least one halo neighbor). That split is what the paper's
// computation-communication parallelization (§4.1) and the trainers'
// overlap accounting key off.
//
// Send/receive maps are aligned per device pair: devices[d].send_local[p]
// and devices[p].recv_local[d] reference the same global nodes in the same
// (global-ascending) order, so a sender can encode rows straight out of its
// local matrix and the receiver can decode them straight into its own.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioner.h"
#include "tensor/matrix.h"

namespace adaqp {

/// One device's local view of the partitioned graph.
struct DeviceGraph {
  int device = 0;
  std::size_t num_owned = 0;  ///< nodes assigned to this device
  std::size_t num_halo = 0;   ///< remote one-hop neighbors mirrored here

  /// Local id -> global id; owned rows first, then halo rows, each segment
  /// ascending by global id.
  std::vector<NodeId> global_of_local;
  /// Global degree per local id (GCN normalization must use global degrees
  /// so distributed results stay bit-comparable to centralized training).
  std::vector<std::uint32_t> global_degree;

  /// Owned local ids with no halo neighbor (paper: central nodes).
  std::vector<NodeId> central_nodes;
  /// Owned local ids with at least one halo neighbor (marginal nodes).
  std::vector<NodeId> marginal_nodes;

  // Precomputed index views (filled by build_dist_graph) so hot paths — the
  // async pipeline stages in particular — never rebuild row-id vectors per
  // layer per epoch.

  /// The identity list [0, num_owned) — the row set of a full owned-row
  /// kernel call.
  std::vector<NodeId> owned_rows;
  /// Union of all send maps, ascending and deduplicated (the device's
  /// boundary rows; SANCUS-style broadcasts snapshot exactly these).
  std::vector<NodeId> boundary_rows;
  /// Peers p with a nonempty devices[p].send_local[device] — the senders
  /// whose forward messages must land before this device's marginal rows
  /// can be computed.
  std::vector<int> halo_senders;
  /// Peers p with a nonempty send_local[p] (this device's receivers).
  std::vector<int> send_targets;

  /// send_local[p]: owned local ids whose rows device p needs (it mirrors
  /// them as halo), ascending. Aligned with devices[p].recv_local[device].
  std::vector<std::vector<NodeId>> send_local;
  /// recv_local[p]: halo local ids owned by device p, ascending. Aligned
  /// with devices[p].send_local[device].
  std::vector<std::vector<NodeId>> recv_local;

  /// Local CSR over owned + halo rows (halo rows are empty).
  std::vector<EdgeIdx> offsets;
  std::vector<NodeId> neighbor_ids;

  /// Transpose CSR: for each local node u, the *owned* rows v with
  /// u ∈ neighbors(v), ascending by v. This is the gather form of the
  /// aggregation adjoint — each destination row's contributions arrive in
  /// the same (source-ascending) order the scatter form produces, which
  /// lets the adjoint parallelize over destination rows with disjoint
  /// writes while staying bit-identical to the serial kernel.
  std::vector<EdgeIdx> in_offsets;
  std::vector<NodeId> in_sources;

  std::size_t num_local() const { return num_owned + num_halo; }

  /// Span views of the precomputed row lists (the preferred way to name a
  /// row set; no per-call vector builds).
  std::span<const NodeId> owned_span() const { return owned_rows; }
  /// owned_span() when the precomputed list is populated; otherwise fill
  /// `scratch` with the identity list and view that — the single fallback
  /// for hand-built DeviceGraphs that skipped build_dist_graph.
  std::span<const NodeId> owned_span_or(std::vector<NodeId>& scratch) const {
    if (owned_rows.size() == num_owned) return owned_rows;
    scratch.resize(num_owned);
    for (std::size_t i = 0; i < num_owned; ++i)
      scratch[i] = static_cast<NodeId>(i);
    return scratch;
  }
  std::span<const NodeId> central_span() const { return central_nodes; }
  std::span<const NodeId> marginal_span() const { return marginal_nodes; }
  std::span<const NodeId> boundary_span() const { return boundary_rows; }

  std::size_t degree(NodeId v) const {
    return static_cast<std::size_t>(offsets[v + 1] - offsets[v]);
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbor_ids.data() + offsets[v], degree(v)};
  }

  /// Owned in-neighbors of local node u (sources of the adjoint), ascending.
  std::span<const NodeId> in_neighbors(NodeId u) const {
    return {in_sources.data() + in_offsets[u],
            static_cast<std::size_t>(in_offsets[u + 1] - in_offsets[u])};
  }

  /// True when the transpose CSR has been built (build_dist_graph does).
  bool has_transpose() const {
    return in_offsets.size() == num_local() + 1;
  }

  /// Total CSR entries of the given local rows.
  std::size_t edges_of(std::span<const NodeId> rows) const {
    std::size_t acc = 0;
    for (NodeId v : rows) acc += degree(v);
    return acc;
  }

  /// All CSR entries on this device (== entries of all owned rows).
  std::size_t total_edges() const {
    return offsets.empty() ? 0 : static_cast<std::size_t>(offsets.back());
  }
};

/// The full distributed view: one DeviceGraph per partition, plus the
/// partition itself (the assigner needs global ownership lookups).
struct DistGraph {
  std::vector<DeviceGraph> devices;
  PartitionResult partition;

  int num_devices() const { return static_cast<int>(devices.size()); }
  std::size_t num_global_nodes() const { return partition.part_of.size(); }

  /// Σ halo nodes / Σ owned nodes — the paper's remote-neighbor ratio
  /// (Table 1), the fraction of one-hop state that must cross devices.
  double remote_neighbor_ratio() const;
};

/// Build per-device views from a global graph and a partition assignment.
/// `part.part_of` must assign every node to a part in [0, part.num_parts).
DistGraph build_dist_graph(const Graph& g, const PartitionResult& part);

/// Split a global (num_nodes x dim) row matrix into per-device local
/// matrices (num_local x dim): owned and halo rows are filled from the
/// corresponding global rows.
std::vector<Matrix> scatter_to_devices(const Matrix& global,
                                       const DistGraph& dist);

/// Reassemble a global matrix from the devices' *owned* rows (halo rows are
/// replicas and are ignored).
Matrix gather_from_devices(const std::vector<Matrix>& locals,
                           const DistGraph& dist, std::size_t cols);

}  // namespace adaqp
