#include "dist/dist_graph.h"

#include <algorithm>

#include "common/check.h"

namespace adaqp {

double DistGraph::remote_neighbor_ratio() const {
  std::size_t halo = 0, owned = 0;
  for (const auto& dev : devices) {
    halo += dev.num_halo;
    owned += dev.num_owned;
  }
  return owned == 0 ? 0.0
                    : static_cast<double>(halo) / static_cast<double>(owned);
}

DistGraph build_dist_graph(const Graph& g, const PartitionResult& part) {
  const std::size_t n = g.num_nodes();
  const int k = part.num_parts;
  ADAQP_CHECK_MSG(k >= 1, "partition must have at least one part");
  ADAQP_CHECK_MSG(part.part_of.size() == n,
                  "part_of size " << part.part_of.size() << " != num nodes "
                                  << n);
  for (int p : part.part_of) ADAQP_CHECK(p >= 0 && p < k);

  DistGraph dist;
  dist.partition = part;
  dist.devices.resize(k);

  // Owned lists come out ascending by global id because v runs in order.
  std::vector<std::vector<NodeId>> owned(k);
  for (std::size_t v = 0; v < n; ++v)
    owned[part.part_of[v]].push_back(static_cast<NodeId>(v));

  constexpr NodeId kNoLocal = static_cast<NodeId>(-1);
  std::vector<NodeId> local_of_global(n, kNoLocal);

  for (int d = 0; d < k; ++d) {
    DeviceGraph& dev = dist.devices[d];
    dev.device = d;
    dev.num_owned = owned[d].size();
    dev.global_of_local = owned[d];

    // Halo = remote one-hop neighborhood of the owned set, global-ascending.
    std::vector<NodeId> halo;
    for (NodeId v : owned[d])
      for (NodeId u : g.neighbors(v))
        if (part.part_of[u] != d) halo.push_back(u);
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
    dev.num_halo = halo.size();
    dev.global_of_local.insert(dev.global_of_local.end(), halo.begin(),
                               halo.end());

    for (std::size_t i = 0; i < dev.num_local(); ++i)
      local_of_global[dev.global_of_local[i]] = static_cast<NodeId>(i);

    dev.global_degree.resize(dev.num_local());
    for (std::size_t i = 0; i < dev.num_local(); ++i)
      dev.global_degree[i] =
          static_cast<std::uint32_t>(g.degree(dev.global_of_local[i]));

    // Local CSR: owned rows carry their full global neighborhood (remote
    // neighbors resolve to halo locals); halo rows are empty.
    dev.offsets.assign(dev.num_local() + 1, 0);
    std::size_t entries = 0;
    for (std::size_t i = 0; i < dev.num_owned; ++i)
      entries += g.degree(dev.global_of_local[i]);
    dev.neighbor_ids.reserve(entries);
    for (std::size_t i = 0; i < dev.num_owned; ++i) {
      for (NodeId u : g.neighbors(dev.global_of_local[i]))
        dev.neighbor_ids.push_back(local_of_global[u]);
      dev.offsets[i + 1] = static_cast<EdgeIdx>(dev.neighbor_ids.size());
    }
    for (std::size_t i = dev.num_owned; i < dev.num_local(); ++i)
      dev.offsets[i + 1] = dev.offsets[i];

    // Transpose CSR for the gather-form aggregation adjoint. Filling by
    // ascending owned row v keeps every destination's source list ascending,
    // matching the scatter kernel's per-destination accumulation order.
    dev.in_offsets.assign(dev.num_local() + 1, 0);
    for (NodeId u : dev.neighbor_ids) dev.in_offsets[u + 1]++;
    for (std::size_t u = 0; u < dev.num_local(); ++u)
      dev.in_offsets[u + 1] += dev.in_offsets[u];
    dev.in_sources.resize(dev.neighbor_ids.size());
    std::vector<EdgeIdx> cursor(dev.in_offsets.begin(),
                                dev.in_offsets.end() - 1);
    for (std::size_t v = 0; v < dev.num_owned; ++v)
      for (NodeId u : dev.neighbors(static_cast<NodeId>(v)))
        dev.in_sources[cursor[u]++] = static_cast<NodeId>(v);

    // Central/marginal split and send maps in one sweep over owned rows.
    dev.send_local.assign(k, {});
    dev.recv_local.assign(k, {});
    std::vector<int> last_sent_to(k, -1);
    for (std::size_t i = 0; i < dev.num_owned; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      bool has_remote = false;
      for (NodeId u : dev.neighbors(v)) {
        if (u < dev.num_owned) continue;
        has_remote = true;
        const int p = part.part_of[dev.global_of_local[u]];
        if (last_sent_to[p] != static_cast<int>(i)) {
          last_sent_to[p] = static_cast<int>(i);
          dev.send_local[p].push_back(v);
        }
      }
      (has_remote ? dev.marginal_nodes : dev.central_nodes).push_back(v);
    }
    // Halo locals are global-ascending, so per-owner receive lists inherit
    // that order — exactly matching the owner's (also ascending) send list.
    for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h)
      dev.recv_local[part.part_of[dev.global_of_local[h]]].push_back(
          static_cast<NodeId>(h));

    // Precomputed index views: owned identity, deduplicated boundary union,
    // and peer lists (kept sorted by construction).
    dev.owned_rows.resize(dev.num_owned);
    for (std::size_t i = 0; i < dev.num_owned; ++i)
      dev.owned_rows[i] = static_cast<NodeId>(i);
    for (int p = 0; p < k; ++p) {
      if (!dev.send_local[p].empty()) dev.send_targets.push_back(p);
      dev.boundary_rows.insert(dev.boundary_rows.end(),
                               dev.send_local[p].begin(),
                               dev.send_local[p].end());
    }
    std::sort(dev.boundary_rows.begin(), dev.boundary_rows.end());
    dev.boundary_rows.erase(
        std::unique(dev.boundary_rows.begin(), dev.boundary_rows.end()),
        dev.boundary_rows.end());

    // Reset the shared scratch map for the next device.
    for (NodeId gid : dev.global_of_local) local_of_global[gid] = kNoLocal;
  }
  // Sender lists need every device's send maps, so fill them last.
  for (auto& dev : dist.devices)
    for (int p = 0; p < k; ++p)
      if (p != dev.device && !dist.devices[p].send_local[dev.device].empty())
        dev.halo_senders.push_back(p);
  return dist;
}

std::vector<Matrix> scatter_to_devices(const Matrix& global,
                                       const DistGraph& dist) {
  ADAQP_CHECK(global.rows() == dist.num_global_nodes());
  std::vector<Matrix> locals;
  locals.reserve(dist.devices.size());
  for (const auto& dev : dist.devices) {
    Matrix m(dev.num_local(), global.cols());
    for (std::size_t i = 0; i < dev.num_local(); ++i) {
      const auto src = global.row(dev.global_of_local[i]);
      std::copy(src.begin(), src.end(), m.row(i).begin());
    }
    locals.push_back(std::move(m));
  }
  return locals;
}

Matrix gather_from_devices(const std::vector<Matrix>& locals,
                           const DistGraph& dist, std::size_t cols) {
  ADAQP_CHECK(locals.size() == dist.devices.size());
  Matrix global(dist.num_global_nodes(), cols);
  for (const auto& dev : dist.devices) {
    const Matrix& m = locals[dev.device];
    ADAQP_CHECK(m.rows() == dev.num_local() && m.cols() == cols);
    for (std::size_t i = 0; i < dev.num_owned; ++i) {
      const auto src = m.row(i);
      std::copy(src.begin(), src.end(),
                global.row(dev.global_of_local[i]).begin());
    }
  }
  return global;
}

}  // namespace adaqp
