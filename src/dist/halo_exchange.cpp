#include "dist/halo_exchange.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "pipeline/async_exchange.h"
#include "quant/quantize.h"
#include "runtime/thread_pool.h"

namespace adaqp {

namespace {

ExchangePlan make_uniform_plan(const DistGraph& dist, int bit_width,
                               bool forward) {
  ADAQP_CHECK_MSG(is_valid_bit_width(bit_width),
                  "bit-width " << bit_width << " not in {2,4,8,32}");
  const int n = dist.num_devices();
  ExchangePlan plan;
  plan.bits.resize(n);
  for (int d = 0; d < n; ++d) {
    const DeviceGraph& dev = dist.devices[d];
    plan.bits[d].resize(n);
    for (int p = 0; p < n; ++p) {
      const auto& list = forward ? dev.send_local[p] : dev.recv_local[p];
      plan.bits[d][p].assign(list.size(), bit_width);
    }
  }
  return plan;
}

/// The synchronous entry points execute the same per-pair stages as the
/// async API. With more than one pool thread the stages run concurrently
/// (the caller helps drain them, so this is the PR-2-style parallel
/// exchange); from inside a pool task or on a 1-thread pool the serial
/// reference schedule runs inline. Numerics are identical either way.
bool parallel_exchange_ok() {
  return !ThreadPool::in_worker() && num_threads() > 1;
}

}  // namespace

ExchangePlan ExchangePlan::uniform_forward(const DistGraph& dist,
                                           int bit_width) {
  return make_uniform_plan(dist, bit_width, /*forward=*/true);
}

ExchangePlan ExchangePlan::uniform_backward(const DistGraph& dist,
                                            int bit_width) {
  return make_uniform_plan(dist, bit_width, /*forward=*/false);
}

std::size_t ExchangeStats::total_bytes() const {
  std::size_t acc = 0;
  for (const auto& row : pair_bytes)
    for (std::size_t b : row) acc += b;
  return acc;
}

double ExchangeStats::max_quant_seconds() const {
  return quant_seconds.empty()
             ? 0.0
             : *std::max_element(quant_seconds.begin(), quant_seconds.end());
}

double ExchangeStats::max_dequant_seconds() const {
  return dequant_seconds.empty()
             ? 0.0
             : *std::max_element(dequant_seconds.begin(),
                                 dequant_seconds.end());
}

ExchangeStats exchange_halo_forward(const DistGraph& dist,
                                    std::vector<Matrix>& locals,
                                    const ExchangePlan& plan,
                                    const ClusterSpec& cluster,
                                    std::vector<Rng>& rngs) {
  pipeline::AsyncExchange exchange(dist, cluster);
  exchange.submit_forward(locals, plan, rngs, parallel_exchange_ok());
  return exchange.wait();
}

ExchangeStats exchange_halo_backward(const DistGraph& dist,
                                     std::vector<Matrix>& grads,
                                     const ExchangePlan& plan,
                                     const ClusterSpec& cluster,
                                     std::vector<Rng>& rngs) {
  pipeline::AsyncExchange exchange(dist, cluster);
  exchange.submit_backward(grads, plan, rngs, parallel_exchange_ok());
  return exchange.wait();
}

double allreduce_sum(std::vector<Matrix>& per_device,
                     const ClusterSpec& cluster) {
  const int n = static_cast<int>(per_device.size());
  ADAQP_CHECK(n >= 1 && cluster.num_devices() == n);
  if (n == 1) return 0.0;

  Matrix sum = per_device[0];
  for (int d = 1; d < n; ++d) {
    ADAQP_CHECK(per_device[d].same_shape(sum));
    sum.add_inplace(per_device[d]);
  }
  for (auto& m : per_device) m = sum;

  // Ring allreduce: 2(n-1) rounds of bytes/n chunks, straggler-paced by the
  // slowest ring link.
  const std::size_t bytes = sum.size() * sizeof(float);
  double worst_theta = 0.0, worst_gamma = 0.0;
  for (int d = 0; d < n; ++d) {
    const LinkParams l = cluster.link(d, (d + 1) % n);
    worst_theta = std::max(worst_theta, l.theta);
    worst_gamma = std::max(worst_gamma, l.gamma);
  }
  const double chunk = static_cast<double>(bytes) / n;
  return 2.0 * (n - 1) * (worst_theta * chunk + worst_gamma);
}

}  // namespace adaqp
