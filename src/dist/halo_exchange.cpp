#include "dist/halo_exchange.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "quant/message_codec.h"
#include "quant/quantize.h"
#include "runtime/parallel_for.h"

namespace adaqp {

namespace {

ExchangePlan make_uniform_plan(const DistGraph& dist, int bit_width,
                               bool forward) {
  ADAQP_CHECK_MSG(is_valid_bit_width(bit_width),
                  "bit-width " << bit_width << " not in {2,4,8,32}");
  const int n = dist.num_devices();
  ExchangePlan plan;
  plan.bits.resize(n);
  for (int d = 0; d < n; ++d) {
    const DeviceGraph& dev = dist.devices[d];
    plan.bits[d].resize(n);
    for (int p = 0; p < n; ++p) {
      const auto& list = forward ? dev.send_local[p] : dev.recv_local[p];
      plan.bits[d][p].assign(list.size(), bit_width);
    }
  }
  return plan;
}

void check_plan_shape(const DistGraph& dist, const ExchangePlan& plan,
                      bool forward) {
  const int n = dist.num_devices();
  ADAQP_CHECK_MSG(static_cast<int>(plan.bits.size()) == n,
                  "plan device arity mismatch");
  for (int d = 0; d < n; ++d) {
    ADAQP_CHECK(static_cast<int>(plan.bits[d].size()) == n);
    for (int p = 0; p < n; ++p) {
      const auto& list = forward ? dist.devices[d].send_local[p]
                                 : dist.devices[d].recv_local[p];
      ADAQP_CHECK_MSG(plan.bits[d][p].size() == list.size(),
                      "plan bits[" << d << "][" << p << "] arity "
                                   << plan.bits[d][p].size() << " != "
                                   << list.size());
    }
  }
}

ExchangeStats make_stats(int n) {
  ExchangeStats stats;
  stats.pair_bytes.assign(n, std::vector<std::size_t>(n, 0));
  stats.quant_seconds.assign(n, 0.0);
  stats.dequant_seconds.assign(n, 0.0);
  return stats;
}

/// Full-precision bytes of the messages actually quantized (bits < 32);
/// 32-bit passthrough costs no kernel time.
std::size_t quantized_fp_bytes(std::span<const int> bits, std::size_t dim) {
  std::size_t rows = 0;
  for (int b : bits)
    if (b != 32) ++rows;
  return rows * dim * sizeof(float);
}

void finalize_comm_time(const DistGraph& dist, const ClusterSpec& cluster,
                        ExchangeStats& stats) {
  const int n = dist.num_devices();
  if (n > 1)
    stats.comm_seconds =
        RingAllToAll(n).total_seconds(cluster, stats.pair_bytes);
}

/// Fold per-pair full-precision byte counts into per-device quantize /
/// de-quantize kernel times. Runs serially after the parallel encode so the
/// receiver-indexed dequant accumulation stays in a fixed (d, p) order.
void accumulate_kernel_times(
    const ClusterSpec& cluster,
    const std::vector<std::vector<std::size_t>>& fp_bytes,
    ExchangeStats& stats) {
  const int n = static_cast<int>(fp_bytes.size());
  for (int d = 0; d < n; ++d)
    for (int p = 0; p < n; ++p) {
      if (fp_bytes[d][p] == 0) continue;
      const double t = cluster.quant_seconds(fp_bytes[d][p]);
      stats.quant_seconds[d] += t;
      stats.dequant_seconds[p] += t;
    }
}

}  // namespace

ExchangePlan ExchangePlan::uniform_forward(const DistGraph& dist,
                                           int bit_width) {
  return make_uniform_plan(dist, bit_width, /*forward=*/true);
}

ExchangePlan ExchangePlan::uniform_backward(const DistGraph& dist,
                                            int bit_width) {
  return make_uniform_plan(dist, bit_width, /*forward=*/false);
}

std::size_t ExchangeStats::total_bytes() const {
  std::size_t acc = 0;
  for (const auto& row : pair_bytes)
    for (std::size_t b : row) acc += b;
  return acc;
}

double ExchangeStats::max_quant_seconds() const {
  return quant_seconds.empty()
             ? 0.0
             : *std::max_element(quant_seconds.begin(), quant_seconds.end());
}

double ExchangeStats::max_dequant_seconds() const {
  return dequant_seconds.empty()
             ? 0.0
             : *std::max_element(dequant_seconds.begin(),
                                 dequant_seconds.end());
}

ExchangeStats exchange_halo_forward(const DistGraph& dist,
                                    std::vector<Matrix>& locals,
                                    const ExchangePlan& plan,
                                    const ClusterSpec& cluster,
                                    std::vector<Rng>& rngs) {
  const int n = dist.num_devices();
  ADAQP_CHECK(static_cast<int>(locals.size()) == n);
  ADAQP_CHECK(static_cast<int>(rngs.size()) == n);
  ADAQP_CHECK(cluster.num_devices() == n);
  check_plan_shape(dist, plan, /*forward=*/true);

  ExchangeStats stats = make_stats(n);
  std::vector<std::vector<std::size_t>> fp_bytes(
      n, std::vector<std::size_t>(n, 0));
  // One task per sender: encodes read only the sender's owned rows (with its
  // private Rng, advanced in the same p-ascending order as a serial sweep)
  // and decodes write only the halo rows each receiver dedicates to that
  // sender — all writes are disjoint, so any interleaving is bit-identical.
  parallel_for_each(static_cast<std::size_t>(n), [&](std::size_t di) {
    const int d = static_cast<int>(di);
    const DeviceGraph& dev = dist.devices[d];
    ADAQP_CHECK(locals[d].rows() == dev.num_local());
    for (int p = 0; p < n; ++p) {
      if (p == d || dev.send_local[p].empty()) continue;
      const auto& bits = plan.bits[d][p];
      const EncodedBlock block =
          encode_rows(locals[d], dev.send_local[p], bits, rngs[d]);
      stats.pair_bytes[d][p] = block.wire_bytes();
      fp_bytes[d][p] = quantized_fp_bytes(bits, locals[d].cols());
      decode_rows(block, locals[p], dist.devices[p].recv_local[d]);
    }
  });
  accumulate_kernel_times(cluster, fp_bytes, stats);
  finalize_comm_time(dist, cluster, stats);
  return stats;
}

ExchangeStats exchange_halo_backward(const DistGraph& dist,
                                     std::vector<Matrix>& grads,
                                     const ExchangePlan& plan,
                                     const ClusterSpec& cluster,
                                     std::vector<Rng>& rngs) {
  const int n = dist.num_devices();
  ADAQP_CHECK(static_cast<int>(grads.size()) == n);
  ADAQP_CHECK(static_cast<int>(rngs.size()) == n);
  ADAQP_CHECK(cluster.num_devices() == n);
  check_plan_shape(dist, plan, /*forward=*/false);

  ExchangeStats stats = make_stats(n);
  std::vector<std::vector<std::size_t>> fp_bytes(
      n, std::vector<std::size_t>(n, 0));
  // Two phases so the accumulation into each owner stays deterministic.
  //
  // Phase 1 — per-sender encode: reads only the sender's halo rows (owners
  // accumulate only into owned rows, so there is no read/write overlap) with
  // its private Rng advanced in the serial p-ascending order.
  std::vector<std::vector<EncodedBlock>> blocks(n,
                                                std::vector<EncodedBlock>(n));
  parallel_for_each(static_cast<std::size_t>(n), [&](std::size_t di) {
    const int d = static_cast<int>(di);
    const DeviceGraph& dev = dist.devices[d];
    ADAQP_CHECK(grads[d].rows() == dev.num_local());
    for (int p = 0; p < n; ++p) {
      if (p == d || dev.recv_local[p].empty()) continue;
      const auto& bits = plan.bits[d][p];
      blocks[d][p] = encode_rows(grads[d], dev.recv_local[p], bits, rngs[d]);
      stats.pair_bytes[d][p] = blocks[d][p].wire_bytes();
      fp_bytes[d][p] = quantized_fp_bytes(bits, grads[d].cols());
    }
  });
  // Phase 2 — per-destination decode/accumulate: task p owns grads[p]
  // outright and folds in senders in ascending order, the exact accumulation
  // order of a serial d-outer sweep.
  parallel_for_each(static_cast<std::size_t>(n), [&](std::size_t pi) {
    const int p = static_cast<int>(pi);
    for (int d = 0; d < n; ++d) {
      if (d == p || blocks[d][p].bytes.empty()) continue;
      const auto& owner_rows = dist.devices[p].send_local[d];
      Matrix decoded(owner_rows.size(), grads[p].cols());
      std::vector<NodeId> seq(owner_rows.size());
      for (std::size_t i = 0; i < seq.size(); ++i)
        seq[i] = static_cast<NodeId>(i);
      decode_rows(blocks[d][p], decoded, seq);
      for (std::size_t i = 0; i < owner_rows.size(); ++i) {
        auto dst = grads[p].row(owner_rows[i]);
        const auto src = decoded.row(i);
        for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
      }
    }
  });
  // Shipped halo gradients are cleared on every device (disjoint rows).
  parallel_for_each(static_cast<std::size_t>(n), [&](std::size_t di) {
    const DeviceGraph& dev = dist.devices[di];
    for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h) {
      auto row = grads[di].row(h);
      std::fill(row.begin(), row.end(), 0.0f);
    }
  });
  accumulate_kernel_times(cluster, fp_bytes, stats);
  finalize_comm_time(dist, cluster, stats);
  return stats;
}

double allreduce_sum(std::vector<Matrix>& per_device,
                     const ClusterSpec& cluster) {
  const int n = static_cast<int>(per_device.size());
  ADAQP_CHECK(n >= 1 && cluster.num_devices() == n);
  if (n == 1) return 0.0;

  Matrix sum = per_device[0];
  for (int d = 1; d < n; ++d) {
    ADAQP_CHECK(per_device[d].same_shape(sum));
    sum.add_inplace(per_device[d]);
  }
  for (auto& m : per_device) m = sum;

  // Ring allreduce: 2(n-1) rounds of bytes/n chunks, straggler-paced by the
  // slowest ring link.
  const std::size_t bytes = sum.size() * sizeof(float);
  double worst_theta = 0.0, worst_gamma = 0.0;
  for (int d = 0; d < n; ++d) {
    const LinkParams l = cluster.link(d, (d + 1) % n);
    worst_theta = std::max(worst_theta, l.theta);
    worst_gamma = std::max(worst_gamma, l.gamma);
  }
  const double chunk = static_cast<double>(bytes) / n;
  return 2.0 * (n - 1) * (worst_theta * chunk + worst_gamma);
}

}  // namespace adaqp
