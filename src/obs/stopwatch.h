// The one wall-clock idiom of the repo (docs/OBSERVABILITY.md).
//
// monotonic_us() is the process-wide timestamp source: microseconds since
// the first call, read from std::chrono::steady_clock. Stage timestamps
// (pipeline::StageGraph), the submit->join latency histograms, the trace
// recorder's clock and the trainer's phase stopwatches all derive from it,
// so every measured number in a run report is directly comparable. The
// *model* side of the time story lives in core/timing.h (FLOPs -> seconds
// under the ClusterSpec); the run report places the two side by side
// (`sim_*` vs `wall_*` fields).
//
// IntervalSet arithmetic is the one interval implementation: the overlap
// benches (bench_common.h delegates here) and the trainer's realized
// overlap-efficiency capture both measure concurrency as the intersection
// of busy-interval sets. The mutating forms below sort/collapse the
// caller's buffers in place and never allocate, so the trainer can compute
// overlap inside steady-state epochs (zero-allocation contract,
// docs/ARCHITECTURE.md "Memory subsystem").
#pragma once

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

namespace adaqp::obs {

/// Microseconds since the first call in this process (monotonic).
inline double monotonic_us() {
  static const auto origin = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

/// Minimal stopwatch over monotonic_us().
class Stopwatch {
 public:
  Stopwatch() : start_us_(monotonic_us()) {}
  void reset() { start_us_ = monotonic_us(); }
  double elapsed_us() const { return monotonic_us() - start_us_; }
  double elapsed_seconds() const { return elapsed_us() * 1e-6; }

 private:
  double start_us_;
};

/// One [begin_us, end_us) busy interval.
using Interval = std::pair<double, double>;

/// Sort + merge overlapping/adjacent intervals in place. No allocation
/// (shrinking resize only). Empty and degenerate (end <= begin) intervals
/// collapse away.
inline void collapse_intervals(std::vector<Interval>& iv) {
  if (iv.empty()) return;
  std::sort(iv.begin(), iv.end());
  std::size_t out = 0;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > iv[out].second) {
      iv[++out] = iv[i];
    } else {
      iv[out].second = std::max(iv[out].second, iv[i].second);
    }
  }
  iv.resize(out + 1);
}

/// Seconds covered by an already-collapsed interval set (µs in, s out).
inline double covered_seconds(const std::vector<Interval>& collapsed) {
  double total = 0.0;
  for (const auto& [b, e] : collapsed)
    if (e > b) total += e - b;
  return total * 1e-6;
}

/// Seconds covered by the union of [begin, end) µs intervals. Collapses
/// `iv` in place; allocation-free.
inline double interval_union_seconds(std::vector<Interval>& iv) {
  collapse_intervals(iv);
  return covered_seconds(iv);
}

/// Seconds where both interval sets are simultaneously active. Collapses
/// both sets in place (two-pointer sweep afterwards); allocation-free.
inline double interval_intersection_seconds(std::vector<Interval>& a,
                                            std::vector<Interval>& b) {
  if (a.empty() || b.empty()) return 0.0;
  collapse_intervals(a);
  collapse_intervals(b);
  double total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second)
      ++i;
    else
      ++j;
  }
  return total * 1e-6;
}

/// Accumulated exchange||compute concurrency of one or more stage sets
/// (the run report keeps one per direction per epoch). `efficiency()` is
/// the overlap bench's definition: realized overlap over the smaller of
/// the two busy times — 1.0 means the shorter side was fully hidden.
struct OverlapAccum {
  double exchange_busy_s = 0.0;
  double compute_busy_s = 0.0;
  double overlap_s = 0.0;

  double efficiency() const {
    const double denom = std::min(exchange_busy_s, compute_busy_s);
    return denom > 0.0 ? overlap_s / denom : 0.0;
  }
};

/// Fold one (exchange, compute) interval-set pair into `out`. Collapses
/// both scratch sets in place; allocation-free. Layers of an epoch run
/// disjoint in time, so summing per-layer unions equals the epoch union.
inline void accumulate_overlap(std::vector<Interval>& exchange,
                               std::vector<Interval>& compute,
                               OverlapAccum& out) {
  out.overlap_s += interval_intersection_seconds(exchange, compute);
  out.exchange_busy_s += covered_seconds(exchange);
  out.compute_busy_s += covered_seconds(compute);
}

}  // namespace adaqp::obs
