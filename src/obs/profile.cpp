#include "obs/profile.h"

#include <algorithm>
#include <cstddef>

#include "common/env.h"

namespace adaqp::obs {

namespace {

constexpr const char* kCategoryKeys[kNumProfileCategories] = {
    "central", "marginal", "encode", "wire", "decode", "fold", "other"};

constexpr double kUsToS = 1e-6;

/// Parse a non-negative integer at `pos`; returns -1 when no digit.
int parse_int(std::string_view s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return -1;
  int v = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    v = v * 10 + (s[pos] - '0');
    ++pos;
  }
  return v;
}

/// Parse the "d{X}" / "d{X}->d{Y}" suffix after the final '/'.
void parse_pair(std::string_view name, StageClass& cls) {
  const std::size_t slash = name.rfind('/');
  if (slash == std::string_view::npos) return;
  std::size_t pos = slash + 1;
  if (pos >= name.size() || name[pos] != 'd') return;
  ++pos;
  const int first = parse_int(name, pos);
  if (first < 0) return;
  if (name.compare(pos, 3, "->d") == 0) {
    pos += 3;
    const int second = parse_int(name, pos);
    if (second < 0) return;
    cls.src = first;
    cls.dst = second;
  } else {
    // Single-device suffix: bwd-acc runs on the receiving owner.
    cls.dst = first;
  }
}

}  // namespace

const char* profile_category_key(int category) {
  if (category < 0 || category >= kNumProfileCategories) return "other";
  return kCategoryKeys[category];
}

StageClass classify_stage(std::string_view name) {
  StageClass cls;
  const auto starts = [&](std::string_view prefix) {
    return name.size() >= prefix.size() &&
           name.compare(0, prefix.size(), prefix) == 0;
  };
  if (starts("fwd/")) {
    // Fused forward exchange: encode + modeled wire + decode in one span.
    cls.category = kCatWire;
    cls.fused_forward = true;
    parse_pair(name, cls);
  } else if (starts("bwd-enc/")) {
    // Fused backward sender: encode + modeled wire in one span.
    cls.category = kCatWire;
    cls.fused_backward = true;
    parse_pair(name, cls);
  } else if (starts("bwd-acc/")) {
    // Owner-side dequantize + accumulate.
    cls.category = kCatDecode;
    parse_pair(name, cls);
  } else if (starts("bwd-zero/")) {
    cls.category = kCatOther;
  } else if (name.find("/central") != std::string_view::npos) {
    cls.category = kCatCentral;
  } else if (name.find("/marginal") != std::string_view::npos) {
    cls.category = kCatMarginal;
  } else if (name.find("/fold") != std::string_view::npos) {
    cls.category = kCatFold;
  } else if (name.find("/trace") != std::string_view::npos) {
    cls.category = kCatOther;
  }
  return cls;
}

// ---------------------------------------------------------------------------
// ProfileDag
// ---------------------------------------------------------------------------

void ProfileDag::reserve(int max_stages, int max_deps) {
  const auto n = static_cast<std::size_t>(std::max(max_stages, 1));
  stages_.clear();
  stages_.reserve(n);
  deps_.resize(n);
  // Dep lists grow on first capture of each graph shape (warmup epoch, not
  // steady); a modest per-stage reserve keeps even that rare. The total-edge
  // cap is enforced in add_dep.
  for (auto& d : deps_) {
    d.clear();
    d.reserve(8);
  }
  dep_capacity_ = static_cast<std::size_t>(std::max(max_deps, 1));
  earliest_f_.resize(n);
  latest_f_.resize(n);
  cp_pred_.resize(n);
  path_.resize(n);
  iv_exchange_.clear();
  iv_exchange_.reserve(n);
  iv_compute_.clear();
  iv_compute_.reserve(n);
  count_ = 0;
  dep_count_ = 0;
  truncated_ = false;
}

void ProfileDag::clear() {
  for (std::size_t i = 0; i < count_; ++i) deps_[i].clear();
  count_ = 0;
  dep_count_ = 0;
  truncated_ = false;
  enc_frac_ = 0.0;
  wire_frac_ = 1.0;
  dec_frac_ = 0.0;
  bwd_enc_frac_ = 0.0;
  bwd_wire_frac_ = 1.0;
}

int ProfileDag::add_stage(const std::string* name, std::string_view name_view,
                          double begin_us, double end_us) {
  if (count_ >= stages_.capacity() || count_ >= deps_.size()) {
    truncated_ = true;
    return -1;
  }
  if (stages_.size() <= count_) stages_.emplace_back();
  Stage& st = stages_[count_];
  st.name = name;
  st.begin_us = begin_us;
  st.end_us = std::max(end_us, begin_us);
  st.cls = classify_stage(name_view);
  st.weight_s.fill(0.0);
  return static_cast<int>(count_++);
}

void ProfileDag::add_dep(int stage, int dep) {
  if (stage < 0 || dep < 0 || dep >= stage ||
      static_cast<std::size_t>(stage) >= count_) {
    return;
  }
  if (dep_count_ >= dep_capacity_) {
    truncated_ = true;
    return;
  }
  deps_[static_cast<std::size_t>(stage)].push_back(dep);
  ++dep_count_;
}

void ProfileDag::set_exchange_model(double quant_s, double comm_s,
                                    double dequant_s) {
  const double q = std::max(quant_s, 0.0);
  const double c = std::max(comm_s, 0.0);
  const double d = std::max(dequant_s, 0.0);
  const double fwd_total = q + c + d;
  if (fwd_total > 0.0) {
    enc_frac_ = q / fwd_total;
    wire_frac_ = c / fwd_total;
    dec_frac_ = d / fwd_total;
  } else {
    enc_frac_ = dec_frac_ = 0.0;
    wire_frac_ = 1.0;
  }
  const double bwd_total = q + c;
  if (bwd_total > 0.0) {
    bwd_enc_frac_ = q / bwd_total;
    bwd_wire_frac_ = c / bwd_total;
  } else {
    bwd_enc_frac_ = 0.0;
    bwd_wire_frac_ = 1.0;
  }
}

double ProfileDag::longest_path_without(int category) const {
  double best = 0.0;
  for (std::size_t i = 0; i < count_; ++i) {
    double w = stages_[i].weight() - stages_[i].weight_s[category];
    double start = 0.0;
    for (const int dep : deps_[i]) {
      start = std::max(start, path_[static_cast<std::size_t>(dep)]);
    }
    path_[i] = start + w;
    best = std::max(best, path_[i]);
  }
  return best;
}

void ProfileDag::compute(SegmentProfile& out, double* pair_s, int devices) {
  out.stages = static_cast<int>(count_);
  out.cp_stages = 0;
  out.makespan_s = out.cp_s = out.busy_s = out.slack_s = 0.0;
  out.zero_wire_cp_s = 0.0;
  out.category_s.fill(0.0);
  out.sensitivity_s.fill(0.0);
  out.overlap = OverlapAccum{};
  out.cp_names.fill(nullptr);
  if (count_ == 0) return;

  // Split each stage's measured span across categories. Fused exchange
  // stages use the cost model's quantize : comm : dequantize proportions
  // for this layer-epoch (set_exchange_model); plain stages land whole on
  // their classified category.
  double min_begin = stages_[0].begin_us;
  double max_end = stages_[0].end_us;
  std::array<bool, kNumProfileCategories> present{};
  for (std::size_t i = 0; i < count_; ++i) {
    Stage& st = stages_[i];
    const double span = (st.end_us - st.begin_us) * kUsToS;
    st.weight_s.fill(0.0);
    if (st.cls.fused_forward) {
      st.weight_s[kCatEncode] = span * enc_frac_;
      st.weight_s[kCatWire] = span * wire_frac_;
      st.weight_s[kCatDecode] = span * dec_frac_;
    } else if (st.cls.fused_backward) {
      st.weight_s[kCatEncode] = span * bwd_enc_frac_;
      st.weight_s[kCatWire] = span * bwd_wire_frac_;
    } else {
      st.weight_s[st.cls.category] = span;
    }
    for (int c = 0; c < kNumProfileCategories; ++c) {
      if (st.weight_s[c] > 0.0) present[static_cast<std::size_t>(c)] = true;
    }
    min_begin = std::min(min_begin, st.begin_us);
    max_end = std::max(max_end, st.end_us);
    out.busy_s += span;
  }
  out.makespan_s = (max_end - min_begin) * kUsToS;

  // CPM forward pass over declared dependencies (ascending id is a valid
  // topological order — StageGraph only accepts deps on earlier stages).
  std::size_t cp_end = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    double start = 0.0;
    int pred = -1;
    for (const int dep : deps_[i]) {
      const double ef = earliest_f_[static_cast<std::size_t>(dep)];
      if (ef > start) {
        start = ef;
        pred = dep;
      }
    }
    earliest_f_[i] = start + stages_[i].weight();
    cp_pred_[i] = pred;
    if (earliest_f_[i] > earliest_f_[cp_end]) cp_end = i;
  }
  out.cp_s = earliest_f_[cp_end];

  // CPM backward pass: latest finish without delaying the critical path.
  for (std::size_t i = 0; i < count_; ++i) latest_f_[i] = out.cp_s;
  for (std::size_t j = count_; j-- > 0;) {
    const double ls = latest_f_[j] - stages_[j].weight();
    for (const int dep : deps_[j]) {
      auto& lf = latest_f_[static_cast<std::size_t>(dep)];
      lf = std::min(lf, ls);
    }
  }
  for (std::size_t i = 0; i < count_; ++i) {
    out.slack_s += std::max(0.0, latest_f_[i] - earliest_f_[i]);
  }

  // Walk the critical path backwards from its terminal stage, attributing
  // each stage's weight to its categories (so Σ category_s == cp_s), then
  // record the names in execution order.
  int cursor = static_cast<int>(cp_end);
  int cp_len = 0;
  while (cursor >= 0) {
    const Stage& st = stages_[static_cast<std::size_t>(cursor)];
    for (int c = 0; c < kNumProfileCategories; ++c) {
      out.category_s[static_cast<std::size_t>(c)] +=
          st.weight_s[static_cast<std::size_t>(c)];
    }
    ++cp_len;
    cursor = cp_pred_[static_cast<std::size_t>(cursor)];
  }
  out.cp_stages = cp_len;
  const int kept = std::min(cp_len, kMaxCpStages);
  cursor = static_cast<int>(cp_end);
  for (int slot = cp_len - 1; cursor >= 0; --slot) {
    if (slot < kMaxCpStages) {
      out.cp_names[static_cast<std::size_t>(slot)] =
          stages_[static_cast<std::size_t>(cursor)].name;
    }
    cursor = cp_pred_[static_cast<std::size_t>(cursor)];
  }
  (void)kept;

  // What-if projections from the same DAG: the critical path recomputed
  // with one category's weights removed. Only categories present in the
  // segment are re-solved; the rest have zero sensitivity by definition.
  for (int c = 0; c < kNumProfileCategories; ++c) {
    if (!present[static_cast<std::size_t>(c)]) continue;
    const double without = longest_path_without(c);
    out.sensitivity_s[static_cast<std::size_t>(c)] =
        std::max(0.0, out.cp_s - without);
    if (c == kCatWire) out.zero_wire_cp_s = without;
  }
  if (!present[kCatWire]) out.zero_wire_cp_s = out.cp_s;

  // Realized exchange || compute concurrency over the same stage sets the
  // trainer feeds EpochRow's OverlapAccum (exchange = pair stages + owner
  // accumulate; compute = central + fold), through the same interval
  // arithmetic — the two reports cannot drift.
  iv_exchange_.clear();
  iv_compute_.clear();
  for (std::size_t i = 0; i < count_; ++i) {
    const Stage& st = stages_[i];
    if (st.end_us <= st.begin_us) continue;
    const bool exchange =
        st.cls.fused_forward || st.cls.fused_backward ||
        (st.cls.category == kCatDecode);
    const bool compute =
        st.cls.category == kCatCentral || st.cls.category == kCatFold;
    if (exchange) iv_exchange_.push_back({st.begin_us, st.end_us});
    if (compute) iv_compute_.push_back({st.begin_us, st.end_us});
    if (pair_s != nullptr && devices > 0 && st.cls.dst >= 0 &&
        st.cls.dst < devices) {
      // Pair stages land at [src][dst]; the owner-side accumulate (no
      // sender in its name) lands on the receiver's diagonal.
      const int src = (st.cls.src >= 0 && st.cls.src < devices) ? st.cls.src
                                                                : st.cls.dst;
      pair_s[static_cast<std::size_t>(src) * devices + st.cls.dst] +=
          (st.end_us - st.begin_us) * kUsToS;
    }
  }
  accumulate_overlap(iv_exchange_, iv_compute_, out.overlap);
}

// ---------------------------------------------------------------------------
// ProfileCapture
// ---------------------------------------------------------------------------

void ProfileCapture::init(int max_epochs, int layers, int devices,
                          int max_stages, int max_deps) {
  capacity_ = std::max(max_epochs, 0);
  layers_ = std::max(layers, 1);
  devices_ = std::max(devices, 1);
  captured_ = 0;
  const std::size_t segs = static_cast<std::size_t>(capacity_) * layers_ * 2;
  segments_.assign(segs, SegmentProfile{});
  pair_s_.assign(static_cast<std::size_t>(capacity_) * devices_ * devices_,
                 0.0);
  phase_fwd_s_.assign(static_cast<std::size_t>(capacity_), 0.0);
  phase_bwd_s_.assign(static_cast<std::size_t>(capacity_), 0.0);
  phase_opt_s_.assign(static_cast<std::size_t>(capacity_), 0.0);
  dag_.reserve(max_stages, max_deps);
  enabled_ = capacity_ > 0;
}

SegmentProfile* ProfileCapture::segment(int epoch, int layer, bool forward) {
  if (!enabled_ || epoch < 0 || epoch >= capacity_ || layer < 0 ||
      layer >= layers_) {
    return nullptr;
  }
  captured_ = std::max(captured_, epoch + 1);
  return &segments_[seg_slot(epoch, layer, forward)];
}

const SegmentProfile& ProfileCapture::segment_at(int epoch, int layer,
                                                 bool forward) const {
  static const SegmentProfile kEmpty{};
  if (epoch < 0 || epoch >= capacity_ || layer < 0 || layer >= layers_) {
    return kEmpty;
  }
  return segments_[seg_slot(epoch, layer, forward)];
}

double* ProfileCapture::pair_seconds(int epoch) {
  if (!enabled_ || epoch < 0 || epoch >= capacity_) return nullptr;
  return &pair_s_[static_cast<std::size_t>(epoch) * devices_ * devices_];
}

double ProfileCapture::pair_seconds_at(int epoch, int src, int dst) const {
  if (epoch < 0 || epoch >= capacity_ || src < 0 || src >= devices_ ||
      dst < 0 || dst >= devices_) {
    return 0.0;
  }
  return pair_s_[(static_cast<std::size_t>(epoch) * devices_ + src) *
                     devices_ +
                 dst];
}

void ProfileCapture::set_epoch_phases(int epoch, double forward_s,
                                      double backward_s, double optimizer_s) {
  if (!enabled_ || epoch < 0 || epoch >= capacity_) return;
  phase_fwd_s_[static_cast<std::size_t>(epoch)] = forward_s;
  phase_bwd_s_[static_cast<std::size_t>(epoch)] = backward_s;
  phase_opt_s_[static_cast<std::size_t>(epoch)] = optimizer_s;
  captured_ = std::max(captured_, epoch + 1);
}

EpochProfile ProfileCapture::epoch_rollup(int epoch) const {
  EpochProfile out;
  if (epoch < 0 || epoch >= capacity_) return out;
  double makespan_sum = 0.0;
  double zero_wire_cp_sum = 0.0;
  for (int layer = 0; layer < layers_; ++layer) {
    for (int dir = 0; dir < 2; ++dir) {
      const SegmentProfile& seg = segments_[seg_slot(epoch, layer, dir == 0)];
      if (seg.stages == 0) continue;
      out.cp_s += seg.cp_s;
      out.busy_s += seg.busy_s;
      out.slack_s += seg.slack_s;
      makespan_sum += seg.makespan_s;
      zero_wire_cp_sum += seg.zero_wire_cp_s;
      for (int c = 0; c < kNumProfileCategories; ++c) {
        out.category_s[static_cast<std::size_t>(c)] +=
            seg.category_s[static_cast<std::size_t>(c)];
        out.sensitivity_s[static_cast<std::size_t>(c)] +=
            seg.sensitivity_s[static_cast<std::size_t>(c)];
      }
    }
  }
  const double fwd = phase_fwd_s_[static_cast<std::size_t>(epoch)];
  const double bwd = phase_bwd_s_[static_cast<std::size_t>(epoch)];
  out.optimizer_s = phase_opt_s_[static_cast<std::size_t>(epoch)];
  out.attributed_wall_s = fwd + bwd + out.optimizer_s;
  // Decompose the forward+backward wall into: critical-path categories
  // (Σ category_s == cp_s), scheduling (segment makespan beyond its
  // critical path: queueing + worker wakeup), and serial glue (wall not
  // covered by any profiled segment: graph reset, phased methods, refresh
  // work). Clamp residue flows between the two derived terms so the
  // decomposition sums to the attributed wall exactly whenever timestamps
  // are sane.
  out.scheduling_s = makespan_sum - out.cp_s;
  out.serial_s = (fwd + bwd) - makespan_sum;
  if (out.serial_s < 0.0) {
    out.scheduling_s += out.serial_s;
    out.serial_s = 0.0;
  }
  if (out.scheduling_s < 0.0) {
    out.serial_s = std::max(0.0, out.serial_s + out.scheduling_s);
    out.scheduling_s = 0.0;
  }
  // What-if projections for the whole epoch: both bounds assume perfect
  // scheduling (the measured queueing disappears with the contention).
  out.infinite_thread_s = out.cp_s + out.optimizer_s + out.serial_s;
  out.zero_wire_s = zero_wire_cp_sum + out.optimizer_s + out.serial_s;
  return out;
}

// ---------------------------------------------------------------------------
// ADAQP_PROFILE knob
// ---------------------------------------------------------------------------

namespace {
std::optional<bool>& profile_override() {
  static std::optional<bool> value;
  return value;
}
}  // namespace

bool profile_enabled() {
  if (profile_override().has_value()) return *profile_override();
  return env::flag01("ADAQP_PROFILE", true);
}

std::optional<bool> set_profile_override(std::optional<bool> enabled) {
  std::optional<bool> prev = profile_override();
  profile_override() = enabled;
  return prev;
}

ProfileGuard::ProfileGuard(bool enabled)
    : prev_(set_profile_override(enabled)) {}

ProfileGuard::~ProfileGuard() { set_profile_override(prev_); }

}  // namespace adaqp::obs
