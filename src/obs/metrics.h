// Process-wide metrics registry: the always-on half of the observability
// subsystem (docs/OBSERVABILITY.md).
//
// Design contract, in priority order:
//
//  1. **Never perturbs numerics.** Instruments are written, never read, by
//     hot-path code — no recorded value feeds back into training, so the
//     bit-determinism contract (docs/DETERMINISM.md) is trivially upheld
//     with metrics on or off.
//  2. **Zero allocations at steady state.** Every instrument the hot paths
//     touch is pre-registered in `instruments()` (a function-local static
//     built on first use, i.e. during warmup at the latest); recording is
//     a relaxed atomic bump into fixed storage. The steady-state gate in
//     test_memory runs with `ADAQP_METRICS` set to prove it.
//  3. **Race-free by construction.** Counters/gauges are single atomics;
//     histogram buckets are fixed arrays of atomics. Concurrent recording
//     from pool workers needs no locks; CI runs a racecheck and a TSan
//     pass with metrics enabled.
//
// Registration (`Registry::counter()` etc.) takes a mutex and may
// allocate — it is meant for startup, not for hot loops. Instruments live
// in deques so their addresses stay stable for the lifetime of the
// process; `snapshot()` (export time only) copies values out in
// registration order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace adaqp::obs {

/// Monotonic event/byte counter. All operations are relaxed: counts are
/// observational and never synchronize anything.
class Counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (e.g. queue depth).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: upper bounds are set at registration (at most
/// kMaxBounds), plus an implicit overflow bucket. record() is a linear
/// scan over <= 16 doubles and one relaxed increment — no allocation, no
/// locks. sum_ uses a CAS loop (atomic<double> has no fetch_add pre-C++20
/// on all our toolchains).
class Histogram {
 public:
  static constexpr std::size_t kMaxBounds = 16;

  explicit Histogram(std::span<const double> upper_bounds);

  void record(double v);

  std::size_t num_bounds() const { return num_bounds_; }
  double bound(std::size_t i) const { return bounds_[i]; }
  /// Count in bucket i (i == num_bounds() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::size_t num_bounds_ = 0;
  std::array<double, kMaxBounds> bounds_{};
  std::array<std::atomic<std::uint64_t>, kMaxBounds + 1> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name-keyed instrument registry. Lookups are idempotent: asking for an
/// existing name returns the same instrument (a histogram's bounds are
/// fixed by the first registration). Instrument addresses are stable
/// forever — hold references, not names, in hot code.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size()+1, overflow last
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  /// Copy of every instrument in registration order. Allocates — export
  /// and test use only.
  Snapshot snapshot() const;

  /// Zero every registered instrument (tests).
  void reset_values();

 private:
  Registry();
  ~Registry();
  struct Impl;
  Impl* impl_;
};

// ---------------------------------------------------------------------------
// Wire bit-widths. Indices into per-width counter arrays everywhere in the
// subsystem (reports, ExchangeStats extensions, instruments()).
// ---------------------------------------------------------------------------

inline constexpr int kNumWidths = 4;
inline constexpr std::array<int, kNumWidths> kWireWidths{2, 4, 8, 32};

/// Map a codec bit-width {2,4,8,32} to its slot; anything unexpected lands
/// in the 32-bit slot (the codec only emits these four tags).
constexpr int width_index(int bits) {
  switch (bits) {
    case 2: return 0;
    case 4: return 1;
    case 8: return 2;
    default: return 3;
  }
}

// ---------------------------------------------------------------------------
// The pre-registered instrument catalog. First call registers everything
// (allocates, once); hot paths then bump through stable references. The
// catalog is documented in docs/OBSERVABILITY.md — keep the two in sync.
// ---------------------------------------------------------------------------

struct Instruments {
  Counter& trainer_epochs;            ///< train_epoch() completions

  Counter& codec_encode_calls;        ///< message blocks encoded
  Counter& codec_encode_bytes;        ///< wire bytes produced
  Counter& codec_encode_ns;           ///< wall ns spent encoding
  Counter& codec_decode_calls;
  Counter& codec_decode_bytes;
  Counter& codec_decode_ns;

  Counter& exchange_rounds;           ///< finalized exchange rounds
  Counter& exchange_messages;         ///< non-empty pair blocks moved
  /// Wire bytes by width tag (index = width_index(bits)); excludes the
  /// 12-byte block header, which is in pair-byte totals only.
  std::array<Counter*, kNumWidths> exchange_wire_bytes;
  Histogram& exchange_submit_to_join_us;  ///< async submit() -> wait() latency

  Counter& pipeline_stages;           ///< stage-graph stages executed
  Counter& pool_tasks;                ///< batched pool tasks executed
  Counter& pool_detached_tasks;       ///< detached pool tasks executed
  Gauge& pool_detached_depth;         ///< current detached-queue depth

  Counter& assigner_solves;           ///< bit-assignment solves
  /// Rows assigned per candidate width {2,4,8} across all solves.
  std::array<Counter*, 3> assigner_bits;
  Histogram& assigner_solve_us;       ///< per-solve wall time

  Counter& transport_frames;          ///< frames delivered to receivers
  Counter& transport_bytes;           ///< delivered payload bytes
  Counter& transport_wire_frames;     ///< frames that crossed a byte stream
  Counter& transport_wire_bytes;      ///< framed bytes written to streams
  Counter& transport_short_writes;    ///< partial stream writes observed
  Counter& transport_reconnects;      ///< tcp dial retries (refused/again)
  Histogram& transport_rtt_us;        ///< tcp per-pair connect handshake time
  Counter& transport_fault_delays;    ///< fault-injected delivery delays
  Counter& transport_fault_reorders;  ///< fault-injected frame holds
  Counter& transport_fault_splits;    ///< fault-injected frame fragmentations
  Counter& transport_fault_drops;     ///< fault-injected frame drops
};

/// The process-wide catalog. First call registers every instrument.
const Instruments& instruments();

// ---------------------------------------------------------------------------
// Run-report configuration (ADAQP_METRICS / ADAQP_METRICS_FORMAT).
// ---------------------------------------------------------------------------

enum class ReportFormat { kJson, kCsv, kProm };

struct ReportConfig {
  bool enabled = false;
  std::string path;
  ReportFormat format = ReportFormat::kJson;
};

/// Resolve the active configuration: the in-process override wins, else the
/// environment. `ADAQP_METRICS` names the output path (unset/empty =
/// disabled); `ADAQP_METRICS_FORMAT` must be `json`, `csv` or `prom` and
/// is validated strictly (throws std::runtime_error on anything else, even
/// when the path is unset — a typo'd knob never runs silently).
ReportConfig report_config();

/// Install (or with nullopt, clear) the in-process override; returns the
/// previous override so guards can nest. Tests use this instead of setenv.
std::optional<ReportConfig> set_report_override(
    std::optional<ReportConfig> cfg);

/// RAII override for tests: enables a report at `path` (or force-disables
/// reporting) for the guard's scope, restoring the previous override after.
class MetricsGuard {
 public:
  MetricsGuard(std::string path, ReportFormat format = ReportFormat::kJson);
  /// Force-disabled for the scope (shadows any environment setting).
  MetricsGuard();
  ~MetricsGuard();
  MetricsGuard(const MetricsGuard&) = delete;
  MetricsGuard& operator=(const MetricsGuard&) = delete;

 private:
  std::optional<ReportConfig> prev_;
};

}  // namespace adaqp::obs
