// Critical-path profiler: the explanation half of the observability
// subsystem (docs/OBSERVABILITY.md, "Critical-path profiler").
//
// PR 8 made the repo *measure* an epoch (phase walls, wire bytes, realized
// overlap efficiency); this layer *explains* it. From the stage begin/end
// timestamps every StageGraph already stamps (two clock reads per stage,
// always on) plus the declared dependency edges, the profiler reconstructs
// each executed graph segment as a weighted DAG and runs the classic
// critical-path method over it: earliest/latest finish per stage, per-stage
// self-time and slack, the longest weighted dependency chain (the critical
// path), and an attribution of that chain to semantic categories — central
// compute, marginal compute, encode, wire, decode, gradient fold. From the
// same DAG it computes what-if projections: the zero-wire-cost bound, the
// infinite-thread bound (the critical path itself — no schedule can beat
// it), and per-category sensitivity ("the epoch shrinks X seconds if encode
// were free"), so a future perf PR can be scoped against a predicted win
// before any code is written.
//
// House invariants, same as the rest of src/obs/:
//  1. Write-only from the training path: nothing here feeds back into
//     numerics, so profiling on vs. off is bit-identical for every method
//     (tests/test_profile.cpp pins all five across async x threads).
//  2. Zero allocations at steady state: ProfileCapture::init() dimensions
//     every row, the DAG scratch and the interval scratch once, at the top
//     of DistTrainer::run(); per-epoch capture then only writes
//     pre-allocated storage (gated with the profiler armed in
//     tests/test_profile.cpp).
//  3. One interval implementation: the profiler's overlap numbers come from
//     the same obs/stopwatch.h interval arithmetic, over the same stage
//     sets, as EpochRow's OverlapAccum — the two cannot drift (asserted
//     exactly, not approximately, in tests).
//
// Stage classification is by name, using the repo's stage naming scheme
// (pipeline/async_exchange.cpp, core/trainer.cpp): "fwd/dX->dY" fused
// exchange stages, "bwd-enc/dX->dY" / "bwd-acc/dX" / "bwd-zero/dX" backward
// wire stages, "L{l}/central|marginal/d{d}" compute stages, "L{l}b/fold".
// Fused exchange stages cover encode+wire+decode inside one measured span;
// their span is split across the three categories in proportion to the
// cost model's quantize : comm : dequantize seconds for that layer-epoch
// (ExchangeStats), which is the same model the paper's Fig. 10a uses.
//
// The profile is emitted as the versioned `adaqp-profile-v1` section of the
// ADAQP_METRICS run report (run_report.cpp; validated by
// tools/metrics_schema_check) and compared across runs by
// tools/profile_report — the repo's perf-regression gate. ADAQP_PROFILE=0
// disables capture (docs/ENVVARS.md); default is on whenever a metrics
// report is enabled.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stopwatch.h"

namespace adaqp::obs {

// ---------------------------------------------------------------------------
// Stage categories
// ---------------------------------------------------------------------------

/// Semantic attribution buckets for stage time. kCatOther absorbs stages
/// with no wire/compute meaning (range traces, halo zeroing); the epoch
/// rollup additionally reports optimizer / scheduling / serial components
/// that are not stage categories (EpochProfile).
enum ProfileCategory : int {
  kCatCentral = 0,   ///< central-row compute (hides under the wire)
  kCatMarginal,      ///< marginal-row compute (on the critical path by design)
  kCatEncode,        ///< quantize + pack
  kCatWire,          ///< modeled transfer share of exchange stages
  kCatDecode,        ///< unpack + dequantize (+ owner-side accumulate)
  kCatFold,          ///< shared parameter-gradient fold
  kCatOther,         ///< range traces, halo zeroing, unrecognized stages
  kNumProfileCategories
};

/// Stable JSON/report key per category ("central", "marginal", ...).
const char* profile_category_key(int category);

/// Classified identity of one stage, parsed from its name.
struct StageClass {
  int category = kCatOther;  ///< primary bucket (exchange stages: see split)
  bool fused_forward = false;   ///< "fwd/dX->dY": encode+wire+decode in one
  bool fused_backward = false;  ///< "bwd-enc/dX->dY": encode+wire in one
  int src = -1;  ///< sender device for pair stages, else -1
  int dst = -1;  ///< receiver device for pair stages, else -1
};

/// Parse a stage name into its category and (for wire stages) device pair.
/// Pure and allocation-free; understands the repo's stage naming scheme and
/// files anything else under kCatOther.
StageClass classify_stage(std::string_view name);

// ---------------------------------------------------------------------------
// Per-segment results
// ---------------------------------------------------------------------------

/// Upper bound on critical-path stage names remembered per segment (the
/// fused layer graphs are far smaller; synthetic test DAGs too).
inline constexpr int kMaxCpStages = 64;

/// Critical-path profile of one executed StageGraph segment (one layer,
/// one direction, one epoch). All fixed-size; rows live in storage
/// pre-allocated by ProfileCapture::init().
struct SegmentProfile {
  int layer = -1;
  bool forward = true;
  int stages = 0;          ///< stages captured
  int cp_stages = 0;       ///< stages on the critical path
  double makespan_s = 0.0; ///< max end − min begin (measured wall of the run)
  double cp_s = 0.0;       ///< longest weighted dependency chain
  double busy_s = 0.0;     ///< Σ stage self-times (the 1-thread bound)
  double slack_s = 0.0;    ///< Σ per-stage slack (latest − earliest finish)
  double zero_wire_cp_s = 0.0;  ///< critical path with wire weights zeroed
  /// Critical-path seconds attributed per category (Σ == cp_s).
  std::array<double, kNumProfileCategories> category_s{};
  /// cp_s − critical path recomputed with category c's weights zeroed:
  /// the seconds this segment shrinks if category c were free.
  std::array<double, kNumProfileCategories> sensitivity_s{};
  /// Realized exchange||compute concurrency over the same stage sets as
  /// EpochRow's per-direction OverlapAccum (exact agreement is tested).
  OverlapAccum overlap;
  /// Names of the critical-path stages in execution order, truncated at
  /// kMaxCpStages. Pointers into the owning StageGraph's stable Node
  /// storage — valid for the graph's (= the run's) lifetime.
  std::array<const std::string*, kMaxCpStages> cp_names{};
};

// ---------------------------------------------------------------------------
// Reusable DAG scratch
// ---------------------------------------------------------------------------

/// Fixed-capacity DAG builder + critical-path solver, reused for every
/// segment of every epoch. reserve() once (allowed to allocate); after
/// that, clear()/add_stage()/add_dep()/compute() never allocate. Dependency
/// ids must reference earlier stages (StageGraph's own acyclicity rule), so
/// ascending id order is a valid topological order and the CPM passes are
/// two linear sweeps.
class ProfileDag {
 public:
  /// Dimension the scratch: at most `max_stages` stages and `max_deps`
  /// total dependency edges per segment. Allocates; init-time only.
  void reserve(int max_stages, int max_deps);

  void clear();

  /// Add a stage with its measured timestamps (µs, monotonic_us() clock).
  /// `name` may outlive the profile (graph-owned) or be null (tests).
  /// Classification is by name; weight = end − begin. Returns the stage id,
  /// or -1 when capacity is exhausted (the segment is then truncated —
  /// callers size reserve() so this never happens in real runs).
  int add_stage(const std::string* name, std::string_view name_view,
                double begin_us, double end_us);

  /// Declare that `stage` depends on `dep` (dep < stage). Edges beyond
  /// capacity are dropped (counted, reported as truncated).
  void add_dep(int stage, int dep);

  /// Model-time split of fused exchange stages for this segment:
  /// quantize : comm : dequantize seconds (ExchangeStats). Fractions are
  /// normalized internally; all-zero means fused spans land fully on wire.
  void set_exchange_model(double quant_s, double comm_s, double dequant_s);

  int size() const { return static_cast<int>(count_); }
  bool truncated() const { return truncated_; }

  /// Run the critical-path method and fill `out`. `pair_s` (optional) is a
  /// devices x devices row-major matrix accumulating measured exchange
  /// seconds per (src, dst) pair. Allocation-free.
  void compute(SegmentProfile& out, double* pair_s = nullptr,
               int devices = 0);

 private:
  struct Stage {
    const std::string* name;
    double begin_us, end_us;
    StageClass cls;
    /// Seconds of this stage's span per category (fused stages split).
    std::array<double, kNumProfileCategories> weight_s;
    double weight() const {
      double w = 0.0;
      for (const double v : weight_s) w += v;
      return w;
    }
  };

  double longest_path_without(int category) const;

  std::vector<Stage> stages_;
  std::vector<std::vector<int>> deps_;    ///< per-stage dep lists (reserved)
  std::vector<double> earliest_f_;        ///< CPM forward pass (seconds)
  std::vector<double> latest_f_;          ///< CPM backward pass
  std::vector<int> cp_pred_;              ///< longest-path predecessor
  mutable std::vector<double> path_;      ///< what-if longest-path scratch
  std::vector<Interval> iv_exchange_;     ///< overlap scratch
  std::vector<Interval> iv_compute_;
  std::size_t count_ = 0;
  std::size_t dep_count_ = 0;
  std::size_t dep_capacity_ = 0;
  bool truncated_ = false;
  double enc_frac_ = 0.0, wire_frac_ = 1.0, dec_frac_ = 0.0;
  double bwd_enc_frac_ = 0.0, bwd_wire_frac_ = 1.0;
};

// ---------------------------------------------------------------------------
// Per-run capture
// ---------------------------------------------------------------------------

/// Epoch-level rollup, derived from the stored segments plus the trainer's
/// phase walls. Computed on demand (epoch_rollup()); cheap, allocation-free,
/// and used by both the report writer and tests.
struct EpochProfile {
  double attributed_wall_s = 0.0;  ///< forward + backward + optimizer walls
  double cp_s = 0.0;               ///< Σ segment critical paths
  double busy_s = 0.0;             ///< Σ segment stage self-times
  double slack_s = 0.0;            ///< Σ segment slack
  /// Stage categories (Σ segment attribution) plus the three non-stage
  /// components; all kNumProfileCategories + optimizer + scheduling +
  /// serial sum to attributed_wall_s exactly (by construction).
  std::array<double, kNumProfileCategories> category_s{};
  double optimizer_s = 0.0;   ///< optimizer phase wall (not a stage)
  double scheduling_s = 0.0;  ///< Σ (segment makespan − segment cp): queueing
  double serial_s = 0.0;      ///< fwd+bwd wall not covered by any segment
  /// What-if projections (seconds for the whole attributed epoch).
  double zero_wire_s = 0.0;        ///< wire weights zeroed on every segment
  double infinite_thread_s = 0.0;  ///< cp + optimizer + serial (no queueing)
  std::array<double, kNumProfileCategories> sensitivity_s{};
};

inline constexpr std::string_view kProfileSchema = "adaqp-profile-v1";

/// Fixed-capacity per-run profile recorder, owned by RunCapture. init()
/// allocates everything (top of DistTrainer::run()); segment capture and
/// phase stamping never allocate.
class ProfileCapture {
 public:
  /// Dimension for `max_epochs` x (`layers` x 2 directions) segments over a
  /// `devices`-partition run, with DAG scratch for `max_stages` stages and
  /// `max_deps` edges per segment. Enables capture.
  void init(int max_epochs, int layers, int devices, int max_stages,
            int max_deps);

  bool enabled() const { return enabled_; }
  int layers() const { return layers_; }
  int devices() const { return devices_; }
  /// Highest epoch index with a captured segment or phases, + 1.
  int captured_epochs() const { return captured_; }

  /// The shared DAG scratch (cleared by the caller per segment).
  ProfileDag& dag() { return dag_; }

  /// Mutable segment row, or nullptr when disabled / out of capacity.
  SegmentProfile* segment(int epoch, int layer, bool forward);
  const SegmentProfile& segment_at(int epoch, int layer, bool forward) const;

  /// Per-pair measured exchange seconds of one epoch (devices x devices,
  /// row-major src-major), or nullptr when disabled / out of capacity.
  double* pair_seconds(int epoch);
  double pair_seconds_at(int epoch, int src, int dst) const;

  /// Stamp the epoch's phase walls (train_epoch, once per epoch).
  void set_epoch_phases(int epoch, double forward_s, double backward_s,
                        double optimizer_s);

  /// Roll the epoch's segments + phases up into the attribution and
  /// what-if summary. Allocation-free; zeroes when the epoch is empty.
  EpochProfile epoch_rollup(int epoch) const;

 private:
  std::size_t seg_slot(int epoch, int layer, bool forward) const {
    return (static_cast<std::size_t>(epoch) * layers_ + layer) * 2 +
           (forward ? 0 : 1);
  }

  bool enabled_ = false;
  int capacity_ = 0;
  int layers_ = 0;
  int devices_ = 0;
  int captured_ = 0;
  ProfileDag dag_;
  std::vector<SegmentProfile> segments_;  ///< [epoch][layer][direction]
  std::vector<double> pair_s_;            ///< [epoch][src][dst]
  std::vector<double> phase_fwd_s_, phase_bwd_s_, phase_opt_s_;
};

// ---------------------------------------------------------------------------
// ADAQP_PROFILE knob
// ---------------------------------------------------------------------------

/// Whether profile capture is armed: the in-process override wins, else the
/// strict ADAQP_PROFILE flag (default on). Profile rows only exist when the
/// metrics report is also enabled — this knob opts *out* of the profile
/// section without giving up the rest of the report.
bool profile_enabled();

/// Install (or clear) the in-process override; returns the previous value.
std::optional<bool> set_profile_override(std::optional<bool> enabled);

/// RAII override for tests (avoids setenv).
class ProfileGuard {
 public:
  explicit ProfileGuard(bool enabled);
  ~ProfileGuard();
  ProfileGuard(const ProfileGuard&) = delete;
  ProfileGuard& operator=(const ProfileGuard&) = delete;

 private:
  std::optional<bool> prev_;
};

}  // namespace adaqp::obs
