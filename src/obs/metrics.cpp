#include "obs/metrics.h"

#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/env.h"

namespace adaqp::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::span<const double> upper_bounds) {
  if (upper_bounds.size() > kMaxBounds)
    throw std::runtime_error("obs::Histogram: too many buckets");
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    if (i > 0 && upper_bounds[i] <= upper_bounds[i - 1])
      throw std::runtime_error(
          "obs::Histogram: bounds must be strictly increasing");
    bounds_[i] = upper_bounds[i];
  }
  num_bounds_ = upper_bounds.size();
}

void Histogram::record(double v) {
  std::size_t i = 0;
  while (i < num_bounds_ && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  enum Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    Counter* c = nullptr;
    Gauge* g = nullptr;
    Histogram* h = nullptr;
  };

  std::mutex mu;
  // Deques: instrument addresses must survive later registrations.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::vector<Entry> entries;                       // registration order
  std::map<std::string, std::size_t, std::less<>> index;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::instance() {
  // Leaked singleton: instruments are bumped from pool workers that may
  // outlive static destruction order.
  static Registry* reg = new Registry;
  return *reg;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (auto it = impl_->index.find(name); it != impl_->index.end()) {
    const Impl::Entry& e = impl_->entries[it->second];
    if (e.kind != Impl::kCounter)
      throw std::runtime_error("obs::Registry: \"" + std::string(name) +
                               "\" already registered with another type");
    return *e.c;
  }
  impl_->counters.emplace_back();
  Impl::Entry e;
  e.name = std::string(name);
  e.kind = Impl::kCounter;
  e.c = &impl_->counters.back();
  impl_->index.emplace(e.name, impl_->entries.size());
  impl_->entries.push_back(std::move(e));
  return *impl_->entries.back().c;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (auto it = impl_->index.find(name); it != impl_->index.end()) {
    const Impl::Entry& e = impl_->entries[it->second];
    if (e.kind != Impl::kGauge)
      throw std::runtime_error("obs::Registry: \"" + std::string(name) +
                               "\" already registered with another type");
    return *e.g;
  }
  impl_->gauges.emplace_back();
  Impl::Entry e;
  e.name = std::string(name);
  e.kind = Impl::kGauge;
  e.g = &impl_->gauges.back();
  impl_->index.emplace(e.name, impl_->entries.size());
  impl_->entries.push_back(std::move(e));
  return *impl_->entries.back().g;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (auto it = impl_->index.find(name); it != impl_->index.end()) {
    const Impl::Entry& e = impl_->entries[it->second];
    if (e.kind != Impl::kHistogram)
      throw std::runtime_error("obs::Registry: \"" + std::string(name) +
                               "\" already registered with another type");
    return *e.h;
  }
  impl_->histograms.emplace_back(bounds);
  Impl::Entry e;
  e.name = std::string(name);
  e.kind = Impl::kHistogram;
  e.h = &impl_->histograms.back();
  impl_->index.emplace(e.name, impl_->entries.size());
  impl_->entries.push_back(std::move(e));
  return *impl_->entries.back().h;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  Snapshot snap;
  for (const Impl::Entry& e : impl_->entries) {
    switch (e.kind) {
      case Impl::kCounter:
        snap.counters.emplace_back(e.name, e.c->value());
        break;
      case Impl::kGauge:
        snap.gauges.emplace_back(e.name, e.g->value());
        break;
      case Impl::kHistogram: {
        HistogramSnapshot h;
        h.name = e.name;
        h.count = e.h->count();
        h.sum = e.h->sum();
        for (std::size_t i = 0; i < e.h->num_bounds(); ++i)
          h.bounds.push_back(e.h->bound(i));
        for (std::size_t i = 0; i <= e.h->num_bounds(); ++i)
          h.counts.push_back(e.h->bucket_count(i));
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (const Impl::Entry& e : impl_->entries) {
    switch (e.kind) {
      case Impl::kCounter: e.c->reset(); break;
      case Impl::kGauge: e.g->reset(); break;
      case Impl::kHistogram: e.h->reset(); break;
    }
  }
}

// ---------------------------------------------------------------------------
// Instrument catalog
// ---------------------------------------------------------------------------

const Instruments& instruments() {
  static const Instruments* ins = [] {
    Registry& r = Registry::instance();
    // µs bounds; exchanges join in sub-ms on small graphs, solves can take
    // longer on large partitions — overflow buckets catch the tail.
    static constexpr double kJoinBounds[] = {50.0,    100.0,   250.0,  500.0,
                                             1000.0,  2500.0,  5000.0, 10000.0,
                                             25000.0, 50000.0, 100000.0,
                                             250000.0};
    static constexpr double kSolveBounds[] = {100.0,   250.0,   500.0,
                                              1000.0,  2500.0,  5000.0,
                                              10000.0, 25000.0, 50000.0,
                                              100000.0};
    // Localhost connect + hello handshakes land in tens to hundreds of µs;
    // retry storms during multi-process startup can reach seconds.
    static constexpr double kRttBounds[] = {50.0,     100.0,    250.0,
                                            500.0,    1000.0,   2500.0,
                                            5000.0,   10000.0,  50000.0,
                                            100000.0, 500000.0, 1000000.0};
    return new Instruments{
        r.counter("trainer.epochs"),
        r.counter("codec.encode_calls"),
        r.counter("codec.encode_bytes"),
        r.counter("codec.encode_ns"),
        r.counter("codec.decode_calls"),
        r.counter("codec.decode_bytes"),
        r.counter("codec.decode_ns"),
        r.counter("exchange.rounds"),
        r.counter("exchange.messages"),
        {&r.counter("exchange.wire_bytes.b2"),
         &r.counter("exchange.wire_bytes.b4"),
         &r.counter("exchange.wire_bytes.b8"),
         &r.counter("exchange.wire_bytes.b32")},
        r.histogram("exchange.submit_to_join_us", kJoinBounds),
        r.counter("pipeline.stages"),
        r.counter("pool.tasks"),
        r.counter("pool.detached_tasks"),
        r.gauge("pool.detached_depth"),
        r.counter("assigner.solves"),
        {&r.counter("assigner.bits.b2"), &r.counter("assigner.bits.b4"),
         &r.counter("assigner.bits.b8")},
        r.histogram("assigner.solve_us", kSolveBounds),
        r.counter("transport.frames"),
        r.counter("transport.bytes"),
        r.counter("transport.wire_frames"),
        r.counter("transport.wire_bytes"),
        r.counter("transport.short_writes"),
        r.counter("transport.reconnects"),
        r.histogram("transport.rtt_us", kRttBounds),
        r.counter("transport.fault.delays"),
        r.counter("transport.fault.reorders"),
        r.counter("transport.fault.splits"),
        r.counter("transport.fault.drops"),
    };
  }();
  return *ins;
}

// ---------------------------------------------------------------------------
// Report configuration
// ---------------------------------------------------------------------------

namespace {

std::mutex g_override_mu;
std::optional<ReportConfig> g_override;  // guarded by g_override_mu

ReportFormat parse_format(const std::string& text) {
  if (text == "json") return ReportFormat::kJson;
  if (text == "csv") return ReportFormat::kCsv;
  if (text == "prom") return ReportFormat::kProm;
  throw std::runtime_error(
      "ADAQP_METRICS_FORMAT must be one of json|csv|prom, got \"" + text +
      "\"");
}

}  // namespace

ReportConfig report_config() {
  {
    std::lock_guard<std::mutex> lk(g_override_mu);
    if (g_override) return *g_override;
  }
  ReportConfig cfg;
  // The format knob is validated even when no path is set: strict parsing
  // everywhere, a typo'd knob never runs silently (docs/ENVVARS.md).
  if (const auto fmt = env::text("ADAQP_METRICS_FORMAT"))
    cfg.format = parse_format(*fmt);
  if (const auto path = env::text("ADAQP_METRICS")) {
    cfg.enabled = true;
    cfg.path = *path;
  }
  return cfg;
}

std::optional<ReportConfig> set_report_override(
    std::optional<ReportConfig> cfg) {
  std::lock_guard<std::mutex> lk(g_override_mu);
  std::optional<ReportConfig> prev = std::move(g_override);
  g_override = std::move(cfg);
  return prev;
}

MetricsGuard::MetricsGuard(std::string path, ReportFormat format) {
  ReportConfig cfg;
  cfg.enabled = true;
  cfg.path = std::move(path);
  cfg.format = format;
  prev_ = set_report_override(std::move(cfg));
}

MetricsGuard::MetricsGuard() {
  prev_ = set_report_override(ReportConfig{});  // enabled = false
}

MetricsGuard::~MetricsGuard() { set_report_override(std::move(prev_)); }

}  // namespace adaqp::obs
