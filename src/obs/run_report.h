// Per-epoch run reports: the shutdown-export half of the observability
// subsystem (docs/OBSERVABILITY.md).
//
// `RunCapture` is a fixed-capacity recorder the trainer owns. It is
// dimensioned once at the top of `DistTrainer::run()` (epochs x devices),
// before the first epoch — every later write lands in pre-allocated
// storage, so capture is active through steady-state epochs without
// violating the zero-allocation contract (test_memory gates this with
// `ADAQP_METRICS` set). Rows hold plain doubles/ints written by the
// training thread only; nothing here is read back by the hot path, so
// capture cannot perturb bit-determinism.
//
// `write_report()` runs once at the end of `run()` and is allowed to
// allocate freely. The JSON schema is versioned (`adaqp-metrics-v1`) and
// validated by `tools/metrics_schema_check.cpp`; `scripts/bench.sh` folds
// the report into `BENCH_runtime.json`.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/stopwatch.h"

namespace adaqp::obs {

/// Append `s` to `out` with JSON string escaping: `"` and `\` are
/// backslash-escaped, control characters < 0x20 use the named short forms
/// (\b \t \n \f \r) or \u00XX. Bytes >= 0x20 pass through (UTF-8 safe).
void json_escape(std::string_view s, std::string& out);
std::string json_escaped(std::string_view s);

/// Measured wall seconds of one epoch's phases, stamped by train_epoch at
/// the same points as the allocation report. Always filled (cheap), so
/// model seconds (`sim_*`, core/timing.h) and measured seconds sit side by
/// side in the report.
struct PhaseWall {
  double forward_s = 0.0;
  double backward_s = 0.0;
  double optimizer_s = 0.0;
  double refresh_s = 0.0;
  double evaluation_s = 0.0;
  double total() const {
    return forward_s + backward_s + optimizer_s + refresh_s + evaluation_s;
  }
};

/// Everything the report records about one epoch.
struct EpochRow {
  int epoch = 0;

  double train_loss = 0.0;
  double val_acc = 0.0;
  double test_acc = 0.0;

  // Model time under the ClusterSpec (core/timing.h), from EpochBreakdown.
  double sim_comm_s = 0.0;
  double sim_comp_s = 0.0;
  double sim_quant_s = 0.0;
  double sim_total_s = 0.0;

  PhaseWall wall;  // measured time, same phase boundaries

  // Heap allocations per phase (memory/alloc_track.h counters).
  std::uint64_t allocs_forward = 0;
  std::uint64_t allocs_backward = 0;
  std::uint64_t allocs_optimizer = 0;
  std::uint64_t allocs_refresh = 0;
  std::uint64_t allocs_evaluation = 0;
  bool steady_state = false;  ///< epoch claimed by the zero-alloc contract

  // Training-path exchange traffic (evaluation traffic is excluded; it is
  // visible in the global codec/exchange counters instead).
  std::uint64_t messages = 0;  ///< non-empty pair blocks moved
  std::array<std::uint64_t, kNumWidths> wire_bytes{};  ///< header-less, by width

  // Realized exchange||compute concurrency from stage timestamps
  // (AdaQP fused layer graphs; zero for methods without them).
  OverlapAccum fwd_overlap;
  OverlapAccum bwd_overlap;
};

/// Fixed-capacity per-epoch recorder. All storage is allocated by init();
/// row() and add_pair() never allocate. Epochs at or beyond capacity are
/// dropped (row() returns nullptr) rather than grown.
class RunCapture {
 public:
  /// Dimension for `max_epochs` rows over a `devices`-partition run and
  /// enable capture. Allocates; call outside steady-state epochs only.
  void init(int max_epochs, int devices);

  bool enabled() const { return enabled_; }
  int devices() const { return devices_; }
  /// Highest epoch index written + 1.
  int captured_epochs() const { return captured_; }

  /// Mutable row for `epoch`, or nullptr when capture is disabled or the
  /// epoch is out of capacity. Never allocates.
  EpochRow* row(int epoch);
  const EpochRow& row_at(int epoch) const { return rows_[epoch]; }

  /// Fold one src->dst pair block into the per-pair ledgers of `epoch`.
  /// `width_bytes` excludes the 12-byte block header; `total_bytes` is the
  /// full wire block. Never allocates.
  void add_pair(int epoch, int src, int dst,
                const std::array<std::uint64_t, kNumWidths>& width_bytes,
                std::uint64_t total_bytes);

  std::uint64_t pair_total_bytes(int epoch, int src, int dst) const;
  std::uint64_t pair_messages(int epoch, int src, int dst) const;
  std::uint64_t pair_width_bytes(int epoch, int src, int dst, int w) const;

  /// Critical-path profile rows (obs/profile.h). Dimensioned by its own
  /// init() from DistTrainer::run() when ADAQP_PROFILE is armed; stays
  /// disabled (and skipped by the report writer) otherwise.
  ProfileCapture& profile() { return profile_; }
  const ProfileCapture& profile() const { return profile_; }

 private:
  std::size_t pair_slot(int epoch, int src, int dst) const {
    return (static_cast<std::size_t>(epoch) * devices_ + src) * devices_ + dst;
  }

  bool enabled_ = false;
  int capacity_ = 0;
  int devices_ = 0;
  int captured_ = 0;
  std::vector<EpochRow> rows_;
  std::vector<std::uint64_t> pair_total_;  // [epoch][src][dst]
  std::vector<std::uint64_t> pair_msgs_;   // [epoch][src][dst]
  std::vector<std::uint64_t> pair_width_;  // [epoch][src][dst][width]
  ProfileCapture profile_;
};

/// Run-level header of the report.
struct ReportMeta {
  std::string method;
  std::string model;
  std::string dataset;
  std::string partition;
  int devices = 0;
  int layers = 0;
  int threads = 1;
  /// std::thread::hardware_concurrency() of the host, recorded next to
  /// every overlap/speedup figure so a 1-core CI runner's numbers are
  /// machine-readably suspect (ROADMAP's measurement-gap caveat).
  int hardware_threads = 0;
  /// True when hardware_threads < threads: overlap efficiency and speedup
  /// figures from this run reflect oversubscription, not real parallelism.
  bool low_parallelism_host = false;
  bool async = false;
  int epochs_requested = 0;
  double sim_train_seconds = 0.0;
  double assign_seconds = 0.0;
  std::uint64_t total_comm_bytes = 0;
};

inline constexpr std::string_view kReportSchema = "adaqp-metrics-v1";

/// Write the report to cfg.path in cfg.format (JSON includes a full
/// registry snapshot). Returns false if the file could not be opened.
/// Allocates freely — shutdown path only.
bool write_report(const RunCapture& capture, const ReportMeta& meta,
                  const ReportConfig& cfg);

}  // namespace adaqp::obs
