#include "obs/run_report.h"

#include <cstdio>
#include <utility>

namespace adaqp::obs {

// ---------------------------------------------------------------------------
// JSON string escaping (shared with pipeline/trace.cpp)
// ---------------------------------------------------------------------------

void json_escape(std::string_view s, std::string& out) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\f': out += "\\f"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

std::string json_escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_escape(s, out);
  return out;
}

// ---------------------------------------------------------------------------
// RunCapture
// ---------------------------------------------------------------------------

void RunCapture::init(int max_epochs, int devices) {
  capacity_ = max_epochs > 0 ? max_epochs : 0;
  devices_ = devices > 0 ? devices : 0;
  captured_ = 0;
  enabled_ = true;
  rows_.assign(static_cast<std::size_t>(capacity_), EpochRow{});
  const std::size_t pairs =
      static_cast<std::size_t>(capacity_) * devices_ * devices_;
  pair_total_.assign(pairs, 0);
  pair_msgs_.assign(pairs, 0);
  pair_width_.assign(pairs * kNumWidths, 0);
}

EpochRow* RunCapture::row(int epoch) {
  if (!enabled_ || epoch < 0 || epoch >= capacity_) return nullptr;
  if (epoch + 1 > captured_) captured_ = epoch + 1;
  return &rows_[static_cast<std::size_t>(epoch)];
}

void RunCapture::add_pair(
    int epoch, int src, int dst,
    const std::array<std::uint64_t, kNumWidths>& width_bytes,
    std::uint64_t total_bytes) {
  if (!enabled_ || epoch < 0 || epoch >= capacity_) return;
  const std::size_t slot = pair_slot(epoch, src, dst);
  pair_total_[slot] += total_bytes;
  pair_msgs_[slot] += 1;
  for (int w = 0; w < kNumWidths; ++w)
    pair_width_[slot * kNumWidths + w] += width_bytes[static_cast<std::size_t>(w)];
}

std::uint64_t RunCapture::pair_total_bytes(int epoch, int src, int dst) const {
  return pair_total_[pair_slot(epoch, src, dst)];
}

std::uint64_t RunCapture::pair_messages(int epoch, int src, int dst) const {
  return pair_msgs_[pair_slot(epoch, src, dst)];
}

std::uint64_t RunCapture::pair_width_bytes(int epoch, int src, int dst,
                                           int w) const {
  return pair_width_[pair_slot(epoch, src, dst) * kNumWidths + w];
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kWidthKeys[kNumWidths] = {"b2", "b4", "b8", "b32"};

void append_num(std::string& out, double v) {
  // NaN/inf are not valid JSON: report them as null.
  if (!(v == v) || v > 1e300 || v < -1e300) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_kv(std::string& out, const char* key, double v, bool comma = true) {
  out += '"';
  out += key;
  out += "\": ";
  append_num(out, v);
  if (comma) out += ", ";
}

void append_overlap(std::string& out, const OverlapAccum& o) {
  out += "{";
  append_kv(out, "exchange_busy_s", o.exchange_busy_s);
  append_kv(out, "compute_busy_s", o.compute_busy_s);
  append_kv(out, "overlap_s", o.overlap_s);
  append_kv(out, "efficiency", o.efficiency(), /*comma=*/false);
  out += "}";
}

void append_width_object(std::string& out,
                         const std::array<std::uint64_t, kNumWidths>& v) {
  out += "{";
  for (int w = 0; w < kNumWidths; ++w) {
    if (w) out += ", ";
    out += '"';
    out += kWidthKeys[w];
    out += "\": ";
    append_u64(out, v[static_cast<std::size_t>(w)]);
  }
  out += "}";
}

void append_category_object(
    std::string& out, const std::array<double, kNumProfileCategories>& v) {
  out += "{";
  for (int c = 0; c < kNumProfileCategories; ++c) {
    if (c) out += ", ";
    out += '"';
    out += profile_category_key(c);
    out += "_s\": ";
    append_num(out, v[static_cast<std::size_t>(c)]);
  }
  out += "}";
}

// The versioned adaqp-profile-v1 section: per-epoch critical-path
// attribution, what-if projections and per-segment detail, rendered from
// the ProfileCapture rows (docs/OBSERVABILITY.md, "Critical-path
// profiler"; validated by tools/metrics_schema_check, consumed by
// tools/profile_report).
void append_profile(std::string& out, const RunCapture& cap) {
  const ProfileCapture& prof = cap.profile();
  out += "  \"profile\": {\"schema\": \"";
  out += kProfileSchema;
  out += "\", \"enabled\": true,\n  \"epochs\": [\n";
  for (int e = 0; e < prof.captured_epochs(); ++e) {
    const EpochProfile ep = prof.epoch_rollup(e);
    out += "    {\"epoch\": ";
    append_i64(out, e);
    out += ", ";
    append_kv(out, "attributed_wall_s", ep.attributed_wall_s);
    append_kv(out, "critical_path_s", ep.cp_s);
    append_kv(out, "busy_s", ep.busy_s);
    append_kv(out, "slack_s", ep.slack_s, /*comma=*/false);
    out += ", \"attribution\": {";
    for (int c = 0; c < kNumProfileCategories; ++c) {
      out += '"';
      out += profile_category_key(c);
      out += "_s\": ";
      append_num(out, ep.category_s[static_cast<std::size_t>(c)]);
      out += ", ";
    }
    append_kv(out, "optimizer_s", ep.optimizer_s);
    append_kv(out, "scheduling_s", ep.scheduling_s);
    append_kv(out, "serial_s", ep.serial_s, /*comma=*/false);
    out += "}, \"what_if\": {";
    append_kv(out, "zero_wire_s", ep.zero_wire_s);
    append_kv(out, "infinite_thread_s", ep.infinite_thread_s, false);
    out += ", \"sensitivity\": ";
    append_category_object(out, ep.sensitivity_s);
    out += "}, \"segments\": [";
    bool first_seg = true;
    for (int l = 0; l < prof.layers(); ++l) {
      for (int dir = 0; dir < 2; ++dir) {
        const bool forward = dir == 0;
        const SegmentProfile& seg = prof.segment_at(e, l, forward);
        if (seg.stages == 0) continue;
        if (!first_seg) out += ", ";
        first_seg = false;
        out += "{\"layer\": ";
        append_i64(out, l);
        out += forward ? ", \"direction\": \"forward\", "
                       : ", \"direction\": \"backward\", ";
        out += "\"stages\": ";
        append_i64(out, seg.stages);
        out += ", \"critical_path_stages\": ";
        append_i64(out, seg.cp_stages);
        out += ", ";
        append_kv(out, "makespan_s", seg.makespan_s);
        append_kv(out, "critical_path_s", seg.cp_s);
        append_kv(out, "busy_s", seg.busy_s);
        append_kv(out, "slack_s", seg.slack_s);
        append_kv(out, "zero_wire_critical_path_s", seg.zero_wire_cp_s,
                  /*comma=*/false);
        out += ", \"overlap\": ";
        append_overlap(out, seg.overlap);
        out += ", \"categories\": ";
        append_category_object(out, seg.category_s);
        out += ", \"sensitivity\": ";
        append_category_object(out, seg.sensitivity_s);
        out += ", \"critical_path\": [";
        const int named = seg.cp_stages < kMaxCpStages ? seg.cp_stages
                                                       : kMaxCpStages;
        for (int i = 0; i < named; ++i) {
          const std::string* name = seg.cp_names[static_cast<std::size_t>(i)];
          if (i) out += ", ";
          out += '"';
          if (name != nullptr) json_escape(*name, out);
          out += '"';
        }
        out += "]}";
      }
    }
    out += "], \"pair_exchange_s\": [";
    bool first_pair = true;
    for (int s = 0; s < prof.devices(); ++s) {
      for (int d = 0; d < prof.devices(); ++d) {
        const double secs = prof.pair_seconds_at(e, s, d);
        if (secs <= 0.0) continue;
        if (!first_pair) out += ", ";
        first_pair = false;
        out += "{\"src\": ";
        append_i64(out, s);
        out += ", \"dst\": ";
        append_i64(out, d);
        out += ", \"seconds\": ";
        append_num(out, secs);
        out += "}";
      }
    }
    out += "]}";
    if (e + 1 < prof.captured_epochs()) out += ",";
    out += "\n";
  }
  out += "  ]},\n";
}

std::string render_json(const RunCapture& cap, const ReportMeta& meta) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\n";
  out += "  \"schema\": \"";
  out += kReportSchema;
  out += "\",\n";
  const auto append_meta = [&out](const char* key, const std::string& v) {
    out += "  \"";
    out += key;
    out += "\": \"";
    json_escape(v, out);
    out += "\",\n";
  };
  append_meta("method", meta.method);
  append_meta("model", meta.model);
  append_meta("dataset", meta.dataset);
  append_meta("partition", meta.partition);
  out += "  \"devices\": ";
  append_i64(out, meta.devices);
  out += ",\n  \"layers\": ";
  append_i64(out, meta.layers);
  out += ",\n  \"threads\": ";
  append_i64(out, meta.threads);
  out += ",\n  \"hardware_threads\": ";
  append_i64(out, meta.hardware_threads);
  out += ",\n  \"low_parallelism_host\": ";
  out += meta.low_parallelism_host ? "true" : "false";
  out += ",\n  \"async\": ";
  out += meta.async ? "true" : "false";
  out += ",\n  \"epochs_requested\": ";
  append_i64(out, meta.epochs_requested);
  out += ",\n  \"epochs_captured\": ";
  append_i64(out, cap.captured_epochs());
  out += ",\n  \"sim_train_seconds\": ";
  append_num(out, meta.sim_train_seconds);
  out += ",\n  \"assign_seconds\": ";
  append_num(out, meta.assign_seconds);
  out += ",\n  \"total_comm_bytes\": ";
  append_u64(out, meta.total_comm_bytes);
  out += ",\n  \"epochs\": [\n";
  for (int e = 0; e < cap.captured_epochs(); ++e) {
    const EpochRow& r = cap.row_at(e);
    out += "    {\"epoch\": ";
    append_i64(out, r.epoch);
    out += ", ";
    append_kv(out, "train_loss", r.train_loss);
    append_kv(out, "val_acc", r.val_acc);
    append_kv(out, "test_acc", r.test_acc);
    out += "\"sim\": {";
    append_kv(out, "comm_s", r.sim_comm_s);
    append_kv(out, "comp_s", r.sim_comp_s);
    append_kv(out, "quant_s", r.sim_quant_s);
    append_kv(out, "total_s", r.sim_total_s, false);
    out += "}, \"wall\": {";
    append_kv(out, "forward_s", r.wall.forward_s);
    append_kv(out, "backward_s", r.wall.backward_s);
    append_kv(out, "optimizer_s", r.wall.optimizer_s);
    append_kv(out, "refresh_s", r.wall.refresh_s);
    append_kv(out, "evaluation_s", r.wall.evaluation_s);
    append_kv(out, "total_s", r.wall.total(), false);
    out += "}, \"allocs\": {\"forward\": ";
    append_u64(out, r.allocs_forward);
    out += ", \"backward\": ";
    append_u64(out, r.allocs_backward);
    out += ", \"optimizer\": ";
    append_u64(out, r.allocs_optimizer);
    out += ", \"refresh\": ";
    append_u64(out, r.allocs_refresh);
    out += ", \"evaluation\": ";
    append_u64(out, r.allocs_evaluation);
    out += ", \"steady_state\": ";
    out += r.steady_state ? "true" : "false";
    out += "}, \"exchange\": {\"messages\": ";
    append_u64(out, r.messages);
    out += ", \"wire_bytes\": ";
    append_width_object(out, r.wire_bytes);
    out += "}, \"overlap\": {\"forward\": ";
    append_overlap(out, r.fwd_overlap);
    out += ", \"backward\": ";
    append_overlap(out, r.bwd_overlap);
    out += "}, \"pairs\": [";
    bool first_pair = true;
    for (int s = 0; s < cap.devices(); ++s) {
      for (int d = 0; d < cap.devices(); ++d) {
        if (cap.pair_messages(e, s, d) == 0) continue;
        if (!first_pair) out += ", ";
        first_pair = false;
        out += "{\"src\": ";
        append_i64(out, s);
        out += ", \"dst\": ";
        append_i64(out, d);
        out += ", \"messages\": ";
        append_u64(out, cap.pair_messages(e, s, d));
        out += ", \"bytes\": ";
        append_u64(out, cap.pair_total_bytes(e, s, d));
        out += ", \"by_width\": {";
        for (int w = 0; w < kNumWidths; ++w) {
          if (w) out += ", ";
          out += '"';
          out += kWidthKeys[w];
          out += "\": ";
          append_u64(out, cap.pair_width_bytes(e, s, d, w));
        }
        out += "}}";
      }
    }
    out += "]}";
    if (e + 1 < cap.captured_epochs()) out += ",";
    out += "\n";
  }
  out += "  ],\n";

  if (cap.profile().enabled()) append_profile(out, cap);

  const Registry::Snapshot snap = Registry::instance().snapshot();
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ", ";
    out += '"';
    json_escape(snap.counters[i].first, out);
    out += "\": ";
    append_u64(out, snap.counters[i].second);
  }
  out += "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ", ";
    out += '"';
    json_escape(snap.gauges[i].first, out);
    out += "\": ";
    append_i64(out, snap.gauges[i].second);
  }
  out += "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i) out += ", ";
    out += '"';
    json_escape(h.name, out);
    out += "\": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_num(out, h.sum);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out += ", ";
      out += "{\"le\": ";
      if (b < h.bounds.size())
        append_num(out, h.bounds[b]);
      else
        out += "\"inf\"";
      out += ", \"count\": ";
      append_u64(out, h.counts[b]);
      out += "}";
    }
    out += "]}";
  }
  out += "}\n}\n";
  return out;
}

std::string render_csv(const RunCapture& cap, const ReportMeta& meta) {
  std::string out;
  out +=
      "# adaqp-metrics-v1 csv: method=" + meta.method +
      " model=" + meta.model + " dataset=" + meta.dataset + "\n";
  out +=
      "epoch,train_loss,val_acc,test_acc,"
      "sim_comm_s,sim_comp_s,sim_quant_s,sim_total_s,"
      "wall_forward_s,wall_backward_s,wall_optimizer_s,wall_refresh_s,"
      "wall_evaluation_s,"
      "allocs_forward,allocs_backward,allocs_optimizer,allocs_refresh,"
      "allocs_evaluation,steady_state,"
      "messages,wire_bytes_b2,wire_bytes_b4,wire_bytes_b8,wire_bytes_b32,"
      "fwd_overlap_efficiency,bwd_overlap_efficiency\n";
  for (int e = 0; e < cap.captured_epochs(); ++e) {
    const EpochRow& r = cap.row_at(e);
    append_i64(out, r.epoch);
    for (const double v :
         {r.train_loss, r.val_acc, r.test_acc, r.sim_comm_s, r.sim_comp_s,
          r.sim_quant_s, r.sim_total_s, r.wall.forward_s, r.wall.backward_s,
          r.wall.optimizer_s, r.wall.refresh_s, r.wall.evaluation_s}) {
      out += ',';
      append_num(out, v);
    }
    for (const std::uint64_t v :
         {r.allocs_forward, r.allocs_backward, r.allocs_optimizer,
          r.allocs_refresh, r.allocs_evaluation}) {
      out += ',';
      append_u64(out, v);
    }
    out += r.steady_state ? ",1," : ",0,";
    append_u64(out, r.messages);
    for (int w = 0; w < kNumWidths; ++w) {
      out += ',';
      append_u64(out, r.wire_bytes[static_cast<std::size_t>(w)]);
    }
    out += ',';
    append_num(out, r.fwd_overlap.efficiency());
    out += ',';
    append_num(out, r.bwd_overlap.efficiency());
    out += '\n';
  }
  return out;
}

// Prometheus text exposition of the registry snapshot (instrument names
// have '.' flattened to '_'). The per-epoch detail is JSON/CSV only — the
// prom dump is the live-scrape shape for the future serving path.
std::string render_prom(const ReportMeta& meta) {
  std::string out;
  const auto prom_name = [](const std::string& name) {
    std::string flat = "adaqp_";
    for (const char c : name) flat += (c == '.' || c == '-') ? '_' : c;
    return flat;
  };
  out += "# adaqp-metrics-v1 prom: method=" + meta.method +
         " dataset=" + meta.dataset + "\n";
  const Registry::Snapshot snap = Registry::instance().snapshot();
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + "_total counter\n" + n + "_total ";
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n" + n + " ";
    append_i64(out, value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      out += n + "_bucket{le=\"";
      if (b < h.bounds.size())
        append_num(out, h.bounds[b]);
      else
        out += "+Inf";
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += n + "_sum ";
    append_num(out, h.sum);
    out += '\n' + n + "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

}  // namespace

bool write_report(const RunCapture& capture, const ReportMeta& meta,
                  const ReportConfig& cfg) {
  if (!cfg.enabled || cfg.path.empty()) return false;
  std::string body;
  switch (cfg.format) {
    case ReportFormat::kJson: body = render_json(capture, meta); break;
    case ReportFormat::kCsv: body = render_csv(capture, meta); break;
    case ReportFormat::kProm: body = render_prom(meta); break;
  }
  std::FILE* f = std::fopen(cfg.path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace adaqp::obs
