// Multilevel k-way partitioner (METIS-style).
//
// Pipeline: heavy-edge-matching coarsening builds a hierarchy of weighted
// graphs; the coarsest graph is partitioned by greedy region growing seeded
// at mutually distant nodes; the assignment is projected back level by level
// with FM-style greedy boundary refinement under a balance constraint.
#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "partition/partitioner.h"
#include "runtime/parallel_for.h"

namespace adaqp {
namespace {

/// Weighted graph used internally during coarsening. Adjacency is a flat
/// CSR-like layout of (neighbor, edge-weight) pairs.
struct WGraph {
  std::vector<std::size_t> offsets;                 // size n+1
  std::vector<std::pair<NodeId, double>> adj;       // neighbor, weight
  std::vector<double> node_weight;                  // #original vertices

  std::size_t n() const { return node_weight.size(); }
  std::span<const std::pair<NodeId, double>> neighbors(NodeId v) const {
    return {adj.data() + offsets[v], offsets[v + 1] - offsets[v]};
  }
  double total_node_weight() const {
    double acc = 0.0;
    for (double w : node_weight) acc += w;
    return acc;
  }
};

WGraph from_graph(const Graph& g) {
  WGraph wg;
  wg.offsets.resize(g.num_nodes() + 1);
  wg.adj.reserve(g.num_directed_edges());
  wg.node_weight.assign(g.num_nodes(), 1.0);
  wg.offsets[0] = 0;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(static_cast<NodeId>(v)))
      wg.adj.emplace_back(u, 1.0);
    wg.offsets[v + 1] = wg.adj.size();
  }
  return wg;
}

/// One level of heavy-edge matching: visit nodes in random order and match
/// each unmatched node with its unmatched neighbor of largest edge weight.
/// Returns coarse graph and the fine→coarse map.
struct CoarsenStep {
  WGraph coarse;
  std::vector<NodeId> fine_to_coarse;
};

CoarsenStep coarsen_once(const WGraph& g, Rng& rng) {
  const std::size_t n = g.n();
  std::vector<NodeId> match(n, std::numeric_limits<NodeId>::max());
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);

  const NodeId unmatched = std::numeric_limits<NodeId>::max();
  for (NodeId v : order) {
    if (match[v] != unmatched) continue;
    NodeId best = unmatched;
    double best_w = -1.0;
    for (const auto& [u, w] : g.neighbors(v)) {
      if (u == v || match[u] != unmatched) continue;
      if (w > best_w) {
        best_w = w;
        best = u;
      }
    }
    if (best != unmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // matched with itself
    }
  }

  CoarsenStep step;
  step.fine_to_coarse.assign(n, unmatched);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (step.fine_to_coarse[v] != unmatched) continue;
    step.fine_to_coarse[v] = next;
    if (match[v] != v) step.fine_to_coarse[match[v]] = next;
    ++next;
  }

  // Coarse-graph construction — the O(E) sweep that dominates coarsening —
  // runs coarse-node-parallel on the runtime pool. Bit-identical to the old
  // serial whole-graph sweep: every contribution to coarse node cv comes
  // from cv's own fine members, so accumulating members in ascending fine
  // id replays the exact per-(cv, cu) double-addition order the serial
  // v-ascending sweep produced, and each task writes only its own rows.
  // (The matching scan above stays serial: each match decision depends on
  // every earlier one.)
  const std::size_t cn = next;

  // Invert fine_to_coarse into member lists, ascending fine id per node.
  std::vector<std::size_t> member_off(cn + 1, 0);
  for (NodeId v = 0; v < n; ++v) ++member_off[step.fine_to_coarse[v] + 1];
  for (std::size_t c = 0; c < cn; ++c) member_off[c + 1] += member_off[c];
  std::vector<NodeId> members(n);
  {
    std::vector<std::size_t> cursor(member_off.begin(), member_off.end() - 1);
    for (NodeId v = 0; v < n; ++v)
      members[cursor[step.fine_to_coarse[v]]++] = v;
  }

  std::vector<std::vector<std::pair<NodeId, double>>> rows(cn);
  std::vector<double> cw(cn, 0.0);
  parallel_for(cn, 64, [&](std::size_t c0, std::size_t c1) {
    std::unordered_map<NodeId, double> acc;  // reused across this band
    std::vector<NodeId> order;               // first-touch order of cu keys
    for (std::size_t cv = c0; cv < c1; ++cv) {
      acc.clear();
      order.clear();
      double weight = 0.0;
      for (std::size_t m = member_off[cv]; m < member_off[cv + 1]; ++m) {
        const NodeId v = members[m];
        weight += g.node_weight[v];
        for (const auto& [u, w] : g.neighbors(v)) {
          const NodeId cu = step.fine_to_coarse[u];
          if (cu == static_cast<NodeId>(cv)) continue;  // interior edge
          const auto [it, inserted] = acc.try_emplace(cu, 0.0);
          if (inserted) order.push_back(cu);
          it->second += w;
        }
      }
      cw[cv] = weight;
      auto& row = rows[cv];
      row.reserve(order.size());
      for (NodeId cu : order) row.emplace_back(cu, acc[cu]);
      std::sort(row.begin(), row.end());
    }
  });

  step.coarse.node_weight = std::move(cw);
  step.coarse.offsets.resize(cn + 1);
  step.coarse.offsets[0] = 0;
  for (std::size_t v = 0; v < cn; ++v)
    step.coarse.offsets[v + 1] = step.coarse.offsets[v] + rows[v].size();
  step.coarse.adj.resize(step.coarse.offsets[cn]);
  parallel_for(cn, 64, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t v = c0; v < c1; ++v)
      std::copy(rows[v].begin(), rows[v].end(),
                step.coarse.adj.begin() +
                    static_cast<std::ptrdiff_t>(step.coarse.offsets[v]));
  });
  return step;
}

/// Greedy region growing on the coarsest weighted graph: pick k seeds by
/// repeated farthest-first BFS, then grow regions minding weight balance.
std::vector<int> initial_partition(const WGraph& g, int k, Rng& rng) {
  const std::size_t n = g.n();
  std::vector<int> part(n, -1);
  if (k == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }
  const double total_w = g.total_node_weight();
  const double target = total_w / k;

  // Farthest-first seed selection (BFS hop distance). Seeds must be able to
  // grow regions, so only *reachable* nodes qualify as "far": graphs with
  // isolated singletons (power-law generators produce them) would otherwise
  // soak up every seed into zero-degree nodes whose regions can never grow.
  // The first seed is the max-degree node, guaranteed inside the main
  // component.
  (void)rng;
  std::vector<NodeId> seeds;
  {
    NodeId best = 0;
    std::size_t best_deg = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t deg = g.neighbors(static_cast<NodeId>(v)).size();
      if (deg >= best_deg) {
        best_deg = deg;
        best = static_cast<NodeId>(v);
      }
    }
    seeds.push_back(best);
  }
  std::vector<int> dist(n);
  while (static_cast<int>(seeds.size()) < k) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<NodeId> q;
    for (NodeId s : seeds) {
      dist[s] = 0;
      q.push(s);
    }
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const auto& [u, w] : g.neighbors(v)) {
        (void)w;
        if (dist[u] < 0) {
          dist[u] = dist[v] + 1;
          q.push(u);
        }
      }
    }
    NodeId far = std::numeric_limits<NodeId>::max();
    int far_d = -1;
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < 0 || g.neighbors(static_cast<NodeId>(v)).empty())
        continue;  // unreachable or isolated: cannot grow a region
      if (dist[v] > far_d &&
          std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
        far_d = dist[v];
        far = static_cast<NodeId>(v);
      }
    }
    if (far == std::numeric_limits<NodeId>::max()) {
      // No reachable non-seed left (tiny main component): fall back to the
      // heaviest unseeded node anywhere.
      double best_w = -1.0;
      for (std::size_t v = 0; v < n; ++v) {
        if (std::find(seeds.begin(), seeds.end(), v) != seeds.end()) continue;
        if (g.node_weight[v] > best_w) {
          best_w = g.node_weight[v];
          far = static_cast<NodeId>(v);
        }
      }
    }
    seeds.push_back(far);
  }

  // Grow all regions simultaneously: a priority queue per part of frontier
  // nodes scored by connection weight; always extend the lightest part.
  std::vector<double> load(k, 0.0);
  using Cand = std::pair<double, NodeId>;  // (gain, node)
  std::vector<std::priority_queue<Cand>> frontier(k);
  for (int p = 0; p < k; ++p) {
    part[seeds[p]] = p;
    load[p] += g.node_weight[seeds[p]];
    for (const auto& [u, w] : g.neighbors(seeds[p]))
      if (part[u] < 0) frontier[p].emplace(w, u);
  }
  std::size_t assigned = static_cast<std::size_t>(k);
  while (assigned < n) {
    // lightest part with a non-empty frontier
    int p = -1;
    for (int q2 = 0; q2 < k; ++q2)
      if (!frontier[q2].empty() && (p < 0 || load[q2] < load[p])) p = q2;
    if (p < 0) {
      // disconnected remainder: assign an arbitrary unassigned node to the
      // lightest part and continue growing from it
      p = static_cast<int>(std::min_element(load.begin(), load.end()) -
                           load.begin());
      for (std::size_t v = 0; v < n; ++v)
        if (part[v] < 0) {
          part[v] = p;
          load[p] += g.node_weight[v];
          ++assigned;
          for (const auto& [u, w] : g.neighbors(static_cast<NodeId>(v)))
            if (part[u] < 0) frontier[p].emplace(w, u);
          break;
        }
      continue;
    }
    const auto [gain, v] = frontier[p].top();
    (void)gain;
    frontier[p].pop();
    if (part[v] >= 0) continue;
    if (load[p] + g.node_weight[v] > 1.3 * target && assigned + 1 < n) {
      // part would overflow badly; push node back later via other parts
      bool other_has = false;
      for (int q2 = 0; q2 < k; ++q2)
        if (q2 != p && !frontier[q2].empty()) other_has = true;
      if (other_has) continue;
    }
    part[v] = p;
    load[p] += g.node_weight[v];
    ++assigned;
    for (const auto& [u, w] : g.neighbors(v))
      if (part[u] < 0) frontier[p].emplace(w, u);
  }
  return part;
}

/// FM-style greedy refinement: repeatedly move boundary nodes to the
/// neighboring part with the largest cut-weight gain, subject to balance.
void refine(const WGraph& g, std::vector<int>& part, int k,
            double max_imbalance, int passes) {
  const std::size_t n = g.n();
  const double total_w = g.total_node_weight();
  const double cap = max_imbalance * total_w / k;
  std::vector<double> load(k, 0.0);
  for (std::size_t v = 0; v < n; ++v) load[part[v]] += g.node_weight[v];

  std::vector<double> conn(k);
  for (int pass = 0; pass < passes; ++pass) {
    bool moved_any = false;
    for (std::size_t v = 0; v < n; ++v) {
      const int pv = part[v];
      std::fill(conn.begin(), conn.end(), 0.0);
      bool boundary = false;
      for (const auto& [u, w] : g.neighbors(static_cast<NodeId>(v))) {
        conn[part[u]] += w;
        if (part[u] != pv) boundary = true;
      }
      // Interior nodes only move when their part must shed weight; without
      // this, a zero-cut but imbalanced partition would be a fixed point.
      if (!boundary && load[pv] <= cap) continue;
      int best = pv;
      double best_gain = 0.0;
      for (int p = 0; p < k; ++p) {
        if (p == pv) continue;
        if (load[p] + g.node_weight[v] > cap) continue;
        const double gain = conn[p] - conn[pv];
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best = p;
        }
      }
      // Also allow zero-gain moves from overloaded parts to restore balance.
      if (best == pv && load[pv] > cap) {
        double lightest = std::numeric_limits<double>::infinity();
        for (int p = 0; p < k; ++p)
          if (p != pv && load[p] < lightest) {
            lightest = load[p];
            best = p;
          }
      }
      if (best != pv) {
        load[pv] -= g.node_weight[v];
        load[best] += g.node_weight[v];
        part[v] = best;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
}

}  // namespace

PartitionResult MultilevelPartitioner::partition(const Graph& g, int num_parts,
                                                 Rng& rng) const {
  ADAQP_CHECK(num_parts >= 1);
  PartitionResult out;
  out.num_parts = num_parts;
  if (g.num_nodes() == 0) return out;
  if (num_parts == 1) {
    out.part_of.assign(g.num_nodes(), 0);
    return out;
  }

  // Coarsening phase.
  std::vector<WGraph> levels;
  std::vector<std::vector<NodeId>> maps;  // maps[i]: level i -> level i+1
  levels.push_back(from_graph(g));
  const std::size_t stop =
      std::max<std::size_t>(opts_.coarsen_until,
                            static_cast<std::size_t>(num_parts) * 8);
  while (levels.back().n() > stop) {
    CoarsenStep step = coarsen_once(levels.back(), rng);
    // Matching stalls on graphs with no edges or all-matched-to-self.
    if (step.coarse.n() >= levels.back().n()) break;
    maps.push_back(std::move(step.fine_to_coarse));
    levels.push_back(std::move(step.coarse));
  }

  // Initial partition on the coarsest level, then project + refine upward.
  std::vector<int> part = initial_partition(levels.back(), num_parts, rng);
  refine(levels.back(), part, num_parts, opts_.max_imbalance,
         opts_.refine_passes);
  for (std::size_t lvl = levels.size(); lvl-- > 1;) {
    const auto& map = maps[lvl - 1];
    std::vector<int> finer(levels[lvl - 1].n());
    parallel_for(finer.size(), 1024, [&](std::size_t v0, std::size_t v1) {
      for (std::size_t v = v0; v < v1; ++v) finer[v] = part[map[v]];
    });
    part = std::move(finer);
    refine(levels[lvl - 1], part, num_parts, opts_.max_imbalance,
           opts_.refine_passes);
  }
  out.part_of = std::move(part);
  return out;
}

}  // namespace adaqp
