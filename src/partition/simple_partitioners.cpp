#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "partition/partitioner.h"

namespace adaqp {

std::vector<std::size_t> PartitionResult::part_sizes() const {
  std::vector<std::size_t> sizes(num_parts, 0);
  for (int p : part_of) sizes[p]++;
  return sizes;
}

double PartitionResult::balance_factor() const {
  if (part_of.empty() || num_parts == 0) return 1.0;
  const auto sizes = part_sizes();
  const double ideal =
      static_cast<double>(part_of.size()) / static_cast<double>(num_parts);
  const auto max_size = *std::max_element(sizes.begin(), sizes.end());
  return static_cast<double>(max_size) / ideal;
}

void validate_partition(const Graph& g, const PartitionResult& result) {
  ADAQP_CHECK_MSG(result.num_parts >= 1, "num_parts must be >= 1");
  ADAQP_CHECK_MSG(result.part_of.size() == g.num_nodes(),
                  "partition covers " << result.part_of.size() << " of "
                                      << g.num_nodes() << " nodes");
  for (int p : result.part_of)
    ADAQP_CHECK_MSG(p >= 0 && p < result.num_parts, "part id " << p
                        << " outside [0," << result.num_parts << ")");
}

PartitionResult RandomPartitioner::partition(const Graph& g, int num_parts,
                                             Rng& rng) const {
  ADAQP_CHECK(num_parts >= 1);
  PartitionResult out;
  out.num_parts = num_parts;
  out.part_of.resize(g.num_nodes());
  // Balanced random: shuffle node ids, deal them round-robin.
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);
  for (std::size_t i = 0; i < order.size(); ++i)
    out.part_of[order[i]] = static_cast<int>(i % num_parts);
  return out;
}

PartitionResult RangePartitioner::partition(const Graph& g, int num_parts,
                                            Rng& /*rng*/) const {
  ADAQP_CHECK(num_parts >= 1);
  PartitionResult out;
  out.num_parts = num_parts;
  out.part_of.resize(g.num_nodes());
  const std::size_t n = g.num_nodes();
  for (std::size_t v = 0; v < n; ++v)
    out.part_of[v] = static_cast<int>(v * static_cast<std::size_t>(num_parts) / n);
  return out;
}

PartitionResult FennelPartitioner::partition(const Graph& g, int num_parts,
                                             Rng& rng) const {
  ADAQP_CHECK(num_parts >= 1);
  const std::size_t n = g.num_nodes();
  PartitionResult out;
  out.num_parts = num_parts;
  out.part_of.assign(n, -1);
  if (n == 0) return out;

  const double m = static_cast<double>(g.num_undirected_edges());
  // Fennel's alpha = m * (k^(gamma-1)) / n^gamma, standard setting.
  const double alpha = (m > 0 ? m : 1.0) *
                       std::pow(static_cast<double>(num_parts), gamma_ - 1.0) /
                       std::pow(static_cast<double>(n), gamma_);
  const double cap = slack_ * static_cast<double>(n) / num_parts;

  std::vector<std::size_t> load(num_parts, 0);
  std::vector<double> score(num_parts);
  // Random stream order decorrelates from generator layout.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);

  std::vector<int> nbr_count(num_parts);
  for (NodeId v : order) {
    std::fill(nbr_count.begin(), nbr_count.end(), 0);
    for (NodeId u : g.neighbors(v))
      if (out.part_of[u] >= 0) nbr_count[out.part_of[u]]++;
    int best = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (int p = 0; p < num_parts; ++p) {
      if (static_cast<double>(load[p]) + 1.0 > cap) continue;
      const double penalty =
          alpha * gamma_ * std::pow(static_cast<double>(load[p]), gamma_ - 1.0);
      score[p] = static_cast<double>(nbr_count[p]) - penalty;
      if (score[p] > best_score) {
        best_score = score[p];
        best = p;
      }
    }
    if (best < 0) {
      // All parts at capacity cap (can happen with tight slack): least loaded.
      best = static_cast<int>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    out.part_of[v] = best;
    load[best]++;
  }
  return out;
}

PartitionResult LdgPartitioner::partition(const Graph& g, int num_parts,
                                          Rng& rng) const {
  ADAQP_CHECK(num_parts >= 1);
  const std::size_t n = g.num_nodes();
  PartitionResult out;
  out.num_parts = num_parts;
  out.part_of.assign(n, -1);
  if (n == 0) return out;
  const double cap = slack_ * static_cast<double>(n) / num_parts;

  std::vector<std::size_t> load(num_parts, 0);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);

  std::vector<int> nbr_count(num_parts);
  for (NodeId v : order) {
    std::fill(nbr_count.begin(), nbr_count.end(), 0);
    for (NodeId u : g.neighbors(v))
      if (out.part_of[u] >= 0) nbr_count[out.part_of[u]]++;
    int best = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (int p = 0; p < num_parts; ++p) {
      if (static_cast<double>(load[p]) + 1.0 > cap) continue;
      const double score = (static_cast<double>(nbr_count[p]) + 1e-9) *
                           (1.0 - static_cast<double>(load[p]) / cap);
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best < 0)
      best = static_cast<int>(
          std::min_element(load.begin(), load.end()) - load.begin());
    out.part_of[v] = best;
    load[best]++;
  }
  return out;
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name) {
  if (name == "random") return std::make_unique<RandomPartitioner>();
  if (name == "range") return std::make_unique<RangePartitioner>();
  if (name == "fennel") return std::make_unique<FennelPartitioner>();
  if (name == "ldg") return std::make_unique<LdgPartitioner>();
  if (name == "multilevel") return std::make_unique<MultilevelPartitioner>();
  ADAQP_CHECK_MSG(false, "unknown partitioner '" << name << "'");
  return nullptr;
}

}  // namespace adaqp
