// Graph partitioning — the library's substitute for METIS.
//
// The paper partitions each input graph with METIS before training; partition
// quality drives both the remote-neighbor ratio (Table 1) and the skew of
// pairwise communication volumes (Fig. 2). We provide a multilevel
// partitioner with the same architecture as METIS (heavy-edge-matching
// coarsening → greedy initial partition → boundary refinement), a Fennel
// streaming partitioner, and trivial baselines for tests and ablations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace adaqp {

class Rng;

struct PartitionResult {
  std::vector<int> part_of;  ///< part id per node, in [0, num_parts)
  int num_parts = 0;

  std::vector<std::size_t> part_sizes() const;
  /// max part size / ideal part size (1.0 == perfectly balanced).
  double balance_factor() const;
};

/// Validates that `result` is a proper partition of `g` into k parts.
void validate_partition(const Graph& g, const PartitionResult& result);

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual PartitionResult partition(const Graph& g, int num_parts,
                                    Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Uniform random assignment (worst-case cut; ablation baseline).
class RandomPartitioner final : public Partitioner {
 public:
  PartitionResult partition(const Graph& g, int num_parts,
                            Rng& rng) const override;
  std::string name() const override { return "random"; }
};

/// Contiguous index ranges (exploits generator locality; cheap baseline).
class RangePartitioner final : public Partitioner {
 public:
  PartitionResult partition(const Graph& g, int num_parts,
                            Rng& rng) const override;
  std::string name() const override { return "range"; }
};

/// Fennel one-pass streaming partitioner (Tsourakakis et al.):
/// greedily place each node to maximize (intra-part neighbors) minus a
/// superlinear load penalty.
class FennelPartitioner final : public Partitioner {
 public:
  /// gamma > 1 controls the load-penalty exponent; slack bounds part size at
  /// slack * ideal.
  explicit FennelPartitioner(double gamma = 1.5, double slack = 1.10)
      : gamma_(gamma), slack_(slack) {}
  PartitionResult partition(const Graph& g, int num_parts,
                            Rng& rng) const override;
  std::string name() const override { return "fennel"; }

 private:
  double gamma_;
  double slack_;
};

/// Linear Deterministic Greedy (LDG) streaming partitioner (Stanton &
/// Kliot): place each node in the part maximizing
/// |neighbors already in part| * (1 - load/capacity).
class LdgPartitioner final : public Partitioner {
 public:
  explicit LdgPartitioner(double slack = 1.10) : slack_(slack) {}
  PartitionResult partition(const Graph& g, int num_parts,
                            Rng& rng) const override;
  std::string name() const override { return "ldg"; }

 private:
  double slack_;
};

/// METIS-style multilevel partitioner:
///  1. coarsen by heavy-edge matching until the graph is small,
///  2. partition the coarsest graph by greedy region growing,
///  3. project back, refining with greedy boundary moves (FM-style) under a
///     balance constraint at every level.
class MultilevelPartitioner final : public Partitioner {
 public:
  struct Options {
    std::size_t coarsen_until = 256;  ///< stop coarsening below this size
    int refine_passes = 6;            ///< boundary-refinement sweeps per level
    double max_imbalance = 1.05;      ///< allowed max-part/ideal ratio
  };
  MultilevelPartitioner() : opts_(Options{}) {}
  explicit MultilevelPartitioner(const Options& opts) : opts_(opts) {}
  PartitionResult partition(const Graph& g, int num_parts,
                            Rng& rng) const override;
  std::string name() const override { return "multilevel"; }

 private:
  Options opts_;
};

/// Factory by name ("random" | "range" | "fennel" | "ldg" | "multilevel").
std::unique_ptr<Partitioner> make_partitioner(const std::string& name);

}  // namespace adaqp
