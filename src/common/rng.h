// Deterministic pseudo-random number generation for the whole library.
//
// All stochastic components (graph generators, stochastic rounding, dropout,
// weight init) take an explicit Rng so every experiment is reproducible from
// a single seed. The engine is xoshiro256** (Blackman & Vigna), chosen for
// speed and quality; std::mt19937_64 is deliberately avoided because its
// state is large and its distributions are not stable across libstdc++
// versions. All distribution code here is self-contained.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace adaqp {

/// Counter-free splittable PRNG used to seed per-object streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with self-contained, version-stable distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream (for per-device / per-layer RNGs).
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ull); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1) with 24 bits of precision (fast path used by
  /// stochastic rounding, where one draw is needed per tensor element).
  float uniform_float() {
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_int(std::uint64_t bound) {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (stateless variant; one value per call).
  double normal() {
    double u1 = uniform();
    while (u1 <= std::numeric_limits<double>::min()) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Geometric-ish power-law degree sample in [1, cap] with exponent gamma.
  std::uint64_t power_law(double gamma, std::uint64_t cap) {
    // Inverse-CDF sampling of P(k) ~ k^-gamma over continuous [1, cap].
    const double u = uniform();
    const double one_minus_g = 1.0 - gamma;
    const double a = std::pow(1.0, one_minus_g);
    const double b = std::pow(static_cast<double>(cap), one_minus_g);
    const double x = std::pow(a + u * (b - a), 1.0 / one_minus_g);
    const auto k = static_cast<std::uint64_t>(x);
    return k < 1 ? 1 : (k > cap ? cap : k);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace adaqp
