// Strict environment-variable parsing — the single front door for every
// ADAQP_* runtime knob.
//
// The library's configuration contract (docs/ENVVARS.md) is that a malformed
// value raises std::runtime_error with a message naming the variable, the
// accepted values and the offending text, instead of silently picking a
// default — a typo'd knob must never run a misconfigured experiment. Before
// this header existed each consumer hand-rolled its own std::getenv + parse;
// now they all call these helpers, and tools/lint/ enforces that std::getenv
// appears nowhere else in the library (rule `env-via-helpers`), so a new knob
// cannot quietly opt out of strictness.
//
// Consumers:
//   ADAQP_THREADS    src/runtime/thread_pool.cpp   env::int_in_range
//   ADAQP_ASYNC      src/pipeline/config.cpp       env::flag01
//   ADAQP_ISA        src/simd/dispatch.cpp         env::text
//   ADAQP_TRACE      src/core/trainer.cpp          env::text
//   ADAQP_RACECHECK  src/analysis/race_checker.cpp env::flag01
//   ADAQP_RACECHECK_REPORT  src/analysis/          env::text
//   ADAQP_ALLOC_TRACK  src/memory/alloc_track.cpp  env::flag01
//   ADAQP_METRICS    src/obs/metrics.cpp           env::text
//   ADAQP_METRICS_FORMAT  src/obs/metrics.cpp      env::text
//   ADAQP_PROFILE    src/obs/profile.cpp           env::flag01
//   ADAQP_TRANSPORT  src/transport/transport.cpp   env::text
//   ADAQP_TP_RANK / _NPROCS / _BASE_PORT / _TIMEOUT_MS / _MAX_CHUNK
//                    src/transport/tcp.cpp         env::int_in_range
//   ADAQP_FAULT      src/transport/transport.cpp   env::flag01
//   ADAQP_FAULT_SEED / _DELAY_US / _REORDER / _SPLIT / _DROP_PERMILLE /
//   _TIMEOUT_MS      src/transport/fault.cpp       env::int_in_range
#pragma once

#include <optional>
#include <string>

namespace adaqp::env {

/// Raw lookup. Returns nullptr when unset. This wrapper (its implementation
/// in env.cpp) is the only place in the library that calls std::getenv;
/// everything else goes through the typed helpers below.
const char* raw(const char* name);

/// The variable's value as a string; nullopt when unset or empty. No
/// validation — for free-form values (file paths, ISA names validated by
/// their consumer).
std::optional<std::string> text(const char* name);

/// Strict boolean knob: unset/empty -> `def`; "0" -> false; "1" -> true;
/// anything else throws std::runtime_error naming the variable.
bool flag01(const char* name, bool def);

/// Strict integer knob: unset/empty -> nullopt. The whole value must parse
/// as a base-10 integer (no trailing text), else std::runtime_error naming
/// the variable and the accepted range. Parsed values are clamped to
/// [lo, hi].
std::optional<long> int_in_range(const char* name, long lo, long hi);

}  // namespace adaqp::env
