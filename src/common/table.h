// Console table and CSV emission used by the benchmark harness to print the
// same rows/series the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace adaqp {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  std::string to_string() const;

  /// Render as CSV (RFC-4180-ish quoting of commas/quotes).
  std::string to_csv() const;

  /// Write CSV to a file path, creating parent directories if needed.
  void write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string pct(double v, int precision = 2);  // 0.41 -> "41.00%"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write arbitrary text to `path`, creating parent directories.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace adaqp
