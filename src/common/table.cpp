#include "common/table.h"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace adaqp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ADAQP_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ADAQP_CHECK_MSG(cells.size() == header_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    oss << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      oss << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    oss << '\n';
  };
  emit_row(header_);
  oss << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    oss << std::string(widths[c] + 2, '-') << "|";
  oss << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << ',';
      oss << csv_escape(row[c]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void Table::write_csv(const std::string& path) const {
  write_text_file(path, to_csv());
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::pct(double v, int precision) {
  return fmt(v * 100.0, precision) + "%";
}

void write_text_file(const std::string& path, const std::string& text) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  ADAQP_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << text;
}

}  // namespace adaqp
