// Lightweight runtime-check macros used across the library.
//
// ADAQP_CHECK is always on (it guards API contracts and data-integrity
// invariants such as codec stream bounds); failures throw std::runtime_error
// with file/line context so callers and tests can observe them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace adaqp::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw std::runtime_error(oss.str());
}

}  // namespace adaqp::detail

#define ADAQP_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::adaqp::detail::check_failed(#cond, __FILE__, __LINE__, "");        \
  } while (0)

#define ADAQP_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream oss_;                                             \
      oss_ << msg;                                                         \
      ::adaqp::detail::check_failed(#cond, __FILE__, __LINE__, oss_.str());\
    }                                                                      \
  } while (0)
