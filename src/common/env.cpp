#include "common/env.h"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace adaqp::env {

// The library's sole std::getenv call site (lint rule `env-via-helpers`).
const char* raw(const char* name) { return std::getenv(name); }

std::optional<std::string> text(const char* name) {
  const char* value = raw(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

bool flag01(const char* name, bool def) {
  const char* value = raw(name);
  if (value == nullptr || *value == '\0') return def;
  if (std::strcmp(value, "0") == 0) return false;
  if (std::strcmp(value, "1") == 0) return true;
  std::ostringstream msg;
  msg << name << " must be 0 or 1; got \"" << value << "\"";
  throw std::runtime_error(msg.str());
}

std::optional<long> int_in_range(const char* name, long lo, long hi) {
  const char* value = raw(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    std::ostringstream msg;
    msg << name << " must be an integer in [" << lo << ", " << hi
        << "]; got \"" << value << "\"";
    throw std::runtime_error(msg.str());
  }
  return parsed < lo ? lo : (parsed > hi ? hi : parsed);
}

}  // namespace adaqp::env
