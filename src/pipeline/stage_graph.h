// Async stage scheduler on top of the runtime thread pool.
//
// A StageGraph is a DAG of named stages (closures) with explicit
// dependencies. launch() submits every dependency-free stage to the thread
// pool's detached queue and returns immediately; as stages finish they
// unblock their dependents, which are submitted in turn. wait() joins the
// whole graph — the waiting thread *helps* drain the detached queue, so a
// graph completes even on a 1-thread pool (where it degrades gracefully to
// inline execution). run_serial() executes the same stages inline in
// ascending id order — the deterministic reference schedule the
// ADAQP_ASYNC=0 escape hatch and the bit-exactness tests compare against.
//
// Determinism contract (the same one src/runtime/ established for
// parallel_for): the scheduler only ever chooses *which thread* runs a
// stage and *when*, never what a stage computes. Stages must write disjoint
// locations, keep any accumulation order internal to a single stage, and
// use private RNG streams (see the per-pair streams in
// pipeline/async_exchange.h) — then every schedule, async or serial, at any
// ADAQP_THREADS value, is bit-identical. tests/test_pipeline.cpp enforces
// this end to end through DistTrainer.
//
// Every stage executes inside a TraceSpan, so an enabled TraceRecorder
// yields a Chrome trace where overlap between exchange and compute stages
// is directly visible.
//
// Lifecycle (build once, run many):
//   1. add() every stage; dependency ids must point at already-added
//      stages, which keeps the graph acyclic by construction.
//   2. Either launch() once and then wait() exactly once (async), or
//      run_serial() once (the reference schedule) — the run(async) helper
//      picks between the two.
//   3. Stage closures may outlive launch() until wait() returns: every
//      buffer they capture by reference must stay alive and untouched (by
//      anyone else) for that whole window. This is what lets a graph stay
//      in flight across an iteration boundary (PipeGCN's deferred
//      exchanges) as long as the owner joins before the buffers are reused.
//   4. After a run has fully finished, reset() re-arms the graph for
//      another run with the same stages — the steady-state path: the
//      trainer builds each per-layer graph once (warmup) and re-runs it
//      every epoch with zero heap allocation. Stage closures must therefore
//      read their per-epoch inputs through stable references (members,
//      pooled scratch), never captured copies of per-epoch values.
//   5. wait() rethrows the first stage exception; dependents of a failed
//      stage are poisoned (never run). The destructor does NOT join — the
//      owner must wait() a launched graph before destroying it (see
//      AsyncExchange for an owner that joins defensively).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/race_checker.h"

namespace adaqp::pipeline {

/// One-shot completion handle (re-armable via reset()). set() is sticky;
/// wait() helps the thread pool drain detached stages while unfulfilled, so
/// waiting on an event from the submitting thread can never deadlock the
/// scheduler.
class Event {
 public:
  void set();
  bool done() const;
  void wait();
  /// Re-arm a fulfilled event. The caller must guarantee no thread is
  /// concurrently waiting on or setting it (StageGraph::reset()'s
  /// quiescence requirement).
  void reset();

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

/// DAG of stages executed on the global thread pool.
class StageGraph {
 public:
  using StageFn = std::function<void()>;

  StageGraph() = default;
  StageGraph(const StageGraph&) = delete;
  StageGraph& operator=(const StageGraph&) = delete;

  /// Add a stage. Dependencies must reference previously added stages
  /// (ids < the new stage's id), which keeps the graph acyclic by
  /// construction and makes ascending-id a valid serial schedule.
  /// Returns the stage id.
  int add(std::string name, StageFn fn, const std::vector<int>& deps = {});

  /// Same, with declared buffer accesses for the race checker (see
  /// analysis/race_checker.h). Under ADAQP_RACECHECK=1, launch() /
  /// run_serial() verify that every conflicting access pair is ordered by
  /// the declared dependencies *before* any stage runs, and throw with a
  /// violation report otherwise. Stages added without accesses are opaque
  /// to the checker.
  int add(std::string name, StageFn fn, const std::vector<int>& deps,
          analysis::AccessList accesses);

  /// Label used for racecheck reports (default "stage-graph").
  void set_label(std::string label) { label_ = std::move(label); }

  std::size_t size() const { return nodes_.size(); }

  /// Completion handle of one stage (valid until the graph is destroyed).
  Event& stage_done(int id);

  /// Monotonic timestamps (obs::monotonic_us()) stamped around the last
  /// execution of a stage. Always on (two clock reads per stage) — this is
  /// what lets the trainer compute realized overlap efficiency without a
  /// full trace. Valid only after the run has completed (wait() returned /
  /// run_serial() done), which also provides the happens-before edge for
  /// reading them; values are wall-clock and therefore nondeterministic,
  /// observational only.
  double stage_begin_us(int id) const;
  double stage_end_us(int id) const;

  /// Stage identity for the critical-path profiler (src/obs/profile.h):
  /// the name and declared dependency edges of a stage. References stay
  /// valid for the graph's lifetime (nodes live in a deque), which is how
  /// profile rows can keep name pointers instead of copies.
  const std::string& stage_name(int id) const;
  const std::vector<int>& stage_deps(int id) const;

  /// Submit all ready stages to the pool and return immediately. Call at
  /// most once per armed graph; follow with wait().
  void launch();

  /// Block until every stage has finished (helping to run queued stages),
  /// then rethrow the first stage exception, if any.
  void wait();

  /// Run every stage inline, in ascending id order (the reference
  /// schedule). Rethrows the first stage exception. Mutually exclusive
  /// with launch().
  void run_serial();

  /// launch() + wait() when `async`, else run_serial().
  void run(bool async);

  /// Re-arm a fully finished graph for another run with the same stages.
  /// Requires the previous run to have completed (wait() returned /
  /// run_serial() done). Allocation-free: pending counts, events and the
  /// error slot are rewound in place. add() stays usable only before the
  /// first launch.
  void reset();

  /// True once launch()/run_serial() has been called on the current arming.
  bool launched() const { return launched_; }

  /// One-time reservation of all schedule-dependent scratch (source staging,
  /// per-node ready lists). Runs automatically on the first launch() /
  /// run_serial(); owners that defer the first run into a later epoch
  /// (AsyncExchange::prepare_*) call it at build time so the deferred run is
  /// allocation-free.
  void prewarm();

 private:
  struct Node {
    std::string name;
    StageFn fn;
    std::vector<int> deps;  ///< kept for the race checker + reset()
    std::vector<int> dependents;
    analysis::AccessList accesses;
    int pending = 0;  ///< unfinished dependencies; guarded by mu_
    Event done;
    double begin_us = 0.0;  ///< stamped by the executing thread; read after
    double end_us = 0.0;    ///< the run joins (see stage_begin_us())
    std::vector<int> ready_scratch;  ///< finish_stage staging; this node only
  };

  void run_stage(std::size_t id);
  void finish_stage(std::size_t id);
  /// Racecheck hook: no-op unless racecheck_enabled(); otherwise checks the
  /// declared DAG + accesses and throws before any stage has run.
  void maybe_racecheck() const;

  // Nodes are stored in a deque so Node addresses (and their Events) stay
  // stable as stages are added.
  std::deque<Node> nodes_;
  std::mutex mu_;                 ///< guards pending counts / error / count
  std::size_t remaining_ = 0;
  std::exception_ptr error_;
  Event all_done_;
  std::string label_ = "stage-graph";
  std::vector<std::size_t> source_scratch_;  ///< launch() staging
  bool prewarmed_ = false;
  bool launched_ = false;
  bool async_mode_ = false;
};

}  // namespace adaqp::pipeline
