// Pipeline configuration: the ADAQP_ASYNC escape hatch.
//
// ADAQP_ASYNC=1 (the default) runs AdaQP layers through the async stage
// scheduler (src/pipeline/stage_graph.h): marginal-row encode/wire/decode
// overlaps central-subgraph compute on the runtime thread pool.
// ADAQP_ASYNC=0 keeps the phased PR-2 execution (exchange, then compute),
// useful for bisecting and as the baseline for the overlap bench. The two
// modes are bit-identical by construction; tests/test_pipeline.cpp enforces
// it for every trainer method.
//
// Parsing is strict, alongside the ADAQP_THREADS handling in src/runtime/:
// any value other than "0" or "1" raises std::runtime_error with a clear
// message rather than silently picking a default.
#pragma once

namespace adaqp::pipeline {

/// True when the async stage scheduler should be used. Reads ADAQP_ASYNC on
/// every call (unset -> true); an override installed via set_async_override
/// wins. Throws std::runtime_error on values other than "0"/"1".
bool async_enabled();

/// Force the mode for the current process (tests, benches, in-process
/// sweeps): 0 = sync, 1 = async, -1 = clear the override (back to the env).
void set_async_override(int mode);

/// Scoped override; restores the previous override state on destruction.
class AsyncModeGuard {
 public:
  explicit AsyncModeGuard(bool async);
  ~AsyncModeGuard();
  AsyncModeGuard(const AsyncModeGuard&) = delete;
  AsyncModeGuard& operator=(const AsyncModeGuard&) = delete;

 private:
  int prev_;
};

}  // namespace adaqp::pipeline
