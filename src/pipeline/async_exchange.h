// Asynchronous halo exchange: the submit()/wait() split of
// exchange_halo_forward / exchange_halo_backward.
//
// Every (sender, receiver) message becomes one pipeline stage that encodes
// through the real wire codec and decodes on the receiver, so the
// quantize -> wire -> dequantize work of a layer can overlap the central-
// subgraph computation the paper hides it behind (§4.1). Determinism at any
// thread count / schedule comes from two rules, mirroring what src/runtime/
// did for parallel_for:
//
//  * Per-pair RNG streams. Stochastic-rounding draws come from a private
//    stream per (sender, receiver) pair, derived serially at submit time
//    (one next() per device stream, then a splitmix of that base with the
//    peer index). No stage ever touches a shared Rng, so stage scheduling
//    cannot reorder draws — and the serial reference schedule consumes the
//    exact same streams.
//  * Ascending-owner decode order. Backward accumulation into an owner's
//    rows happens in a single per-owner stage that folds senders in
//    ascending order — the same summation order as a serial d-outer sweep.
//
// The synchronous exchange_halo_forward/backward entry points in src/dist/
// are thin wrappers over this API (submit immediately followed by wait), so
// there is exactly one exchange implementation in the library.
#pragma once

#include <vector>

#include "comm/cluster.h"
#include "common/rng.h"
#include "dist/dist_graph.h"
#include "dist/halo_exchange.h"
#include "pipeline/stage_graph.h"
#include "quant/message_codec.h"

namespace adaqp::pipeline {

/// Per-pair stage ids of one exchange added to a StageGraph.
struct PairStages {
  /// stage[d][p]: id of the encode stage for message d -> p, or -1 when the
  /// pair exchanges nothing.
  std::vector<std::vector<int>> stage;
  /// Backward only: per-owner decode/accumulate stage ids (-1 when the
  /// owner receives nothing).
  std::vector<int> owner_stage;
};

/// Storage the exchange stages write into; owned by the caller and must
/// outlive the graph execution. All slots are indexed [sender][receiver]
/// and written by exactly one stage, so no synchronization is needed.
struct ExchangeAccounting {
  std::vector<std::vector<std::size_t>> pair_bytes;
  std::vector<std::vector<std::size_t>> fp_bytes;
  std::vector<std::vector<Rng>> pair_rngs;
  std::vector<std::vector<EncodedBlock>> blocks;  ///< backward staging

  void init(int n, std::vector<Rng>& device_rngs);
};

/// Add one stage per forward message (encode sender rows, decode into the
/// receiver's halo rows; disjoint writes). No dependencies between stages.
PairStages add_forward_exchange_stages(StageGraph& graph,
                                       const DistGraph& dist,
                                       std::vector<Matrix>& locals,
                                       const ExchangePlan& plan,
                                       ExchangeAccounting& acct);

/// Extra stage dependencies threaded into one backward exchange — the hooks
/// that let exchange stages interleave with row-subset backward compute
/// stages added to the same graph (see DistTrainer's full-duplex backward):
///   encode[d]     gates every bwd-enc/d->p on the stage that last writes
///                 device d's halo gradient rows (the marginal-row adjoint);
///   accumulate[p] gates bwd-acc/p on the stage that finishes p's own
///                 writes to its owned rows (owner accumulation adds into
///                 boundary rows, which the central-row adjoint also
///                 scatters into);
///   zero[d]       gates bwd-zero/d on the last *reader* of d's halo rows
///                 (e.g. the assigner's range trace).
/// Entries are stage ids or -1 (no extra dep); an empty vector skips that
/// hook entirely.
struct BackwardStageDeps {
  std::vector<int> encode;
  std::vector<int> accumulate;
  std::vector<int> zero;
};

/// Add backward stages: per-pair encodes of halo-row gradients, per-owner
/// accumulate stages (senders folded ascending), and per-device halo-zero
/// stages gated on that device's encodes — plus any extra `deps` hooks.
PairStages add_backward_exchange_stages(StageGraph& graph,
                                        const DistGraph& dist,
                                        std::vector<Matrix>& grads,
                                        const ExchangePlan& plan,
                                        ExchangeAccounting& acct,
                                        const BackwardStageDeps& deps = {});

/// Fold the per-pair byte counts into ExchangeStats (kernel times in fixed
/// (d, p) order, then the ring-all2all straggler time). Call after the
/// graph has completed.
ExchangeStats finalize_exchange_stats(const ExchangeAccounting& acct,
                                      const DistGraph& dist,
                                      const ClusterSpec& cluster);

/// The submit()/wait() halves of one halo exchange, for callers that want
/// the exchange in flight while they do other work.
///
/// Lifecycle (single-use): construct → submit_forward() or
/// submit_backward() exactly once → wait() exactly once → destroy; a
/// second submit on the same instance throws. The matrices, plan and
/// DistGraph passed to submit are captured by reference and must stay
/// alive — and their exchanged rows untouched by anyone else — until
/// wait() returns. The destructor joins a still-launched exchange
/// defensively (swallowing stage errors), so an in-flight exchange can be
/// dropped safely, but only wait() returns its ExchangeStats.
///
/// The join may happen arbitrarily later than the submit: DistTrainer
/// keeps one AsyncExchange per layer in flight *across iteration
/// boundaries* for PipeGCN's deferred exchanges (stale boundary rows ship
/// while the rest of the epoch and the next epoch's earlier layers run),
/// and overlaps each AdaQP layer's halo-gradient exchange with the
/// central-row backward. Benches and tests drive it directly.
class AsyncExchange {
 public:
  AsyncExchange(const DistGraph& dist, const ClusterSpec& cluster);
  ~AsyncExchange();

  AsyncExchange(const AsyncExchange&) = delete;
  AsyncExchange& operator=(const AsyncExchange&) = delete;

  /// Build the exchange stages and, when `async`, launch them on the pool.
  /// locals/plan must stay valid until wait() returns. When `async` is
  /// false nothing runs until wait(), which then executes the reference
  /// serial schedule — numerics are identical either way.
  void submit_forward(std::vector<Matrix>& locals, const ExchangePlan& plan,
                      std::vector<Rng>& rngs, bool async);
  void submit_backward(std::vector<Matrix>& grads, const ExchangePlan& plan,
                       std::vector<Rng>& rngs, bool async);

  /// Completion handle of the d -> p message (nullptr when the pair
  /// exchanges nothing). Forward: set once the receiver's halo rows are
  /// decoded. Backward: set once the message is encoded.
  Event* pair_done(int d, int p);

  /// Join the exchange and return its stats. Call exactly once per submit.
  ExchangeStats wait();

 private:
  const DistGraph& dist_;
  const ClusterSpec& cluster_;
  StageGraph graph_;
  ExchangeAccounting acct_;
  PairStages stages_;
  bool submitted_ = false;
  bool async_ = false;
  bool finished_ = false;
};

}  // namespace adaqp::pipeline
