// Asynchronous halo exchange: the submit()/wait() split of
// exchange_halo_forward / exchange_halo_backward.
//
// Every (sender, receiver) message becomes one pipeline stage that encodes
// through the real wire codec and decodes on the receiver, so the
// quantize -> wire -> dequantize work of a layer can overlap the central-
// subgraph computation the paper hides it behind (§4.1). Determinism at any
// thread count / schedule comes from two rules, mirroring what src/runtime/
// did for parallel_for:
//
//  * Per-pair RNG streams. Stochastic-rounding draws come from a private
//    stream per (sender, receiver) pair, derived serially at submit time
//    (one next() per device stream, then a splitmix of that base with the
//    peer index). No stage ever touches a shared Rng, so stage scheduling
//    cannot reorder draws — and the serial reference schedule consumes the
//    exact same streams.
//  * Ascending-owner decode order. Backward accumulation into an owner's
//    rows happens in a single per-owner stage that folds senders in
//    ascending order — the same summation order as a serial d-outer sweep.
//
// The synchronous exchange_halo_forward/backward entry points in src/dist/
// are thin wrappers over this API (submit immediately followed by wait), so
// there is exactly one exchange implementation in the library.
#pragma once

#include <vector>

#include "comm/cluster.h"
#include "common/rng.h"
#include "dist/dist_graph.h"
#include "dist/halo_exchange.h"
#include "pipeline/stage_graph.h"
#include "quant/message_codec.h"

namespace adaqp::pipeline {

/// Per-pair stage ids of one exchange added to a StageGraph.
struct PairStages {
  /// stage[d][p]: id of the encode stage for message d -> p, or -1 when the
  /// pair exchanges nothing.
  std::vector<std::vector<int>> stage;
  /// Backward only: per-owner decode/accumulate stage ids (-1 when the
  /// owner receives nothing).
  std::vector<int> owner_stage;
};

/// Storage the exchange stages write into; owned by the caller and must
/// outlive the graph execution. All slots are indexed [sender][receiver]
/// and written by exactly one stage, so no synchronization is needed.
/// Re-init()s rewrite every slot in place (capacities kept), so a
/// steady-state exchange performs no heap allocation after its first round.
struct ExchangeAccounting {
  std::vector<std::vector<std::size_t>> pair_bytes;
  /// pair_bytes split by bit-width tag (see ExchangeStats::pair_width_bytes
  /// for the exact byte attribution). Written by the pair's encode stage.
  std::vector<std::vector<std::array<std::uint64_t, obs::kNumWidths>>>
      pair_width_bytes;
  std::vector<std::vector<std::size_t>> fp_bytes;
  std::vector<std::vector<Rng>> pair_rngs;
  std::vector<std::vector<EncodedBlock>> blocks;  ///< per-pair wire staging
  /// Per-pair stochastic-rounding draw buffers (see encode_rows_into).
  std::vector<std::vector<std::vector<float>>> uniforms;
  /// Per-owner backward-accumulate staging: decoded rows + identity seq.
  std::vector<Matrix> acc_decoded;
  std::vector<std::vector<NodeId>> acc_seq;

  /// Transport identity (src/transport/): the exchange's wire channel —
  /// claimed from transport::next_channel() by whoever owns this accounting
  /// — and the per-channel round ordinal init() advances on every submit.
  /// With each message's (direction, src, dst) these form the FrameTag the
  /// transport matches deliveries on.
  std::uint32_t channel = 0;
  std::uint32_t round = 0;

  void init(int n, std::vector<Rng>& device_rngs);

  /// Size the [sender][receiver] slot tables without deriving RNG streams
  /// (init() does both). Idempotent; lets a graph be *built* against this
  /// accounting before any round is submitted — PipeGCN's deferred forward
  /// exchanges are prepared this way at trainer construction so their first
  /// submit (epoch 1, already steady state) allocates nothing.
  void init_storage(int n);

  /// Pre-reserve every per-pair staging buffer for the message shapes the
  /// (dist, plan) pair implies — wire blocks at the plan's current widths
  /// (call while the plan is still the maximal uniform-32 warmup plan),
  /// stochastic-rounding buffers at one row width, backward decode staging
  /// at each owner's largest inbound message. After warm(), the first
  /// *execution* of the exchange stages is already allocation-free, even if
  /// it is deferred into a steady-state epoch.
  void warm(const DistGraph& dist, const ExchangePlan& plan, bool forward,
            std::size_t cols);
};

/// Add one stage per forward message (encode sender rows, decode into the
/// receiver's halo rows; disjoint writes). No dependencies between stages.
PairStages add_forward_exchange_stages(StageGraph& graph,
                                       const DistGraph& dist,
                                       std::vector<Matrix>& locals,
                                       const ExchangePlan& plan,
                                       ExchangeAccounting& acct);

/// Extra stage dependencies threaded into one backward exchange — the hooks
/// that let exchange stages interleave with row-subset backward compute
/// stages added to the same graph (see DistTrainer's full-duplex backward):
///   encode[d]     gates every bwd-enc/d->p on the stage that last writes
///                 device d's halo gradient rows (the marginal-row adjoint);
///   accumulate[p] gates bwd-acc/p on the stage that finishes p's own
///                 writes to its owned rows (owner accumulation adds into
///                 boundary rows, which the central-row adjoint also
///                 scatters into);
///   zero[d]       gates bwd-zero/d on the last *reader* of d's halo rows
///                 (e.g. the assigner's range trace).
/// Entries are stage ids or -1 (no extra dep); an empty vector skips that
/// hook entirely.
struct BackwardStageDeps {
  std::vector<int> encode;
  std::vector<int> accumulate;
  std::vector<int> zero;
};

/// Add backward stages: per-pair encodes of halo-row gradients, per-owner
/// accumulate stages (senders folded ascending), and per-device halo-zero
/// stages gated on that device's encodes — plus any extra `deps` hooks.
PairStages add_backward_exchange_stages(StageGraph& graph,
                                        const DistGraph& dist,
                                        std::vector<Matrix>& grads,
                                        const ExchangePlan& plan,
                                        ExchangeAccounting& acct,
                                        const BackwardStageDeps& deps = {});

/// Fold the per-pair byte counts into ExchangeStats (kernel times in fixed
/// (d, p) order, then the ring-all2all straggler time). Call after the
/// graph has completed.
ExchangeStats finalize_exchange_stats(const ExchangeAccounting& acct,
                                      const DistGraph& dist,
                                      const ClusterSpec& cluster);

/// In-place form: rewrites `stats` reusing its capacity (no allocation once
/// the shapes have stabilized).
void finalize_exchange_stats_into(const ExchangeAccounting& acct,
                                  const DistGraph& dist,
                                  const ClusterSpec& cluster,
                                  ExchangeStats& stats);

/// The submit()/wait() halves of one halo exchange, for callers that want
/// the exchange in flight while they do other work.
///
/// Lifecycle (multi-shot): construct → submit → wait → submit → wait → …;
/// a submit while a round is still in flight throws. The first submit
/// builds the stage graph, capturing the matrices and plan by reference;
/// every later submit must pass the *same* objects (same direction, same
/// addresses — the trainer keeps one instance per layer/direction with
/// stable buffers) and merely re-derives the per-pair RNG streams in place,
/// re-arms the graph and relaunches it, performing no heap allocation —
/// the steady-state contract (docs/ARCHITECTURE.md). The referenced
/// matrices and plan must stay alive — and their exchanged rows untouched
/// by anyone else — while a round is in flight. The destructor joins a
/// still-launched exchange defensively (swallowing stage errors), so an
/// in-flight exchange can be dropped safely, but only wait() returns its
/// ExchangeStats.
///
/// The join may happen arbitrarily later than the submit: DistTrainer
/// keeps one AsyncExchange per layer in flight *across iteration
/// boundaries* for PipeGCN's deferred exchanges (stale boundary rows ship
/// while the rest of the epoch and the next epoch's earlier layers run),
/// and overlaps each AdaQP layer's halo-gradient exchange with the
/// central-row backward. Benches and tests drive it directly.
class AsyncExchange {
 public:
  AsyncExchange(const DistGraph& dist, const ClusterSpec& cluster);
  ~AsyncExchange();

  AsyncExchange(const AsyncExchange&) = delete;
  AsyncExchange& operator=(const AsyncExchange&) = delete;

  /// Build the exchange stages and, when `async`, launch them on the pool.
  /// locals/plan must stay valid until wait() returns. When `async` is
  /// false nothing runs until wait(), which then executes the reference
  /// serial schedule — numerics are identical either way.
  void submit_forward(std::vector<Matrix>& locals, const ExchangePlan& plan,
                      std::vector<Rng>& rngs, bool async);
  void submit_backward(std::vector<Matrix>& grads, const ExchangePlan& plan,
                       std::vector<Rng>& rngs, bool async);

  /// Build (but do not run) the stage graph and warm every staging buffer,
  /// binding the matrices and plan exactly as the first submit would —
  /// without consuming any RNG draws or launching anything. A later
  /// submit_forward/submit_backward with the same objects then re-inits the
  /// accounting in place and relaunches, allocation-free: this is how the
  /// trainer makes an exchange whose first round happens *after* warmup
  /// (PipeGCN's deferred forward pipeline) satisfy the steady-state
  /// contract. Call at most once, before any submit.
  void prepare_forward(std::vector<Matrix>& locals, const ExchangePlan& plan);
  void prepare_backward(std::vector<Matrix>& grads, const ExchangePlan& plan);

  /// Completion handle of the d -> p message (nullptr when the pair
  /// exchanges nothing). Forward: set once the receiver's halo rows are
  /// decoded. Backward: set once the message is encoded.
  Event* pair_done(int d, int p);

  /// Join the exchange and return its stats. Call exactly once per submit.
  ExchangeStats wait();

  /// wait() into caller-owned stats storage (capacity reused — the
  /// steady-state form).
  void wait_into(ExchangeStats& stats);

 private:
  enum class Kind { kNone, kForward, kBackward };

  /// Shared re-submit path: bind-check against the first submit (or record
  /// the binding), re-arm the graph, relaunch when async.
  void resubmit(Kind kind, const void* data, const ExchangePlan* plan,
                bool async);

  const DistGraph& dist_;
  const ClusterSpec& cluster_;
  StageGraph graph_;
  ExchangeAccounting acct_;
  PairStages stages_;
  Kind built_kind_ = Kind::kNone;
  const void* bound_data_ = nullptr;
  const ExchangePlan* bound_plan_ = nullptr;
  bool submitted_ = false;
  bool async_ = false;
  bool finished_ = false;
  double submit_us_ = 0.0;  ///< resubmit() stamp for the join-latency histogram
};

}  // namespace adaqp::pipeline
