// Pipeline trace recorder — Chrome trace_event JSON output.
//
// Records one "X" (complete) event per pipeline stage with real wall-clock
// begin/duration and the executing thread, so the overlap between halo
// exchange stages and central-subgraph compute is *visible*: load the file
// in chrome://tracing or https://ui.perfetto.dev and exchange spans sit on
// different thread rows than the concurrent compute spans.
//
// The recorder is a process-wide singleton, disabled by default (a disabled
// span costs one relaxed atomic load). StageGraph wraps every stage it runs
// in a TraceSpan automatically; DistTrainer::run() honors the ADAQP_TRACE
// environment variable (a path) by recording the whole run and writing the
// JSON there. Event storage is a mutex-guarded vector — stages are
// coarse-grained (one per device pair or per device per layer), so recording
// overhead is irrelevant next to the kernels being traced.
//
// Name strings are interned: record() copies a name/category only on its
// first occurrence and later events borrow the interned pointer, so
// enabled-mode recording of a steady-state epoch costs one map lookup and
// one push_back per span, never a per-event string copy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adaqp::pipeline {

/// One recorded event, microseconds relative to TraceRecorder::start().
/// `name`/`category` point into the recorder's intern table — stable until
/// the next TraceRecorder::start(). `phase` is the Chrome trace_event
/// phase: 'X' complete span (the common case), 'C' counter sample (value
/// carries the sample), 's'/'f' flow arrow endpoints (flow_id pairs them).
struct TraceEvent {
  const std::string* name = nullptr;
  const std::string* category = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  char phase = 'X';
  double value = 0.0;
  std::uint64_t flow_id = 0;
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Begin recording (clears previously captured events, re-zeroes the
  /// clock and thread-id table).
  void start();
  /// Stop recording; captured events stay available for write_json().
  void stop();
  bool enabled() const;

  /// Record one completed span (no-op while disabled). `name` and
  /// `category` are interned: copied on first occurrence, borrowed after.
  void record(const std::string& name, const std::string& category,
              double ts_us, double dur_us);

  /// Record one counter sample ("C" event, no-op while disabled): shown by
  /// Chrome/Perfetto as a stacked-area track alongside the stage timeline.
  void record_counter(const std::string& name, double ts_us, double value);

  /// Sample every counter and gauge of the obs metrics registry as "C"
  /// events at `ts_us` (no-op while disabled). The trainer calls this once
  /// per epoch when tracing, so wire bytes / messages / epoch counts are
  /// visible next to the stage spans they explain. Allocates (registry
  /// snapshot) — trace-enabled epochs are outside the steady-state contract
  /// by definition.
  void record_registry_counters(double ts_us);

  /// Emit one flow arrow ("s" -> "f" pair) between two recorded stage
  /// spans, identified by name + a timestamp inside the span. The recorder
  /// scans its events for the covering "X" slices to bind the arrow to the
  /// right threads; arrows whose endpoints match no recorded slice are
  /// dropped. Used by the critical-path profiler to draw the epoch's
  /// critical path across thread rows. No-op while disabled.
  void record_flow(const std::string& from_name, double from_ts_us,
                   const std::string& to_name, double to_ts_us);

  /// Microseconds since start() on the recorder's clock.
  double now_us() const;

  /// Convert an absolute obs::monotonic_us() stamp (e.g. a StageGraph
  /// stage timestamp) to this trace's timebase.
  double trace_ts(double monotonic_us) const;

  /// Small dense id for the calling thread (0 = first thread seen).
  int thread_id();

  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;

  /// Write the captured events as Chrome trace JSON ({"traceEvents": [...]}).
  /// Returns false if the file could not be opened.
  bool write_json(const std::string& path) const;

 private:
  TraceRecorder();
  struct Impl;
  Impl* impl_;
};

/// RAII span: stamps begin at construction, records on destruction when the
/// recorder is enabled. The span borrows `name` (it must outlive the span —
/// stage names are stable Node members) and copies nothing while the
/// recorder is disabled, so a disabled span is allocation-free: part of the
/// steady-state contract (docs/ARCHITECTURE.md).
class TraceSpan {
 public:
  TraceSpan(const std::string& name, const char* category);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const std::string* name_;
  const char* category_;
  double begin_us_ = 0.0;
  bool active_ = false;
};

}  // namespace adaqp::pipeline
