#include "pipeline/trace.h"

#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/run_report.h"
#include "obs/stopwatch.h"

namespace adaqp::pipeline {

struct TraceRecorder::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<std::thread::id, int> tids;
  double origin_us = obs::monotonic_us();
  // Intern table: strings live in the deque (stable addresses); the index
  // keys are views into those same strings. Cleared by start().
  std::deque<std::string> interned;
  std::map<std::string_view, const std::string*> intern_index;

  /// Pointer to the interned copy of `s`; copies only on first sight.
  /// Caller holds mu.
  const std::string* intern_locked(const std::string& s) {
    if (const auto it = intern_index.find(std::string_view(s));
        it != intern_index.end())
      return it->second;
    interned.push_back(s);
    const std::string* stable = &interned.back();
    intern_index.emplace(std::string_view(*stable), stable);
    return stable;
  }
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::start() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.clear();
  impl_->tids.clear();
  impl_->intern_index.clear();  // views into interned — clear first
  impl_->interned.clear();
  impl_->origin_us = obs::monotonic_us();
  impl_->enabled.store(true, std::memory_order_release);
}

void TraceRecorder::stop() {
  impl_->enabled.store(false, std::memory_order_release);
}

bool TraceRecorder::enabled() const {
  return impl_->enabled.load(std::memory_order_acquire);
}

double TraceRecorder::now_us() const {
  // Shares the process clock with every other obs timestamp; only the
  // origin (start() time) is trace-local so Chrome traces begin near 0.
  return obs::monotonic_us() - impl_->origin_us;
}

int TraceRecorder::thread_id() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  const auto id = std::this_thread::get_id();
  auto it = impl_->tids.find(id);
  if (it != impl_->tids.end()) return it->second;
  const int tid = static_cast<int>(impl_->tids.size());
  impl_->tids.emplace(id, tid);
  return tid;
}

void TraceRecorder::record(const std::string& name,
                           const std::string& category, double ts_us,
                           double dur_us) {
  if (!enabled()) return;
  const int tid = thread_id();
  std::lock_guard<std::mutex> lk(impl_->mu);
  // Steady-state stage names repeat every epoch: after the first sighting
  // this is two map lookups and a push_back — no string copies.
  const std::string* n = impl_->intern_locked(name);
  const std::string* c = impl_->intern_locked(category);
  impl_->events.push_back(TraceEvent{n, c, ts_us, dur_us, tid});
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->events;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->events.size();
}

namespace {

/// JSON string escape, shared with the run-report writer: quotes,
/// backslashes and all control characters (named short forms where JSON
/// has them, \u00XX otherwise). Safe for arbitrary stage names.
void write_escaped(std::FILE* f, const std::string& s) {
  std::string buf;
  obs::json_escape(s, buf);
  std::fwrite(buf.data(), 1, buf.size(), f);
}

}  // namespace

bool TraceRecorder::write_json(const std::string& path) const {
  const std::vector<TraceEvent> evs = events();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    std::fputs("  {\"name\":\"", f);
    write_escaped(f, *e.name);
    std::fputs("\",\"cat\":\"", f);
    write_escaped(f, *e.category);
    std::fprintf(f,
                 "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                 "\"dur\":%.3f}%s\n",
                 e.tid, e.ts_us, e.dur_us, i + 1 < evs.size() ? "," : "");
  }
  std::fputs("]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

TraceSpan::TraceSpan(const std::string& name, const char* category)
    : name_(&name), category_(category) {
  TraceRecorder& rec = TraceRecorder::instance();
  if (rec.enabled()) {
    active_ = true;
    begin_us_ = rec.now_us();
  }
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder& rec = TraceRecorder::instance();
  const double end_us = rec.now_us();
  rec.record(*name_, category_, begin_us_, end_us - begin_us_);
}

}  // namespace adaqp::pipeline
