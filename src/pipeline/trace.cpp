#include "pipeline/trace.h"

#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/stopwatch.h"

namespace adaqp::pipeline {

struct TraceRecorder::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<std::thread::id, int> tids;
  double origin_us = obs::monotonic_us();
  // Intern table: strings live in the deque (stable addresses); the index
  // keys are views into those same strings. Cleared by start().
  std::deque<std::string> interned;
  std::map<std::string_view, const std::string*> intern_index;
  std::uint64_t next_flow_id = 1;

  /// Pointer to the interned copy of `s`; copies only on first sight.
  /// Caller holds mu.
  const std::string* intern_locked(const std::string& s) {
    if (const auto it = intern_index.find(std::string_view(s));
        it != intern_index.end())
      return it->second;
    interned.push_back(s);
    const std::string* stable = &interned.back();
    intern_index.emplace(std::string_view(*stable), stable);
    return stable;
  }
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::start() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.clear();
  impl_->tids.clear();
  impl_->intern_index.clear();  // views into interned — clear first
  impl_->interned.clear();
  impl_->origin_us = obs::monotonic_us();
  impl_->next_flow_id = 1;
  impl_->enabled.store(true, std::memory_order_release);
}

void TraceRecorder::stop() {
  impl_->enabled.store(false, std::memory_order_release);
}

bool TraceRecorder::enabled() const {
  return impl_->enabled.load(std::memory_order_acquire);
}

double TraceRecorder::now_us() const {
  // Shares the process clock with every other obs timestamp; only the
  // origin (start() time) is trace-local so Chrome traces begin near 0.
  return obs::monotonic_us() - impl_->origin_us;
}

double TraceRecorder::trace_ts(double monotonic_us) const {
  return monotonic_us - impl_->origin_us;
}

int TraceRecorder::thread_id() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  const auto id = std::this_thread::get_id();
  auto it = impl_->tids.find(id);
  if (it != impl_->tids.end()) return it->second;
  const int tid = static_cast<int>(impl_->tids.size());
  impl_->tids.emplace(id, tid);
  return tid;
}

void TraceRecorder::record(const std::string& name,
                           const std::string& category, double ts_us,
                           double dur_us) {
  if (!enabled()) return;
  const int tid = thread_id();
  std::lock_guard<std::mutex> lk(impl_->mu);
  // Steady-state stage names repeat every epoch: after the first sighting
  // this is two map lookups and a push_back — no string copies.
  const std::string* n = impl_->intern_locked(name);
  const std::string* c = impl_->intern_locked(category);
  impl_->events.push_back(TraceEvent{n, c, ts_us, dur_us, tid});
}

void TraceRecorder::record_counter(const std::string& name, double ts_us,
                                   double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(impl_->mu);
  static const std::string kCat = "metrics";
  TraceEvent e;
  e.name = impl_->intern_locked(name);
  e.category = impl_->intern_locked(kCat);
  e.ts_us = ts_us;
  e.phase = 'C';
  e.value = value;
  impl_->events.push_back(e);
}

void TraceRecorder::record_registry_counters(double ts_us) {
  if (!enabled()) return;
  const obs::Registry::Snapshot snap = obs::Registry::instance().snapshot();
  for (const auto& [name, value] : snap.counters)
    record_counter(name, ts_us, static_cast<double>(value));
  for (const auto& [name, value] : snap.gauges)
    record_counter(name, ts_us, static_cast<double>(value));
}

void TraceRecorder::record_flow(const std::string& from_name,
                                double from_ts_us, const std::string& to_name,
                                double to_ts_us) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(impl_->mu);
  // Bind each endpoint to the most recent recorded slice that covers its
  // timestamp: flow arrows only render when their pid/tid matches the
  // slice they start/end in. Linear scan — flows are emitted per
  // critical-path edge, far rarer than spans.
  const auto find_tid = [&](const std::string& name, double ts, int& tid) {
    for (std::size_t i = impl_->events.size(); i-- > 0;) {
      const TraceEvent& e = impl_->events[i];
      if (e.phase != 'X' || *e.name != name) continue;
      if (ts + 1e-3 < e.ts_us || ts - 1e-3 > e.ts_us + e.dur_us) continue;
      tid = e.tid;
      return true;
    }
    return false;
  };
  int from_tid = 0;
  int to_tid = 0;
  if (!find_tid(from_name, from_ts_us, from_tid) ||
      !find_tid(to_name, to_ts_us, to_tid)) {
    return;
  }
  static const std::string kName = "critical-path";
  static const std::string kCat = "cp";
  TraceEvent s;
  s.name = impl_->intern_locked(kName);
  s.category = impl_->intern_locked(kCat);
  s.ts_us = from_ts_us;
  s.tid = from_tid;
  s.phase = 's';
  s.flow_id = impl_->next_flow_id++;
  TraceEvent f = s;
  f.ts_us = to_ts_us;
  f.tid = to_tid;
  f.phase = 'f';
  impl_->events.push_back(s);
  impl_->events.push_back(f);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->events;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->events.size();
}

namespace {

/// JSON string escape, shared with the run-report writer: quotes,
/// backslashes and all control characters (named short forms where JSON
/// has them, \u00XX otherwise). Safe for arbitrary stage names.
void write_escaped(std::FILE* f, const std::string& s) {
  std::string buf;
  obs::json_escape(s, buf);
  std::fwrite(buf.data(), 1, buf.size(), f);
}

}  // namespace

bool TraceRecorder::write_json(const std::string& path) const {
  const std::vector<TraceEvent> evs = events();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    const char* sep = i + 1 < evs.size() ? "," : "";
    std::fputs("  {\"name\":\"", f);
    write_escaped(f, *e.name);
    std::fputs("\",\"cat\":\"", f);
    write_escaped(f, *e.category);
    switch (e.phase) {
      case 'C':
        // Counter sample: Chrome draws one stacked-area track per name.
        std::fprintf(f,
                     "\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                     "\"args\":{\"value\":%.17g}}%s\n",
                     e.tid, e.ts_us, e.value, sep);
        break;
      case 's':
        std::fprintf(f,
                     "\",\"ph\":\"s\",\"id\":%llu,\"pid\":1,\"tid\":%d,"
                     "\"ts\":%.3f}%s\n",
                     static_cast<unsigned long long>(e.flow_id), e.tid,
                     e.ts_us, sep);
        break;
      case 'f':
        // bp:"e" binds the arrow head to the enclosing slice, so the
        // critical path lands on the stage span itself.
        std::fprintf(f,
                     "\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%llu,\"pid\":1,"
                     "\"tid\":%d,\"ts\":%.3f}%s\n",
                     static_cast<unsigned long long>(e.flow_id), e.tid,
                     e.ts_us, sep);
        break;
      default:
        std::fprintf(f,
                     "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                     "\"dur\":%.3f}%s\n",
                     e.tid, e.ts_us, e.dur_us, sep);
        break;
    }
  }
  std::fputs("]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

TraceSpan::TraceSpan(const std::string& name, const char* category)
    : name_(&name), category_(category) {
  TraceRecorder& rec = TraceRecorder::instance();
  if (rec.enabled()) {
    active_ = true;
    begin_us_ = rec.now_us();
  }
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder& rec = TraceRecorder::instance();
  const double end_us = rec.now_us();
  rec.record(*name_, category_, begin_us_, end_us - begin_us_);
}

}  // namespace adaqp::pipeline
