#include "pipeline/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace adaqp::pipeline {

struct TraceRecorder::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<std::thread::id, int> tids;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::start() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.clear();
  impl_->tids.clear();
  impl_->origin = std::chrono::steady_clock::now();
  impl_->enabled.store(true, std::memory_order_release);
}

void TraceRecorder::stop() {
  impl_->enabled.store(false, std::memory_order_release);
}

bool TraceRecorder::enabled() const {
  return impl_->enabled.load(std::memory_order_acquire);
}

double TraceRecorder::now_us() const {
  const auto dt = std::chrono::steady_clock::now() - impl_->origin;
  return std::chrono::duration<double, std::micro>(dt).count();
}

int TraceRecorder::thread_id() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  const auto id = std::this_thread::get_id();
  auto it = impl_->tids.find(id);
  if (it != impl_->tids.end()) return it->second;
  const int tid = static_cast<int>(impl_->tids.size());
  impl_->tids.emplace(id, tid);
  return tid;
}

void TraceRecorder::record(const std::string& name,
                           const std::string& category, double ts_us,
                           double dur_us) {
  if (!enabled()) return;
  const int tid = thread_id();
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(TraceEvent{name, category, ts_us, dur_us, tid});
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->events;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->events.size();
}

namespace {

/// Minimal JSON string escape (stage names are ASCII identifiers, but stay
/// safe for arbitrary input).
void write_escaped(std::FILE* f, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\')
      std::fprintf(f, "\\%c", c);
    else if (static_cast<unsigned char>(c) < 0x20)
      std::fprintf(f, "\\u%04x", c);
    else
      std::fputc(c, f);
  }
}

}  // namespace

bool TraceRecorder::write_json(const std::string& path) const {
  const std::vector<TraceEvent> evs = events();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    std::fputs("  {\"name\":\"", f);
    write_escaped(f, e.name);
    std::fputs("\",\"cat\":\"", f);
    write_escaped(f, e.category);
    std::fprintf(f,
                 "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                 "\"dur\":%.3f}%s\n",
                 e.tid, e.ts_us, e.dur_us, i + 1 < evs.size() ? "," : "");
  }
  std::fputs("]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

TraceSpan::TraceSpan(const std::string& name, const char* category)
    : name_(&name), category_(category) {
  TraceRecorder& rec = TraceRecorder::instance();
  if (rec.enabled()) {
    active_ = true;
    begin_us_ = rec.now_us();
  }
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder& rec = TraceRecorder::instance();
  const double end_us = rec.now_us();
  rec.record(*name_, category_, begin_us_, end_us - begin_us_);
}

}  // namespace adaqp::pipeline
