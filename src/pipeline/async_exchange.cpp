#include "pipeline/async_exchange.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "quant/quantize.h"
#include "runtime/thread_pool.h"
#include "simd/kernels.h"
#include "transport/transport.h"

namespace adaqp::pipeline {

namespace {

void check_plan_shape(const DistGraph& dist, const ExchangePlan& plan,
                      bool forward) {
  const int n = dist.num_devices();
  ADAQP_CHECK_MSG(static_cast<int>(plan.bits.size()) == n,
                  "plan device arity mismatch");
  for (int d = 0; d < n; ++d) {
    ADAQP_CHECK(static_cast<int>(plan.bits[d].size()) == n);
    for (int p = 0; p < n; ++p) {
      const auto& list = forward ? dist.devices[d].send_local[p]
                                 : dist.devices[d].recv_local[p];
      ADAQP_CHECK_MSG(plan.bits[d][p].size() == list.size(),
                      "plan bits[" << d << "][" << p << "] arity "
                                   << plan.bits[d][p].size() << " != "
                                   << list.size());
    }
  }
}

/// Full-precision bytes of the messages actually quantized (bits < 32);
/// 32-bit passthrough costs no kernel time.
std::size_t quantized_fp_bytes(std::span<const int> bits, std::size_t dim) {
  std::size_t rows = 0;
  for (int b : bits)
    if (b != 32) ++rows;
  return rows * dim * sizeof(float);
}

/// Split a message's wire bytes by bit-width tag (per-row tag + metadata +
/// payload; the 12-byte block header stays in the pair_bytes total only).
void accumulate_width_bytes(
    std::span<const int> bits, std::size_t dim,
    std::array<std::uint64_t, obs::kNumWidths>& out) {
  out.fill(0);
  for (const int b : bits)
    out[static_cast<std::size_t>(obs::width_index(b))] +=
        1 + quantized_wire_bytes(dim, b);
}

std::string stage_name(const char* kind, int d, int p) {
  std::string name(kind);
  name += "/d";
  name += std::to_string(d);
  if (p >= 0) {
    name += "->d";
    name += std::to_string(p);
  }
  return name;
}

// ---- Race-checker annotations (ADAQP_RACECHECK) ---------------------------
//
// Each stage declares exactly the bytes it touches: row sets of the device
// matrices (row-granular, so the checker can prove e.g. that encodes reading
// halo rows never collide with owner accumulation into owned rows) plus the
// per-pair accounting slots. Built only when the checker is enabled.

using analysis::AccessList;
using analysis::BufferAccess;

constexpr auto kRead = BufferAccess::Mode::kRead;
constexpr auto kWrite = BufferAccess::Mode::kWrite;

void add_rows(AccessList& out, const Matrix& m,
              const std::vector<NodeId>& rows, BufferAccess::Mode mode,
              const std::string& label) {
  analysis::append_row_set(out, m.data(), m.cols() * sizeof(float),
                           rows.data(), rows.size(), mode, label);
}

/// The stats/RNG/staging slots every encode stage owns exclusively.
void add_pair_slots(AccessList& out, ExchangeAccounting& acct, int d, int p,
                    const std::string& tag) {
  out.push_back(analysis::write_of(&acct.pair_bytes[d][p],
                                   sizeof(acct.pair_bytes[d][p]),
                                   tag + ".pair_bytes"));
  out.push_back(analysis::write_of(&acct.fp_bytes[d][p],
                                   sizeof(acct.fp_bytes[d][p]),
                                   tag + ".fp_bytes"));
  out.push_back(analysis::write_of(&acct.pair_width_bytes[d][p],
                                   sizeof(acct.pair_width_bytes[d][p]),
                                   tag + ".pair_width_bytes"));
  out.push_back(analysis::write_of(&acct.pair_rngs[d][p],
                                   sizeof(acct.pair_rngs[d][p]),
                                   tag + ".rng"));
  out.push_back(analysis::write_of(&acct.uniforms[d][p],
                                   sizeof(acct.uniforms[d][p]),
                                   tag + ".uniforms"));
}

}  // namespace

void ExchangeAccounting::init_storage(int n) {
  if (static_cast<int>(pair_bytes.size()) == n) return;
  // First init: size everything. Later inits rewrite in place, keeping
  // every nested capacity (blocks, uniform buffers, decode staging) — the
  // steady-state exchange allocates nothing.
  pair_bytes.assign(n, std::vector<std::size_t>(n, 0));
  fp_bytes.assign(n, std::vector<std::size_t>(n, 0));
  pair_width_bytes.assign(
      n, std::vector<std::array<std::uint64_t, obs::kNumWidths>>(
             n, std::array<std::uint64_t, obs::kNumWidths>{}));
  blocks.assign(n, std::vector<EncodedBlock>(n));
  uniforms.assign(n, std::vector<std::vector<float>>(n));
  pair_rngs.assign(n, std::vector<Rng>(n));
  acc_decoded.resize(n);
  acc_seq.resize(n);
}

void ExchangeAccounting::warm(const DistGraph& dist, const ExchangePlan& plan,
                              bool forward, std::size_t cols) {
  const int n = dist.num_devices();
  init_storage(n);
  for (int d = 0; d < n; ++d) {
    const DeviceGraph& dev = dist.devices[d];
    for (int p = 0; p < n; ++p) {
      if (p == d) continue;
      const auto& rows = forward ? dev.send_local[p] : dev.recv_local[p];
      if (rows.empty()) continue;
      blocks[d][p].bytes.reserve(
          encoded_wire_bytes(rows.size(), cols, plan.bits[d][p]));
      uniforms[d][p].reserve(cols);
    }
  }
  if (!forward) {
    // Backward owner staging: one decode buffer + identity row list sized
    // for the owner's largest inbound message.
    for (int p = 0; p < n; ++p) {
      std::size_t max_rows = 0;
      for (int d = 0; d < n; ++d) {
        if (d == p) continue;
        max_rows = std::max(max_rows, dist.devices[p].send_local[d].size());
      }
      if (max_rows == 0) continue;
      acc_decoded[p].reshape_uninit(max_rows, cols);
      if (acc_seq[p].size() < max_rows) {
        const std::size_t old = acc_seq[p].size();
        acc_seq[p].resize(max_rows);
        for (std::size_t i = old; i < max_rows; ++i)
          acc_seq[p][i] = static_cast<NodeId>(i);
      }
    }
  }
}

void ExchangeAccounting::init(int n, std::vector<Rng>& device_rngs) {
  ++round;  // first submit is round 1; round 0 is reserved for hellos
  if (static_cast<int>(pair_bytes.size()) != n) {
    init_storage(n);
  } else {
    for (auto& row : pair_bytes) std::fill(row.begin(), row.end(), 0);
    for (auto& row : fp_bytes) std::fill(row.begin(), row.end(), 0);
    for (auto& row : pair_width_bytes)
      for (auto& slot : row) slot.fill(0);
    for (auto& row : blocks)
      for (auto& b : row) b.bytes.clear();
  }
  // Per-pair streams, derived serially: one next() per device stream (in
  // ascending device order), splitmixed with the peer index. Identical for
  // every schedule, and no stage ever touches the shared device streams.
  for (int d = 0; d < n; ++d) {
    const std::uint64_t base = device_rngs[d].next();
    for (int p = 0; p < n; ++p) {
      std::uint64_t mix =
          base ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(p + 1));
      pair_rngs[d][p] = Rng(splitmix64(mix));
    }
  }
}

PairStages add_forward_exchange_stages(StageGraph& graph,
                                       const DistGraph& dist,
                                       std::vector<Matrix>& locals,
                                       const ExchangePlan& plan,
                                       ExchangeAccounting& acct) {
  const int n = dist.num_devices();
  ADAQP_CHECK(static_cast<int>(locals.size()) == n);
  check_plan_shape(dist, plan, /*forward=*/true);
  for (int d = 0; d < n; ++d)
    ADAQP_CHECK(locals[d].rows() == dist.devices[d].num_local());

  PairStages out;
  out.stage.assign(n, std::vector<int>(n, -1));
  for (int d = 0; d < n; ++d) {
    const DeviceGraph& dev = dist.devices[d];
    for (int p = 0; p < n; ++p) {
      if (p == d || dev.send_local[p].empty()) continue;
      // One stage per message: encode the sender's owned rows with the
      // pair's private stream and decode straight into the receiver's halo
      // rows. Each stage writes its own halo-row slice and stats slots, so
      // all forward stages are mutually independent.
      const std::string name = stage_name("fwd", d, p);
      AccessList acc;
      if (analysis::racecheck_enabled()) {
        add_rows(acc, locals[d], dev.send_local[p], kRead,
                 "x[d" + std::to_string(d) + "].boundary_rows(d" +
                     std::to_string(p) + ")");
        add_rows(acc, locals[p], dist.devices[p].recv_local[d], kWrite,
                 "x[d" + std::to_string(p) + "].halo_rows(d" +
                     std::to_string(d) + ")");
        acc.push_back(analysis::write_of(&acct.blocks[d][p],
                                         sizeof(acct.blocks[d][p]),
                                         name + ".block"));
        add_pair_slots(acc, acct, d, p, name);
        // Wire backends move the delivered payload into a stable per-pair
        // inbox slot this stage then decodes from; declare that write so
        // the checker covers the encode -> deliver -> decode chain.
        if (const void* slot = transport::active().pair_slot(
                acct.channel, /*direction=*/0, d, p))
          acc.push_back(analysis::write_of(slot, 1, name + ".wire_slot"));
      }
      out.stage[d][p] = graph.add(
          name,
          [&dist, &locals, &plan, &acct, d, p] {
            const DeviceGraph& sender = dist.devices[d];
            const auto& bits = plan.bits[d][p];
            // Persistent per-pair staging: block bytes and uniform buffer
            // keep their warmed-up capacity across rounds.
            encode_rows_into(locals[d], sender.send_local[p], bits,
                             acct.pair_rngs[d][p], acct.uniforms[d][p],
                             acct.blocks[d][p]);
            acct.pair_bytes[d][p] = acct.blocks[d][p].wire_bytes();
            acct.fp_bytes[d][p] =
                quantized_fp_bytes(bits, locals[d].cols());
            accumulate_width_bytes(bits, locals[d].cols(),
                                   acct.pair_width_bytes[d][p]);
            // Ship the encoded block and decode whatever the transport
            // delivers — under loopback that is the block itself, zero-copy.
            transport::Transport& tp = transport::active();
            const transport::FrameTag tag{acct.channel, acct.round,
                                          /*direction=*/0,
                                          static_cast<std::uint8_t>(d),
                                          static_cast<std::uint8_t>(p)};
            tp.send(tag, acct.blocks[d][p].bytes);
            decode_rows(tp.recv(tag, acct.blocks[d][p].bytes), locals[p],
                        dist.devices[p].recv_local[d]);
          },
          {}, std::move(acc));
    }
  }
  return out;
}

PairStages add_backward_exchange_stages(StageGraph& graph,
                                        const DistGraph& dist,
                                        std::vector<Matrix>& grads,
                                        const ExchangePlan& plan,
                                        ExchangeAccounting& acct,
                                        const BackwardStageDeps& deps) {
  const int n = dist.num_devices();
  ADAQP_CHECK(static_cast<int>(grads.size()) == n);
  check_plan_shape(dist, plan, /*forward=*/false);
  for (int d = 0; d < n; ++d)
    ADAQP_CHECK(grads[d].rows() == dist.devices[d].num_local());
  const auto extra_dep = [](const std::vector<int>& hook, int d) {
    return d < static_cast<int>(hook.size()) ? hook[d] : -1;
  };

  PairStages out;
  out.stage.assign(n, std::vector<int>(n, -1));
  out.owner_stage.assign(n, -1);

  // Phase 1 stages — per-pair encode of the halo-row gradients bound for
  // owner p. Reads only the sender's halo rows; owners accumulate only into
  // owned rows, so encodes and accumulates of different devices commute.
  for (int d = 0; d < n; ++d) {
    const DeviceGraph& dev = dist.devices[d];
    std::vector<int> enc_deps;
    if (const int dep = extra_dep(deps.encode, d); dep >= 0)
      enc_deps.push_back(dep);
    for (int p = 0; p < n; ++p) {
      if (p == d || dev.recv_local[p].empty()) continue;
      const std::string name = stage_name("bwd-enc", d, p);
      AccessList acc;
      if (analysis::racecheck_enabled()) {
        add_rows(acc, grads[d], dev.recv_local[p], kRead,
                 "grad[d" + std::to_string(d) + "].halo_rows(d" +
                     std::to_string(p) + ")");
        acc.push_back(analysis::write_of(&acct.blocks[d][p],
                                         sizeof(acct.blocks[d][p]),
                                         name + ".block"));
        add_pair_slots(acc, acct, d, p, name);
        // The send side of the wire path; ordered against the owner's
        // recv/decode by the enc -> acc dependency below, and annotated on
        // the same slot so a schedule that broke that edge would flag.
        if (const void* slot = transport::active().pair_slot(
                acct.channel, /*direction=*/1, d, p))
          acc.push_back(analysis::write_of(slot, 1, name + ".wire_slot"));
      }
      out.stage[d][p] = graph.add(
          name,
          [&dist, &grads, &plan, &acct, d, p] {
            const DeviceGraph& sender = dist.devices[d];
            const auto& bits = plan.bits[d][p];
            encode_rows_into(grads[d], sender.recv_local[p], bits,
                             acct.pair_rngs[d][p], acct.uniforms[d][p],
                             acct.blocks[d][p]);
            acct.pair_bytes[d][p] = acct.blocks[d][p].wire_bytes();
            acct.fp_bytes[d][p] =
                quantized_fp_bytes(bits, grads[d].cols());
            accumulate_width_bytes(bits, grads[d].cols(),
                                   acct.pair_width_bytes[d][p]);
            const transport::FrameTag tag{acct.channel, acct.round,
                                          /*direction=*/1,
                                          static_cast<std::uint8_t>(d),
                                          static_cast<std::uint8_t>(p)};
            transport::active().send(tag, acct.blocks[d][p].bytes);
          },
          enc_deps, std::move(acc));
    }
  }

  // Phase 2 stages — one per owner: decode every inbound block and fold it
  // into the owned rows in ascending sender order, the exact accumulation
  // order of a serial d-outer sweep.
  for (int p = 0; p < n; ++p) {
    std::vector<int> acc_deps;
    for (int d = 0; d < n; ++d)
      if (out.stage[d][p] >= 0) acc_deps.push_back(out.stage[d][p]);
    if (acc_deps.empty()) continue;
    if (const int dep = extra_dep(deps.accumulate, p); dep >= 0)
      acc_deps.push_back(dep);
    const std::string name = stage_name("bwd-acc", p, -1);
    AccessList acc;
    if (analysis::racecheck_enabled()) {
      for (int d = 0; d < n; ++d) {
        if (out.stage[d][p] < 0) continue;
        acc.push_back(analysis::read_of(&acct.blocks[d][p],
                                        sizeof(acct.blocks[d][p]),
                                        stage_name("bwd-enc", d, p) +
                                            ".block"));
        add_rows(acc, grads[p], dist.devices[p].send_local[d], kWrite,
                 "grad[d" + std::to_string(p) + "].boundary_rows(d" +
                     std::to_string(d) + ")");
        if (const void* slot = transport::active().pair_slot(
                acct.channel, /*direction=*/1, d, p))
          acc.push_back(analysis::write_of(slot, 1, name + ".wire_slot"));
      }
    }
    out.owner_stage[p] = graph.add(
        name,
        [&dist, &grads, &acct, p, n] {
          // Persistent per-owner staging (capacity kept across rounds); the
          // fold runs through the kernel table's elementwise add.
          Matrix& decoded = acct.acc_decoded[p];
          std::vector<NodeId>& seq = acct.acc_seq[p];
          const auto& kt = simd::kernels();
          for (int d = 0; d < n; ++d) {
            if (d == p || acct.blocks[d][p].bytes.empty()) continue;
            const auto& owner_rows = dist.devices[p].send_local[d];
            decoded.reshape_uninit(owner_rows.size(), grads[p].cols());
            if (seq.size() < owner_rows.size()) {
              const std::size_t old = seq.size();
              seq.resize(owner_rows.size());
              for (std::size_t i = old; i < seq.size(); ++i)
                seq[i] = static_cast<NodeId>(i);
            }
            const transport::FrameTag tag{acct.channel, acct.round,
                                          /*direction=*/1,
                                          static_cast<std::uint8_t>(d),
                                          static_cast<std::uint8_t>(p)};
            decode_rows(
                transport::active().recv(tag, acct.blocks[d][p].bytes),
                decoded, {seq.data(), owner_rows.size()});
            for (std::size_t i = 0; i < owner_rows.size(); ++i) {
              auto dst = grads[p].row(owner_rows[i]);
              kt.ef_fold(dst.data(), decoded.row(i).data(), dst.data(),
                         dst.size());
            }
          }
        },
        acc_deps, std::move(acc));
  }

  // Phase 3 stages — zero each device's halo rows once its own encodes (and
  // any extra halo-row reader hooked in via deps.zero) are done: their
  // contribution has been shipped.
  for (int d = 0; d < n; ++d) {
    std::vector<int> zero_deps;
    for (int p = 0; p < n; ++p)
      if (out.stage[d][p] >= 0) zero_deps.push_back(out.stage[d][p]);
    if (const int dep = extra_dep(deps.zero, d); dep >= 0)
      zero_deps.push_back(dep);
    const DeviceGraph& dev = dist.devices[d];
    if (dev.num_halo == 0) continue;
    AccessList acc;
    if (analysis::racecheck_enabled())
      acc.push_back(analysis::row_range(
          grads[d].data(), grads[d].cols() * sizeof(float), dev.num_owned,
          dev.num_local(), kWrite,
          "grad[d" + std::to_string(d) + "].halo_rows"));
    graph.add(
        stage_name("bwd-zero", d, -1),
        [&dist, &grads, d] {
          const DeviceGraph& device = dist.devices[d];
          for (std::size_t h = device.num_owned; h < device.num_local(); ++h) {
            auto row = grads[d].row(h);
            std::fill(row.begin(), row.end(), 0.0f);
          }
        },
        zero_deps, std::move(acc));
  }
  return out;
}

ExchangeStats finalize_exchange_stats(const ExchangeAccounting& acct,
                                      const DistGraph& dist,
                                      const ClusterSpec& cluster) {
  ExchangeStats stats;
  finalize_exchange_stats_into(acct, dist, cluster, stats);
  return stats;
}

void finalize_exchange_stats_into(const ExchangeAccounting& acct,
                                  const DistGraph& dist,
                                  const ClusterSpec& cluster,
                                  ExchangeStats& stats) {
  const int n = dist.num_devices();
  // Same-shaped copy-assigns reuse the destination's capacity, so repeated
  // finalizes into the same stats object allocate nothing.
  stats.pair_bytes = acct.pair_bytes;
  stats.pair_width_bytes = acct.pair_width_bytes;
  stats.messages = 0;
  stats.quant_seconds.assign(n, 0.0);
  stats.dequant_seconds.assign(n, 0.0);
  stats.comm_seconds = 0.0;
  // Kernel times fold in fixed (d, p) order so the receiver-indexed dequant
  // accumulation is schedule-independent.
  for (int d = 0; d < n; ++d)
    for (int p = 0; p < n; ++p) {
      if (acct.fp_bytes[d][p] == 0) continue;
      const double t = cluster.quant_seconds(acct.fp_bytes[d][p]);
      stats.quant_seconds[d] += t;
      stats.dequant_seconds[p] += t;
    }
  if (n > 1)
    stats.comm_seconds =
        RingAllToAll(n).total_seconds(cluster, stats.pair_bytes);
  // Global instruments: one round, its message count, and wire bytes by
  // width. Purely observational — nothing reads these back.
  const obs::Instruments& ins = obs::instruments();
  std::array<std::uint64_t, obs::kNumWidths> width_total{};
  for (int d = 0; d < n; ++d)
    for (int p = 0; p < n; ++p) {
      if (acct.pair_bytes[d][p] == 0) continue;
      ++stats.messages;
      for (int w = 0; w < obs::kNumWidths; ++w)
        width_total[static_cast<std::size_t>(w)] +=
            acct.pair_width_bytes[d][p][static_cast<std::size_t>(w)];
    }
  ins.exchange_rounds.add(1);
  ins.exchange_messages.add(stats.messages);
  for (int w = 0; w < obs::kNumWidths; ++w)
    ins.exchange_wire_bytes[static_cast<std::size_t>(w)]->add(
        width_total[static_cast<std::size_t>(w)]);
}

AsyncExchange::AsyncExchange(const DistGraph& dist, const ClusterSpec& cluster)
    : dist_(dist), cluster_(cluster) {
  ADAQP_CHECK(cluster_.num_devices() == dist_.num_devices());
  // Deterministic construction order makes replicated ranks agree on the
  // channel without negotiation (see transport::next_channel()).
  acct_.channel = transport::next_channel();
}

AsyncExchange::~AsyncExchange() {
  // A launched exchange must not outlive its stages; join defensively.
  if (submitted_ && async_ && !finished_) {
    try {
      graph_.wait();
    } catch (...) {
    }
  }
}

void AsyncExchange::submit_forward(std::vector<Matrix>& locals,
                                   const ExchangePlan& plan,
                                   std::vector<Rng>& rngs, bool async) {
  ADAQP_CHECK_MSG(!submitted_ || finished_,
                  "AsyncExchange::submit while a round is in flight");
  ADAQP_CHECK(static_cast<int>(rngs.size()) == dist_.num_devices());
  acct_.init(dist_.num_devices(), rngs);
  if (built_kind_ == Kind::kNone) {
    graph_.set_label("halo-exchange/forward");
    stages_ = add_forward_exchange_stages(graph_, dist_, locals, plan, acct_);
  }
  resubmit(Kind::kForward, &locals, &plan, async);
}

void AsyncExchange::submit_backward(std::vector<Matrix>& grads,
                                    const ExchangePlan& plan,
                                    std::vector<Rng>& rngs, bool async) {
  ADAQP_CHECK_MSG(!submitted_ || finished_,
                  "AsyncExchange::submit while a round is in flight");
  ADAQP_CHECK(static_cast<int>(rngs.size()) == dist_.num_devices());
  acct_.init(dist_.num_devices(), rngs);
  if (built_kind_ == Kind::kNone) {
    graph_.set_label("halo-exchange/backward");
    stages_ = add_backward_exchange_stages(graph_, dist_, grads, plan, acct_);
  }
  resubmit(Kind::kBackward, &grads, &plan, async);
}

void AsyncExchange::prepare_forward(std::vector<Matrix>& locals,
                                    const ExchangePlan& plan) {
  ADAQP_CHECK_MSG(built_kind_ == Kind::kNone && !submitted_,
                  "AsyncExchange::prepare after a build/submit");
  acct_.init_storage(dist_.num_devices());
  acct_.warm(dist_, plan, /*forward=*/true,
             locals.empty() ? 0 : locals[0].cols());
  graph_.set_label("halo-exchange/forward");
  stages_ = add_forward_exchange_stages(graph_, dist_, locals, plan, acct_);
  graph_.prewarm();  // the first run may land inside a steady-state epoch
  built_kind_ = Kind::kForward;
  bound_data_ = &locals;
  bound_plan_ = &plan;
}

void AsyncExchange::prepare_backward(std::vector<Matrix>& grads,
                                     const ExchangePlan& plan) {
  ADAQP_CHECK_MSG(built_kind_ == Kind::kNone && !submitted_,
                  "AsyncExchange::prepare after a build/submit");
  acct_.init_storage(dist_.num_devices());
  acct_.warm(dist_, plan, /*forward=*/false,
             grads.empty() ? 0 : grads[0].cols());
  graph_.set_label("halo-exchange/backward");
  stages_ = add_backward_exchange_stages(graph_, dist_, grads, plan, acct_);
  graph_.prewarm();  // the first run may land inside a steady-state epoch
  built_kind_ = Kind::kBackward;
  bound_data_ = &grads;
  bound_plan_ = &plan;
}

void AsyncExchange::resubmit(Kind kind, const void* data,
                             const ExchangePlan* plan, bool async) {
  if (built_kind_ == Kind::kNone) {
    built_kind_ = kind;
    bound_data_ = data;
    bound_plan_ = plan;
  } else {
    // The stage lambdas captured the first submit's matrices and plan by
    // reference; a re-submit re-runs them, so it must bind the exact same
    // objects (direction included).
    ADAQP_CHECK_MSG(built_kind_ == kind && bound_data_ == data &&
                        bound_plan_ == plan,
                    "AsyncExchange re-submit must reuse the direction, "
                    "matrices and plan of the first submit");
    graph_.reset();
  }
  submitted_ = true;
  finished_ = false;
  async_ = async;
  submit_us_ = obs::monotonic_us();
  if (async_) graph_.launch();
}

Event* AsyncExchange::pair_done(int d, int p) {
  if (!submitted_) return nullptr;
  const int n = dist_.num_devices();
  if (d < 0 || p < 0 || d >= n || p >= n) return nullptr;
  const int id = stages_.stage[d][p];
  return id < 0 ? nullptr : &graph_.stage_done(id);
}

ExchangeStats AsyncExchange::wait() {
  ExchangeStats stats;
  wait_into(stats);
  return stats;
}

void AsyncExchange::wait_into(ExchangeStats& stats) {
  ADAQP_CHECK_MSG(submitted_ && !finished_,
                  "AsyncExchange::wait without a pending submit");
  finished_ = true;
  if (async_)
    graph_.wait();
  else
    graph_.run_serial();
  // Submit->join latency covers the full in-flight window — for deferred
  // (cross-iteration) exchanges that is the whole overlap span, not just
  // the blocked time inside this call.
  obs::instruments().exchange_submit_to_join_us.record(obs::monotonic_us() -
                                                       submit_us_);
  finalize_exchange_stats_into(acct_, dist_, cluster_, stats);
}

}  // namespace adaqp::pipeline
