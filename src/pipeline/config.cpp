#include "pipeline/config.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>

namespace adaqp::pipeline {

namespace {

/// -1 = no override (consult the environment), 0 = sync, 1 = async.
std::atomic<int> g_override{-1};

}  // namespace

bool async_enabled() {
  const int ov = g_override.load(std::memory_order_acquire);
  if (ov >= 0) return ov != 0;
  const char* env = std::getenv("ADAQP_ASYNC");
  if (env == nullptr || *env == '\0') return true;
  if (std::strcmp(env, "0") == 0) return false;
  if (std::strcmp(env, "1") == 0) return true;
  std::ostringstream msg;
  msg << "ADAQP_ASYNC must be 0 (sync phased execution) or 1 (async stage "
         "scheduler); got \""
      << env << "\"";
  throw std::runtime_error(msg.str());
}

void set_async_override(int mode) {
  g_override.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                   std::memory_order_release);
}

AsyncModeGuard::AsyncModeGuard(bool async)
    : prev_(g_override.load(std::memory_order_acquire)) {
  set_async_override(async ? 1 : 0);
}

AsyncModeGuard::~AsyncModeGuard() { set_async_override(prev_); }

}  // namespace adaqp::pipeline
