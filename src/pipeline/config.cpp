#include "pipeline/config.h"

#include <atomic>

#include "common/env.h"

namespace adaqp::pipeline {

namespace {

/// -1 = no override (consult the environment), 0 = sync, 1 = async.
std::atomic<int> g_override{-1};

}  // namespace

bool async_enabled() {
  const int ov = g_override.load(std::memory_order_acquire);
  if (ov >= 0) return ov != 0;
  // 0 = sync phased execution, 1 = async stage scheduler (the default);
  // anything else throws via the strict shared parser.
  return env::flag01("ADAQP_ASYNC", true);
}

void set_async_override(int mode) {
  g_override.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                   std::memory_order_release);
}

AsyncModeGuard::AsyncModeGuard(bool async)
    : prev_(g_override.load(std::memory_order_acquire)) {
  set_async_override(async ? 1 : 0);
}

AsyncModeGuard::~AsyncModeGuard() { set_async_override(prev_); }

}  // namespace adaqp::pipeline
