#include "pipeline/stage_graph.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "pipeline/trace.h"
#include "runtime/thread_pool.h"

namespace adaqp::pipeline {

void Event::set() {
  // The notify must stay under the lock: an Event dies with its StageGraph
  // as soon as a waiter observes done_, and every observation path (done(),
  // the wait() predicate) acquires mu_ — so a waiter can only destroy this
  // object after set() has released mu_, i.e. after notify_all() returned.
  // Notifying after unlock reintroduces a destroy-while-broadcast race on
  // the condvar (found by TSan; pinned by SanitizerRegression tests).
  std::lock_guard<std::mutex> lk(mu_);
  done_ = true;
  cv_.notify_all();
}

bool Event::done() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_;
}

void Event::wait() {
  ThreadPool& pool = global_pool();
  for (;;) {
    if (done()) return;
    if (pool.try_run_one_detached()) continue;
    // Queue dry: the remaining work is running on workers (or a dependent
    // will be enqueued when it finishes). Block until set(), waking
    // periodically to re-help in case new stages were submitted between the
    // empty check and this wait.
    std::unique_lock<std::mutex> lk(mu_);
    if (done_) return;
    cv_.wait_for(lk, std::chrono::milliseconds(5), [&] { return done_; });
  }
}

int StageGraph::add(std::string name, StageFn fn,
                    const std::vector<int>& deps) {
  return add(std::move(name), std::move(fn), deps, {});
}

int StageGraph::add(std::string name, StageFn fn, const std::vector<int>& deps,
                    analysis::AccessList accesses) {
  ADAQP_CHECK_MSG(!launched_, "StageGraph::add after launch");
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.name = std::move(name);
  node.fn = std::move(fn);
  node.accesses = std::move(accesses);
  node.pending = 0;
  for (int dep : deps) {
    ADAQP_CHECK_MSG(dep >= 0 && dep < id,
                    "stage \"" << node.name << "\" dependency " << dep
                               << " must reference an earlier stage");
    nodes_[dep].dependents.push_back(id);
    ++node.pending;
  }
  node.deps = deps;
  return id;
}

void StageGraph::maybe_racecheck() const {
  if (!analysis::racecheck_enabled()) return;
  std::vector<analysis::StageAccessRecord> records;
  records.reserve(nodes_.size());
  for (const Node& node : nodes_)
    records.push_back({node.name, node.deps, node.accesses});
  // Records to the process-wide registry and throws on violations — before
  // any stage has run, so a declared race never executes under the checker.
  analysis::record_and_enforce(
      analysis::check_stage_dag(std::move(records), label_));
}

Event& StageGraph::stage_done(int id) {
  ADAQP_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  return nodes_[id].done;
}

void StageGraph::run_stage(std::size_t id) {
  Node& node = nodes_[id];
  {
    TraceSpan span(node.name, "stage");
    bool skip;
    {
      std::lock_guard<std::mutex> lk(mu_);
      skip = error_ != nullptr;  // a failed stage poisons the rest
    }
    if (!skip) {
      try {
        node.fn();
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }
  finish_stage(id);
}

void StageGraph::finish_stage(std::size_t id) {
  Node& node = nodes_[id];
  node.done.set();
  std::vector<int> ready;
  bool all_finished = false;
  bool async = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int dep : node.dependents) {
      if (--nodes_[dep].pending == 0) ready.push_back(dep);
    }
    all_finished = --remaining_ == 0;
    // Snapshot under the lock: once we release mu_ without being the final
    // finisher, a concurrent finish_stage can complete the graph and the
    // owner may destroy it — from here on `this` is only touched if
    // all_finished (we gate all_done_, so the owner can't be done waiting)
    // or if ready is non-empty (those stages are counted in remaining_ and
    // cannot finish before we submit them, so the graph stays alive).
    async = async_mode_;
  }
  if (async) {
    ThreadPool& pool = global_pool();
    for (int id_ready : ready)
      pool.submit([this, id_ready] {
        run_stage(static_cast<std::size_t>(id_ready));
      });
  }
  // In serial mode dependents are reached by the ascending-id sweep (deps
  // always point backwards), so nothing is submitted.
  if (all_finished) all_done_.set();
}

void StageGraph::launch() {
  ADAQP_CHECK_MSG(!launched_, "StageGraph launched twice");
  maybe_racecheck();
  launched_ = true;
  async_mode_ = true;
  remaining_ = nodes_.size();
  if (nodes_.empty()) {
    all_done_.set();
    return;
  }
  // Collect sources first: a source finishing mid-iteration may submit
  // dependents concurrently, which is fine — only pending==0 transitions
  // enqueue, so no stage can be submitted twice.
  std::vector<std::size_t> sources;
  for (std::size_t id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].pending == 0) sources.push_back(id);
  ThreadPool& pool = global_pool();
  for (std::size_t id : sources)
    pool.submit([this, id] { run_stage(id); });
}

void StageGraph::wait() {
  ADAQP_CHECK_MSG(launched_, "StageGraph::wait without launch");
  all_done_.wait();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void StageGraph::run_serial() {
  ADAQP_CHECK_MSG(!launched_, "StageGraph::run_serial after launch");
  maybe_racecheck();
  launched_ = true;
  async_mode_ = false;
  remaining_ = nodes_.size();
  if (nodes_.empty()) {
    all_done_.set();
    return;
  }
  for (std::size_t id = 0; id < nodes_.size(); ++id) run_stage(id);
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void StageGraph::run(bool async) {
  if (async) {
    launch();
    wait();
  } else {
    run_serial();
  }
}

}  // namespace adaqp::pipeline
