// lint:hot-path-file — steady-state epochs run through this TU; every
// allocation below must be warmup/build-time only (docs/ARCHITECTURE.md,
// "Memory subsystem").
#include "pipeline/stage_graph.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "pipeline/trace.h"
#include "runtime/thread_pool.h"

namespace adaqp::pipeline {

void Event::set() {
  // The notify must stay under the lock: an Event dies with its StageGraph
  // as soon as a waiter observes done_, and every observation path (done(),
  // the wait() predicate) acquires mu_ — so a waiter can only destroy this
  // object after set() has released mu_, i.e. after notify_all() returned.
  // Notifying after unlock reintroduces a destroy-while-broadcast race on
  // the condvar (found by TSan; pinned by SanitizerRegression tests).
  std::lock_guard<std::mutex> lk(mu_);
  done_ = true;
  cv_.notify_all();
}

bool Event::done() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_;
}

void Event::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  done_ = false;
}

void Event::wait() {
  ThreadPool& pool = global_pool();
  for (;;) {
    if (done()) return;
    if (pool.try_run_one_detached()) continue;
    // Queue dry: the remaining work is running on workers (or a dependent
    // will be enqueued when it finishes). Block until set(), waking
    // periodically to re-help in case new stages were submitted between the
    // empty check and this wait.
    std::unique_lock<std::mutex> lk(mu_);
    if (done_) return;
    cv_.wait_for(lk, std::chrono::milliseconds(5), [&] { return done_; });
  }
}

int StageGraph::add(std::string name, StageFn fn,
                    const std::vector<int>& deps) {
  return add(std::move(name), std::move(fn), deps, {});
}

int StageGraph::add(std::string name, StageFn fn, const std::vector<int>& deps,
                    analysis::AccessList accesses) {
  ADAQP_CHECK_MSG(!launched_, "StageGraph::add after launch");
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();  // lint:allow(hot-path-alloc) graph build
  Node& node = nodes_.back();
  node.name = std::move(name);
  node.fn = std::move(fn);
  node.accesses = std::move(accesses);
  node.pending = 0;
  for (int dep : deps) {
    ADAQP_CHECK_MSG(dep >= 0 && dep < id,
                    "stage \"" << node.name << "\" dependency " << dep
                               << " must reference an earlier stage");
    nodes_[dep].dependents.push_back(id);  // lint:allow(hot-path-alloc) graph build
    ++node.pending;
  }
  node.deps = deps;
  return id;
}

void StageGraph::maybe_racecheck() const {
  if (!analysis::racecheck_enabled()) return;
  std::vector<analysis::StageAccessRecord> records;
  records.reserve(nodes_.size());  // lint:allow(hot-path-alloc) racecheck mode only
  for (const Node& node : nodes_)
    records.push_back({node.name, node.deps, node.accesses});  // lint:allow(hot-path-alloc) racecheck mode only
  // Records to the process-wide registry and throws on violations — before
  // any stage has run, so a declared race never executes under the checker.
  analysis::record_and_enforce(
      analysis::check_stage_dag(std::move(records), label_));
}

Event& StageGraph::stage_done(int id) {
  ADAQP_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  return nodes_[id].done;
}

double StageGraph::stage_begin_us(int id) const {
  ADAQP_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  return nodes_[id].begin_us;
}

double StageGraph::stage_end_us(int id) const {
  ADAQP_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  return nodes_[id].end_us;
}

const std::string& StageGraph::stage_name(int id) const {
  ADAQP_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  return nodes_[id].name;
}

const std::vector<int>& StageGraph::stage_deps(int id) const {
  ADAQP_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  return nodes_[id].deps;
}

void StageGraph::run_stage(std::size_t id) {
  Node& node = nodes_[id];
  // Timestamps are stamped before finish_stage(): once the stage's Event is
  // set the owner may read them (the Event mutex publishes the writes).
  node.begin_us = obs::monotonic_us();
  {
    TraceSpan span(node.name, "stage");
    bool skip;
    {
      std::lock_guard<std::mutex> lk(mu_);
      skip = error_ != nullptr;  // a failed stage poisons the rest
    }
    if (!skip) {
      try {
        node.fn();
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }
  node.end_us = obs::monotonic_us();
  obs::instruments().pipeline_stages.add(1);
  finish_stage(id);
}

void StageGraph::finish_stage(std::size_t id) {
  Node& node = nodes_[id];
  node.done.set();
  // Per-node staging: only this node's (single, per run) finisher touches
  // it, and its capacity persists across reset() — no per-stage allocation.
  std::vector<int>& ready = node.ready_scratch;
  ready.clear();
  bool all_finished = false;
  bool async = false;
  bool have_ready = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int dep : node.dependents) {
      if (--nodes_[dep].pending == 0) ready.push_back(dep);  // lint:allow(hot-path-alloc) prewarm()ed capacity
    }
    all_finished = --remaining_ == 0;
    // Snapshot under the lock: once we release mu_ without being the final
    // finisher, a concurrent finish_stage can complete the graph and the
    // owner may destroy it — from here on `this` (including `ready`, which
    // lives in the node) is only touched if all_finished (we gate
    // all_done_, so the owner can't be done waiting) or if ready is
    // non-empty (those stages are counted in remaining_ and cannot finish
    // before we submit them, so the graph stays alive). have_ready must
    // therefore be taken here, not read from the member afterwards.
    async = async_mode_;
    have_ready = !ready.empty();
  }
  if (async && have_ready) {
    ThreadPool& pool = global_pool();
    for (int id_ready : ready)
      pool.submit([this, id_ready] {
        run_stage(static_cast<std::size_t>(id_ready));
      });
  }
  // In serial mode dependents are reached by the ascending-id sweep (deps
  // always point backwards), so nothing is submitted.
  if (all_finished) all_done_.set();
}

void StageGraph::reset() {
  ADAQP_CHECK_MSG(!launched_ || all_done_.done(),
                  "StageGraph::reset while a run is in flight");
  for (Node& node : nodes_) {
    node.pending = static_cast<int>(node.deps.size());
    node.done.reset();
  }
  error_ = nullptr;
  remaining_ = 0;
  all_done_.reset();
  launched_ = false;
  async_mode_ = false;
}

void StageGraph::prewarm() {
  // Reserve every schedule-dependent scratch vector up front. Which node's
  // ready_scratch collects a dependent depends on finish order, so without
  // this the capacity warms up lazily over *different* nodes on different
  // runs — a nondeterministic allocation leak into warm epochs (and stages
  // of a deferred graph may first execute inside a later epoch entirely).
  if (prewarmed_) return;
  prewarmed_ = true;
  source_scratch_.reserve(nodes_.size());  // lint:allow(hot-path-alloc) prewarm, one-time
  for (Node& node : nodes_) node.ready_scratch.reserve(node.dependents.size());  // lint:allow(hot-path-alloc) prewarm, one-time
}

void StageGraph::launch() {
  ADAQP_CHECK_MSG(!launched_, "StageGraph launched twice (reset() to re-run)");
  maybe_racecheck();
  prewarm();
  launched_ = true;
  async_mode_ = true;
  remaining_ = nodes_.size();
  if (nodes_.empty()) {
    all_done_.set();
    return;
  }
  // Collect sources first: a source finishing mid-iteration may submit
  // dependents concurrently, which is fine — only pending==0 transitions
  // enqueue, so no stage can be submitted twice. The staging vector is a
  // member so re-launches after reset() reuse its capacity.
  std::vector<std::size_t>& sources = source_scratch_;
  sources.clear();
  for (std::size_t id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].pending == 0) sources.push_back(id);  // lint:allow(hot-path-alloc) prewarm()ed capacity
  ThreadPool& pool = global_pool();
  for (std::size_t id : sources)
    pool.submit([this, id] { run_stage(id); });
}

void StageGraph::wait() {
  ADAQP_CHECK_MSG(launched_, "StageGraph::wait without launch");
  all_done_.wait();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void StageGraph::run_serial() {
  ADAQP_CHECK_MSG(!launched_, "StageGraph::run_serial after launch");
  maybe_racecheck();
  prewarm();
  launched_ = true;
  async_mode_ = false;
  remaining_ = nodes_.size();
  if (nodes_.empty()) {
    all_done_.set();
    return;
  }
  for (std::size_t id = 0; id < nodes_.size(); ++id) run_stage(id);
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void StageGraph::run(bool async) {
  if (async) {
    launch();
    wait();
  } else {
    run_serial();
  }
}

}  // namespace adaqp::pipeline
