#include "pipeline/stage_graph.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "pipeline/trace.h"
#include "runtime/thread_pool.h"

namespace adaqp::pipeline {

void Event::set() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    done_ = true;
  }
  cv_.notify_all();
}

bool Event::done() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_;
}

void Event::wait() {
  ThreadPool& pool = global_pool();
  for (;;) {
    if (done()) return;
    if (pool.try_run_one_detached()) continue;
    // Queue dry: the remaining work is running on workers (or a dependent
    // will be enqueued when it finishes). Block until set(), waking
    // periodically to re-help in case new stages were submitted between the
    // empty check and this wait.
    std::unique_lock<std::mutex> lk(mu_);
    if (done_) return;
    cv_.wait_for(lk, std::chrono::milliseconds(5), [&] { return done_; });
  }
}

int StageGraph::add(std::string name, StageFn fn,
                    const std::vector<int>& deps) {
  ADAQP_CHECK_MSG(!launched_, "StageGraph::add after launch");
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.name = std::move(name);
  node.fn = std::move(fn);
  node.pending = 0;
  for (int dep : deps) {
    ADAQP_CHECK_MSG(dep >= 0 && dep < id,
                    "stage \"" << node.name << "\" dependency " << dep
                               << " must reference an earlier stage");
    nodes_[dep].dependents.push_back(id);
    ++node.pending;
  }
  return id;
}

Event& StageGraph::stage_done(int id) {
  ADAQP_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  return nodes_[id].done;
}

void StageGraph::run_stage(std::size_t id) {
  Node& node = nodes_[id];
  {
    TraceSpan span(node.name, "stage");
    bool skip;
    {
      std::lock_guard<std::mutex> lk(mu_);
      skip = error_ != nullptr;  // a failed stage poisons the rest
    }
    if (!skip) {
      try {
        node.fn();
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }
  finish_stage(id);
}

void StageGraph::finish_stage(std::size_t id) {
  Node& node = nodes_[id];
  node.done.set();
  std::vector<int> ready;
  bool all_finished = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int dep : node.dependents) {
      if (--nodes_[dep].pending == 0) ready.push_back(dep);
    }
    all_finished = --remaining_ == 0;
  }
  if (async_mode_) {
    ThreadPool& pool = global_pool();
    for (int id_ready : ready)
      pool.submit([this, id_ready] {
        run_stage(static_cast<std::size_t>(id_ready));
      });
  }
  // In serial mode dependents are reached by the ascending-id sweep (deps
  // always point backwards), so nothing is submitted.
  if (all_finished) all_done_.set();
}

void StageGraph::launch() {
  ADAQP_CHECK_MSG(!launched_, "StageGraph launched twice");
  launched_ = true;
  async_mode_ = true;
  remaining_ = nodes_.size();
  if (nodes_.empty()) {
    all_done_.set();
    return;
  }
  // Collect sources first: a source finishing mid-iteration may submit
  // dependents concurrently, which is fine — only pending==0 transitions
  // enqueue, so no stage can be submitted twice.
  std::vector<std::size_t> sources;
  for (std::size_t id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].pending == 0) sources.push_back(id);
  ThreadPool& pool = global_pool();
  for (std::size_t id : sources)
    pool.submit([this, id] { run_stage(id); });
}

void StageGraph::wait() {
  ADAQP_CHECK_MSG(launched_, "StageGraph::wait without launch");
  all_done_.wait();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void StageGraph::run_serial() {
  ADAQP_CHECK_MSG(!launched_, "StageGraph::run_serial after launch");
  launched_ = true;
  async_mode_ = false;
  remaining_ = nodes_.size();
  if (nodes_.empty()) {
    all_done_.set();
    return;
  }
  for (std::size_t id = 0; id < nodes_.size(); ++id) run_stage(id);
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void StageGraph::run(bool async) {
  if (async) {
    launch();
    wait();
  } else {
    run_serial();
  }
}

}  // namespace adaqp::pipeline
