#include "assign/bit_assigner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "quant/quantize.h"

namespace adaqp {

namespace {

constexpr int kBitChoices[] = {2, 4, 8};

double variance_factor(int bits) {
  const double levels = static_cast<double>((1u << bits) - 1u);
  return 1.0 / (levels * levels);
}

/// Greedy MCKP: minimize Σ β_g·varfac(b_g) subject to Σ Dsum_g·b_g ≤ budget.
/// Starts everything at 2 bits and applies upgrade steps (2→4, then 4→8) in
/// order of variance-reduction per unit weight; the marginal ratios are
/// strictly diminishing per group, so this is the exact LP-relaxation
/// optimum rounded down to an integral solution.
struct KnapsackResult {
  std::vector<int> bits;
  double variance = 0.0;
  double used_weight = 0.0;
  bool feasible = true;
};

KnapsackResult solve_knapsack(const std::vector<MessageGroup>& groups,
                              double budget) {
  KnapsackResult res;
  res.bits.assign(groups.size(), 2);
  double weight = 0.0;
  for (const auto& g : groups) weight += 2.0 * static_cast<double>(g.dim_sum);
  if (weight > budget) {
    // Even the all-2-bit assignment misses the deadline; the round solution
    // keeps it (Z candidates below the all-2-bit straggler time are pruned
    // by the caller, so this only happens for deliberately tight probes).
    res.feasible = false;
  }
  struct Step {
    double ratio;
    std::uint32_t group;
    int to_bits;
    double dvar;
    double dweight;
  };
  std::vector<Step> steps;
  steps.reserve(groups.size() * 2);
  for (std::uint32_t i = 0; i < groups.size(); ++i) {
    const double beta = groups[i].beta_sum;
    const double dim = static_cast<double>(groups[i].dim_sum);
    if (dim == 0.0) continue;
    const double dvar24 = beta * (variance_factor(2) - variance_factor(4));
    const double dvar48 = beta * (variance_factor(4) - variance_factor(8));
    steps.push_back({dvar24 / (2.0 * dim), i, 4, dvar24, 2.0 * dim});
    steps.push_back({dvar48 / (4.0 * dim), i, 8, dvar48, 4.0 * dim});
  }
  // Stable sort so that equal-ratio steps keep insertion order (2→4 was
  // inserted before 4→8 per group), preserving the upgrade-chain invariant
  // even for zero-β groups.
  std::stable_sort(steps.begin(), steps.end(),
                   [](const Step& a, const Step& b) { return a.ratio > b.ratio; });
  // Relative slack absorbs rounding when the budget equals an assignment's
  // exact weight (e.g. the all-8 candidate of the straggler pair).
  const double budget_slack = budget * 1e-12 + 1e-9;
  for (const auto& s : steps) {
    // A 4→8 step only applies after the matching 2→4 step; the ratio order
    // guarantees that because dvar24/2D > dvar48/4D for every group.
    if (res.bits[s.group] != s.to_bits - s.to_bits / 2) continue;
    if (weight + s.dweight > budget + budget_slack) continue;
    res.bits[s.group] = s.to_bits;
    weight += s.dweight;
  }
  res.used_weight = weight;
  for (std::size_t i = 0; i < groups.size(); ++i)
    res.variance += groups[i].beta_sum * variance_factor(res.bits[i]);
  return res;
}

double pair_time(const RoundProblem::Pair& pair, const std::vector<int>& bits) {
  double weight = 0.0;
  for (std::size_t g = 0; g < pair.groups.size(); ++g)
    weight += static_cast<double>(pair.groups[g].dim_sum) * bits[g];
  return pair.theta * weight + pair.gamma;
}

}  // namespace

namespace {

/// Normalization ranges for the two objectives. Raw variance (graph-scale
/// dependent) and raw seconds live on incomparable scales, so the weighted
/// sum scalarization (paper Eqn. 12) is applied to each objective rescaled
/// to [0,1] over its achievable range: λ=1 → pure variance minimization
/// (all 8-bit), λ=0 → pure straggler-time minimization (all 2-bit), matching
/// the endpoints of the paper's sensitivity study (Fig. 11).
struct ObjectiveScale {
  double var_min = 0.0, var_max = 0.0;  // all-8 / all-2 assignments
  double z_floor = 0.0, z_ceil = 0.0;   // all-2 / all-8 straggler times

  double scalarize(double lambda, double variance, double z) const {
    const double vspan = std::max(var_max - var_min, 1e-30);
    const double zspan = std::max(z_ceil - z_floor, 1e-30);
    return lambda * (variance - var_min) / vspan +
           (1.0 - lambda) * (z - z_floor) / zspan;
  }
};

ObjectiveScale objective_scale(const RoundProblem& problem) {
  ObjectiveScale s;
  for (const auto& pair : problem.pairs) {
    double w = 0.0;
    for (const auto& g : pair.groups) {
      w += static_cast<double>(g.dim_sum);
      s.var_max += g.beta_sum * variance_factor(2);
      s.var_min += g.beta_sum * variance_factor(8);
    }
    s.z_floor = std::max(s.z_floor, pair.theta * 2.0 * w + pair.gamma);
    s.z_ceil = std::max(s.z_ceil, pair.theta * 8.0 * w + pair.gamma);
  }
  return s;
}

}  // namespace

RoundSolution solve_round(const RoundProblem& problem, double lambda) {
  ADAQP_CHECK(lambda >= 0.0 && lambda <= 1.0);
  RoundSolution best;
  best.objective = std::numeric_limits<double>::infinity();
  if (problem.pairs.empty()) {
    best.objective = 0.0;
    return best;
  }

  // Candidate Z values: for every pair, the times of its all-2, all-4 and
  // all-8 assignments, plus a refinement grid between the global feasibility
  // floor (max of all-2 times) and ceiling (max of all-8 times).
  const ObjectiveScale scale = objective_scale(problem);
  std::vector<double> candidates;
  for (const auto& pair : problem.pairs) {
    double w = 0.0;
    for (const auto& g : pair.groups) w += static_cast<double>(g.dim_sum);
    candidates.insert(candidates.end(),
                      {pair.theta * 2.0 * w + pair.gamma,
                       pair.theta * 4.0 * w + pair.gamma,
                       pair.theta * 8.0 * w + pair.gamma});
  }
  constexpr int kGrid = 33;
  for (int i = 0; i <= kGrid; ++i)
    candidates.push_back(scale.z_floor + (scale.z_ceil - scale.z_floor) *
                                             static_cast<double>(i) / kGrid);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (double z : candidates) {
    if (z + 1e-15 < scale.z_floor) continue;  // infeasible even at 2 bits
    RoundSolution sol;
    sol.bits.resize(problem.pairs.size());
    sol.variance = 0.0;
    double realized_z = 0.0;
    for (std::size_t p = 0; p < problem.pairs.size(); ++p) {
      const auto& pair = problem.pairs[p];
      const double budget =
          pair.theta > 0.0 ? (z - pair.gamma) / pair.theta
                           : std::numeric_limits<double>::infinity();
      KnapsackResult k = solve_knapsack(pair.groups, budget);
      sol.bits[p] = std::move(k.bits);
      sol.variance += k.variance;
      realized_z = std::max(realized_z, pair_time(pair, sol.bits[p]));
    }
    sol.z = realized_z;
    sol.objective = scale.scalarize(lambda, sol.variance, sol.z);
    if (sol.objective < best.objective) best = std::move(sol);
  }
  return best;
}

RoundSolution solve_round_bruteforce(const RoundProblem& problem,
                                     double lambda) {
  // Enumerate every assignment; pairs are independent only through Z, so the
  // full cross product is required. Tests keep total group count ≤ ~8.
  std::size_t total_groups = 0;
  for (const auto& pair : problem.pairs) total_groups += pair.groups.size();
  ADAQP_CHECK_MSG(total_groups <= 12, "brute force limited to 12 groups");

  RoundSolution best;
  best.objective = std::numeric_limits<double>::infinity();
  std::vector<int> flat(total_groups, 0);  // indices into kBitChoices
  const ObjectiveScale scale = objective_scale(problem);

  auto evaluate = [&]() {
    RoundSolution sol;
    sol.bits.resize(problem.pairs.size());
    std::size_t at = 0;
    double z = 0.0, var = 0.0;
    for (std::size_t p = 0; p < problem.pairs.size(); ++p) {
      const auto& pair = problem.pairs[p];
      sol.bits[p].resize(pair.groups.size());
      for (std::size_t g = 0; g < pair.groups.size(); ++g) {
        sol.bits[p][g] = kBitChoices[flat[at++]];
        var += pair.groups[g].beta_sum * variance_factor(sol.bits[p][g]);
      }
      z = std::max(z, pair_time(pair, sol.bits[p]));
    }
    sol.variance = var;
    sol.z = z;
    sol.objective = scale.scalarize(lambda, var, z);
    if (sol.objective < best.objective) best = std::move(sol);
  };

  // Odometer over 3^total_groups assignments.
  while (true) {
    evaluate();
    std::size_t i = 0;
    while (i < total_groups && flat[i] == 2) flat[i++] = 0;
    if (i == total_groups) break;
    flat[i]++;
  }
  if (total_groups == 0) evaluate();
  return best;
}

std::vector<float> row_ranges_of(const Matrix& m) {
  std::vector<float> ranges;
  row_ranges_of_into(m, ranges);
  return ranges;
}

void row_ranges_of_into(const Matrix& m, std::vector<float>& ranges) {
  ranges.assign(m.rows(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    if (row.empty()) continue;
    float lo = row[0], hi = row[0];
    for (float v : row) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    ranges[r] = hi - lo;
  }
}

std::vector<std::vector<std::vector<double>>> message_betas(
    const DistGraph& dist, Aggregator agg, Direction dir,
    const std::vector<std::vector<float>>& row_ranges, std::size_t dim) {
  const int n = dist.num_devices();
  ADAQP_CHECK(static_cast<int>(row_ranges.size()) == n);

  std::vector<std::vector<std::vector<double>>> betas(n);
  for (int d = 0; d < n; ++d) {
    const DeviceGraph& dev = dist.devices[d];
    betas[d].resize(n);
    if (dir == Direction::kForward) {
      // Message k → peer p: k is an owned node; its aggregation targets on p
      // are exactly its halo neighbors owned by p (graph symmetry).
      // Precompute per (owned node, peer) Σ α².
      for (int p = 0; p < n; ++p) {
        const auto& sends = dev.send_local[p];
        betas[d][p].assign(sends.size(), 0.0);
        for (std::size_t i = 0; i < sends.size(); ++i) {
          const NodeId k = sends[i];
          double alpha_sq = 0.0;
          for (NodeId u : dev.neighbors(k)) {
            if (u < dev.num_owned) continue;  // local target
            const NodeId gu = dev.global_of_local[u];
            if (dist.partition.part_of[gu] != p) continue;
            // α(k → u) as used when u aggregates k.
            const double a = aggregation_coefficient(
                agg, dev.global_degree[k], dev.global_degree[u]);
            alpha_sq += a * a;
          }
          const double range = row_ranges[d][k];
          betas[d][p][i] = alpha_sq * static_cast<double>(dim) *
                           static_cast<double>(range) * range / 6.0;
        }
      }
    } else {
      // Backward message: gradient of halo node v sent back to owner p; the
      // owner scatters it to v's neighbors owned here... rather, the variance
      // enters through this device's owned nodes u that aggregated v — the
      // α²(v→u) sum over owned u (Theorem 3's error term, symmetric role).
      std::vector<double> alpha_sq_halo(dev.num_local(), 0.0);
      for (std::size_t u = 0; u < dev.num_owned; ++u) {
        for (NodeId v : dev.neighbors(static_cast<NodeId>(u))) {
          if (v < dev.num_owned) continue;
          const double a = aggregation_coefficient(
              agg, dev.global_degree[v],
              dev.global_degree[u]);
          alpha_sq_halo[v] += a * a;
        }
      }
      for (int p = 0; p < n; ++p) {
        const auto& recvs = dev.recv_local[p];
        betas[d][p].assign(recvs.size(), 0.0);
        for (std::size_t i = 0; i < recvs.size(); ++i) {
          const NodeId v = recvs[i];
          const double range = row_ranges[d][v];
          betas[d][p][i] = alpha_sq_halo[v] * static_cast<double>(dim) *
                           static_cast<double>(range) * range / 6.0;
        }
      }
    }
  }
  return betas;
}

ExchangePlan assign_bit_widths(const DistGraph& dist,
                               const ClusterSpec& cluster, Aggregator agg,
                               Direction dir,
                               const std::vector<std::vector<float>>& row_ranges,
                               std::size_t dim, const AssignerOptions& opts,
                               AssignReport* report) {
  const obs::Stopwatch solve_watch;
  const int n = dist.num_devices();
  ADAQP_CHECK(opts.group_size >= 1);

  const auto betas = message_betas(dist, agg, dir, row_ranges, dim);

  // Initialize plan with all-8-bit defaults (overwritten below).
  ExchangePlan plan = dir == Direction::kForward
                          ? ExchangePlan::uniform_forward(dist, 8)
                          : ExchangePlan::uniform_backward(dist, 8);

  AssignReport rep;
  const RingAllToAll ring(n);
  for (int round = 1; round <= ring.num_rounds(); ++round) {
    RoundProblem problem;
    // Remember, per problem pair, the grouping (message indices per group)
    // so the solution can be written back into the plan.
    struct PairMeta {
      int src, dst;
      std::vector<std::vector<std::uint32_t>> group_members;
    };
    std::vector<PairMeta> metas;
    for (int src = 0; src < n; ++src) {
      const int dst = ring.send_peer(src, round);
      const auto& list = dir == Direction::kForward
                             ? dist.devices[src].send_local[dst]
                             : dist.devices[src].recv_local[dst];
      if (list.empty()) continue;
      const auto& b = betas[src][dst];
      // Order messages by β (paper: sort by β then chunk into groups).
      std::vector<std::uint32_t> order(list.size());
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
        return b[x] > b[y];
      });
      RoundProblem::Pair pair;
      pair.src = src;
      pair.dst = dst;
      const LinkParams link = cluster.link(src, dst);
      // θ in seconds per (dim·bit): bits→bytes is /8.
      pair.theta = link.theta / 8.0;
      pair.gamma = link.gamma;
      PairMeta meta;
      meta.src = src;
      meta.dst = dst;
      for (std::size_t at = 0; at < order.size(); at += opts.group_size) {
        MessageGroup group;
        std::vector<std::uint32_t> members;
        for (std::size_t i = at;
             i < std::min(order.size(), at + opts.group_size); ++i) {
          group.beta_sum += b[order[i]];
          group.dim_sum += dim;
          members.push_back(order[i]);
        }
        pair.groups.push_back(std::move(group));
        meta.group_members.push_back(std::move(members));
      }
      rep.num_groups += pair.groups.size();
      problem.pairs.push_back(std::move(pair));
      metas.push_back(std::move(meta));
    }
    if (problem.pairs.empty()) continue;

    const RoundSolution sol = solve_round(problem, opts.lambda);
    rep.total_variance += sol.variance;
    rep.total_z += sol.z;
    rep.total_objective += sol.objective;
    for (std::size_t p = 0; p < metas.size(); ++p) {
      const auto& meta = metas[p];
      for (std::size_t g = 0; g < meta.group_members.size(); ++g)
        for (std::uint32_t idx : meta.group_members[g])
          plan.bits[meta.src][meta.dst][idx] = sol.bits[p][g];
    }
  }

  // Observability: solve count/latency and the realized bit-width
  // distribution — recorded whether or not the caller asked for a report.
  {
    const obs::Instruments& ins = obs::instruments();
    ins.assigner_solves.add(1);
    ins.assigner_solve_us.record(solve_watch.elapsed_us());
    std::array<std::uint64_t, 3> dist_by_width{};
    for (const auto& per_device : plan.bits)
      for (const auto& per_peer : per_device)
        for (const int b : per_peer) {
          const int w = obs::width_index(b);
          if (w < 3) ++dist_by_width[static_cast<std::size_t>(w)];
        }
    for (int w = 0; w < 3; ++w)
      ins.assigner_bits[static_cast<std::size_t>(w)]->add(
          dist_by_width[static_cast<std::size_t>(w)]);
  }

  if (report) {
    rep.solve_wall_seconds = solve_watch.elapsed_seconds();
    // Simulated master gather/scatter of traced β data (paper Fig. 6):
    // every worker ships one double per message to rank 0 and receives one
    // byte (the bit choice) back.
    std::size_t traced_bytes = 0;
    for (int d = 1; d < n; ++d)
      for (int p = 0; p < n; ++p)
        traced_bytes += betas[d][p].size() * (sizeof(double) + 1);
    rep.sim_gather_scatter_seconds =
        cluster.transfer_seconds(1 % std::max(n, 2), 0, traced_bytes);
    *report = rep;
  }
  return plan;
}

ExchangePlan sample_uniform_plan(const DistGraph& dist, Direction dir,
                                 Rng& rng) {
  ExchangePlan plan = dir == Direction::kForward
                          ? ExchangePlan::uniform_forward(dist, 8)
                          : ExchangePlan::uniform_backward(dist, 8);
  for (auto& per_device : plan.bits)
    for (auto& per_peer : per_device)
      for (int& b : per_peer) b = kBitChoices[rng.uniform_int(3)];
  return plan;
}

}  // namespace adaqp
