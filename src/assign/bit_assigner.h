// Adaptive bit-width assignment (paper §3.3 and §4.2).
//
// For every ring-all2all round of a layer's forward or backward pass, choose
// a bit-width b_g ∈ {2,4,8} per *message group* minimizing the scalarized
// bi-objective (paper Eqn. 12):
//
//     min_b  λ · Σ_g β_g / (2^{b_g} − 1)²  +  (1 − λ) · Z
//     s.t.   θ_i · Σ_{g ∈ pair i} Dsum_g · b_g + γ_i ≤ Z      ∀ pairs i
//
// where β_g aggregates each member message's variance coefficient
// β_k = (Σ_{v∈N_T(k)} α²_{k,v}) · D_k · (max h_k − min h_k)² / 6 (Theorem 3).
//
// Solver (GUROBI substitute, see DESIGN.md): the ring schedule makes rounds
// disjoint, so the problem decomposes per round. For a fixed straggler bound
// Z each pair solves an independent multiple-choice knapsack: minimize
// variance subject to Σ Dsum_g·b_g ≤ (Z−γ_i)/θ_i. Because the variance
// decrease per added bit-weight is strictly diminishing (0→ convex choice
// curve), greedy upgrade by marginal ratio solves the LP relaxation exactly
// and is within one group of the integer optimum; a parametric sweep over
// candidate Z values then scalarizes the bi-objective. Tests cross-check the
// solver against exhaustive enumeration on small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/cluster.h"
#include "dist/dist_graph.h"
#include "dist/halo_exchange.h"
#include "gnn/aggregate.h"

namespace adaqp {

/// One group of messages on one device pair sharing a bit-width choice.
struct MessageGroup {
  double beta_sum = 0.0;      ///< Σ β_k over member messages
  std::size_t dim_sum = 0;    ///< Σ D_k (time-objective weight per bit)
  std::vector<std::uint32_t> members;  ///< positions in the pair's send list
};

/// All data of one ring round: the (send) pairs active in that round.
struct RoundProblem {
  struct Pair {
    int src = 0;
    int dst = 0;
    double theta = 0.0;
    double gamma = 0.0;
    std::vector<MessageGroup> groups;
  };
  std::vector<Pair> pairs;
};

struct RoundSolution {
  /// bits[pair][group] ∈ {2,4,8}, aligned with RoundProblem::pairs/groups.
  std::vector<std::vector<int>> bits;
  double variance = 0.0;   ///< Σ β_g/(2^b−1)²
  double z = 0.0;          ///< realized straggler time bound
  double objective = 0.0;  ///< λ·variance + (1−λ)·z
};

/// Parametric + greedy-MCKP solver described above.
RoundSolution solve_round(const RoundProblem& problem, double lambda);

/// Exhaustive reference solver (exponential; tests only).
RoundSolution solve_round_bruteforce(const RoundProblem& problem,
                                     double lambda);

/// Which message list a plan aligns with (see ExchangePlan).
enum class Direction { kForward, kBackward };

struct AssignerOptions {
  std::size_t group_size = 64;  ///< messages per group (paper Appendix B)
  double lambda = 0.5;          ///< variance-vs-time weight (paper default)
};

/// Statistics and overhead of one assignment solve.
struct AssignReport {
  double solve_wall_seconds = 0.0;     ///< measured CPU time of the solver
  double sim_gather_scatter_seconds = 0.0;  ///< simulated trace gather/scatter
  double total_variance = 0.0;
  double total_z = 0.0;
  double total_objective = 0.0;  ///< Σ over rounds of the scalarized optimum
  std::size_t num_groups = 0;
};

/// Per-message variance coefficients (Σ α² · D · range²/6) for the messages
/// device d sends to each peer, aligned with send_local (forward) or
/// recv_local (backward). `ranges[d]` must hold per-local-row (max−min)
/// of the matrix being communicated on device d.
std::vector<std::vector<std::vector<double>>> message_betas(
    const DistGraph& dist, Aggregator agg, Direction dir,
    const std::vector<std::vector<float>>& row_ranges, std::size_t dim);

/// Per-local-row (max − min) of a matrix (the traced numerical range).
std::vector<float> row_ranges_of(const Matrix& m);

/// In-place form of row_ranges_of: rewrites `out` reusing its capacity, so
/// per-epoch range traces allocate nothing once the shapes have stabilized
/// (the steady-state contract, docs/ARCHITECTURE.md).
void row_ranges_of_into(const Matrix& m, std::vector<float>& out);

/// Build an exchange plan for one layer/direction by solving every ring
/// round's bi-objective problem.
ExchangePlan assign_bit_widths(const DistGraph& dist,
                               const ClusterSpec& cluster, Aggregator agg,
                               Direction dir,
                               const std::vector<std::vector<float>>& row_ranges,
                               std::size_t dim, const AssignerOptions& opts,
                               AssignReport* report = nullptr);

/// Uniform random sampling of bit-widths from {2,4,8} per message — the
/// baseline scheme of paper Table 6.
ExchangePlan sample_uniform_plan(const DistGraph& dist, Direction dir,
                                 Rng& rng);

}  // namespace adaqp
