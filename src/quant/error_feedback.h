// Error-feedback (compensated) quantization — an extension beyond the paper.
//
// AdaQP's stochastic rounding is unbiased per message, so plain quantization
// already converges at O(1/T) (Theorem 2). Error feedback (Wu et al., "Error
// Compensated Quantized SGD", cited in the paper's related work) goes
// further: the residual of each quantization is carried into the next
// round's input, making the *time-averaged* transmitted signal track the
// true signal even at 2-bit widths. This module implements the residual
// store and a compensated encode path compatible with the halo-exchange
// send maps, and the `bench_assigner`/tests quantify the bias reduction.
#pragma once

#include <vector>

#include "dist/dist_graph.h"
#include "quant/message_codec.h"
#include "tensor/matrix.h"

namespace adaqp {

class Rng;

/// Residual state for one device's outgoing messages: one row per (peer,
/// send-slot) pair, laid out per peer in send-map order.
class ErrorFeedbackState {
 public:
  ErrorFeedbackState() = default;
  /// Allocate residual rows for every send slot of `dev` at width `dim`.
  ErrorFeedbackState(const DeviceGraph& dev, std::size_t dim);

  bool initialized() const { return !residuals_.empty(); }
  std::size_t dim() const { return dim_; }

  /// Residual matrix for peer p (rows aligned with dev.send_local[p]).
  Matrix& residual_for_peer(int peer) { return residuals_[peer]; }
  const Matrix& residual_for_peer(int peer) const { return residuals_[peer]; }

  /// Sum of squared residual norms (diagnostic; decays to a bounded floor).
  double residual_norm() const;

  void reset();

 private:
  std::size_t dim_ = 0;
  std::vector<Matrix> residuals_;  ///< one per peer
};

/// Encode the rows `dev.send_local[peer]` of `src` at the given bit-widths
/// with error compensation: each message is quantized from
/// (value + residual) and the new residual is what the receiver will *not*
/// see. The returned block is wire-compatible with decode_rows.
EncodedBlock encode_rows_compensated(const Matrix& src, const DeviceGraph& dev,
                                     int peer, std::span<const int> bits,
                                     ErrorFeedbackState& state, Rng& rng);

/// Per-(device, peer) temporaries of one compensated encode. Persist across
/// epochs: every member is reshaped/grown in place, so after the first epoch
/// compensated encodes perform no heap allocation (the steady-state
/// contract, docs/ARCHITECTURE.md).
struct EfScratch {
  Matrix compensated;               ///< value + residual staging
  Matrix decoded;                   ///< receiver-view dequant staging
  std::vector<NodeId> seq;          ///< identity row list 0..n-1
  std::vector<float> uniforms;      ///< stochastic-rounding draws
};

/// Steady-state form of encode_rows_compensated: block built in place into
/// `out` (capacity reused), temporaries in `scratch`. The compensate add and
/// residual subtract run through the SIMD kernel table (ef_fold /
/// ef_residual), bit-identical to the plain form across ISAs.
void encode_rows_compensated_into(const Matrix& src, const DeviceGraph& dev,
                                  int peer, std::span<const int> bits,
                                  ErrorFeedbackState& state, Rng& rng,
                                  EfScratch& scratch, EncodedBlock& out);

}  // namespace adaqp
