#include "quant/error_feedback.h"

#include "common/check.h"
#include "quant/quantize.h"

namespace adaqp {

ErrorFeedbackState::ErrorFeedbackState(const DeviceGraph& dev, std::size_t dim)
    : dim_(dim) {
  residuals_.reserve(dev.send_local.size());
  for (const auto& sends : dev.send_local)
    residuals_.emplace_back(sends.size(), dim);
}

double ErrorFeedbackState::residual_norm() const {
  double acc = 0.0;
  for (const auto& m : residuals_) {
    const double f = m.frobenius_norm();
    acc += f * f;
  }
  return acc;
}

void ErrorFeedbackState::reset() {
  for (auto& m : residuals_) m.set_zero();
}

EncodedBlock encode_rows_compensated(const Matrix& src, const DeviceGraph& dev,
                                     int peer, std::span<const int> bits,
                                     ErrorFeedbackState& state, Rng& rng) {
  const auto& rows = dev.send_local[peer];
  ADAQP_CHECK_MSG(bits.size() == rows.size(),
                  "bits arity " << bits.size() << " != sends " << rows.size());
  ADAQP_CHECK_MSG(state.initialized() && state.dim() == src.cols(),
                  "error-feedback state not sized for this matrix");
  Matrix& residual = state.residual_for_peer(peer);
  ADAQP_CHECK(residual.rows() == rows.size());

  // Compensated message: m_i = value_i + residual_i, quantized; the new
  // residual is m_i - dequant(q(m_i)).
  Matrix compensated(rows.size(), src.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto value = src.row(rows[i]);
    const auto res = residual.row(i);
    auto dst = compensated.row(i);
    for (std::size_t c = 0; c < src.cols(); ++c) dst[c] = value[c] + res[c];
  }
  std::vector<NodeId> seq(rows.size());
  for (std::size_t i = 0; i < seq.size(); ++i)
    seq[i] = static_cast<NodeId>(i);
  EncodedBlock block = encode_rows(compensated, seq, bits, rng);

  // Recover what the receiver will decode, and bank the difference.
  Matrix decoded(rows.size(), src.cols());
  decode_rows(block, decoded, seq);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto sent = compensated.row(i);
    const auto got = decoded.row(i);
    auto res = residual.row(i);
    for (std::size_t c = 0; c < src.cols(); ++c) res[c] = sent[c] - got[c];
  }
  return block;
}

}  // namespace adaqp
