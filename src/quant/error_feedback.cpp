#include "quant/error_feedback.h"

#include "common/check.h"
#include "quant/quantize.h"
#include "simd/kernels.h"

namespace adaqp {

ErrorFeedbackState::ErrorFeedbackState(const DeviceGraph& dev, std::size_t dim)
    : dim_(dim) {
  residuals_.reserve(dev.send_local.size());
  for (const auto& sends : dev.send_local)
    residuals_.emplace_back(sends.size(), dim);
}

double ErrorFeedbackState::residual_norm() const {
  double acc = 0.0;
  for (const auto& m : residuals_) {
    const double f = m.frobenius_norm();
    acc += f * f;
  }
  return acc;
}

void ErrorFeedbackState::reset() {
  for (auto& m : residuals_) m.set_zero();
}

EncodedBlock encode_rows_compensated(const Matrix& src, const DeviceGraph& dev,
                                     int peer, std::span<const int> bits,
                                     ErrorFeedbackState& state, Rng& rng) {
  EncodedBlock block;
  EfScratch scratch;
  encode_rows_compensated_into(src, dev, peer, bits, state, rng, scratch,
                               block);
  return block;
}

void encode_rows_compensated_into(const Matrix& src, const DeviceGraph& dev,
                                  int peer, std::span<const int> bits,
                                  ErrorFeedbackState& state, Rng& rng,
                                  EfScratch& scratch, EncodedBlock& out) {
  const auto& rows = dev.send_local[peer];
  ADAQP_CHECK_MSG(bits.size() == rows.size(),
                  "bits arity " << bits.size() << " != sends " << rows.size());
  ADAQP_CHECK_MSG(state.initialized() && state.dim() == src.cols(),
                  "error-feedback state not sized for this matrix");
  Matrix& residual = state.residual_for_peer(peer);
  ADAQP_CHECK(residual.rows() == rows.size());
  const std::size_t dim = src.cols();
  const auto& kt = simd::kernels();

  // Compensated message: m_i = value_i + residual_i, quantized; the new
  // residual is m_i - dequant(q(m_i)).
  scratch.compensated.reshape_uninit(rows.size(), dim);
  for (std::size_t i = 0; i < rows.size(); ++i)
    kt.ef_fold(src.row(rows[i]).data(), residual.row(i).data(),
               scratch.compensated.row(i).data(), dim);
  if (scratch.seq.size() != rows.size()) {
    scratch.seq.resize(rows.size());
    for (std::size_t i = 0; i < scratch.seq.size(); ++i)
      scratch.seq[i] = static_cast<NodeId>(i);
  }
  encode_rows_into(scratch.compensated, scratch.seq, bits, rng,
                   scratch.uniforms, out);

  // Recover what the receiver will decode, and bank the difference.
  scratch.decoded.reshape_uninit(rows.size(), dim);
  decode_rows(out, scratch.decoded, scratch.seq);
  for (std::size_t i = 0; i < rows.size(); ++i)
    kt.ef_residual(scratch.compensated.row(i).data(),
                   scratch.decoded.row(i).data(), residual.row(i).data(),
                   dim);
}

}  // namespace adaqp
