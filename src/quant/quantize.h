// Stochastic integer quantization of message vectors (paper Eqn. 4 and 5).
//
// For a message vector h with bit-width b:
//   zero-point Z = min(h),  scale S = (max(h) - min(h)) / (2^b - 1),
//   q = round_stochastic((h - Z) / S),   dequant: ĥ = q·S + Z.
// Stochastic rounding makes ĥ an unbiased estimator of h with variance
// D·S²/6 (Theorem 1); the property tests validate both facts empirically.
//
// bits == 32 means "no quantization": the float payload passes through
// unchanged, letting every trainer share one communication code path while
// Vanilla remains bit-exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace adaqp {

/// Candidate bit-widths from the paper's set B = {2, 4, 8}; 32 = passthrough.
bool is_valid_bit_width(int bits);

/// Quantized form of one message vector.
struct QuantizedVector {
  int bits = 8;
  float zero_point = 0.0f;
  float scale = 0.0f;
  std::uint32_t dim = 0;
  /// Packed integer payload (or raw floats when bits == 32).
  std::vector<std::uint8_t> payload;

  /// Wire size in bytes: metadata (zp + scale) + payload.
  std::size_t wire_bytes() const { return payload.size() + 2 * sizeof(float); }
};

/// Wire size in bytes of a D-dimensional vector quantized at `bits`,
/// without materializing it. Used by the cost model and the bit-width
/// assigner's time objective.
std::size_t quantized_wire_bytes(std::size_t dim, int bits);

/// Quantize `values` with stochastic rounding (Eqn. 4).
QuantizedVector quantize(std::span<const float> values, int bits, Rng& rng);

/// (zero-point, scale) metadata of one quantized vector.
struct QuantMeta {
  float zero_point = 0.0f;
  float scale = 0.0f;
};

/// Quantize `values` and append the packed payload to `out` in place — the
/// allocation-free form the wire codec uses to build blocks without a
/// QuantizedVector temporary. Returns the (zero-point, scale) metadata.
/// Byte-for-byte the payload quantize() would produce.
QuantMeta quantize_append(std::span<const float> values, int bits, Rng& rng,
                          std::vector<std::uint8_t>& out);

/// Steady-state form: the stochastic-rounding uniforms live in the
/// caller-provided `uniform_scratch` (grown once to the row width), so
/// repeated calls perform no heap allocation once `out`'s capacity and the
/// scratch have warmed up. Byte-identical to the overload above, and the RNG
/// stream consumption is unchanged (one draw per element, element order).
QuantMeta quantize_append(std::span<const float> values, int bits, Rng& rng,
                          std::vector<std::uint8_t>& out,
                          std::vector<float>& uniform_scratch);

/// Dequantize `dim` values packed at `bits` directly from a wire payload
/// (Eqn. 5) — the in-place form decode_rows uses. `payload` must hold the
/// exact payload size; validation is the caller's job.
void dequantize_payload(const std::uint8_t* payload, int bits,
                        std::size_t dim, float zero_point, float scale,
                        std::span<float> out);

/// De-quantize into `out` (Eqn. 5). out.size() must equal qv.dim.
void dequantize(const QuantizedVector& qv, std::span<float> out);

/// Theoretical variance bound of the dequantized estimate: D·S²/6.
double variance_bound(const QuantizedVector& qv);

// ---- Bit packing ------------------------------------------------------------

/// Pack `values` (each < 2^bits) at 2/4/8 bits per entry into bytes,
/// little-endian within each byte.
std::vector<std::uint8_t> pack_bits(std::span<const std::uint32_t> values,
                                    int bits);

/// Unpack `count` entries of `bits` width from `packed`.
std::vector<std::uint32_t> unpack_bits(std::span<const std::uint8_t> packed,
                                       int bits, std::size_t count);

}  // namespace adaqp
