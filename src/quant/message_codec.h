// Wire codec for batches of quantized message vectors.
//
// Mirrors the paper's implementation note (§5 "Implementation"): messages
// bound for one destination are grouped by assigned bit-width, each group is
// quantized at a single width, and all groups are concatenated into one byte
// array for transmission; the receiver recovers full-precision rows using
// the same ordering. Here the grouping is implicit: each vector carries a
// 1-byte width tag plus its (zero-point, scale) pair, which is the same
// per-message metadata the paper transfers.
//
// The encoded byte count is the number fed to the communication cost model,
// so codec output size == simulated wire traffic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace adaqp {

class Rng;

/// One encoded transfer: a self-describing byte stream of N quantized rows.
struct EncodedBlock {
  std::vector<std::uint8_t> bytes;

  std::size_t wire_bytes() const { return bytes.size(); }
};

/// Encode `rows[i]`-th row of `src` at `bits[i]` for each i.
/// bits.size() must equal rows.size(); each entry in {2,4,8,32}.
EncodedBlock encode_rows(const Matrix& src, std::span<const NodeId> rows,
                         std::span<const int> bits, Rng& rng);

/// Steady-state form of encode_rows: rebuilds `out` in place (bytes cleared,
/// capacity kept) with the stochastic-rounding uniforms in the caller-owned
/// `uniform_scratch`. After a warmup call at the maximal payload size (the
/// uniform 32-bit plan of epoch 0), repeated calls perform no heap
/// allocation. Byte-identical to encode_rows and consumes the RNG stream
/// identically.
void encode_rows_into(const Matrix& src, std::span<const NodeId> rows,
                      std::span<const int> bits, Rng& rng,
                      std::vector<float>& uniform_scratch, EncodedBlock& out);

/// Decode a block into the `dst_rows[i]`-th row of `dst`, in order.
/// Throws on malformed/corrupt streams (magic, bounds, dim mismatches).
void decode_rows(const EncodedBlock& block, Matrix& dst,
                 std::span<const NodeId> dst_rows);

/// Span form of decode_rows: decodes whatever bytes the transport delivered
/// (src/transport/), which under loopback alias the sender's EncodedBlock
/// and under a wire backend are the received copy. Same strict validation.
void decode_rows(std::span<const std::uint8_t> bytes, Matrix& dst,
                 std::span<const NodeId> dst_rows);

/// Wire size that encode_rows would produce, without encoding (for the
/// assigner's time objective and for Vanilla accounting).
std::size_t encoded_wire_bytes(std::size_t num_rows, std::size_t dim,
                               std::span<const int> bits);

}  // namespace adaqp
