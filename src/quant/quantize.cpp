#include "quant/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace adaqp {

bool is_valid_bit_width(int bits) {
  return bits == 2 || bits == 4 || bits == 8 || bits == 32;
}

std::size_t quantized_wire_bytes(std::size_t dim, int bits) {
  ADAQP_CHECK(is_valid_bit_width(bits));
  if (bits == 32) return dim * sizeof(float) + 2 * sizeof(float);
  return (dim * static_cast<std::size_t>(bits) + 7) / 8 + 2 * sizeof(float);
}

std::vector<std::uint8_t> pack_bits(std::span<const std::uint32_t> values,
                                    int bits) {
  ADAQP_CHECK(bits == 2 || bits == 4 || bits == 8);
  const std::uint32_t mask = (1u << bits) - 1u;
  std::vector<std::uint8_t> out((values.size() * bits + 7) / 8, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    ADAQP_CHECK_MSG(values[i] <= mask,
                    "value " << values[i] << " exceeds " << bits << "-bit range");
    const std::size_t bit_pos = i * static_cast<std::size_t>(bits);
    out[bit_pos / 8] |=
        static_cast<std::uint8_t>(values[i] << (bit_pos % 8));
  }
  return out;
}

std::vector<std::uint32_t> unpack_bits(std::span<const std::uint8_t> packed,
                                       int bits, std::size_t count) {
  ADAQP_CHECK(bits == 2 || bits == 4 || bits == 8);
  ADAQP_CHECK_MSG(packed.size() >= (count * bits + 7) / 8,
                  "packed stream too short: " << packed.size() << " bytes for "
                                              << count << " x " << bits << "b");
  const std::uint32_t mask = (1u << bits) - 1u;
  std::vector<std::uint32_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t bit_pos = i * static_cast<std::size_t>(bits);
    out[i] = (packed[bit_pos / 8] >> (bit_pos % 8)) & mask;
  }
  return out;
}

QuantizedVector quantize(std::span<const float> values, int bits, Rng& rng) {
  ADAQP_CHECK(is_valid_bit_width(bits));
  QuantizedVector qv;
  qv.bits = bits;
  qv.dim = static_cast<std::uint32_t>(values.size());

  if (bits == 32) {
    qv.payload.resize(values.size() * sizeof(float));
    std::memcpy(qv.payload.data(), values.data(), qv.payload.size());
    return qv;
  }

  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (values.empty()) lo = hi = 0.0f;
  qv.zero_point = lo;
  const auto levels = static_cast<float>((1u << bits) - 1u);
  qv.scale = (hi - lo) / levels;

  std::vector<std::uint32_t> q(values.size(), 0);
  if (qv.scale > 0.0f) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      const float x = (values[i] - qv.zero_point) / qv.scale;
      // Stochastic rounding: up with probability frac(x).
      const float fl = std::floor(x);
      const float frac = x - fl;
      float r = fl + (rng.uniform_float() < frac ? 1.0f : 0.0f);
      r = std::clamp(r, 0.0f, levels);
      q[i] = static_cast<std::uint32_t>(r);
    }
  }
  qv.payload = pack_bits(q, bits);
  return qv;
}

void dequantize(const QuantizedVector& qv, std::span<float> out) {
  ADAQP_CHECK_MSG(out.size() == qv.dim,
                  "dequantize into " << out.size() << " floats, dim=" << qv.dim);
  if (qv.bits == 32) {
    ADAQP_CHECK_MSG(qv.payload.size() == qv.dim * sizeof(float),
                    "corrupt float payload: " << qv.payload.size() << " bytes");
    std::memcpy(out.data(), qv.payload.data(), qv.payload.size());
    return;
  }
  const auto q = unpack_bits(qv.payload, qv.bits, qv.dim);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<float>(q[i]) * qv.scale + qv.zero_point;
}

double variance_bound(const QuantizedVector& qv) {
  if (qv.bits == 32) return 0.0;
  const double s = qv.scale;
  return static_cast<double>(qv.dim) * s * s / 6.0;
}

}  // namespace adaqp
