#include "quant/quantize.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "simd/kernels.h"

// All hot loops (min/max scan, stochastic-round quantize + pack, unpack +
// dequantize, raw bit packing) dispatch through the src/simd/ kernel
// registry; the scalar table entry is the reference implementation and the
// vector variants are byte-identical by contract (see simd/kernels.h).
// RNG draws stay in this wrapper, serial and in element order, so the
// stream an encode consumes is independent of the dispatched ISA.
namespace adaqp {

bool is_valid_bit_width(int bits) {
  return bits == 2 || bits == 4 || bits == 8 || bits == 32;
}

std::size_t quantized_wire_bytes(std::size_t dim, int bits) {
  ADAQP_CHECK(is_valid_bit_width(bits));
  if (bits == 32) return dim * sizeof(float) + 2 * sizeof(float);
  return (dim * static_cast<std::size_t>(bits) + 7) / 8 + 2 * sizeof(float);
}

std::vector<std::uint8_t> pack_bits(std::span<const std::uint32_t> values,
                                    int bits) {
  ADAQP_CHECK(bits == 2 || bits == 4 || bits == 8);
  const std::uint32_t mask = (1u << bits) - 1u;
  for (std::size_t i = 0; i < values.size(); ++i)
    ADAQP_CHECK_MSG(values[i] <= mask,
                    "value " << values[i] << " exceeds " << bits << "-bit range");
  std::vector<std::uint8_t> out((values.size() * bits + 7) / 8);
  if (!values.empty())
    simd::kernels().pack_bits(bits, values.data(), values.size(), out.data());
  return out;
}

std::vector<std::uint32_t> unpack_bits(std::span<const std::uint8_t> packed,
                                       int bits, std::size_t count) {
  ADAQP_CHECK(bits == 2 || bits == 4 || bits == 8);
  ADAQP_CHECK_MSG(packed.size() >= (count * bits + 7) / 8,
                  "packed stream too short: " << packed.size() << " bytes for "
                                              << count << " x " << bits << "b");
  std::vector<std::uint32_t> out(count);
  if (count > 0)
    simd::kernels().unpack_bits(bits, packed.data(), count, out.data());
  return out;
}

namespace {

/// Uniform draws for stochastic rounding, one per element in element order
/// — exactly the draws the pre-registry scalar loop made, so RNG streams
/// are unchanged. The buffer is caller-owned (per encode stream, so
/// concurrent per-pair encodes never share it) and only grows.
std::span<const float> draw_uniforms(std::size_t n, Rng& rng,
                                     std::vector<float>& u) {
  if (u.size() < n) u.resize(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = rng.uniform_float();
  return {u.data(), n};
}

QuantMeta quantize_payload(std::span<const float> values, int bits, Rng& rng,
                           std::vector<float>& uniform_scratch,
                           std::uint8_t* payload) {
  const auto& kernel = simd::kernels();
  float lo = 0.0f, hi = 0.0f;
  if (!values.empty())
    kernel.row_minmax(values.data(), values.size(), &lo, &hi);
  // Normalize the sign of zero: which of -0.0f/+0.0f a min/max reduction
  // returns depends on lane order, and the zero point goes on the wire.
  // x + 0.0f maps -0.0f to +0.0f and leaves every other value unchanged.
  lo += 0.0f;
  hi += 0.0f;
  QuantMeta meta;
  meta.zero_point = lo;
  const auto levels = static_cast<float>((1u << bits) - 1u);
  meta.scale = (hi - lo) / levels;
  if (meta.scale > 0.0f) {
    const auto u = draw_uniforms(values.size(), rng, uniform_scratch);
    kernel.quantize_pack(bits, values.data(), values.size(), meta.zero_point,
                         meta.scale, u.data(), payload);
  }
  return meta;
}

}  // namespace

QuantizedVector quantize(std::span<const float> values, int bits, Rng& rng) {
  ADAQP_CHECK(is_valid_bit_width(bits));
  QuantizedVector qv;
  qv.bits = bits;
  qv.dim = static_cast<std::uint32_t>(values.size());

  if (bits == 32) {
    qv.payload.resize(values.size() * sizeof(float));
    std::memcpy(qv.payload.data(), values.data(), qv.payload.size());
    return qv;
  }

  qv.payload.assign((values.size() * static_cast<std::size_t>(bits) + 7) / 8,
                    0);
  std::vector<float> uniform_scratch;
  const QuantMeta meta = quantize_payload(values, bits, rng, uniform_scratch,
                                          qv.payload.data());
  qv.zero_point = meta.zero_point;
  qv.scale = meta.scale;
  return qv;
}

QuantMeta quantize_append(std::span<const float> values, int bits, Rng& rng,
                          std::vector<std::uint8_t>& out) {
  std::vector<float> uniform_scratch;
  return quantize_append(values, bits, rng, out, uniform_scratch);
}

QuantMeta quantize_append(std::span<const float> values, int bits, Rng& rng,
                          std::vector<std::uint8_t>& out,
                          std::vector<float>& uniform_scratch) {
  ADAQP_CHECK(is_valid_bit_width(bits));
  const std::size_t at = out.size();
  if (bits == 32) {
    out.resize(at + values.size() * sizeof(float));
    std::memcpy(out.data() + at, values.data(), values.size() * sizeof(float));
    return {};
  }
  out.resize(at + (values.size() * static_cast<std::size_t>(bits) + 7) / 8,
             0);
  return quantize_payload(values, bits, rng, uniform_scratch,
                          out.data() + at);
}

void dequantize_payload(const std::uint8_t* payload, int bits,
                        std::size_t dim, float zero_point, float scale,
                        std::span<float> out) {
  ADAQP_CHECK_MSG(out.size() == dim,
                  "dequantize into " << out.size() << " floats, dim=" << dim);
  if (bits == 32) {
    std::memcpy(out.data(), payload, dim * sizeof(float));
    return;
  }
  if (dim > 0)
    simd::kernels().unpack_dequant(bits, payload, dim, scale, zero_point,
                                   out.data());
}

void dequantize(const QuantizedVector& qv, std::span<float> out) {
  ADAQP_CHECK_MSG(out.size() == qv.dim,
                  "dequantize into " << out.size() << " floats, dim=" << qv.dim);
  if (qv.bits == 32) {
    ADAQP_CHECK_MSG(qv.payload.size() == qv.dim * sizeof(float),
                    "corrupt float payload: " << qv.payload.size() << " bytes");
  } else {
    ADAQP_CHECK_MSG(qv.payload.size() >=
                        (qv.dim * static_cast<std::size_t>(qv.bits) + 7) / 8,
                    "packed stream too short: " << qv.payload.size()
                                                << " bytes for " << qv.dim
                                                << " x " << qv.bits << "b");
  }
  dequantize_payload(qv.payload.data(), qv.bits, qv.dim, qv.zero_point,
                     qv.scale, out);
}

double variance_bound(const QuantizedVector& qv) {
  if (qv.bits == 32) return 0.0;
  const double s = qv.scale;
  return static_cast<double>(qv.dim) * s * s / 6.0;
}

}  // namespace adaqp
