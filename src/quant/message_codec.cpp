// lint:hot-path-file — steady-state epochs run through this TU; every
// allocation below must be warmup/build-time only (docs/ARCHITECTURE.md,
// "Memory subsystem").
#include "quant/message_codec.h"

#include <cstring>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "quant/quantize.h"

namespace adaqp {

namespace {

constexpr std::uint32_t kMagic = 0xADA9B10Cu;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);  // lint:allow(hot-path-alloc) pooled buffer, capacity retained
  std::memcpy(out.data() + at, &v, 4);
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t& pos) {
  ADAQP_CHECK_MSG(pos + 4 <= bytes.size(), "codec: truncated u32 at " << pos);
  std::uint32_t v;
  std::memcpy(&v, bytes.data() + pos, 4);
  pos += 4;
  return v;
}

float get_f32(std::span<const std::uint8_t> bytes, std::size_t& pos) {
  ADAQP_CHECK_MSG(pos + 4 <= bytes.size(), "codec: truncated f32 at " << pos);
  float v;
  std::memcpy(&v, bytes.data() + pos, 4);
  pos += 4;
  return v;
}

}  // namespace

EncodedBlock encode_rows(const Matrix& src, std::span<const NodeId> rows,
                         std::span<const int> bits, Rng& rng) {
  EncodedBlock block;
  std::vector<float> uniform_scratch;
  encode_rows_into(src, rows, bits, rng, uniform_scratch, block);
  return block;
}

void encode_rows_into(const Matrix& src, std::span<const NodeId> rows,
                      std::span<const int> bits, Rng& rng,
                      std::vector<float>& uniform_scratch, EncodedBlock& out) {
  ADAQP_CHECK_MSG(rows.size() == bits.size(),
                  "rows/bits arity mismatch: " << rows.size() << " vs "
                                               << bits.size());
  const obs::Stopwatch sw;  // per-block, not per-row: two clock reads total
  out.bytes.clear();  // keeps capacity — steady-state encodes don't allocate
  out.bytes.reserve(encoded_wire_bytes(rows.size(), src.cols(), bits));  // lint:allow(hot-path-alloc) warmup sizing; no-op when warm
  put_u32(out.bytes, kMagic);
  put_u32(out.bytes, static_cast<std::uint32_t>(rows.size()));
  put_u32(out.bytes, static_cast<std::uint32_t>(src.cols()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ADAQP_CHECK_MSG(rows[i] < src.rows(),
                    "row " << rows[i] << " out of range " << src.rows());
    out.bytes.push_back(static_cast<std::uint8_t>(bits[i]));  // lint:allow(hot-path-alloc) pooled buffer, capacity retained
    // Reserve the (zero-point, scale) slots, quantize+pack straight into
    // the block (no QuantizedVector temporary), then backfill the metadata.
    const std::size_t meta_at = out.bytes.size();
    out.bytes.resize(meta_at + 2 * sizeof(float));  // lint:allow(hot-path-alloc) pooled buffer, capacity retained
    const QuantMeta meta = quantize_append(src.row(rows[i]), bits[i], rng,
                                           out.bytes, uniform_scratch);
    std::memcpy(out.bytes.data() + meta_at, &meta.zero_point, sizeof(float));
    std::memcpy(out.bytes.data() + meta_at + sizeof(float), &meta.scale,
                sizeof(float));
  }
  const obs::Instruments& ins = obs::instruments();
  ins.codec_encode_calls.add(1);
  ins.codec_encode_bytes.add(out.bytes.size());
  ins.codec_encode_ns.add(static_cast<std::uint64_t>(sw.elapsed_us() * 1e3));
}

void decode_rows(const EncodedBlock& block, Matrix& dst,
                 std::span<const NodeId> dst_rows) {
  decode_rows(std::span<const std::uint8_t>(block.bytes), dst, dst_rows);
}

void decode_rows(std::span<const std::uint8_t> bytes, Matrix& dst,
                 std::span<const NodeId> dst_rows) {
  const obs::Stopwatch sw;
  std::size_t pos = 0;
  ADAQP_CHECK_MSG(get_u32(bytes, pos) == kMagic, "codec: bad magic");
  const std::uint32_t count = get_u32(bytes, pos);
  const std::uint32_t dim = get_u32(bytes, pos);
  ADAQP_CHECK_MSG(count == dst_rows.size(),
                  "codec: block has " << count << " rows, expected "
                                      << dst_rows.size());
  ADAQP_CHECK_MSG(dim == dst.cols(),
                  "codec: dim " << dim << " != dst cols " << dst.cols());
  for (std::size_t i = 0; i < count; ++i) {
    ADAQP_CHECK_MSG(pos < bytes.size(), "codec: truncated header for row " << i);
    const int row_bits = bytes[pos++];
    ADAQP_CHECK_MSG(is_valid_bit_width(row_bits),
                    "codec: invalid bit-width tag " << row_bits);
    const float zero_point = get_f32(bytes, pos);
    const float scale = get_f32(bytes, pos);
    const std::size_t payload =
        row_bits == 32 ? dim * sizeof(float)
                       : (static_cast<std::size_t>(dim) * row_bits + 7) / 8;
    ADAQP_CHECK_MSG(pos + payload <= bytes.size(),
                    "codec: truncated payload for row " << i);
    ADAQP_CHECK_MSG(dst_rows[i] < dst.rows(),
                    "codec: dst row " << dst_rows[i] << " out of range");
    // Unpack + dequantize straight from the wire bytes into the
    // destination row — no payload copy, vector kernel under the hood.
    dequantize_payload(bytes.data() + pos, row_bits, dim, zero_point, scale,
                       dst.row(dst_rows[i]));
    pos += payload;
  }
  ADAQP_CHECK_MSG(pos == bytes.size(),
                  "codec: " << bytes.size() - pos << " trailing bytes");
  const obs::Instruments& ins = obs::instruments();
  ins.codec_decode_calls.add(1);
  ins.codec_decode_bytes.add(bytes.size());
  ins.codec_decode_ns.add(static_cast<std::uint64_t>(sw.elapsed_us() * 1e3));
}

std::size_t encoded_wire_bytes(std::size_t num_rows, std::size_t dim,
                               std::span<const int> bits) {
  ADAQP_CHECK(bits.size() == num_rows);
  std::size_t total = 12;  // magic + count + dim
  for (int b : bits) total += 1 + quantized_wire_bytes(dim, b);
  return total;
}

}  // namespace adaqp
