// Compute-time model for simulated devices.
//
// Converts the FLOP counts of a GNN layer's forward/backward work on a set
// of owned rows into seconds under the ClusterSpec's device throughput.
// Used both by the trainers (epoch composition) and directly by the benches
// reproducing Table 2 / Fig. 3 (central-vs-marginal computation headroom).
//
// These are *model* seconds: deterministic functions of graph shape and the
// cluster spec, independent of the host machine. Measured wall-clock time
// uses obs::Stopwatch (obs/stopwatch.h) everywhere instead; the metrics run
// report (docs/OBSERVABILITY.md) carries both side by side (sim.* vs wall.*).
#pragma once

#include <span>

#include "comm/cluster.h"
#include "dist/dist_graph.h"
#include "gnn/aggregate.h"

namespace adaqp {

/// Forward compute seconds for one layer restricted to `rows`:
/// aggregation over incident edges + dense transform + row-wise epilogue.
double layer_forward_seconds(const ClusterSpec& cluster, const DeviceGraph& dev,
                             std::span<const NodeId> rows, std::size_t in_dim,
                             std::size_t out_dim);

/// Backward compute seconds: dW and dX GEMMs (2x dense), adjoint
/// aggregation, and epilogue derivative work.
double layer_backward_seconds(const ClusterSpec& cluster,
                              const DeviceGraph& dev,
                              std::span<const NodeId> rows, std::size_t in_dim,
                              std::size_t out_dim);

}  // namespace adaqp
