// Distributed full-graph GNN trainers.
//
// One DistTrainer drives an entire training run of one method over the
// simulated cluster. Numerics are bit-exact (every message passes through
// the real quantization codec); time is accounted by the ClusterSpec cost
// model. Methods:
//
//   kVanilla      — synchronous full-precision messages, no overlap
//                   (paper's "Vanilla" baseline).
//   kAdaQP        — adaptive stochastic quantization (bi-objective bit-width
//                   assignment, re-solved periodically) + central/marginal
//                   computation-communication parallelization. The paper's
//                   contribution.
//   kAdaQPUniform — AdaQP with uniformly-random bit sampling from {2,4,8}
//                   (Table 6 ablation).
//   kPipeGCN      — cross-iteration pipelining with epoch-stale boundary
//                   embeddings and gradients, communication hidden inside
//                   computation (PipeGCN-like baseline).
//   kSancus       — staleness-aware broadcast skipping with sequential
//                   (non-ring) broadcast cost and dropped remote gradients
//                   on skipped epochs (SANCUS-like baseline).
//
// Execution: every per-device compute stage (layer forward/backward, loss,
// evaluation) runs as one task per simulated device on the runtime thread
// pool (src/runtime/), and shared parameter gradients are reduced in
// ascending device order — so a run is bit-identical at any ADAQP_THREADS
// setting (tests/test_runtime.cpp enforces this).
//
// With ADAQP_ASYNC=1 (the default) the AdaQP / AdaQP-Uniform layers run
// through the pipeline stage scheduler (src/pipeline/) in both directions.
// Forward: the marginal-row encode/wire/decode stages execute concurrently
// with the central-subgraph forward, joining before marginal compute — the
// *real* execution of the overlap the cost model's max(comm, central)
// arithmetic predicts. Backward (full duplex): each layer's backward is
// decomposed into row-subset adjoints — the marginal-row adjoint produces
// the halo gradient rows, whose encode/wire stages then run concurrently
// with the central-row adjoint and the shared parameter-gradient fold;
// owner-side accumulation waits for the owner's central stage (both add
// into boundary rows). PipeGCN's deferred exchanges are the same stages
// kept in flight *across iteration boundaries*: a layer's stale halo
// send/recv overlaps the rest of the epoch (later layers, backward, Adam,
// evaluation) and the next epoch's earlier layers, and is joined lazily
// just before its buffers are reread or rewritten. ADAQP_ASYNC=0 keeps the
// phased execution; both modes (and any thread count, and any ADAQP_ISA)
// are bit-identical, enforced by tests/test_pipeline.cpp. Setting
// ADAQP_TRACE to a path makes run() record a Chrome trace of the stages.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assign/bit_assigner.h"
#include "comm/cluster.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "dist/dist_graph.h"
#include "dist/halo_exchange.h"
#include "gnn/adam.h"
#include "gnn/model.h"
#include "memory/workspace.h"
#include "obs/run_report.h"
#include "pipeline/async_exchange.h"
#include "runtime/parallel_for.h"

namespace adaqp {

enum class Method { kVanilla, kAdaQP, kAdaQPUniform, kPipeGCN, kSancus };

std::string method_name(Method method);

struct TrainOptions {
  Method method = Method::kAdaQP;
  int epochs = 100;
  Adam::Options adam;              ///< lr defaults to the paper's 0.01
  AssignerOptions assigner;        ///< group size, λ
  int reassign_period = 50;        ///< epochs between bit-width re-solves
  double sancus_drift_threshold = 0.30;
  int sancus_max_staleness = 12;
  std::uint64_t seed = 1;
  bool eval_every_epoch = true;
  bool verbose = false;
};

/// Per-epoch simulated time decomposition (paper Fig. 10a).
struct EpochBreakdown {
  double comm = 0.0;    ///< halo-exchange straggler time (fwd + bwd)
  double comp = 0.0;    ///< computation on the critical path (AdaQP: marginal
                        ///< graph only — central comp hides in comm)
  double quant = 0.0;   ///< quantize + de-quantize kernel time
  double total = 0.0;   ///< composed epoch duration with overlap applied

  void accumulate(const EpochBreakdown& other);
};

struct EpochRecord {
  int epoch = 0;
  double train_loss = 0.0;
  double val_acc = 0.0;
  double test_acc = 0.0;
  EpochBreakdown time;
};

/// Heap-allocation counts of the last train_epoch(), by phase (global
/// operator-new calls observed by memory::alloc_track). `steady_state`
/// records whether the epoch qualified for the zero-allocation contract
/// (see memory::steady_state_definition()); under ADAQP_ALLOC_TRACK=1,
/// train_epoch() throws if a qualifying epoch allocated at all.
struct EpochAllocReport {
  std::uint64_t forward = 0;
  std::uint64_t backward = 0;
  std::uint64_t optimizer = 0;   ///< gradient allreduce accounting + Adam
  std::uint64_t refresh = 0;     ///< bit-width plan re-assignment
  std::uint64_t evaluation = 0;
  bool steady_state = false;

  std::uint64_t total() const {
    return forward + backward + optimizer + refresh + evaluation;
  }
};

struct RunResult {
  std::string method;
  std::string model;
  std::string dataset;
  std::string partition_setting;
  std::vector<EpochRecord> epochs;

  double train_seconds = 0.0;    ///< Σ simulated epoch durations
  double assign_seconds = 0.0;   ///< bit-width assignment overhead
  double wall_clock_seconds = 0.0;  ///< train + assign (paper Table 5/9)
  double final_val_acc = 0.0;
  double final_test_acc = 0.0;
  double best_val_acc = 0.0;
  double avg_epoch_seconds = 0.0;
  double throughput = 0.0;       ///< epochs per simulated second (Table 4)
  EpochBreakdown avg_breakdown;
  std::size_t total_comm_bytes = 0;
};

class DistTrainer {
 public:
  DistTrainer(const Dataset& dataset, const DistGraph& dist,
              const ClusterSpec& cluster, const ModelConfig& model_config,
              const TrainOptions& opts);

  /// Train for opts.epochs epochs; returns the full run record.
  RunResult run();

  /// Run a single epoch (exposed for fine-grained benches); returns its
  /// record. Evaluation is performed iff opts.eval_every_epoch.
  EpochRecord train_epoch();

  /// Full-precision evaluation of the current model; returns
  /// (val metric, test metric). Does not advance simulated time.
  std::pair<double, double> evaluate();

  GnnModel& model() { return model_; }
  const DistGraph& dist() const { return dist_; }
  int current_epoch() const { return epoch_; }
  double assign_seconds() const { return assign_seconds_; }
  std::size_t total_comm_bytes() const { return total_comm_bytes_; }

  /// Per-pair wire bytes of the most recent layer-1 forward exchange
  /// (paper Fig. 2 reproduces this matrix).
  const std::vector<std::vector<std::size_t>>& last_layer1_pair_bytes() const {
    return last_layer1_pair_bytes_;
  }

  /// Per-phase heap-allocation counts of the most recent train_epoch().
  const EpochAllocReport& last_alloc_report() const { return alloc_report_; }

  /// Measured wall seconds of the most recent train_epoch(), stamped at the
  /// same phase boundaries as the allocation report — the counterpart to
  /// EpochRecord::time's *modeled* seconds (core/timing.h).
  const obs::PhaseWall& last_wall_report() const { return last_wall_; }

  /// The trainer's scratch-memory subsystem (exposed for tests/benches).
  const memory::Workspace& workspace() const { return ws_; }

  /// The metrics capture of the current/most recent run() (exposed for
  /// tests). Disabled unless ADAQP_METRICS (or an obs::MetricsGuard) was
  /// active when run() started.
  const obs::RunCapture& run_capture() const { return capture_; }

 private:
  void refresh_plans();
  EpochBreakdown forward_pass(bool training, double* loss_out);
  EpochBreakdown backward_pass();

  /// Run fn(d) for every device as one task group on the runtime pool.
  /// Templated so per-epoch calls build no std::function (part of the
  /// zero-allocation steady-state contract, docs/ARCHITECTURE.md).
  template <typename Fn>
  void run_device_tasks(const Fn& fn) const {
    parallel_for_each(static_cast<std::size_t>(num_devices_),
                      [&fn](std::size_t d) { fn(static_cast<int>(d)); });
  }

  /// Persistent per-layer synchronous exchanges (Vanilla, PipeGCN cold
  /// start, the phased ADAQP_ASYNC=0 forward): one multi-shot AsyncExchange
  /// each, built on first use, submit+wait per call thereafter.
  pipeline::AsyncExchange& sync_forward_exchange(int l);
  pipeline::AsyncExchange& sync_backward_exchange(int l);

  // Per-method forward halo handling for layer input index `l` (the input
  // matrices acts_[l]); returns stage time contributions.
  EpochBreakdown forward_exchange(int l);
  EpochBreakdown backward_exchange(int l, std::vector<Matrix>& grads);

  /// AdaQP / AdaQP-Uniform layer execution: exchange + forward compute of
  /// layer l as one pipeline stage graph (async mode overlaps the per-pair
  /// encode/wire/decode with central-row compute; sync mode runs the phased
  /// reference schedule). Bit-identical either way.
  EpochBreakdown adaqp_forward_layer(int l, bool training);

  /// Full-duplex backward of layer l (AdaQP / AdaQP-Uniform, l > 0): one
  /// stage graph running, per device, the marginal-row adjoint (the sole
  /// writer of halo gradient rows), then — concurrently with the per-pair
  /// halo-gradient encode/wire stages — the central-row adjoint and the
  /// shared parameter-gradient fold. Owner-side accumulate stages wait for
  /// the owner's central stage (both add into boundary rows) and the
  /// assigner's range-trace stage. Per-(device, subset) weight-gradient
  /// partials are folded in ascending device order, marginal before central.
  /// Writes grad_x (resized); bit-identical across async/sync, thread
  /// counts and ISAs.
  EpochBreakdown adaqp_backward_layer(int l, std::vector<Matrix>& grads,
                                      std::vector<Matrix>& grad_x);

  /// Join the in-flight PipeGCN deferred exchange of layer input l (no-op
  /// when none is pending); returns its modeled comm seconds and accounts
  /// its wire bytes. Called lazily, right before the exchanged buffers are
  /// reread or rewritten — one epoch after the submit.
  double join_pipegcn_forward(int l);
  double join_pipegcn_backward(int l);

  /// Fold the halo-exchange stats just produced into the current epoch's
  /// metrics row (messages, wire bytes split by bit-width, per-pair
  /// volumes). No-op unless run() enabled capture. Purely observational:
  /// writes pre-allocated capture storage only.
  void capture_exchange_stats(const ExchangeStats& stats);
  /// Same for the SANCUS serial broadcast loops, which bypass
  /// AsyncExchange: every non-empty pair is one full-precision message of
  /// pair_bytes[d][p] wire bytes (12-byte block header excluded from the
  /// by-width attribution, like the AsyncExchange accounting).
  void capture_sancus_pairs(
      const std::vector<std::vector<std::size_t>>& pair_bytes);
  /// Accumulate realized overlap between the fused AdaQP graph's exchange
  /// stages and its central-compute stages (stage timestamps, no tracing)
  /// into the current epoch row. Direction picks fwd_overlap/bwd_overlap.
  void capture_overlap(const pipeline::StageGraph& graph,
                       const std::vector<int>& exchange_ids,
                       const std::vector<int>& compute_ids, bool forward);
  /// Feed one executed fused layer graph into the critical-path profiler
  /// (obs/profile.h): every stage's name, timestamps and declared deps go
  /// into the pre-sized DAG scratch, the exchange split model comes from
  /// stats_scratch_, and the solved SegmentProfile lands in the profile
  /// rows of the current epoch. With ADAQP_TRACE active it also emits
  /// Chrome-trace flow arrows along the segment's critical path. No-op
  /// unless run() armed the profiler. Purely observational.
  void capture_profile_segment(const pipeline::StageGraph& graph, int layer,
                               bool forward);
  /// Submit layer l's deferred forward exchange (stale boundary rows of
  /// acts_[l]); it stays in flight across the iteration boundary.
  void submit_pipegcn_forward(int l);

  double compute_seconds(int layer, bool backward, bool central_only,
                         int device) const;
  double max_compute_seconds(int layer, bool backward, bool central_only) const;
  double marginal_compute_seconds_max(int layer, bool backward) const;

  const Dataset& dataset_;
  const DistGraph& dist_;
  ClusterSpec cluster_;
  TrainOptions opts_;

  Rng master_rng_;
  std::vector<Rng> device_rngs_;
  GnnModel model_;
  Adam adam_;

  int num_devices_ = 0;
  int num_layers_ = 0;

  // Per-device static data.
  std::vector<Matrix> features_;                 ///< local features (with halo)
  std::vector<std::vector<std::uint32_t>> train_rows_;   ///< local owned ids
  std::vector<std::vector<std::int32_t>> train_labels_;
  std::vector<Matrix> train_targets_;            ///< multi-label targets
  double global_train_count_ = 0.0;

  // Activations: acts_[l][dev] is the input to layer l (l=0: features);
  // acts_[L][dev] holds the logits.
  std::vector<std::vector<Matrix>> acts_;
  std::vector<std::vector<LayerCache>> caches_;  ///< [layer][device]

  // Exchange plans per layer (forward) and per layer (backward).
  std::vector<ExchangePlan> fwd_plans_;
  std::vector<ExchangePlan> bwd_plans_;

  // Traced row ranges (forward: per layer input; backward: per layer grad).
  std::vector<std::vector<std::vector<float>>> fwd_ranges_;  ///< [layer][dev]
  std::vector<std::vector<std::vector<float>>> bwd_ranges_;

  // PipeGCN state. The deferred exchanges are cross-iteration pipeline
  // stages: submitted after a layer's compute (forward) or at its backward
  // exchange point, joined lazily one epoch later. They capture the shared
  // fwd_plans_/bwd_plans_ entries, which stay the constructor's uniform
  // 32-bit plans for this method (refresh_plans is AdaQP-only), so the
  // referenced plan is stable while an exchange is in flight. Backward staging uses
  // persistent per-layer scratch matrices (halo rows: this epoch's outbound
  // contributions; owned rows: the arrivals accumulated by the in-flight
  // exchange, harvested at join).
  bool pipegcn_warm_ = false;
  std::vector<std::vector<Matrix>> pipegcn_bwd_scratch_;  ///< [layer][device]
  /// Comm seconds of joined forward exchanges, stashed per slot until the
  /// slot's own layer consumes them (joins can happen one layer early).
  std::vector<double> pipegcn_joined_comm_;

  // SANCUS state: snapshot of owned rows at last broadcast per layer input.
  std::vector<std::vector<Matrix>> sancus_last_bcast_;  ///< [layer][device]
  std::vector<std::vector<int>> sancus_staleness_;      ///< [layer][device]
  std::vector<std::vector<bool>> sancus_bcast_now_;     ///< [layer][device]

  int epoch_ = 0;
  bool async_pipeline_ = true;  ///< resolved from ADAQP_ASYNC at construction
  double assign_seconds_ = 0.0;
  std::size_t total_comm_bytes_ = 0;
  std::vector<std::vector<std::size_t>> last_layer1_pair_bytes_;

  // ---- Memory subsystem (zero-allocation steady state) --------------------
  // The Workspace owns every pooled scratch buffer below; it is declared
  // before anything that borrows from it so the borrowers' pointers die
  // first. All pool keys are resolved on the main thread — at construction
  // or during the warmup epoch — so steady-state epochs perform no pool
  // inserts (rule 4 of the workspace ownership rules).
  memory::Workspace ws_;

  std::vector<Param*> params_;   ///< cached model_.params() (stable set)
  std::size_t grad_bytes_ = 0;   ///< cached model_.grad_bytes()
  ExchangeStats stats_scratch_;  ///< reusable stats sink (main thread only)
  EncodedBlock wire_block_;      ///< SANCUS serial wire staging
  std::vector<float> wire_uniforms_;
  EpochAllocReport alloc_report_;
  obs::PhaseWall last_wall_;     ///< measured seconds of the last epoch

  // ---- Observability capture (src/obs/, docs/OBSERVABILITY.md) ------------
  // run() sizes capture_ (epochs x devices) and reserves the interval
  // scratch before the first epoch when ADAQP_METRICS enables a report;
  // every per-epoch write below then lands in pre-allocated storage, so
  // capture runs through steady-state epochs without allocating. The stage
  // ids are recorded once, at fused-graph build time (warmup epoch): the
  // graphs are persistent, so the ids stay valid for the whole run.
  obs::RunCapture capture_;
  std::vector<std::vector<int>> fused_fwd_exchange_ids_;  ///< [layer]
  std::vector<std::vector<int>> fused_fwd_compute_ids_;
  std::vector<std::vector<int>> fused_bwd_exchange_ids_;
  std::vector<std::vector<int>> fused_bwd_compute_ids_;
  std::vector<obs::Interval> iv_exchange_;  ///< overlap scratch (reserved)
  std::vector<obs::Interval> iv_compute_;

  // Loss scratch, resolved from ws_ at construction (the pool is not
  // thread-safe; device tasks only use the buffers they were handed).
  std::vector<Matrix*> loss_sink_;                ///< per device
  std::vector<std::vector<double>*> loss_prob_;   ///< per device

  // Backward activation-gradient ping-pong. The parity of the buffer that
  // holds layer l's incoming gradient is fixed ((num_layers-1-l) & 1), so
  // the persistent backward stage graphs can capture these by reference.
  std::vector<std::vector<Matrix>> grad_flow_;    ///< [parity][device]

  // Persistent per-(layer, device) backward sinks and temporaries of the
  // phased (non-fused) backward path.
  std::vector<std::vector<LayerGrads>> bwd_sinks_;
  std::vector<std::vector<LayerBackwardScratch>> bwd_scratch_;

  // SANCUS pooled scratch (pointers into ws_), pre-warmed at construction
  // so no key is first touched — and no capacity first grown — in a
  // steady-state epoch.
  std::vector<std::vector<Matrix*>> sancus_snapshot_;   ///< [layer][device]
  std::vector<std::vector<Matrix*>> sancus_diff_;       ///< [layer][device]
  std::vector<std::vector<std::vector<int>*>> sancus_bits_;
  Matrix* sancus_tmp_ = nullptr;                ///< backward decode staging
  std::vector<NodeId>* sancus_seq_ = nullptr;   ///< identity row list
  std::vector<std::vector<std::size_t>> sancus_pair_bytes_;
  // SANCUS wire identity: per-(layer, direction) transport channels claimed
  // at construction plus their round counters (one round per broadcast
  // sweep), forming the FrameTags of the serial broadcast path.
  std::vector<std::uint32_t> sancus_fwd_chan_;
  std::vector<std::uint32_t> sancus_bwd_chan_;
  std::vector<std::uint32_t> sancus_fwd_round_;
  std::vector<std::uint32_t> sancus_bwd_round_;

  // Persistent synchronous exchanges, one per layer, built on first use.
  std::vector<std::unique_ptr<pipeline::AsyncExchange>> sync_fwd_ex_;
  std::vector<std::unique_ptr<pipeline::AsyncExchange>> sync_bwd_ex_;

  // Persistent AdaQP fused stage graphs — built once during warmup,
  // reset() + re-run every later epoch — and the per-layer accounting,
  // sinks and temporaries their stages reference.
  std::vector<std::unique_ptr<pipeline::StageGraph>> adaqp_fwd_graph_;
  std::vector<pipeline::ExchangeAccounting> adaqp_fwd_acct_;
  std::vector<std::unique_ptr<pipeline::StageGraph>> adaqp_bwd_graph_;
  std::vector<pipeline::ExchangeAccounting> adaqp_bwd_acct_;
  std::vector<std::vector<LayerGrads>> adaqp_marginal_sinks_;
  std::vector<std::vector<LayerGrads>> adaqp_central_sinks_;
  std::vector<std::vector<LayerBackwardScratch>> adaqp_bwd_scratch_;
  std::vector<const void*> adaqp_bwd_bound_;  ///< grads vector bound at build

  // In-flight PipeGCN deferred exchanges, one slot per layer input; the
  // objects are persistent (multi-shot), the flags say whether a round is
  // in flight. Declared last so they are destroyed (and therefore joined)
  // before the activation / scratch / plan members their stages reference.
  std::vector<std::unique_ptr<pipeline::AsyncExchange>> pipegcn_fwd_inflight_;
  std::vector<std::unique_ptr<pipeline::AsyncExchange>> pipegcn_bwd_inflight_;
  std::vector<char> pipegcn_fwd_active_;
  std::vector<char> pipegcn_bwd_active_;
};

/// Convenience wrapper: partition + build + train one (dataset, model,
/// method) configuration and return the result.
RunResult run_training(const Dataset& dataset, const ClusterSpec& cluster,
                       Aggregator aggregator, const TrainOptions& opts,
                       std::size_t hidden_dim = 64,
                       const std::string& partitioner = "multilevel");

}  // namespace adaqp
