#include "core/timing.h"

namespace adaqp {

double layer_forward_seconds(const ClusterSpec& cluster, const DeviceGraph& dev,
                             std::span<const NodeId> rows, std::size_t in_dim,
                             std::size_t out_dim) {
  const double flops = aggregate_flops(dev, rows, in_dim) +
                       dense_flops(rows.size(), in_dim, out_dim) +
                       epilogue_flops(rows.size(), out_dim);
  return cluster.compute_seconds(flops);
}

double layer_backward_seconds(const ClusterSpec& cluster,
                              const DeviceGraph& dev,
                              std::span<const NodeId> rows, std::size_t in_dim,
                              std::size_t out_dim) {
  const double flops = 2.0 * dense_flops(rows.size(), in_dim, out_dim) +
                       aggregate_flops(dev, rows, in_dim) +
                       2.0 * epilogue_flops(rows.size(), out_dim);
  return cluster.compute_seconds(flops);
}

}  // namespace adaqp
