#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "analysis/race_checker.h"
#include "common/check.h"
#include "common/env.h"
#include "core/timing.h"
#include "gnn/loss.h"
#include "memory/alloc_track.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "pipeline/async_exchange.h"
#include "pipeline/config.h"
#include "pipeline/stage_graph.h"
#include "pipeline/trace.h"
#include "quant/message_codec.h"
#include "runtime/thread_pool.h"
#include "transport/transport.h"

namespace adaqp {

std::string method_name(Method method) {
  switch (method) {
    case Method::kVanilla: return "Vanilla";
    case Method::kAdaQP: return "AdaQP";
    case Method::kAdaQPUniform: return "AdaQP-Uniform";
    case Method::kPipeGCN: return "PipeGCN-like";
    case Method::kSancus: return "SANCUS-like";
  }
  return "?";
}

void EpochBreakdown::accumulate(const EpochBreakdown& other) {
  comm += other.comm;
  comp += other.comp;
  quant += other.quant;
  total += other.total;
}

namespace {

/// Ring allreduce time for `bytes` of model gradients (numerics are already
/// exact because devices share one weight/grad store).
double allreduce_seconds(const ClusterSpec& cluster, std::size_t bytes) {
  const int n = cluster.num_devices();
  if (n <= 1) return 0.0;
  double worst_theta = 0.0, worst_gamma = 0.0;
  for (int d = 0; d < n; ++d) {
    const LinkParams l = cluster.link(d, (d + 1) % n);
    worst_theta = std::max(worst_theta, l.theta);
    worst_gamma = std::max(worst_gamma, l.gamma);
  }
  const double chunk = static_cast<double>(bytes) / n;
  return 2.0 * (n - 1) * (worst_theta * chunk + worst_gamma);
}

/// Scheduling flag for the persistent synchronous exchanges — the same
/// policy the one-shot exchange_halo_forward/backward wrappers use: run the
/// per-pair stages on the pool when it can actually help. Numerics are
/// identical either way (the determinism contract).
bool exchange_parallel_ok() {
  return !ThreadPool::in_worker() && num_threads() > 1;
}

/// Copy `src` into `dst` reusing dst's capacity (Matrix copy-assignment
/// would too, but this keeps the reshape explicit).
void copy_matrix_into(const Matrix& src, Matrix& dst) {
  dst.reshape_uninit(src.rows(), src.cols());
  std::copy(src.data(), src.data() + src.size(), dst.data());
}

// ---- Race-checker annotations (ADAQP_RACECHECK) ---------------------------
//
// The compute stages of the fused forward/backward graphs declare their row
// intervals so the checker can prove the central/marginal split and the
// exchange stages never touch the same bytes unordered. Lists are built only
// when the checker is enabled.

using analysis::AccessList;
using analysis::BufferAccess;

constexpr auto kRcRead = BufferAccess::Mode::kRead;
constexpr auto kRcWrite = BufferAccess::Mode::kWrite;

void rc_rows(AccessList& out, const Matrix& m, std::span<const NodeId> rows,
             BufferAccess::Mode mode, const std::string& label) {
  analysis::append_row_set(out, m.data(), m.cols() * sizeof(float),
                           rows.data(), rows.size(), mode, label);
}

BufferAccess rc_row_range(const Matrix& m, std::size_t row_begin,
                          std::size_t row_end, BufferAccess::Mode mode,
                          std::string label) {
  return analysis::row_range(m.data(), m.cols() * sizeof(float), row_begin,
                             row_end, mode, std::move(label));
}

}  // namespace

DistTrainer::DistTrainer(const Dataset& dataset, const DistGraph& dist,
                         const ClusterSpec& cluster,
                         const ModelConfig& model_config,
                         const TrainOptions& opts)
    : dataset_(dataset),
      dist_(dist),
      cluster_(cluster),
      opts_(opts),
      master_rng_(opts.seed),
      model_(model_config, master_rng_),
      adam_(opts.adam) {
  num_devices_ = dist_.num_devices();
  num_layers_ = model_.num_layers();
  async_pipeline_ = pipeline::async_enabled();
  ADAQP_CHECK(cluster_.num_devices() == num_devices_);
  ADAQP_CHECK(model_config.in_dim == dataset.spec.feature_dim);

  for (int d = 0; d < num_devices_; ++d)
    device_rngs_.push_back(master_rng_.split());

  features_ = scatter_to_devices(dataset_.features, dist_);

  // Per-device training rows, labels and targets.
  std::vector<std::uint8_t> is_train(dataset_.num_nodes(), 0);
  for (auto v : dataset_.train_nodes) is_train[v] = 1;
  global_train_count_ = static_cast<double>(dataset_.train_nodes.size());
  train_rows_.resize(num_devices_);
  train_labels_.resize(num_devices_);
  train_targets_.resize(num_devices_);
  for (int d = 0; d < num_devices_; ++d) {
    const DeviceGraph& dev = dist_.devices[d];
    std::vector<std::uint32_t>& rows = train_rows_[d];
    for (std::size_t i = 0; i < dev.num_owned; ++i) {
      const NodeId g = dev.global_of_local[i];
      if (!is_train[g]) continue;
      rows.push_back(static_cast<std::uint32_t>(i));
      train_labels_[d].push_back(dataset_.labels[g]);
    }
    if (dataset_.spec.multi_label) {
      Matrix targets(rows.size(), dataset_.num_classes());
      std::size_t at = 0;
      for (std::size_t i = 0; i < dev.num_owned; ++i) {
        const NodeId g = dev.global_of_local[i];
        if (!is_train[g]) continue;
        const auto src = dataset_.label_matrix.row(g);
        std::copy(src.begin(), src.end(), targets.row(at++).begin());
      }
      train_targets_[d] = std::move(targets);
    }
  }

  // Activation buffers and caches.
  acts_.resize(num_layers_ + 1);
  caches_.resize(num_layers_);
  acts_[0] = features_;
  for (int l = 1; l <= num_layers_; ++l) {
    const std::size_t dim = model_.layer_out_dim(l - 1);
    acts_[l].reserve(num_devices_);
    for (int d = 0; d < num_devices_; ++d)
      acts_[l].emplace_back(dist_.devices[d].num_local(), dim);
  }
  for (int l = 0; l < num_layers_; ++l) caches_[l].resize(num_devices_);

  // Plans: everything starts full-precision; quantizing methods refresh
  // after the first traced epoch.
  fwd_plans_.resize(num_layers_);
  bwd_plans_.resize(num_layers_);
  for (int l = 0; l < num_layers_; ++l) {
    fwd_plans_[l] = ExchangePlan::uniform_forward(dist_, 32);
    bwd_plans_[l] = ExchangePlan::uniform_backward(dist_, 32);
  }
  fwd_ranges_.resize(num_layers_);
  bwd_ranges_.resize(num_layers_);

  if (opts_.method == Method::kPipeGCN) {
    pipegcn_fwd_inflight_.resize(num_layers_);
    pipegcn_bwd_inflight_.resize(num_layers_);
    pipegcn_fwd_active_.assign(num_layers_, 0);
    pipegcn_bwd_active_.assign(num_layers_, 0);
    pipegcn_bwd_scratch_.resize(num_layers_);
    pipegcn_joined_comm_.assign(num_layers_, 0.0);
    for (int l = 1; l < num_layers_; ++l) {
      const std::size_t dim = model_.layer_in_dim(l);
      for (int d = 0; d < num_devices_; ++d)
        pipegcn_bwd_scratch_[l].emplace_back(dist_.devices[d].num_local(),
                                             dim);
    }
    // Build every deferred exchange now (graph + warmed staging, no RNG
    // draws, nothing launched): the forward slots' first submit happens in
    // epoch 1 — already steady state — and must not allocate.
    for (int l = 0; l < num_layers_; ++l) {
      pipegcn_fwd_inflight_[l] =
          std::make_unique<pipeline::AsyncExchange>(dist_, cluster_);
      pipegcn_fwd_inflight_[l]->prepare_forward(acts_[l], fwd_plans_[l]);
      if (l > 0) {
        pipegcn_bwd_inflight_[l] =
            std::make_unique<pipeline::AsyncExchange>(dist_, cluster_);
        pipegcn_bwd_inflight_[l]->prepare_backward(pipegcn_bwd_scratch_[l],
                                                   bwd_plans_[l]);
      }
    }
  }
  if (opts_.method == Method::kSancus) {
    sancus_last_bcast_.resize(num_layers_);
    sancus_staleness_.assign(num_layers_,
                             std::vector<int>(num_devices_, 1 << 20));
    sancus_bcast_now_.assign(num_layers_,
                             std::vector<bool>(num_devices_, false));
    for (int l = 0; l < num_layers_; ++l)
      sancus_last_bcast_[l].resize(num_devices_);
    // One wire channel per (layer, direction) broadcast lineage, claimed in
    // deterministic order so replicated ranks agree (src/transport/).
    sancus_fwd_chan_.resize(num_layers_);
    sancus_bwd_chan_.resize(num_layers_);
    sancus_fwd_round_.assign(num_layers_, 0);
    sancus_bwd_round_.assign(num_layers_, 0);
    for (int l = 0; l < num_layers_; ++l) {
      sancus_fwd_chan_[l] = transport::next_channel();
      sancus_bwd_chan_[l] = transport::next_channel();
    }
  }

  // ---- Memory subsystem: cache the stable param set and resolve every
  // pool key the training loop will use on the main thread, pre-warming the
  // capacities whose first natural use would otherwise fall in a
  // steady-state epoch (docs/ARCHITECTURE.md, "Memory subsystem").
  params_ = model_.params();
  grad_bytes_ = model_.grad_bytes();

  loss_sink_.resize(num_devices_);
  loss_prob_.resize(num_devices_);
  for (int d = 0; d < num_devices_; ++d) {
    loss_sink_[d] = &ws_.matrix(memory::Scratch::kLossGradSink, 0, d);
    loss_prob_[d] = &ws_.doubles(memory::Scratch::kLossProb, 0, d);
  }

  grad_flow_.resize(2);
  for (auto& flow : grad_flow_) flow.resize(num_devices_);
  bwd_sinks_.resize(num_layers_);
  bwd_scratch_.resize(num_layers_);
  for (int l = 0; l < num_layers_; ++l) {
    bwd_sinks_[l].resize(num_devices_);
    bwd_scratch_[l].resize(num_devices_);
  }
  sync_fwd_ex_.resize(num_layers_);
  sync_bwd_ex_.resize(num_layers_);
  if ((opts_.method == Method::kAdaQP ||
       opts_.method == Method::kAdaQPUniform) &&
      !async_pipeline_) {
    // The phased (ADAQP_ASYNC=0) forward reuses the persistent sync
    // exchanges with *quantized* plans from epoch 1 on: build + warm them
    // now so the stochastic-rounding uniform staging — which the 32-bit
    // warmup epoch never draws — is pre-reserved. (Vanilla and PipeGCN stay
    // full-precision forever, so their lazily-built exchanges reach their
    // final capacities during the warmup epoch naturally.)
    for (int l = 0; l < num_layers_; ++l) {
      sync_fwd_ex_[l] =
          std::make_unique<pipeline::AsyncExchange>(dist_, cluster_);
      sync_fwd_ex_[l]->prepare_forward(acts_[l], fwd_plans_[l]);
    }
  }
  adaqp_fwd_graph_.resize(num_layers_);
  adaqp_fwd_acct_.resize(num_layers_);
  adaqp_bwd_graph_.resize(num_layers_);
  adaqp_bwd_acct_.resize(num_layers_);
  fused_fwd_exchange_ids_.resize(num_layers_);
  fused_fwd_compute_ids_.resize(num_layers_);
  fused_bwd_exchange_ids_.resize(num_layers_);
  fused_bwd_compute_ids_.resize(num_layers_);
  // Register every metrics instrument now: the registry inserts on first
  // use, and first use must not land inside a steady-state epoch.
  (void)obs::instruments();
  adaqp_marginal_sinks_.resize(num_layers_);
  adaqp_central_sinks_.resize(num_layers_);
  adaqp_bwd_scratch_.resize(num_layers_);
  adaqp_bwd_bound_.assign(num_layers_, nullptr);
  for (int l = 0; l < num_layers_; ++l) {
    adaqp_marginal_sinks_[l].resize(num_devices_);
    adaqp_central_sinks_[l].resize(num_devices_);
    adaqp_bwd_scratch_[l].resize(num_devices_);
  }

  if (opts_.method == Method::kSancus) {
    // SANCUS's broadcast-skipping path first touches its drift scratch in
    // epoch 1 (there is no previous snapshot to diff against in epoch 0),
    // so resolve and pre-size everything here instead.
    sancus_snapshot_.resize(num_layers_);
    sancus_diff_.resize(num_layers_);
    sancus_bits_.resize(num_layers_);
    sancus_pair_bytes_.assign(
        num_devices_, std::vector<std::size_t>(num_devices_, 0));
    sancus_tmp_ = &ws_.matrix(memory::Scratch::kGeneric, 0, 0);
    sancus_seq_ = &ws_.u32s(memory::Scratch::kSancusSeq, 0, 0);
    for (int l = 0; l < num_layers_; ++l) {
      const std::size_t dim = model_.layer_in_dim(l);
      sancus_snapshot_[l].resize(num_devices_);
      sancus_diff_[l].resize(num_devices_);
      sancus_bits_[l].resize(num_devices_);
      for (int d = 0; d < num_devices_; ++d) {
        const std::size_t boundary = dist_.devices[d].boundary_span().size();
        Matrix& snap = ws_.matrix(memory::Scratch::kSancusSnapshot, l, d);
        Matrix& diff = ws_.matrix(memory::Scratch::kSancusDiff, l, d);
        snap.reshape_uninit(boundary, dim);
        diff.reshape_uninit(boundary, dim);
        sancus_snapshot_[l][d] = &snap;
        sancus_diff_[l][d] = &diff;
        sancus_bits_[l][d] = &ws_.ints(memory::Scratch::kSancusBits, l, d);
      }
    }
  }
}

pipeline::AsyncExchange& DistTrainer::sync_forward_exchange(int l) {
  if (!sync_fwd_ex_[l])
    sync_fwd_ex_[l] = std::make_unique<pipeline::AsyncExchange>(dist_,
                                                                cluster_);
  return *sync_fwd_ex_[l];
}

pipeline::AsyncExchange& DistTrainer::sync_backward_exchange(int l) {
  if (!sync_bwd_ex_[l])
    sync_bwd_ex_[l] = std::make_unique<pipeline::AsyncExchange>(dist_,
                                                                cluster_);
  return *sync_bwd_ex_[l];
}

double DistTrainer::compute_seconds(int layer, bool backward,
                                    bool central_only, int device) const {
  const DeviceGraph& dev = dist_.devices[device];
  // Precomputed index views — no per-call row-vector builds.
  const std::span<const NodeId> rows =
      central_only ? dev.central_span() : dev.owned_span();
  const std::size_t in = model_.layer_in_dim(layer);
  const std::size_t out = model_.layer_out_dim(layer);
  return backward ? layer_backward_seconds(cluster_, dev, rows, in, out)
                  : layer_forward_seconds(cluster_, dev, rows, in, out);
}

double DistTrainer::max_compute_seconds(int layer, bool backward,
                                        bool central_only) const {
  double m = 0.0;
  for (int d = 0; d < num_devices_; ++d)
    m = std::max(m, compute_seconds(layer, backward, central_only, d));
  return m;
}

double DistTrainer::marginal_compute_seconds_max(int layer,
                                                 bool backward) const {
  double m = 0.0;
  const std::size_t in = model_.layer_in_dim(layer);
  const std::size_t out = model_.layer_out_dim(layer);
  for (int d = 0; d < num_devices_; ++d) {
    const DeviceGraph& dev = dist_.devices[d];
    const double s =
        backward
            ? layer_backward_seconds(cluster_, dev, dev.marginal_nodes, in, out)
            : layer_forward_seconds(cluster_, dev, dev.marginal_nodes, in, out);
    m = std::max(m, s);
  }
  return m;
}

EpochBreakdown DistTrainer::forward_exchange(int l) {
  EpochBreakdown bd;
  // Cross-iteration joins first: layer l's compute reads the halo rows the
  // pending deferred exchange of layer l delivers, and *writes* the owned
  // rows of acts_[l + 1] that the next pending exchange's encode stages
  // read — both must be joined before the trace below touches acts_[l].
  // Join time is stashed per slot and consumed by the slot's own layer, so
  // each layer's breakdown reports its own exchange regardless of where
  // the join happened.
  if (opts_.method == Method::kPipeGCN && pipegcn_warm_) {
    join_pipegcn_forward(l);
    if (l + 1 < num_layers_) join_pipegcn_forward(l + 1);
    bd.comm = pipegcn_joined_comm_[l];
    pipegcn_joined_comm_[l] = 0.0;
  }
  const bool trace = true;
  if (trace) {
    fwd_ranges_[l].resize(num_devices_);
    for (int d = 0; d < num_devices_; ++d)
      row_ranges_of_into(acts_[l][d], fwd_ranges_[l][d]);
  }

  switch (opts_.method) {
    case Method::kVanilla: {
      // fwd_plans_[l] stays the uniform 32-bit plan for non-quantizing
      // methods (refresh_plans only touches AdaQP variants). The per-layer
      // exchange object is persistent: its first submit builds the stage
      // graph, every later one re-arms it in place.
      pipeline::AsyncExchange& ex = sync_forward_exchange(l);
      ex.submit_forward(acts_[l], fwd_plans_[l], device_rngs_,
                        exchange_parallel_ok());
      ex.wait_into(stats_scratch_);
      total_comm_bytes_ += stats_scratch_.total_bytes();
      capture_exchange_stats(stats_scratch_);
      if (l == 0) last_layer1_pair_bytes_ = stats_scratch_.pair_bytes;
      const double comp = max_compute_seconds(l, false, false);
      bd.comm = stats_scratch_.comm_seconds;
      bd.comp = comp;
      bd.total = stats_scratch_.comm_seconds + comp;
      return bd;
    }
    case Method::kAdaQP:
    case Method::kAdaQPUniform:
      // Quantizing methods run exchange + compute as one fused stage graph;
      // see adaqp_forward_layer (forward_pass never routes them here).
      ADAQP_CHECK_MSG(false, "AdaQP forward goes through adaqp_forward_layer");
      return bd;
    case Method::kPipeGCN: {
      const double comp = max_compute_seconds(l, false, false);
      if (!pipegcn_warm_) {
        // Cold start: synchronous full-precision exchange before compute.
        pipeline::AsyncExchange& ex = sync_forward_exchange(l);
        ex.submit_forward(acts_[l], fwd_plans_[l], device_rngs_,
                          exchange_parallel_ok());
        ex.wait_into(stats_scratch_);
        total_comm_bytes_ += stats_scratch_.total_bytes();
        capture_exchange_stats(stats_scratch_);
        if (l == 0) last_layer1_pair_bytes_ = stats_scratch_.pair_bytes;
        bd.comm = stats_scratch_.comm_seconds;
        bd.comp = comp;
        bd.total = stats_scratch_.comm_seconds + comp;
        return bd;
      }
      // Warm pipeline: compute with the halo rows delivered by the deferred
      // exchange submitted last epoch and joined just above — it stayed in
      // flight across the iteration boundary, overlapping the rest of last
      // epoch (later layers, backward, Adam, evaluation) and this epoch's
      // earlier layers. Its comm time hides inside computation.
      bd.comp = comp;
      bd.total = std::max(comp, bd.comm);
      return bd;
    }
    case Method::kSancus: {
      // Broadcast-skipping: each device broadcasts its boundary rows only
      // when they drifted enough or staleness hit the cap. Deliberately
      // serial — sequential broadcasts are the inefficiency being modeled,
      // and later senders read rows earlier broadcasts may have refreshed.
      std::vector<std::vector<std::size_t>>& pair_bytes = sancus_pair_bytes_;
      for (auto& row : pair_bytes) std::fill(row.begin(), row.end(), 0);
      double comm = 0.0;
      transport::Transport& tp = transport::active();
      const std::uint32_t round = ++sancus_fwd_round_[l];
      for (int d = 0; d < num_devices_; ++d) {
        const DeviceGraph& dev = dist_.devices[d];
        // This device's outgoing boundary rows (precomputed union view).
        const std::span<const NodeId> boundary = dev.boundary_span();
        bool bcast = true;
        Matrix& snapshot = *sancus_snapshot_[l][d];
        snapshot.reshape_uninit(boundary.size(), acts_[l][d].cols());
        for (std::size_t i = 0; i < boundary.size(); ++i) {
          const auto src = acts_[l][d].row(boundary[i]);
          std::copy(src.begin(), src.end(), snapshot.row(i).begin());
        }
        if (sancus_staleness_[l][d] < opts_.sancus_max_staleness &&
            sancus_last_bcast_[l][d].same_shape(snapshot)) {
          const double base = sancus_last_bcast_[l][d].frobenius_norm();
          Matrix& diff = *sancus_diff_[l][d];
          copy_matrix_into(snapshot, diff);
          diff.axpy_inplace(-1.0f, sancus_last_bcast_[l][d]);
          const double drift = diff.frobenius_norm() / (base + 1e-12);
          bcast = drift > opts_.sancus_drift_threshold;
        }
        sancus_bcast_now_[l][d] = bcast;
        if (!bcast) {
          sancus_staleness_[l][d]++;
          continue;
        }
        sancus_staleness_[l][d] = 0;
        // Copy, not move: the snapshot is pooled scratch and must keep its
        // buffer for the next epoch.
        copy_matrix_into(snapshot, sancus_last_bcast_[l][d]);
        // Deliver full-precision rows to each peer; sequential broadcast
        // cost (the inefficiency the paper calls out in §5.1).
        for (int p = 0; p < num_devices_; ++p) {
          if (p == d || dev.send_local[p].empty()) continue;
          std::vector<int>& bits = *sancus_bits_[l][d];
          bits.assign(dev.send_local[p].size(), 32);
          encode_rows_into(acts_[l][d], dev.send_local[p], bits,
                           device_rngs_[d], wire_uniforms_, wire_block_);
          pair_bytes[d][p] = wire_block_.wire_bytes();
          comm += cluster_.transfer_seconds(d, p, wire_block_.wire_bytes());
          const transport::FrameTag tag{sancus_fwd_chan_[l], round,
                                        /*direction=*/0,
                                        static_cast<std::uint8_t>(d),
                                        static_cast<std::uint8_t>(p)};
          tp.send(tag, wire_block_.bytes);
          decode_rows(tp.recv(tag, wire_block_.bytes), acts_[l][p],
                      dist_.devices[p].recv_local[d]);
        }
      }
      for (const auto& row : pair_bytes)
        for (std::size_t b : row) total_comm_bytes_ += b;
      capture_sancus_pairs(pair_bytes);
      if (l == 0) last_layer1_pair_bytes_ = pair_bytes;
      const double comp = max_compute_seconds(l, false, false);
      bd.comm = comm;
      bd.comp = comp;
      bd.total = comm + comp;
      return bd;
    }
  }
  return bd;
}

EpochBreakdown DistTrainer::adaqp_forward_layer(int l, bool training) {
  EpochBreakdown bd;
  // The persistent fused graphs capture training=true at build time;
  // evaluation never routes through here (it has a private inference path).
  ADAQP_CHECK(training);
  // Trace input ranges for the assigner (same point as the phased path:
  // before any halo row of this layer's input is rewritten).
  fwd_ranges_[l].resize(num_devices_);
  for (int d = 0; d < num_devices_; ++d)
    row_ranges_of_into(acts_[l][d], fwd_ranges_[l][d]);

  if (!async_pipeline_) {
    // Phased reference schedule: exchange every halo row, then the full
    // per-device forward — the PR-2 execution shape, on the persistent
    // per-layer exchange.
    pipeline::AsyncExchange& ex = sync_forward_exchange(l);
    ex.submit_forward(acts_[l], fwd_plans_[l], device_rngs_,
                      exchange_parallel_ok());
    ex.wait_into(stats_scratch_);
    run_device_tasks([&](int d) {
      model_.layer(l).forward(dist_.devices[d], acts_[l][d], acts_[l + 1][d],
                              caches_[l][d], device_rngs_[d],
                              /*training=*/true);
    });
  } else if (!adaqp_fwd_graph_[l]) {
    // Fused stage graph: per-pair encode/wire/decode stages run concurrently
    // with per-device central-row compute; each device's marginal rows wait
    // on its inbound messages (and on its own prepare/central stage, which
    // sizes the shared layer cache). Stage bodies write disjoint rows and
    // use private RNG streams, so this schedule is bit-identical to the
    // phased one at any thread count. Built once here (warmup epoch 0,
    // uniform 32-bit plan = maximal payloads), re-armed in place forever
    // after: the stage lambdas read fwd_plans_[l] (stable address) at run
    // time, so plan refreshes need no rebuild.
    adaqp_fwd_graph_[l] = std::make_unique<pipeline::StageGraph>();
    pipeline::StageGraph& graph = *adaqp_fwd_graph_[l];
    std::string prefix = "L";
    prefix += std::to_string(l);
    graph.set_label(prefix + "/forward");
    pipeline::ExchangeAccounting& acct = adaqp_fwd_acct_[l];
    acct.init(num_devices_, device_rngs_);
    const pipeline::PairStages pair = pipeline::add_forward_exchange_stages(
        graph, dist_, acts_[l], fwd_plans_[l], acct);
    std::vector<int> central(num_devices_, -1);
    for (int d = 0; d < num_devices_; ++d) {
      const DeviceGraph& dev = dist_.devices[d];
      const std::string dn = "d" + std::to_string(d);
      AccessList acc;
      if (analysis::racecheck_enabled()) {
        // Central rows aggregate only owned neighbors (layers.h), so the
        // read never touches the halo rows the fwd stages are decoding into.
        acc.push_back(rc_row_range(acts_[l][d], 0, dev.num_owned, kRcRead,
                                   "x[" + dn + "].owned_rows"));
        rc_rows(acc, acts_[l + 1][d], dev.central_span(), kRcWrite,
                "h[" + dn + "].central_rows");
        acc.push_back(analysis::write_of(&caches_[l][d], sizeof(caches_[l][d]),
                                         "cache[" + dn + "]"));
        acc.push_back(analysis::write_of(&device_rngs_[d],
                                         sizeof(device_rngs_[d]),
                                         "rng[" + dn + "]"));
      }
      central[d] = graph.add(
          prefix + "/central/" + dn,
          [this, l, d] {
            const DeviceGraph& device = dist_.devices[d];
            const GnnLayer& layer = model_.layer(l);
            layer.forward_prepare(device, caches_[l][d], device_rngs_[d],
                                  /*training=*/true);
            layer.forward_rows(device, acts_[l][d], acts_[l + 1][d],
                               caches_[l][d], device.central_span());
          },
          {}, std::move(acc));
    }
    for (int d = 0; d < num_devices_; ++d) {
      const DeviceGraph& dev = dist_.devices[d];
      const std::string dn = "d" + std::to_string(d);
      std::vector<int> deps{central[d]};
      for (int p : dev.halo_senders)
        if (pair.stage[p][d] >= 0) deps.push_back(pair.stage[p][d]);
      AccessList acc;
      if (analysis::racecheck_enabled()) {
        // Marginal rows aggregate halo neighbors too, so the read covers the
        // whole local matrix — the deps on this device's inbound decodes are
        // exactly what orders it.
        acc.push_back(rc_row_range(acts_[l][d], 0, dev.num_local(), kRcRead,
                                   "x[" + dn + "].local_rows"));
        rc_rows(acc, acts_[l + 1][d], dev.marginal_span(), kRcWrite,
                "h[" + dn + "].marginal_rows");
        acc.push_back(analysis::write_of(&caches_[l][d], sizeof(caches_[l][d]),
                                         "cache[" + dn + "]"));
      }
      graph.add(
          prefix + "/marginal/" + dn,
          [this, l, d] {
            const DeviceGraph& device = dist_.devices[d];
            model_.layer(l).forward_rows(device, acts_[l][d], acts_[l + 1][d],
                                         caches_[l][d],
                                         device.marginal_span());
          },
          deps, std::move(acc));
    }
    // Remember which stages are wire (per-pair encode/transfer/decode) and
    // which are the central compute meant to hide under them: their stage
    // timestamps yield the realized overlap in the metrics report. The
    // graph is persistent, so the ids stay valid for the whole run.
    for (const auto& row : pair.stage)
      for (const int id : row)
        if (id >= 0) fused_fwd_exchange_ids_[l].push_back(id);
    fused_fwd_compute_ids_[l] = central;
    // Warm the staging the 32-bit warmup rounds never touch: quantized
    // rounds draw per-column stochastic-rounding uniforms.
    acct.warm(dist_, fwd_plans_[l], /*forward=*/true, model_.layer_in_dim(l));
    graph.run(/*async=*/true);
    pipeline::finalize_exchange_stats_into(acct, dist_, cluster_,
                                           stats_scratch_);
  } else {
    // Steady state: re-derive the per-pair RNG streams (same draws as a
    // fresh build), re-arm the graph, run. No allocation on any path.
    pipeline::ExchangeAccounting& acct = adaqp_fwd_acct_[l];
    acct.init(num_devices_, device_rngs_);
    adaqp_fwd_graph_[l]->reset();
    adaqp_fwd_graph_[l]->run(/*async=*/true);
    pipeline::finalize_exchange_stats_into(acct, dist_, cluster_,
                                           stats_scratch_);
  }

  total_comm_bytes_ += stats_scratch_.total_bytes();
  capture_exchange_stats(stats_scratch_);
  if (adaqp_fwd_graph_[l]) {
    capture_overlap(*adaqp_fwd_graph_[l], fused_fwd_exchange_ids_[l],
                    fused_fwd_compute_ids_[l], /*forward=*/true);
    capture_profile_segment(*adaqp_fwd_graph_[l], l, /*forward=*/true);
  }
  if (l == 0) last_layer1_pair_bytes_ = stats_scratch_.pair_bytes;
  // Modeled epoch time: central compute hides inside communication, the
  // quantize / de-quantize kernels and marginal compute do not (Fig. 10a).
  const double central_s = max_compute_seconds(l, false, true);
  const double marginal_s = marginal_compute_seconds_max(l, false);
  const double tq = stats_scratch_.max_quant_seconds();
  const double tdq = stats_scratch_.max_dequant_seconds();
  bd.comm = stats_scratch_.comm_seconds;
  bd.comp = marginal_s;
  bd.quant = tq + tdq;
  bd.total =
      tq + std::max(stats_scratch_.comm_seconds, central_s) + tdq + marginal_s;
  return bd;
}

EpochBreakdown DistTrainer::backward_exchange(int l,
                                              std::vector<Matrix>& grads) {
  EpochBreakdown bd;
  // Trace gradient ranges for the assigner before any mutation.
  bwd_ranges_[l].resize(num_devices_);
  for (int d = 0; d < num_devices_; ++d)
    row_ranges_of_into(grads[d], bwd_ranges_[l][d]);

  switch (opts_.method) {
    case Method::kVanilla: {
      pipeline::AsyncExchange& ex = sync_backward_exchange(l);
      ex.submit_backward(grads, bwd_plans_[l], device_rngs_,
                         exchange_parallel_ok());
      ex.wait_into(stats_scratch_);
      total_comm_bytes_ += stats_scratch_.total_bytes();
      capture_exchange_stats(stats_scratch_);
      bd.comm = stats_scratch_.comm_seconds;
      bd.total = stats_scratch_.comm_seconds;
      return bd;
    }
    case Method::kAdaQP:
    case Method::kAdaQPUniform:
      // Quantizing methods overlap this exchange with the parameter-gradient
      // folds directly in backward_pass.
      ADAQP_CHECK_MSG(false, "AdaQP backward exchange handled in backward_pass");
      return bd;
    case Method::kPipeGCN: {
      // Stale gradient pipeline as cross-iteration stages: the halo-row
      // gradients computed this epoch are staged into the persistent
      // per-layer scratch and shipped by an exchange that stays in flight
      // while the remaining backward layers, Adam, evaluation and the next
      // epoch's forward run. Last epoch's in-flight exchange is joined
      // here — its arrivals (accumulated into the scratch owned rows by the
      // bwd-acc stages) are exactly the remote contributions the phased
      // implementation banked in pending_grads.
      const bool had_pending = pipegcn_bwd_active_[l] != 0;
      bd.comm = join_pipegcn_backward(l);
      std::vector<Matrix>& scratch = pipegcn_bwd_scratch_[l];
      for (int d = 0; d < num_devices_; ++d) {
        const DeviceGraph& dev = dist_.devices[d];
        if (had_pending) {
          for (std::size_t i = 0; i < dev.num_owned; ++i) {
            auto dst = grads[d].row(i);
            const auto src = scratch[d].row(i);
            for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
          }
        }
        // Re-stage: zero the owned rows the next exchange accumulates into,
        // copy this epoch's outbound halo contributions, then drop them
        // locally (they are being shipped).
        for (std::size_t i = 0; i < dev.num_owned; ++i) {
          auto row = scratch[d].row(i);
          std::fill(row.begin(), row.end(), 0.0f);
        }
        for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h) {
          const auto src = grads[d].row(h);
          std::copy(src.begin(), src.end(), scratch[d].row(h).begin());
          auto row = grads[d].row(h);
          std::fill(row.begin(), row.end(), 0.0f);
        }
      }
      pipegcn_bwd_inflight_[l]->submit_backward(scratch, bwd_plans_[l],
                                                device_rngs_,
                                                async_pipeline_);
      pipegcn_bwd_active_[l] = 1;
      bd.total = 0.0;  // hidden inside compute; composed in backward_pass
      return bd;
    }
    case Method::kSancus: {
      // Remote gradients only flow toward owners that broadcast fresh
      // embeddings this epoch; contributions to stale owners are dropped
      // (the gradient bias that slows SANCUS's convergence).
      std::vector<std::vector<std::size_t>>& pair_bytes = sancus_pair_bytes_;
      for (auto& row : pair_bytes) std::fill(row.begin(), row.end(), 0);
      transport::Transport& tp = transport::active();
      const std::uint32_t round = ++sancus_bwd_round_[l];
      for (int d = 0; d < num_devices_; ++d) {
        const DeviceGraph& dev = dist_.devices[d];
        for (int p = 0; p < num_devices_; ++p) {
          if (p == d || dev.recv_local[p].empty()) continue;
          if (!sancus_bcast_now_[l][p]) continue;
          std::vector<int>& bits = *sancus_bits_[l][d];
          bits.assign(dev.recv_local[p].size(), 32);
          encode_rows_into(grads[d], dev.recv_local[p], bits,
                           device_rngs_[d], wire_uniforms_, wire_block_);
          pair_bytes[d][p] = wire_block_.wire_bytes();
          const transport::FrameTag tag{sancus_bwd_chan_[l], round,
                                        /*direction=*/1,
                                        static_cast<std::uint8_t>(d),
                                        static_cast<std::uint8_t>(p)};
          tp.send(tag, wire_block_.bytes);
          // Accumulate into the owner's owned rows.
          const auto& rows = dist_.devices[p].send_local[d];
          Matrix& tmp = *sancus_tmp_;
          tmp.reshape_uninit(rows.size(), grads[p].cols());
          std::vector<NodeId>& seq = *sancus_seq_;
          while (seq.size() < rows.size())
            seq.push_back(static_cast<NodeId>(seq.size()));
          decode_rows(tp.recv(tag, wire_block_.bytes), tmp,
                      std::span<const NodeId>(seq.data(), rows.size()));
          for (std::size_t i = 0; i < rows.size(); ++i) {
            auto dst = grads[p].row(rows[i]);
            const auto src = tmp.row(i);
            for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
          }
        }
      }
      double comm = 0.0;
      for (int d = 0; d < num_devices_; ++d)
        for (int p = 0; p < num_devices_; ++p) {
          total_comm_bytes_ += pair_bytes[d][p];
          comm += cluster_.transfer_seconds(d, p, pair_bytes[d][p]);
        }
      capture_sancus_pairs(pair_bytes);
      for (int d = 0; d < num_devices_; ++d) {
        const DeviceGraph& dev = dist_.devices[d];
        for (std::size_t h = dev.num_owned; h < dev.num_local(); ++h) {
          auto row = grads[d].row(h);
          std::fill(row.begin(), row.end(), 0.0f);
        }
      }
      bd.comm = comm;
      bd.total = comm;
      return bd;
    }
  }
  return bd;
}

EpochBreakdown DistTrainer::forward_pass(bool training, double* loss_out) {
  EpochBreakdown total;
  const bool quantizing = opts_.method == Method::kAdaQP ||
                          opts_.method == Method::kAdaQPUniform;
  for (int l = 0; l < num_layers_; ++l) {
    if (quantizing) {
      // Fused exchange + compute through the pipeline scheduler.
      total.accumulate(adaqp_forward_layer(l, training));
      continue;
    }
    EpochBreakdown stage = forward_exchange(l);
    // Each simulated device's layer compute is one task on the pool: it
    // touches only its own activations, cache and Rng stream, so devices
    // run concurrently with bit-identical results at any thread count.
    run_device_tasks([&](int d) {
      model_.layer(l).forward(dist_.devices[d], acts_[l][d], acts_[l + 1][d],
                              caches_[l][d], device_rngs_[d], training);
    });
    if (opts_.method == Method::kPipeGCN && pipegcn_warm_) {
      // Deferred exchange: ship the (already-consumed) inputs so next
      // epoch's halos are one-epoch stale. The stages stay in flight across
      // the iteration boundary — overlapping the layers below, the whole
      // backward pass and the next epoch's earlier layers — and are joined
      // by forward_exchange right before these buffers are touched again.
      submit_pipegcn_forward(l);
    }
    total.accumulate(stage);
  }

  if (loss_out) {
    // Loss values only (gradients handled in backward_pass); per-device
    // terms computed concurrently into epoch-arena scratch, reduced in
    // ascending device order. The gradient sink is pooled per device and
    // re-zeroed because the losses accumulate into it.
    double* device_loss = ws_.arena().span<double>(
        static_cast<std::size_t>(num_devices_));
    run_device_tasks([&](int d) {
      Matrix& sink = *loss_sink_[d];
      sink.reshape_zero(acts_[num_layers_][d].rows(),
                        acts_[num_layers_][d].cols());
      if (!dataset_.spec.multi_label) {
        device_loss[d] = softmax_cross_entropy(
            acts_[num_layers_][d], train_rows_[d], train_labels_[d],
            global_train_count_, sink, *loss_prob_[d]);
      } else {
        device_loss[d] =
            bce_with_logits(acts_[num_layers_][d], train_rows_[d],
                            train_targets_[d], global_train_count_, sink);
      }
    });
    double loss = 0.0;
    for (int d = 0; d < num_devices_; ++d) loss += device_loss[d];
    *loss_out = loss / global_train_count_;
  }
  return total;
}

EpochBreakdown DistTrainer::backward_pass() {
  EpochBreakdown total;

  // Loss gradients wrt logits — one device task each (disjoint outputs).
  // Gradients flow through the two persistent ping-pong buffer sets: at
  // layer l, the incoming grad lives in grad_flow_[(num_layers_-1-l) % 2]
  // and the input grad in the other — fixed per layer across epochs, which
  // is what lets the persistent exchanges and stage graphs bind them once.
  std::vector<Matrix>* grads = &grad_flow_[0];
  std::vector<Matrix>* grad_x = &grad_flow_[1];
  run_device_tasks([&](int d) {
    Matrix& g = (*grads)[d];
    // reshape_zero, not uninit: the losses accumulate into their sink.
    g.reshape_zero(acts_[num_layers_][d].rows(),
                   acts_[num_layers_][d].cols());
    if (!dataset_.spec.multi_label) {
      softmax_cross_entropy(acts_[num_layers_][d], train_rows_[d],
                            train_labels_[d], global_train_count_, g,
                            *loss_prob_[d]);
    } else {
      bce_with_logits(acts_[num_layers_][d], train_rows_[d], train_targets_[d],
                      global_train_count_, g);
    }
  });

  for (int l = num_layers_ - 1; l >= 0; --l) {
    EpochBreakdown stage;
    const bool quantizing = opts_.method == Method::kAdaQP ||
                            opts_.method == Method::kAdaQPUniform;
    if (l > 0 && quantizing) {
      // Full-duplex backward: row-subset adjoints + halo-gradient exchange
      // as one stage graph (central-row backward runs while the exchange is
      // on the wire).
      stage = adaqp_backward_layer(l, *grads, *grad_x);
    } else {
      // Per-device backward runs concurrently into per-device gradient
      // sinks; the shared parameter gradients are then reduced in ascending
      // device order so the epoch is deterministic at any thread count.
      std::vector<LayerGrads>& sinks = bwd_sinks_[l];
      const GnnLayer& layer = model_.layer(l);
      run_device_tasks([&](int d) {
        layer.backward(dist_.devices[d], (*grads)[d], caches_[l][d],
                       (*grad_x)[d], sinks[d], bwd_scratch_[l][d]);
      });
      const double comp_all = max_compute_seconds(l, true, false);
      for (int d = 0; d < num_devices_; ++d)
        model_.layer(l).apply_grads(sinks[d]);
      if (l > 0) {
        stage = backward_exchange(l, *grad_x);
        switch (opts_.method) {
          case Method::kVanilla:
          case Method::kSancus:
            stage.comp = comp_all;
            stage.total += comp_all;
            break;
          case Method::kAdaQP:
          case Method::kAdaQPUniform:
            break;  // handled above
          case Method::kPipeGCN:
            stage.comp = comp_all;
            stage.total = std::max(comp_all, stage.comm);
            break;
        }
      } else {
        stage.comp = comp_all;
        stage.total = comp_all;
      }
    }
    total.accumulate(stage);
    std::swap(grads, grad_x);
  }
  return total;
}

EpochBreakdown DistTrainer::adaqp_backward_layer(int l,
                                                 std::vector<Matrix>& grads,
                                                 std::vector<Matrix>& grad_x) {
  EpochBreakdown bd;
  const std::size_t in_dim = model_.layer_in_dim(l);
  bwd_ranges_[l].resize(num_devices_);
  pipeline::ExchangeAccounting& acct = adaqp_bwd_acct_[l];

  // Pre-size the gradient buffers every epoch (zero-initialized: the
  // row-subset adjoints accumulate, and the exchange stage builder
  // validates shapes at graph-build time).
  for (int d = 0; d < num_devices_; ++d)
    grad_x[d].reshape_zero(dist_.devices[d].num_local(), in_dim);

  if (!adaqp_bwd_graph_[l]) {
    // Stage graph of one layer's backward, built once (warmup) and re-armed
    // in place every later epoch. Determinism at any schedule comes from
    // the same rules as the forward split: disjoint writes per stage
    // (marginal adjoints are the sole writers of halo gradient rows;
    // central adjoints write owned rows after them), per-pair RNG streams
    // derived serially per epoch, owner accumulation folding senders
    // ascending, and one serial fold stage applying per-(device, subset)
    // partials in ascending device order, marginal before central.
    //
    // The stage lambdas capture grads / grad_x by reference: these are the
    // grad_flow_ ping-pong vectors, whose parity is fixed per layer, so the
    // very same objects arrive every epoch (checked below).
    adaqp_bwd_bound_[l] = &grads;
    adaqp_bwd_graph_[l] = std::make_unique<pipeline::StageGraph>();
    pipeline::StageGraph& graph = *adaqp_bwd_graph_[l];
    const GnnLayer& layer = model_.layer(l);
    std::vector<LayerGrads>& marginal_sinks = adaqp_marginal_sinks_[l];
    std::vector<LayerGrads>& central_sinks = adaqp_central_sinks_[l];
    std::string prefix = "L";
    prefix += std::to_string(l);
    prefix += "b";
    graph.set_label(prefix + "/backward");
    acct.init(num_devices_, device_rngs_);

    std::vector<int> marginal(num_devices_, -1);
    std::vector<int> central(num_devices_, -1);
    std::vector<int> trace(num_devices_, -1);
    for (int d = 0; d < num_devices_; ++d) {
      const DeviceGraph& dev = dist_.devices[d];
      const std::string dn = "d" + std::to_string(d);
      // Marginal-row adjoint: produces every halo gradient row this device
      // will ship, unblocking its encode stages. Marginal and central share
      // the per-(layer, device) scratch — they are serialized per device.
      AccessList acc;
      if (analysis::racecheck_enabled()) {
        // The marginal adjoint scatters into neighbors of marginal rows —
        // owned and halo rows alike — so its write claims the whole local
        // gradient matrix; everything downstream is ordered behind it.
        acc.push_back(rc_row_range(grads[d], 0, dev.num_local(), kRcRead,
                                   "grad_out[" + dn + "]"));
        acc.push_back(rc_row_range(grad_x[d], 0, dev.num_local(), kRcWrite,
                                   "grad[" + dn + "].local_rows"));
        acc.push_back(analysis::read_of(&caches_[l][d], sizeof(caches_[l][d]),
                                        "cache[" + dn + "]"));
        acc.push_back(analysis::read_of(&layer, sizeof(layer), "layer"));
        acc.push_back(analysis::write_of(&marginal_sinks[d],
                                         sizeof(marginal_sinks[d]),
                                         "marginal_sinks[" + dn + "]"));
      }
      marginal[d] = graph.add(
          prefix + "/marginal/" + dn,
          [this, &grads, &grad_x, &marginal_sinks, l, d] {
            const DeviceGraph& device = dist_.devices[d];
            model_.layer(l).backward_rows(device, grads[d], caches_[l][d],
                                          grad_x[d], marginal_sinks[d],
                                          device.marginal_span(),
                                          adaqp_bwd_scratch_[l][d]);
          },
          {}, std::move(acc));
    }
    for (int d = 0; d < num_devices_; ++d) {
      const DeviceGraph& dev = dist_.devices[d];
      const std::string dn = "d" + std::to_string(d);
      // Central-row adjoint: owned-row writes only — this is the compute
      // that runs while the halo-gradient exchange is on the wire.
      AccessList acc;
      if (analysis::racecheck_enabled()) {
        acc.push_back(rc_row_range(grads[d], 0, dev.num_local(), kRcRead,
                                   "grad_out[" + dn + "]"));
        acc.push_back(rc_row_range(grad_x[d], 0, dev.num_owned, kRcWrite,
                                   "grad[" + dn + "].owned_rows"));
        acc.push_back(analysis::read_of(&caches_[l][d], sizeof(caches_[l][d]),
                                        "cache[" + dn + "]"));
        acc.push_back(analysis::read_of(&layer, sizeof(layer), "layer"));
        acc.push_back(analysis::write_of(&central_sinks[d],
                                         sizeof(central_sinks[d]),
                                         "central_sinks[" + dn + "]"));
      }
      central[d] = graph.add(
          prefix + "/central/" + dn,
          [this, &grads, &grad_x, &central_sinks, l, d] {
            const DeviceGraph& device = dist_.devices[d];
            model_.layer(l).backward_rows(device, grads[d], caches_[l][d],
                                          grad_x[d], central_sinks[d],
                                          device.central_span(),
                                          adaqp_bwd_scratch_[l][d]);
          },
          {marginal[d]}, std::move(acc));
    }
    for (int d = 0; d < num_devices_; ++d) {
      const DeviceGraph& dev = dist_.devices[d];
      const std::string dn = "d" + std::to_string(d);
      // Assigner range trace: needs the complete local adjoint but must
      // precede the exchange's mutations (owner accumulate, halo zero).
      AccessList acc;
      if (analysis::racecheck_enabled()) {
        acc.push_back(rc_row_range(grad_x[d], 0, dev.num_local(), kRcRead,
                                   "grad[" + dn + "].local_rows"));
        acc.push_back(analysis::write_of(&bwd_ranges_[l][d],
                                         sizeof(bwd_ranges_[l][d]),
                                         "bwd_ranges[" + dn + "]"));
      }
      trace[d] = graph.add(
          prefix + "/trace/" + dn,
          [this, &grad_x, l, d] {
            row_ranges_of_into(grad_x[d], bwd_ranges_[l][d]);
          },
          {central[d]}, std::move(acc));
    }
    pipeline::BackwardStageDeps deps;
    deps.encode = marginal;     // halo rows are complete
    deps.accumulate = trace;    // owner's own owned-row writes are complete
    deps.zero = trace;          // last halo-row reader is done
    const pipeline::PairStages wire = pipeline::add_backward_exchange_stages(
        graph, dist_, grad_x, bwd_plans_[l], acct, deps);
    // Shared parameter-gradient fold: one serial stage, concurrent with the
    // wire stages, in fixed device-then-subset order.
    std::vector<int> fold_deps(central.begin(), central.end());
    AccessList fold_acc;
    if (analysis::racecheck_enabled()) {
      fold_acc.push_back(analysis::write_of(&layer, sizeof(layer), "layer"));
      for (int d = 0; d < num_devices_; ++d) {
        const std::string dn = "d" + std::to_string(d);
        fold_acc.push_back(analysis::read_of(&marginal_sinks[d],
                                             sizeof(marginal_sinks[d]),
                                             "marginal_sinks[" + dn + "]"));
        fold_acc.push_back(analysis::read_of(&central_sinks[d],
                                             sizeof(central_sinks[d]),
                                             "central_sinks[" + dn + "]"));
      }
    }
    const int fold_id = graph.add(
        prefix + "/fold",
        [this, &marginal_sinks, &central_sinks, l] {
          for (int d = 0; d < num_devices_; ++d) {
            model_.layer(l).apply_grads(marginal_sinks[d]);
            model_.layer(l).apply_grads(central_sinks[d]);
          }
        },
        fold_deps, std::move(fold_acc));
    // Wire stages (per-pair encodes + owner accumulates) vs the compute
    // running while they are in flight (central adjoints + the fold): the
    // stage timestamps yield the realized backward overlap in the report.
    for (const auto& row : wire.stage)
      for (const int id : row)
        if (id >= 0) fused_bwd_exchange_ids_[l].push_back(id);
    for (const int id : wire.owner_stage)
      if (id >= 0) fused_bwd_exchange_ids_[l].push_back(id);
    fused_bwd_compute_ids_[l] = central;
    fused_bwd_compute_ids_[l].push_back(fold_id);
    // Warm the quantized rounds' uniform staging (the 32-bit build-epoch
    // rounds never draw any) and the owner-side decode accumulators.
    acct.warm(dist_, bwd_plans_[l], /*forward=*/false, in_dim);
    graph.run(async_pipeline_);
  } else {
    // Steady state: same objects, re-derived RNG streams, re-armed graph.
    ADAQP_CHECK_MSG(adaqp_bwd_bound_[l] == &grads,
                    "adaqp backward graph rebound to a different grad buffer");
    acct.init(num_devices_, device_rngs_);
    adaqp_bwd_graph_[l]->reset();
    adaqp_bwd_graph_[l]->run(async_pipeline_);
  }

  pipeline::finalize_exchange_stats_into(acct, dist_, cluster_,
                                         stats_scratch_);
  total_comm_bytes_ += stats_scratch_.total_bytes();
  capture_exchange_stats(stats_scratch_);
  capture_overlap(*adaqp_bwd_graph_[l], fused_bwd_exchange_ids_[l],
                  fused_bwd_compute_ids_[l], /*forward=*/false);
  capture_profile_segment(*adaqp_bwd_graph_[l], l, /*forward=*/false);
  // Modeled epoch time, same composition as before: central backward hides
  // inside the comm window, quantize kernels and marginal backward do not.
  const double central_s = max_compute_seconds(l, true, true);
  const double tq = stats_scratch_.max_quant_seconds();
  const double tdq = stats_scratch_.max_dequant_seconds();
  bd.comm = stats_scratch_.comm_seconds;
  bd.quant = tq + tdq;
  bd.comp = marginal_compute_seconds_max(l, true);
  bd.total =
      tq + std::max(stats_scratch_.comm_seconds, central_s) + tdq + bd.comp;
  return bd;
}

double DistTrainer::join_pipegcn_forward(int l) {
  if (!pipegcn_fwd_active_[l]) return 0.0;
  pipegcn_fwd_inflight_[l]->wait_into(stats_scratch_);
  pipegcn_fwd_active_[l] = 0;
  total_comm_bytes_ += stats_scratch_.total_bytes();
  // Deferred traffic lands in the epoch row of the epoch that *joins* it
  // (one after the submit); the end-of-run drain past the last epoch only
  // feeds the global counters.
  capture_exchange_stats(stats_scratch_);
  if (l == 0) last_layer1_pair_bytes_ = stats_scratch_.pair_bytes;
  pipegcn_joined_comm_[l] += stats_scratch_.comm_seconds;
  return stats_scratch_.comm_seconds;
}

double DistTrainer::join_pipegcn_backward(int l) {
  if (!pipegcn_bwd_active_[l]) return 0.0;
  pipegcn_bwd_inflight_[l]->wait_into(stats_scratch_);
  pipegcn_bwd_active_[l] = 0;
  total_comm_bytes_ += stats_scratch_.total_bytes();
  capture_exchange_stats(stats_scratch_);
  return stats_scratch_.comm_seconds;
}

void DistTrainer::submit_pipegcn_forward(int l) {
  // fwd_plans_[l] is uniform 32-bit and never refreshed for PipeGCN, so it
  // is stable for the whole time this exchange stays in flight. The
  // exchange object is persistent (built + warmed in the constructor).
  pipegcn_fwd_inflight_[l]->submit_forward(acts_[l], fwd_plans_[l],
                                           device_rngs_, async_pipeline_);
  pipegcn_fwd_active_[l] = 1;
}

void DistTrainer::capture_exchange_stats(const ExchangeStats& stats) {
  obs::EpochRow* row = capture_.row(epoch_);
  if (row == nullptr) return;
  row->messages += stats.messages;
  for (int d = 0; d < num_devices_; ++d)
    for (int p = 0; p < num_devices_; ++p) {
      const std::size_t bytes = stats.pair_bytes[d][p];
      if (bytes == 0) continue;
      const auto& by_width = stats.pair_width_bytes[d][p];
      for (int w = 0; w < obs::kNumWidths; ++w)
        row->wire_bytes[static_cast<std::size_t>(w)] +=
            by_width[static_cast<std::size_t>(w)];
      capture_.add_pair(epoch_, d, p, by_width, bytes);
    }
}

void DistTrainer::capture_sancus_pairs(
    const std::vector<std::vector<std::size_t>>& pair_bytes) {
  // The serial broadcast loops bypass AsyncExchange, so feed the always-on
  // exchange counters here too — one round, full-precision rows only, the
  // 12-byte block header excluded from the by-width split.
  const obs::Instruments& ins = obs::instruments();
  const std::size_t w32 = static_cast<std::size_t>(obs::width_index(32));
  obs::EpochRow* row = capture_.row(epoch_);
  std::uint64_t messages = 0;
  std::uint64_t payload = 0;
  std::array<std::uint64_t, obs::kNumWidths> by_width{};
  for (int d = 0; d < num_devices_; ++d)
    for (int p = 0; p < num_devices_; ++p) {
      const std::size_t bytes = pair_bytes[static_cast<std::size_t>(d)]
                                          [static_cast<std::size_t>(p)];
      if (bytes == 0) continue;
      const std::uint64_t body = bytes > 12 ? bytes - 12 : 0;
      messages += 1;
      payload += body;
      if (row != nullptr) {
        by_width[w32] = body;
        row->wire_bytes[w32] += body;
        capture_.add_pair(epoch_, d, p, by_width, bytes);
      }
    }
  if (messages == 0) return;
  ins.exchange_rounds.add(1);
  ins.exchange_messages.add(messages);
  ins.exchange_wire_bytes[w32]->add(payload);
  if (row != nullptr) row->messages += messages;
}

void DistTrainer::capture_overlap(const pipeline::StageGraph& graph,
                                  const std::vector<int>& exchange_ids,
                                  const std::vector<int>& compute_ids,
                                  bool forward) {
  obs::EpochRow* row = capture_.row(epoch_);
  if (row == nullptr || exchange_ids.empty() || compute_ids.empty()) return;
  // Stage timestamps into the pre-reserved interval scratch; the interval
  // math mutates in place and never grows beyond the reserved capacity.
  iv_exchange_.clear();
  iv_compute_.clear();
  for (const int id : exchange_ids)
    iv_exchange_.emplace_back(graph.stage_begin_us(id),
                              graph.stage_end_us(id));
  for (const int id : compute_ids)
    iv_compute_.emplace_back(graph.stage_begin_us(id),
                             graph.stage_end_us(id));
  obs::accumulate_overlap(iv_exchange_, iv_compute_,
                          forward ? row->fwd_overlap : row->bwd_overlap);
}

void DistTrainer::capture_profile_segment(const pipeline::StageGraph& graph,
                                          int layer, bool forward) {
  obs::ProfileCapture& prof = capture_.profile();
  obs::SegmentProfile* seg = prof.segment(epoch_, layer, forward);
  if (seg == nullptr) return;
  // Rebuild the executed graph inside the pre-sized DAG scratch: names,
  // timestamps and declared dependency edges, plus this layer-epoch's
  // modeled quantize : comm : dequantize split so the fused exchange
  // stages can be attributed across encode/wire/decode. stats_scratch_
  // holds exactly this segment's exchange stats (finalized just before).
  obs::ProfileDag& dag = prof.dag();
  dag.clear();
  dag.set_exchange_model(stats_scratch_.max_quant_seconds(),
                         stats_scratch_.comm_seconds,
                         stats_scratch_.max_dequant_seconds());
  const int n = static_cast<int>(graph.size());
  for (int id = 0; id < n; ++id) {
    const std::string& name = graph.stage_name(id);
    dag.add_stage(&name, name, graph.stage_begin_us(id),
                  graph.stage_end_us(id));
  }
  for (int id = 0; id < n; ++id)
    for (const int dep : graph.stage_deps(id)) dag.add_dep(id, dep);
  seg->layer = layer;
  seg->forward = forward;
  dag.compute(*seg, prof.pair_seconds(epoch_), num_devices_);

  // With a trace active, draw the segment's critical path as flow arrows
  // between the recorded stage spans (trace-enabled epochs are outside the
  // steady-state contract, so the recorder may allocate).
  pipeline::TraceRecorder& rec = pipeline::TraceRecorder::instance();
  if (!rec.enabled()) return;
  const int cp = std::min(seg->cp_stages, obs::kMaxCpStages);
  for (int i = 0; i + 1 < cp; ++i) {
    const std::string* from = seg->cp_names[static_cast<std::size_t>(i)];
    const std::string* to = seg->cp_names[static_cast<std::size_t>(i + 1)];
    if (from == nullptr || to == nullptr) continue;
    // Anchor each endpoint at the midpoint of its stage span so the flow
    // binds inside the recorded slice regardless of rounding.
    int from_id = -1;
    int to_id = -1;
    for (int id = 0; id < n; ++id) {
      if (&graph.stage_name(id) == from) from_id = id;
      if (&graph.stage_name(id) == to) to_id = id;
    }
    if (from_id < 0 || to_id < 0) continue;
    const double from_mid = rec.trace_ts(
        0.5 * (graph.stage_begin_us(from_id) + graph.stage_end_us(from_id)));
    const double to_mid = rec.trace_ts(
        0.5 * (graph.stage_begin_us(to_id) + graph.stage_end_us(to_id)));
    rec.record_flow(*from, from_mid, *to, to_mid);
  }
}

void DistTrainer::refresh_plans() {
  if (opts_.method == Method::kAdaQP) {
    const Aggregator agg = model_.config().aggregator;
    for (int l = 0; l < num_layers_; ++l) {
      if (fwd_ranges_[l].empty()) continue;
      AssignReport report;
      fwd_plans_[l] = assign_bit_widths(dist_, cluster_, agg,
                                        Direction::kForward, fwd_ranges_[l],
                                        model_.layer_in_dim(l),
                                        opts_.assigner, &report);
      assign_seconds_ +=
          report.solve_wall_seconds + report.sim_gather_scatter_seconds;
    }
    for (int l = 1; l < num_layers_; ++l) {
      if (bwd_ranges_[l].empty()) continue;
      AssignReport report;
      bwd_plans_[l] = assign_bit_widths(dist_, cluster_, agg,
                                        Direction::kBackward, bwd_ranges_[l],
                                        model_.layer_in_dim(l),
                                        opts_.assigner, &report);
      assign_seconds_ +=
          report.solve_wall_seconds + report.sim_gather_scatter_seconds;
    }
  } else if (opts_.method == Method::kAdaQPUniform) {
    for (int l = 0; l < num_layers_; ++l)
      fwd_plans_[l] =
          sample_uniform_plan(dist_, Direction::kForward, master_rng_);
    for (int l = 1; l < num_layers_; ++l)
      bwd_plans_[l] =
          sample_uniform_plan(dist_, Direction::kBackward, master_rng_);
  }
}

EpochRecord DistTrainer::train_epoch() {
  EpochRecord rec;
  rec.epoch = epoch_;

  // Epoch-arena scratch from the previous epoch dies here; pooled and
  // persistent buffers keep their capacity (the steady-state contract,
  // docs/ARCHITECTURE.md "Memory subsystem").
  ws_.arena().reset();

  // Wall-clock phase stamps (obs::Stopwatch clock) ride along with the
  // allocation samples: modeled seconds (rec.time) and measured seconds
  // (last_wall_) come from the same phase boundaries. Observational only —
  // nothing below reads them back into the numerics.
  const double w0 = obs::monotonic_us();
  const std::uint64_t a0 = memory::alloc_count();
  for (Param* p : params_) p->grad.set_zero();
  double loss = 0.0;
  EpochBreakdown fwd = forward_pass(/*training=*/true, &loss);
  const std::uint64_t a1 = memory::alloc_count();
  const double w1 = obs::monotonic_us();
  EpochBreakdown bwd = backward_pass();
  const std::uint64_t a2 = memory::alloc_count();
  const double w2 = obs::monotonic_us();
  rec.train_loss = loss;

  // Model-gradient synchronization (numerics already global; timing only).
  const double sync = allreduce_seconds(cluster_, grad_bytes_);
  adam_.step(params_);
  const std::uint64_t a3 = memory::alloc_count();
  const double w3 = obs::monotonic_us();

  rec.time = fwd;
  rec.time.accumulate(bwd);
  rec.time.comm += sync;
  rec.time.total += sync;

  if (opts_.method == Method::kPipeGCN) pipegcn_warm_ = true;

  // Periodic bit-width (re-)assignment at the end of the traced period.
  const bool quantizing = opts_.method == Method::kAdaQP ||
                          opts_.method == Method::kAdaQPUniform;
  const bool refresh_now =
      quantizing &&
      (epoch_ == 0 || (epoch_ + 1) % std::max(opts_.reassign_period, 1) == 0);
  if (refresh_now) refresh_plans();
  const std::uint64_t a4 = memory::alloc_count();
  const double w4 = obs::monotonic_us();

  if (opts_.eval_every_epoch) {
    const auto [val, test] = evaluate();
    rec.val_acc = val;
    rec.test_acc = test;
  }
  const std::uint64_t a5 = memory::alloc_count();
  const double w5 = obs::monotonic_us();

  alloc_report_.forward = a1 - a0;
  alloc_report_.backward = a2 - a1;
  alloc_report_.optimizer = a3 - a2;
  alloc_report_.refresh = a4 - a3;
  alloc_report_.evaluation = a5 - a4;
  // The zero-allocation contract covers warm training epochs proper: plan
  // refreshes, evaluation and the observability modes are excluded (they
  // rebuild data structures by design).
  alloc_report_.steady_state =
      epoch_ > 0 && !refresh_now && !opts_.eval_every_epoch &&
      !opts_.verbose && !analysis::racecheck_enabled() &&
      !pipeline::TraceRecorder::instance().enabled() &&
      transport::active().zero_alloc_delivery();
  if (alloc_report_.steady_state && memory::track_enabled() &&
      alloc_report_.total() != 0) {
    throw std::runtime_error(
        "ADAQP_ALLOC_TRACK: steady-state epoch " + std::to_string(epoch_) +
        " allocated (forward=" + std::to_string(alloc_report_.forward) +
        " backward=" + std::to_string(alloc_report_.backward) +
        " optimizer=" + std::to_string(alloc_report_.optimizer) +
        " refresh=" + std::to_string(alloc_report_.refresh) +
        " evaluation=" + std::to_string(alloc_report_.evaluation) + "); " +
        std::string(memory::steady_state_definition()));
  }
  last_wall_.forward_s = (w1 - w0) * 1e-6;
  last_wall_.backward_s = (w2 - w1) * 1e-6;
  last_wall_.optimizer_s = (w3 - w2) * 1e-6;
  last_wall_.refresh_s = (w4 - w3) * 1e-6;
  last_wall_.evaluation_s = (w5 - w4) * 1e-6;
  obs::instruments().trainer_epochs.add(1);
  if (obs::EpochRow* row = capture_.row(epoch_)) {
    // Exchange traffic and overlap accumulated into this row during the
    // passes; the scalar epoch fields land here, all pre-allocated.
    row->epoch = epoch_;
    row->train_loss = rec.train_loss;
    row->val_acc = rec.val_acc;
    row->test_acc = rec.test_acc;
    row->sim_comm_s = rec.time.comm;
    row->sim_comp_s = rec.time.comp;
    row->sim_quant_s = rec.time.quant;
    row->sim_total_s = rec.time.total;
    row->wall = last_wall_;
    row->allocs_forward = alloc_report_.forward;
    row->allocs_backward = alloc_report_.backward;
    row->allocs_optimizer = alloc_report_.optimizer;
    row->allocs_refresh = alloc_report_.refresh;
    row->allocs_evaluation = alloc_report_.evaluation;
    row->steady_state = alloc_report_.steady_state;
  }
  // Profiler phase walls: the rollup decomposes forward+backward+optimizer
  // into critical-path categories + scheduling + serial glue. No-op unless
  // run() armed the profiler; writes pre-allocated storage only.
  capture_.profile().set_epoch_phases(epoch_, last_wall_.forward_s,
                                      last_wall_.backward_s,
                                      last_wall_.optimizer_s);
  // With a trace active, sample every registry counter/gauge once per epoch
  // so wire bytes and message counts render as counter tracks next to the
  // stage spans (trace-enabled epochs are outside the steady-state
  // contract).
  if (pipeline::TraceRecorder::instance().enabled()) {
    pipeline::TraceRecorder& rec_tr = pipeline::TraceRecorder::instance();
    rec_tr.record_registry_counters(rec_tr.now_us());
  }
  ++epoch_;
  return rec;
}

std::pair<double, double> DistTrainer::evaluate() {
  // Full-precision inference over private buffers (leaves training state —
  // notably PipeGCN's stale halos — untouched).
  std::vector<Matrix> x = features_;
  const auto plan32 = [&](int /*l*/) {
    return ExchangePlan::uniform_forward(dist_, 32);
  };
  std::vector<LayerCache> scratch(num_devices_);
  for (int l = 0; l < num_layers_; ++l) {
    exchange_halo_forward(dist_, x, plan32(l), cluster_, device_rngs_);
    std::vector<Matrix> next;
    next.reserve(num_devices_);
    for (int d = 0; d < num_devices_; ++d)
      next.emplace_back(dist_.devices[d].num_local(), model_.layer_out_dim(l));
    run_device_tasks([&](int d) {
      model_.layer(l).forward(dist_.devices[d], x[d], next[d], scratch[d],
                              device_rngs_[d], /*training=*/false);
    });
    x = std::move(next);
  }
  const Matrix logits =
      gather_from_devices(x, dist_, model_.config().out_dim);

  auto metric = [&](const std::vector<std::uint32_t>& nodes) {
    if (!dataset_.spec.multi_label) {
      std::vector<std::int32_t> labels(nodes.size());
      for (std::size_t i = 0; i < nodes.size(); ++i)
        labels[i] = dataset_.labels[nodes[i]];
      return accuracy(logits, nodes, labels);
    }
    Matrix targets(nodes.size(), dataset_.num_classes());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto src = dataset_.label_matrix.row(nodes[i]);
      std::copy(src.begin(), src.end(), targets.row(i).begin());
    }
    return micro_f1(logits, nodes, targets);
  };
  return {metric(dataset_.val_nodes), metric(dataset_.test_nodes)};
}

RunResult DistTrainer::run() {
  RunResult result;
  result.method = method_name(opts_.method);
  result.model = model_.config().name();
  result.dataset = dataset_.spec.name;
  result.partition_setting = cluster_.partition_setting();

  // ADAQP_TRACE=<path>: record every pipeline stage of this run and write a
  // Chrome trace_event JSON there (open in chrome://tracing / Perfetto).
  const std::string trace_path = env::text("ADAQP_TRACE").value_or("");
  if (!trace_path.empty()) pipeline::TraceRecorder::instance().start();

  // ADAQP_METRICS=<path>: per-epoch run report (docs/OBSERVABILITY.md).
  // All capture storage is dimensioned here, before the first epoch —
  // steady-state epochs then record without allocating (test_memory gates
  // this with the variable set).
  const obs::ReportConfig metrics_cfg = obs::report_config();
  if (metrics_cfg.enabled) {
    capture_.init(opts_.epochs, num_devices_);
    const std::size_t nd = static_cast<std::size_t>(num_devices_);
    iv_exchange_.reserve(nd * nd + nd);   // pair stages + owner accumulates
    iv_compute_.reserve(nd + 1);          // central stages + fold
    // ADAQP_PROFILE (default on with metrics): critical-path profile rows
    // plus the shared DAG scratch, sized for the largest fused layer graph
    // — nd^2 pair stages, a handful of per-device stages, the fold — so
    // per-epoch capture stays allocation-free.
    if (obs::profile_enabled()) {
      const int max_stages = static_cast<int>(nd * nd + 6 * nd + 8);
      const int max_deps = max_stages * static_cast<int>(nd + 4);
      capture_.profile().init(opts_.epochs, num_layers_, num_devices_,
                              max_stages, max_deps);
    }
  }

  for (int e = 0; e < opts_.epochs; ++e) {
    EpochRecord rec = train_epoch();
    result.train_seconds += rec.time.total;
    result.avg_breakdown.accumulate(rec.time);
    result.best_val_acc = std::max(result.best_val_acc, rec.val_acc);
    if (opts_.verbose && (e % 10 == 0 || e + 1 == opts_.epochs))
      std::fprintf(stderr, "[%s] epoch %3d loss %.4f val %.4f (%.3fs sim)\n",
                   result.method.c_str(), e, rec.train_loss, rec.val_acc,
                   rec.time.total);
    result.epochs.push_back(std::move(rec));
  }
  // Drain the last epoch's still-in-flight PipeGCN deferred exchanges so
  // total_comm_bytes and the time accounting cover every exchange of the
  // run (there is no next-epoch compute left to hide the tail inside, so
  // its comm time is exposed). Identical in async and sync modes.
  if (opts_.method == Method::kPipeGCN && !result.epochs.empty()) {
    EpochBreakdown tail;
    for (int l = 0; l < num_layers_; ++l) {
      tail.comm += join_pipegcn_forward(l);
      tail.comm += join_pipegcn_backward(l);
    }
    pipegcn_joined_comm_.assign(num_layers_, 0.0);
    if (tail.comm > 0.0) {
      tail.total = tail.comm;
      result.epochs.back().time.accumulate(tail);
      result.train_seconds += tail.total;
      result.avg_breakdown.accumulate(tail);
    }
  }
  if (!trace_path.empty()) {
    pipeline::TraceRecorder::instance().stop();
    if (!pipeline::TraceRecorder::instance().write_json(trace_path))
      std::fprintf(stderr, "[adaqp] could not write ADAQP_TRACE file %s\n",
                   trace_path.c_str());
  }
  const double n = static_cast<double>(std::max(opts_.epochs, 1));
  result.avg_breakdown.comm /= n;
  result.avg_breakdown.comp /= n;
  result.avg_breakdown.quant /= n;
  result.avg_breakdown.total /= n;
  result.assign_seconds = assign_seconds_;
  result.wall_clock_seconds = result.train_seconds + assign_seconds_;
  result.final_val_acc =
      result.epochs.empty() ? 0.0 : result.epochs.back().val_acc;
  result.final_test_acc =
      result.epochs.empty() ? 0.0 : result.epochs.back().test_acc;
  result.avg_epoch_seconds = result.train_seconds / n;
  result.throughput =
      result.avg_epoch_seconds > 0 ? 1.0 / result.avg_epoch_seconds : 0.0;
  result.total_comm_bytes = total_comm_bytes_;

  if (metrics_cfg.enabled) {
    obs::ReportMeta meta;
    meta.method = result.method;
    meta.model = result.model;
    meta.dataset = result.dataset;
    meta.partition = result.partition_setting;
    meta.devices = num_devices_;
    meta.layers = num_layers_;
    meta.threads = num_threads();
    // Host parallelism next to every overlap/speedup figure: hw threads <
    // requested threads means the schedule was oversubscribed and realized
    // overlap reflects time-slicing, not parallel hardware (machine-
    // readable form of the ROADMAP's measurement-gap caveat).
    meta.hardware_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    meta.low_parallelism_host =
        meta.hardware_threads > 0 && meta.hardware_threads < meta.threads;
    meta.async = async_pipeline_;
    meta.epochs_requested = opts_.epochs;
    meta.sim_train_seconds = result.train_seconds;
    meta.assign_seconds = result.assign_seconds;
    meta.total_comm_bytes = total_comm_bytes_;
    if (!obs::write_report(capture_, meta, metrics_cfg))
      std::fprintf(stderr, "[adaqp] could not write ADAQP_METRICS report %s\n",
                   metrics_cfg.path.c_str());
  }
  return result;
}

RunResult run_training(const Dataset& dataset, const ClusterSpec& cluster,
                       Aggregator aggregator, const TrainOptions& opts,
                       std::size_t hidden_dim, const std::string& partitioner) {
  Rng rng(opts.seed * 7919 + 17);
  const auto part = make_partitioner(partitioner)
                        ->partition(dataset.graph, cluster.num_devices(), rng);
  const DistGraph dist = build_dist_graph(dataset.graph, part);

  ModelConfig mc;
  mc.aggregator = aggregator;
  mc.in_dim = dataset.spec.feature_dim;
  mc.hidden_dim = hidden_dim;
  mc.out_dim = dataset.num_classes();
  mc.num_layers = 3;
  mc.dropout = 0.5f;
  mc.layer_norm = true;

  DistTrainer trainer(dataset, dist, cluster, mc, opts);
  return trainer.run();
}

}  // namespace adaqp
