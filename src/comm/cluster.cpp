#include "comm/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace adaqp {

std::string ClusterSpec::partition_setting() const {
  return std::to_string(num_machines) + "M-" +
         std::to_string(devices_per_machine) + "D";
}

LinkParams ClusterSpec::link(int src, int dst) const {
  return machine_of(src) == machine_of(dst) ? intra_machine : inter_machine;
}

double ClusterSpec::transfer_seconds(int src, int dst,
                                     std::size_t bytes) const {
  if (src == dst || bytes == 0) return 0.0;
  const LinkParams l = link(src, dst);
  return l.theta * static_cast<double>(bytes) + l.gamma;
}

double ClusterSpec::compute_seconds(double flops) const {
  return flops / device_flops;
}

double ClusterSpec::quant_seconds(std::size_t fp_bytes) const {
  return static_cast<double>(fp_bytes) / quant_bytes_per_sec;
}

ClusterSpec ClusterSpec::machines(int num_machines, int devices_per_machine) {
  ADAQP_CHECK(num_machines >= 1 && devices_per_machine >= 1);
  ClusterSpec spec;
  spec.num_machines = num_machines;
  spec.devices_per_machine = devices_per_machine;
  return spec;
}

double RingAllToAll::total_seconds(
    const ClusterSpec& cluster,
    const std::vector<std::vector<std::size_t>>& bytes,
    std::vector<double>* round_times) const {
  ADAQP_CHECK(cluster.num_devices() == num_devices);
  ADAQP_CHECK(static_cast<int>(bytes.size()) == num_devices);
  for (const auto& row : bytes)
    ADAQP_CHECK(static_cast<int>(row.size()) == num_devices);

  if (round_times) round_times->assign(std::max(num_rounds(), 0), 0.0);
  double total = 0.0;
  for (int r = 1; r <= num_rounds(); ++r) {
    double round_max = 0.0;
    for (int i = 0; i < num_devices; ++i) {
      const int dst = send_peer(i, r);
      round_max = std::max(round_max,
                           cluster.transfer_seconds(i, dst, bytes[i][dst]));
    }
    if (round_times) (*round_times)[r - 1] = round_max;
    total += round_max;
  }
  return total;
}

}  // namespace adaqp
