// Simulated cluster description and communication cost model.
//
// The paper's testbed (2–6 machines × 4 V100/A100, 100 Gbps Ethernet) is
// replaced by an event-level simulator: training math runs bit-exact on one
// CPU while all *timing* claims are evaluated under an affine per-transfer
// cost model t = θ·bytes + γ (Sarvotham et al., the same model the paper's
// bi-objective assigner assumes). Devices on the same machine communicate
// over a faster intra-machine link (NVLink/PCIe analogue) than across
// machines, which reproduces the paper's xM-yD partition-setting notation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace adaqp {

/// Affine link parameters: transfer time = theta * bytes + gamma.
struct LinkParams {
  double theta = 0.0;  ///< seconds per byte
  double gamma = 0.0;  ///< fixed per-transfer latency in seconds
};

// Default constants are *calibrated at simulation scale*: our synthetic
// graphs are ~1000x smaller than the paper's, so the absolute device and
// link rates are chosen to land the dimensionless ratios the evaluation
// depends on in the paper's regime — communication at ~65-80% of epoch time
// (Table 1), and central-graph computation below 2-bit marginal
// communication (Table 2). Bandwidth *ratios* (intra vs inter machine) match
// a 100 Gbps-Ethernet + NVLink-class testbed.
struct ClusterSpec {
  int num_machines = 1;
  int devices_per_machine = 1;

  /// Device compute throughput in FLOP/s (fp32 GEMM-like work at the
  /// simulation's small tile sizes).
  double device_flops = 2.0e11;
  /// Quantize/de-quantize kernel throughput in bytes/s of full-precision
  /// data processed (memory-bound elementwise kernels).
  double quant_bytes_per_sec = 8.0e10;

  LinkParams intra_machine{8.0e-11, 1.0e-6};   ///< ~12.5 GB/s effective
  LinkParams inter_machine{3.2e-10, 3.0e-6};   ///< ~3.1 GB/s per flow

  int num_devices() const { return num_machines * devices_per_machine; }
  int machine_of(int device) const { return device / devices_per_machine; }

  /// "xM-yD" notation used throughout the paper's tables.
  std::string partition_setting() const;

  /// Link between two devices (intra if same machine).
  LinkParams link(int src, int dst) const;
  /// Transfer time for `bytes` from src to dst.
  double transfer_seconds(int src, int dst, std::size_t bytes) const;
  /// Compute time for `flops` floating-point operations on one device.
  double compute_seconds(double flops) const;
  /// Quantization (or de-quantization) kernel time for a full-precision
  /// buffer of `fp_bytes` bytes.
  double quant_seconds(std::size_t fp_bytes) const;

  /// The paper's main testbed: 2 machines x (y) GPUs.
  static ClusterSpec machines(int num_machines, int devices_per_machine);
};

/// Ring all2all schedule (paper Fig. 8): N-1 synchronized rounds; in round r
/// (1-based) device i sends to (i + r) mod N and receives from (i - r) mod N.
struct RingAllToAll {
  int num_devices = 0;

  explicit RingAllToAll(int n) : num_devices(n) {}
  int num_rounds() const { return num_devices - 1; }
  int send_peer(int device, int round) const {
    return (device + round) % num_devices;
  }
  int recv_peer(int device, int round) const {
    return (device - round % num_devices + num_devices) % num_devices;
  }

  /// Straggler-synchronized total time for one all2all with the given
  /// per-pair payloads: each round completes when its slowest transfer does.
  /// `bytes[i][j]` is the payload device i sends to device j (diagonal
  /// ignored). Returns total seconds and optionally per-round maxima.
  double total_seconds(const ClusterSpec& cluster,
                       const std::vector<std::vector<std::size_t>>& bytes,
                       std::vector<double>* round_times = nullptr) const;
};

}  // namespace adaqp
