// Workspace — the per-trainer scratch-memory subsystem behind the
// zero-allocation steady state (docs/ARCHITECTURE.md, "Memory subsystem").
//
// Two complementary pieces:
//
//   Arena      A bump allocator of 64-byte-aligned raw spans with *epoch*
//              lifetime: reset() rewinds the cursor but keeps the chunks, so
//              after the warmup epoch has sized it, per-epoch spans cost a
//              pointer bump and no heap traffic. Spans are invalidated by
//              reset(); nothing in an arena is destructed (trivial types
//              only).
//
//   keyed pool A map from (kind, layer, a, b) to a persistent container
//              (Matrix, std::vector<float/double/int/uint32/uint8>) with
//              *trainer* lifetime. The first request for a key inserts
//              (warmup); later requests return the same object, whose
//              capacity sticks, so steady-state reuse is allocation-free.
//              References are stable across inserts (node-based map).
//
// Ownership / lifetime rules (enforced by convention + the alloc tracker):
//   1. The Workspace outlives everything that holds one of its references —
//      it is a DistTrainer member declared before the pipeline state that
//      borrows from it.
//   2. The pool and arena are NOT thread-safe. All scratch is resolved on
//      the main thread while building an epoch's stage graphs; stages only
//      *use* the buffers they were handed, and the stage-DAG discipline
//      (disjoint writes, declared dependencies) covers them like any other
//      buffer.
//   3. A key identifies one logical buffer. Two call sites may share a key
//      only if their lifetimes never overlap within an epoch.
//   4. Steady state admits no new keys: every key is first requested during
//      warmup (epoch 0), so pool inserts/rehashes never happen afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.h"

namespace adaqp::memory {

/// Epoch-lifetime bump allocator. allocate() returns 64-byte-aligned spans
/// carved from chunks that reset() retains, so a warm arena never touches
/// the heap again (until a larger epoch forces growth).
class Arena {
 public:
  explicit Arena(std::size_t min_chunk_bytes = 1u << 20);

  /// 64-byte-aligned span of `bytes` bytes, valid until reset().
  void* allocate(std::size_t bytes);

  /// Typed span helper for trivial T.
  template <typename T>
  T* span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena spans are never destructed");
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  /// Rewind every chunk cursor; capacity is retained.
  void reset();

  std::size_t capacity_bytes() const;
  std::size_t used_bytes() const;

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently bump-allocated from
  std::size_t min_chunk_bytes_;
};

/// Keys name the logical scratch buffers of the training loop; docs list the
/// owner of each kind. Adding a kind is free — the key space is (kind,
/// layer, a, b) and kinds only disambiguate call sites.
enum class Scratch : std::uint8_t {
  kSancusSnapshot,   ///< boundary-row snapshot, per (layer, device)
  kSancusDiff,       ///< drift diff vs last broadcast, per (layer, device)
  kSancusBits,       ///< per-row bit widths, per (layer, device)
  kSancusSeq,        ///< 0..n-1 row index sequence, per (layer, device)
  kLossGradSink,     ///< evaluation-loss gradient sink, per device
  kLossProb,         ///< softmax probability row, per device
  kGradFlow,         ///< backward activation-gradient ping-pong, per (parity, device)
  kRowRanges,        ///< row-range staging, per (layer, device)
  kGeneric,          ///< anything else; disambiguate via (layer, a, b)
};

/// Per-trainer scratch store: a bump Arena plus keyed pools of persistent
/// containers. See the header comment for the ownership rules.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  Arena& arena() { return arena_; }

  /// Persistent containers, keyed by (kind, layer, a, b); inserted empty on
  /// first request, returned as-is afterwards (callers resize/overwrite —
  /// contents are stale by design).
  Matrix& matrix(Scratch kind, int layer = 0, int a = 0, int b = 0);
  std::vector<float>& floats(Scratch kind, int layer = 0, int a = 0,
                             int b = 0);
  std::vector<double>& doubles(Scratch kind, int layer = 0, int a = 0,
                               int b = 0);
  std::vector<int>& ints(Scratch kind, int layer = 0, int a = 0, int b = 0);
  std::vector<std::uint32_t>& u32s(Scratch kind, int layer = 0, int a = 0,
                                   int b = 0);
  std::vector<std::uint8_t>& bytes(Scratch kind, int layer = 0, int a = 0,
                                   int b = 0);

  /// Number of distinct pooled buffers (all types) — warmup sizing metric.
  std::size_t pool_entries() const;

 private:
  static std::uint64_t key(Scratch kind, int layer, int a, int b);

  Arena arena_;
  std::unordered_map<std::uint64_t, Matrix> matrices_;
  std::unordered_map<std::uint64_t, std::vector<float>> floats_;
  std::unordered_map<std::uint64_t, std::vector<double>> doubles_;
  std::unordered_map<std::uint64_t, std::vector<int>> ints_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> u32s_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> bytes_;
};

}  // namespace adaqp::memory
