// Heap-allocation tracking — the instrument behind the zero-allocation
// steady-state invariant (docs/ARCHITECTURE.md, "Memory subsystem").
//
// Linking alloc_track.cpp into a binary replaces the global operator
// new/delete (every form) with thin counting wrappers over std::malloc /
// std::free. The counters are always on — two relaxed atomic increments per
// allocation, noise next to the allocation itself — so alloc_count() can be
// sampled around any region to measure its heap traffic. The TU is part of
// the adaqp static library and is pulled into a binary whenever anything it
// links references these symbols (DistTrainer always does), at which point
// the replacement is program-wide, as the C++ standard specifies for
// replaced allocation functions.
//
// ADAQP_ALLOC_TRACK=1 does not change what is counted; it arms the
// *assertion*: DistTrainer::train_epoch() then throws std::runtime_error
// with a per-phase breakdown if a qualifying steady-state epoch (see
// steady_state_definition() below) performs any heap allocation.
// bench/bench_alloc_steady_state.cpp drives the same check as a CI gate.
#pragma once

#include <cstdint>

namespace adaqp::memory {

/// Total global operator-new calls (all forms) since process start.
std::uint64_t alloc_count();
/// Total global operator-delete calls on non-null pointers.
std::uint64_t dealloc_count();

/// ADAQP_ALLOC_TRACK=1 (strict parse, cached on first call). Controls the
/// steady-state assertion, not the counting.
bool track_enabled();

/// The steady-state contract, for error messages and docs: an epoch counts
/// as steady state when it is not the warmup epoch (epoch 0), does not run
/// a bit-width plan refresh, and runs with evaluation, tracing, racecheck
/// and verbose reporting off.
const char* steady_state_definition();

}  // namespace adaqp::memory
