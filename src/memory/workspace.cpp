// lint:hot-path-file — steady-state epochs run through this TU; every
// allocation below must be warmup/build-time only (docs/ARCHITECTURE.md,
// "Memory subsystem").
#include "memory/workspace.h"

#include <algorithm>
#include <cstdint>

namespace adaqp::memory {

namespace {
constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }
}  // namespace

Arena::Arena(std::size_t min_chunk_bytes)
    : min_chunk_bytes_(align_up(std::max<std::size_t>(min_chunk_bytes, kAlign))) {}

void* Arena::allocate(std::size_t bytes) {
  bytes = align_up(bytes != 0 ? bytes : 1);
  // First fit over the retained chunks starting at the active one; chunks
  // are only appended, so a warm arena walks the same sequence every epoch.
  // `used` counts from each chunk's 64-byte-aligned base (the buffer is
  // over-allocated by kAlign), so used <= size always holds and every span
  // is aligned because both the base and all span sizes are.
  for (std::size_t i = active_; i < chunks_.size(); ++i) {
    Chunk& c = chunks_[i];
    if (c.size - c.used >= bytes) {
      const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
      void* p = c.data.get() + (align_up(base) - base) + c.used;
      c.used += bytes;
      active_ = i;
      return p;
    }
  }
  Chunk fresh;
  fresh.size = std::max(min_chunk_bytes_, bytes);
  // 64-byte alignment: new[] gives alignof(max_align_t); over-allocate and
  // round the base up instead of relying on aligned operator new (which the
  // alloc tracker also replaces, but this keeps the arena self-contained).
  fresh.data = std::make_unique<unsigned char[]>(fresh.size + kAlign);  // lint:allow(hot-path-alloc) chunk growth is warmup-only
  chunks_.push_back(std::move(fresh));  // lint:allow(hot-path-alloc) chunk growth is warmup-only
  active_ = chunks_.size() - 1;
  Chunk& c = chunks_.back();
  const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
  c.used = bytes;
  return c.data.get() + (align_up(base) - base);
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
}

std::size_t Arena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

std::size_t Arena::used_bytes() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.used;
  return total;
}

std::uint64_t Workspace::key(Scratch kind, int layer, int a, int b) {
  const auto k = static_cast<std::uint64_t>(kind);
  const auto l = static_cast<std::uint64_t>(layer) & 0xffffu;
  const auto ua = static_cast<std::uint64_t>(a) & 0xffffu;
  const auto ub = static_cast<std::uint64_t>(b) & 0xffffu;
  return (k << 48) | (l << 32) | (ua << 16) | ub;
}

Matrix& Workspace::matrix(Scratch kind, int layer, int a, int b) {
  return matrices_[key(kind, layer, a, b)];
}

std::vector<float>& Workspace::floats(Scratch kind, int layer, int a, int b) {
  return floats_[key(kind, layer, a, b)];
}

std::vector<double>& Workspace::doubles(Scratch kind, int layer, int a,
                                        int b) {
  return doubles_[key(kind, layer, a, b)];
}

std::vector<int>& Workspace::ints(Scratch kind, int layer, int a, int b) {
  return ints_[key(kind, layer, a, b)];
}

std::vector<std::uint32_t>& Workspace::u32s(Scratch kind, int layer, int a,
                                            int b) {
  return u32s_[key(kind, layer, a, b)];
}

std::vector<std::uint8_t>& Workspace::bytes(Scratch kind, int layer, int a,
                                            int b) {
  return bytes_[key(kind, layer, a, b)];
}

std::size_t Workspace::pool_entries() const {
  return matrices_.size() + floats_.size() + doubles_.size() + ints_.size() +
         u32s_.size() + bytes_.size();
}

}  // namespace adaqp::memory
