#include "memory/alloc_track.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/env.h"

namespace {

constinit std::atomic<std::uint64_t> g_allocs{0};
constinit std::atomic<std::uint64_t> g_deallocs{0};

/// Allocate `size` bytes (never 0) or return nullptr. All replaced operator
/// new forms funnel through here / through aligned_alloc_counted, so the
/// counters see every heap allocation regardless of which form fired.
void* alloc_counted(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* aligned_alloc_counted(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}

void free_counted(void* p) noexcept {
  if (p == nullptr) return;
  g_deallocs.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

/// Standard retry loop for the throwing forms: give the installed
/// new-handler a chance to free memory before giving up.
template <typename Alloc>
void* alloc_or_throw(Alloc alloc) {
  for (;;) {
    if (void* p = alloc()) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

namespace adaqp::memory {

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t dealloc_count() {
  return g_deallocs.load(std::memory_order_relaxed);
}

bool track_enabled() {
  static const bool on = env::flag01("ADAQP_ALLOC_TRACK", false);
  return on;
}

const char* steady_state_definition() {
  return "steady-state epoch = any epoch after the first that does not run "
         "a bit-width plan refresh, with evaluation, ADAQP_TRACE, "
         "ADAQP_RACECHECK and verbose reporting off, over a zero-allocation "
         "transport (loopback; wire backends buffer by design)";
}

}  // namespace adaqp::memory

// ---- Replaced global allocation functions ----------------------------------
//
// Every form is replaced so nothing escapes the count: plain, array,
// nothrow, aligned, and the matching sized/aligned deletes. Allocation goes
// through std::malloc, so sanitizer runs still intercept the underlying
// allocation (ASan/TSan wrap malloc, not just operator new).

void* operator new(std::size_t size) {
  return alloc_or_throw([size] { return alloc_counted(size); });
}

void* operator new[](std::size_t size) {
  return alloc_or_throw([size] { return alloc_counted(size); });
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return alloc_counted(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return alloc_counted(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return alloc_or_throw([size, align] {
    return aligned_alloc_counted(size, static_cast<std::size_t>(align));
  });
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return alloc_or_throw([size, align] {
    return aligned_alloc_counted(size, static_cast<std::size_t>(align));
  });
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return aligned_alloc_counted(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return aligned_alloc_counted(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { free_counted(p); }
void operator delete[](void* p) noexcept { free_counted(p); }
void operator delete(void* p, std::size_t) noexcept { free_counted(p); }
void operator delete[](void* p, std::size_t) noexcept { free_counted(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  free_counted(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  free_counted(p);
}
void operator delete(void* p, std::align_val_t) noexcept { free_counted(p); }
void operator delete[](void* p, std::align_val_t) noexcept { free_counted(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  free_counted(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  free_counted(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  free_counted(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  free_counted(p);
}
