// Deterministic task-parallel execution engine for the simulated cluster.
//
// The pool is deliberately work-stealing-free: a parallel region is a fixed
// batch of independent tasks claimed from a shared ticket counter, so the
// only scheduling freedom is *which thread* runs a task, never *what* a task
// computes. Every parallel decomposition in the library is designed so that
// task boundaries cannot change results (disjoint writes, per-element
// accumulation order fixed by the loop nest, per-device RNG streams), which
// makes multi-threaded runs bit-identical to ADAQP_THREADS=1 runs by
// construction — the invariant tests/test_runtime.cpp enforces.
//
// Steady-state allocation contract (docs/ARCHITECTURE.md): dispatching a
// parallel region performs no heap allocation. The primary run() form takes
// a plain function pointer + context (no std::function), the batch slot is
// embedded in the pool, and the detached queue is a ring buffer that grows
// only while warming up. Detached submissions stay allocation-free as long
// as the submitted closure fits std::function's small-buffer optimization
// (16 bytes on libstdc++ — two pointers; StageGraph's resubmissions do).
//
// Thread count resolution: the ADAQP_THREADS environment variable if set
// (clamped to [1, 256]), otherwise std::thread::hardware_concurrency().
// Tests and tools can override at runtime with set_num_threads().
#pragma once

#include <cstddef>
#include <functional>

namespace adaqp {

class ThreadPool {
 public:
  /// Plain-function batch task: fn(task_index, ctx).
  using RawTask = void (*)(std::size_t, void*);

  /// Spawns num_threads - 1 workers; the calling thread participates in
  /// every parallel region, so num_threads == 1 spawns nothing.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i, ctx) exactly once for every i in [0, num_tasks), blocking
  /// until all complete. Tasks are claimed via an atomic ticket counter (no
  /// stealing, no re-execution). Calls from inside a pool task run the whole
  /// batch inline on the calling thread — nested parallelism collapses to
  /// serial instead of deadlocking. The first exception thrown by any task
  /// is rethrown on the calling thread after the batch finishes. Performs no
  /// heap allocation. Only one external thread may drive batches (the
  /// library's single-driver model); concurrent external run() calls are
  /// not supported.
  void run(std::size_t num_tasks, RawTask fn, void* ctx);

  /// Convenience adapter over the raw form (the std::function itself is the
  /// context; no allocation beyond what the caller's function holds).
  void run(std::size_t num_tasks,
           const std::function<void(std::size_t)>& task);

  /// True when the calling thread is currently executing a pool task (used
  /// to collapse nested parallel regions).
  static bool in_worker();

  /// Enqueue one detached task. Workers drain the detached queue whenever no
  /// parallel batch is pending; threads blocked in pipeline::Event::wait()
  /// help drain it too, so detached work always makes progress even on a
  /// 1-thread pool (where there are no workers at all). Detached tasks run
  /// with the in-worker marker set, so nested parallel regions inside them
  /// collapse to inline execution exactly like batch tasks.
  void submit(std::function<void()> fn);

  /// Pop and run one pending detached task on the calling thread. Returns
  /// false when the queue is empty (a task currently *running* elsewhere is
  /// not pending). This is the help primitive behind pipeline::Event::wait.
  bool try_run_one_detached();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
  int num_threads_ = 1;
};

/// The process-wide pool, created lazily with configured_threads().
ThreadPool& global_pool();

/// Thread count of the global pool.
int num_threads();

/// Replace the global pool with an n-thread one (n clamped to >= 1). Must
/// not be called while parallel work is in flight; intended for tests,
/// benches and tools that sweep thread counts within one process.
void set_num_threads(int n);

/// Thread count requested by the environment: ADAQP_THREADS when set and
/// valid, otherwise hardware concurrency (always >= 1).
int configured_threads();

}  // namespace adaqp
