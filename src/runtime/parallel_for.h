// Data-parallel loop and task-group primitives on top of the thread pool.
//
// parallel_for splits an index range into at most num_threads() contiguous
// chunks. Chunk boundaries are a pure function of (n, grain, thread count),
// and every kernel built on it keeps per-element arithmetic independent of
// the banding (disjoint writes, fixed per-element accumulation order), so
// results are bit-identical for every thread count. Nested regions run
// inline on the calling worker.
//
// Both loops dispatch through ThreadPool's raw function-pointer form with a
// stack-allocated context, so entering a parallel region performs no heap
// allocation — part of the steady-state contract (docs/ARCHITECTURE.md).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace adaqp {

/// Run body(begin, end) over a static partition of [0, n) with at least
/// `grain` indices per chunk. body must treat each index independently.
template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body) {
  if (n == 0) return;
  if (ThreadPool::in_worker()) {  // nested region: inline, skip pool lookup
    body(static_cast<std::size_t>(0), n);
    return;
  }
  if (grain == 0) grain = 1;
  ThreadPool& pool = global_pool();
  const std::size_t max_chunks = static_cast<std::size_t>(pool.num_threads());
  const std::size_t chunks = std::min(max_chunks, (n + grain - 1) / grain);
  if (chunks <= 1) {
    body(static_cast<std::size_t>(0), n);
    return;
  }
  using BodyT = std::remove_reference_t<Body>;
  struct Ctx {
    BodyT* body;
    std::size_t base;
    std::size_t rem;
  } ctx{std::addressof(body), n / chunks, n % chunks};
  pool.run(
      chunks,
      [](std::size_t c, void* p) {
        Ctx& cx = *static_cast<Ctx*>(p);
        const std::size_t begin = c * cx.base + std::min(c, cx.rem);
        const std::size_t end = begin + cx.base + (c < cx.rem ? 1 : 0);
        (*cx.body)(begin, end);
      },
      &ctx);
}

/// Run body(i) as one pool task per index — the per-device task form used by
/// the trainer and the halo-exchange phases.
template <typename Body>
void parallel_for_each(std::size_t n, Body&& body) {
  if (n == 0) return;
  if (n == 1 || ThreadPool::in_worker()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool& pool = global_pool();
  if (pool.num_threads() <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  using BodyT = std::remove_reference_t<Body>;
  pool.run(
      n, [](std::size_t i, void* p) { (*static_cast<BodyT*>(p))(i); },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// A batch of heterogeneous tasks (typically one per simulated device)
/// executed together on the global pool.
class TaskGroup {
 public:
  void add(std::function<void()> fn) { tasks_.push_back(std::move(fn)); }
  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  /// Run every added task (blocking), then clear the group for reuse.
  void run_and_clear() {
    parallel_for_each(tasks_.size(), [this](std::size_t i) { tasks_[i](); });
    tasks_.clear();
  }

 private:
  std::vector<std::function<void()>> tasks_;
};

}  // namespace adaqp
