#include "runtime/thread_pool.h"

#include "common/env.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace adaqp {

namespace {

thread_local bool t_in_pool_task = false;

/// RAII marker so nested parallel regions collapse to inline execution on
/// both workers and the participating caller thread.
struct InTaskScope {
  bool prev;
  InTaskScope() : prev(t_in_pool_task) { t_in_pool_task = true; }
  ~InTaskScope() { t_in_pool_task = prev; }
};

}  // namespace

struct ThreadPool::Impl {
  /// One submitted parallel region. Workers hold it by shared_ptr, so a
  /// worker that wakes late (after the batch completed and a new one was
  /// submitted) still claims tickets from *its* batch — the counter is
  /// exhausted, so it runs nothing — and can never touch a later batch's
  /// tickets or a destroyed task function. The task pointer stays valid
  /// for the batch's lifetime because run() returns only once every
  /// claimed ticket has been executed and counted (remaining == 0).
  struct Batch {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t total = 0;
    std::atomic<std::size_t> next_ticket{0};
    std::size_t remaining = 0;  ///< unfinished tasks; guarded by Impl::mu
    std::exception_ptr error;   ///< first task exception; guarded by Impl::mu
  };

  std::mutex mu;
  std::condition_variable cv_work;  ///< workers wait here for a new batch
  std::condition_variable cv_done;  ///< callers wait here for completion

  std::shared_ptr<Batch> batch;  ///< most recently submitted batch
  std::uint64_t epoch = 0;       ///< bumped per submission (wake filter)
  bool stop = false;

  /// Detached tasks (pipeline stages). FIFO; guarded by mu. Batches take
  /// priority so parallel_for latency is unaffected by queued stages.
  std::deque<std::function<void()>> detached;

  std::vector<std::thread> workers;

  /// Claim and run tasks until the batch's ticket counter runs dry; account
  /// the finished count and wake the caller when the batch completes.
  void work_on_batch(Batch& b) {
    InTaskScope scope;
    std::size_t done_here = 0;
    for (;;) {
      const std::size_t i =
          b.next_ticket.fetch_add(1, std::memory_order_relaxed);
      if (i >= b.total) break;
      try {
        (*b.task)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!b.error) b.error = std::current_exception();
      }
      ++done_here;
    }
    if (done_here > 0) {
      std::lock_guard<std::mutex> lk(mu);
      b.remaining -= done_here;
      if (b.remaining == 0) cv_done.notify_all();
    }
  }

  /// Pop one detached task; empty function when the queue is dry.
  std::function<void()> pop_detached() {
    std::lock_guard<std::mutex> lk(mu);
    if (detached.empty()) return {};
    std::function<void()> fn = std::move(detached.front());
    detached.pop_front();
    return fn;
  }

  void worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      std::shared_ptr<Batch> b;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] {
          return stop || epoch != seen_epoch || !detached.empty();
        });
        if (stop) return;
        if (epoch != seen_epoch) {
          seen_epoch = epoch;
          b = batch;
        }
      }
      if (b) work_on_batch(*b);
      // Drain detached tasks, yielding to a newly submitted batch between
      // tasks — batch priority holds during the drain, not only at the
      // wait predicate.
      for (;;) {
        {
          std::lock_guard<std::mutex> lk(mu);
          if (stop || epoch != seen_epoch) break;
        }
        if (!run_one_detached()) break;
      }
    }
  }

  /// Run one detached task inline if any is queued. Detached tasks must
  /// handle their own errors (StageGraph captures them per stage); an
  /// exception escaping one would otherwise kill the worker thread, so it
  /// is swallowed here as a last resort.
  bool run_one_detached() {
    auto fn = pop_detached();
    if (!fn) return false;
    InTaskScope scope;
    try {
      fn();
    } catch (...) {
    }
    return true;
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl), num_threads_(num_threads < 1 ? 1 : num_threads) {
  impl_->workers.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t)
    impl_->workers.emplace_back([im = impl_] { im->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

bool ThreadPool::in_worker() { return t_in_pool_task; }

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->detached.push_back(std::move(fn));
  }
  impl_->cv_work.notify_all();
}

bool ThreadPool::try_run_one_detached() { return impl_->run_one_detached(); }

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  if (num_threads_ <= 1 || num_tasks == 1 || in_worker()) {
    // Inline path: exceptions propagate directly; a nested call never
    // touches the pool state, so outer batches are unaffected.
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  Impl* im = impl_;
  auto batch = std::make_shared<Impl::Batch>();
  batch->task = &task;
  batch->total = num_tasks;
  batch->remaining = num_tasks;
  {
    std::lock_guard<std::mutex> lk(im->mu);
    im->batch = batch;
    ++im->epoch;
  }
  im->cv_work.notify_all();
  im->work_on_batch(*batch);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(im->mu);
    im->cv_done.wait(lk, [&] { return batch->remaining == 0; });
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
std::atomic<ThreadPool*> g_pool_fast{nullptr};  ///< lock-free lookup path

}  // namespace

int configured_threads() {
  // Strict parse (docs/ENVVARS.md): a malformed ADAQP_THREADS throws rather
  // than silently running on the hardware default; parsed values clamp to
  // [1, 256].
  if (const auto v = env::int_in_range("ADAQP_THREADS", 1, 256))
    return static_cast<int>(*v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& global_pool() {
  if (ThreadPool* p = g_pool_fast.load(std::memory_order_acquire)) return *p;
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(configured_threads());
    g_pool_fast.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

int num_threads() { return global_pool().num_threads(); }

void set_num_threads(int n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool_fast.store(nullptr, std::memory_order_release);
  g_pool.reset();  // joins the old workers before the new pool exists
  g_pool = std::make_unique<ThreadPool>(n < 1 ? 1 : n);
  g_pool_fast.store(g_pool.get(), std::memory_order_release);
}

}  // namespace adaqp
