// lint:hot-path-file — steady-state epochs run through this TU; every
// allocation below must be warmup/build-time only (docs/ARCHITECTURE.md,
// "Memory subsystem").
#include "runtime/thread_pool.h"

#include "common/env.h"
#include "obs/metrics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace adaqp {

namespace {

thread_local bool t_in_pool_task = false;

/// RAII marker so nested parallel regions collapse to inline execution on
/// both workers and the participating caller thread.
struct InTaskScope {
  bool prev;
  InTaskScope() : prev(t_in_pool_task) { t_in_pool_task = true; }
  ~InTaskScope() { t_in_pool_task = prev; }
};

}  // namespace

struct ThreadPool::Impl {
  /// The one reusable parallel-region slot. A new batch may only be
  /// installed once the previous one has fully quiesced (remaining == 0 and
  /// inside == 0), which is what makes reuse safe without per-batch heap
  /// allocation: a straggler worker that woke for an old epoch and is still
  /// inside work_on_batch() holds `inside`, so fn/ctx/next_ticket are never
  /// repurposed under it — its ticket fetches simply run dry.
  struct Batch {
    RawTask fn = nullptr;
    void* ctx = nullptr;
    std::size_t total = 0;
    std::atomic<std::size_t> next_ticket{0};
    std::size_t remaining = 0;  ///< unfinished tasks; guarded by Impl::mu
    std::size_t inside = 0;     ///< threads in work_on_batch; guarded by mu
    std::exception_ptr error;   ///< first task exception; guarded by mu
  };

  std::mutex mu;
  std::condition_variable cv_work;  ///< workers wait here for a new batch
  std::condition_variable cv_done;  ///< callers wait here for completion

  Batch batch;              ///< reusable slot (see above)
  std::uint64_t epoch = 0;  ///< bumped per submission (wake filter)
  bool stop = false;

  /// Detached tasks (pipeline stages). FIFO ring buffer guarded by mu,
  /// pre-sized at pool construction so steady-state submit/pop cycles never
  /// touch the heap — growth beyond the initial capacity doubles (order
  /// preserved) but would happen on whichever thread submits, possibly a
  /// worker mid-epoch, so the initial size is chosen far above any real
  /// stage fan-out. Batches take priority so parallel_for latency is
  /// unaffected by queued stages.
  std::vector<std::function<void()>> detached =
      std::vector<std::function<void()>>(256);
  std::size_t detached_head = 0;
  std::size_t detached_count = 0;

  std::vector<std::thread> workers;

  void push_detached_locked(std::function<void()>&& fn) {
    if (detached_count == detached.size()) {
      const std::size_t cap = detached.empty() ? 16 : detached.size() * 2;
      std::vector<std::function<void()>> grown(cap);
      for (std::size_t i = 0; i < detached_count; ++i)
        grown[i] = std::move(detached[(detached_head + i) % detached.size()]);
      detached = std::move(grown);
      detached_head = 0;
    }
    detached[(detached_head + detached_count) % detached.size()] =
        std::move(fn);
    ++detached_count;
    obs::instruments().pool_detached_depth.set(
        static_cast<std::int64_t>(detached_count));
  }

  /// Claim and run tasks until the slot's ticket counter runs dry; account
  /// the finished count and wake the caller when the batch completes. The
  /// caller must have incremented batch.inside under mu *before* entry
  /// (that publication order is what keeps fn/ctx readable without mu).
  void work_on_batch() {
    InTaskScope scope;
    const RawTask fn = batch.fn;
    void* const ctx = batch.ctx;
    const std::size_t total = batch.total;
    std::size_t done_here = 0;
    for (;;) {
      const std::size_t i =
          batch.next_ticket.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      try {
        fn(i, ctx);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!batch.error) batch.error = std::current_exception();
      }
      ++done_here;
    }
    if (done_here > 0) obs::instruments().pool_tasks.add(done_here);
    {
      std::lock_guard<std::mutex> lk(mu);
      --batch.inside;
      if (done_here > 0) batch.remaining -= done_here;
      if (batch.remaining == 0 || batch.inside == 0) cv_done.notify_all();
    }
  }

  /// Pop one detached task; empty function when the queue is dry.
  std::function<void()> pop_detached() {
    std::lock_guard<std::mutex> lk(mu);
    if (detached_count == 0) return {};
    std::function<void()> fn = std::move(detached[detached_head]);
    detached[detached_head] = nullptr;  // drop any residual target
    detached_head = (detached_head + 1) % detached.size();
    --detached_count;
    obs::instruments().pool_detached_depth.set(
        static_cast<std::int64_t>(detached_count));
    return fn;
  }

  void worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      bool participate = false;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] {
          return stop || epoch != seen_epoch || detached_count != 0;
        });
        if (stop) return;
        if (epoch != seen_epoch) {
          seen_epoch = epoch;
          ++batch.inside;  // published under mu before touching the slot
          participate = true;
        }
      }
      if (participate) work_on_batch();
      // Drain detached tasks, yielding to a newly submitted batch between
      // tasks — batch priority holds during the drain, not only at the
      // wait predicate.
      for (;;) {
        {
          std::lock_guard<std::mutex> lk(mu);
          if (stop || epoch != seen_epoch) break;
        }
        if (!run_one_detached()) break;
      }
    }
  }

  /// Run one detached task inline if any is queued. Detached tasks must
  /// handle their own errors (StageGraph captures them per stage); an
  /// exception escaping one would otherwise kill the worker thread, so it
  /// is swallowed here as a last resort.
  bool run_one_detached() {
    auto fn = pop_detached();
    if (!fn) return false;
    InTaskScope scope;
    try {
      fn();
    } catch (...) {
    }
    obs::instruments().pool_detached_tasks.add(1);
    return true;
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl), num_threads_(num_threads < 1 ? 1 : num_threads) {  // lint:allow(hot-path-alloc) ctor
  impl_->workers.reserve(static_cast<std::size_t>(num_threads_ - 1));  // lint:allow(hot-path-alloc) ctor
  for (int t = 1; t < num_threads_; ++t)
    impl_->workers.emplace_back([im = impl_] { im->worker_loop(); });  // lint:allow(hot-path-alloc) ctor
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

bool ThreadPool::in_worker() { return t_in_pool_task; }

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->push_detached_locked(std::move(fn));
  }
  impl_->cv_work.notify_all();
}

bool ThreadPool::try_run_one_detached() { return impl_->run_one_detached(); }

void ThreadPool::run(std::size_t num_tasks, RawTask fn, void* ctx) {
  if (num_tasks == 0) return;
  if (num_threads_ <= 1 || num_tasks == 1 || in_worker()) {
    // Inline path: exceptions propagate directly; a nested call never
    // touches the pool state, so outer batches are unaffected.
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i, ctx);
    obs::instruments().pool_tasks.add(num_tasks);
    return;
  }
  Impl* im = impl_;
  {
    std::unique_lock<std::mutex> lk(im->mu);
    // Wait for full quiescence of the previous batch before reusing the
    // slot — stragglers from an old epoch may still be inside (ticket-dry;
    // see Impl::Batch).
    im->cv_done.wait(lk, [&] {
      return im->batch.remaining == 0 && im->batch.inside == 0;
    });
    im->batch.fn = fn;
    im->batch.ctx = ctx;
    im->batch.total = num_tasks;
    im->batch.next_ticket.store(0, std::memory_order_relaxed);
    im->batch.remaining = num_tasks;
    im->batch.inside = 1;  // the caller participates
    im->batch.error = nullptr;
    ++im->epoch;
  }
  im->cv_work.notify_all();
  im->work_on_batch();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(im->mu);
    im->cv_done.wait(lk, [&] { return im->batch.remaining == 0; });
    error = im->batch.error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& task) {
  run(
      num_tasks,
      [](std::size_t i, void* ctx) {
        (*static_cast<const std::function<void(std::size_t)>*>(ctx))(i);
      },
      const_cast<void*>(static_cast<const void*>(&task)));
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
std::atomic<ThreadPool*> g_pool_fast{nullptr};  ///< lock-free lookup path

}  // namespace

int configured_threads() {
  // Strict parse (docs/ENVVARS.md): a malformed ADAQP_THREADS throws rather
  // than silently running on the hardware default; parsed values clamp to
  // [1, 256].
  if (const auto v = env::int_in_range("ADAQP_THREADS", 1, 256))
    return static_cast<int>(*v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& global_pool() {
  if (ThreadPool* p = g_pool_fast.load(std::memory_order_acquire)) return *p;
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(configured_threads());  // lint:allow(hot-path-alloc) one-time pool creation
    g_pool_fast.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

int num_threads() { return global_pool().num_threads(); }

void set_num_threads(int n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool_fast.store(nullptr, std::memory_order_release);
  g_pool.reset();  // joins the old workers before the new pool exists
  g_pool = std::make_unique<ThreadPool>(n < 1 ? 1 : n);  // lint:allow(hot-path-alloc) pool rebuild, never mid-epoch
  g_pool_fast.store(g_pool.get(), std::memory_order_release);
}

}  // namespace adaqp
