// Synthetic graph generators.
//
// These supply the topology side of the dataset substitutes (DESIGN.md §2):
// the paper's benchmark graphs are modeled by a degree-corrected stochastic
// block model whose density, block structure, and degree skew are
// parameterized per dataset in src/data. Simpler generators (ER, R-MAT,
// ring/star/grid) serve tests and micro-benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace adaqp {

class Rng;

/// G(n, m)-style Erdős–Rényi: sample `target_edges` distinct undirected edges.
Graph erdos_renyi(std::size_t n, std::size_t target_edges, Rng& rng);

/// Recursive-matrix (R-MAT) generator with standard (a,b,c,d) quadrant
/// probabilities; produces the heavy-tailed degree distributions typical of
/// web/social graphs. `scale` gives n = 2^scale nodes.
Graph rmat(unsigned scale, std::size_t target_edges, double a, double b,
           double c, Rng& rng);

/// Parameters for the degree-corrected stochastic block model.
struct DcSbmParams {
  std::size_t num_nodes = 0;
  std::size_t num_blocks = 1;
  double avg_degree = 10.0;       ///< expected mean (directed) degree / 2
  double intra_prob = 0.8;        ///< fraction of a node's edges inside block
  double degree_exponent = 2.5;   ///< power-law exponent of degree propensity
  std::size_t max_degree_cap = 0; ///< 0 => num_nodes / 4
  /// Block-size heterogeneity: size of block b ∝ (b+1)^-block_size_exponent
  /// (0 = equal-sized blocks). Real community structures are skewed, which
  /// is what makes pairwise communication volumes unbalanced (paper Fig. 2).
  double block_size_exponent = 0.0;
};

struct DcSbm {
  Graph graph;
  std::vector<int> block_of;  ///< planted block per node
};

/// Degree-corrected SBM: node degree propensities follow a power law and
/// each edge endpoint picks intra- vs inter-block targets by intra_prob.
DcSbm dc_sbm(const DcSbmParams& params, Rng& rng);

// ---- Small deterministic graphs for tests ----------------------------------

Graph ring_graph(std::size_t n);
Graph star_graph(std::size_t n);             ///< node 0 is the hub
Graph complete_graph(std::size_t n);
Graph grid_graph(std::size_t rows, std::size_t cols);
Graph path_graph(std::size_t n);

}  // namespace adaqp
