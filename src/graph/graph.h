// Compressed-sparse-row graph storage — the library's substitute for DGL's
// graph representation.
//
// Graphs are simple (no self-loops, no multi-edges) and stored symmetrically:
// every undirected edge {u,v} appears as both (u,v) and (v,u) in the CSR
// arrays. GNN layers add the self-loop term analytically (Eqn. 3 of the
// paper), so it is never materialized here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adaqp {

using NodeId = std::uint32_t;
using EdgeIdx = std::uint64_t;

class Graph {
 public:
  Graph() = default;
  /// Construct from prebuilt CSR arrays (validated).
  Graph(std::vector<EdgeIdx> offsets, std::vector<NodeId> neighbors);

  std::size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of *directed* CSR entries; undirected edge count is half this.
  std::size_t num_directed_edges() const { return neighbors_.size(); }
  std::size_t num_undirected_edges() const { return neighbors_.size() / 2; }

  std::size_t degree(NodeId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_.data() + offsets_[v], degree(v)};
  }

  const std::vector<EdgeIdx>& offsets() const { return offsets_; }
  const std::vector<NodeId>& neighbor_array() const { return neighbors_; }

  bool has_edge(NodeId u, NodeId v) const;

  double average_degree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_directed_edges()) / num_nodes();
  }
  std::size_t max_degree() const;

 private:
  // offsets_[v]..offsets_[v+1] delimit v's neighbor list (sorted ascending).
  std::vector<EdgeIdx> offsets_;
  std::vector<NodeId> neighbors_;
};

/// Build a simple undirected graph from an edge list: symmetrizes, drops
/// self-loops and duplicate edges, and sorts each adjacency list.
Graph build_graph(std::size_t num_nodes,
                  std::span<const std::pair<NodeId, NodeId>> edges);

/// Convenience overload.
Graph build_graph(std::size_t num_nodes,
                  const std::vector<std::pair<NodeId, NodeId>>& edges);

/// Induce the subgraph on `keep` (indices into the original graph). The k-th
/// entry of `keep` becomes node k. Returns the subgraph; `keep` must be
/// duplicate-free.
Graph induced_subgraph(const Graph& g, std::span<const NodeId> keep);

/// Number of undirected edges whose endpoints lie in different parts.
std::size_t edge_cut(const Graph& g, std::span<const int> part_of);

}  // namespace adaqp
