#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace adaqp {

namespace {

/// 64-bit key for an undirected edge with u < v.
std::uint64_t edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph erdos_renyi(std::size_t n, std::size_t target_edges, Rng& rng) {
  ADAQP_CHECK(n >= 2);
  const std::size_t max_edges = n * (n - 1) / 2;
  target_edges = std::min(target_edges, max_edges);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(target_edges);
  while (edges.size() < target_edges) {
    const auto u = static_cast<NodeId>(rng.uniform_int(n));
    const auto v = static_cast<NodeId>(rng.uniform_int(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second)
      edges.emplace_back(u, v);
  }
  return build_graph(n, edges);
}

Graph rmat(unsigned scale, std::size_t target_edges, double a, double b,
           double c, Rng& rng) {
  ADAQP_CHECK(scale >= 1 && scale <= 28);
  const double d = 1.0 - a - b - c;
  ADAQP_CHECK_MSG(d >= 0.0, "R-MAT quadrant probs sum > 1");
  const std::size_t n = std::size_t{1} << scale;
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(target_edges);
  // Allow some retries; extremely skewed parameter sets may saturate early.
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 50 + 1000;
  while (edges.size() < target_edges && attempts++ < max_attempts) {
    NodeId u = 0, v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
  }
  return build_graph(n, edges);
}

DcSbm dc_sbm(const DcSbmParams& params, Rng& rng) {
  const std::size_t n = params.num_nodes;
  const std::size_t blocks = params.num_blocks;
  ADAQP_CHECK(n >= 2 && blocks >= 1 && blocks <= n);
  ADAQP_CHECK(params.intra_prob >= 0.0 && params.intra_prob <= 1.0);

  DcSbm out;
  out.block_of.resize(n);
  // Contiguous block assignment keeps planted structure easy to reason about
  // in tests; partitioners never see block_of, so this does not leak labels.
  // Block sizes follow (b+1)^-e so community sizes (and therefore pairwise
  // communication volumes after partitioning) are heterogeneous.
  {
    std::vector<double> weight(blocks);
    double total = 0.0;
    for (std::size_t b = 0; b < blocks; ++b) {
      weight[b] = std::pow(static_cast<double>(b + 1),
                           -params.block_size_exponent);
      total += weight[b];
    }
    std::size_t at = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      std::size_t count = b + 1 == blocks
                              ? n - at
                              : std::max<std::size_t>(
                                    1, static_cast<std::size_t>(
                                           weight[b] / total *
                                           static_cast<double>(n)));
      count = std::min(count, n - at);
      for (std::size_t i = 0; i < count; ++i)
        out.block_of[at + i] = static_cast<int>(b);
      at += count;
      if (at >= n) {
        for (std::size_t v = at; v < n; ++v)
          out.block_of[v] = static_cast<int>(blocks - 1);
        break;
      }
    }
  }

  // Per-block member lists for endpoint sampling.
  std::vector<std::vector<NodeId>> members(blocks);
  for (std::size_t v = 0; v < n; ++v)
    members[out.block_of[v]].push_back(static_cast<NodeId>(v));

  // Degree propensities: power law, normalized per block so each node's
  // chance of being picked as a target is proportional to its propensity.
  const std::size_t cap =
      params.max_degree_cap ? params.max_degree_cap : std::max<std::size_t>(n / 4, 2);
  std::vector<double> propensity(n);
  for (std::size_t v = 0; v < n; ++v)
    propensity[v] =
        static_cast<double>(rng.power_law(params.degree_exponent, cap));

  // Alias-free cumulative sampling per block (graphs here are small enough
  // that binary search over a prefix-sum array is fine).
  std::vector<std::vector<double>> block_cdf(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    auto& cdf = block_cdf[b];
    cdf.reserve(members[b].size());
    double acc = 0.0;
    for (NodeId v : members[b]) {
      acc += propensity[v];
      cdf.push_back(acc);
    }
  }
  auto sample_from_block = [&](std::size_t b) -> NodeId {
    const auto& cdf = block_cdf[b];
    const double r = rng.uniform() * cdf.back();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    return members[b][static_cast<std::size_t>(it - cdf.begin())];
  };

  const auto target_edges =
      static_cast<std::size_t>(params.avg_degree * static_cast<double>(n) / 2.0);
  std::vector<double> block_totals(blocks, 0.0);
  double total = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    block_totals[b] = block_cdf[b].empty() ? 0.0 : block_cdf[b].back();
    total += block_totals[b];
  }
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(target_edges);
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 50 + 1000;
  while (edges.size() < target_edges && attempts++ < max_attempts) {
    // Source node weighted by propensity over the whole graph: pick a block
    // proportional to its total propensity, then a node inside it.
    double r = rng.uniform() * total;
    std::size_t src_block = 0;
    while (src_block + 1 < blocks && r >= block_totals[src_block]) {
      r -= block_totals[src_block];
      ++src_block;
    }
    const NodeId u = sample_from_block(src_block);
    // Inter-block edges decay harmonically with block distance: nearby
    // communities interact more, which is what skews pairwise communication
    // volumes after partitioning (paper Fig. 2).
    std::size_t dst_block = src_block;
    if (!rng.bernoulli(params.intra_prob) && blocks > 1) {
      double harm = 0.0;
      for (std::size_t o = 1; o < blocks; ++o) harm += 1.0 / o;
      double r2 = rng.uniform() * harm;
      std::size_t offset = 1;
      while (offset + 1 < blocks && r2 >= 1.0 / offset) {
        r2 -= 1.0 / offset;
        ++offset;
      }
      dst_block = rng.bernoulli(0.5) ? (src_block + offset) % blocks
                                     : (src_block + blocks - offset) % blocks;
    }
    const NodeId v = sample_from_block(dst_block);
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
  }
  out.graph = build_graph(n, edges);
  return out;
}

Graph ring_graph(std::size_t n) {
  ADAQP_CHECK(n >= 3);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n);
  for (std::size_t v = 0; v < n; ++v)
    edges.emplace_back(static_cast<NodeId>(v), static_cast<NodeId>((v + 1) % n));
  return build_graph(n, edges);
}

Graph star_graph(std::size_t n) {
  ADAQP_CHECK(n >= 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n - 1);
  for (std::size_t v = 1; v < n; ++v)
    edges.emplace_back(0, static_cast<NodeId>(v));
  return build_graph(n, edges);
}

Graph complete_graph(std::size_t n) {
  ADAQP_CHECK(n >= 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = u + 1; v < n; ++v)
      edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  return build_graph(n, edges);
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  ADAQP_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  return build_graph(rows * cols, edges);
}

Graph path_graph(std::size_t n) {
  ADAQP_CHECK(n >= 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::size_t v = 0; v + 1 < n; ++v)
    edges.emplace_back(static_cast<NodeId>(v), static_cast<NodeId>(v + 1));
  return build_graph(n, edges);
}

}  // namespace adaqp
