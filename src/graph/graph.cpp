#include "graph/graph.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace adaqp {

Graph::Graph(std::vector<EdgeIdx> offsets, std::vector<NodeId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  ADAQP_CHECK(!offsets_.empty());
  ADAQP_CHECK(offsets_.front() == 0);
  ADAQP_CHECK(offsets_.back() == neighbors_.size());
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v)
    ADAQP_CHECK(offsets_[v] <= offsets_[v + 1]);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::size_t Graph::max_degree() const {
  std::size_t m = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v)
    m = std::max(m, degree(static_cast<NodeId>(v)));
  return m;
}

Graph build_graph(std::size_t num_nodes,
                  std::span<const std::pair<NodeId, NodeId>> edges) {
  // Symmetrize into a flat directed edge list, dropping self-loops.
  std::vector<std::pair<NodeId, NodeId>> directed;
  directed.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    ADAQP_CHECK_MSG(u < num_nodes && v < num_nodes,
                    "edge (" << u << "," << v << ") out of range " << num_nodes);
    if (u == v) continue;
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()), directed.end());

  std::vector<EdgeIdx> offsets(num_nodes + 1, 0);
  for (const auto& [u, v] : directed) offsets[u + 1]++;
  for (std::size_t v = 0; v < num_nodes; ++v) offsets[v + 1] += offsets[v];
  std::vector<NodeId> neighbors(directed.size());
  for (std::size_t i = 0; i < directed.size(); ++i)
    neighbors[i] = directed[i].second;
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph build_graph(std::size_t num_nodes,
                  const std::vector<std::pair<NodeId, NodeId>>& edges) {
  return build_graph(num_nodes,
                     std::span<const std::pair<NodeId, NodeId>>(edges));
}

Graph induced_subgraph(const Graph& g, std::span<const NodeId> keep) {
  std::unordered_map<NodeId, NodeId> to_local;
  to_local.reserve(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const bool inserted =
        to_local.emplace(keep[i], static_cast<NodeId>(i)).second;
    ADAQP_CHECK_MSG(inserted, "duplicate node " << keep[i] << " in keep set");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (NodeId nbr : g.neighbors(keep[i])) {
      auto it = to_local.find(nbr);
      if (it != to_local.end() && keep[i] < nbr)
        edges.emplace_back(static_cast<NodeId>(i), it->second);
    }
  }
  return build_graph(keep.size(), edges);
}

std::size_t edge_cut(const Graph& g, std::span<const int> part_of) {
  ADAQP_CHECK(part_of.size() == g.num_nodes());
  std::size_t cut = 0;
  for (std::size_t v = 0; v < g.num_nodes(); ++v)
    for (NodeId u : g.neighbors(static_cast<NodeId>(v)))
      if (v < u && part_of[v] != part_of[u]) ++cut;
  return cut;
}

}  // namespace adaqp
