#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace adaqp {

namespace {

bool is_comment(const std::string& line) {
  for (char ch : line) {
    if (ch == ' ' || ch == '\t') continue;
    return ch == '#' || ch == '%';
  }
  return true;  // blank line
}

std::ifstream open_input(const std::string& path) {
  std::ifstream in(path);
  ADAQP_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  return in;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream out(path);
  ADAQP_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  return out;
}

}  // namespace

Graph read_edge_list(std::istream& in, std::size_t num_nodes) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::string line;
  std::size_t max_id = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment(line)) continue;
    std::istringstream ls(line);
    std::uint64_t u, v;
    ADAQP_CHECK_MSG(static_cast<bool>(ls >> u >> v),
                    "edge list line " << line_no << ": expected 'u v', got '"
                                      << line << "'");
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    max_id = std::max({max_id, static_cast<std::size_t>(u),
                       static_cast<std::size_t>(v)});
  }
  if (num_nodes == 0) num_nodes = edges.empty() ? 0 : max_id + 1;
  return build_graph(num_nodes, edges);
}

Graph read_edge_list_file(const std::string& path, std::size_t num_nodes) {
  auto in = open_input(path);
  return read_edge_list(in, num_nodes);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# " << g.num_nodes() << " nodes, " << g.num_undirected_edges()
      << " undirected edges\n";
  for (std::size_t v = 0; v < g.num_nodes(); ++v)
    for (NodeId u : g.neighbors(static_cast<NodeId>(v)))
      if (v < u) out << v << ' ' << u << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  auto out = open_output(path);
  write_edge_list(g, out);
}

Graph read_metis(std::istream& in) {
  std::string line;
  // Header: first non-comment line ("%"-comments per METIS manual).
  while (std::getline(in, line) && is_comment(line)) {
  }
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  ADAQP_CHECK_MSG(static_cast<bool>(header >> n >> m),
                  "METIS header must be 'n m [fmt]'");
  std::uint64_t fmt = 0;
  if (header >> fmt)
    ADAQP_CHECK_MSG(fmt == 0, "weighted METIS graphs (fmt=" << fmt
                                  << ") are not supported");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  std::uint64_t node = 0;
  while (node < n && std::getline(in, line)) {
    if (is_comment(line) && line.find('%') != std::string::npos) continue;
    std::istringstream ls(line);
    std::uint64_t nbr;
    while (ls >> nbr) {
      ADAQP_CHECK_MSG(nbr >= 1 && nbr <= n,
                      "METIS neighbor id " << nbr << " outside [1," << n << "]");
      if (node < nbr - 1)  // each undirected edge appears twice in the file
        edges.emplace_back(static_cast<NodeId>(node),
                           static_cast<NodeId>(nbr - 1));
    }
    ++node;
  }
  ADAQP_CHECK_MSG(node == n, "METIS file ended after " << node << " of " << n
                                                       << " adjacency lines");
  Graph g = build_graph(n, edges);
  ADAQP_CHECK_MSG(g.num_undirected_edges() == m,
                  "METIS header claims " << m << " edges, file contains "
                                         << g.num_undirected_edges());
  return g;
}

Graph read_metis_file(const std::string& path) {
  auto in = open_input(path);
  return read_metis(in);
}

void write_metis(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << ' ' << g.num_undirected_edges() << '\n';
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(static_cast<NodeId>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      out << (i ? " " : "") << nbrs[i] + 1;
    out << '\n';
  }
}

void write_metis_file(const Graph& g, const std::string& path) {
  auto out = open_output(path);
  write_metis(g, out);
}

}  // namespace adaqp
