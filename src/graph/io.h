// Graph file I/O: plain edge lists and the METIS graph format.
//
// An open-source release of a distributed GNN trainer must ingest user
// graphs; these loaders cover the two formats the partitioning community
// uses most. Both loaders produce the library's canonical simple undirected
// graph (symmetrized, deduplicated, self-loops dropped).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace adaqp {

/// Plain edge list: one "u v" pair per line; '#' or '%' lines are comments.
/// Node ids are 0-based. `num_nodes` of 0 means "1 + max id seen".
Graph read_edge_list(std::istream& in, std::size_t num_nodes = 0);
Graph read_edge_list_file(const std::string& path, std::size_t num_nodes = 0);

/// Write "u v" lines (each undirected edge once, u < v).
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// METIS graph format: header "n m [fmt]", then line i (1-based) lists the
/// neighbors of node i (1-based ids). Only the unweighted format (fmt absent
/// or "0") is supported; weighted headers are rejected with an error.
Graph read_metis(std::istream& in);
Graph read_metis_file(const std::string& path);

void write_metis(const Graph& g, std::ostream& out);
void write_metis_file(const Graph& g, const std::string& path);

}  // namespace adaqp
