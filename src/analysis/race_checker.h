// Stage-graph race checker — static verification of the determinism
// contract's "disjoint writes" rule on the pipeline's declared DAGs.
//
// The bit-equality tests (tests/test_pipeline.cpp) catch a scheduling race
// only if it actually fires and perturbs bits on the machine running them.
// This checker proves the stronger property on every schedule: stages
// declare the buffer regions they read and write (`BufferAccess`
// annotations attached at StageGraph::add time), the checker builds the
// happens-before relation of the graph — reachability over the declared
// dependency edges; launch/wait barriers order everything outside one graph,
// and the runtime pool's task-completion edges realize exactly these
// declared edges at execution time (StageGraph submits a stage only when its
// last dependency finishes), so intra-graph reachability IS the full
// happens-before relation — and flags every conflicting access pair
// (overlapping byte ranges, at least one write) that is unordered. A clean
// report means: no undeclared concurrent access exists, for ANY schedule
// the pool could pick, not just the one that ran.
//
// Enabled by ADAQP_RACECHECK=1 (strict 0/1 parse via common/env.h, in-process
// override for tests). When enabled, StageGraph checks the DAG as part of
// wait()/run_serial(), records the result in the process-wide
// RaceCheckRegistry, and throws on violations so a racy graph fails loudly
// in CI. ADAQP_RACECHECK_REPORT=<path> additionally dumps a
// Chrome-trace-style JSON report of the violations for offline triage.
//
// Annotations are declarative and best-effort precise: row-granular for
// matrix row sets (`row_set` compresses a row list into contiguous byte
// intervals) and whole-object for opaque state (caches, RNGs, accounting
// slots). A stage with NO declared accesses is treated as opaque and skipped
// — partial annotation never produces false positives, it only narrows the
// proof. docs/ANALYSIS.md walks through annotating a new stage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adaqp::analysis {

/// One declared byte-range access [begin, end) of a stage.
struct BufferAccess {
  enum class Mode : std::uint8_t { kRead, kWrite };

  std::uintptr_t begin = 0;
  std::uintptr_t end = 0;
  Mode mode = Mode::kRead;
  /// Human-readable region name shown in violation reports,
  /// e.g. "acts[2][d1].halo_rows".
  std::string label;

  bool overlaps(const BufferAccess& other) const {
    return begin < other.end && other.begin < end;
  }
  bool conflicts(const BufferAccess& other) const {
    return (mode == Mode::kWrite || other.mode == Mode::kWrite) &&
           overlaps(other);
  }
};

using AccessList = std::vector<BufferAccess>;

/// Whole-object read / write of `bytes` bytes at `p`.
BufferAccess read_of(const void* p, std::size_t bytes, std::string label);
BufferAccess write_of(const void* p, std::size_t bytes, std::string label);

/// Row-set access over a row-major buffer: rows `rows` of a matrix whose
/// row r starts at base + r * row_bytes. Consecutive row ids are compressed
/// into one interval, so a typical halo row list yields a handful of ranges.
/// Appends to `out`.
void append_row_set(AccessList& out, const void* base, std::size_t row_bytes,
                    const std::uint32_t* rows, std::size_t num_rows,
                    BufferAccess::Mode mode, const std::string& label);

/// Contiguous row range [row_begin, row_end) of the same layout.
BufferAccess row_range(const void* base, std::size_t row_bytes,
                       std::size_t row_begin, std::size_t row_end,
                       BufferAccess::Mode mode, std::string label);

/// What the checker needs to know about one stage: its display name, the
/// ids of its direct dependencies (indices < its own), and its declared
/// accesses (empty = opaque, skipped).
struct StageAccessRecord {
  std::string name;
  std::vector<int> deps;
  AccessList accesses;
};

/// One unordered conflicting access pair.
struct RaceFinding {
  int stage_a = -1;
  int stage_b = -1;
  std::string stage_a_name;
  std::string stage_b_name;
  BufferAccess access_a;
  BufferAccess access_b;

  std::string to_string() const;
};

/// Result of checking one stage graph.
struct RaceReport {
  std::string graph_label;
  std::size_t num_stages = 0;
  std::size_t annotated_stages = 0;
  std::size_t pairs_checked = 0;  ///< unordered annotated pairs examined
  std::vector<RaceFinding> findings;

  bool clean() const { return findings.empty(); }
  /// Multi-line human-readable summary (violations first).
  std::string summary() const;
};

/// Check one DAG: happens-before = reachability over `deps`; report every
/// conflicting access pair of two unordered stages. Stages must reference
/// only earlier ids (the StageGraph::add invariant). At most one finding is
/// reported per stage pair (the first conflicting access pair found).
RaceReport check_stage_dag(const std::vector<StageAccessRecord>& stages,
                           std::string graph_label);

// ---- Configuration (ADAQP_RACECHECK) --------------------------------------

/// True when stage graphs should be race-checked on completion. Reads
/// ADAQP_RACECHECK via the strict env helpers (unset -> false); an override
/// installed via set_racecheck_override wins.
bool racecheck_enabled();

/// Force the mode in-process: 0 = off, 1 = on, -1 = back to the environment.
void set_racecheck_override(int mode);

/// Scoped override; restores the previous override state on destruction.
class RacecheckGuard {
 public:
  explicit RacecheckGuard(bool enabled);
  ~RacecheckGuard();
  RacecheckGuard(const RacecheckGuard&) = delete;
  RacecheckGuard& operator=(const RacecheckGuard&) = delete;

 private:
  int prev_;
};

// ---- Process-wide result accumulator --------------------------------------

/// Accumulates every report of the process so tests and tools can assert
/// "N graphs checked, zero violations" after a run. Thread-safe; findings
/// are capped (kMaxStoredFindings) to bound memory on a pathological graph.
class RaceCheckRegistry {
 public:
  static constexpr std::size_t kMaxStoredFindings = 256;

  static RaceCheckRegistry& instance();

  void record(const RaceReport& report);
  void reset();

  std::size_t graphs_checked() const;
  std::size_t stages_checked() const;
  std::size_t total_findings() const;
  std::vector<RaceFinding> findings() const;

  /// Chrome-trace-style JSON ({"traceEvents": [...]}, one instant event per
  /// violation with the conflicting ranges in "args") — loadable in
  /// chrome://tracing / Perfetto next to an ADAQP_TRACE capture. Returns
  /// false if the file could not be opened.
  bool write_report_json(const std::string& path) const;

 private:
  RaceCheckRegistry() = default;
};

/// Registry record + optional ADAQP_RACECHECK_REPORT dump + throw on
/// violations — the completion hook StageGraph calls when racecheck is
/// enabled. Throws std::runtime_error with the report summary when the
/// report is not clean.
void record_and_enforce(const RaceReport& report);

}  // namespace adaqp::analysis
