#include "analysis/race_checker.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "common/env.h"

namespace adaqp::analysis {

namespace {

const char* mode_name(BufferAccess::Mode m) {
  return m == BufferAccess::Mode::kWrite ? "write" : "read";
}

std::string range_string(const BufferAccess& a) {
  std::ostringstream os;
  os << mode_name(a.mode) << " " << a.label << " [0x" << std::hex << a.begin
     << ", 0x" << a.end << ")" << std::dec << " (" << (a.end - a.begin)
     << " bytes)";
  return os.str();
}

/// Minimal JSON string escaping (labels are programmer-chosen ASCII, but a
/// stray quote or backslash must not corrupt the report).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BufferAccess read_of(const void* p, std::size_t bytes, std::string label) {
  const auto begin = reinterpret_cast<std::uintptr_t>(p);
  return BufferAccess{begin, begin + bytes, BufferAccess::Mode::kRead,
                      std::move(label)};
}

BufferAccess write_of(const void* p, std::size_t bytes, std::string label) {
  const auto begin = reinterpret_cast<std::uintptr_t>(p);
  return BufferAccess{begin, begin + bytes, BufferAccess::Mode::kWrite,
                      std::move(label)};
}

BufferAccess row_range(const void* base, std::size_t row_bytes,
                       std::size_t row_begin, std::size_t row_end,
                       BufferAccess::Mode mode, std::string label) {
  const auto b = reinterpret_cast<std::uintptr_t>(base);
  return BufferAccess{b + row_begin * row_bytes, b + row_end * row_bytes, mode,
                      std::move(label)};
}

void append_row_set(AccessList& out, const void* base, std::size_t row_bytes,
                    const std::uint32_t* rows, std::size_t num_rows,
                    BufferAccess::Mode mode, const std::string& label) {
  std::size_t i = 0;
  while (i < num_rows) {
    // Extend a maximal run of consecutive row ids into one interval. Halo
    // row lists are sorted runs in practice, so this typically emits O(1)
    // intervals per stage instead of one per row.
    std::size_t j = i + 1;
    while (j < num_rows && rows[j] == rows[j - 1] + 1) ++j;
    out.push_back(row_range(base, row_bytes, rows[i],
                            static_cast<std::size_t>(rows[j - 1]) + 1, mode,
                            label));
    i = j;
  }
}

std::string RaceFinding::to_string() const {
  std::ostringstream os;
  os << "unordered conflict: stage #" << stage_a << " \"" << stage_a_name
     << "\" (" << range_string(access_a) << ") vs stage #" << stage_b << " \""
     << stage_b_name << "\" (" << range_string(access_b) << ")";
  return os.str();
}

std::string RaceReport::summary() const {
  std::ostringstream os;
  os << "racecheck[" << graph_label << "]: " << findings.size()
     << " violation(s); " << annotated_stages << "/" << num_stages
     << " stages annotated, " << pairs_checked << " unordered pairs checked";
  for (const RaceFinding& f : findings) os << "\n  " << f.to_string();
  return os.str();
}

RaceReport check_stage_dag(const std::vector<StageAccessRecord>& stages,
                           std::string graph_label) {
  RaceReport report;
  report.graph_label = std::move(graph_label);
  report.num_stages = stages.size();

  const std::size_t n = stages.size();
  const std::size_t words = (n + 63) / 64;

  // ancestors[i] = bitset of stages that happen-before stage i (transitive
  // closure over declared deps). Deps reference only earlier ids (the
  // StageGraph::add invariant), so one ascending pass computes the closure:
  // by the time stage i is processed, every dep's ancestor set is final.
  std::vector<std::uint64_t> ancestors(n * words, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* row = ancestors.data() + i * words;
    for (int dep : stages[i].deps) {
      if (dep < 0 || static_cast<std::size_t>(dep) >= i)
        throw std::invalid_argument(
            "race_checker: stage dependency must reference an earlier stage");
      const auto d = static_cast<std::size_t>(dep);
      row[d / 64] |= std::uint64_t{1} << (d % 64);
      const std::uint64_t* dep_row = ancestors.data() + d * words;
      for (std::size_t w = 0; w < words; ++w) row[w] |= dep_row[w];
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    if (!stages[i].accesses.empty()) ++report.annotated_stages;

  // Pairwise scan of annotated, unordered stages. Quadratic in stage count,
  // but graphs are per-layer (tens to low hundreds of stages) and the check
  // runs only under ADAQP_RACECHECK=1.
  for (std::size_t j = 1; j < n; ++j) {
    if (stages[j].accesses.empty()) continue;
    const std::uint64_t* row = ancestors.data() + j * words;
    for (std::size_t i = 0; i < j; ++i) {
      if (stages[i].accesses.empty()) continue;
      const bool ordered = (row[i / 64] >> (i % 64)) & 1u;
      if (ordered) continue;
      ++report.pairs_checked;
      // Report the first conflicting access pair per stage pair; one
      // finding per pair keeps the report readable when a large region
      // (e.g. a whole matrix) conflicts with many row intervals.
      bool found = false;
      for (const BufferAccess& a : stages[i].accesses) {
        if (found) break;
        for (const BufferAccess& b : stages[j].accesses) {
          if (!a.conflicts(b)) continue;
          RaceFinding f;
          f.stage_a = static_cast<int>(i);
          f.stage_b = static_cast<int>(j);
          f.stage_a_name = stages[i].name;
          f.stage_b_name = stages[j].name;
          f.access_a = a;
          f.access_b = b;
          report.findings.push_back(std::move(f));
          found = true;
          break;
        }
      }
    }
  }
  return report;
}

// ---- Configuration --------------------------------------------------------

namespace {

/// -1 = no override (consult the environment), 0 = off, 1 = on.
std::atomic<int> g_racecheck_override{-1};

}  // namespace

bool racecheck_enabled() {
  const int ov = g_racecheck_override.load(std::memory_order_acquire);
  if (ov >= 0) return ov != 0;
  return env::flag01("ADAQP_RACECHECK", false);
}

void set_racecheck_override(int mode) {
  g_racecheck_override.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                             std::memory_order_release);
}

RacecheckGuard::RacecheckGuard(bool enabled)
    : prev_(g_racecheck_override.load(std::memory_order_acquire)) {
  set_racecheck_override(enabled ? 1 : 0);
}

RacecheckGuard::~RacecheckGuard() { set_racecheck_override(prev_); }

// ---- Registry -------------------------------------------------------------

namespace {

std::mutex g_registry_mu;
std::size_t g_graphs_checked = 0;
std::size_t g_stages_checked = 0;
std::size_t g_total_findings = 0;
std::vector<RaceFinding> g_findings;

}  // namespace

RaceCheckRegistry& RaceCheckRegistry::instance() {
  static RaceCheckRegistry registry;
  return registry;
}

void RaceCheckRegistry::record(const RaceReport& report) {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  ++g_graphs_checked;
  g_stages_checked += report.num_stages;
  g_total_findings += report.findings.size();
  for (const RaceFinding& f : report.findings) {
    if (g_findings.size() >= kMaxStoredFindings) break;
    g_findings.push_back(f);
  }
}

void RaceCheckRegistry::reset() {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  g_graphs_checked = 0;
  g_stages_checked = 0;
  g_total_findings = 0;
  g_findings.clear();
}

std::size_t RaceCheckRegistry::graphs_checked() const {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  return g_graphs_checked;
}

std::size_t RaceCheckRegistry::stages_checked() const {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  return g_stages_checked;
}

std::size_t RaceCheckRegistry::total_findings() const {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  return g_total_findings;
}

std::vector<RaceFinding> RaceCheckRegistry::findings() const {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  return g_findings;
}

bool RaceCheckRegistry::write_report_json(const std::string& path) const {
  std::vector<RaceFinding> findings;
  std::size_t graphs = 0, stages = 0, total = 0;
  {
    std::lock_guard<std::mutex> lk(g_registry_mu);
    findings = g_findings;
    graphs = g_graphs_checked;
    stages = g_stages_checked;
    total = g_total_findings;
  }
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"traceEvents\": [";
  bool first = true;
  for (const RaceFinding& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"name\": \"race: " << json_escape(f.stage_a_name)
        << " vs " << json_escape(f.stage_b_name)
        << "\", \"ph\": \"i\", \"ts\": 0, \"pid\": 0, \"tid\": 0, "
           "\"s\": \"g\", \"cat\": \"racecheck\", \"args\": {"
        << "\"stage_a\": \"" << json_escape(f.stage_a_name) << "\", "
        << "\"access_a\": \"" << json_escape(range_string(f.access_a))
        << "\", \"stage_b\": \"" << json_escape(f.stage_b_name) << "\", "
        << "\"access_b\": \"" << json_escape(range_string(f.access_b))
        << "\"}}";
  }
  out << "\n  ],\n  \"racecheckSummary\": {\"graphs_checked\": " << graphs
      << ", \"stages_checked\": " << stages
      << ", \"total_findings\": " << total
      << ", \"stored_findings\": " << findings.size() << "}\n}\n";
  return out.good();
}

void record_and_enforce(const RaceReport& report) {
  RaceCheckRegistry::instance().record(report);
  if (report.clean()) return;
  if (const auto path = env::text("ADAQP_RACECHECK_REPORT"))
    RaceCheckRegistry::instance().write_report_json(*path);
  throw std::runtime_error(report.summary());
}

}  // namespace adaqp::analysis
