// Transport abstraction behind the halo exchange (docs/TRANSPORT.md).
//
// Every encoded halo message becomes one framed send/recv over a Transport.
// The execution model is *replicated compute, real wire*: every process (or
// the single process, today's default) runs the full deterministic N-device
// simulation, so encoded payloads and RNG streams are bit-identical
// everywhere; the transport decides which frames actually cross a byte
// stream and which are delivered in place. The receiver always decodes the
// bytes recv() returns — never the sender-side staging buffer directly — so
// swapping the backend cannot change numerics, only where the bytes
// travelled.
//
//   LoopbackTransport        (default) zero-copy in-process delivery;
//                            preserves the zero-allocation steady state.
//   TcpTransport             frames cross real non-blocking localhost
//                            sockets, one connection per directed device
//                            pair; single-process runs self-connect so
//                            plain `ADAQP_TRANSPORT=tcp ctest` exercises
//                            the full wire path.
//   FaultInjectingTransport  decorator: seeded deterministic delay /
//                            reorder / short-read/short-write splits /
//                            drop-then-timeout over any inner transport.
//
// Selection: ADAQP_TRANSPORT=loopback|tcp (strict; anything else throws),
// optionally wrapped by ADAQP_FAULT=1. See docs/ENVVARS.md for the knobs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "transport/frame.h"

namespace adaqp::transport {

/// Delivery accounting every backend maintains (relaxed atomics; safe to
/// read concurrently). `digest` is an order-independent XOR of per-frame
/// FNV-1a hashes over (round, direction, src, dst, payload) — two runs
/// delivered the same payload multiset iff frames/bytes/digest all match,
/// which is how the tests assert loopback == tcp byte-identity end to end.
/// (The channel ordinal is excluded so back-to-back runs in one process,
/// whose channel counters keep rising, stay comparable.)
struct TransportStats {
  std::uint64_t frames_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t digest = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual const char* name() const = 0;

  /// Ship `payload` toward the pair's receiver. Stage bodies call this with
  /// the locally encoded wire block; backends where this process does not
  /// own the sender treat it as a no-op (the owning replica sends it).
  virtual void send(const FrameTag& tag,
                    std::span<const std::uint8_t> payload) = 0;

  /// The bytes the receiver must decode for `tag`. `local` is this
  /// process's own encoding of the frame (the replicated-compute copy);
  /// loopback returns it zero-copy, wire backends block until the framed
  /// payload arrives and return the delivered bytes instead. The returned
  /// span stays valid until the next recv of the same (channel, pair).
  /// Throws TransportError on timeout / protocol violations.
  virtual std::span<const std::uint8_t> recv(
      const FrameTag& tag, std::span<const std::uint8_t> local) = 0;

  /// True when this backend would deliver `tag` entirely in place (recv
  /// returns `local` and no byte stream is involved). The fault decorator
  /// only injects faults into such frames — genuinely remote frames keep
  /// the inner backend's wire path.
  virtual bool local_delivery(const FrameTag& tag) const {
    (void)tag;
    return true;
  }

  /// True when steady-state send/recv perform no heap allocation — the
  /// trainer's zero-allocation contract only covers epochs run over such a
  /// transport (loopback; see memory::steady_state_definition()).
  virtual bool zero_alloc_delivery() const { return false; }

  /// Stable address of the per-(channel, direction, pair) delivery slot a
  /// wire backend moves received payloads into, or nullptr when delivery is
  /// in place (loopback). Exchange stages declare a write on this slot for
  /// the stage-graph race checker (src/analysis/), so the checker proves
  /// the encode -> deliver -> decode chain is ordered by declared deps.
  virtual const void* pair_slot(std::uint32_t channel, std::uint8_t direction,
                                int src, int dst) {
    (void)channel, (void)direction, (void)src, (void)dst;
    return nullptr;
  }

  /// Delivery accounting. Virtual so decorators can fold in the stats of
  /// the backend they wrap — a wrapped transport must account every
  /// delivery exactly once across the pair, whichever side's recv ran.
  virtual TransportStats stats() const;
  virtual void reset_stats();

 protected:
  Transport() = default;

  /// Fold one delivered frame into stats(); called by every backend's recv
  /// with exactly the span it returns. Allocation-free.
  void account_delivery(const FrameTag& tag,
                        std::span<const std::uint8_t> payload);

 private:
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> digest_{0};
};

/// Process-wide monotonically increasing exchange-channel ordinal. Every
/// AsyncExchange (and each SANCUS per-layer broadcast direction) claims one
/// at construction; because construction order is deterministic, replicated
/// ranks derive identical channel ids without negotiation.
std::uint32_t next_channel();

/// The active transport: the innermost ScopedTransport override when one is
/// installed, else the process-wide instance resolved once from the
/// environment (ADAQP_TRANSPORT / ADAQP_FAULT). Never returns null; throws
/// std::runtime_error on malformed knobs at first use.
Transport& active();

/// Build a transport from the environment without installing it (the
/// factory behind active(); exposed for tools).
std::unique_ptr<Transport> make_from_env();

/// RAII override for tests and tools: installs `t` as the active transport
/// for the guard's scope, restoring the previous one after — the same idiom
/// as pipeline::AsyncModeGuard / obs::MetricsGuard. Must not be destroyed
/// while an exchange submitted under it is still in flight.
class ScopedTransport {
 public:
  explicit ScopedTransport(std::unique_ptr<Transport> t);
  ~ScopedTransport();
  ScopedTransport(const ScopedTransport&) = delete;
  ScopedTransport& operator=(const ScopedTransport&) = delete;

  Transport& get() { return *owned_; }

 private:
  std::unique_ptr<Transport> owned_;
  Transport* prev_;
};

}  // namespace adaqp::transport
