#include "transport/transport.h"

#include <stdexcept>

#include "common/env.h"
#include "transport/fault.h"
#include "transport/loopback.h"
#include "transport/tcp.h"

namespace adaqp::transport {

namespace {

std::atomic<std::uint32_t> g_next_channel{0};
std::atomic<Transport*> g_override{nullptr};

std::uint64_t fnv1a(std::uint64_t h, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

TransportStats Transport::stats() const {
  TransportStats s;
  s.frames_delivered = frames_.load(std::memory_order_relaxed);
  s.bytes_delivered = bytes_.load(std::memory_order_relaxed);
  s.digest = digest_.load(std::memory_order_relaxed);
  return s;
}

void Transport::reset_stats() {
  frames_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  digest_.store(0, std::memory_order_relaxed);
}

void Transport::account_delivery(const FrameTag& tag,
                                 std::span<const std::uint8_t> payload) {
  // Per-frame FNV-1a over the channel-free tag and the payload, folded into
  // the digest with XOR: order-independent across schedules and thread
  // counts, sensitive to any delivered byte (see TransportStats).
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a_u32(h, tag.round);
  h = fnv1a_u32(h, (static_cast<std::uint32_t>(tag.direction) << 16) |
                       (static_cast<std::uint32_t>(tag.src) << 8) |
                       tag.dst);
  h = fnv1a_u32(h, static_cast<std::uint32_t>(payload.size()));
  h = fnv1a(h, payload);
  frames_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  digest_.fetch_xor(h, std::memory_order_relaxed);
}

std::uint32_t next_channel() {
  return g_next_channel.fetch_add(1, std::memory_order_relaxed);
}

std::unique_ptr<Transport> make_from_env() {
  const std::optional<std::string> kind = env::text("ADAQP_TRANSPORT");
  std::unique_ptr<Transport> t;
  if (!kind || *kind == "loopback") {
    t = std::make_unique<LoopbackTransport>();
  } else if (*kind == "tcp") {
    t = std::make_unique<TcpTransport>(TcpOptions::from_env());
  } else {
    throw std::runtime_error(
        "ADAQP_TRANSPORT must be \"loopback\" or \"tcp\", got \"" + *kind +
        "\"");
  }
  if (env::flag01("ADAQP_FAULT", false))
    t = std::make_unique<FaultInjectingTransport>(std::move(t),
                                                  FaultSpec::from_env());
  return t;
}

Transport& active() {
  if (Transport* o = g_override.load(std::memory_order_acquire)) return *o;
  // Process-lifetime singleton, resolved on first use (like the SIMD kernel
  // registry); intentionally leaked so in-flight exchanges joined during
  // static destruction can still reach it.
  static Transport* global = make_from_env().release();
  return *global;
}

ScopedTransport::ScopedTransport(std::unique_ptr<Transport> t)
    : owned_(std::move(t)),
      prev_(g_override.exchange(owned_.get(), std::memory_order_acq_rel)) {}

ScopedTransport::~ScopedTransport() {
  g_override.store(prev_, std::memory_order_release);
}

}  // namespace adaqp::transport
