#include "transport/fault.h"

#include <thread>

#include "common/env.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"

namespace adaqp::transport {

namespace {

std::uint64_t stream_key(const FrameTag& t) {
  return (static_cast<std::uint64_t>(t.channel) << 32) |
         (static_cast<std::uint64_t>(t.direction) << 24) |
         (static_cast<std::uint64_t>(t.src) << 12) |
         static_cast<std::uint64_t>(t.dst);
}

}  // namespace

FaultSpec FaultSpec::from_env() {
  FaultSpec spec;
  spec.seed = static_cast<std::uint64_t>(
      env::int_in_range("ADAQP_FAULT_SEED", 0, 1'000'000'000L).value_or(1));
  spec.delay_us = static_cast<std::uint32_t>(
      env::int_in_range("ADAQP_FAULT_DELAY_US", 0, 10'000'000L).value_or(0));
  spec.reorder = static_cast<std::uint32_t>(
      env::int_in_range("ADAQP_FAULT_REORDER", 0, 1024).value_or(0));
  spec.split = static_cast<std::uint32_t>(
      env::int_in_range("ADAQP_FAULT_SPLIT", 0, 1 << 20).value_or(0));
  spec.drop_permille = static_cast<std::uint32_t>(
      env::int_in_range("ADAQP_FAULT_DROP_PERMILLE", 0, 1000).value_or(0));
  spec.timeout_ms = static_cast<std::uint32_t>(
      env::int_in_range("ADAQP_FAULT_TIMEOUT_MS", 1, 600'000L)
          .value_or(2000));
  return spec;
}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, FaultSpec spec)
    : inner_(std::move(inner)), spec_(spec) {
  name_ = std::string("fault+") + inner_->name();
}

FaultInjectingTransport::Plan FaultInjectingTransport::plan_for(
    const FrameTag& tag) const {
  // A pure function of (seed, tag): identical at any thread count or
  // arrival order, so the fault schedule itself is reproducible.
  std::uint64_t state = spec_.seed;
  state ^= (static_cast<std::uint64_t>(tag.channel) << 32) | tag.round;
  state ^= (static_cast<std::uint64_t>(tag.direction) << 20) |
           (static_cast<std::uint64_t>(tag.src) << 10) |
           static_cast<std::uint64_t>(tag.dst);
  const std::uint64_t s1 = splitmix64(state);
  const std::uint64_t s2 = splitmix64(state);
  const std::uint64_t s3 = splitmix64(state);
  const std::uint64_t s4 = splitmix64(state);
  Plan plan;
  plan.drop = spec_.drop_permille != 0 && (s1 % 1000) < spec_.drop_permille;
  plan.delay_us =
      spec_.delay_us == 0
          ? 0
          : static_cast<std::uint32_t>(s2 % (spec_.delay_us + 1ull));
  plan.hold = spec_.reorder == 0
                  ? 0
                  : static_cast<std::uint32_t>(s3 % (spec_.reorder + 1ull));
  plan.chunk_seed = s4;
  return plan;
}

void FaultInjectingTransport::write_split(Stream& s,
                                          std::span<const std::uint8_t> frame,
                                          std::uint64_t chunk_seed) {
  const obs::Instruments& ins = obs::instruments();
  ins.transport_wire_frames.add(1);
  ins.transport_wire_bytes.add(frame.size());
  if (spec_.split == 0) {
    s.pipe.write_some(frame);
    return;
  }
  // Fragment the framed bytes at seeded offsets so header and payload both
  // cross chunk boundaries — the reassembly path FrameReader must handle.
  Rng chunks(chunk_seed);
  std::size_t off = 0;
  while (off < frame.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + chunks.next() % spec_.split,
                              frame.size() - off);
    s.pipe.write_some(frame.subspan(off, n));
    off += n;
    if (off < frame.size()) ins.transport_short_writes.add(1);
  }
  ins.transport_fault_splits.add(1);
}

void FaultInjectingTransport::release_due_locked() {
  std::size_t w = 0;
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (held_[i].release_at <= send_seq_) {
      write_split(streams_[stream_key(held_[i].tag)], held_[i].frame,
                  plan_for(held_[i].tag).chunk_seed);
    } else {
      if (w != i) held_[w] = std::move(held_[i]);
      ++w;
    }
  }
  held_.resize(w);
}

void FaultInjectingTransport::drain_locked(const FrameTag& tag) {
  Stream& s = streams_[stream_key(tag)];
  std::uint8_t scratch[4096];
  // Short reads: when splits are on, pull the stream in the same bounded
  // chunks, so reassembly is exercised on the read side too.
  const std::size_t cap =
      spec_.split == 0 ? sizeof(scratch)
                       : std::min<std::size_t>(spec_.split, sizeof(scratch));
  for (;;) {
    const std::size_t n = s.pipe.read_some({scratch, cap});
    if (n == 0) break;
    s.reader.feed({scratch, n});
  }
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  while (s.reader.next(header, payload)) {
    if (header.kind != FrameKind::kData)
      throw TransportError("transport: unexpected frame kind on fault pipe");
    inbox_.push(header.tag, std::move(payload));
    payload = {};
  }
}

void FaultInjectingTransport::send(const FrameTag& tag,
                                   std::span<const std::uint8_t> payload) {
  if (!inner_->local_delivery(tag)) {
    inner_->send(tag, payload);
    return;
  }
  const Plan plan = plan_for(tag);
  const obs::Instruments& ins = obs::instruments();
  if (plan.drop) {
    ins.transport_fault_drops.add(1);
    std::lock_guard<std::mutex> lk(mu_);
    ++send_seq_;
    release_due_locked();
    return;
  }
  if (plan.delay_us != 0) {
    ins.transport_fault_delays.add(1);
    const double until = obs::monotonic_us() + plan.delay_us;
    while (obs::monotonic_us() < until) std::this_thread::yield();
  }
  FrameHeader header;
  header.kind = FrameKind::kData;
  header.tag = tag;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> frame;
  write_frame(header, payload, frame);

  std::lock_guard<std::mutex> lk(mu_);
  ++send_seq_;
  if (plan.hold != 0) {
    ins.transport_fault_reorders.add(1);
    held_.push_back({tag, std::move(frame), send_seq_ + plan.hold});
  } else {
    write_split(streams_[stream_key(tag)], frame, plan.chunk_seed);
  }
  release_due_locked();
}

std::span<const std::uint8_t> FaultInjectingTransport::recv(
    const FrameTag& tag, std::span<const std::uint8_t> local) {
  if (!inner_->local_delivery(tag)) return inner_->recv(tag, local);
  const obs::Instruments& ins = obs::instruments();
  const double deadline =
      obs::monotonic_us() + static_cast<double>(spec_.timeout_ms) * 1000.0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      drain_locked(tag);
      if (const std::vector<std::uint8_t>* p = inbox_.take(tag)) {
        ins.transport_frames.add(1);
        ins.transport_bytes.add(p->size());
        account_delivery(tag, {p->data(), p->size()});
        return {p->data(), p->size()};
      }
      // The receiver demanding a held frame releases it immediately: the
      // reorder window is bounded by need, so holds can never deadlock a
      // schedule — only shuffle arrival order, which tag matching absorbs.
      for (std::size_t i = 0; i < held_.size(); ++i) {
        const FrameTag& h = held_[i].tag;
        if (h.channel == tag.channel && h.round == tag.round &&
            h.direction == tag.direction && h.src == tag.src &&
            h.dst == tag.dst) {
          held_[i].release_at = send_seq_;
          release_due_locked();
          break;
        }
      }
    }
    if (obs::monotonic_us() > deadline)
      throw TransportError(
          "transport: timed out after " + std::to_string(spec_.timeout_ms) +
          " ms waiting for " + tag_to_string(tag) +
          " (fault-injected drop?)");
    std::this_thread::yield();
  }
}

const void* FaultInjectingTransport::pair_slot(std::uint32_t channel,
                                               std::uint8_t direction,
                                               int src, int dst) {
  FrameTag probe;
  probe.channel = channel;
  probe.direction = direction;
  probe.src = static_cast<std::uint8_t>(src);
  probe.dst = static_cast<std::uint8_t>(dst);
  if (!inner_->local_delivery(probe))
    return inner_->pair_slot(channel, direction, src, dst);
  std::lock_guard<std::mutex> lk(mu_);
  return inbox_.slot(channel, direction, src, dst);
}

}  // namespace adaqp::transport
