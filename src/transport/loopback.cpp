#include "transport/loopback.h"

#include "obs/metrics.h"

namespace adaqp::transport {

void LoopbackTransport::send(const FrameTag& tag,
                             std::span<const std::uint8_t> payload) {
  (void)tag;
  (void)payload;
}

std::span<const std::uint8_t> LoopbackTransport::recv(
    const FrameTag& tag, std::span<const std::uint8_t> local) {
  const obs::Instruments& ins = obs::instruments();
  ins.transport_frames.add(1);
  ins.transport_bytes.add(local.size());
  account_delivery(tag, local);
  return local;
}

}  // namespace adaqp::transport
