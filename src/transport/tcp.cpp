#include "transport/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/env.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"

namespace adaqp::transport {

namespace {

std::uint16_t pair_key(std::uint8_t src, std::uint8_t dst) {
  return static_cast<std::uint16_t>((src << 8) | dst);
}

sockaddr_in localhost_addr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpOptions TcpOptions::from_env() {
  TcpOptions o;
  o.rank = static_cast<int>(
      env::int_in_range("ADAQP_TP_RANK", 0, 255).value_or(0));
  o.nprocs = static_cast<int>(
      env::int_in_range("ADAQP_TP_NPROCS", 1, 64).value_or(1));
  o.base_port = static_cast<int>(
      env::int_in_range("ADAQP_TP_BASE_PORT", 0, 65535).value_or(0));
  o.timeout_ms = static_cast<int>(
      env::int_in_range("ADAQP_TP_TIMEOUT_MS", 1, 600'000L).value_or(20000));
  o.max_chunk = static_cast<int>(
      env::int_in_range("ADAQP_TP_MAX_CHUNK", 0, 1 << 20).value_or(0));
  return o;
}

TcpTransport::TcpTransport(TcpOptions opts) : opts_(opts) {
  if (opts_.rank < 0 || opts_.rank >= opts_.nprocs)
    throw TransportError("transport: ADAQP_TP_RANK must be in [0, nprocs)");
  if (opts_.nprocs > 1 && opts_.base_port == 0)
    throw TransportError(
        "transport: multi-process tcp needs an explicit ADAQP_TP_BASE_PORT "
        "(an ephemeral listener cannot be dialed by other ranks)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const int want_port =
      opts_.base_port == 0 ? 0 : opts_.base_port + opts_.rank;
  const sockaddr_in addr = localhost_addr(want_port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0)
    throw_errno("bind");
  if (::listen(listen_fd_, 128) < 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0)
    throw_errno("getsockname");
  listen_port_ = ntohs(bound.sin_port);
}

TcpTransport::~TcpTransport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const auto& [key, fd] : out_) ::close(fd);
  for (const InConn& c : in_)
    if (!c.closed && c.fd >= 0) ::close(c.fd);
}

void TcpTransport::throw_errno(const char* what) const {
  throw TransportError(std::string("transport: tcp ") + what + " failed: " +
                       std::strerror(errno));
}

int TcpTransport::dial_locked(int port, std::uint8_t src, std::uint8_t dst) {
  const obs::Instruments& ins = obs::instruments();
  const double t0 = obs::monotonic_us();
  const double deadline = t0 + static_cast<double>(opts_.timeout_ms) * 1000.0;
  const sockaddr_in addr = localhost_addr(port);
  for (;;) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      while (::poll(&pfd, 1, 1) == 0 && obs::monotonic_us() < deadline) {
        // Keep draining inbound while our connect is pending, so a peer
        // (or this process itself) blocked on us still makes progress.
        pump_locked();
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      rc = err == 0 ? 0 : -1;
      errno = err;
    }
    if (rc == 0) {
      set_nodelay(fd);
      ins.transport_rtt_us.record(obs::monotonic_us() - t0);
      FrameHeader hello;
      hello.kind = FrameKind::kHello;
      hello.tag = FrameTag{0, 0, 0, src, dst};
      write_frame(hello, {}, frame_buf_);
      write_all_locked(fd, frame_buf_);
      return fd;
    }
    ::close(fd);
    if (errno != ECONNREFUSED && errno != EAGAIN && errno != ETIMEDOUT)
      throw_errno("connect");
    if (obs::monotonic_us() > deadline)
      throw TransportError(
          "transport: tcp connect to 127.0.0.1:" + std::to_string(port) +
          " timed out after " + std::to_string(opts_.timeout_ms) +
          " ms (is the peer rank running?)");
    // The peer rank has not opened its listener yet (startup race): back
    // off briefly and retry.
    ins.transport_reconnects.add(1);
    pump_locked();
    pollfd lfd{listen_fd_, POLLIN, 0};
    ::poll(&lfd, 1, 2);
  }
}

int TcpTransport::ensure_out_locked(std::uint8_t src, std::uint8_t dst) {
  const std::uint16_t key = pair_key(src, dst);
  const auto it = out_.find(key);
  if (it != out_.end()) return it->second;
  const int port =
      opts_.base_port == 0 ? listen_port_ : opts_.base_port + owner(dst);
  const int fd = dial_locked(port, src, dst);
  out_.emplace(key, fd);
  return fd;
}

void TcpTransport::write_all_locked(int fd,
                                    std::span<const std::uint8_t> bytes) {
  const obs::Instruments& ins = obs::instruments();
  const double deadline =
      obs::monotonic_us() + static_cast<double>(opts_.timeout_ms) * 1000.0;
  std::size_t off = 0;
  while (off < bytes.size()) {
    std::size_t want = bytes.size() - off;
    if (opts_.max_chunk > 0)
      want = std::min(want, static_cast<std::size_t>(opts_.max_chunk));
    const ssize_t n =
        ::send(fd, bytes.data() + off, want, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      if (static_cast<std::size_t>(n) < want)
        ins.transport_short_writes.add(1);
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
      throw_errno("send");
    ins.transport_short_writes.add(1);
    // Socket buffer full. The lock holder must keep the world draining:
    // pump inbound (frees the peer — or ourselves, on a self-connect — to
    // read), then wait for writability briefly.
    pump_locked();
    pollfd pfd{fd, POLLOUT, 0};
    ::poll(&pfd, 1, 1);
    if (obs::monotonic_us() > deadline)
      throw TransportError(
          "transport: tcp send stalled for " +
          std::to_string(opts_.timeout_ms) + " ms (peer not draining?)");
  }
}

void TcpTransport::pump_locked() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;
    set_nodelay(fd);
    InConn conn;
    conn.fd = fd;
    in_.push_back(std::move(conn));
  }
  std::uint8_t scratch[65536];
  for (InConn& c : in_) {
    if (c.closed) continue;
    for (;;) {
      const ssize_t n = ::recv(c.fd, scratch, sizeof(scratch), 0);
      if (n > 0) {
        c.reader.feed({scratch, static_cast<std::size_t>(n)});
        if (static_cast<std::size_t>(n) < sizeof(scratch)) break;
        continue;
      }
      if (n == 0) {
        // Orderly FIN: the peer is done sending. Everything it sent is
        // already queued ahead of the FIN, so this is not an error — a
        // receiver still waiting will surface a timeout with context.
        ::close(c.fd);
        c.closed = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == ECONNRESET) {
        ::close(c.fd);
        c.closed = true;
        break;
      }
      throw_errno("recv");
    }
    FrameHeader header;
    std::vector<std::uint8_t> payload;
    while (c.reader.next(header, payload)) {
      if (header.kind == FrameKind::kHello) continue;
      inbox_.push(header.tag, std::move(payload));
      payload = {};
    }
  }
}

void TcpTransport::send(const FrameTag& tag,
                        std::span<const std::uint8_t> payload) {
  if (owner(tag.src) != opts_.rank) return;  // the owning replica sends it
  const obs::Instruments& ins = obs::instruments();
  FrameHeader header;
  header.kind = FrameKind::kData;
  header.tag = tag;
  header.payload_len = static_cast<std::uint32_t>(payload.size());

  std::lock_guard<std::mutex> lk(mu_);
  const int fd = ensure_out_locked(tag.src, tag.dst);
  write_frame(header, payload, frame_buf_);
  ins.transport_wire_frames.add(1);
  ins.transport_wire_bytes.add(frame_buf_.size());
  write_all_locked(fd, frame_buf_);
}

std::span<const std::uint8_t> TcpTransport::recv(
    const FrameTag& tag, std::span<const std::uint8_t> local) {
  const obs::Instruments& ins = obs::instruments();
  if (owner(tag.dst) != opts_.rank) {
    // Not the receiving owner: decode this replica's own encoding in place
    // (bit-identical to the wire bytes by the determinism contract).
    ins.transport_frames.add(1);
    ins.transport_bytes.add(local.size());
    account_delivery(tag, local);
    return local;
  }
  const double deadline =
      obs::monotonic_us() + static_cast<double>(opts_.timeout_ms) * 1000.0;
  std::vector<pollfd> fds;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      pump_locked();
      if (const std::vector<std::uint8_t>* p = inbox_.take(tag)) {
        ins.transport_frames.add(1);
        ins.transport_bytes.add(p->size());
        account_delivery(tag, {p->data(), p->size()});
        return {p->data(), p->size()};
      }
      fds.clear();
      fds.push_back({listen_fd_, POLLIN, 0});
      for (const InConn& c : in_)
        if (!c.closed) fds.push_back({c.fd, POLLIN, 0});
    }
    if (obs::monotonic_us() > deadline)
      throw TransportError("transport: tcp recv timed out after " +
                           std::to_string(opts_.timeout_ms) +
                           " ms waiting for " + tag_to_string(tag));
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 1);
  }
}

const void* TcpTransport::pair_slot(std::uint32_t channel,
                                    std::uint8_t direction, int src,
                                    int dst) {
  if (owner(dst) != opts_.rank) return nullptr;  // delivered in place here
  std::lock_guard<std::mutex> lk(mu_);
  return inbox_.slot(channel, direction, src, dst);
}

}  // namespace adaqp::transport
