#include "transport/frame.h"

#include <array>

namespace adaqp::transport {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t pos) {
  return static_cast<std::uint16_t>(b[pos] | (b[pos + 1] << 8));
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t pos) {
  return static_cast<std::uint32_t>(b[pos]) |
         (static_cast<std::uint32_t>(b[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(b[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(b[pos + 3]) << 24);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes)
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void write_frame(const FrameHeader& header,
                 std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& out) {
  out.clear();
  put_u32(out, kFrameMagic);
  put_u16(out, kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(header.kind));
  out.push_back(header.tag.direction);
  put_u32(out, header.tag.channel);
  put_u32(out, header.tag.round);
  out.push_back(header.tag.src);
  out.push_back(header.tag.dst);
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  // Checksum covers the header with its own field zeroed, then the payload
  // (fold order matches verify_frame exactly).
  static constexpr std::uint8_t kZero[4] = {0, 0, 0, 0};
  std::uint32_t crc = crc32({out.data(), out.size()}, 0);
  crc = crc32({kZero, 4}, crc);
  crc = crc32(payload, crc);
  put_u32(out, crc);
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameHeader parse_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes)
    throw TransportError("transport: truncated frame header (" +
                         std::to_string(bytes.size()) + " of " +
                         std::to_string(kHeaderBytes) + " bytes)");
  if (get_u32(bytes, 0) != kFrameMagic)
    throw TransportError("transport: bad frame magic");
  const std::uint16_t version = get_u16(bytes, 4);
  if (version != kFrameVersion)
    throw TransportError("transport: unsupported frame version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kFrameVersion) + ")");
  const std::uint8_t kind = bytes[6];
  if (kind > static_cast<std::uint8_t>(FrameKind::kHello))
    throw TransportError("transport: unknown frame kind " +
                         std::to_string(kind));
  FrameHeader h;
  h.kind = static_cast<FrameKind>(kind);
  h.tag.direction = bytes[7];
  h.tag.channel = get_u32(bytes, 8);
  h.tag.round = get_u32(bytes, 12);
  h.tag.src = bytes[16];
  h.tag.dst = bytes[17];
  h.payload_len = get_u32(bytes, 20);
  return h;
}

void verify_frame(std::span<const std::uint8_t> header_bytes,
                  std::span<const std::uint8_t> payload) {
  if (header_bytes.size() != kHeaderBytes)
    throw TransportError("transport: verify_frame needs the full header");
  // Fold the header in two slices so the stored checksum field reads as
  // zero, exactly as write_frame computed it.
  static constexpr std::uint8_t kZero[4] = {0, 0, 0, 0};
  std::uint32_t crc = crc32(header_bytes.first(kHeaderBytes - 4), 0);
  crc = crc32({kZero, 4}, crc);
  crc = crc32(payload, crc);
  const std::uint32_t stored = get_u32(header_bytes, kHeaderBytes - 4);
  if (crc != stored)
    throw TransportError("transport: frame checksum mismatch for " +
                         tag_to_string(parse_header(header_bytes).tag));
}

std::string tag_to_string(const FrameTag& tag) {
  std::string s = "ch" + std::to_string(tag.channel) + "/r" +
                  std::to_string(tag.round);
  s += tag.direction == 0 ? " fwd d" : " bwd d";
  s += std::to_string(tag.src);
  s += "->d";
  s += std::to_string(tag.dst);
  return s;
}

}  // namespace adaqp::transport
