// Real-wire backend: framed halo messages over non-blocking localhost TCP
// (docs/TRANSPORT.md, "TCP backend").
//
// Devices are mapped to processes by `owner(dev) = dev % nprocs`. Every rank
// runs the full replicated N-device simulation; this backend puts a frame on
// a socket when this rank owns the sender, and makes the receiving decode
// wait for the wire bytes when this rank owns the receiver. Frames whose
// sender and receiver are both owned elsewhere are delivered in place from
// the local replica (their bytes cross the wire between the two owning
// ranks). With nprocs == 1 every frame self-connects through a real
// localhost socket, so plain `ADAQP_TRANSPORT=tcp ctest` exercises the whole
// framing / reassembly / inbox path without any orchestration.
//
// One connection per directed device pair, dialed lazily by the sender and
// opened with a hello frame; a single internal mutex serializes all socket
// work, and the lock holder always pumps *every* readable fd before waiting,
// so a send blocked on a full socket buffer still drains inbound frames —
// no self-connect or cross-rank deadlock.
//
// Ports: with ADAQP_TP_BASE_PORT unset (0), the listener binds an ephemeral
// port — only valid single-process, but it makes concurrent `ctest -j` runs
// collision-free. Multi-process runs must set an explicit base port; rank r
// listens on base_port + r.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "transport/stream.h"
#include "transport/transport.h"

namespace adaqp::transport {

struct TcpOptions {
  int rank = 0;
  int nprocs = 1;
  int base_port = 0;       ///< 0 = ephemeral listener (single-process only)
  int timeout_ms = 20000;  ///< dial + recv deadline
  int max_chunk = 0;       ///< cap bytes per socket write (0 = no cap)

  /// ADAQP_TP_RANK / _NPROCS / _BASE_PORT / _TIMEOUT_MS / _MAX_CHUNK,
  /// strictly parsed (common/env.h).
  static TcpOptions from_env();
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpOptions opts);
  ~TcpTransport() override;

  const char* name() const override { return "tcp"; }

  void send(const FrameTag& tag,
            std::span<const std::uint8_t> payload) override;
  std::span<const std::uint8_t> recv(
      const FrameTag& tag, std::span<const std::uint8_t> local) override;

  /// In place only when neither endpoint is owned here: the frame's bytes
  /// cross the wire between two other ranks and this replica just reuses
  /// its own encoding.
  bool local_delivery(const FrameTag& tag) const override {
    return owner(tag.src) != opts_.rank && owner(tag.dst) != opts_.rank;
  }
  const void* pair_slot(std::uint32_t channel, std::uint8_t direction,
                        int src, int dst) override;

  const TcpOptions& options() const { return opts_; }
  int listen_port() const { return listen_port_; }
  int owner(int device) const { return device % opts_.nprocs; }

 private:
  struct InConn {
    int fd = -1;
    FrameReader reader;
    bool closed = false;
  };

  int ensure_out_locked(std::uint8_t src, std::uint8_t dst);
  int dial_locked(int port, std::uint8_t src, std::uint8_t dst);
  void write_all_locked(int fd, std::span<const std::uint8_t> bytes);
  void pump_locked();
  void throw_errno(const char* what) const;

  TcpOptions opts_;
  int listen_fd_ = -1;
  int listen_port_ = 0;

  std::mutex mu_;
  std::map<std::uint16_t, int> out_;  ///< (src<<8|dst) -> connected fd
  std::vector<InConn> in_;            ///< accepted connections
  Inbox inbox_;
  std::vector<std::uint8_t> frame_buf_;  ///< framed-send scratch (under mu_)
};

}  // namespace adaqp::transport
