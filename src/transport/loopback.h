// In-process transport: the default backend, reproducing the pre-transport
// behavior bit-exactly. send() is pure accounting; recv() hands the
// locally-encoded payload straight back (zero-copy), so the decode reads
// the same bytes the encode produced — and the steady-state exchange stays
// allocation-free (zero_alloc_delivery).
#pragma once

#include "transport/transport.h"

namespace adaqp::transport {

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport() = default;

  const char* name() const override { return "loopback"; }

  void send(const FrameTag& tag,
            std::span<const std::uint8_t> payload) override;

  std::span<const std::uint8_t> recv(
      const FrameTag& tag, std::span<const std::uint8_t> local) override;

  bool zero_alloc_delivery() const override { return true; }
};

}  // namespace adaqp::transport
