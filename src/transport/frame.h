// Framed wire format for halo-exchange payloads (docs/TRANSPORT.md).
//
// The quantization codec (src/quant/message_codec.h) already produces a
// byte-stable, self-describing stream per (sender, receiver) message; the
// frame layer wraps that stream in a versioned header so it can cross a real
// byte stream (a TCP socket, an in-process pipe) and be matched back to the
// exchange that is waiting for it. Layout, little-endian, 28-byte header:
//
//   offset size field
//   0      4    magic          0xADA9F7A3
//   4      2    version        kFrameVersion (schema rev; bump on change)
//   6      1    kind           0 = data, 1 = hello (per-connection preamble)
//   7      1    direction      0 = forward, 1 = backward
//   8      4    channel        exchange identity (layer x direction lineage;
//                              allocated by transport::next_channel())
//   12     4    round          per-channel round counter (the epoch's
//                              submit ordinal of that exchange)
//   16     1    src            sender device id
//   17     1    dst            receiver device id
//   18     2    reserved       0
//   20     4    payload_len    codec bytes that follow the header
//   24     4    checksum       CRC-32 (IEEE) of header[0..24) with this
//                              field zeroed, then the payload bytes
//   28     ...  payload        the codec's EncodedBlock stream, verbatim
//
// Parsing is strict: wrong magic, unknown version/kind, and checksum
// mismatches throw TransportError — a transport must never hand corrupt
// bytes to the codec (whose own magic/bounds checks are the second fence).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace adaqp::transport {

inline constexpr std::uint32_t kFrameMagic = 0xADA9F7A3u;
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kHeaderBytes = 28;

/// Typed transport failure: framing violations, checksum mismatches,
/// connect/receive timeouts (e.g. a fault-injected drop). Distinct from the
/// codec's std::runtime_error so tests can assert the failing layer.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameKind : std::uint8_t { kData = 0, kHello = 1 };

/// Identity of one frame: which exchange (channel), which round of it, and
/// which directed device pair. Channels are process-local ordinals handed
/// out by transport::next_channel() in deterministic construction order, so
/// replicated ranks agree on them without negotiation.
struct FrameTag {
  std::uint32_t channel = 0;
  std::uint32_t round = 0;
  std::uint8_t direction = 0;  ///< 0 forward, 1 backward
  std::uint8_t src = 0;
  std::uint8_t dst = 0;
};

struct FrameHeader {
  FrameKind kind = FrameKind::kData;
  FrameTag tag;
  std::uint32_t payload_len = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), seedable so the
/// header and payload can be folded in two passes.
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);

/// Serialize header + payload into `out` (cleared; capacity reused).
void write_frame(const FrameHeader& header,
                 std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& out);

/// Parse and validate the fixed-size header prefix of `bytes` (magic,
/// version, kind; length/checksum are validated by verify_frame once the
/// payload is present). Throws TransportError; never reads past
/// kHeaderBytes.
FrameHeader parse_header(std::span<const std::uint8_t> bytes);

/// Validate the checksum of a complete frame given its raw header bytes and
/// payload. Throws TransportError on mismatch.
void verify_frame(std::span<const std::uint8_t> header_bytes,
                  std::span<const std::uint8_t> payload);

/// Human-readable tag for error messages: "ch12/r3 fwd d0->d2".
std::string tag_to_string(const FrameTag& tag);

}  // namespace adaqp::transport
