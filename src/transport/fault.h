// Seeded, deterministic fault injection over any inner transport
// (docs/TRANSPORT.md, "Fault injection").
//
// Frames the inner backend would deliver in place (local_delivery) are
// instead pushed through a real framed byte pipe — MemoryPipe + FrameReader
// — with faults drawn from a per-frame schedule that is a pure function of
// (seed, tag): delivery delay, reordering across pairs (hold a frame until
// later sends, or until the receiver demands it), short-write/short-read
// splits that fragment the stream at seeded byte counts, and drops, which
// surface at the receiver as a typed TransportError timeout instead of a
// hang. Because the schedule depends only on the tag, runs are repeatable
// at any thread count — and because payload bytes are never altered and
// delivery is tag-matched, a faulted training run stays bit-identical to
// the fault-free baseline (the regression the test suite pins).
//
// Genuinely remote frames (an inner TcpTransport in a multi-process run)
// are delegated to the inner backend untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "transport/stream.h"
#include "transport/transport.h"

namespace adaqp::transport {

struct FaultSpec {
  std::uint64_t seed = 1;
  std::uint32_t delay_us = 0;        ///< max per-frame delivery delay
  std::uint32_t reorder = 0;         ///< max sends a frame can be held past
  std::uint32_t split = 0;           ///< max stream chunk bytes (0 = whole)
  std::uint32_t drop_permille = 0;   ///< per-frame drop probability (‰)
  std::uint32_t timeout_ms = 2000;   ///< recv deadline before TransportError

  bool any() const {
    return delay_us || reorder || split || drop_permille;
  }

  /// ADAQP_FAULT_SEED / _DELAY_US / _REORDER / _SPLIT / _DROP_PERMILLE /
  /// _TIMEOUT_MS, all strictly parsed (common/env.h).
  static FaultSpec from_env();
};

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultSpec spec);

  const char* name() const override { return name_.c_str(); }

  void send(const FrameTag& tag,
            std::span<const std::uint8_t> payload) override;
  std::span<const std::uint8_t> recv(
      const FrameTag& tag, std::span<const std::uint8_t> local) override;

  bool local_delivery(const FrameTag& tag) const override {
    return inner_->local_delivery(tag);
  }
  const void* pair_slot(std::uint32_t channel, std::uint8_t direction,
                        int src, int dst) override;

  /// Decorator stats fold in the wrapped backend's: non-local tags pass
  /// straight through to the inner transport, which accounts them itself,
  /// so the union covers every delivery exactly once. Digests XOR-combine.
  TransportStats stats() const override {
    TransportStats s = Transport::stats();
    const TransportStats inner = inner_->stats();
    s.frames_delivered += inner.frames_delivered;
    s.bytes_delivered += inner.bytes_delivered;
    s.digest ^= inner.digest;
    return s;
  }
  void reset_stats() override {
    Transport::reset_stats();
    inner_->reset_stats();
  }

  const FaultSpec& spec() const { return spec_; }
  Transport& inner() { return *inner_; }

 private:
  /// The per-frame schedule, derived from (seed, tag) alone.
  struct Plan {
    bool drop = false;
    std::uint32_t delay_us = 0;
    std::uint32_t hold = 0;        ///< sends to hold past (reorder window)
    std::uint64_t chunk_seed = 0;  ///< stream for split sizes
  };
  struct Held {
    FrameTag tag;
    std::vector<std::uint8_t> frame;  ///< framed bytes, ready for the pipe
    std::uint64_t release_at = 0;     ///< send ordinal that frees it
  };
  /// One in-process wire per (channel, direction, pair): single-writer /
  /// single-reader by the exchange round contract.
  struct Stream {
    MemoryPipe pipe;
    FrameReader reader;
  };

  Plan plan_for(const FrameTag& tag) const;
  void write_split(Stream& s, std::span<const std::uint8_t> frame,
                   std::uint64_t chunk_seed);
  void release_due_locked();
  void drain_locked(const FrameTag& tag);

  std::unique_ptr<Transport> inner_;
  FaultSpec spec_;
  std::string name_;

  std::mutex mu_;
  std::map<std::uint64_t, Stream> streams_;
  Inbox inbox_;
  std::vector<Held> held_;
  std::uint64_t send_seq_ = 0;
};

}  // namespace adaqp::transport
