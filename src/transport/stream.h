// Byte-stream plumbing shared by the wire transports (docs/TRANSPORT.md):
//
//   ByteStream    minimal non-blocking octet stream (short reads and short
//                 writes are the *normal* case, mirroring libharmonics'
//                 stream_io layering the ROADMAP points at);
//   MemoryPipe    in-process ByteStream — the fault decorator's wire;
//   FrameReader   incremental reassembly of framed messages from arbitrary
//                 stream fragmentation, validating header + checksum;
//   Inbox         tag-matched FIFO delivery queues + the stable
//                 per-(channel, direction, pair) slot a recv moves its
//                 payload into. Tag matching — not stream arrival order —
//                 is what delivers frames to the exchange that asked for
//                 them, so cross-pair reordering on the wire can never
//                 change which bytes a decode sees.
//
// None of these synchronize: the owning transport serializes access (both
// wire backends run under one internal mutex).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "transport/frame.h"

namespace adaqp::transport {

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Write up to data.size() bytes; returns how many were accepted
  /// (possibly 0 when the stream would block). Never throws for back-
  /// pressure — only for hard stream errors.
  virtual std::size_t write_some(std::span<const std::uint8_t> data) = 0;

  /// Read up to out.size() bytes into `out`; returns how many were read
  /// (0 when nothing is available right now).
  virtual std::size_t read_some(std::span<std::uint8_t> out) = 0;
};

/// Unbounded in-process byte pipe. Single-writer / single-reader under the
/// owner's lock; used by FaultInjectingTransport as its in-process wire.
class MemoryPipe final : public ByteStream {
 public:
  std::size_t write_some(std::span<const std::uint8_t> data) override;
  std::size_t read_some(std::span<std::uint8_t> out) override;

  std::size_t pending() const { return buf_.size() - rd_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t rd_ = 0;  ///< consumed prefix; compacted lazily
};

/// Incremental frame parser: feed() stream fragments of any size, then
/// drain complete frames with next(). Header and checksum validation throw
/// TransportError (bad magic / version / kind / CRC); a frame split across
/// any byte boundary — mid-header included — reassembles correctly.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> bytes);

  /// Extract the next complete, checksum-verified frame. Returns false when
  /// more bytes are needed; on true, `header` and `payload` (cleared and
  /// refilled) describe the frame.
  bool next(FrameHeader& header, std::vector<std::uint8_t>& payload);

  std::size_t buffered() const { return buf_.size() - rd_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t rd_ = 0;
};

/// Tag-matched delivery queues. push() appends a received payload to its
/// tag's FIFO; take() pops the oldest payload for a tag, moving it into the
/// (channel, direction, src, dst) slot whose address is stable for the
/// inbox's lifetime — the span handed to the decoder stays valid until the
/// next take() of the same slot, and the slot address doubles as the
/// race-checker annotation for wire delivery (Transport::pair_slot).
class Inbox {
 public:
  void push(const FrameTag& tag, std::vector<std::uint8_t>&& payload);

  /// nullptr when nothing is queued for `tag`.
  const std::vector<std::uint8_t>* take(const FrameTag& tag);

  /// Ensure the tag's pair slot exists and return its address.
  const void* slot(std::uint32_t channel, std::uint8_t direction, int src,
                   int dst);

  bool empty() const { return queues_.empty(); }
  std::size_t queued_frames() const;

 private:
  using TagKey = std::pair<std::uint64_t, std::uint64_t>;
  using SlotKey = std::uint64_t;

  static TagKey tag_key(const FrameTag& t) {
    return {(static_cast<std::uint64_t>(t.channel) << 32) | t.round,
            (static_cast<std::uint64_t>(t.direction) << 16) |
                (static_cast<std::uint64_t>(t.src) << 8) | t.dst};
  }
  static SlotKey slot_key(std::uint32_t channel, std::uint8_t direction,
                          int src, int dst) {
    return (static_cast<std::uint64_t>(channel) << 32) |
           (static_cast<std::uint64_t>(direction) << 24) |
           (static_cast<std::uint64_t>(src) << 12) |
           static_cast<std::uint64_t>(dst);
  }

  std::map<TagKey, std::deque<std::vector<std::uint8_t>>> queues_;
  std::map<SlotKey, std::vector<std::uint8_t>> slots_;
};

}  // namespace adaqp::transport
