#include "transport/stream.h"

#include <algorithm>

namespace adaqp::transport {

// ---- MemoryPipe -----------------------------------------------------------

std::size_t MemoryPipe::write_some(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  return data.size();
}

std::size_t MemoryPipe::read_some(std::span<std::uint8_t> out) {
  const std::size_t n = std::min(out.size(), buf_.size() - rd_);
  std::copy_n(buf_.begin() + static_cast<std::ptrdiff_t>(rd_), n, out.begin());
  rd_ += n;
  if (rd_ == buf_.size()) {
    buf_.clear();
    rd_ = 0;
  } else if (rd_ > 4096 && rd_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(rd_));
    rd_ = 0;
  }
  return n;
}

// ---- FrameReader ----------------------------------------------------------

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

bool FrameReader::next(FrameHeader& header,
                       std::vector<std::uint8_t>& payload) {
  const std::size_t avail = buf_.size() - rd_;
  if (avail < kHeaderBytes) return false;
  const std::span<const std::uint8_t> head(buf_.data() + rd_, kHeaderBytes);
  header = parse_header(head);
  if (avail < kHeaderBytes + header.payload_len) return false;
  const std::span<const std::uint8_t> body(buf_.data() + rd_ + kHeaderBytes,
                                           header.payload_len);
  verify_frame(head, body);
  payload.assign(body.begin(), body.end());
  rd_ += kHeaderBytes + header.payload_len;
  if (rd_ == buf_.size()) {
    buf_.clear();
    rd_ = 0;
  } else if (rd_ > 65536 && rd_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(rd_));
    rd_ = 0;
  }
  return true;
}

// ---- Inbox ----------------------------------------------------------------

void Inbox::push(const FrameTag& tag, std::vector<std::uint8_t>&& payload) {
  queues_[tag_key(tag)].push_back(std::move(payload));
}

const std::vector<std::uint8_t>* Inbox::take(const FrameTag& tag) {
  const auto it = queues_.find(tag_key(tag));
  if (it == queues_.end()) return nullptr;
  std::vector<std::uint8_t>& slot =
      slots_[slot_key(tag.channel, tag.direction, tag.src, tag.dst)];
  slot = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return &slot;
}

const void* Inbox::slot(std::uint32_t channel, std::uint8_t direction,
                        int src, int dst) {
  return &slots_[slot_key(channel, direction, src, dst)];
}

std::size_t Inbox::queued_frames() const {
  std::size_t n = 0;
  for (const auto& [key, q] : queues_) n += q.size();
  return n;
}

}  // namespace adaqp::transport
