// lint:hot-path-file — steady-state epochs run through this TU; every
// allocation below must be warmup/build-time only (docs/ARCHITECTURE.md,
// "Memory subsystem").
#include "gnn/model.h"

#include "common/check.h"
#include "common/rng.h"

namespace adaqp {

GnnModel::GnnModel(const ModelConfig& config, Rng& rng) : config_(config) {
  ADAQP_CHECK(config.num_layers >= 1);
  ADAQP_CHECK(config.in_dim > 0 && config.out_dim > 0);
  for (int l = 0; l < config.num_layers; ++l) {
    LayerConfig lc;
    lc.aggregator = config.aggregator;
    lc.in_dim = l == 0 ? config.in_dim : config.hidden_dim;
    lc.out_dim = l == config.num_layers - 1 ? config.out_dim
                                            : config.hidden_dim;
    lc.is_output = l == config.num_layers - 1;
    lc.layer_norm = config.layer_norm;
    lc.dropout = config.dropout;
    layers_.emplace_back(lc);  // lint:allow(hot-path-alloc) ctor
    layers_.back().init_weights(rng);
  }
}

std::vector<Param*> GnnModel::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_)
    for (Param* p : layer.params()) out.push_back(p);  // lint:allow(hot-path-alloc) setup; trainer caches result
  return out;
}

void GnnModel::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

void GnnModel::scale_grads(float s) {
  for (Param* p : params()) p->grad.scale_inplace(s);
}

std::size_t GnnModel::grad_bytes() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.grad_bytes();
  return total;
}

Matrix GnnModel::flatten_grads() const {
  std::size_t total = 0;
  for (const Param* p : const_cast<GnnModel*>(this)->params())
    total += p->size();
  Matrix flat(1, total);
  std::size_t at = 0;
  for (const Param* p : const_cast<GnnModel*>(this)->params()) {
    std::copy(p->grad.data(), p->grad.data() + p->size(), flat.data() + at);
    at += p->size();
  }
  return flat;
}

void GnnModel::unflatten_grads(const Matrix& flat) {
  std::size_t at = 0;
  for (Param* p : params()) {
    ADAQP_CHECK(at + p->size() <= flat.size());
    std::copy(flat.data() + at, flat.data() + at + p->size(), p->grad.data());
    at += p->size();
  }
  ADAQP_CHECK(at == flat.size());
}

}  // namespace adaqp
