#include "gnn/aggregate.h"

#include <cmath>

#include "common/check.h"
#include "runtime/parallel_for.h"

namespace adaqp {

namespace {
constexpr std::size_t kRowGrain = 32;  ///< min rows per parallel band
}  // namespace

double aggregation_coefficient(Aggregator agg, std::uint32_t deg_u,
                               std::uint32_t deg_v) {
  switch (agg) {
    case Aggregator::kGcn:
      return 1.0 / std::sqrt(static_cast<double>(deg_u + 1) *
                             static_cast<double>(deg_v + 1));
    case Aggregator::kSageMean:
      return deg_v == 0 ? 0.0 : 1.0 / static_cast<double>(deg_v);
    case Aggregator::kSum:
      return 1.0;
  }
  return 0.0;
}

double self_coefficient(Aggregator agg, std::uint32_t deg_v) {
  switch (agg) {
    case Aggregator::kGcn:
      return 1.0 / static_cast<double>(deg_v + 1);
    case Aggregator::kSageMean:
      return 0.0;  // SAGE handles the self path through W_self
    case Aggregator::kSum:
      return 1.0;
  }
  return 0.0;
}

void aggregate_forward(const DeviceGraph& dev, Aggregator agg, const Matrix& x,
                       std::span<const NodeId> rows, Matrix& out) {
  ADAQP_CHECK(x.rows() == dev.num_local());
  ADAQP_CHECK(out.rows() >= dev.num_owned && out.cols() == x.cols());
  const std::size_t dim = x.cols();
  // Each destination row is owned by exactly one index of `rows`, so bands
  // write disjoint rows and any thread count is bit-identical to serial.
  parallel_for(rows.size(), kRowGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t idx = b; idx < e; ++idx) {
      const NodeId v = rows[idx];
      ADAQP_CHECK(v < dev.num_owned);
      auto dst = out.row(v);
      const auto self_c =
          static_cast<float>(self_coefficient(agg, dev.global_degree[v]));
      const auto src_self = x.row(v);
      for (std::size_t c = 0; c < dim; ++c) dst[c] = self_c * src_self[c];
      for (NodeId u : dev.neighbors(v)) {
        const auto coeff = static_cast<float>(aggregation_coefficient(
            agg, dev.global_degree[u], dev.global_degree[v]));
        const auto src = x.row(u);
        for (std::size_t c = 0; c < dim; ++c) dst[c] += coeff * src[c];
      }
    }
  });
}

void aggregate_forward(const DeviceGraph& dev, Aggregator agg, const Matrix& x,
                       Matrix& out) {
  if (out.rows() != dev.num_owned || out.cols() != x.cols())
    out = Matrix(dev.num_owned, x.cols());
  std::vector<NodeId> scratch;
  aggregate_forward(dev, agg, x, dev.owned_span_or(scratch), out);
}

void aggregate_backward(const DeviceGraph& dev, Aggregator agg,
                        const Matrix& grad_out, std::span<const NodeId> rows,
                        Matrix& grad_x) {
  ADAQP_CHECK(grad_x.rows() == dev.num_local());
  ADAQP_CHECK(grad_x.cols() == grad_out.cols());
  const std::size_t dim = grad_out.cols();
  for (NodeId v : rows) {
    ADAQP_CHECK(v < dev.num_owned);
    const auto g = grad_out.row(v);
    const auto self_c =
        static_cast<float>(self_coefficient(agg, dev.global_degree[v]));
    auto dst_self = grad_x.row(v);
    for (std::size_t c = 0; c < dim; ++c) dst_self[c] += self_c * g[c];
    for (NodeId u : dev.neighbors(v)) {
      const auto coeff = static_cast<float>(aggregation_coefficient(
          agg, dev.global_degree[u], dev.global_degree[v]));
      auto dst = grad_x.row(u);
      for (std::size_t c = 0; c < dim; ++c) dst[c] += coeff * g[c];
    }
  }
}

void aggregate_backward(const DeviceGraph& dev, Aggregator agg,
                        const Matrix& grad_out, Matrix& grad_x) {
  if (!dev.has_transpose()) {
    // Hand-built DeviceGraphs without a transpose CSR fall back to the
    // serial scatter kernel.
    std::vector<NodeId> all(dev.num_owned);
    for (std::size_t i = 0; i < all.size(); ++i)
      all[i] = static_cast<NodeId>(i);
    aggregate_backward(dev, agg, grad_out, all, grad_x);
    return;
  }
  ADAQP_CHECK(grad_x.rows() == dev.num_local());
  ADAQP_CHECK(grad_x.cols() == grad_out.cols());
  ADAQP_CHECK(grad_out.rows() >= dev.num_owned);
  const std::size_t dim = grad_out.cols();
  // Gather form over the transpose CSR: destination rows are disjoint across
  // bands, and each destination accumulates its sources in ascending order
  // with the self term inserted at source == destination — exactly the
  // per-element addition order of the scatter kernel above, so the result is
  // bit-identical to serial execution at any thread count.
  parallel_for(dev.num_local(), kRowGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t ui = b; ui < e; ++ui) {
      const NodeId u = static_cast<NodeId>(ui);
      auto dst = grad_x.row(u);
      const bool owned = ui < dev.num_owned;
      bool self_applied = !owned;
      const auto apply_self = [&] {
        const auto self_c =
            static_cast<float>(self_coefficient(agg, dev.global_degree[u]));
        const auto g = grad_out.row(u);
        for (std::size_t c = 0; c < dim; ++c) dst[c] += self_c * g[c];
        self_applied = true;
      };
      for (NodeId v : dev.in_neighbors(u)) {
        if (!self_applied && v >= u) apply_self();
        const auto coeff = static_cast<float>(aggregation_coefficient(
            agg, dev.global_degree[u], dev.global_degree[v]));
        const auto g = grad_out.row(v);
        for (std::size_t c = 0; c < dim; ++c) dst[c] += coeff * g[c];
      }
      if (!self_applied) apply_self();
    }
  });
}

double aggregate_flops(const DeviceGraph& dev, std::span<const NodeId> rows,
                       std::size_t dim) {
  const double edges = static_cast<double>(dev.edges_of(rows));
  const double nrows = static_cast<double>(rows.size());
  return 2.0 * edges * static_cast<double>(dim) +
         2.0 * nrows * static_cast<double>(dim);
}

double dense_flops(std::size_t rows, std::size_t in_dim, std::size_t out_dim) {
  return 2.0 * static_cast<double>(rows) * static_cast<double>(in_dim) *
         static_cast<double>(out_dim);
}

double epilogue_flops(std::size_t rows, std::size_t dim) {
  return 8.0 * static_cast<double>(rows) * static_cast<double>(dim);
}

}  // namespace adaqp
