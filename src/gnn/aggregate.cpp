// lint:hot-path-file — steady-state epochs run through this TU; every
// allocation below must be warmup/build-time only (docs/ARCHITECTURE.md,
// "Memory subsystem").
#include "gnn/aggregate.h"

#include <cmath>

#include "common/check.h"
#include "runtime/parallel_for.h"
#include "simd/kernels.h"

namespace adaqp {

namespace {
constexpr std::size_t kRowGrain = 32;  ///< min rows per parallel band
}  // namespace

double aggregation_coefficient(Aggregator agg, std::uint32_t deg_u,
                               std::uint32_t deg_v) {
  switch (agg) {
    case Aggregator::kGcn:
      return 1.0 / std::sqrt(static_cast<double>(deg_u + 1) *
                             static_cast<double>(deg_v + 1));
    case Aggregator::kSageMean:
      return deg_v == 0 ? 0.0 : 1.0 / static_cast<double>(deg_v);
    case Aggregator::kSum:
      return 1.0;
  }
  return 0.0;
}

double self_coefficient(Aggregator agg, std::uint32_t deg_v) {
  switch (agg) {
    case Aggregator::kGcn:
      return 1.0 / static_cast<double>(deg_v + 1);
    case Aggregator::kSageMean:
      return 0.0;  // SAGE handles the self path through W_self
    case Aggregator::kSum:
      return 1.0;
  }
  return 0.0;
}

void aggregate_forward(const DeviceGraph& dev, Aggregator agg, const Matrix& x,
                       std::span<const NodeId> rows, Matrix& out) {
  ADAQP_CHECK(x.rows() == dev.num_local());
  ADAQP_CHECK(out.rows() >= dev.num_owned && out.cols() == x.cols());
  const std::size_t dim = x.cols();
  // Each destination row is owned by exactly one index of `rows`, so bands
  // write disjoint rows and any thread count is bit-identical to serial.
  parallel_for(rows.size(), kRowGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t idx = b; idx < e; ++idx) {
      const NodeId v = rows[idx];
      ADAQP_CHECK(v < dev.num_owned);
      auto dst = out.row(v);
      const auto self_c =
          static_cast<float>(self_coefficient(agg, dev.global_degree[v]));
      const auto src_self = x.row(v);
      for (std::size_t c = 0; c < dim; ++c) dst[c] = self_c * src_self[c];
      for (NodeId u : dev.neighbors(v)) {
        const auto coeff = static_cast<float>(aggregation_coefficient(
            agg, dev.global_degree[u], dev.global_degree[v]));
        const auto src = x.row(u);
        for (std::size_t c = 0; c < dim; ++c) dst[c] += coeff * src[c];
      }
    }
  });
}

void aggregate_forward(const DeviceGraph& dev, Aggregator agg, const Matrix& x,
                       Matrix& out) {
  // Every owned row is fully overwritten below, so stale contents are fine —
  // reshape_uninit reuses the retained capacity instead of reallocating.
  out.reshape_uninit(dev.num_owned, x.cols());
  std::vector<NodeId> scratch;
  aggregate_forward(dev, agg, x, dev.owned_span_or(scratch), out);
}

AggregatePlan build_aggregate_plan(const DeviceGraph& dev, Aggregator agg) {
  AggregatePlan plan;
  plan.agg = agg;
  plan.self_coeff.resize(dev.num_owned);  // lint:allow(hot-path-alloc) plan build (refresh only)
  for (std::size_t v = 0; v < dev.num_owned; ++v)
    plan.self_coeff[v] =
        static_cast<float>(self_coefficient(agg, dev.global_degree[v]));
  plan.coeff.resize(dev.neighbor_ids.size());  // lint:allow(hot-path-alloc) plan build (refresh only)
  for (std::size_t v = 0; v < dev.num_owned; ++v) {
    const auto dv = dev.global_degree[v];
    for (EdgeIdx e = dev.offsets[v]; e < dev.offsets[v + 1]; ++e)
      plan.coeff[e] = static_cast<float>(aggregation_coefficient(
          agg, dev.global_degree[dev.neighbor_ids[e]], dv));
  }
  if (dev.has_transpose()) {
    plan.in_coeff.resize(dev.in_sources.size());  // lint:allow(hot-path-alloc) plan build (refresh only)
    plan.in_split.resize(dev.num_local());  // lint:allow(hot-path-alloc) plan build (refresh only)
    for (std::size_t u = 0; u < dev.num_local(); ++u) {
      const auto du = dev.global_degree[u];
      const EdgeIdx begin = dev.in_offsets[u], end = dev.in_offsets[u + 1];
      std::uint32_t split = static_cast<std::uint32_t>(end - begin);
      for (EdgeIdx e = begin; e < end; ++e) {
        const NodeId v = dev.in_sources[e];
        plan.in_coeff[e] = static_cast<float>(
            aggregation_coefficient(agg, du, dev.global_degree[v]));
        if (v >= u && e - begin < split)
          split = static_cast<std::uint32_t>(e - begin);
      }
      plan.in_split[u] = split;
    }
  }
  plan.ready = true;
  return plan;
}

void aggregate_forward(const DeviceGraph& dev, const AggregatePlan& plan,
                       const Matrix& x, std::span<const NodeId> rows,
                       Matrix& out) {
  ADAQP_CHECK(plan.ready && plan.self_coeff.size() == dev.num_owned);
  ADAQP_CHECK(x.rows() == dev.num_local());
  ADAQP_CHECK(out.rows() >= dev.num_owned && out.cols() == x.cols());
  const std::size_t dim = x.cols();
  const simd::KernelTable& kt = simd::kernels();
  parallel_for(rows.size(), kRowGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t idx = b; idx < e; ++idx) {
      const NodeId v = rows[idx];
      ADAQP_CHECK(v < dev.num_owned);
      float* dst = out.row(v).data();
      kt.scale_row(plan.self_coeff[v], x.row(v).data(), dst, dim);
      const EdgeIdx begin = dev.offsets[v];
      kt.gather_axpy(x.data(), dim, dev.neighbor_ids.data() + begin,
                     plan.coeff.data() + begin,
                     static_cast<std::size_t>(dev.offsets[v + 1] - begin),
                     dst, dim);
    }
  });
}

void aggregate_backward(const DeviceGraph& dev, const AggregatePlan& plan,
                        const Matrix& grad_out, std::span<const NodeId> rows,
                        Matrix& grad_x) {
  ADAQP_CHECK(plan.ready && plan.self_coeff.size() == dev.num_owned);
  ADAQP_CHECK(grad_x.rows() == dev.num_local());
  ADAQP_CHECK(grad_x.cols() == grad_out.cols());
  const std::size_t dim = grad_out.cols();
  const simd::KernelTable& kt = simd::kernels();
  for (NodeId v : rows) {
    ADAQP_CHECK(v < dev.num_owned);
    const float* g = grad_out.row(v).data();
    kt.axpy(plan.self_coeff[v], g, grad_x.row(v).data(), dim);
    for (EdgeIdx e = dev.offsets[v]; e < dev.offsets[v + 1]; ++e)
      kt.axpy(plan.coeff[e], g, grad_x.row(dev.neighbor_ids[e]).data(), dim);
  }
}

void aggregate_backward(const DeviceGraph& dev, const AggregatePlan& plan,
                        const Matrix& grad_out, Matrix& grad_x) {
  if (!dev.has_transpose()) {
    // Hand-built DeviceGraphs without a transpose CSR fall back to the
    // serial scatter kernel (cold path; the identity-list build may
    // allocate).
    std::vector<NodeId> scratch;
    aggregate_backward(dev, plan, grad_out, dev.owned_span_or(scratch),
                       grad_x);
    return;
  }
  ADAQP_CHECK(plan.ready && plan.in_split.size() == dev.num_local());
  ADAQP_CHECK(grad_x.rows() == dev.num_local());
  ADAQP_CHECK(grad_x.cols() == grad_out.cols());
  ADAQP_CHECK(grad_out.rows() >= dev.num_owned);
  const std::size_t dim = grad_out.cols();
  const simd::KernelTable& kt = simd::kernels();
  // Gather form over the transpose CSR, split around the self term at the
  // precomputed in_split point — the same per-element accumulation order as
  // the serial scatter (sources ascending, self inserted at the first
  // source >= destination), so the result is bit-identical to it at any
  // thread count and ISA.
  parallel_for(dev.num_local(), kRowGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t ui = b; ui < e; ++ui) {
      const NodeId u = static_cast<NodeId>(ui);
      float* dst = grad_x.row(u).data();
      const EdgeIdx begin = dev.in_offsets[u];
      const std::size_t count =
          static_cast<std::size_t>(dev.in_offsets[u + 1] - begin);
      const std::size_t split = plan.in_split[ui];
      const NodeId* idx = dev.in_sources.data() + begin;
      const float* cf = plan.in_coeff.data() + begin;
      kt.gather_axpy(grad_out.data(), dim, idx, cf, split, dst, dim);
      if (ui < dev.num_owned)
        kt.axpy(plan.self_coeff[ui], grad_out.row(u).data(), dst, dim);
      kt.gather_axpy(grad_out.data(), dim, idx + split, cf + split,
                     count - split, dst, dim);
    }
  });
}

void aggregate_backward(const DeviceGraph& dev, Aggregator agg,
                        const Matrix& grad_out, std::span<const NodeId> rows,
                        Matrix& grad_x) {
  ADAQP_CHECK(grad_x.rows() == dev.num_local());
  ADAQP_CHECK(grad_x.cols() == grad_out.cols());
  const std::size_t dim = grad_out.cols();
  for (NodeId v : rows) {
    ADAQP_CHECK(v < dev.num_owned);
    const auto g = grad_out.row(v);
    const auto self_c =
        static_cast<float>(self_coefficient(agg, dev.global_degree[v]));
    auto dst_self = grad_x.row(v);
    for (std::size_t c = 0; c < dim; ++c) dst_self[c] += self_c * g[c];
    for (NodeId u : dev.neighbors(v)) {
      const auto coeff = static_cast<float>(aggregation_coefficient(
          agg, dev.global_degree[u], dev.global_degree[v]));
      auto dst = grad_x.row(u);
      for (std::size_t c = 0; c < dim; ++c) dst[c] += coeff * g[c];
    }
  }
}

void aggregate_backward(const DeviceGraph& dev, Aggregator agg,
                        const Matrix& grad_out, Matrix& grad_x) {
  if (!dev.has_transpose()) {
    // Hand-built DeviceGraphs without a transpose CSR fall back to the
    // serial scatter kernel.
    std::vector<NodeId> all(dev.num_owned);
    for (std::size_t i = 0; i < all.size(); ++i)
      all[i] = static_cast<NodeId>(i);
    aggregate_backward(dev, agg, grad_out, all, grad_x);
    return;
  }
  ADAQP_CHECK(grad_x.rows() == dev.num_local());
  ADAQP_CHECK(grad_x.cols() == grad_out.cols());
  ADAQP_CHECK(grad_out.rows() >= dev.num_owned);
  const std::size_t dim = grad_out.cols();
  // Gather form over the transpose CSR: destination rows are disjoint across
  // bands, and each destination accumulates its sources in ascending order
  // with the self term inserted at source == destination — exactly the
  // per-element addition order of the scatter kernel above, so the result is
  // bit-identical to serial execution at any thread count.
  parallel_for(dev.num_local(), kRowGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t ui = b; ui < e; ++ui) {
      const NodeId u = static_cast<NodeId>(ui);
      auto dst = grad_x.row(u);
      const bool owned = ui < dev.num_owned;
      bool self_applied = !owned;
      const auto apply_self = [&] {
        const auto self_c =
            static_cast<float>(self_coefficient(agg, dev.global_degree[u]));
        const auto g = grad_out.row(u);
        for (std::size_t c = 0; c < dim; ++c) dst[c] += self_c * g[c];
        self_applied = true;
      };
      for (NodeId v : dev.in_neighbors(u)) {
        if (!self_applied && v >= u) apply_self();
        const auto coeff = static_cast<float>(aggregation_coefficient(
            agg, dev.global_degree[u], dev.global_degree[v]));
        const auto g = grad_out.row(v);
        for (std::size_t c = 0; c < dim; ++c) dst[c] += coeff * g[c];
      }
      if (!self_applied) apply_self();
    }
  });
}

double aggregate_flops(const DeviceGraph& dev, std::span<const NodeId> rows,
                       std::size_t dim) {
  const double edges = static_cast<double>(dev.edges_of(rows));
  const double nrows = static_cast<double>(rows.size());
  return 2.0 * edges * static_cast<double>(dim) +
         2.0 * nrows * static_cast<double>(dim);
}

double dense_flops(std::size_t rows, std::size_t in_dim, std::size_t out_dim) {
  return 2.0 * static_cast<double>(rows) * static_cast<double>(in_dim) *
         static_cast<double>(out_dim);
}

double epilogue_flops(std::size_t rows, std::size_t dim) {
  return 8.0 * static_cast<double>(rows) * static_cast<double>(dim);
}

}  // namespace adaqp
