// Neighborhood aggregation kernels on a device-local graph partition.
//
// Implements the weighted-summation form of message passing (paper Eqn. 3)
// for the two evaluated models:
//   GCN:        agg[v] = α(v,v)·x[v] + Σ_{u∈N(v)} α(u,v)·x[u],
//               α(u,v) = 1/√((d_u+1)(d_v+1)) with *global* degrees d, so the
//               distributed result is bit-comparable to centralized training.
//   SAGE-mean:  agg[v] = (1/d_v)·Σ_{u∈N(v)} x[u]  (self term handled by the
//               layer's separate W_self path).
//
// Each kernel has an adjoint used by the analytic backward pass; the adjoint
// scatters into *all* local rows (owned and halo) — halo contributions are
// the embedding-gradient messages the paper sends in the backward pass.
#pragma once

#include <span>

#include "dist/dist_graph.h"
#include "tensor/matrix.h"

namespace adaqp {

enum class Aggregator {
  kGcn,       ///< symmetric normalization 1/sqrt((d_u+1)(d_v+1)) + self term
  kSageMean,  ///< mean of neighbors; self path through a separate weight
  kSum,       ///< GIN-style unweighted sum (neighbors + self), coefficient 1
};

/// Aggregation coefficient α(u,v) for an edge from u into v.
double aggregation_coefficient(Aggregator agg, std::uint32_t deg_u,
                               std::uint32_t deg_v);
/// Self coefficient α(v,v) (zero for SAGE-mean).
double self_coefficient(Aggregator agg, std::uint32_t deg_v);

/// Precomputed per-edge coefficients for one (device, aggregator) pair — the
/// steady-state form of the aggregation kernels. Built once (first epoch,
/// cached in LayerCache); the plan-based kernels below then run
/// allocation-free and dispatch their per-row inner loops through the SIMD
/// kernel table (scale_row / axpy / gather_axpy). Coefficients are the same
/// float casts the plan-less kernels compute per edge, so plan and plan-less
/// paths are bit-identical.
struct AggregatePlan {
  bool ready = false;
  Aggregator agg = Aggregator::kGcn;
  /// α(v,v) per owned local id (zero for SAGE-mean).
  std::vector<float> self_coeff;
  /// α(u,v) per forward CSR edge, aligned with DeviceGraph::neighbor_ids.
  std::vector<float> coeff;
  /// α(u,v) per transpose CSR edge, aligned with DeviceGraph::in_sources.
  std::vector<float> in_coeff;
  /// Per local row u: the relative edge index within u's transpose band
  /// where the self term is inserted (first source >= u) — splits the
  /// adjoint's gather into two kernel calls around the self axpy so the
  /// per-element accumulation order matches the serial scatter exactly.
  std::vector<std::uint32_t> in_split;
};

/// Build the plan for (dev, agg). The transpose-CSR fields are filled only
/// when dev.has_transpose().
AggregatePlan build_aggregate_plan(const DeviceGraph& dev, Aggregator agg);

/// out (num_owned x dim) = aggregate over rows of x (num_local x dim),
/// restricted to the owned rows in `rows`. Other rows of `out` are untouched.
void aggregate_forward(const DeviceGraph& dev, Aggregator agg, const Matrix& x,
                       std::span<const NodeId> rows, Matrix& out);

/// Convenience: aggregate all owned rows.
void aggregate_forward(const DeviceGraph& dev, Aggregator agg, const Matrix& x,
                       Matrix& out);

/// Adjoint: grad_x (num_local x dim) += Aᵀ · grad_out for the owned rows in
/// `rows` of grad_out. grad_x must be pre-sized (num_local x dim). Serial
/// scatter kernel (destination rows of different sources overlap).
void aggregate_backward(const DeviceGraph& dev, Aggregator agg,
                        const Matrix& grad_out, std::span<const NodeId> rows,
                        Matrix& grad_x);

/// Full adjoint over all owned rows of grad_out. Runs the gather form over
/// the device's transpose CSR, parallelized over destination rows with
/// per-destination source order identical to the scatter kernel — so the
/// result is bit-identical to the serial scatter at any thread count.
void aggregate_backward(const DeviceGraph& dev, Aggregator agg,
                        const Matrix& grad_out, Matrix& grad_x);

// ---- Plan-based forms (steady-state path; see AggregatePlan) ---------------

/// aggregate_forward with precomputed coefficients, inner loops through the
/// SIMD kernel table. Bit-identical to the plan-less span form.
void aggregate_forward(const DeviceGraph& dev, const AggregatePlan& plan,
                       const Matrix& x, std::span<const NodeId> rows,
                       Matrix& out);

/// Row-subset adjoint (serial scatter) with precomputed coefficients.
/// Bit-identical to the plan-less span form.
void aggregate_backward(const DeviceGraph& dev, const AggregatePlan& plan,
                        const Matrix& grad_out, std::span<const NodeId> rows,
                        Matrix& grad_x);

/// Full adjoint (parallel gather over the transpose CSR) with precomputed
/// coefficients. Bit-identical to the plan-less full form.
void aggregate_backward(const DeviceGraph& dev, const AggregatePlan& plan,
                        const Matrix& grad_out, Matrix& grad_x);

// ---- FLOP accounting for the cost model ------------------------------------

/// FLOPs of aggregating `rows` (2 flops per edge per channel + self path).
double aggregate_flops(const DeviceGraph& dev, std::span<const NodeId> rows,
                       std::size_t dim);

/// FLOPs of a dense transform of `rows` rows: 2·rows·in·out.
double dense_flops(std::size_t rows, std::size_t in_dim, std::size_t out_dim);

/// FLOPs of row-wise epilogue (norm + activation + dropout), ~8 per element.
double epilogue_flops(std::size_t rows, std::size_t dim);

}  // namespace adaqp
