#include "gnn/adam.h"

#include <cmath>

namespace adaqp {

void Adam::step(const std::vector<Param*>& params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, t_);
  const double bc2 = 1.0 - std::pow(opts_.beta2, t_);
  for (Param* p : params) {
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = p->adam_m.data();
    float* v = p->adam_v.data();
    for (std::size_t i = 0; i < p->size(); ++i) {
      float grad = g[i] + opts_.weight_decay * w[i];
      m[i] = opts_.beta1 * m[i] + (1.0f - opts_.beta1) * grad;
      v[i] = opts_.beta2 * v[i] + (1.0f - opts_.beta2) * grad * grad;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      w[i] -= static_cast<float>(opts_.lr * mhat /
                                 (std::sqrt(vhat) + opts_.epsilon));
    }
  }
}

}  // namespace adaqp
